#!/usr/bin/env bash
# Runs the update-pipeline benchmark suite in a benchstat-friendly
# format (repeat runs via -count so benchstat can compute variance).
#
# Usage:
#   scripts/bench.sh [out-file] [count]
#
# Compare two runs (e.g. before and after a change) with:
#   benchstat before.txt after.txt
#
# The committed before/after numbers for the batched update pipeline
# live in BENCH_PR3.json; the degraded-mode (breaker/deadline) healthy
# overhead numbers live in BENCH_PR4.json; the versioned read path
# (memoized on-demand) numbers live in BENCH_PR5.json; the incremental
# delta-propagation numbers live in BENCH_PR6.json; the adaptive-
# maintenance (live migration) numbers live in BENCH_PR7.json; the
# watch-hub fan-out numbers live in BENCH_PR8.json; the durable-restart
# (checkpoint + WAL recovery) numbers live in BENCH_PR9.json; the mux
# watch transport (one connection, batched frames) numbers live in
# BENCH_PR10.json.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-bench.txt}"
count="${2:-4}"

benches='BenchmarkValueReadParallel|BenchmarkTriggerPropagation|BenchmarkSubscribeChurnParallel|BenchmarkE4FreshnessOverhead|BenchmarkE5TriggeredVsPeriodic|BenchmarkE9WorkerPool|BenchmarkE19BatchedTicks|BenchmarkHealthyOverhead|BenchmarkE20MemoizedReads|BenchmarkE21DeltaPropagation|BenchmarkE22AdaptiveMaintenance|BenchmarkE23WatchFanout|BenchmarkE23PublishHotPath|BenchmarkE24Recovery|BenchmarkE25MuxFanout'

go test -run '^$' -bench "^(${benches})$" -benchmem -count "${count}" . | tee "${out}"
