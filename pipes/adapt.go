package pipes

import (
	"fmt"

	"repro/internal/adapt"
	"repro/internal/core"
)

// Adaptive-maintenance surface: metadata items that declare an
// AdaptSpec (all their maintenance forms) can be live-migrated between
// mechanisms while subscribed — on-demand, periodic (any window), and
// triggered — and a closed-loop controller can drive those migrations
// from each item's observed access-vs-update economics (see
// internal/adapt for the cost model and damping, internal/core for the
// migration primitive's equivalence contract).
type (
	// AdaptSpec declares every maintenance form of a migratable item
	// (used in a Definition registered on a node's Metadata registry).
	AdaptSpec = core.AdaptSpec
	// Mechanism identifies a maintenance mechanism.
	Mechanism = core.Mechanism
	// AdaptConfig parameterizes the adaptive-maintenance controller.
	AdaptConfig = adapt.Config
	// Migration describes one performed mechanism change.
	Migration = adapt.Migration
)

// Re-exported maintenance mechanisms.
const (
	StaticMechanism    = core.StaticMechanism
	OnDemandMechanism  = core.OnDemandMechanism
	PeriodicMechanism  = core.PeriodicMechanism
	TriggeredMechanism = core.TriggeredMechanism
)

// ErrNotMigratable reports a migration attempt on an item that did not
// declare an AdaptSpec (or declared no form for the target mechanism).
var ErrNotMigratable = core.ErrNotMigratable

// WithAdaptiveMaintenance arms closed-loop adaptive maintenance: items
// registered for autotuning (Stream.Autotune) are sampled every
// cfg.Interval time units and live-migrated to whichever maintenance
// mechanism their observed read and update rates make cheapest, with
// hysteresis and dwell damping against flapping. The zero AdaptConfig
// selects the documented defaults.
//
// The sampling ticker reschedules itself forever once the first item
// is autotuned; like live periodic subscriptions, that makes
// RunToCompletion non-terminating — drive such systems with Run.
func WithAdaptiveMaintenance(cfg AdaptConfig) SystemOption {
	return func(s *System) { s.adaptCfg = &cfg }
}

// Autotune hands one of the node's metadata items to the adaptive-
// maintenance controller (WithAdaptiveMaintenance must be armed). The
// item must be included (subscribed) and must declare an AdaptSpec.
// slo is the item's freshness bound (0 inherits the controller
// default, which itself defaults to always-fresh, ruling periodic
// out); cost is the item's relative recompute cost hint (0 inherits
// the default).
func (st *Stream) Autotune(kind Kind, slo Duration, cost float64) error {
	return st.sys.autotune(st.node.Registry(), kind, slo, cost)
}

// Migrate switches one of the node's metadata items to the given
// maintenance mechanism by hand, preserving subscribers, last-good
// state, and dependents. window is the update period when to is
// PeriodicMechanism (0 uses the AdaptSpec default).
func (st *Stream) Migrate(kind Kind, to Mechanism, window Duration) error {
	return st.node.Registry().Migrate(kind, to, window)
}

func (s *System) autotune(reg *Registry, kind Kind, slo Duration, cost float64) error {
	if s.adaptCfg == nil {
		return fmt.Errorf("pipes: Autotune(%s) without WithAdaptiveMaintenance", kind)
	}
	ctrl, ok := s.adaptCtrls[reg]
	if !ok {
		if s.adaptCtrls == nil {
			s.adaptCtrls = make(map[*Registry]*adapt.Controller)
		}
		ctrl = adapt.New(reg, *s.adaptCfg)
		s.adaptCtrls[reg] = ctrl
	}
	if err := ctrl.Track(kind, slo, cost); err != nil {
		return err
	}
	if !s.adaptArmed {
		s.adaptArmed = true
		interval := ctrl.Config().Interval
		var tick func(Time)
		tick = func(Time) {
			for _, c := range s.adaptCtrls {
				if ms, _ := c.Step(); len(ms) > 0 {
					s.adaptLog = append(s.adaptLog, ms...)
				}
			}
			s.vc.After(interval, tick)
		}
		s.vc.After(interval, tick)
	}
	return nil
}

// AdaptiveMigrations returns every mechanism change the adaptive-
// maintenance loop has performed so far, in order.
func (s *System) AdaptiveMigrations() []Migration {
	return append([]Migration(nil), s.adaptLog...)
}
