package pipes

import (
	"math"
	"strings"
	"testing"
)

var intSchema = Schema{Name: "ints", Fields: []Field{{Name: "v", Type: "int"}}}

func TestQuickstartPipeline(t *testing.T) {
	sys := NewSystem()
	src := sys.Source("src", intSchema, NewConstantRate(0, 10, 20), 0.1)
	big := src.Filter("big", func(tp Tuple) bool { return tp[0].(int) >= 10 })
	var got []Element
	big.Sink("out", func(e Element) { got = append(got, e) })
	sys.RunToCompletion()
	if len(got) != 10 {
		t.Fatalf("sink got %d elements, want 10", len(got))
	}
}

func TestMetadataSubscriptionThroughFacade(t *testing.T) {
	sys := NewSystem(WithStatWindow(50))
	src := sys.Source("src", intSchema, NewConstantRate(0, 5, 0), 0)
	f := src.Filter("f", func(Tuple) bool { return true })
	f.Sink("out", nil)
	rate, err := f.Subscribe(KindInputRate)
	if err != nil {
		t.Fatal(err)
	}
	defer rate.Unsubscribe()
	sys.Run(500)
	if v, _ := rate.Float(); v != 0.2 {
		t.Fatalf("inputRate = %v, want 0.2", v)
	}
}

func TestJoinThroughFacadeWithCostModel(t *testing.T) {
	sys := NewSystem()
	l := sys.Source("L", intSchema, NewConstantRate(0, 10, 0), 0.1)
	r := sys.Source("R", intSchema, NewConstantRate(5, 10, 0), 0.1)
	lw := l.Window("lw", 100)
	rw := r.Window("rw", 100)
	j := lw.Join(rw, "join", func(a, b Tuple) bool { return a[0] == b[0] })
	matches := 0
	j.Sink("out", func(Element) { matches++ })
	sys.InstallCostModel()

	est, err := j.Subscribe(KindEstCPU)
	if err != nil {
		t.Fatal(err)
	}
	defer est.Unsubscribe()
	want := 0.1*0.1*(100+100)*1 + 0.1 + 0.1
	if v, _ := est.Float(); math.Abs(v-want) > 1e-12 {
		t.Fatalf("estCPU = %v, want %v", v, want)
	}

	sys.Run(1000)
	if matches == 0 {
		t.Fatal("join produced no results")
	}

	// Window change propagates through the cost model.
	lw.SetWindowSize(50)
	want = 0.1*0.1*(50+100)*1 + 0.1 + 0.1
	if v, _ := est.Float(); math.Abs(v-want) > 1e-12 {
		t.Fatalf("estCPU after SetWindowSize = %v, want %v", v, want)
	}
}

func TestAggregateThroughFacade(t *testing.T) {
	sys := NewSystem()
	src := sys.Source("src", intSchema, NewConstantRate(0, 10, 10), 0)
	w := src.Window("w", 30)
	cnt := w.Aggregate("cnt", NewCount())
	var last float64
	cnt.Sink("out", func(e Element) { last = e.Tuple[0].(float64) })
	sys.RunToCompletion()
	// With 30-unit validity and 10-unit spacing, 3 elements are live.
	if last != 3 {
		t.Fatalf("final count = %v, want 3", last)
	}
}

func TestGroupAggregateAndUnionFacade(t *testing.T) {
	sys := NewSystem()
	a := sys.Source("a", intSchema, NewConstantRate(0, 10, 5), 0)
	b := sys.Source("b", intSchema, NewConstantRate(5, 10, 5), 0)
	u := a.Union("u", b)
	w := u.Window("w", 1000)
	ga := w.GroupAggregate("g", 0, NewCount())
	seen := map[any]float64{}
	ga.Sink("out", func(e Element) { seen[e.Tuple[0]] = e.Tuple[1].(float64) })
	sys.RunToCompletion()
	if len(seen) == 0 {
		t.Fatal("group aggregate produced nothing")
	}
}

func TestShedAndLoadShedderFacade(t *testing.T) {
	sys := NewSystem(WithStatWindow(100))
	src := sys.Source("src", intSchema, NewConstantRate(0, 2, 0), 0)
	shed := src.Shed("shed", 0, 11)
	w := shed.Window("w", 200)
	w2 := sys.Source("src2", intSchema, NewConstantRate(1, 2, 0), 0).Window("w2", 200)
	j := w.Join(w2, "join", func(a, b Tuple) bool { return true })
	j.Sink("out", nil)

	ls, err := sys.NewLoadShedder(j, KindMeasuredCPU, shed, 5, 100)
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Close()
	sys.Run(8000)
	if ls.Steps() == 0 {
		t.Fatal("shedder did not run")
	}
	if p := shed.Node(); p == nil {
		t.Fatal("node accessor broken")
	}
}

func TestWindowAdaptorFacade(t *testing.T) {
	sys := NewSystem()
	l := sys.Source("L", intSchema, nil, 0.5)
	r := sys.Source("R", intSchema, nil, 0.5)
	lw := l.Window("lw", 100)
	rw := r.Window("rw", 100)
	j := lw.Join(rw, "join", func(a, b Tuple) bool { return true })
	j.Sink("out", nil)
	sys.InstallCostModel()

	a, err := sys.NewWindowAdaptor(j, []*Stream{lw, rw}, 800, 10)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if !a.Adjust() {
		t.Fatal("adaptor did not adjust")
	}
	est, _ := j.Subscribe(KindEstMem)
	defer est.Unsubscribe()
	if v, _ := est.Float(); v > 800*1.01 {
		t.Fatalf("estMem = %v, want <= 800", v)
	}
}

func TestRecorderFacade(t *testing.T) {
	sys := NewSystem(WithStatWindow(10))
	src := sys.Source("src", intSchema, NewConstantRate(0, 1, 0), 0)
	f := src.Filter("f", func(Tuple) bool { return true })
	f.Sink("out", nil)
	rec := sys.NewRecorder(10)
	defer rec.Close()
	if err := rec.Track("rate", f.Metadata(), KindInputRate); err != nil {
		t.Fatal(err)
	}
	sys.Run(100)
	s := rec.Series("rate")
	if len(s.Samples) == 0 {
		t.Fatal("recorder captured nothing")
	}
	if s.Last().Value != 1 {
		t.Fatalf("recorded rate = %v, want 1", s.Last().Value)
	}
}

func TestInventoryFacade(t *testing.T) {
	sys := NewSystem()
	src := sys.Source("src", intSchema, nil, 0)
	src.Sink("out", nil)
	inv := sys.Inventory()
	if !strings.Contains(inv, "src#0") || !strings.Contains(inv, "sink") {
		t.Fatalf("inventory missing nodes:\n%s", inv)
	}
}

func TestSchedulingFacade(t *testing.T) {
	for _, strategy := range []string{"roundrobin", "fifo", "chain"} {
		sys := NewSystem(WithScheduling(strategy, 5, 1))
		src := sys.Source("src", intSchema, NewConstantRate(0, 1, 50), 0)
		src.Filter("f", func(Tuple) bool { return true }).Sink("out", nil)
		sys.Run(200)
		if sys.Engine().Processed() == 0 {
			t.Fatalf("%s: no elements processed", strategy)
		}
	}
}

func TestUnknownSchedulingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown strategy did not panic")
		}
	}()
	WithScheduling("magic", 1, 1)
}

func TestUpdaterPoolOption(t *testing.T) {
	sys := NewSystem(WithUpdaterPool(2), WithStatWindow(10))
	src := sys.Source("src", intSchema, NewConstantRate(0, 1, 0), 0)
	f := src.Filter("f", func(Tuple) bool { return true })
	f.Sink("out", nil)
	rate, err := f.Subscribe(KindInputRate)
	if err != nil {
		t.Fatal(err)
	}
	defer rate.Unsubscribe()
	sys.Run(100)
	sys.Env().Updater().WaitIdle()
	// Pooled updates run asynchronously, so window boundaries are not
	// exact; the measured rate is approximately the true rate 1.
	if v, _ := rate.Float(); v < 0.7 || v > 1.3 {
		t.Fatalf("pooled rate = %v, want ~1", v)
	}
}

func TestCountWindowFacade(t *testing.T) {
	sys := NewSystem()
	src := sys.Source("src", intSchema, NewConstantRate(0, 10, 10), 0)
	cw := src.CountWindow("cw", 3)
	n := 0
	cw.Sink("out", func(Element) { n++ })
	sys.RunToCompletion()
	if n != 7 {
		t.Fatalf("count window emitted %d, want 7 (10 arrivals, 3 retained)", n)
	}
}

func TestMapFacade(t *testing.T) {
	sys := NewSystem()
	src := sys.Source("src", intSchema, NewConstantRate(0, 1, 5), 0)
	doubled := src.Map("x2", intSchema, func(tp Tuple) Tuple { return Tuple{tp[0].(int) * 2} })
	var vals []int
	doubled.Sink("out", func(e Element) { vals = append(vals, e.Tuple[0].(int)) })
	sys.RunToCompletion()
	if len(vals) != 5 || vals[4] != 8 {
		t.Fatalf("mapped values = %v", vals)
	}
}

func TestSnapshotJSONFacade(t *testing.T) {
	sys := NewSystem()
	src := sys.Source("src", intSchema, NewConstantRate(0, 1, 0), 0)
	f := src.Filter("f", func(Tuple) bool { return true })
	f.Sink("out", nil)
	sub, _ := f.Subscribe(KindCountIn)
	defer sub.Unsubscribe()
	sys.Run(100)
	raw, err := sys.SnapshotJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "countIn") {
		t.Fatalf("snapshot missing countIn:\n%s", raw)
	}
}

func TestFanoutThroughFacade(t *testing.T) {
	sys := NewSystem()
	src := sys.Source("src", intSchema, nil, 0)
	shared := src.Filter("shared", func(Tuple) bool { return true })
	shared.Sink("q1", nil)
	shared.Sink("q2", nil)
	shared.Sink("q3", nil)
	sub, err := shared.Subscribe(KindFanout)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Unsubscribe()
	if v, _ := sub.Float(); v != 3 {
		t.Fatalf("fanout = %v, want 3 (reuse frequency)", v)
	}
}

func TestSinkLatencyThroughFacade(t *testing.T) {
	sys := NewSystem(WithStatWindow(100), WithScheduling("fifo", 1, 7))
	src := sys.Source("src", intSchema, NewConstantRate(0, 10, 0), 0)
	f := src.Filter("f", func(Tuple) bool { return true })
	sink := f.Sink("out", nil)
	lat, err := sink.Subscribe(KindAvgLatency)
	if err != nil {
		t.Fatal(err)
	}
	defer lat.Unsubscribe()
	sys.Run(1000)
	// Service ticks every 7 units against 10-unit arrivals: each
	// element waits until the next tick, so the average latency is
	// strictly positive and below one tick period.
	if v, _ := lat.Float(); v <= 0 || v > 7 {
		t.Fatalf("avgLatency = %v, want in (0, 7]", v)
	}
}
