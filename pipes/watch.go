package pipes

import (
	"repro/internal/core"
	"repro/internal/watch"
)

// Re-exported watch types, so applications only import pipes.
type (
	// Watcher is one watch subscriber's bounded delivery queue.
	Watcher = watch.Watcher
	// WatchEvent is one in-process watch notification.
	WatchEvent = watch.Event
	// WatchOptions configure a watch registration (resume version and
	// ring capacity).
	WatchOptions = watch.Options
	// WatchFrame is the JSON/SSE wire form of a watch event.
	WatchFrame = watch.Frame
	// WatchHub is the epoch-diff fan-out hub behind Stream.Watch.
	WatchHub = watch.Hub
	// WatchServer exposes a hub over HTTP/SSE (see cmd/mdserve).
	WatchServer = watch.Server
	// WatchClient consumes a WatchServer's SSE streams.
	WatchClient = watch.Client
)

// MetaValue is a metadata item's value as carried in a WatchEvent.
type MetaValue = core.Value

// FloatOf converts a watched metadata value to float64.
func FloatOf(v MetaValue) (float64, error) { return core.Float(v) }

// NewWatchClient creates a client for a WatchServer at base, e.g.
// "http://localhost:7171".
func NewWatchClient(base string) *WatchClient { return watch.NewClient(base) }

// WatchHub returns the system's fan-out hub, creating it (and its
// sweeper goroutine) on first use. All Stream.Watch registrations
// share it, so any number of publications per instant cost one
// coalesced wakeup sweep. Close it when the process is done watching.
func (s *System) WatchHub() *WatchHub {
	if s.hub == nil {
		s.hub = watch.NewHub(s.env)
	}
	return s.hub
}

// Watch registers a watcher on one of the node's metadata items: the
// watcher receives an event whenever the item publishes a new version,
// with snapshot-then-delta catch-up when it joins (or resumes) behind
// the item's current version. Watching includes the item like
// Subscribe would; closing the last watcher releases it.
func (st *Stream) Watch(kind Kind, opt WatchOptions) (*Watcher, error) {
	return st.sys.WatchHub().Watch(st.node.Registry(), kind, opt)
}

// NewWatchServer builds an HTTP/SSE server over the system's hub
// exposing every node's registry by node name.
func (s *System) NewWatchServer() *WatchServer {
	regs := make([]*Registry, 0)
	for _, n := range s.graph.Nodes() {
		regs = append(regs, n.Registry())
	}
	return watch.NewServer(s.WatchHub(), s.env, regs...)
}
