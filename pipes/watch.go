package pipes

import (
	"context"

	"repro/internal/core"
	"repro/internal/watch"
)

// Re-exported watch types, so applications only import pipes.
type (
	// Watcher is one watch subscriber's bounded delivery queue.
	Watcher = watch.Watcher
	// WatchEvent is one in-process watch notification.
	WatchEvent = watch.Event
	// WatchOptions configure a watch registration (resume version and
	// ring capacity).
	WatchOptions = watch.Options
	// WatchFrame is the JSON/SSE wire form of a watch event.
	WatchFrame = watch.Frame
	// WatchHub is the epoch-diff fan-out hub behind Stream.Watch.
	WatchHub = watch.Hub
	// WatchServer exposes a hub or relay over HTTP (see cmd/mdserve).
	WatchServer = watch.Server
	// WatchClient consumes a WatchServer's streams (SSE or mux).
	WatchClient = watch.Client
	// WatchSession is an in-process mux session: many watches, one
	// merged queue and wakeup (see System.WatchMux).
	WatchSession = watch.Session
	// WatchSessionEvent is one event from a WatchSession, tagged with
	// its watch id.
	WatchSessionEvent = watch.SessionEvent
	// MuxWatch names one (registry, kind, since) watch in a mux
	// session.
	MuxWatch = watch.MuxWatch
	// MuxSession is one client-side mux transport session.
	MuxSession = watch.MuxSession
	// ReconnectMux is a mux session that redials with per-watch resume.
	ReconnectMux = watch.ReconnectMux
	// WatchRelay mirrors an upstream server through one mux session and
	// re-serves it locally (see NewRelay).
	WatchRelay = watch.Relay
	// WatchRelayOptions tune a relay's upstream leg.
	WatchRelayOptions = watch.RelayOptions
	// WatchReconnectOptions tune client reconnect backoff.
	WatchReconnectOptions = watch.ReconnectOptions
)

// MetaValue is a metadata item's value as carried in a WatchEvent.
type MetaValue = core.Value

// FloatOf converts a watched metadata value to float64.
func FloatOf(v MetaValue) (float64, error) { return core.Float(v) }

// NewWatchClient creates a client for a WatchServer at base, e.g.
// "http://localhost:7171".
func NewWatchClient(base string) *WatchClient { return watch.NewClient(base) }

// WatchHub returns the system's fan-out hub, creating it (and its
// sweeper goroutine) on first use. All Stream.Watch registrations
// share it, so any number of publications per instant cost one
// coalesced wakeup sweep. Close it when the process is done watching.
func (s *System) WatchHub() *WatchHub {
	if s.hub == nil {
		s.hub = watch.NewHub(s.env)
	}
	return s.hub
}

// Watch registers a watcher on one of the node's metadata items: the
// watcher receives an event whenever the item publishes a new version,
// with snapshot-then-delta catch-up when it joins (or resumes) behind
// the item's current version. Watching includes the item like
// Subscribe would; closing the last watcher releases it.
func (st *Stream) Watch(kind Kind, opt WatchOptions) (*Watcher, error) {
	return st.sys.WatchHub().Watch(st.node.Registry(), kind, opt)
}

// NewWatchServer builds an HTTP server over the system's hub exposing
// every node's registry by node name, serving both the legacy per-item
// SSE stream and the mux session endpoints.
func (s *System) NewWatchServer() *WatchServer {
	regs := make([]*Registry, 0)
	for _, n := range s.graph.Nodes() {
		regs = append(regs, n.Registry())
	}
	return watch.NewServer(s.WatchHub(), s.env, regs...)
}

// WatchMux creates an in-process mux session over the system's hub:
// add any number of (node, kind) watches by id and drain one merged
// queue with one wakeup channel, instead of one goroutine per watcher.
// Close the session to release all its watches.
func (s *System) WatchMux() *WatchSession {
	regs := make([]*Registry, 0)
	for _, n := range s.graph.Nodes() {
		regs = append(regs, n.Registry())
	}
	return watch.NewSession(watch.NewHubView(s.WatchHub(), s.env, regs...))
}

// NewRelay connects to an upstream WatchServer and mirrors its whole
// item inventory through exactly one mux session, re-serving it
// locally with the same delivery contract. Serve it with
// NewRelayServer; ctx bounds the upstream session's lifetime.
func NewRelay(ctx context.Context, upstream string, opt WatchRelayOptions) (*WatchRelay, error) {
	return watch.NewRelay(ctx, upstream, opt)
}

// NewRelayServer builds an HTTP server re-serving a relay's mirrored
// items — the downstream face of a fan-out tier.
func NewRelayServer(r *WatchRelay) *WatchServer {
	return watch.NewSourceServer(r)
}
