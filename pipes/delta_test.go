package pipes

import "testing"

// TestDeltaAggregateThroughFacade registers a custom delta aggregate
// over a node's periodic rate items and checks it rides the O(1) delta
// channel while matching the values read directly.
func TestDeltaAggregateThroughFacade(t *testing.T) {
	sys := NewSystem(WithStatWindow(50))
	src := sys.Source("src", intSchema, NewConstantRate(0, 5, 0), 0)
	f := src.Filter("f", func(Tuple) bool { return true })
	f.Sink("out", nil)

	f.Metadata().MustDefine(&Definition{
		Kind: "traffic",
		Deps: []DepRef{
			Dep(SelfNode(), KindInputRate),
			Dep(SelfNode(), KindOutputRate),
		},
		Delta: DeltaSum(),
		Build: NewDeltaAggregate,
	})
	traffic, err := f.Subscribe("traffic")
	if err != nil {
		t.Fatal(err)
	}
	defer traffic.Unsubscribe()
	in, err := f.Subscribe(KindInputRate)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Unsubscribe()
	out, err := f.Subscribe(KindOutputRate)
	if err != nil {
		t.Fatal(err)
	}
	defer out.Unsubscribe()

	sys.Run(500)
	tv, err := traffic.Float()
	if err != nil {
		t.Fatal(err)
	}
	iv, _ := in.Float()
	ov, _ := out.Float()
	if tv != iv+ov || tv == 0 {
		t.Fatalf("traffic = %v, want inRate+outRate = %v (nonzero)", tv, iv+ov)
	}
	st := sys.Env().Stats().Snapshot()
	if st.DeltaFires == 0 {
		t.Fatalf("delta channel never fired: %+v", st)
	}
}

func TestWithoutDeltaPropagationFacade(t *testing.T) {
	sys := NewSystem(WithStatWindow(50), WithoutDeltaPropagation())
	src := sys.Source("src", intSchema, NewConstantRate(0, 5, 0), 0)
	src.Sink("out", nil)
	src.Metadata().MustDefine(&Definition{
		Kind:  "traffic",
		Deps:  []DepRef{Dep(SelfNode(), KindOutputRate)},
		Delta: DeltaSum(),
		Build: NewDeltaAggregate,
	})
	traffic, err := src.Subscribe("traffic")
	if err != nil {
		t.Fatal(err)
	}
	defer traffic.Unsubscribe()
	out, err := src.Subscribe(KindOutputRate)
	if err != nil {
		t.Fatal(err)
	}
	defer out.Unsubscribe()
	sys.Run(500)
	tv, _ := traffic.Float()
	ov, _ := out.Float()
	if tv != ov {
		t.Fatalf("traffic = %v, want %v", tv, ov)
	}
	st := sys.Env().Stats().Snapshot()
	if st.DeltaFires != 0 || st.DeltaFallbacks == 0 {
		t.Fatalf("delta-off system: fires=%d fallbacks=%d", st.DeltaFires, st.DeltaFallbacks)
	}
}
