package pipes_test

import (
	"fmt"

	"repro/pipes"
)

var sensorSchema = pipes.Schema{Name: "readings", Fields: []pipes.Field{
	{Name: "sensor", Type: "int"},
	{Name: "temp", Type: "int"},
}}

// Example builds a small continuous query and reads metadata on
// demand.
func Example() {
	sys := pipes.NewSystem()
	gen := pipes.NewConstantRate(0, 10, 0) // one reading every 10 units
	gen.MakeTup = func(i int) pipes.Tuple { return pipes.Tuple{i % 4, 20 + (i%2)*15} }

	readings := sys.Source("sensors", sensorSchema, gen, 0.1)
	hot := readings.Filter("hot", func(t pipes.Tuple) bool { return t[1].(int) >= 30 })
	alerts := 0
	hot.Sink("alerts", func(pipes.Element) { alerts++ })

	sel, _ := hot.Subscribe(pipes.KindSelectivity)
	defer sel.Unsubscribe()

	sys.Run(10_000)
	v, _ := sel.Float()
	fmt.Printf("alerts=%d selectivity=%.1f\n", alerts, v)
	// Output: alerts=500 selectivity=0.5
}

// ExampleStream_Subscribe shows dependency auto-inclusion: subscribing
// to the triggered running average implicitly includes the periodic
// input rate it depends on.
func ExampleStream_Subscribe() {
	sys := pipes.NewSystem()
	src := sys.Source("src", sensorSchema, pipes.NewConstantRate(0, 5, 0), 0.2)
	f := src.Filter("f", func(pipes.Tuple) bool { return true })
	f.Sink("out", nil)

	avg, _ := f.Subscribe(pipes.KindAvgInputRate)
	defer avg.Unsubscribe()

	fmt.Println("inputRate included:", f.Metadata().IsIncluded(pipes.KindInputRate))
	sys.Run(5000)
	v, _ := avg.Float()
	fmt.Printf("avg input rate ~%.1f\n", v)
	avg.Unsubscribe()
	fmt.Println("inputRate included after unsubscribe:", f.Metadata().IsIncluded(pipes.KindInputRate))
	// Output:
	// inputRate included: true
	// avg input rate ~0.2
	// inputRate included after unsubscribe: false
}

// ExampleSystem_InstallCostModel estimates a window join's CPU usage
// before any element flows, from declared rates and window sizes, and
// re-estimates instantly when a window is resized.
func ExampleSystem_InstallCostModel() {
	sys := pipes.NewSystem()
	schema := pipes.Schema{Name: "s", Fields: []pipes.Field{{Name: "v", Type: "int"}}}
	l := sys.Source("L", schema, nil, 0.1)
	r := sys.Source("R", schema, nil, 0.1)
	lw := l.Window("lw", 100)
	rw := r.Window("rw", 100)
	join := lw.Join(rw, "join", func(a, b pipes.Tuple) bool { return true })
	join.Sink("out", nil)
	sys.InstallCostModel()

	est, _ := join.Subscribe(pipes.KindEstCPU)
	defer est.Unsubscribe()
	v, _ := est.Float()
	fmt.Printf("estCPU=%.1f\n", v)

	lw.SetWindowSize(50) // fires the window-change event
	v, _ = est.Float()
	fmt.Printf("estCPU after resize=%.1f\n", v)
	// Output:
	// estCPU=2.2
	// estCPU after resize=1.7
}
