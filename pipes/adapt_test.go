package pipes

import (
	"errors"
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
)

// defineAdaptable registers a triggered source item "src" (refreshed by
// event "w") and a migratable item "hot" = src + 1 on the stream's
// registry, subscribes "hot", and returns the subscription.
func defineAdaptable(t *testing.T, st *Stream) *Subscription {
	t.Helper()
	reg := st.Metadata()
	srcVal := 5.0
	if err := reg.Define(&Definition{
		Kind:   "src",
		Events: []string{"w"},
		Build: func(*core.BuildContext) (core.Handler, error) {
			return core.NewTriggered(func(clock.Time) (core.Value, error) {
				return srcVal, nil
			}), nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	compute := func(ctx *core.BuildContext) core.ComputeFunc {
		dep := ctx.Dep(0)
		return func(clock.Time) (core.Value, error) {
			f, err := dep.Float()
			if err != nil {
				return nil, err
			}
			return f + 1, nil
		}
	}
	if err := reg.Define(&Definition{
		Kind: "hot",
		Deps: []DepRef{Dep(SelfNode(), "src")},
		Adapt: &AdaptSpec{
			OnDemand:  compute,
			Triggered: compute,
			Periodic: func(ctx *core.BuildContext) core.WindowComputeFunc {
				dep := ctx.Dep(0)
				return func(_, _ clock.Time) (core.Value, error) {
					f, err := dep.Float()
					if err != nil {
						return nil, err
					}
					return f + 1, nil
				}
			},
			Window: 50,
		},
		Build: func(ctx *core.BuildContext) (core.Handler, error) {
			return core.NewOnDemand(compute(ctx)), nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	sub, err := st.Subscribe("hot")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sub.Unsubscribe)
	return sub
}

// TestAutotuneClosedLoop drives an autotuned item through a read-heavy
// then a write-heavy phase via the public facade and checks the system
// ticker live-migrates it each time the workload flips.
func TestAutotuneClosedLoop(t *testing.T) {
	sys := NewSystem(WithAdaptiveMaintenance(AdaptConfig{
		Interval: 100, Hysteresis: 0.05, MinDwell: -1,
	}))
	src := sys.Source("s", Schema{Name: "s", Fields: []Field{{Name: "v", Type: "int"}}}, nil, 0)
	sub := defineAdaptable(t, src)
	if err := src.Autotune("hot", 0, 1); err != nil {
		t.Fatal(err)
	}

	// Phase 1: hot reads, no input churn -> triggered.
	for i := 0; i < 200; i++ {
		if v, err := sub.Float(); err != nil || v != 6 {
			t.Fatalf("hot = %v, %v, want 6", v, err)
		}
	}
	sys.Run(100)
	if m, ok := src.Metadata().Mechanism("hot"); !ok || m != TriggeredMechanism {
		t.Fatalf("after read-heavy phase: mechanism = %v, %v, want triggered", m, ok)
	}

	// Phase 2: hot input churn, one verification read -> on-demand.
	for i := 0; i < 300; i++ {
		src.Metadata().FireEvent("w")
	}
	if v, err := sub.Float(); err != nil || v != 6 {
		t.Fatalf("hot = %v, %v, want 6", v, err)
	}
	sys.Run(200)
	if m, ok := src.Metadata().Mechanism("hot"); !ok || m != OnDemandMechanism {
		t.Fatalf("after write-heavy phase: mechanism = %v, %v, want on-demand", m, ok)
	}

	ms := sys.AdaptiveMigrations()
	if len(ms) != 2 || ms[0].To != TriggeredMechanism || ms[1].To != OnDemandMechanism {
		t.Fatalf("AdaptiveMigrations() = %v, want [->triggered, ->ondemand]", ms)
	}
	if got := sys.Env().Stats().Migrations.Load(); got != 2 {
		t.Fatalf("Stats().Migrations = %d, want 2", got)
	}
}

// TestManualMigrate pins the by-hand migration surface on a stream.
func TestManualMigrate(t *testing.T) {
	sys := NewSystem()
	src := sys.Source("s", Schema{Name: "s", Fields: []Field{{Name: "v", Type: "int"}}}, nil, 0)
	sub := defineAdaptable(t, src)

	if err := src.Migrate("hot", PeriodicMechanism, 0); err != nil {
		t.Fatalf("Migrate(periodic, default window): %v", err)
	}
	if w, ok := src.Metadata().Window("hot"); !ok || w != 50 {
		t.Fatalf("window = %v, %v, want AdaptSpec default 50", w, ok)
	}
	sys.Run(60) // one periodic refresh
	if v, err := sub.Float(); err != nil || v != 6 {
		t.Fatalf("hot = %v, %v, want 6", v, err)
	}
	// Items without an AdaptSpec stay pinned.
	if err := src.Migrate("src", OnDemandMechanism, 0); !errors.Is(err, ErrNotMigratable) {
		t.Fatalf("Migrate(src) = %v, want ErrNotMigratable", err)
	}
}

// TestAutotuneRequiresOption pins the arming error.
func TestAutotuneRequiresOption(t *testing.T) {
	sys := NewSystem()
	src := sys.Source("s", Schema{Name: "s", Fields: []Field{{Name: "v", Type: "int"}}}, nil, 0)
	defineAdaptable(t, src)
	if err := src.Autotune("hot", 0, 0); err == nil {
		t.Fatal("Autotune without WithAdaptiveMaintenance succeeded")
	}
}
