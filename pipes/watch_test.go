package pipes

import (
	"testing"
)

func TestWatchThroughFacade(t *testing.T) {
	sys := NewSystem(WithStatWindow(50))
	src := sys.Source("src", intSchema, NewConstantRate(0, 5, 0), 0)
	f := src.Filter("f", func(Tuple) bool { return true })
	f.Sink("out", nil)

	w, err := f.Watch(KindInputRate, WatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if sys.WatchHub() != sys.WatchHub() {
		t.Fatal("WatchHub is not a singleton")
	}
	defer sys.WatchHub().Close()

	sys.Run(500)
	sys.WatchHub().Barrier()

	var last WatchEvent
	n := 0
	for {
		ev, ok := w.Poll()
		if !ok {
			break
		}
		if ev.Version <= last.Version && n > 0 {
			t.Fatalf("versions not increasing: %d after %d", ev.Version, last.Version)
		}
		last, n = ev, n+1
	}
	if n == 0 {
		t.Fatal("watcher saw no events")
	}
	if v, err := FloatOf(last.Value); err != nil || v != 0.2 {
		t.Fatalf("last watched inputRate = %v (%v), want 0.2", v, err)
	}
}
