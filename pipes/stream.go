package pipes

import (
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/stream"
)

// Stream is a fluent handle on a query-graph node's output.
type Stream struct {
	sys  *System
	node graph.Node
}

// Node exposes the underlying graph node.
func (st *Stream) Node() graph.Node { return st.node }

// Metadata exposes the node's metadata registry.
func (st *Stream) Metadata() *Registry { return st.node.Registry() }

// Subscribe obtains a subscription on one of the node's metadata
// items, creating its handler and including its dependencies on
// demand.
func (st *Stream) Subscribe(kind Kind) (*Subscription, error) {
	return st.node.Registry().Subscribe(kind)
}

// Schema returns the stream's schema.
func (st *Stream) Schema() Schema {
	return st.node.(interface{ Schema() stream.Schema }).Schema()
}

// Source adds a raw stream fed by the generator. declaredRate is the
// statically declared expected rate (0 if unknown), used by the cost
// model until measurements are requested.
func (s *System) Source(name string, schema Schema, gen Generator, declaredRate float64) *Stream {
	src := ops.NewSource(s.graph, name, schema, declaredRate, s.statWindow)
	if gen != nil {
		s.bindings = append(s.bindings, func(e *engine.Engine) { e.Bind(src, gen) })
	}
	return &Stream{sys: s, node: src}
}

// Filter keeps elements whose tuples satisfy pred.
func (st *Stream) Filter(name string, pred func(Tuple) bool) *Stream {
	f := ops.NewFilter(st.sys.graph, name, st.Schema(), pred, st.sys.statWindow)
	st.sys.graph.Connect(st.node, f)
	return &Stream{sys: st.sys, node: f}
}

// Map transforms tuples with fn; outSchema describes the result.
func (st *Stream) Map(name string, outSchema Schema, fn func(Tuple) Tuple) *Stream {
	m := ops.NewMap(st.sys.graph, name, outSchema, fn, st.sys.statWindow)
	st.sys.graph.Connect(st.node, m)
	return &Stream{sys: st.sys, node: m}
}

// Window applies a time-based sliding window of the given size.
func (st *Stream) Window(name string, size Duration) *Stream {
	w := ops.NewTimeWindow(st.sys.graph, name, st.Schema(), size, st.sys.statWindow)
	st.sys.graph.Connect(st.node, w)
	return &Stream{sys: st.sys, node: w}
}

// CountWindow applies a count-based window of n elements.
func (st *Stream) CountWindow(name string, n int) *Stream {
	w := ops.NewCountWindow(st.sys.graph, name, st.Schema(), n, st.sys.statWindow)
	st.sys.graph.Connect(st.node, w)
	return &Stream{sys: st.sys, node: w}
}

// JoinOption configures a join.
type JoinOption = ops.JoinOption

// Re-exported join options.
var (
	// WithListAreas stores join state in list sweep areas (default).
	WithListAreas = ops.WithListAreas
	// WithHashAreas stores join state in hash sweep areas.
	WithHashAreas = ops.WithHashAreas
	// WithPredicateCost sets the simulated predicate cost.
	WithPredicateCost = ops.WithPredicateCost
)

// Join combines this stream (left) with other (right) under a sliding-
// window join. Apply Window (or CountWindow) to both inputs first so
// elements carry validities.
func (st *Stream) Join(other *Stream, name string, pred func(l, r Tuple) bool, opts ...JoinOption) *Stream {
	j := ops.NewJoin(st.sys.graph, name, st.Schema(), other.Schema(), pred, st.sys.statWindow, opts...)
	st.sys.graph.Connect(st.node, j)
	st.sys.graph.Connect(other.node, j)
	return &Stream{sys: st.sys, node: j}
}

// Aggregate computes a windowed aggregate over the stream.
func (st *Stream) Aggregate(name string, agg AggFunc) *Stream {
	a := ops.NewAggregate(st.sys.graph, name, agg, st.sys.statWindow)
	st.sys.graph.Connect(st.node, a)
	return &Stream{sys: st.sys, node: a}
}

// GroupAggregate computes a windowed aggregate per key field.
func (st *Stream) GroupAggregate(name string, keyField int, agg AggFunc) *Stream {
	a := ops.NewGroupAggregate(st.sys.graph, name, keyField, agg, st.sys.statWindow)
	st.sys.graph.Connect(st.node, a)
	return &Stream{sys: st.sys, node: a}
}

// Union merges this stream with others of the same schema.
func (st *Stream) Union(name string, others ...*Stream) *Stream {
	u := ops.NewUnion(st.sys.graph, name, st.Schema(), st.sys.statWindow)
	st.sys.graph.Connect(st.node, u)
	for _, o := range others {
		st.sys.graph.Connect(o.node, u)
	}
	return &Stream{sys: st.sys, node: u}
}

// Shed inserts a load-shedding sampler with the given initial drop
// probability.
func (st *Stream) Shed(name string, dropP float64, seed int64) *Stream {
	sm := ops.NewSampler(st.sys.graph, name, st.Schema(), dropP, seed, st.sys.statWindow)
	st.sys.graph.Connect(st.node, sm)
	return &Stream{sys: st.sys, node: sm}
}

// Sink terminates the stream at an application callback (may be nil)
// and returns the sink's stream handle for metadata access. qos and
// priority become the sink's static query-level metadata.
func (st *Stream) Sink(name string, fn func(Element)) *Stream {
	return st.SinkQoS(name, fn, 0, 0)
}

// SinkQoS is Sink with explicit QoS latency budget and priority.
func (st *Stream) SinkQoS(name string, fn func(Element), qosLatency, priority float64) *Stream {
	k := ops.NewSink(st.sys.graph, name, st.Schema(), fn, qosLatency, priority, st.sys.statWindow)
	st.sys.graph.Connect(st.node, k)
	return &Stream{sys: st.sys, node: k}
}

// SetWindowSize adjusts a time-window stream's size at runtime, firing
// the window-change event (Section 3.3).
func (st *Stream) SetWindowSize(size Duration) {
	st.node.(*ops.TimeWindow).SetSize(size)
}

// SetDropProbability adjusts a sampler stream's drop probability.
func (st *Stream) SetDropProbability(p float64) {
	st.node.(*ops.Sampler).SetDropProbability(p)
}
