// Package pipes is the public API of the stream processing system and
// its dynamic metadata management framework — a Go reproduction of the
// PIPES infrastructure described in "Dynamic Metadata Management for
// Scalable Stream Processing Systems" (ICDE 2007).
//
// A System owns a query graph over a deterministic virtual clock.
// Streams are composed fluently:
//
//	sys := pipes.NewSystem()
//	temps := sys.Source("temps", schema, pipes.NewConstantRate(0, 10, 0), 0.1)
//	hot := temps.Filter("hot", func(t pipes.Tuple) bool { return t[0].(int) > 30 })
//	hot.Sink("alerts", func(e pipes.Element) { ... })
//	sys.Run(10_000)
//
// Every node provides metadata items on demand through a
// publish-subscribe registry (schema, rates, selectivity, CPU and
// memory usage, ...). Subscribing creates the item's handler and
// transitively includes its dependencies; unsubscribing removes them
// again. Only subscribed metadata is ever computed and maintained:
//
//	rate, _ := hot.Subscribe(pipes.KindInputRate)
//	defer rate.Unsubscribe()
//	v, _ := rate.Float()
package pipes

import (
	"repro/internal/adapt"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/monitor"
	"repro/internal/ops"
	"repro/internal/persist"
	"repro/internal/resource"
	"repro/internal/sched"
	"repro/internal/stream"
)

// Re-exported fundamental types, so applications only import pipes.
type (
	// Time is a point in simulated time.
	Time = clock.Time
	// Duration is a span of simulated time.
	Duration = clock.Duration
	// Tuple is an element payload.
	Tuple = stream.Tuple
	// Value is one attribute value.
	Value = stream.Value
	// Element is a stream element with validity interval.
	Element = stream.Element
	// Schema describes a stream's attributes.
	Schema = stream.Schema
	// Field describes one attribute.
	Field = stream.Field
	// Generator produces stream arrivals.
	Generator = stream.Generator
	// Kind names a metadata item.
	Kind = core.Kind
	// Subscription is a consumer's claim on a metadata item.
	Subscription = core.Subscription
	// Registry manages one node's metadata.
	Registry = core.Registry
	// Recorder samples metadata into time series.
	Recorder = monitor.Recorder
	// AggFunc is an incremental windowed aggregate.
	AggFunc = ops.AggFunc
	// BreakerPolicy configures the per-item circuit breaker (see
	// WithBreaker).
	BreakerPolicy = core.BreakerPolicy
	// HealthState is an item's degraded-operation state.
	HealthState = core.HealthState
	// HealthSnapshot is a point-in-time view of an item's breaker
	// state, obtained from Registry.Health.
	HealthSnapshot = core.HealthSnapshot
)

// Re-exported degraded-operation states and sentinels.
const (
	Healthy     = core.Healthy
	Degraded    = core.Degraded
	Quarantined = core.Quarantined
	Probing     = core.Probing
)

var (
	// ErrStale tags reads served from a quarantined item's last-good
	// value: errors.Is(err, ErrStale) detects it, and the returned
	// value is still usable.
	ErrStale = core.ErrStale
	// ErrComputeTimeout reports a metadata computation that exceeded
	// its deadline.
	ErrComputeTimeout = core.ErrComputeTimeout
	// DefaultBreakerPolicy is the breaker configuration WithBreaker
	// falls back to.
	DefaultBreakerPolicy = core.DefaultBreakerPolicy
)

// Re-exported generator constructors.
var (
	// NewConstantRate emits one element every interval units.
	NewConstantRate = stream.NewConstantRate
	// NewPoisson emits a Poisson arrival process.
	NewPoisson = stream.NewPoisson
	// NewBursty emits an on/off burst process.
	NewBursty = stream.NewBursty
	// NewZipfValues draws Zipf-distributed keys.
	NewZipfValues = stream.NewZipfValues
)

// Re-exported aggregate constructors.
var (
	// NewCount counts live elements.
	NewCount = ops.NewCount
	// NewSum sums a field.
	NewSum = ops.NewSum
	// NewAvg averages a field.
	NewAvg = ops.NewAvg
	// NewVar computes a field's population variance.
	NewVar = ops.NewVar
	// NewMin tracks a field's minimum.
	NewMin = ops.NewMin
)

// Re-exported metadata kinds of the operator library.
const (
	KindSchema          = ops.KindSchema
	KindElementSize     = ops.KindElementSize
	KindCountIn         = ops.KindCountIn
	KindCountOut        = ops.KindCountOut
	KindInputRate       = ops.KindInputRate
	KindOutputRate      = ops.KindOutputRate
	KindAvgInputRate    = ops.KindAvgInputRate
	KindAvgOutputRate   = ops.KindAvgOutputRate
	KindSelectivity     = ops.KindSelectivity
	KindMeasuredCPU     = ops.KindMeasuredCPU
	KindStateSize       = ops.KindStateSize
	KindMemUsage        = ops.KindMemUsage
	KindWindowSize      = ops.KindWindowSize
	KindDropProbability = ops.KindDropProbability
	KindQoSLatency      = ops.KindQoSLatency
	KindQoSPriority     = ops.KindQoSPriority
	KindImplType        = ops.KindImplType
	KindDeclaredRate    = ops.KindDeclaredRate
	KindPredicateCost   = ops.KindPredicateCost
	KindAvgLatency      = ops.KindAvgLatency
	KindFanout          = ops.KindFanout
)

// Re-exported cost-model kinds (available after InstallCostModel).
const (
	KindEstValidity   = costmodel.KindEstValidity
	KindEstOutputRate = costmodel.KindEstOutputRate
	KindEstCPU        = costmodel.KindEstCPU
	KindEstMem        = costmodel.KindEstMem
)

// System owns one query graph, its metadata environment, and its
// execution engine, all on a shared deterministic virtual clock.
type System struct {
	vc    *clock.Virtual
	env   *core.Env
	graph *graph.Graph
	eng   *engine.Engine

	statWindow Duration
	engOpts    []engine.Option
	envOpts    []core.EnvOption
	bindings   []func(e *engine.Engine)
	pool       core.Updater

	adaptCfg   *adapt.Config
	adaptCtrls map[*Registry]*adapt.Controller
	adaptArmed bool
	adaptLog   []Migration

	// Durability (see durability.go): configured by WithDurability,
	// activated by OpenDurability once the graph exists.
	durDir  string
	durOpts DurabilityOptions
	plane   *persist.Plane

	// hasBreaker tracks an explicit WithBreaker, so WithDurability can
	// arm the default breaker only when the caller did not choose one.
	hasBreaker bool

	// hub is the system's watch fan-out hub, created on first use (see
	// watch.go).
	hub *WatchHub
}

// SystemOption configures a System.
type SystemOption func(*System)

// WithStatWindow sets the default periodic update window for measured
// metadata (default 100 time units). It calibrates the freshness vs.
// overhead trade-off.
func WithStatWindow(w Duration) SystemOption {
	return func(s *System) { s.statWindow = w }
}

// WithUpdaterPool runs periodic metadata updates on k worker
// goroutines instead of inline (for large query graphs).
func WithUpdaterPool(k int) SystemOption {
	return func(s *System) { s.pool = core.NewPoolUpdater(k) }
}

// WithBoundedUpdaterPool is WithUpdaterPool with a bounded task queue:
// under backpressure, queued periodic scope batches superseded by a
// newer boundary are coalesced (counted in Stats.ShedTicks), while
// triggered propagations are never dropped.
func WithBoundedUpdaterPool(k, capacity int) SystemOption {
	return func(s *System) { s.pool = core.NewPoolUpdater(k, core.WithQueueCapacity(capacity)) }
}

// WithComputeDeadline bounds every asynchronous metadata computation
// (pool-updater maintenance work) to d time units; a compute that
// overruns publishes ErrComputeTimeout and its late result is fenced
// off. Inert on the inline updater.
func WithComputeDeadline(d Duration) SystemOption {
	return func(s *System) { s.envOpts = append(s.envOpts, core.WithComputeDeadline(d)) }
}

// WithMemoizedOnDemand enables the versioned read path: on-demand
// metadata items whose Definition declares Pure serve repeat reads from
// a dependency-stamped memo — lock-free and compute-free while no
// dependency has republished — and concurrent readers of a miss
// coalesce behind a single compute. Items not declared Pure (anything
// reading the clock or external state) keep the paper's exact
// recompute-per-access behaviour, as does every item when this option
// is off.
func WithMemoizedOnDemand() SystemOption {
	return func(s *System) { s.envOpts = append(s.envOpts, core.WithMemoizedOnDemand()) }
}

// WithBreaker arms a per-item circuit breaker: an item whose compute
// panics or times out repeatedly is quarantined — unscheduled, serving
// its last-good value tagged ErrStale — and re-probed on exponential
// backoff until it recovers. A zero policy selects
// DefaultBreakerPolicy.
func WithBreaker(p BreakerPolicy) SystemOption {
	return func(s *System) {
		s.hasBreaker = true
		s.envOpts = append(s.envOpts, core.WithBreaker(p))
	}
}

// WithScheduling switches execution to budget mode: every tick time
// units the named strategy ("roundrobin", "fifo", "chain") services up
// to budget elements.
func WithScheduling(strategy string, budget int, tick Duration) SystemOption {
	var sc sched.Scheduler
	switch strategy {
	case "roundrobin":
		sc = sched.NewRoundRobin()
	case "fifo":
		sc = sched.NewFIFO()
	case "chain":
		sc = sched.NewChain()
	default:
		panic("pipes: unknown scheduling strategy " + strategy)
	}
	return func(s *System) {
		s.engOpts = append(s.engOpts, engine.WithScheduler(sc, budget, tick))
	}
}

// NewSystem creates an empty system on a fresh virtual clock.
func NewSystem(opts ...SystemOption) *System {
	s := &System{vc: clock.NewVirtual(), statWindow: ops.DefaultStatWindow}
	for _, o := range opts {
		o(s)
	}
	var envOpts []core.EnvOption
	if s.pool != nil {
		envOpts = append(envOpts, core.WithUpdater(s.pool))
	}
	if s.durDir != "" && !s.hasBreaker {
		// Durable systems need the quarantine machinery: recovery serves
		// checkpointed values stale through it. An explicit WithBreaker
		// (appended below) overrides this default.
		envOpts = append(envOpts, core.WithBreaker(DefaultBreakerPolicy))
	}
	envOpts = append(envOpts, s.envOpts...)
	s.env = core.NewEnv(s.vc, envOpts...)
	s.graph = graph.New(s.env)
	return s
}

// Graph exposes the underlying query graph.
func (s *System) Graph() *graph.Graph { return s.graph }

// Env exposes the metadata environment (stats, clock).
func (s *System) Env() *core.Env { return s.env }

// Now returns the current simulated time.
func (s *System) Now() Time { return s.vc.Now() }

// InstallCostModel registers the Figure 3 cost-model metadata
// (estimated rates, validities, CPU and memory usage) on every
// supported node. Call it after the query graph is built.
func (s *System) InstallCostModel() { costmodel.Install(s.graph) }

// Run advances the simulation to time t.
func (s *System) Run(t Time) {
	s.ensureEngine()
	s.eng.RunUntil(t)
}

// RunToCompletion drains all scheduled work. It only terminates when
// every clock event is finite: bounded generators, no budget-mode
// scheduling, and no live subscriptions to periodic metadata (whose
// update tickers reschedule forever) — otherwise use Run.
func (s *System) RunToCompletion() {
	s.ensureEngine()
	s.eng.RunToCompletion()
}

// Engine exposes the execution engine (queue statistics etc.); it is
// created on first use.
func (s *System) Engine() *engine.Engine {
	s.ensureEngine()
	return s.eng
}

func (s *System) ensureEngine() {
	if s.eng != nil {
		return
	}
	s.eng = engine.New(s.graph, s.vc, s.engOpts...)
	for _, b := range s.bindings {
		b(s.eng)
	}
	s.eng.Start()
}

// NewRecorder creates a metadata time-series recorder sampling every
// period time units.
func (s *System) NewRecorder(period Duration) *Recorder {
	return monitor.NewRecorder(s.env, period)
}

// Inventory reports each node's available and included metadata items.
func (s *System) Inventory() string {
	return monitor.FormatInventory(monitor.Inventory(s.graph))
}

// DependencyDOT renders the live metadata dependency graph (every
// included item and its dependency edges, across nodes and modules) in
// Graphviz DOT format — the Figure 3 picture for the running system.
func (s *System) DependencyDOT() string {
	return monitor.DependencyDOT(s.graph)
}

// SnapshotJSON captures every included metadata item of every node and
// module with its current value as indented JSON — the raw material of
// the system-profiling application.
func (s *System) SnapshotJSON() ([]byte, error) {
	return monitor.SnapshotJSON(s.graph)
}

// NewWindowAdaptor creates an adaptive window manager keeping the
// stream's node (a join) at or below the estimated-memory bound.
func (s *System) NewWindowAdaptor(join *Stream, windows []*Stream, bound float64, period Duration) (*resource.WindowAdaptor, error) {
	ws := make([]*ops.TimeWindow, len(windows))
	for i, w := range windows {
		tw, ok := w.node.(*ops.TimeWindow)
		if !ok {
			panic("pipes: NewWindowAdaptor requires time-window streams")
		}
		ws[i] = tw
	}
	return resource.NewWindowAdaptor(s.env, join.node.Registry(), ws, bound, period)
}

// NewLoadShedder creates a load shedder adjusting the sampler stream's
// drop probability to keep the monitored stream's load item at or
// below capacity.
func (s *System) NewLoadShedder(monitored *Stream, kind Kind, sampler *Stream, capacity float64, period Duration) (*resource.LoadShedder, error) {
	sm, ok := sampler.node.(*ops.Sampler)
	if !ok {
		panic("pipes: NewLoadShedder requires a sampler stream (use Shed)")
	}
	return resource.NewLoadShedder(s.env, monitored.node.Registry(), kind, sm, capacity, period)
}
