package pipes

import "repro/internal/core"

// Delta-propagation surface: metadata aggregates over many dependency
// edges can declare an incremental (Combine/Retract) form and be
// maintained in O(1) per upstream publication instead of refolding the
// whole fan-in (see internal/core/delta.go for the exactness
// contract). Non-invertible aggregates (DeltaMin) declare Retract=nil
// and transparently fall back to the exact full fold.
type (
	// DeltaSpec declares an aggregate's incremental form.
	DeltaSpec = core.DeltaSpec
	// DeltaAcc is the aggregate's fixed-size accumulator.
	DeltaAcc = core.DeltaAcc
	// Definition declares a metadata item (used with Registry.Define
	// to register custom delta aggregates on a node).
	Definition = core.Definition
	// DepRef names one dependency edge of a Definition.
	DepRef = core.DepRef
)

var (
	// NewDeltaAggregate builds the handler for a Definition that
	// declares Deps and a Delta spec: a triggered aggregate maintained
	// through the delta channel when possible, by full fold otherwise.
	NewDeltaAggregate = core.NewDeltaAggregate
	// DeltaSum is an incrementally maintained sum over the fan-in.
	DeltaSum = core.DeltaSum
	// DeltaCount is an incrementally maintained dependency count.
	DeltaCount = core.DeltaCount
	// DeltaMean is an incrementally maintained mean.
	DeltaMean = core.DeltaMean
	// DeltaVar is an incrementally maintained population variance.
	DeltaVar = core.DeltaVar
	// DeltaMin tracks the minimum; it is not invertible (Retract=nil)
	// and always refolds on updates, kept for uniform declaration.
	DeltaMin = core.DeltaMin
	// Dep builds a dependency reference for a Definition.
	Dep = core.Dep
	// SelfNode selects a dependency on the defining node itself.
	SelfNode = core.Self
)

// WithoutDeltaPropagation disables the incremental delta channel:
// every aggregate refresh runs the full fold. Ablation switch for the
// delta-propagation experiments (E21); WithNaivePropagation implies
// it.
func WithoutDeltaPropagation() SystemOption {
	return func(s *System) { s.envOpts = append(s.envOpts, core.WithoutDeltaPropagation()) }
}
