package pipes

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/persist"
)

// Durable metadata plane: an opt-in WAL + checkpoint layer under the
// system's registries. With durability open, every structural operation
// (subscribe, unsubscribe, migrate, codec-backed define) is journaled,
// the full plane is checkpointed periodically, and a restarted process
// recovers its topology with each checkpointed item serving its
// pre-crash last-good value tagged ErrStale until the probe machinery
// recomputes it.

// Re-exported durability types.
type (
	// SyncPolicy selects when WAL appends reach stable storage.
	SyncPolicy = persist.SyncPolicy
	// RecoveryStats reports what OpenDurability found and rebuilt.
	RecoveryStats = persist.RecoveryStats
)

// WAL fsync policies.
const (
	// SyncAlways fsyncs every WAL append (default; loses at most the op
	// in flight on a crash).
	SyncAlways = persist.SyncAlways
	// SyncNone leaves WAL flushing to the OS (faster; a crash may drop
	// recent structural ops, recovery still replays a clean prefix).
	SyncNone = persist.SyncNone
)

// DurabilityOptions tunes the durable plane. The zero value selects
// SyncAlways with a checkpoint every 64 structural ops.
type DurabilityOptions struct {
	Sync SyncPolicy
	// CheckpointEvery is the automatic checkpoint interval in WAL
	// records (0 = default 64, negative = manual checkpoints only).
	CheckpointEvery int
}

// WithDurability configures the system to persist its metadata plane
// under dir. Recovery does not happen here — registries only exist once
// the query graph is built — so build the graph, then call
// OpenDurability before subscribing. A system configured with
// durability arms the circuit breaker automatically (recovery serves
// checkpointed values through quarantine) unless WithBreaker was given
// explicitly.
func WithDurability(dir string, opts DurabilityOptions) SystemOption {
	return func(s *System) {
		s.durDir = dir
		s.durOpts = opts
	}
}

// OpenDurability recovers any persisted plane state from the configured
// directory into the current graph's registries and starts journaling.
// Call it after the query graph is fully built and before subscribing:
// recovered subscriptions re-pin their items, and new subscriptions are
// journaled from here on.
func (s *System) OpenDurability() (*RecoveryStats, error) {
	if s.durDir == "" {
		return nil, fmt.Errorf("pipes: durability not configured (use WithDurability)")
	}
	if s.plane != nil {
		return nil, fmt.Errorf("pipes: durability already open")
	}
	every := s.durOpts.CheckpointEvery
	switch {
	case every == 0:
		every = 64
	case every < 0:
		every = 0
	}
	regs := make([]*core.Registry, 0)
	for _, n := range s.graph.Nodes() {
		regs = append(regs, n.Registry())
	}
	plane, rs, err := persist.Open(s.env, s.durDir,
		persist.Options{Sync: s.durOpts.Sync, CheckpointEvery: every}, regs...)
	if err != nil {
		return nil, err
	}
	s.plane = plane
	return rs, nil
}

// Checkpoint writes a full-plane checkpoint now (durability must be
// open). Useful before a planned shutdown or on an operator signal.
func (s *System) Checkpoint() error {
	if s.plane == nil {
		return fmt.Errorf("pipes: durability not open")
	}
	return s.plane.Checkpoint()
}

// CloseDurability writes a final checkpoint and stops journaling. The
// subscriptions recovery re-created are released; the checkpoint
// already carries them, so the next OpenDurability re-pins them.
func (s *System) CloseDurability() error {
	if s.plane == nil {
		return nil
	}
	p := s.plane
	s.plane = nil
	return p.Close()
}

// DurabilityErr reports the first persistence failure, or nil. A
// non-nil error means journaling stopped (the system degraded to
// non-durable) with on-disk state frozen at the last successful write.
func (s *System) DurabilityErr() error {
	if s.plane == nil {
		return nil
	}
	return s.plane.Err()
}
