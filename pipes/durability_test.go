package pipes

import (
	"errors"
	"testing"

	"repro/internal/core"
)

// buildPipeline constructs the identical small graph both lives of the
// durability tests run: source -> filter -> sink.
func buildPipeline(sys *System) *Stream {
	src := sys.Source("src", intSchema, NewConstantRate(0, 5, 0), 0)
	f := src.Filter("f", func(Tuple) bool { return true })
	f.Sink("out", nil)
	return f
}

func TestDurabilityRestartServesStaleThenRecovers(t *testing.T) {
	dir := t.TempDir()

	// ---- First life. ----
	sys1 := NewSystem(WithStatWindow(50), WithDurability(dir, DurabilityOptions{}))
	f1 := buildPipeline(sys1)
	rs1, err := sys1.OpenDurability()
	if err != nil {
		t.Fatalf("OpenDurability: %v", err)
	}
	if rs1.Recovered {
		t.Fatal("fresh dir reported recovered")
	}
	rate, err := f1.Subscribe(KindInputRate)
	if err != nil {
		t.Fatal(err)
	}
	sys1.Run(500)
	want, err := rate.Float()
	if err != nil || want != 0.2 {
		t.Fatalf("pre-crash inputRate = %v, %v; want 0.2", want, err)
	}
	ver1, _ := f1.Metadata().ItemVersion(KindInputRate)
	if err := sys1.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	// No CloseDurability: the process dies here.

	// ---- Second life: same graph, fresh system, recover. ----
	sys2 := NewSystem(WithStatWindow(50), WithDurability(dir, DurabilityOptions{}))
	f2 := buildPipeline(sys2)
	rs2, err := sys2.OpenDurability()
	if err != nil {
		t.Fatalf("recovery OpenDurability: %v", err)
	}
	defer sys2.CloseDurability()
	if !rs2.Recovered || rs2.Subscribed != 1 || rs2.Restored < 1 {
		t.Fatalf("recovery stats = %+v, want 1 subscription and >= 1 restored item", rs2)
	}
	// The recovered subscription re-pinned the item; the first read
	// serves the pre-crash value tagged stale, without any recompute.
	v, err := f2.Metadata().Peek(KindInputRate)
	if !errors.Is(err, ErrStale) {
		t.Fatalf("recovered read = (%v, %v), want ErrStale-tagged", v, err)
	}
	if v != want {
		t.Fatalf("recovered value = %v, want pre-crash %v", v, want)
	}
	if ver2, _ := f2.Metadata().ItemVersion(KindInputRate); ver2 <= ver1 {
		t.Fatalf("recovered version %d not above persisted %d", ver2, ver1)
	}
	// The clock resumed at (not before) the pre-crash instant.
	if sys2.Now() < 500 {
		t.Fatalf("recovered clock at %d, want >= 500", sys2.Now())
	}

	// Warm phase: run on; the probe machinery recomputes and the stream
	// keeps flowing, so reads go fresh again.
	sys2.Run(sys2.Now() + Time(10*DefaultBreakerPolicy.MaxProbeBackoff))
	v, err = f2.Metadata().Peek(KindInputRate)
	if err != nil {
		t.Fatalf("post-warm read: %v", err)
	}
	if _, ok := v.(float64); !ok {
		t.Fatalf("post-warm value %v (%T)", v, v)
	}
	if hs, ok := f2.Metadata().Health(KindInputRate); !ok || hs.State != core.Healthy {
		t.Fatalf("post-warm health = %+v", hs)
	}
}

func TestDurabilityGracefulRestartCycle(t *testing.T) {
	dir := t.TempDir()
	for i := 0; i < 3; i++ {
		sys := NewSystem(WithDurability(dir, DurabilityOptions{CheckpointEvery: -1}))
		f := buildPipeline(sys)
		rs, err := sys.OpenDurability()
		if err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		if i == 0 {
			if _, err := f.Subscribe(KindSelectivity); err != nil {
				t.Fatal(err)
			}
		} else if rs.Subscribed != 1 {
			t.Fatalf("cycle %d: Subscribed = %d, want stable 1", i, rs.Subscribed)
		}
		if !f.Metadata().IsIncluded(KindSelectivity) {
			t.Fatalf("cycle %d: selectivity not included", i)
		}
		if err := sys.CloseDurability(); err != nil {
			t.Fatalf("cycle %d close: %v", i, err)
		}
	}
}

func TestDurabilityNotConfigured(t *testing.T) {
	sys := NewSystem()
	if _, err := sys.OpenDurability(); err == nil {
		t.Fatal("OpenDurability without WithDurability did not error")
	}
	if err := sys.Checkpoint(); err == nil {
		t.Fatal("Checkpoint without open durability did not error")
	}
	if err := sys.CloseDurability(); err != nil {
		t.Fatalf("CloseDurability no-op returned %v", err)
	}
}
