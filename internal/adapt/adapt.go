// Package adapt closes the loop between the metadata framework's
// observability and its mechanism-migration primitive: a Controller
// samples each tracked item's access-vs-update economics
// (core.Registry.AccessStats), prices the alternative maintenance
// mechanisms with the costmodel selection model (costmodel.Choose),
// and live-migrates items whose current mechanism has become
// sufficiently uneconomic (core.Registry.Migrate).
//
// This implements the adaptivity argument of Section 3.2 as a running
// system instead of a design-time choice: hot-read/rarely-changing
// items drift toward triggered (or memoized on-demand) maintenance,
// hot-write/rarely-read items toward on-demand, and items with a
// freshness SLO toward the longest periodic window the SLO admits.
//
// Two dampers keep the loop stable. Hysteresis: a candidate mechanism
// must beat the current one's estimated cost rate by a configured
// fraction, so the controller never migrates on a tie or on noise
// around a break-even workload, and a configuration it has just
// chosen is immediately re-justified (see FuzzMigrationPlan, which
// pins this no-flapping property). Dwell: a freshly migrated item is
// exempt from further migration for MinDwell sampling intervals, so
// rate estimates are always taken against a settled configuration.
package adapt

import (
	"fmt"
	"sync"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/costmodel"
)

// Config parameterizes a Controller. The zero value is usable: every
// field has a documented default applied by New.
type Config struct {
	// Interval is the sampling period Run uses between Steps (also the
	// denominator hint callers should use when stepping manually).
	// Default 100 time units.
	Interval clock.Duration

	// Hysteresis is the fractional cost-rate improvement a candidate
	// mechanism must show over the current one before the controller
	// migrates: migrate only if best*(1+Hysteresis) < current.
	// Default 0.2; negative values are clamped to 0.
	Hysteresis float64

	// MinDwell is the number of sampling intervals an item must hold
	// its configuration before it may migrate again. Default 2; pass a
	// negative value for no dwell requirement.
	MinDwell int

	// FreshnessSLO is the default staleness bound for tracked items: a
	// tracked item may serve values up to this old, making periodic
	// maintenance admissible. 0 (the default) demands always-fresh
	// values and rules periodic out. Track can override per item.
	FreshnessSLO clock.Duration

	// MinWindow and MaxWindow clamp the periodic windows the
	// controller will configure. Defaults 10 and 1000.
	MinWindow clock.Duration
	MaxWindow clock.Duration

	// CostHint is the default per-recomputation cost of tracked items
	// (costmodel.Workload.Cost). Only ratios between items matter;
	// default 1. Track can override per item.
	CostHint float64
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 100
	}
	if c.Hysteresis < 0 {
		c.Hysteresis = 0
	}
	if c.MinDwell == 0 {
		c.MinDwell = 2
	} else if c.MinDwell < 0 {
		c.MinDwell = 0
	}
	if c.MinWindow <= 0 {
		c.MinWindow = 10
	}
	if c.MaxWindow <= 0 {
		c.MaxWindow = 1000
	}
	if c.CostHint <= 0 {
		c.CostHint = 1
	}
	return c
}

// Observation is one item's sampled economics over the interval since
// the previous Sample (or since Track).
type Observation struct {
	Kind core.Kind
	// Reads and Updates are rates per time unit over the sample
	// interval: value reads of the item, and publications of its
	// direct dependencies (its own publications for dependency-less
	// source items).
	Reads   float64
	Updates float64
	// Mech and Window describe the item's current configuration.
	Mech   core.Mechanism
	Window clock.Duration
	// Pure reports the item's AdaptSpec.Pure declaration (memoizable
	// on-demand form).
	Pure bool
	// Dwell counts completed sampling intervals since the item's last
	// migration (or since Track).
	Dwell int
	// SLO and Cost are the item's effective freshness bound and
	// recompute cost hint.
	SLO  clock.Duration
	Cost float64
}

// Migration is one planned mechanism change.
type Migration struct {
	Kind core.Kind
	From core.Mechanism
	To   core.Mechanism
	// Window is the target update period when To is periodic.
	Window clock.Duration
	// Gain is the estimated cost-rate improvement (current - best).
	Gain float64
}

func (m Migration) String() string {
	if m.To == core.PeriodicMechanism {
		return fmt.Sprintf("%s: %v -> %v(w=%d)", m.Kind, m.From, m.To, m.Window)
	}
	return fmt.Sprintf("%s: %v -> %v", m.Kind, m.From, m.To)
}

type itemState struct {
	slo         clock.Duration
	cost        float64
	pure        bool
	lastReads   int64
	lastUpdates uint64
	lastDeps    uint64
	lastTime    clock.Time
	dwell       int
}

// Controller drives adaptive maintenance for one registry. All
// methods are safe for concurrent use; Sample/Plan/Apply are exposed
// separately so tests and benchmarks can drive the loop
// deterministically, while Step runs one full iteration.
type Controller struct {
	reg *core.Registry
	cfg Config

	mu    sync.Mutex
	items map[core.Kind]*itemState
}

// New returns a controller over the registry with defaults applied to
// cfg.
func New(reg *core.Registry, cfg Config) *Controller {
	return &Controller{
		reg:   reg,
		cfg:   cfg.withDefaults(),
		items: make(map[core.Kind]*itemState),
	}
}

// Config returns the controller's effective (default-applied)
// configuration.
func (c *Controller) Config() Config { return c.cfg }

// Track registers an included, migratable item with the controller
// and enables read tracking on it. slo overrides the controller-wide
// FreshnessSLO when positive; cost overrides CostHint when positive.
// Tracking an already-tracked item updates its overrides and resets
// its sampling baseline.
func (c *Controller) Track(kind core.Kind, slo clock.Duration, cost float64) error {
	if _, ok := c.reg.Adaptable(kind); !ok {
		return fmt.Errorf("adapt: %s is not an included migratable item", kind)
	}
	if !c.reg.TrackReads(kind) {
		return fmt.Errorf("adapt: %s is not included", kind)
	}
	reads, updates, _ := c.reg.AccessStats(kind)
	deps, _, _ := c.reg.DepUpdates(kind)
	if slo <= 0 {
		slo = c.cfg.FreshnessSLO
	}
	if cost <= 0 {
		cost = c.cfg.CostHint
	}
	c.mu.Lock()
	c.items[kind] = &itemState{
		slo: slo, cost: cost,
		lastReads: reads, lastUpdates: updates, lastDeps: deps,
		lastTime: c.reg.Env().Now(),
	}
	c.mu.Unlock()
	return nil
}

// Untrack forgets a tracked item. The read counter stays installed
// (tracking is per-entry and harmless); only the controller state is
// dropped.
func (c *Controller) Untrack(kind core.Kind) {
	c.mu.Lock()
	delete(c.items, kind)
	c.mu.Unlock()
}

// Sample reads each tracked item's counters and returns per-item rate
// observations for the elapsed interval, advancing the baselines. An
// item whose interval is empty (no time elapsed) or that is no longer
// included is skipped this round.
func (c *Controller) Sample() []Observation {
	now := c.reg.Env().Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	obs := make([]Observation, 0, len(c.items))
	for kind, st := range c.items {
		reads, updates, ok := c.reg.AccessStats(kind)
		if !ok {
			continue
		}
		elapsed := float64(now - st.lastTime)
		if elapsed <= 0 {
			continue
		}
		deps, ndeps, _ := c.reg.DepUpdates(kind)
		mech, _ := c.reg.Mechanism(kind)
		window, _ := c.reg.Window(kind)
		pure, _ := c.reg.Adaptable(kind)
		st.dwell++
		// The update rate must be mechanism-independent or the loop
		// flaps: an item's own publication version counts what the
		// current mechanism exhibits (nothing for on-demand, the
		// cadence for periodic), so it is only used for dependency-less
		// source items, where input churn IS the item's own event-driven
		// republication. Everything else is priced by how often its
		// inputs published (DepUpdates).
		updDelta := float64(deps - st.lastDeps)
		if ndeps == 0 {
			updDelta = float64(updates - st.lastUpdates)
		}
		o := Observation{
			Kind:    kind,
			Reads:   float64(reads-st.lastReads) / elapsed,
			Updates: updDelta / elapsed,
			Mech:    mech,
			Window:  window,
			Pure:    pure,
			Dwell:   st.dwell,
			SLO:     st.slo,
			Cost:    st.cost,
		}
		st.lastReads, st.lastUpdates, st.lastDeps, st.lastTime = reads, updates, deps, now
		obs = append(obs, o)
	}
	return obs
}

// Plan prices each observation's current mechanism against the
// costmodel's best choice and returns the migrations that clear both
// dampers (hysteresis and dwell). Plan is a pure function of its
// input and the controller's configuration — it reads no controller
// state — so callers can re-plan hypothetical workloads freely.
func (c *Controller) Plan(obs []Observation) []Migration {
	var ms []Migration
	for _, o := range obs {
		if o.Mech == core.StaticMechanism {
			continue
		}
		w := costmodel.Workload{
			Reads: o.Reads, Writes: o.Updates,
			Cost: o.Cost, SLO: o.SLO, Pure: o.Pure,
		}
		best := costmodel.Choose(w, c.cfg.MinWindow, c.cfg.MaxWindow)
		if best.Mech == o.Mech && (best.Mech != core.PeriodicMechanism || best.Window == o.Window) {
			continue
		}
		if o.Dwell < c.cfg.MinDwell {
			continue
		}
		cur := w.Rate(o.Mech, o.Window)
		if best.CostRate*(1+c.cfg.Hysteresis) >= cur {
			continue
		}
		ms = append(ms, Migration{
			Kind: o.Kind, From: o.Mech, To: best.Mech,
			Window: best.Window, Gain: cur - best.CostRate,
		})
	}
	return ms
}

// Apply executes the planned migrations, resetting the dwell of each
// migrated item, and returns how many succeeded. Items excluded since
// planning fail their individual migration without affecting the
// rest; the first error encountered is returned alongside the count.
func (c *Controller) Apply(ms []Migration) (int, error) {
	applied := 0
	var firstErr error
	for _, m := range ms {
		if err := c.reg.Migrate(m.Kind, m.To, m.Window); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("adapt: %s: %w", m.Kind, err)
			}
			continue
		}
		applied++
		c.mu.Lock()
		if st, ok := c.items[m.Kind]; ok {
			st.dwell = 0
		}
		c.mu.Unlock()
	}
	return applied, firstErr
}

// Step runs one controller iteration — sample, plan, apply — and
// returns the migrations it performed (nil on a quiet step).
func (c *Controller) Step() ([]Migration, error) {
	ms := c.Plan(c.Sample())
	if len(ms) == 0 {
		return nil, nil
	}
	n, err := c.Apply(ms)
	if n < len(ms) {
		ms = ms[:n]
	}
	return ms, err
}
