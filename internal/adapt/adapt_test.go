package adapt

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/costmodel"
)

// buildLoop defines a triggered source "src" (refreshed by event "w")
// and a migratable item "hot" = src + 1 with all three maintenance
// forms, starting on-demand.
func buildLoop(t *testing.T) (*core.Env, *clock.Virtual, *core.Registry, *core.Subscription) {
	t.Helper()
	vc := clock.NewVirtual()
	env := core.NewEnv(vc)
	r := env.NewRegistry("n")
	srcVal := 5.0
	r.MustDefine(&core.Definition{
		Kind:   "src",
		Events: []string{"w"},
		Build: func(*core.BuildContext) (core.Handler, error) {
			return core.NewTriggered(func(clock.Time) (core.Value, error) {
				return srcVal, nil
			}), nil
		},
	})
	compute := func(ctx *core.BuildContext) core.ComputeFunc {
		dep := ctx.Dep(0)
		return func(clock.Time) (core.Value, error) {
			f, err := dep.Float()
			if err != nil {
				return nil, err
			}
			return f + 1, nil
		}
	}
	r.MustDefine(&core.Definition{
		Kind: "hot",
		Deps: []core.DepRef{core.Dep(core.Self(), "src")},
		Adapt: &core.AdaptSpec{
			OnDemand:  compute,
			Triggered: compute,
			Periodic: func(ctx *core.BuildContext) core.WindowComputeFunc {
				dep := ctx.Dep(0)
				return func(_, _ clock.Time) (core.Value, error) {
					f, err := dep.Float()
					if err != nil {
						return nil, err
					}
					return f + 1, nil
				}
			},
			Window: 50,
		},
		Build: func(ctx *core.BuildContext) (core.Handler, error) {
			return core.NewOnDemand(compute(ctx)), nil
		},
	})
	s, err := r.Subscribe("hot")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Unsubscribe)
	return env, vc, r, s
}

// TestControllerClosedLoop drives one item through three workload
// phases and checks the controller live-migrates it to the mechanism
// the cost model prescribes for each: read-heavy -> triggered,
// write-heavy and rarely read -> on-demand, read+write-heavy under a
// loose SLO and costly compute -> periodic at the SLO window.
func TestControllerClosedLoop(t *testing.T) {
	env, vc, r, s := buildLoop(t)
	c := New(r, Config{Interval: 100, MinDwell: -1, MinWindow: 10, MaxWindow: 1000})
	// SLO 100 and recompute cost 50: expensive enough that a periodic
	// cadence wins when both reads and writes are hot.
	if err := c.Track("hot", 100, 50); err != nil {
		t.Fatal(err)
	}

	read := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if v, err := s.Float(); err != nil || v != 6 {
				t.Fatalf("hot = %v, %v, want 6", v, err)
			}
		}
	}
	write := func(n int) {
		for i := 0; i < n; i++ {
			r.FireEvent("w")
		}
	}

	// Phase 1: hot reads, no writes. On-demand recomputes per access
	// (rate 2*50); triggered would cost nothing.
	read(200)
	vc.Advance(100)
	ms, err := c.Step()
	if err != nil || len(ms) != 1 || ms[0].To != core.TriggeredMechanism {
		t.Fatalf("phase 1: step = %v, %v, want migration to triggered", ms, err)
	}
	read(1)

	// Phase 2: hot writes, almost no reads (one verification read in
	// the interval). Triggered recomputes per input change for nobody;
	// on-demand pays only for what is read.
	write(300)
	vc.Advance(100)
	ms, err = c.Step()
	if err != nil || len(ms) != 1 || ms[0].To != core.OnDemandMechanism {
		t.Fatalf("phase 2: step = %v, %v, want migration to on-demand", ms, err)
	}
	read(1)

	// Phase 3: hot reads AND hot writes. Every event-driven mechanism
	// pays per access or per change; the 100-unit SLO admits a periodic
	// cadence at 1/100th the cost.
	read(200)
	write(300)
	vc.Advance(100)
	ms, err = c.Step()
	if err != nil || len(ms) != 1 || ms[0].To != core.PeriodicMechanism || ms[0].Window != 100 {
		t.Fatalf("phase 3: step = %v, %v, want migration to periodic(100)", ms, err)
	}
	read(1)

	if got := env.Stats().Migrations.Load(); got != 3 {
		t.Fatalf("Migrations = %d, want 3", got)
	}
}

// TestControllerDwellDamping checks MinDwell: a clearly beneficial
// migration is still held back until the item has dwelled enough
// sampling intervals, then fires.
func TestControllerDwellDamping(t *testing.T) {
	_, vc, r, s := buildLoop(t)
	c := New(r, Config{Interval: 100, MinDwell: 2})
	if err := c.Track("hot", 0, 1); err != nil {
		t.Fatal(err)
	}
	for round := 1; ; round++ {
		for i := 0; i < 200; i++ {
			s.Float()
		}
		vc.Advance(100)
		ms, err := c.Step()
		if err != nil {
			t.Fatal(err)
		}
		if round < 2 {
			if len(ms) != 0 {
				t.Fatalf("round %d: migrated before MinDwell: %v", round, ms)
			}
			continue
		}
		if len(ms) != 1 || ms[0].To != core.TriggeredMechanism {
			t.Fatalf("round %d: step = %v, want migration to triggered", round, ms)
		}
		break
	}
}

// TestControllerTrackErrors pins Track's failure modes.
func TestControllerTrackErrors(t *testing.T) {
	_, _, r, _ := buildLoop(t)
	c := New(r, Config{})
	if err := c.Track("src", 0, 0); err == nil {
		t.Fatal("tracking a non-migratable item succeeded")
	}
	if err := c.Track("ghost", 0, 0); err == nil {
		t.Fatal("tracking an undefined item succeeded")
	}
}

// TestPlanHysteresis pins the hysteresis damper on a near-break-even
// workload: a candidate that is better but not better *enough* does
// not trigger a migration.
func TestPlanHysteresis(t *testing.T) {
	o := Observation{
		Kind: "x", Reads: 2.2, Updates: 2.0, Cost: 1,
		Mech: core.OnDemandMechanism, Dwell: 100,
	}
	// Triggered (rate 2.0) beats on-demand (2.2), but not by 20%.
	c := New(nil, Config{Hysteresis: 0.2, MinDwell: -1})
	if ms := c.Plan([]Observation{o}); len(ms) != 0 {
		t.Fatalf("plan with 20%% hysteresis = %v, want none", ms)
	}
	// Without hysteresis the same workload migrates.
	c = New(nil, Config{Hysteresis: -1, MinDwell: -1}) // -1 clamps to 0
	ms := c.Plan([]Observation{o})
	if len(ms) != 1 || ms[0].To != core.TriggeredMechanism {
		t.Fatalf("plan without hysteresis = %v, want migration to triggered", ms)
	}
}

// FuzzMigrationPlan fuzzes the planner over arbitrary workload
// observations and configurations, checking that every planned
// migration is legal (dynamic target mechanisms only, windows positive
// and clamped, periodic only under an SLO) and that the loop cannot
// flap: re-planning the same workload right after applying the plan's
// own decision yields no further migration, for any hysteresis >= 0.
func FuzzMigrationPlan(f *testing.F) {
	f.Add(uint16(200), uint16(1), uint8(1), uint16(0), uint8(1), uint8(0), false, uint8(20))
	f.Add(uint16(0), uint16(300), uint8(1), uint16(0), uint8(3), uint8(0), false, uint8(0))
	f.Add(uint16(10), uint16(10), uint8(50), uint16(100), uint8(2), uint8(50), true, uint8(20))
	f.Add(uint16(1), uint16(1), uint8(0), uint16(5000), uint8(2), uint8(255), true, uint8(100))
	f.Fuzz(func(t *testing.T, reads, writes uint16, cost uint8, slo uint16,
		mech, window uint8, pure bool, hyst uint8) {
		from := core.Mechanism(1 + mech%3)
		o := Observation{
			Kind:    "x",
			Reads:   float64(reads),
			Updates: float64(writes),
			Cost:    float64(cost),
			SLO:     clock.Duration(slo),
			Mech:    from,
			Pure:    pure,
			Dwell:   1 << 20,
		}
		if from == core.PeriodicMechanism {
			o.Window = clock.Duration(window) + 1
		}
		c := New(nil, Config{
			Hysteresis: float64(hyst) / 100,
			MinDwell:   -1,
			MinWindow:  10,
			MaxWindow:  1000,
		})
		ms := c.Plan([]Observation{o})
		if len(ms) > 1 {
			t.Fatalf("one observation planned %d migrations", len(ms))
		}
		if len(ms) == 0 {
			return
		}
		m := ms[0]
		switch m.To {
		case core.OnDemandMechanism, core.TriggeredMechanism:
			if m.Window != 0 {
				t.Fatalf("non-periodic target with window %d", m.Window)
			}
			if m.To == from {
				t.Fatalf("planned identity migration %v", m)
			}
		case core.PeriodicMechanism:
			if o.SLO <= 0 {
				t.Fatalf("periodic planned without a freshness SLO")
			}
			if m.Window < 10 || m.Window > 1000 {
				t.Fatalf("periodic window %d outside [10, 1000]", m.Window)
			}
			if from == core.PeriodicMechanism && m.Window == o.Window {
				t.Fatalf("planned identity migration %v", m)
			}
		default:
			t.Fatalf("illegal target mechanism %v", m.To)
		}
		if m.Gain <= 0 {
			t.Fatalf("planned migration with non-positive gain %v", m.Gain)
		}
		// No flapping: the configuration the plan just chose must
		// justify itself under the same workload.
		o.Mech = m.To
		o.Window = m.Window
		if again := c.Plan([]Observation{o}); len(again) != 0 {
			t.Fatalf("flap: %v immediately re-planned as %v", m, again)
		}
	})
}

// TestPlanMatchesCostmodel cross-checks the planner against direct
// costmodel evaluation on a grid of workloads: whenever Plan migrates,
// the target must be costmodel.Choose's pick, and whenever it stays
// put, staying must be within hysteresis of the optimum.
func TestPlanMatchesCostmodel(t *testing.T) {
	c := New(nil, Config{Hysteresis: 0.2, MinDwell: -1, MinWindow: 10, MaxWindow: 1000})
	for _, reads := range []float64{0, 0.5, 2, 50} {
		for _, writes := range []float64{0, 0.5, 2, 50} {
			for _, slo := range []clock.Duration{0, 100} {
				for _, from := range []core.Mechanism{core.OnDemandMechanism, core.TriggeredMechanism} {
					o := Observation{
						Kind: "x", Reads: reads, Updates: writes, Cost: 10,
						SLO: slo, Mech: from, Dwell: 100,
					}
					w := costmodel.Workload{Reads: reads, Writes: writes, Cost: 10, SLO: slo}
					best := costmodel.Choose(w, 10, 1000)
					cur := w.Rate(from, 0)
					ms := c.Plan([]Observation{o})
					if len(ms) == 1 {
						if ms[0].To != best.Mech || ms[0].Window != best.Window {
							t.Fatalf("R=%v W=%v slo=%d from=%v: planned %v, costmodel says %+v",
								reads, writes, slo, from, ms[0], best)
						}
					} else if best.CostRate*1.2 < cur {
						t.Fatalf("R=%v W=%v slo=%d from=%v: no plan despite %v << %v",
							reads, writes, slo, from, best.CostRate, cur)
					}
				}
			}
		}
	}
}
