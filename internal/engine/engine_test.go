package engine

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/sched"
	"repro/internal/stream"
)

var intSchema = stream.Schema{Name: "ints", Fields: []stream.Field{{Name: "v", Type: "int"}}}

// pipeline builds src -> filter(keep even) -> sink and returns the
// parts.
func pipeline(opts ...Option) (*Engine, *ops.Source, *[]stream.Element) {
	vc := clock.NewVirtual()
	g := graph.New(core.NewEnv(vc))
	src := ops.NewSource(g, "src", intSchema, 0, 0)
	f := ops.NewFilter(g, "even", intSchema, func(tp stream.Tuple) bool { return tp[0].(int)%2 == 0 }, 0)
	var got []stream.Element
	sink := ops.NewSink(g, "sink", intSchema, func(e stream.Element) { got = append(got, e) }, 0, 0, 0)
	g.Connect(src, f)
	g.Connect(f, sink)
	e := New(g, vc, opts...)
	return e, src, &got
}

func TestDrainModeDeliversEndToEnd(t *testing.T) {
	e, src, got := pipeline()
	e.Bind(src, stream.NewConstantRate(0, 10, 10))
	e.RunToCompletion()
	if len(*got) != 5 {
		t.Fatalf("sink received %d elements, want 5 (even values)", len(*got))
	}
	if e.QueuedElements() != 0 {
		t.Fatal("queues not drained")
	}
	if (*got)[0].Tuple[0] != 0 || (*got)[1].Tuple[0] != 2 {
		t.Fatalf("wrong elements: %v", *got)
	}
}

func TestRunUntilPartialProgress(t *testing.T) {
	e, src, got := pipeline()
	e.Bind(src, stream.NewConstantRate(0, 10, 100))
	e.RunUntil(45) // arrivals at 0,10,20,30,40 carry values 0..4
	if len(*got) != 3 {
		t.Fatalf("sink received %d, want 3 (even values 0, 2, 4)", len(*got))
	}
}

func TestElementTimestampsPreserved(t *testing.T) {
	e, src, got := pipeline()
	e.Bind(src, stream.NewConstantRate(5, 10, 4))
	e.RunToCompletion()
	if (*got)[0].TS != 5 || (*got)[1].TS != 25 {
		t.Fatalf("timestamps wrong: %v", *got)
	}
}

func TestBudgetModeQueuesBuildUp(t *testing.T) {
	// Arrivals at rate 1/unit, service budget 1 per 2 units: the
	// queue must grow roughly with half the arrivals.
	e, src, _ := pipeline(WithScheduler(sched.NewRoundRobin(), 1, 2))
	e.Bind(src, stream.NewConstantRate(1, 1, 200))
	e.RunUntil(200)
	if q := e.QueuedElements(); q < 50 {
		t.Fatalf("queued = %d, want a backlog under overload", q)
	}
	if e.QueuedBytes() <= 0 {
		t.Fatal("queued bytes not accounted")
	}
}

func TestBudgetModeKeepsUpWhenProvisioned(t *testing.T) {
	// Budget 10 per unit vs arrival rate 1: no backlog.
	e, src, got := pipeline(WithScheduler(sched.NewRoundRobin(), 10, 1))
	e.Bind(src, stream.NewConstantRate(0, 1, 100))
	e.RunUntil(300)
	if q := e.QueuedElements(); q != 0 {
		t.Fatalf("queued = %d, want 0", q)
	}
	if len(*got) != 50 {
		t.Fatalf("sink received %d, want 50", len(*got))
	}
}

func TestProcessedCounter(t *testing.T) {
	e, src, _ := pipeline()
	e.Bind(src, stream.NewConstantRate(0, 1, 10))
	e.RunToCompletion()
	// 10 through filter + 5 through sink.
	if got := e.Processed(); got != 15 {
		t.Fatalf("Processed = %d, want 15", got)
	}
}

func TestJoinPipelineEndToEnd(t *testing.T) {
	vc := clock.NewVirtual()
	g := graph.New(core.NewEnv(vc))
	left := ops.NewSource(g, "L", intSchema, 0, 0)
	right := ops.NewSource(g, "R", intSchema, 0, 0)
	wl := ops.NewTimeWindow(g, "wl", intSchema, 100, 0)
	wr := ops.NewTimeWindow(g, "wr", intSchema, 100, 0)
	j := ops.NewJoin(g, "join", intSchema, intSchema,
		func(l, r stream.Tuple) bool { return l[0] == r[0] }, 0)
	var results []stream.Element
	sink := ops.NewSink(g, "sink", j.Schema(), func(e stream.Element) { results = append(results, e) }, 0, 0, 0)
	g.Connect(left, wl)
	g.Connect(right, wr)
	g.Connect(wl, j)
	g.Connect(wr, j)
	g.Connect(j, sink)

	e := New(g, vc)
	// Same values on both sides, right shifted by 5 units: every pair
	// within the 100-unit window joins once per side combination.
	e.Bind(left, stream.NewConstantRate(0, 10, 10))
	e.Bind(right, stream.NewConstantRate(5, 10, 10))
	e.RunToCompletion()
	// Left i has value i at t=10i valid [10i, 10i+100); right i value
	// i at 10i+5 valid [10i+5, 10i+105): they overlap and match.
	if len(results) != 10 {
		t.Fatalf("join produced %d results, want 10", len(results))
	}
	for _, r := range results {
		if r.Tuple[0] != r.Tuple[1] {
			t.Fatalf("mismatched join result %v", r.Tuple)
		}
	}
}

func TestSharedSubqueryDeliversToBothSinks(t *testing.T) {
	vc := clock.NewVirtual()
	g := graph.New(core.NewEnv(vc))
	src := ops.NewSource(g, "src", intSchema, 0, 0)
	f := ops.NewFilter(g, "f", intSchema, func(stream.Tuple) bool { return true }, 0)
	n1, n2 := 0, 0
	s1 := ops.NewSink(g, "s1", intSchema, func(stream.Element) { n1++ }, 0, 0, 0)
	s2 := ops.NewSink(g, "s2", intSchema, func(stream.Element) { n2++ }, 0, 0, 0)
	g.Connect(src, f)
	g.Connect(f, s1)
	g.Connect(f, s2)
	e := New(g, vc)
	e.Bind(src, stream.NewConstantRate(0, 1, 20))
	e.RunToCompletion()
	if n1 != 20 || n2 != 20 {
		t.Fatalf("sinks received %d/%d, want 20/20 (subquery sharing)", n1, n2)
	}
}

func TestMetadataMeasuresLiveWorkload(t *testing.T) {
	vc := clock.NewVirtual()
	g := graph.New(core.NewEnv(vc))
	src := ops.NewSource(g, "src", intSchema, 0, 50)
	f := ops.NewFilter(g, "f", intSchema, func(tp stream.Tuple) bool { return tp[0].(int)%5 == 0 }, 50)
	sink := ops.NewSink(g, "sink", intSchema, nil, 0, 0, 0)
	g.Connect(src, f)
	g.Connect(f, sink)
	e := New(g, vc)
	e.Bind(src, stream.NewConstantRate(0, 5, 0)) // rate 0.2, unbounded

	rate, err := f.Registry().Subscribe(ops.KindInputRate)
	if err != nil {
		t.Fatal(err)
	}
	defer rate.Unsubscribe()
	sel, err := f.Registry().Subscribe(ops.KindSelectivity)
	if err != nil {
		t.Fatal(err)
	}
	defer sel.Unsubscribe()

	e.RunUntil(1000)
	if v, _ := rate.Float(); v != 0.2 {
		t.Fatalf("measured inputRate = %v, want 0.2", v)
	}
	// Every 50-unit window sees 10 consecutive values of which exactly
	// 2 are multiples of 5.
	if v, _ := sel.Float(); v != 0.2 {
		t.Fatalf("measured selectivity = %v, want 0.2", v)
	}
}

func TestBindAfterStartPanics(t *testing.T) {
	e, src, _ := pipeline()
	e.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("Bind after Start did not panic")
		}
	}()
	e.Bind(src, stream.NewConstantRate(0, 1, 1))
}

func TestStartTwicePanics(t *testing.T) {
	e, _, _ := pipeline()
	e.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("double Start did not panic")
		}
	}()
	e.Start()
}

func TestAccessors(t *testing.T) {
	e, _, _ := pipeline()
	if e.Graph() == nil || e.Clock() == nil {
		t.Fatal("accessors returned nil")
	}
}
