package engine

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/stream"
)

// TestIntegrationFullStack builds a realistic multi-query graph —
// shared subqueries, a window join with the cost model, grouped
// aggregation, load shedding — runs it under metadata monitoring, and
// checks global consistency: element conservation, metadata values
// matching ground truth, and complete cleanup.
func TestIntegrationFullStack(t *testing.T) {
	vc := clock.NewVirtual()
	g := graph.New(core.NewEnv(vc))

	// Sources: one constant, one bursty.
	src1 := ops.NewSource(g, "s1", intSchema, 0.2, 100)
	src2 := ops.NewSource(g, "s2", intSchema, 0, 100)

	// Query 1: shared even-filter feeding a sink and a window join.
	even := ops.NewFilter(g, "even", intSchema, func(tp stream.Tuple) bool { return tp[0].(int)%2 == 0 }, 100)
	g.Connect(src1, even)
	q1 := 0
	sink1 := ops.NewSink(g, "q1", intSchema, func(stream.Element) { q1++ }, 100, 5, 100)
	g.Connect(even, sink1)

	// Query 2: join of the shared subquery with the bursty stream.
	w1 := ops.NewTimeWindow(g, "w1", intSchema, 50, 100)
	w2 := ops.NewTimeWindow(g, "w2", intSchema, 50, 100)
	g.Connect(even, w1)
	g.Connect(src2, w2)
	join := ops.NewJoin(g, "join", intSchema, intSchema,
		func(l, r stream.Tuple) bool { return l[0] == r[0] }, 100)
	g.Connect(w1, join)
	g.Connect(w2, join)
	q2 := 0
	sink2 := ops.NewSink(g, "q2", join.Schema(), func(stream.Element) { q2++ }, 200, 1, 100)
	g.Connect(join, sink2)

	// Query 3: grouped count over the bursty stream.
	w3 := ops.NewTimeWindow(g, "w3", intSchema, 200, 100)
	g.Connect(src2, w3)
	agg := ops.NewGroupAggregate(g, "counts", 0, ops.NewCount(), 100)
	g.Connect(w3, agg)
	sink3 := ops.NewSink(g, "q3", agg.Schema(), nil, 0, 0, 100)
	g.Connect(agg, sink3)

	costmodel.Install(g)

	// Metadata consumers.
	subs := map[string]*core.Subscription{}
	mustSub := func(name string, r *core.Registry, kind core.Kind) {
		s, err := r.Subscribe(kind)
		if err != nil {
			t.Fatalf("subscribe %s: %v", name, err)
		}
		subs[name] = s
	}
	mustSub("evenSel", even.Registry(), ops.KindSelectivity)
	mustSub("evenCountIn", even.Registry(), ops.KindCountIn)
	mustSub("evenCountOut", even.Registry(), ops.KindCountOut)
	mustSub("joinEstCPU", join.Registry(), costmodel.KindEstCPU)
	mustSub("joinMem", join.Registry(), ops.KindMemUsage)
	mustSub("s1Rate", src1.Registry(), ops.KindOutputRate)
	mustSub("q1Latency", sink1.Registry(), ops.KindAvgLatency)

	e := New(g, vc)
	gen1 := stream.NewConstantRate(0, 5, 2000) // rate 0.2, 2000 elements
	e.Bind(src1, gen1)
	e.Bind(src2, stream.NewBursty(0, 2, 50, 150, 1000))
	// RunUntil, not RunToCompletion: the subscribed periodic handlers
	// keep tickers alive indefinitely.
	e.RunUntil(10_000)

	// Element conservation: q1 got exactly the evens.
	if q1 != 1000 {
		t.Fatalf("q1 = %d, want 1000", q1)
	}
	cin, _ := subs["evenCountIn"].Float()
	cout, _ := subs["evenCountOut"].Float()
	if cin != 2000 || cout != 1000 {
		t.Fatalf("filter counts %v/%v, want 2000/1000", cin, cout)
	}
	if sel, _ := subs["evenSel"].Float(); sel != 0.5 {
		t.Fatalf("selectivity = %v, want 0.5", sel)
	}
	if rate, _ := subs["s1Rate"].Float(); rate != 0.2 {
		t.Fatalf("s1 output rate = %v, want 0.2", rate)
	}
	if q2 == 0 {
		t.Fatal("join query produced nothing")
	}
	if v, _ := subs["joinEstCPU"].Float(); v <= 0 {
		t.Fatalf("estCPU = %v, want positive", v)
	}
	if lat, _ := subs["q1Latency"].Float(); lat != 0 {
		t.Fatalf("drain-mode latency = %v, want 0 (same-instant delivery)", lat)
	}

	// Cleanup: every handler goes away, nothing leaks.
	for _, s := range subs {
		s.Unsubscribe()
	}
	stats := g.Env().Stats().Snapshot()
	if stats.HandlersCreated != stats.HandlersRemoved {
		t.Fatalf("handlers leaked: created %d, removed %d",
			stats.HandlersCreated, stats.HandlersRemoved)
	}
	for _, n := range g.Nodes() {
		if len(n.Registry().Included()) != 0 {
			t.Fatalf("%s still has included items", n.Registry().ID())
		}
	}
}

// TestIntegrationConcurrentMetadataChurn advances the engine on one
// goroutine while others subscribe/read/unsubscribe metadata across
// the whole graph. Run with -race.
func TestIntegrationConcurrentMetadataChurn(t *testing.T) {
	vc := clock.NewVirtual()
	g := graph.New(core.NewEnv(vc))
	src := ops.NewSource(g, "src", intSchema, 0, 50)
	var chainEnd graph.Node = src
	var filters []*ops.Filter
	for i := 0; i < 10; i++ {
		f := ops.NewFilter(g, fmt.Sprintf("f%d", i), intSchema,
			func(stream.Tuple) bool { return true }, 50)
		g.Connect(chainEnd, f)
		filters = append(filters, f)
		chainEnd = f
	}
	g.Connect(chainEnd, ops.NewSink(g, "sink", intSchema, nil, 0, 0, 50))
	costmodel.Install(g)

	e := New(g, vc)
	e.Bind(src, stream.NewConstantRate(0, 1, 0))
	e.Start()

	kinds := []core.Kind{
		ops.KindInputRate, ops.KindSelectivity, ops.KindAvgInputRate,
		ops.KindCountIn, ops.KindMeasuredCPU, costmodel.KindEstOutputRate,
	}
	// Workers perform a bounded number of churn cycles while the main
	// goroutine advances the clock; done signals completion so the
	// run ends deterministically even on a single-CPU host.
	var wg sync.WaitGroup
	const cyclesPerWorker = 150
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < cyclesPerWorker; i++ {
				f := filters[rng.Intn(len(filters))]
				k := kinds[rng.Intn(len(kinds))]
				s, err := f.Registry().Subscribe(k)
				if err != nil {
					t.Errorf("subscribe %s: %v", k, err)
					return
				}
				_, _ = s.Value()
				s.Unsubscribe()
			}
		}(int64(w))
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	for step := 0; ; step++ {
		e.RunUntil(clock.Time((step + 1) * 20))
		select {
		case <-done:
		default:
			continue
		}
		break
	}

	for _, f := range filters {
		if n := len(f.Registry().Included()); n != 0 {
			t.Fatalf("%s leaked %d items", f.Name(), n)
		}
	}
	stats := g.Env().Stats().Snapshot()
	if stats.HandlersCreated != stats.HandlersRemoved {
		t.Fatalf("handlers leaked under churn: %d vs %d",
			stats.HandlersCreated, stats.HandlersRemoved)
	}
}
