// Package engine executes a query graph: it drives sources from
// stream generators on the environment clock, moves elements through
// inter-operator queues, and services those queues either eagerly
// (drain mode: every element is pushed to the sinks as soon as it
// arrives) or under a service budget chosen by a scheduling strategy
// (budget mode: a scheduler picks which queue to service, so queue
// memory and scheduling policy become observable — the setting of the
// paper's Chain motivating application).
package engine

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/ring"
	"repro/internal/sched"
	"repro/internal/stream"
)

// timedEl is a queued element plus its enqueue time.
type timedEl struct {
	el stream.Element
	at clock.Time
}

// queue is one inter-operator queue (consumer, port). Elements live in
// a ring buffer so enqueue and dequeue are O(1) without the
// re-allocation and copying of an append-plus-shift slice.
type queue struct {
	to       graph.Node
	port     int
	els      ring.Buffer[timedEl]
	elemSize int64
}

func (q *queue) bytes() int64 { return int64(q.els.Len()) * q.elemSize }

// binding drives one source from a generator.
type binding struct {
	src *ops.Source
	gen stream.Generator
}

// Engine runs a query graph on a virtual clock.
type Engine struct {
	g  *graph.Graph
	vc *clock.Virtual

	queues []*queue
	qIndex map[[2]int]*queue // (consumerID, port) -> queue

	scheduler sched.Scheduler
	budget    int            // elements serviced per tick (budget mode)
	tickEvery clock.Duration // service tick period (budget mode)

	bindings []*binding
	started  bool

	// processed counts serviced elements (all operators).
	processed int64
}

// Option configures an Engine.
type Option func(*Engine)

// WithScheduler switches the engine to budget mode: every tickEvery
// time units the scheduler services up to budget elements.
func WithScheduler(s sched.Scheduler, budget int, tickEvery clock.Duration) Option {
	if budget <= 0 || tickEvery <= 0 {
		panic("engine: budget and tick period must be positive")
	}
	return func(e *Engine) {
		e.scheduler = s
		e.budget = budget
		e.tickEvery = tickEvery
	}
}

// New creates an engine for the graph. The graph's environment must
// use a virtual clock.
func New(g *graph.Graph, vc *clock.Virtual, opts ...Option) *Engine {
	e := &Engine{g: g, vc: vc, qIndex: make(map[[2]int]*queue)}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Bind attaches a generator to a source node. Must be called before
// Start.
func (e *Engine) Bind(src *ops.Source, gen stream.Generator) {
	if e.started {
		panic("engine: Bind after Start")
	}
	e.bindings = append(e.bindings, &binding{src: src, gen: gen})
}

// Start wires the queues and schedules the first arrivals and, in
// budget mode, the service ticks.
func (e *Engine) Start() {
	if e.started {
		panic("engine: started twice")
	}
	e.started = true

	// One queue per (consumer, port) edge, in deterministic order.
	// Sinks are served directly on delivery — they are connection
	// points to applications, not schedulable operators — so no
	// queues are created for them.
	for _, n := range e.g.Topological() {
		if n.Type() == graph.SinkNode {
			continue
		}
		for port, producer := range e.g.Inputs(n) {
			elemSize := int64(64)
			if c, ok := producer.(interface{ Schema() stream.Schema }); ok {
				elemSize = c.Schema().ElementSize()
			}
			q := &queue{to: n, port: port, elemSize: elemSize}
			e.queues = append(e.queues, q)
			e.qIndex[[2]int{n.ID(), port}] = q
		}
	}

	for _, b := range e.bindings {
		e.scheduleNextArrival(b)
	}
	if e.scheduler != nil {
		clock.NewTicker(e.vc, e.tickEvery, func(now clock.Time) {
			e.serviceTick(now)
		})
	}
}

// scheduleNextArrival pulls the next arrival from the binding's
// generator and schedules its delivery.
func (e *Engine) scheduleNextArrival(b *binding) {
	a, ok := b.gen.Next()
	if !ok {
		return
	}
	e.vc.Schedule(a.At, func(now clock.Time) {
		el := b.src.Emit(stream.NewElement(a.Tuple, a.At))
		e.deliver(b.src, el, now)
		e.scheduleNextArrival(b)
	})
}

// enqueue routes one produced element to every consumer of the
// producer: sink consumers are served immediately; operator consumers
// receive the element in their inter-operator queue.
func (e *Engine) enqueue(from graph.Node, el stream.Element, now clock.Time) {
	for _, c := range e.g.Outputs(from) {
		port := e.g.InputPort(from, c)
		if c.Type() == graph.SinkNode {
			e.processed++
			c.Process(el, port)
			continue
		}
		q := e.qIndex[[2]int{c.ID(), port}]
		if q == nil {
			panic(fmt.Sprintf("engine: no queue for edge %s->%s", from.Name(), c.Name()))
		}
		q.els.Push(timedEl{el: el, at: now})
	}
}

// deliver enqueues an element to every consumer of the producer; in
// drain mode it then processes to quiescence.
func (e *Engine) deliver(from graph.Node, el stream.Element, now clock.Time) {
	e.enqueue(from, el, now)
	if e.scheduler == nil {
		e.drain(now)
	}
}

// drain services queues in topological order until quiescent.
func (e *Engine) drain(now clock.Time) {
	for {
		progressed := false
		for _, q := range e.queues {
			for q.els.Len() > 0 {
				te := q.els.Pop()
				e.processed++
				for _, out := range q.to.Process(te.el, q.port) {
					e.enqueue(q.to, out, now)
				}
				progressed = true
			}
		}
		if !progressed {
			return
		}
	}
}

// serviceTick runs one scheduling round in budget mode.
func (e *Engine) serviceTick(now clock.Time) {
	for i := 0; i < e.budget; i++ {
		var infos []sched.QueueInfo
		var nonEmpty []*queue
		for _, q := range e.queues {
			if q.els.Len() == 0 {
				continue
			}
			nonEmpty = append(nonEmpty, q)
			infos = append(infos, sched.QueueInfo{
				Node:        q.to,
				Port:        q.port,
				Len:         q.els.Len(),
				Bytes:       q.bytes(),
				HeadArrival: q.els.Peek().at,
			})
		}
		if len(infos) == 0 {
			return
		}
		pick := e.scheduler.Pick(infos)
		if pick < 0 || pick >= len(nonEmpty) {
			return
		}
		q := nonEmpty[pick]
		te := q.els.Pop()
		e.processed++
		for _, out := range q.to.Process(te.el, q.port) {
			e.enqueue(q.to, out, now)
		}
	}
}

// RunUntil advances the clock to t, driving arrivals, metadata
// updates, and service ticks.
func (e *Engine) RunUntil(t clock.Time) {
	if !e.started {
		e.Start()
	}
	e.vc.AdvanceTo(t)
}

// RunToCompletion drains all scheduled work. It only terminates when
// every clock event is finite: bounded generators, no budget-mode
// service ticker, and no subscribed periodic metadata (whose tickers
// reschedule forever). Simulations with periodic metadata or
// scheduling should use RunUntil.
func (e *Engine) RunToCompletion() {
	if !e.started {
		e.Start()
	}
	e.vc.RunUntilIdle()
	if e.scheduler == nil {
		e.drain(e.vc.Now())
	}
}

// QueuedElements returns the total number of queued elements.
func (e *Engine) QueuedElements() int {
	n := 0
	for _, q := range e.queues {
		n += q.els.Len()
	}
	return n
}

// QueuedBytes returns the total memory held in inter-operator queues —
// the objective Chain scheduling minimizes.
func (e *Engine) QueuedBytes() int64 {
	var b int64
	for _, q := range e.queues {
		b += q.bytes()
	}
	return b
}

// Processed returns the number of serviced elements.
func (e *Engine) Processed() int64 { return e.processed }

// Graph returns the engine's query graph.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Clock returns the engine's virtual clock.
func (e *Engine) Clock() *clock.Virtual { return e.vc }
