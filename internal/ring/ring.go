// Package ring provides a growable FIFO ring buffer with O(1)
// amortized enqueue and O(1) dequeue. It backs the engine's
// inter-operator queues and the metadata framework's worker-pool task
// queue, replacing slice-append plus shift-on-service patterns that
// reallocate and copy on every cycle.
package ring

// Buffer is a FIFO ring buffer. The zero value is an empty buffer
// ready for use. Buffer is not safe for concurrent use.
type Buffer[T any] struct {
	buf  []T
	head int
	n    int
}

// Len returns the number of buffered elements.
func (b *Buffer[T]) Len() int { return b.n }

// Push appends v at the tail, doubling the backing array when full.
func (b *Buffer[T]) Push(v T) {
	if b.n == len(b.buf) {
		b.grow()
	}
	b.buf[(b.head+b.n)%len(b.buf)] = v
	b.n++
}

// Pop removes and returns the head element. It panics on an empty
// buffer.
func (b *Buffer[T]) Pop() T {
	if b.n == 0 {
		panic("ring: Pop of empty buffer")
	}
	var zero T
	v := b.buf[b.head]
	b.buf[b.head] = zero // release the reference for GC
	b.head = (b.head + 1) % len(b.buf)
	b.n--
	return v
}

// Peek returns the head element without removing it. It panics on an
// empty buffer.
func (b *Buffer[T]) Peek() T {
	if b.n == 0 {
		panic("ring: Peek of empty buffer")
	}
	return b.buf[b.head]
}

// grow doubles the capacity (starting at 8) and linearizes the
// elements at the front of the new backing array.
func (b *Buffer[T]) grow() {
	c := 2 * len(b.buf)
	if c == 0 {
		c = 8
	}
	nb := make([]T, c)
	for i := 0; i < b.n; i++ {
		nb[i] = b.buf[(b.head+i)%len(b.buf)]
	}
	b.buf, b.head = nb, 0
}
