package ring

import "testing"

func TestFIFOOrder(t *testing.T) {
	var b Buffer[int]
	for i := 0; i < 100; i++ {
		b.Push(i)
	}
	if b.Len() != 100 {
		t.Fatalf("Len = %d, want 100", b.Len())
	}
	for i := 0; i < 100; i++ {
		if got := b.Peek(); got != i {
			t.Fatalf("Peek = %d, want %d", got, i)
		}
		if got := b.Pop(); got != i {
			t.Fatalf("Pop = %d, want %d", got, i)
		}
	}
	if b.Len() != 0 {
		t.Fatalf("Len = %d after draining, want 0", b.Len())
	}
}

func TestWrapAround(t *testing.T) {
	var b Buffer[int]
	next, expect := 0, 0
	// Interleave pushes and pops so head wraps the backing array many
	// times at several fill levels.
	for round := 0; round < 50; round++ {
		for i := 0; i < 3+round%5; i++ {
			b.Push(next)
			next++
		}
		for i := 0; i < 2+round%4 && b.Len() > 0; i++ {
			if got := b.Pop(); got != expect {
				t.Fatalf("Pop = %d, want %d", got, expect)
			}
			expect++
		}
	}
	for b.Len() > 0 {
		if got := b.Pop(); got != expect {
			t.Fatalf("Pop = %d, want %d", got, expect)
		}
		expect++
	}
	if expect != next {
		t.Fatalf("drained %d elements, pushed %d", expect, next)
	}
}

func TestGrowPreservesOrderAcrossWrap(t *testing.T) {
	var b Buffer[int]
	// Fill, drain half, refill past capacity so grow() runs with a
	// wrapped head.
	for i := 0; i < 8; i++ {
		b.Push(i)
	}
	for i := 0; i < 5; i++ {
		b.Pop()
	}
	for i := 8; i < 30; i++ {
		b.Push(i)
	}
	for want := 5; want < 30; want++ {
		if got := b.Pop(); got != want {
			t.Fatalf("Pop = %d, want %d", got, want)
		}
	}
}

func TestEmptyPanics(t *testing.T) {
	var b Buffer[string]
	for _, op := range []func(){func() { b.Pop() }, func() { b.Peek() }} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic on empty buffer")
				}
			}()
			op()
		}()
	}
}
