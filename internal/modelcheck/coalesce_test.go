package modelcheck

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

// Hand-built workloads that pin the batched update pipeline's
// same-instant semantics: several periodic handlers sharing one
// boundary, diamond dependents across publishers, and order
// observability through on-demand intermediaries. runLockstep compares
// values AND the refresh count (Stats.TriggerNotifications vs the
// model's Refreshes) after every op, so these workloads fail if a
// triggered dependent of k same-boundary publishers refreshes k times
// per instant instead of once, or if fire order drifts from the
// scheduling sequence.

// wlSharedBoundary: four periodic publishers with the same window in
// one registry, one triggered item fanning in over all four and one
// over a pair. Every window boundary is shared by all publishers.
func wlSharedBoundary() *Workload {
	w := &Workload{Seed: -101}
	reg := RegSpec{ID: "r0", Parent: -1}
	for i := 0; i < 4; i++ {
		reg.Items = append(reg.Items, ItemSpec{
			Kind:   core.Kind(fmt.Sprintf("p%d", i)),
			Mech:   core.PeriodicMechanism,
			Window: 5,
			Base:   float64(i),
		})
	}
	fanin := ItemSpec{Kind: "fanin", Mech: core.TriggeredMechanism, Base: 1000, Events: []string{"e0"}}
	for i := 0; i < 4; i++ {
		fanin.Deps = append(fanin.Deps, DepSpec{Sel: SelSelf, Kind: core.Kind(fmt.Sprintf("p%d", i))})
	}
	reg.Items = append(reg.Items, fanin)
	reg.Items = append(reg.Items, ItemSpec{
		Kind: "pair", Mech: core.TriggeredMechanism, Base: 2000,
		Deps: []DepSpec{{Sel: SelSelf, Kind: "p0"}, {Sel: SelSelf, Kind: "p3"}},
	})
	w.Regs = []RegSpec{reg}
	w.Ops = []Op{
		{Kind: OpSubscribe, Reg: 0, Item: "fanin"},
		{Kind: OpSubscribe, Reg: 0, Item: "pair"},
		{Kind: OpRead, Reg: 0, Item: "fanin"},
		{Kind: OpAdvance, Arg: 5}, // all four publish; fanin+pair refresh once each
		{Kind: OpRead, Reg: 0, Item: "fanin"},
		{Kind: OpRead, Reg: 0, Item: "pair"},
		{Kind: OpAdvance, Arg: 3},
		{Kind: OpAdvance, Arg: 2}, // boundary 10
		{Kind: OpRead, Reg: 0, Item: "fanin"},
		{Kind: OpAdvance, Arg: 17}, // crosses boundaries 15, 20, 25
		{Kind: OpRead, Reg: 0, Item: "pair"},
		{Kind: OpFireEvent, Reg: 0, Event: "e0"},
		{Kind: OpUnsubscribe, Arg: 1}, // drop pair
		{Kind: OpAdvance, Arg: 5},     // boundary 30 with one dependent left
		{Kind: OpSubscribe, Reg: 0, Item: "pair"},
		{Kind: OpAdvance, Arg: 10}, // boundaries 35, 40
		{Kind: OpRead, Reg: 0, Item: "pair"},
	}
	return w
}

// wlDiamond: two periodic publishers with windows 5 and 10 (shared
// boundary every 10), triggered mid-items on each, a triggered top
// over both mids, and a triggered observer reading one publisher
// through an on-demand intermediary — the configuration where both the
// coalesced refresh count and the fire order are value-observable.
func wlDiamond() *Workload {
	w := &Workload{Seed: -102}
	reg := RegSpec{ID: "r0", Parent: -1, Items: []ItemSpec{
		{Kind: "pA", Mech: core.PeriodicMechanism, Window: 10, Base: 1},
		{Kind: "pB", Mech: core.PeriodicMechanism, Window: 5, Base: 2},
		{Kind: "mA", Mech: core.TriggeredMechanism, Base: 10,
			Deps: []DepSpec{{Sel: SelSelf, Kind: "pA"}}},
		{Kind: "mB", Mech: core.TriggeredMechanism, Base: 20,
			Deps: []DepSpec{{Sel: SelSelf, Kind: "pB"}}},
		{Kind: "top", Mech: core.TriggeredMechanism, Base: 30,
			Deps: []DepSpec{{Sel: SelSelf, Kind: "mA"}, {Sel: SelSelf, Kind: "mB"}}},
		{Kind: "od", Mech: core.OnDemandMechanism, Base: 40,
			Deps: []DepSpec{{Sel: SelSelf, Kind: "pA"}}},
		{Kind: "obs", Mech: core.TriggeredMechanism, Base: 50,
			Deps: []DepSpec{{Sel: SelSelf, Kind: "od"}, {Sel: SelSelf, Kind: "pB"}}},
	}}
	w.Regs = []RegSpec{reg}
	w.Ops = []Op{
		{Kind: OpSubscribe, Reg: 0, Item: "top"},
		{Kind: OpSubscribe, Reg: 0, Item: "obs"},
		{Kind: OpAdvance, Arg: 5}, // pB only: mB, top, obs refresh
		{Kind: OpRead, Reg: 0, Item: "top"},
		{Kind: OpRead, Reg: 0, Item: "obs"},
		{Kind: OpAdvance, Arg: 5}, // shared boundary 10: pA+pB coalesce
		{Kind: OpRead, Reg: 0, Item: "top"},
		{Kind: OpRead, Reg: 0, Item: "obs"},
		{Kind: OpNotifyChanged, Reg: 0, Item: "od"},
		{Kind: OpAdvance, Arg: 20}, // boundaries 15, 20 (shared), 25, 30 (shared)
		{Kind: OpRead, Reg: 0, Item: "top"},
		{Kind: OpUnsubscribe, Arg: 0}, // drop top; mids go with it
		{Kind: OpAdvance, Arg: 10},
		{Kind: OpRead, Reg: 0, Item: "obs"},
	}
	return w
}

// wlCrossRegistry: publishers in two registries connected by a
// dependency edge share one scope and one boundary; a third registry
// stays in its own scope with the same window, so the same instant
// spans two scope batches.
func wlCrossRegistry() *Workload {
	w := &Workload{Seed: -103}
	w.Regs = []RegSpec{
		{ID: "r0", Parent: -1, Items: []ItemSpec{
			{Kind: "k0", Mech: core.PeriodicMechanism, Window: 3, Base: 5},
		}},
		{ID: "r1", Parent: -1, Inputs: []int{0}, Items: []ItemSpec{
			{Kind: "k0", Mech: core.PeriodicMechanism, Window: 3, Base: 6},
			{Kind: "both", Mech: core.TriggeredMechanism, Base: 100,
				Deps: []DepSpec{{Sel: SelInput, Index: 0, Kind: "k0"}, {Sel: SelSelf, Kind: "k0"}}},
		}},
		{ID: "r2", Parent: -1, Items: []ItemSpec{
			{Kind: "k0", Mech: core.PeriodicMechanism, Window: 3, Base: 7},
			{Kind: "t", Mech: core.TriggeredMechanism, Base: 200,
				Deps: []DepSpec{{Sel: SelSelf, Kind: "k0"}}},
		}},
	}
	w.Ops = []Op{
		{Kind: OpSubscribe, Reg: 1, Item: "both"},
		{Kind: OpSubscribe, Reg: 2, Item: "t"},
		{Kind: OpAdvance, Arg: 3}, // three publishers, two scopes, one instant
		{Kind: OpRead, Reg: 1, Item: "both"},
		{Kind: OpRead, Reg: 2, Item: "t"},
		{Kind: OpAdvance, Arg: 6}, // boundaries 6, 9
		{Kind: OpRead, Reg: 1, Item: "both"},
		{Kind: OpAdvance, Arg: 1},
		{Kind: OpAdvance, Arg: 2}, // boundary 12
		{Kind: OpRead, Reg: 2, Item: "t"},
	}
	return w
}

func TestCoalescedBoundaries(t *testing.T) {
	for _, tc := range []struct {
		name string
		wl   *Workload
	}{
		{"SharedBoundary", wlSharedBoundary()},
		{"Diamond", wlDiamond()},
		{"CrossRegistry", wlCrossRegistry()},
	} {
		t.Run(tc.name, func(t *testing.T) { runLockstep(t, tc.name, tc.wl) })
	}
}

// TestCoalescedRefreshCount asserts the acceptance criterion directly
// against core, without the model in the loop: a triggered dependent
// of k same-boundary periodic publishers refreshes exactly once per
// window boundary.
func TestCoalescedRefreshCount(t *testing.T) {
	const k = 8
	wl := &Workload{Seed: -104}
	reg := RegSpec{ID: "r0", Parent: -1}
	fanin := ItemSpec{Kind: "fanin", Mech: core.TriggeredMechanism, Base: 0}
	for i := 0; i < k; i++ {
		kind := core.Kind(fmt.Sprintf("p%d", i))
		reg.Items = append(reg.Items, ItemSpec{Kind: kind, Mech: core.PeriodicMechanism, Window: 10, Base: float64(i)})
		fanin.Deps = append(fanin.Deps, DepSpec{Sel: SelSelf, Kind: kind})
	}
	reg.Items = append(reg.Items, fanin)
	wl.Regs = []RegSpec{reg}

	sys := NewSystem(wl, nil, nil)
	sub, err := sys.Regs[0].Subscribe("fanin")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Unsubscribe()

	stats := sys.Env.Stats()
	const boundaries = 5
	for i := 0; i < boundaries; i++ {
		before := stats.TriggerNotifications.Load()
		sys.Clk.Advance(10)
		got := stats.TriggerNotifications.Load() - before
		if got != 1 {
			t.Fatalf("boundary %d: %d refreshes of the fan-in dependent, want exactly 1 (k=%d publishers)", i, got, k)
		}
	}
	if got := stats.PeriodicUpdates.Load(); got != k*boundaries {
		t.Fatalf("PeriodicUpdates = %d, want %d", got, k*boundaries)
	}
	// The whole registry is one dependency scope: each boundary is one
	// scope batch of k ticks.
	if got := stats.ScopeBatches.Load(); got != boundaries {
		t.Fatalf("ScopeBatches = %d, want %d", got, boundaries)
	}
	if got := stats.BatchedTicks.Load(); got != k*boundaries {
		t.Fatalf("BatchedTicks = %d, want %d", got, k*boundaries)
	}
	// Identical seed set every boundary: the propagation plan is built
	// once and reused.
	if hits, misses := stats.PlanCacheHits.Load(), stats.PlanCacheMisses.Load(); misses != 1 || hits != boundaries-1 {
		t.Fatalf("plan cache hits=%d misses=%d, want %d/1", hits, misses, boundaries-1)
	}
}
