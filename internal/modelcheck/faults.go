package modelcheck

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
)

// Fault-injection scenarios. Each runs a seeded workload topology with
// one deliberately broken item and verifies the degradation contract:
// failures surface as errors on Subscribe/Value, never as leaked
// references, wedged component locks, or corrupted snapshots.

// closureOf returns the transitive dependency closure of one item
// (including itself), resolved with every module attached.
func closureOf(wl *Workload, start ikey) map[ikey]bool {
	resolver := NewModel(wl) // empty model: used only for selector resolution
	seen := make(map[ikey]bool)
	var walk func(k ikey)
	walk = func(k ikey) {
		if seen[k] {
			return
		}
		seen[k] = true
		for _, d := range wl.Item(k.reg, k.kind).Deps {
			for _, tr := range resolver.resolve(k.reg, d) {
				walk(ikey{tr, d.Kind})
			}
		}
	}
	walk(start)
	return seen
}

// pickItem draws a random workload item.
func pickItem(wl *Workload, rng *rand.Rand) ikey {
	ri := rng.Intn(len(wl.Regs))
	return ikey{ri, wl.Regs[ri].Items[rng.Intn(len(wl.Regs[ri].Items))].Kind}
}

// pickPeriodic draws a random periodic item; if the seed generated
// none, it deterministically converts the first item into one.
func pickPeriodic(wl *Workload, rng *rand.Rand) ikey {
	var ps []ikey
	for ri := range wl.Regs {
		for _, it := range wl.Regs[ri].Items {
			if it.Mech == core.PeriodicMechanism {
				ps = append(ps, ikey{ri, it.Kind})
			}
		}
	}
	if len(ps) == 0 {
		it := &wl.Regs[0].Items[0]
		it.Mech = core.PeriodicMechanism
		it.Window = 5
		it.Deps = nil
		return ikey{0, it.Kind}
	}
	return ps[rng.Intn(len(ps))]
}

// RunFaultBuild subscribes to every item of a seeded topology while
// one victim item's Build panics (panicMode) or errors. Subscriptions
// whose dependency closure contains the victim must fail — with
// ErrComputePanic in panic mode — rolling back mid-traversal without
// residue; all others must succeed. Invariants are checked after every
// attempt.
func RunFaultBuild(t *testing.T, seed int64, panicMode bool) {
	t.Helper()
	wl := Generate(seed, Config{Ops: 1})
	rng := rand.New(rand.NewSource(seed))
	victim := pickItem(wl, rng)
	faults := &Faults{}
	if panicMode {
		faults.PanicBuild = map[ikey]bool{victim: true}
	} else {
		faults.FailBuild = map[ikey]bool{victim: true}
	}
	sys := NewSystem(wl, nil, faults)

	var subs []heldSub
	for ri := range wl.Regs {
		for _, it := range wl.Regs[ri].Items {
			k := ikey{ri, it.Kind}
			at := fmt.Sprintf("seed=%d subscribe %v (victim %v)", seed, k, victim)
			sub, err := sys.Regs[ri].Subscribe(it.Kind)
			if closureOf(wl, k)[victim] {
				if err == nil {
					t.Fatalf("%s: succeeded, want failure through faulty Build", at)
				}
				if panicMode && !errors.Is(err, core.ErrComputePanic) {
					t.Fatalf("%s: error %v, want ErrComputePanic", at, err)
				}
			} else {
				if err != nil {
					t.Fatalf("%s: failed: %v", at, err)
				}
				subs = append(subs, heldSub{sub: sub, key: k})
			}
			if errs := core.VerifyIntegrity(extCounts(wl, subs), sys.BaseRegs()...); len(errs) > 0 {
				t.Fatalf("%s: integrity violations: %v", at, errs)
			}
			if err := core.ScopesUnlocked(sys.Regs...); err != nil {
				t.Fatalf("%s: %v", at, err)
			}
			if inc := sys.Regs[victim.reg].IsIncluded(victim.kind); inc {
				t.Fatalf("%s: faulty victim became included", at)
			}
		}
	}
	for _, s := range subs {
		s.sub.Unsubscribe()
	}
	checkClean(t, fmt.Sprintf("seed=%d teardown", seed), sys)
}

// RunFaultPeriodicPanic runs a pool-updater system in which one
// periodic item panics on every window computation after the first.
// The panic must surface as ErrComputePanic on reads of the victim
// while the rest of the graph keeps updating, with no wedged locks, no
// dead workers (later windows still execute — and still panic), and a
// clean teardown.
func RunFaultPeriodicPanic(t *testing.T, seed int64) {
	t.Helper()
	wl := Generate(seed, Config{Ops: 1})
	rng := rand.New(rand.NewSource(seed))
	victim := pickPeriodic(wl, rng)
	u := core.NewPoolUpdater(4)
	defer u.Stop()
	sys := NewSystem(wl, u, &Faults{PanicPeriodic: map[ikey]bool{victim: true}})

	subs := subscribeAll(t, seed, wl, sys)
	for step := 0; step < 6; step++ {
		sys.Clk.Advance(5)
		sys.Env.Quiesce()
	}
	at := fmt.Sprintf("seed=%d after ticks (victim %v)", seed, victim)
	if _, err := sys.Regs[victim.reg].Peek(victim.kind); !errors.Is(err, core.ErrComputePanic) {
		t.Fatalf("%s: victim Peek error %v, want ErrComputePanic", at, err)
	}
	if errs := core.VerifyIntegrity(extCounts(wl, subs), sys.BaseRegs()...); len(errs) > 0 {
		t.Fatalf("%s: integrity violations: %v", at, errs)
	}
	if err := core.ScopesUnlocked(sys.Regs...); err != nil {
		t.Fatalf("%s: %v", at, err)
	}
	// Non-victim periodic items must still satisfy the isolation
	// condition; the victim's panicked windows are unlogged by design.
	checkWindowLogs(t, at, sys, map[ikey]bool{victim: true})

	for _, s := range subs {
		s.sub.Unsubscribe()
	}
	checkClean(t, fmt.Sprintf("seed=%d teardown", seed), sys)
}

// RunFaultSlowPeriodic blocks one periodic item's window computation
// on a pool worker while the clock advances past several boundaries,
// then releases it. The late computation must clamp its window to the
// clock's position, the queued stale ticks must be dropped rather than
// published out of order, and the window log must still tile time.
func RunFaultSlowPeriodic(t *testing.T, seed int64) {
	t.Helper()
	wl := Generate(seed, Config{Ops: 1})
	rng := rand.New(rand.NewSource(seed))
	victim := pickPeriodic(wl, rng)
	release := make(chan struct{})
	u := core.NewPoolUpdater(4)
	defer u.Stop()
	sys := NewSystem(wl, u, &Faults{BlockPeriodic: map[ikey]chan struct{}{victim: release}})

	subs := subscribeAll(t, seed, wl, sys)
	w := wl.Item(victim.reg, victim.kind).Window
	// Three victim ticks queue up while the computation blocks (at
	// most three of the four workers wedge on the handler); the first
	// to run covers the whole elapsed span, the others are stale.
	sys.Clk.Advance(3 * w)
	close(release)
	sys.Env.Quiesce()
	sys.Clk.Advance(2 * w)
	sys.Env.Quiesce()

	at := fmt.Sprintf("seed=%d slow updater (victim %v, window %d)", seed, victim, w)
	checkWindowLogs(t, at, sys, nil)
	now := sys.Clk.Now()
	for _, l := range sys.WindowLogs() {
		wins := l.Windows()
		if n := len(wins); n > 0 && wins[n-1][1] > now {
			t.Fatalf("%s: %v: window %v ends after the clock (%d)", at, l.Item, wins[n-1], now)
		}
	}
	if v, err := sys.Regs[victim.reg].Peek(victim.kind); err != nil {
		t.Fatalf("%s: victim Peek error %v", at, err)
	} else if _, ok := v.(float64); !ok {
		t.Fatalf("%s: victim value %v (%T), want float64", at, v, v)
	}
	if errs := core.VerifyIntegrity(extCounts(wl, subs), sys.BaseRegs()...); len(errs) > 0 {
		t.Fatalf("%s: integrity violations: %v", at, errs)
	}
	if err := core.ScopesUnlocked(sys.Regs...); err != nil {
		t.Fatalf("%s: %v", at, err)
	}
	for _, s := range subs {
		s.sub.Unsubscribe()
	}
	checkClean(t, fmt.Sprintf("seed=%d teardown", seed), sys)
}

// waitFor polls cond until it holds, failing the test after a real-
// time grace period. It synchronizes with pool-worker progress that
// happens on OS scheduling, not on the virtual clock (a worker
// reaching a hang gate, a released late result landing in the stats).
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// health returns the victim's current health snapshot.
func health(t *testing.T, sys *System, k ikey) core.HealthSnapshot {
	t.Helper()
	hs, ok := sys.Regs[k.reg].Health(k.kind)
	if !ok {
		t.Fatalf("item %v not included", k)
	}
	return hs
}

// RunFaultHungCompute drives one periodic item of a seeded topology
// into a hung computation on a pool updater with a compute deadline
// and a breaker armed: each hung window computation times out, two
// timeouts trip the breaker, and the quarantined item must serve its
// last-good value — the value the reference model held at the fault
// instant — tagged stale, until a recovery probe succeeds after the
// fault heals. Late results from released hung computations must be
// fenced off (counted, never published).
func RunFaultHungCompute(t *testing.T, seed int64) {
	t.Helper()
	wl := Generate(seed, Config{Ops: 1})
	rng := rand.New(rand.NewSource(seed))
	victim := pickPeriodic(wl, rng)
	// Pin the victim's window so the deadline choreography below is
	// seed-independent: window 8 with deadline 2 leaves room to fire
	// each timeout strictly before the next boundary.
	wl.Item(victim.reg, victim.kind).Window = 8
	hang := NewHangFault()
	u := core.NewPoolUpdater(4)
	defer u.Stop()
	sys := NewSystem(wl, u,
		&Faults{HangPeriodic: map[ikey]*HangFault{victim: hang}},
		core.WithComputeDeadline(2),
		core.WithBreaker(core.BreakerPolicy{
			FailureThreshold: 2,
			FailureWindow:    1 << 20,
			ProbeBackoff:     3,
			MaxProbeBackoff:  12,
		}))
	model := NewModel(wl)
	subs := subscribeAll(t, seed, wl, sys)
	for _, s := range subs {
		if err := model.Subscribe(s.key.reg, s.key.kind); err != nil {
			t.Fatalf("seed=%d: model rejects %v: %v", seed, s.key, err)
		}
	}
	at := func(what string) string {
		return fmt.Sprintf("seed=%d hung compute (victim %v): %s", seed, victim, what)
	}

	// Healthy warm-up: one full window in lockstep with the model.
	// (Other items' windows may clamp under pool scheduling; the
	// victim's boundary is the last instant of the advance, so its
	// window is exact.)
	sys.Clk.Advance(8)
	sys.Env.Quiesce()
	model.Advance(8)
	expected, ok := model.Value(victim.reg, victim.kind)
	if !ok {
		t.Fatalf("%s: model lost the victim", at("warm-up"))
	}
	if v, err := sys.Regs[victim.reg].Peek(victim.kind); err != nil || v != any(expected) {
		t.Fatalf("%s: victim (%v, %v), model %v", at("warm-up"), v, err, expected)
	}
	// The fault engages now; the next boundary (t=16) is the fault
	// instant. `expected` — the model's value as of this instant, the
	// window [0,8] — is what the quarantined item must keep serving.
	hang.Engage()

	// Failure 1: boundary at t=16 hangs, deadline fires at t=18.
	sys.Clk.Advance(8)
	waitFor(t, "first hung compute", func() bool { return hang.Caught() == 1 })
	sys.Clk.Advance(2)
	sys.Env.Quiesce()
	if got := health(t, sys, victim).State; got != core.Degraded {
		t.Fatalf("%s: health %v, want Degraded", at("after first timeout"), got)
	}
	if _, err := sys.Regs[victim.reg].Peek(victim.kind); !errors.Is(err, core.ErrComputeTimeout) {
		t.Fatalf("%s: victim Peek error %v, want ErrComputeTimeout", at("after first timeout"), err)
	}

	// Failure 2: boundary at t=24 hangs, timeout at t=26 trips the
	// breaker. The item unschedules and republishes its last-good
	// value tagged stale.
	sys.Clk.Advance(6)
	waitFor(t, "second hung compute", func() bool { return hang.Caught() == 2 })
	sys.Clk.Advance(2)
	sys.Env.Quiesce()
	if got := health(t, sys, victim).State; got != core.Quarantined {
		t.Fatalf("%s: health %v, want Quarantined", at("after trip"), got)
	}
	v, err := sys.Regs[victim.reg].Peek(victim.kind)
	if !errors.Is(err, core.ErrStale) || !errors.Is(err, core.ErrComputeTimeout) {
		t.Fatalf("%s: victim Peek error %v, want ErrStale wrapping ErrComputeTimeout", at("after trip"), err)
	}
	if v != any(expected) {
		t.Fatalf("%s: stale value %v, want model value at fault instant %v", at("after trip"), v, expected)
	}

	// First recovery probe (armed at t=27) still hangs: it times out
	// at t=29 and re-arms on doubled backoff (t=33).
	sys.Clk.Advance(1)
	waitFor(t, "hung probe compute", func() bool { return hang.Caught() == 3 })
	sys.Clk.Advance(2)
	sys.Env.Quiesce()
	if got := health(t, sys, victim).State; got != core.Quarantined {
		t.Fatalf("%s: health %v, want Quarantined", at("after failed probe"), got)
	}

	// Heal. The three hung computations release and complete, but the
	// generation fence rejects every late result: counted, never
	// published.
	hang.Heal()
	st := sys.Env.Stats()
	waitFor(t, "late results fenced", func() bool { return st.LateResults.Load() == 3 })
	if v, err := sys.Regs[victim.reg].Peek(victim.kind); !errors.Is(err, core.ErrStale) || v != any(expected) {
		t.Fatalf("%s: victim (%v, %v), want fenced stale value %v", at("after heal"), v, err, expected)
	}

	// Second probe at t=33 succeeds: the breaker closes, the item
	// publishes the cumulative window since its last good one and
	// resumes its boundary cadence.
	sys.Clk.Advance(4)
	sys.Env.Quiesce()
	if got := health(t, sys, victim).State; got != core.Healthy {
		t.Fatalf("%s: health %v, want Healthy", at("after recovery"), got)
	}
	if v, err := sys.Regs[victim.reg].Peek(victim.kind); err != nil || v != any(encodeWindow(16, 33)) {
		t.Fatalf("%s: victim (%v, %v), want %v", at("after recovery"), v, err, encodeWindow(16, 33))
	}
	sys.Clk.Advance(8)
	sys.Env.Quiesce()
	if v, err := sys.Regs[victim.reg].Peek(victim.kind); err != nil || v != any(encodeWindow(33, 41)) {
		t.Fatalf("%s: victim (%v, %v), want resumed cadence %v", at("after recovery"), v, err, encodeWindow(33, 41))
	}
	snap := st.Snapshot()
	if snap.Timeouts != 3 || snap.BreakerTrips != 1 || snap.BreakerRecoveries != 1 {
		t.Fatalf("%s: timeouts=%d trips=%d recoveries=%d, want 3/1/1",
			at("stats"), snap.Timeouts, snap.BreakerTrips, snap.BreakerRecoveries)
	}

	if errs := core.VerifyIntegrity(extCounts(wl, subs), sys.BaseRegs()...); len(errs) > 0 {
		t.Fatalf("%s: integrity violations: %v", at("final"), errs)
	}
	if err := core.ScopesUnlocked(sys.Regs...); err != nil {
		t.Fatalf("%s: %v", at("final"), err)
	}
	// The victim's log holds late-released and probe windows that were
	// never published in order; everyone else must still tile time.
	checkWindowLogs(t, at("final"), sys, map[ikey]bool{victim: true})
	for _, s := range subs {
		s.sub.Unsubscribe()
	}
	checkClean(t, fmt.Sprintf("seed=%d teardown", seed), sys)
}

// RunFaultFlappingCompute drives one periodic item through repeated
// panic bursts on the deterministic inline updater: each burst of two
// panics trips the breaker, the recovery probe lands on the healthy
// computation of the flap cycle and closes it again. Quarantine entry
// and exit must both be observable, and the quarantined value must
// equal the reference model's value at the fault instant.
func RunFaultFlappingCompute(t *testing.T, seed int64) {
	t.Helper()
	wl := Generate(seed, Config{Ops: 1})
	rng := rand.New(rand.NewSource(seed))
	victim := pickPeriodic(wl, rng)
	w := int64(wl.Item(victim.reg, victim.kind).Window)
	flap := &FlapFault{Skip: 1, Burst: 2}
	sys := NewSystem(wl, nil,
		&Faults{FlapPeriodic: map[ikey]*FlapFault{victim: flap}},
		core.WithBreaker(core.BreakerPolicy{
			FailureThreshold: 2,
			FailureWindow:    1 << 20,
			ProbeBackoff:     2,
			MaxProbeBackoff:  16,
		}))
	model := NewModel(wl)
	subs := subscribeAll(t, seed, wl, sys)
	for _, s := range subs {
		if err := model.Subscribe(s.key.reg, s.key.kind); err != nil {
			t.Fatalf("seed=%d: model rejects %v: %v", seed, s.key, err)
		}
	}
	at := func(what string) string {
		return fmt.Sprintf("seed=%d flapping compute (victim %v, window %d): %s", seed, victim, w, what)
	}

	// One healthy window, then advance the model to just before the
	// first panicking boundary at t=2w: its value there — the window
	// [0,w] — is the reference the quarantined item must serve.
	sys.Clk.Advance(clock.Duration(w))
	model.Advance(w)
	model.Advance(w - 1)
	expected, ok := model.Value(victim.reg, victim.kind)
	if !ok {
		t.Fatalf("%s: model lost the victim", at("warm-up"))
	}

	// Burst 1: panics at t=2w (degraded) and t=3w (trip).
	sys.Clk.Advance(clock.Duration(w))
	if got := health(t, sys, victim).State; got != core.Degraded {
		t.Fatalf("%s: health %v, want Degraded", at("after first panic"), got)
	}
	sys.Clk.Advance(clock.Duration(w))
	if got := health(t, sys, victim).State; got != core.Quarantined {
		t.Fatalf("%s: health %v, want Quarantined", at("after burst 1"), got)
	}
	v, err := sys.Regs[victim.reg].Peek(victim.kind)
	if !errors.Is(err, core.ErrStale) || !errors.Is(err, core.ErrComputePanic) {
		t.Fatalf("%s: victim Peek error %v, want ErrStale wrapping ErrComputePanic", at("after burst 1"), err)
	}
	if v != any(expected) {
		t.Fatalf("%s: stale value %v, want model value at fault instant %v", at("after burst 1"), v, expected)
	}

	// Probe at t=3w+2 lands on the flap cycle's healthy computation:
	// breaker closes, cumulative window [2w, 3w+2] publishes, cadence
	// re-arms.
	sys.Clk.Advance(2)
	if got := health(t, sys, victim).State; got != core.Healthy {
		t.Fatalf("%s: health %v, want Healthy", at("after probe 1"), got)
	}
	rec1 := encodeWindow(clock.Time(2*w), clock.Time(3*w+2))
	if v, err := sys.Regs[victim.reg].Peek(victim.kind); err != nil || v != any(rec1) {
		t.Fatalf("%s: victim (%v, %v), want %v", at("after probe 1"), v, err, rec1)
	}

	// Burst 2: panics at t=4w+2 and t=5w+2 trip again; the stale value
	// is now the recovery window of cycle 1.
	sys.Clk.Advance(clock.Duration(w))
	sys.Clk.Advance(clock.Duration(w))
	if got := health(t, sys, victim).State; got != core.Quarantined {
		t.Fatalf("%s: health %v, want Quarantined", at("after burst 2"), got)
	}
	if v, err := sys.Regs[victim.reg].Peek(victim.kind); !errors.Is(err, core.ErrStale) || v != any(rec1) {
		t.Fatalf("%s: victim (%v, %v), want stale %v", at("after burst 2"), v, err, rec1)
	}
	sys.Clk.Advance(2)
	if got := health(t, sys, victim).State; got != core.Healthy {
		t.Fatalf("%s: health %v, want Healthy", at("after probe 2"), got)
	}
	rec2 := encodeWindow(clock.Time(4*w+2), clock.Time(5*w+4))
	if v, err := sys.Regs[victim.reg].Peek(victim.kind); err != nil || v != any(rec2) {
		t.Fatalf("%s: victim (%v, %v), want %v", at("after probe 2"), v, err, rec2)
	}
	snap := sys.Env.Stats().Snapshot()
	if snap.BreakerTrips != 2 || snap.BreakerRecoveries != 2 {
		t.Fatalf("%s: trips=%d recoveries=%d, want 2/2", at("stats"), snap.BreakerTrips, snap.BreakerRecoveries)
	}

	if errs := core.VerifyIntegrity(extCounts(wl, subs), sys.BaseRegs()...); len(errs) > 0 {
		t.Fatalf("%s: integrity violations: %v", at("final"), errs)
	}
	if err := core.ScopesUnlocked(sys.Regs...); err != nil {
		t.Fatalf("%s: %v", at("final"), err)
	}
	checkWindowLogs(t, at("final"), sys, map[ikey]bool{victim: true})
	for _, s := range subs {
		s.sub.Unsubscribe()
	}
	checkClean(t, fmt.Sprintf("seed=%d teardown", seed), sys)
}

// RunClockSkew drives the full topology through irregular clock jumps
// — fine steps, coarse skips, and huge skews crossing hundreds of
// window boundaries at once — comparing against the model after each
// jump and verifying the window tiling at the end.
func RunClockSkew(t *testing.T, seed int64) {
	t.Helper()
	wl := Generate(seed, Config{Ops: 1})
	sys := NewSystem(wl, nil, nil)
	model := NewModel(wl)
	subs := subscribeAll(t, seed, wl, sys)
	for _, s := range subs {
		if err := model.Subscribe(s.key.reg, s.key.kind); err != nil {
			t.Fatalf("seed=%d: model rejects %v: %v", seed, s.key, err)
		}
	}

	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	for i := 0; i < 40; i++ {
		var d int64
		switch rng.Intn(3) {
		case 0:
			d = int64(1 + rng.Intn(3))
		case 1:
			d = int64(50 + rng.Intn(500))
		default:
			d = int64(997 + rng.Intn(2000))
		}
		sys.Clk.Advance(clock.Duration(d))
		model.Advance(d)
		compareStates(t, fmt.Sprintf("seed=%d skew#%d (+%d)", seed, i, d), sys, model, subs)
	}
	for _, s := range subs {
		s.sub.Unsubscribe()
	}
	checkClean(t, fmt.Sprintf("seed=%d teardown", seed), sys)
	checkWindowLogs(t, fmt.Sprintf("seed=%d", seed), sys, nil)
}

// subscribeAll subscribes to every item of the workload, failing the
// test on any error, and returns the held subscriptions.
func subscribeAll(t *testing.T, seed int64, wl *Workload, sys *System) []heldSub {
	t.Helper()
	var subs []heldSub
	for ri := range wl.Regs {
		for _, it := range wl.Regs[ri].Items {
			sub, err := sys.Regs[ri].Subscribe(it.Kind)
			if err != nil {
				t.Fatalf("seed=%d: subscribe r%d/%s: %v", seed, ri, it.Kind, err)
			}
			subs = append(subs, heldSub{sub: sub, key: ikey{ri, it.Kind}})
		}
	}
	return subs
}
