package modelcheck

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
)

// Fault-injection scenarios. Each runs a seeded workload topology with
// one deliberately broken item and verifies the degradation contract:
// failures surface as errors on Subscribe/Value, never as leaked
// references, wedged component locks, or corrupted snapshots.

// closureOf returns the transitive dependency closure of one item
// (including itself), resolved with every module attached.
func closureOf(wl *Workload, start ikey) map[ikey]bool {
	resolver := NewModel(wl) // empty model: used only for selector resolution
	seen := make(map[ikey]bool)
	var walk func(k ikey)
	walk = func(k ikey) {
		if seen[k] {
			return
		}
		seen[k] = true
		for _, d := range wl.Item(k.reg, k.kind).Deps {
			for _, tr := range resolver.resolve(k.reg, d) {
				walk(ikey{tr, d.Kind})
			}
		}
	}
	walk(start)
	return seen
}

// pickItem draws a random workload item.
func pickItem(wl *Workload, rng *rand.Rand) ikey {
	ri := rng.Intn(len(wl.Regs))
	return ikey{ri, wl.Regs[ri].Items[rng.Intn(len(wl.Regs[ri].Items))].Kind}
}

// pickPeriodic draws a random periodic item; if the seed generated
// none, it deterministically converts the first item into one.
func pickPeriodic(wl *Workload, rng *rand.Rand) ikey {
	var ps []ikey
	for ri := range wl.Regs {
		for _, it := range wl.Regs[ri].Items {
			if it.Mech == core.PeriodicMechanism {
				ps = append(ps, ikey{ri, it.Kind})
			}
		}
	}
	if len(ps) == 0 {
		it := &wl.Regs[0].Items[0]
		it.Mech = core.PeriodicMechanism
		it.Window = 5
		it.Deps = nil
		return ikey{0, it.Kind}
	}
	return ps[rng.Intn(len(ps))]
}

// RunFaultBuild subscribes to every item of a seeded topology while
// one victim item's Build panics (panicMode) or errors. Subscriptions
// whose dependency closure contains the victim must fail — with
// ErrComputePanic in panic mode — rolling back mid-traversal without
// residue; all others must succeed. Invariants are checked after every
// attempt.
func RunFaultBuild(t *testing.T, seed int64, panicMode bool) {
	t.Helper()
	wl := Generate(seed, Config{Ops: 1})
	rng := rand.New(rand.NewSource(seed))
	victim := pickItem(wl, rng)
	faults := &Faults{}
	if panicMode {
		faults.PanicBuild = map[ikey]bool{victim: true}
	} else {
		faults.FailBuild = map[ikey]bool{victim: true}
	}
	sys := NewSystem(wl, nil, faults)

	var subs []heldSub
	for ri := range wl.Regs {
		for _, it := range wl.Regs[ri].Items {
			k := ikey{ri, it.Kind}
			at := fmt.Sprintf("seed=%d subscribe %v (victim %v)", seed, k, victim)
			sub, err := sys.Regs[ri].Subscribe(it.Kind)
			if closureOf(wl, k)[victim] {
				if err == nil {
					t.Fatalf("%s: succeeded, want failure through faulty Build", at)
				}
				if panicMode && !errors.Is(err, core.ErrComputePanic) {
					t.Fatalf("%s: error %v, want ErrComputePanic", at, err)
				}
			} else {
				if err != nil {
					t.Fatalf("%s: failed: %v", at, err)
				}
				subs = append(subs, heldSub{sub: sub, key: k})
			}
			if errs := core.VerifyIntegrity(extCounts(wl, subs), sys.BaseRegs()...); len(errs) > 0 {
				t.Fatalf("%s: integrity violations: %v", at, errs)
			}
			if err := core.ScopesUnlocked(sys.Regs...); err != nil {
				t.Fatalf("%s: %v", at, err)
			}
			if inc := sys.Regs[victim.reg].IsIncluded(victim.kind); inc {
				t.Fatalf("%s: faulty victim became included", at)
			}
		}
	}
	for _, s := range subs {
		s.sub.Unsubscribe()
	}
	checkClean(t, fmt.Sprintf("seed=%d teardown", seed), sys)
}

// RunFaultPeriodicPanic runs a pool-updater system in which one
// periodic item panics on every window computation after the first.
// The panic must surface as ErrComputePanic on reads of the victim
// while the rest of the graph keeps updating, with no wedged locks, no
// dead workers (later windows still execute — and still panic), and a
// clean teardown.
func RunFaultPeriodicPanic(t *testing.T, seed int64) {
	t.Helper()
	wl := Generate(seed, Config{Ops: 1})
	rng := rand.New(rand.NewSource(seed))
	victim := pickPeriodic(wl, rng)
	u := core.NewPoolUpdater(4)
	defer u.Stop()
	sys := NewSystem(wl, u, &Faults{PanicPeriodic: map[ikey]bool{victim: true}})

	subs := subscribeAll(t, seed, wl, sys)
	for step := 0; step < 6; step++ {
		sys.Clk.Advance(5)
		sys.Env.Quiesce()
	}
	at := fmt.Sprintf("seed=%d after ticks (victim %v)", seed, victim)
	if _, err := sys.Regs[victim.reg].Peek(victim.kind); !errors.Is(err, core.ErrComputePanic) {
		t.Fatalf("%s: victim Peek error %v, want ErrComputePanic", at, err)
	}
	if errs := core.VerifyIntegrity(extCounts(wl, subs), sys.BaseRegs()...); len(errs) > 0 {
		t.Fatalf("%s: integrity violations: %v", at, errs)
	}
	if err := core.ScopesUnlocked(sys.Regs...); err != nil {
		t.Fatalf("%s: %v", at, err)
	}
	// Non-victim periodic items must still satisfy the isolation
	// condition; the victim's panicked windows are unlogged by design.
	checkWindowLogs(t, at, sys, map[ikey]bool{victim: true})

	for _, s := range subs {
		s.sub.Unsubscribe()
	}
	checkClean(t, fmt.Sprintf("seed=%d teardown", seed), sys)
}

// RunFaultSlowPeriodic blocks one periodic item's window computation
// on a pool worker while the clock advances past several boundaries,
// then releases it. The late computation must clamp its window to the
// clock's position, the queued stale ticks must be dropped rather than
// published out of order, and the window log must still tile time.
func RunFaultSlowPeriodic(t *testing.T, seed int64) {
	t.Helper()
	wl := Generate(seed, Config{Ops: 1})
	rng := rand.New(rand.NewSource(seed))
	victim := pickPeriodic(wl, rng)
	release := make(chan struct{})
	u := core.NewPoolUpdater(4)
	defer u.Stop()
	sys := NewSystem(wl, u, &Faults{BlockPeriodic: map[ikey]chan struct{}{victim: release}})

	subs := subscribeAll(t, seed, wl, sys)
	w := wl.Item(victim.reg, victim.kind).Window
	// Three victim ticks queue up while the computation blocks (at
	// most three of the four workers wedge on the handler); the first
	// to run covers the whole elapsed span, the others are stale.
	sys.Clk.Advance(3 * w)
	close(release)
	sys.Env.Quiesce()
	sys.Clk.Advance(2 * w)
	sys.Env.Quiesce()

	at := fmt.Sprintf("seed=%d slow updater (victim %v, window %d)", seed, victim, w)
	checkWindowLogs(t, at, sys, nil)
	now := sys.Clk.Now()
	for _, l := range sys.WindowLogs() {
		wins := l.Windows()
		if n := len(wins); n > 0 && wins[n-1][1] > now {
			t.Fatalf("%s: %v: window %v ends after the clock (%d)", at, l.Item, wins[n-1], now)
		}
	}
	if v, err := sys.Regs[victim.reg].Peek(victim.kind); err != nil {
		t.Fatalf("%s: victim Peek error %v", at, err)
	} else if _, ok := v.(float64); !ok {
		t.Fatalf("%s: victim value %v (%T), want float64", at, v, v)
	}
	if errs := core.VerifyIntegrity(extCounts(wl, subs), sys.BaseRegs()...); len(errs) > 0 {
		t.Fatalf("%s: integrity violations: %v", at, errs)
	}
	if err := core.ScopesUnlocked(sys.Regs...); err != nil {
		t.Fatalf("%s: %v", at, err)
	}
	for _, s := range subs {
		s.sub.Unsubscribe()
	}
	checkClean(t, fmt.Sprintf("seed=%d teardown", seed), sys)
}

// RunClockSkew drives the full topology through irregular clock jumps
// — fine steps, coarse skips, and huge skews crossing hundreds of
// window boundaries at once — comparing against the model after each
// jump and verifying the window tiling at the end.
func RunClockSkew(t *testing.T, seed int64) {
	t.Helper()
	wl := Generate(seed, Config{Ops: 1})
	sys := NewSystem(wl, nil, nil)
	model := NewModel(wl)
	subs := subscribeAll(t, seed, wl, sys)
	for _, s := range subs {
		if err := model.Subscribe(s.key.reg, s.key.kind); err != nil {
			t.Fatalf("seed=%d: model rejects %v: %v", seed, s.key, err)
		}
	}

	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	for i := 0; i < 40; i++ {
		var d int64
		switch rng.Intn(3) {
		case 0:
			d = int64(1 + rng.Intn(3))
		case 1:
			d = int64(50 + rng.Intn(500))
		default:
			d = int64(997 + rng.Intn(2000))
		}
		sys.Clk.Advance(clock.Duration(d))
		model.Advance(d)
		compareStates(t, fmt.Sprintf("seed=%d skew#%d (+%d)", seed, i, d), sys, model, subs)
	}
	for _, s := range subs {
		s.sub.Unsubscribe()
	}
	checkClean(t, fmt.Sprintf("seed=%d teardown", seed), sys)
	checkWindowLogs(t, fmt.Sprintf("seed=%d", seed), sys, nil)
}

// subscribeAll subscribes to every item of the workload, failing the
// test on any error, and returns the held subscriptions.
func subscribeAll(t *testing.T, seed int64, wl *Workload, sys *System) []heldSub {
	t.Helper()
	var subs []heldSub
	for ri := range wl.Regs {
		for _, it := range wl.Regs[ri].Items {
			sub, err := sys.Regs[ri].Subscribe(it.Kind)
			if err != nil {
				t.Fatalf("seed=%d: subscribe r%d/%s: %v", seed, ri, it.Kind, err)
			}
			subs = append(subs, heldSub{sub: sub, key: ikey{ri, it.Kind}})
		}
	}
	return subs
}
