package modelcheck

import (
	"fmt"
	"math/rand"

	"repro/internal/clock"
	"repro/internal/core"
)

// The workload DSL. It mirrors core's declaration surface (selectors,
// dependency refs, mechanisms) with inspectable fields, so the
// sequential reference model can resolve dependencies and predict
// values without reaching into core internals.

// SelKind discriminates dependency selectors.
type SelKind int

// Selector kinds used by generated workloads. Output selectors are
// omitted on purpose: with input edges pointing at lower-numbered
// registries the generated dependency graph is acyclic by
// construction.
const (
	SelSelf SelKind = iota
	SelInput
	SelEachInput
	SelModule
)

// DepSpec is one declared dependency of a workload item.
type DepSpec struct {
	Sel      SelKind
	Index    int    // input index, for SelInput
	Name     string // module name, for SelModule
	Kind     core.Kind
	Optional bool
}

// AdaptKind classifies a workload item's migratability (its
// Definition.Adapt surface).
type AdaptKind int

const (
	// AdaptNone: no AdaptSpec; Migrate must reject the item.
	AdaptNone AdaptKind = iota
	// AdaptExact: migratable between the periodic form and a PURE
	// on-demand form whose value is exactly Base — no time term, no
	// dependency sum. Used for the dependency-free "k0" items so that
	// delta-aggregate fan-ins stay exactly representable in every
	// mechanism the item can migrate through (a triggered form's
	// 0.01·now term would poison delta-vs-fold bit equality, so
	// AdaptExact deliberately has no triggered form).
	AdaptExact
	// AdaptFull: migratable between all three dynamic mechanisms, with
	// the standard value semantics of each form (see system.go). Never
	// part of an aggregate fan-in.
	AdaptFull
)

// ItemSpec declares one metadata item of a workload registry. Base is
// the constant term of the item's deterministic compute function; the
// full value semantics live in valueSemantics (system.go) and are
// mirrored exactly by the model.
type ItemSpec struct {
	Kind core.Kind
	Mech core.Mechanism
	// Window is the update period of periodic items, and for adaptable
	// items also the AdaptSpec default window a migration to periodic
	// falls back to when the op carries none.
	Window clock.Duration
	Deps   []DepSpec
	Events []string
	Base   float64
	// Adapt declares the item's migration surface; AdaptNone items are
	// pinned to Mech.
	Adapt AdaptKind
	// Pure marks an on-demand item whose compute omits the access-time
	// term: its value is a function of the declared dependencies alone,
	// so the real system may memoize it under WithMemoizedOnDemand.
	// Volatile (non-pure) on-demand items keep the 0.001·now term and
	// must recompute on every access even with memoization enabled.
	Pure bool
	// Agg names the delta-aggregate form of a triggered item ("sum",
	// "count", "mean", "min"; empty for plain items). Aggregate values
	// are the declared fold over the dependency fan-in — no Base or
	// time term — so the incremental delta path and the model's full
	// fold must agree bit for bit.
	Agg string
	// Rebase is the aggregate's DeltaSpec.RebaseEvery (0 = core
	// default, negative = never).
	Rebase int
}

// RegSpec declares one registry of the workload topology. Module
// registries have Parent >= 0 and are attached to Regs[Parent] under
// ModName at setup time.
type RegSpec struct {
	ID      string
	Inputs  []int // indices of upstream registries (base registries only)
	Parent  int   // -1 for base registries
	ModName string
	Items   []ItemSpec
}

// OpKind enumerates workload operations.
type OpKind int

// Workload operations. OpAdvance moves the virtual clock; in the
// concurrent driver all advances run on one worker because the
// virtual clock forbids re-entrant advancement.
const (
	OpSubscribe     OpKind = iota // subscribe to (Reg, Item); hold the subscription
	OpUnsubscribe                 // release held subscription #Arg (mod pool size)
	OpAdvance                     // advance the virtual clock by Arg units
	OpFireEvent                   // fire Event on Reg
	OpNotifyChanged               // announce a change of (Reg, Item)
	OpRead                        // read (Reg, Item) via Peek
	OpRedefine                    // re-Define (Reg, Item); fails while included
	OpDetachModule                // detach module Reg from its parent
	OpAttachModule                // re-attach module Reg to its parent
	OpMigrate                     // migrate (Reg, Item) to mechanism Arg&0xff, window Arg>>8
)

// Op is one step of a workload script.
type Op struct {
	Kind  OpKind
	Reg   int
	Item  core.Kind
	Arg   int64
	Event string
}

// String renders the op for failure messages.
func (o Op) String() string {
	switch o.Kind {
	case OpSubscribe:
		return fmt.Sprintf("subscribe r%d/%s", o.Reg, o.Item)
	case OpUnsubscribe:
		return fmt.Sprintf("unsubscribe #%d", o.Arg)
	case OpAdvance:
		return fmt.Sprintf("advance %d", o.Arg)
	case OpFireEvent:
		return fmt.Sprintf("fire r%d/%s", o.Reg, o.Event)
	case OpNotifyChanged:
		return fmt.Sprintf("notify r%d/%s", o.Reg, o.Item)
	case OpRead:
		return fmt.Sprintf("read r%d/%s", o.Reg, o.Item)
	case OpRedefine:
		return fmt.Sprintf("redefine r%d/%s", o.Reg, o.Item)
	case OpDetachModule:
		return fmt.Sprintf("detach r%d", o.Reg)
	case OpAttachModule:
		return fmt.Sprintf("attach r%d", o.Reg)
	case OpMigrate:
		return fmt.Sprintf("migrate r%d/%s -> mech=%d w=%d", o.Reg, o.Item, o.Arg&0xff, o.Arg>>8)
	default:
		return fmt.Sprintf("op(%d)", int(o.Kind))
	}
}

// Workload is a replayable script: the topology plus the op sequence,
// both fully determined by the seed.
type Workload struct {
	Seed int64
	Regs []RegSpec
	Ops  []Op
}

// Item returns the spec of (reg, kind), or nil if undefined.
func (w *Workload) Item(reg int, kind core.Kind) *ItemSpec {
	for i := range w.Regs[reg].Items {
		if w.Regs[reg].Items[i].Kind == kind {
			return &w.Regs[reg].Items[i]
		}
	}
	return nil
}

// Config tunes workload generation.
type Config struct {
	// Ops is the script length (default 60).
	Ops int
	// Concurrent restricts the op mix to operations whose final
	// structural outcome is interleaving-independent (no redefine or
	// module attach/detach, whose success depends on racy state), so
	// the concurrent driver can predict the quiescent state.
	Concurrent bool
}

// Generate builds the workload for a seed: a random DAG of registries
// with modules, a metadata item catalog mixing all four maintenance
// mechanisms, and an op script. The same seed always yields the same
// workload.
func Generate(seed int64, cfg Config) *Workload {
	if cfg.Ops == 0 {
		cfg.Ops = 60
	}
	rng := rand.New(rand.NewSource(seed))
	w := &Workload{Seed: seed}

	// --- Topology: base registries with input edges to lower indices.
	nBase := 3 + rng.Intn(4) // 3..6
	for i := 0; i < nBase; i++ {
		spec := RegSpec{ID: fmt.Sprintf("r%d", i), Parent: -1}
		if i > 0 {
			for _, in := range rng.Perm(i) {
				if len(spec.Inputs) >= 2 {
					break
				}
				if rng.Float64() < 0.7 {
					spec.Inputs = append(spec.Inputs, in)
				}
			}
		}
		w.Regs = append(w.Regs, spec)
	}
	// Modules: about half the base registries carry one.
	for i := 0; i < nBase; i++ {
		if rng.Float64() < 0.5 {
			w.Regs = append(w.Regs, RegSpec{
				ID:      fmt.Sprintf("r%d.m", i),
				Parent:  i,
				ModName: "m",
			})
		}
	}

	// --- Items. Item 0 of every registry is dependency-free so that
	// EachInput dependencies on kind "k0" always resolve.
	for ri := range w.Regs {
		reg := &w.Regs[ri]
		n := 2 + rng.Intn(3) // 2..4 items
		for j := 0; j < n; j++ {
			it := ItemSpec{
				Kind: core.Kind(fmt.Sprintf("k%d", j)),
				Base: float64(ri*97 + j*13),
			}
			if j == 0 {
				if rng.Float64() < 0.5 {
					it.Mech = core.StaticMechanism
				} else {
					it.Mech = core.PeriodicMechanism
					it.Window = []clock.Duration{3, 5, 7, 10}[rng.Intn(4)]
					if rng.Float64() < 0.6 {
						// Migratable aggregate-fan-in source: periodic <->
						// pure on-demand (value Base, an exact integer), so
						// any aggregate folding it stays bit-exact whichever
						// mechanism it currently runs.
						it.Adapt = AdaptExact
						it.Pure = true
					}
				}
			} else {
				switch p := rng.Float64(); {
				case p < 0.20:
					it.Mech = core.StaticMechanism
				case p < 0.45:
					it.Mech = core.OnDemandMechanism
					// Half the on-demand items are pure, so memo-enabled
					// runs mix memoized, volatile, and pure-but-blocked
					// (pure over a volatile dep) read paths.
					it.Pure = rng.Float64() < 0.5
				case p < 0.70:
					it.Mech = core.PeriodicMechanism
					it.Window = []clock.Duration{3, 5, 7, 10}[rng.Intn(4)]
				case p < 0.88:
					it.Mech = core.TriggeredMechanism
				default:
					// A delta aggregate: triggered, maintained through the
					// incremental pair channel when possible. The mix spans
					// invertible (sum/count/mean) and non-invertible (min)
					// forms and small rebase intervals, so every fallback
					// row of the delta contract is exercised by the seeds.
					it.Mech = core.TriggeredMechanism
					it.Agg = []string{"sum", "count", "mean", "min"}[rng.Intn(4)]
					it.Rebase = []int{-1, 0, 2, 3}[rng.Intn(4)]
				}
				if it.Agg != "" {
					it.Deps = genAggDeps(rng, w, ri)
				} else {
					it.Deps = genDeps(rng, w, ri, j)
				}
				if it.Agg == "" && it.Mech != core.StaticMechanism && rng.Float64() < 0.5 {
					// Migratable between all three dynamic mechanisms.
					it.Adapt = AdaptFull
					if it.Mech != core.OnDemandMechanism {
						// Adaptable items roll purity too: it decides the
						// access-time term of their on-demand form (and its
						// memo eligibility after a migration).
						it.Pure = rng.Float64() < 0.5
					}
					if it.Window == 0 {
						it.Window = []clock.Duration{3, 5, 7, 10}[rng.Intn(4)]
					}
				}
			}
			if it.Mech == core.TriggeredMechanism || rng.Float64() < 0.2 {
				for _, ev := range []string{"e0", "e1"} {
					if rng.Float64() < 0.5 {
						it.Events = append(it.Events, ev)
					}
				}
			}
			reg.Items = append(reg.Items, it)
		}
	}

	// --- Op script.
	for len(w.Ops) < cfg.Ops {
		w.Ops = append(w.Ops, genOp(rng, w, cfg))
	}
	return w
}

// genDeps draws the dependencies of item j of registry ri, acyclic by
// construction: Self deps point at lower item indices, Input deps at
// lower registry indices, and Module deps at module items that only
// ever depend on themselves.
func genDeps(rng *rand.Rand, w *Workload, ri, j int) []DepSpec {
	reg := &w.Regs[ri]
	isModule := reg.Parent >= 0
	var deps []DepSpec
	n := rng.Intn(3) // 0..2
	for d := 0; d < n; d++ {
		if isModule {
			// Module items depend only on earlier module-local items.
			deps = append(deps, DepSpec{Sel: SelSelf, Kind: core.Kind(fmt.Sprintf("k%d", rng.Intn(j)))})
			continue
		}
		switch p := rng.Float64(); {
		case p < 0.35:
			deps = append(deps, DepSpec{Sel: SelSelf, Kind: core.Kind(fmt.Sprintf("k%d", rng.Intn(j)))})
		case p < 0.60 && len(reg.Inputs) > 0:
			idx := rng.Intn(len(reg.Inputs))
			// Any item of the input registry: the input has a lower
			// registry index, so the edge cannot close a cycle. Use a
			// low item index so it exists in every generated registry.
			deps = append(deps, DepSpec{Sel: SelInput, Index: idx, Kind: core.Kind(fmt.Sprintf("k%d", rng.Intn(2)))})
		case p < 0.75 && len(reg.Inputs) > 0:
			deps = append(deps, DepSpec{Sel: SelEachInput, Kind: "k0"})
		case p < 0.90 && moduleOf(w, ri) >= 0:
			mi := moduleOf(w, ri)
			mk := rng.Intn(2) // module registries always have >= 2 items
			deps = append(deps, DepSpec{Sel: SelModule, Name: "m", Kind: core.Kind(fmt.Sprintf("k%d", mk)),
				Optional: rng.Float64() < 0.5})
			_ = mi
		default:
			// An optional selector that resolves to nothing exercises
			// the empty-dependency-group path.
			deps = append(deps, DepSpec{Sel: SelModule, Name: "nope", Kind: "k0", Optional: true})
		}
	}
	return deps
}

// genAggDeps draws the fan-in of a delta aggregate: only "k0" items —
// dependency-free, exactly-representable values (integer static bases
// and integer-encoded periodic windows) — so the incremental
// accumulator and a from-scratch fold are bit-identical and the
// lockstep drivers can compare values exactly. Float-inexact sources
// would make delta-vs-fold equality depend on operation order.
// Duplicate edges (the same k0 drawn twice) exercise per-edge pair
// multiplicity.
func genAggDeps(rng *rand.Rand, w *Workload, ri int) []DepSpec {
	reg := &w.Regs[ri]
	n := 1 + rng.Intn(3) // 1..3
	deps := make([]DepSpec, 0, n)
	for d := 0; d < n; d++ {
		p := rng.Float64()
		switch {
		case p < 0.45 || len(reg.Inputs) == 0 || reg.Parent >= 0:
			deps = append(deps, DepSpec{Sel: SelSelf, Kind: "k0"})
		case p < 0.75:
			deps = append(deps, DepSpec{Sel: SelInput, Index: rng.Intn(len(reg.Inputs)), Kind: "k0"})
		default:
			deps = append(deps, DepSpec{Sel: SelEachInput, Kind: "k0"})
		}
	}
	return deps
}

// deltaSpecFor materializes the core delta spec of an aggregate item.
// Shared by the system under test and the reference model, so both
// sides fold with the identical float64 operations.
func deltaSpecFor(it *ItemSpec) *core.DeltaSpec {
	var s *core.DeltaSpec
	switch it.Agg {
	case "sum":
		s = core.DeltaSum()
	case "count":
		s = core.DeltaCount()
	case "mean":
		s = core.DeltaMean()
	case "min":
		s = core.DeltaMin()
	default:
		panic("modelcheck: unknown aggregate " + it.Agg)
	}
	s.RebaseEvery = it.Rebase
	return s
}

// moduleOf returns the registry index of ri's module, or -1.
func moduleOf(w *Workload, ri int) int {
	for i, r := range w.Regs {
		if r.Parent == ri {
			return i
		}
	}
	return -1
}

// genOp draws one workload operation.
func genOp(rng *rand.Rand, w *Workload, cfg Config) Op {
	randomItem := func() (int, core.Kind) {
		ri := rng.Intn(len(w.Regs))
		return ri, w.Regs[ri].Items[rng.Intn(len(w.Regs[ri].Items))].Kind
	}
	p := rng.Float64()
	if cfg.Concurrent {
		switch {
		case p < 0.30:
			ri, k := randomItem()
			return Op{Kind: OpSubscribe, Reg: ri, Item: k}
		case p < 0.55:
			return Op{Kind: OpUnsubscribe, Arg: int64(rng.Intn(1 << 16))}
		case p < 0.65:
			ri := rng.Intn(len(w.Regs))
			return Op{Kind: OpFireEvent, Reg: ri, Event: []string{"e0", "e1"}[rng.Intn(2)]}
		case p < 0.75:
			ri, k := randomItem()
			return Op{Kind: OpNotifyChanged, Reg: ri, Item: k}
		case p < 0.90:
			ri, k := randomItem()
			return Op{Kind: OpRead, Reg: ri, Item: k}
		default:
			return Op{Kind: OpAdvance, Arg: int64(1 + rng.Intn(12))}
		}
	}
	switch {
	case p < 0.22:
		ri, k := randomItem()
		if rng.Float64() < 0.05 {
			k = "zzz" // unknown item: error-path equality
		}
		return Op{Kind: OpSubscribe, Reg: ri, Item: k}
	case p < 0.42:
		return Op{Kind: OpUnsubscribe, Arg: int64(rng.Intn(1 << 16))}
	case p < 0.57:
		d := int64(1 + rng.Intn(12))
		if rng.Float64() < 0.1 {
			d = int64(20 + rng.Intn(40)) // skip several windows at once
		}
		return Op{Kind: OpAdvance, Arg: d}
	case p < 0.67:
		ri := rng.Intn(len(w.Regs))
		return Op{Kind: OpFireEvent, Reg: ri, Event: []string{"e0", "e1"}[rng.Intn(2)]}
	case p < 0.77:
		ri, k := randomItem()
		return Op{Kind: OpNotifyChanged, Reg: ri, Item: k}
	case p < 0.85:
		ri, k := randomItem()
		return Op{Kind: OpRead, Reg: ri, Item: k}
	case p < 0.93:
		// Live mechanism migration. The target is any random item — most
		// draws hit migratable included items, the rest pin the error
		// classes (not included, no AdaptSpec, aggregate, missing form).
		// A zero window exercises the AdaptSpec default-window fallback.
		ri, k := randomItem()
		mech := int64(1 + rng.Intn(3))
		var win int64
		if rng.Float64() >= 0.3 {
			win = int64([]clock.Duration{3, 5, 7, 10}[rng.Intn(4)])
		}
		return Op{Kind: OpMigrate, Reg: ri, Item: k, Arg: mech | win<<8}
	case p < 0.96:
		ri, k := randomItem()
		return Op{Kind: OpRedefine, Reg: ri, Item: k}
	default:
		// Module churn: detach/attach a random module registry, if any.
		var mods []int
		for i, r := range w.Regs {
			if r.Parent >= 0 {
				mods = append(mods, i)
			}
		}
		if len(mods) == 0 {
			ri, k := randomItem()
			return Op{Kind: OpRead, Reg: ri, Item: k}
		}
		mi := mods[rng.Intn(len(mods))]
		if rng.Float64() < 0.5 {
			return Op{Kind: OpDetachModule, Reg: mi}
		}
		return Op{Kind: OpAttachModule, Reg: mi}
	}
}

// toDepRef converts a DSL dependency to a core.DepRef.
func toDepRef(d DepSpec) core.DepRef {
	var sel core.Selector
	switch d.Sel {
	case SelSelf:
		sel = core.Self()
	case SelInput:
		sel = core.Input(d.Index)
	case SelEachInput:
		sel = core.EachInput()
	case SelModule:
		sel = core.Module(d.Name)
	}
	return core.DepRef{Target: sel, Kind: d.Kind, Optional: d.Optional}
}
