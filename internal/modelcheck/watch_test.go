package modelcheck

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/watch"
)

// This file checks the watch hub's delivery contract against the
// published version stream:
//
//  1. monotonic — a watcher's event versions strictly increase;
//  2. gap-free — every skipped version is flagged (Snapshot on the
//     catch-up head, Coalesced on merged deltas), so an unflagged
//     event is always exactly prev+1;
//  3. bounded — no event exceeds the item's published version;
//  4. caught up — at quiescence (publishers done, hub barrier), every
//     open watcher's last delivered event is the item's current
//     version.
//
// The sequential variant runs seeded schedules of interleaved
// publishes, joins (random resume points and ring sizes), drains, and
// closes. The concurrent variant (run it with -race) publishes from 4
// workers while long-lived consumers drain concurrently and a churn
// goroutine races subscribe/unsubscribe with tiny rings, exercising
// the shed and coalesce paths.

// watchPlane builds a registry with a static "src" and a triggered
// "val" republishing on every src notification, pinned by an
// application subscription so its version stream spans the whole test.
func watchPlane(t *testing.T) (*core.Env, *core.Registry, func()) {
	t.Helper()
	env := core.NewEnv(clock.NewVirtual())
	r := env.NewRegistry("w1")
	r.MustDefine(&core.Definition{
		Kind:  "src",
		Build: func(*core.BuildContext) (core.Handler, error) { return core.NewStatic(0.0), nil },
	})
	n := new(atomic.Int64)
	r.MustDefine(&core.Definition{
		Kind: "val",
		Deps: []core.DepRef{core.Dep(core.Self(), "src")},
		Build: func(*core.BuildContext) (core.Handler, error) {
			return core.NewTriggered(func(clock.Time) (core.Value, error) {
				return float64(n.Load()), nil
			}), nil
		},
	})
	sub, err := r.Subscribe("val")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sub.Unsubscribe)
	return env, r, func() {
		n.Add(1)
		r.NotifyChanged("src")
	}
}

// checkWatchDelivery asserts properties 1-3 on one watcher's event
// sequence, given the version it resumed from and the final published
// version.
func checkWatchDelivery(t *testing.T, label string, since uint64, evs []watch.Event, final uint64) {
	t.Helper()
	prev := since
	for i, ev := range evs {
		if ev.Version <= prev {
			t.Fatalf("%s: event %d version %d does not advance past %d", label, i, ev.Version, prev)
		}
		if ev.Version > final {
			t.Fatalf("%s: event %d version %d exceeds published version %d", label, i, ev.Version, final)
		}
		if ev.Version > prev+1 && !ev.Snapshot && !ev.Coalesced {
			t.Fatalf("%s: event %d jumps %d -> %d without a Snapshot/Coalesced flag", label, i, prev, ev.Version)
		}
		if ev.Snapshot && i != 0 {
			t.Fatalf("%s: event %d is a Snapshot mid-stream", label, i)
		}
		prev = ev.Version
	}
}

func drainW(w *watch.Watcher) []watch.Event {
	var evs []watch.Event
	for {
		ev, ok := w.Poll()
		if !ok {
			return evs
		}
		evs = append(evs, ev)
	}
}

func TestWatchDeliverySequential(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			env, r, publish := watchPlane(t)
			h := watch.NewHub(env)
			defer h.Close()

			type rec struct {
				since uint64
				evs   []watch.Event
				w     *watch.Watcher
			}
			var open []*rec
			var closed []*rec
			published := uint64(1) // the pinning subscription published v1
			for i := 0; i < 200; i++ {
				switch rng.Intn(10) {
				case 0: // join at a random resume point with a random ring
					since := uint64(rng.Intn(int(published) + 1))
					w, err := h.Watch(r, "val", watch.Options{Since: since, Buffer: 1 << rng.Intn(5)})
					if err != nil {
						t.Fatal(err)
					}
					open = append(open, &rec{since: since, w: w})
				case 1: // drain everybody at a barrier
					h.Barrier()
					for _, rc := range open {
						rc.evs = append(rc.evs, drainW(rc.w)...)
					}
				case 2: // close a random watcher (its history still checks)
					if len(open) > 0 {
						j := rng.Intn(len(open))
						rc := open[j]
						h.Barrier()
						rc.evs = append(rc.evs, drainW(rc.w)...)
						rc.w.Close()
						open = append(open[:j], open[j+1:]...)
						closed = append(closed, rc)
					}
				default:
					publish()
					published++
				}
			}

			h.Barrier()
			final, ok := r.ItemVersion("val")
			if !ok || final != published {
				t.Fatalf("published version = %d,%v, want %d", final, ok, published)
			}
			for i, rc := range open {
				rc.evs = append(rc.evs, drainW(rc.w)...)
				label := fmt.Sprintf("open[%d]", i)
				checkWatchDelivery(t, label, rc.since, rc.evs, final)
				// Property 4: an open watcher is caught up at quiescence.
				last := rc.since
				if len(rc.evs) > 0 {
					last = rc.evs[len(rc.evs)-1].Version
				}
				if last != final {
					t.Fatalf("%s: last delivered %d, want final %d", label, last, final)
				}
				rc.w.Close()
			}
			for i, rc := range closed {
				checkWatchDelivery(t, fmt.Sprintf("closed[%d]", i), rc.since, rc.evs, final)
			}
		})
	}
}

// TestWatchStressConcurrent races 4 publisher workers against three
// long-lived consumers (one with a 1-slot ring, forcing shed and
// coalesce-to-latest) and a subscribe/unsubscribe churn goroutine.
// Run it with -race. After quiescence every surviving consumer's
// history must satisfy the delivery contract and end at the final
// published version.
func TestWatchStressConcurrent(t *testing.T) {
	env, r, publish := watchPlane(t)
	h := watch.NewHub(env)
	defer h.Close()

	type consumer struct {
		w    *watch.Watcher
		evs  []watch.Event
		done chan struct{}
	}
	mk := func(buffer int) *consumer {
		w, err := h.Watch(r, "val", watch.Options{Buffer: buffer})
		if err != nil {
			t.Fatal(err)
		}
		c := &consumer{w: w, done: make(chan struct{})}
		go func() {
			defer close(c.done)
			for {
				ev, ok := c.w.Next()
				if !ok {
					return
				}
				c.evs = append(c.evs, ev)
			}
		}()
		return c
	}
	consumers := []*consumer{mk(64), mk(4), mk(1)}

	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		rng := rand.New(rand.NewSource(99))
		for {
			select {
			case <-stop:
				return
			default:
			}
			w, err := h.Watch(r, "val", watch.Options{Buffer: 1 + rng.Intn(4)})
			if err != nil {
				continue
			}
			w.Poll()
			w.Close()
		}
	}()

	const workers, perWorker = 4, 250
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				publish()
			}
		}()
	}
	wg.Wait()
	close(stop)
	churn.Wait()

	h.Barrier()
	final, ok := r.ItemVersion("val")
	if !ok || final != workers*perWorker+1 {
		t.Fatalf("final version = %d,%v, want %d", final, ok, workers*perWorker+1)
	}
	for i, c := range consumers {
		c.w.Close()
		<-c.done
		c.evs = append(c.evs, drainW(c.w)...)
		label := fmt.Sprintf("consumer[%d]", i)
		checkWatchDelivery(t, label, 0, c.evs, final)
		if last := c.evs[len(c.evs)-1].Version; last != final {
			t.Fatalf("%s: last delivered %d, want final %d", label, last, final)
		}
	}
}
