package modelcheck

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/persist"
)

func readFileT(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func writeFileT(t *testing.T, path string, b []byte) {
	t.Helper()
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// Crash-recovery lockstep: run a workload with a durability plane
// attached, kill the process at an arbitrary op boundary (or tear the
// WAL at an arbitrary byte), recover into a fresh system, and verify
//
//  1. the recovered topology — inclusion sets, refcounts, mechanisms,
//     windows, dependency edges — is byte-identical to the pre-crash
//     structural state at the durable op boundary (topologyString);
//  2. every checkpointed item still included serves its checkpointed
//     last-good value tagged ErrStale+ErrRestored, at a publication
//     version above the checkpointed one (so since-based watch resume
//     sees exactly the stale republish, not a dead stream);
//  3. warming through the probe machinery converges every item back to
//     healthy fresh values.
//
// Module detach/attach ops are filtered from crash workloads: module
// attachment is wiring re-established by process setup code (NewSystem
// here), not journaled plane state, and a workload that crashes while
// detached would recover against different resolution wiring than the
// journal assumes.

// crashScript derives the crash-harness op script from a seed.
func crashScript(seed int64, ops int) (*Workload, []Op) {
	wl := Generate(seed, Config{Ops: ops})
	script := make([]Op, 0, len(wl.Ops))
	for _, op := range wl.Ops {
		if op.Kind == OpDetachModule || op.Kind == OpAttachModule {
			continue
		}
		script = append(script, op)
	}
	return wl, script
}

// breakerEnv is the env configuration every crash-harness system runs
// under: recovery's stale-restore path needs the breaker machinery.
func breakerEnv() []core.EnvOption {
	return []core.EnvOption{core.WithBreaker(core.DefaultBreakerPolicy)}
}

// applyOp applies one op to a system without a model (the expected-
// state replayer for torn-write prefixes). Mirrors the system half of
// stepOp exactly — in particular the unsubscribe index arithmetic.
func applyOp(sys *System, op Op, subs []heldSub) []heldSub {
	switch op.Kind {
	case OpSubscribe:
		if sub, err := sys.Regs[op.Reg].Subscribe(op.Item); err == nil {
			subs = append(subs, heldSub{sub: sub, key: ikey{op.Reg, op.Item}})
		}
	case OpUnsubscribe:
		if len(subs) == 0 {
			return subs
		}
		idx := int(op.Arg) % len(subs)
		subs[idx].sub.Unsubscribe()
		subs = append(subs[:idx], subs[idx+1:]...)
	case OpAdvance:
		sys.Clk.Advance(clock.Duration(op.Arg))
	case OpFireEvent:
		sys.Regs[op.Reg].FireEvent(op.Event)
	case OpNotifyChanged:
		sys.Regs[op.Reg].NotifyChanged(op.Item)
	case OpRead:
		sys.Regs[op.Reg].Peek(op.Item)
	case OpMigrate:
		sys.Regs[op.Reg].Migrate(op.Item, core.Mechanism(op.Arg&0xff), clock.Duration(op.Arg>>8))
	case OpRedefine:
		if spec := sys.Wl.Item(op.Reg, op.Item); spec != nil {
			sys.Regs[op.Reg].Define(sys.definition(op.Reg, *spec))
		}
	}
	return subs
}

// topologyString renders the full structural state of a system in a
// canonical form: per item, inclusion, refcount, mechanism, window, and
// the sorted dependency-edge multiset. Clock- and value-independent, so
// a recovered system compares byte-for-byte against the pre-crash one.
func topologyString(sys *System) string {
	var b strings.Builder
	for ri := range sys.Wl.Regs {
		reg := sys.Regs[ri]
		for _, it := range sys.Wl.Regs[ri].Items {
			if !reg.IsIncluded(it.Kind) {
				continue
			}
			mech, _ := reg.Mechanism(it.Kind)
			win := clock.Duration(0)
			if mech == core.PeriodicMechanism {
				win, _ = reg.Window(it.Kind)
			}
			deps := []string{}
			if refs, ok := reg.Dependencies(it.Kind); ok {
				for _, d := range refs {
					deps = append(deps, fmt.Sprintf("%s/%s", d.RegistryID, d.Kind))
				}
			}
			sort.Strings(deps)
			fmt.Fprintf(&b, "%s/%s refs=%d mech=%d win=%d deps=[%s]\n",
				reg.ID(), it.Kind, reg.Refs(it.Kind), mech, win, strings.Join(deps, " "))
		}
	}
	return b.String()
}

// itemState is a pre-crash observation used for restore assertions.
type itemState struct {
	value   core.Value
	version uint64
	mech    core.Mechanism
}

// snapshotItems observes every included non-static item of sys.
func snapshotItems(sys *System) map[ikey]itemState {
	out := make(map[ikey]itemState)
	for ri := range sys.Wl.Regs {
		reg := sys.Regs[ri]
		for _, it := range sys.Wl.Regs[ri].Items {
			if !reg.IsIncluded(it.Kind) {
				continue
			}
			mech, _ := reg.Mechanism(it.Kind)
			if mech == core.StaticMechanism {
				continue
			}
			v, err := reg.Peek(it.Kind)
			if err != nil {
				continue
			}
			ver, _ := reg.ItemVersion(it.Kind)
			out[ikey{ri, it.Kind}] = itemState{value: v, version: ver, mech: mech}
		}
	}
	return out
}

// warmRecovered advances the recovered system through enough probe
// backoffs for every quarantined item to recompute and propagate, then
// asserts full convergence: no stale reads, everything healthy.
func warmRecovered(t *testing.T, at string, sys *System) {
	t.Helper()
	for i := 0; i < 12; i++ {
		sys.Clk.Advance(clock.Duration(core.DefaultBreakerPolicy.MaxProbeBackoff))
		sys.Env.Quiesce()
	}
	for ri := range sys.Wl.Regs {
		reg := sys.Regs[ri]
		for _, it := range sys.Wl.Regs[ri].Items {
			if !reg.IsIncluded(it.Kind) {
				continue
			}
			v, err := reg.Peek(it.Kind)
			if err != nil {
				t.Fatalf("%s: r%d/%s still unhealthy after warm: %v", at, ri, it.Kind, err)
			}
			if _, ok := v.(float64); !ok {
				t.Fatalf("%s: r%d/%s warm value %v (%T)", at, ri, it.Kind, v, v)
			}
			if hs, ok := reg.Health(it.Kind); !ok || hs.State != core.Healthy {
				t.Fatalf("%s: r%d/%s health %+v after warm", at, ri, it.Kind, hs)
			}
		}
	}
}

// RunCrashRecovery drives one seeded workload with a durability plane,
// checkpoints at op ckptAt, kills the process (no final checkpoint) at
// op killAt, recovers into a fresh system, and verifies the recovery
// contract. The first run is a full model lockstep, so the pre-crash
// state itself is verified before it becomes the recovery oracle.
func RunCrashRecovery(t *testing.T, seed int64, ckptAt, killAt int) {
	t.Helper()
	wl, script := crashScript(seed, 60)
	if killAt > len(script) {
		killAt = len(script)
	}
	if ckptAt > killAt {
		ckptAt = killAt
	}
	at := fmt.Sprintf("seed=%d ckpt@%d kill@%d", seed, ckptAt, killAt)
	dir := t.TempDir()

	// ---- First life: lockstep with the model, plane attached. ----
	sys1 := NewSystem(wl, nil, nil, breakerEnv()...)
	model := NewModel(wl)
	plane1, rs1, err := persist.Open(sys1.Env, dir, persist.Options{}, sys1.Regs...)
	if err != nil {
		t.Fatalf("%s: first Open: %v", at, err)
	}
	if rs1.Recovered {
		t.Fatalf("%s: fresh dir reported recovered", at)
	}
	var subs []heldSub
	var ckptItems map[ikey]itemState
	for i := 0; i < killAt; i++ {
		opAt := fmt.Sprintf("%s op#%d (%s)", at, i, script[i])
		subs = stepOp(t, opAt, sys1, model, script[i], subs)
		compareStates(t, opAt, sys1, model, subs)
		if i == ckptAt-1 {
			if err := plane1.Checkpoint(); err != nil {
				t.Fatalf("%s: checkpoint: %v", opAt, err)
			}
			ckptItems = snapshotItems(sys1)
		}
	}
	if ckptAt == 0 {
		ckptItems = map[ikey]itemState{}
	}
	wantTopology := topologyString(sys1)
	tailRecords := sys1.Env.Stats().WALBytes.Load() // bytes in current segment
	plane1.Abandon()                                // SIGKILL

	// ---- Second life: recover and verify. ----
	sys2 := NewSystem(wl, nil, nil, breakerEnv()...)
	plane2, rs2, err := persist.Open(sys2.Env, dir, persist.Options{}, sys2.Regs...)
	if err != nil {
		t.Fatalf("%s: recovery Open: %v", at, err)
	}
	defer plane2.Close()
	if rs2.Skipped != 0 {
		t.Fatalf("%s: recovery skipped %d ops (stats %+v)", at, rs2.Skipped, rs2)
	}
	if tailRecords > 0 && rs2.WALRecords == 0 {
		t.Fatalf("%s: WAL tail (%d bytes) replayed no records", at, tailRecords)
	}

	// 1. Structural byte-identity with the pre-crash state.
	if got := topologyString(sys2); got != wantTopology {
		t.Fatalf("%s: recovered topology differs\n--- pre-crash ---\n%s--- recovered ---\n%s",
			at, wantTopology, got)
	}

	// 2. Degraded mode: checkpointed items still included serve their
	// checkpointed last-good tagged stale, above the persisted version.
	restored := 0
	for k, st := range ckptItems {
		reg := sys2.Regs[k.reg]
		if !reg.IsIncluded(k.kind) {
			continue // dropped by the WAL tail
		}
		v, err := reg.Peek(k.kind)
		if !errors.Is(err, core.ErrStale) || !errors.Is(err, core.ErrRestored) {
			t.Fatalf("%s: %v err = %v, want ErrStale+ErrRestored", at, k, err)
		}
		if v != st.value {
			t.Fatalf("%s: %v restored value %v, want checkpointed %v", at, k, v, st.value)
		}
		if hs, ok := reg.Health(k.kind); !ok || hs.State != core.Quarantined {
			t.Fatalf("%s: %v health %+v, want quarantined", at, k, hs)
		}
		if ver, _ := reg.ItemVersion(k.kind); ver <= st.version {
			t.Fatalf("%s: %v version %d not above persisted %d (watch resume would miss the republish)",
				at, k, ver, st.version)
		}
		restored++
	}
	if restored != rs2.Restored {
		t.Fatalf("%s: verified %d restored items, recovery reported %d", at, restored, rs2.Restored)
	}

	// 3. Warm back to healthy through the probe machinery.
	warmRecovered(t, at, sys2)

	if errs := core.VerifyIntegrity(extCounts(wl, subs), sys2.BaseRegs()...); len(errs) > 0 {
		t.Fatalf("%s: recovered integrity violations: %v", at, errs)
	}
	if err := core.ScopesUnlocked(sys2.Regs...); err != nil {
		t.Fatalf("%s: %v", at, err)
	}
}

// RunTornWrite drives a workload with a plane, kills it, then mutilates
// the WAL at byte granularity (truncation or bit flip) and verifies
// recovery lands exactly on a durable op-boundary prefix: the recovered
// topology equals a plain replay of the script up to the boundary the
// surviving records encode. Relies on each journaled op writing at most
// one WAL record, so record count maps 1:1 to an op boundary.
func RunTornWrite(t *testing.T, seed int64, mutate func(wal []byte) []byte) {
	t.Helper()
	wl, script := crashScript(seed, 50)
	dir := t.TempDir()

	sys1 := NewSystem(wl, nil, nil, breakerEnv()...)
	plane1, _, err := persist.Open(sys1.Env, dir, persist.Options{}, sys1.Regs...)
	if err != nil {
		t.Fatalf("seed=%d: Open: %v", seed, err)
	}
	// recsAt[i] = cumulative WAL records after script[i] (each op writes
	// at most one).
	var subs []heldSub
	recsAt := make([]int64, len(script))
	for i, op := range script {
		subs = applyOp(sys1, op, subs)
		recsAt[i] = sys1.Env.Stats().WALRecords.Load()
	}
	plane1.Abandon()

	// Mutilate the (single) WAL segment.
	walFiles, _ := filepath.Glob(filepath.Join(dir, "wal.*.log"))
	if len(walFiles) != 1 {
		t.Fatalf("seed=%d: %d WAL segments, want 1", seed, len(walFiles))
	}
	raw := readFileT(t, walFiles[0])
	mutated := mutate(append([]byte{}, raw...))
	writeFileT(t, walFiles[0], mutated)

	// The durable prefix: recovery replays exactly the whole records
	// that survive framing, i.e. the state at the op that wrote the
	// m-th record.
	payloads, _ := persist.ReplayWAL(mutated)
	m := int64(len(payloads))
	boundary := -1
	for i := range recsAt {
		if recsAt[i] <= m {
			boundary = i
		}
	}
	at := fmt.Sprintf("seed=%d torn(m=%d boundary=%d)", seed, m, boundary)

	// Expected state: a plain (non-durable) system replaying the script
	// through the boundary.
	want := NewSystem(wl, nil, nil, breakerEnv()...)
	var wsubs []heldSub
	for i := 0; i <= boundary; i++ {
		wsubs = applyOp(want, script[i], wsubs)
	}

	sys2 := NewSystem(wl, nil, nil, breakerEnv()...)
	plane2, rs2, err := persist.Open(sys2.Env, dir, persist.Options{}, sys2.Regs...)
	if err != nil {
		t.Fatalf("%s: recovery Open: %v", at, err)
	}
	defer plane2.Close()
	if int64(rs2.WALRecords) != m {
		t.Fatalf("%s: recovery replayed %d records, framing says %d survive", at, rs2.WALRecords, m)
	}
	if wantS, got := topologyString(want), topologyString(sys2); got != wantS {
		t.Fatalf("%s: recovered topology is not the durable prefix\n--- want ---\n%s--- got ---\n%s",
			at, wantS, got)
	}
	warmRecovered(t, at, sys2)
}
