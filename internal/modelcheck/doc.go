// Package modelcheck is a model-based correctness harness for the
// metadata framework (internal/core).
//
// It runs the real, dependency-scope-locked implementation against a
// deliberately naive sequential reference model implementing the
// paper's subscribe/unsubscribe/define/trigger/periodic semantics, and
// fails on any divergence. The harness has three parts:
//
//   - an operation DSL plus a seeded generator (workload.go) producing
//     randomized topologies (registries, cross-registry dependencies,
//     modules) and op scripts (subscribe/unsubscribe, define/attach/
//     detach, FireEvent/NotifyChanged, virtual-clock advances), all
//     replayable from the printed seed;
//
//   - a sequential-equivalence driver and a concurrent stress driver
//     (driver.go). The sequential driver compares the full observable
//     state — inclusion sets, reference counts, dependency edges, and
//     exact metadata values including periodic window boundaries —
//     after every operation. The concurrent driver applies the same
//     seeded workload through N goroutines over a pool updater, then
//     checks quiescent-state equivalence (structure and refcounts are
//     interleaving-independent for the commutative op mix it uses)
//     plus the standing invariants: refcount conservation, inclusion
//     closure, handler lifecycle, union-find scope consistency
//     (core.VerifyIntegrity), unwedged component locks
//     (core.ScopesUnlocked), and the Figure 4 isolation condition for
//     periodic values (windows tile time with no gaps or overlaps);
//
//   - a fault-injection layer (faults.go): panicking or failing Build
//     mid-traversal, panicking periodic computes on the worker pool,
//     slow updaters that outlive their window, and clock skew between
//     periodic windows, verifying the system degrades as DESIGN.md
//     specifies — errors surface on Value()/Subscribe without leaking
//     references, wedging scope locks, or corrupting snapshots.
//
// Every test failure prints the workload seed; re-run a single seed
// with e.g. `go test ./internal/modelcheck -run 'Sequential/seed=42'`.
package modelcheck
