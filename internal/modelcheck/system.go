package modelcheck

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/clock"
	"repro/internal/core"
)

// ikey identifies one workload item: the registry's index in
// Workload.Regs plus the item kind.
type ikey struct {
	reg  int
	kind core.Kind
}

func (k ikey) String() string { return fmt.Sprintf("r%d/%s", k.reg, k.kind) }

// Faults configures the fault-injection layer of a System. Each map is
// keyed by workload item; nil maps inject nothing.
type Faults struct {
	// PanicBuild makes the item's Build panic.
	PanicBuild map[ikey]bool
	// FailBuild makes the item's Build return an error.
	FailBuild map[ikey]bool
	// PanicPeriodic makes every periodic window computation of the
	// item after the initial one panic.
	PanicPeriodic map[ikey]bool
	// BlockPeriodic makes periodic window computations of the item
	// block until the channel is closed (the "slow updater that
	// outlives its window" scenario; only meaningful on a pool
	// updater, where computations run off the clock goroutine).
	BlockPeriodic map[ikey]chan struct{}
	// HangPeriodic makes periodic window computations of the item hang
	// while the fault is engaged. Pair with core.WithComputeDeadline +
	// core.WithBreaker: each hung computation times out, counts a
	// breaker failure, and eventually quarantines the item.
	HangPeriodic map[ikey]*HangFault
	// FlapPeriodic makes periodic window computations of the item
	// panic in bursts, driving repeated breaker trip/recover cycles.
	FlapPeriodic map[ikey]*FlapFault
}

func (f *Faults) panicBuild(k ikey) bool    { return f != nil && f.PanicBuild[k] }
func (f *Faults) failBuild(k ikey) bool     { return f != nil && f.FailBuild[k] }
func (f *Faults) panicPeriodic(k ikey) bool { return f != nil && f.PanicPeriodic[k] }
func (f *Faults) blockPeriodic(k ikey) chan struct{} {
	if f == nil {
		return nil
	}
	return f.BlockPeriodic[k]
}
func (f *Faults) hangPeriodic(k ikey) *HangFault {
	if f == nil {
		return nil
	}
	return f.HangPeriodic[k]
}
func (f *Faults) flapPeriodic(k ikey) *FlapFault {
	if f == nil {
		return nil
	}
	return f.FlapPeriodic[k]
}

// HangFault is a switchable hung-compute injector: while engaged,
// every faulted computation blocks at the gate until Heal releases
// them all. Caught counts computations that reached the gate while
// engaged, letting a test synchronize with a pool worker entering the
// hang before it advances the clock past the compute deadline.
type HangFault struct {
	mu      sync.Mutex
	release chan struct{} // non-nil while engaged
	caught  atomic.Int32
}

// NewHangFault returns a disengaged hung-compute injector.
func NewHangFault() *HangFault { return &HangFault{} }

// Engage makes subsequent faulted computations hang.
func (f *HangFault) Engage() {
	f.mu.Lock()
	if f.release == nil {
		f.release = make(chan struct{})
	}
	f.mu.Unlock()
}

// Heal releases every hung computation and stops hanging new ones.
func (f *HangFault) Heal() {
	f.mu.Lock()
	if f.release != nil {
		close(f.release)
		f.release = nil
	}
	f.mu.Unlock()
}

// Caught reports how many computations have entered the gate while
// the fault was engaged (released ones included).
func (f *HangFault) Caught() int { return int(f.caught.Load()) }

func (f *HangFault) gate() {
	f.mu.Lock()
	ch := f.release
	f.mu.Unlock()
	if ch == nil {
		return
	}
	f.caught.Add(1)
	<-ch
}

// FlapFault is a flapping-compute injector: after Skip healthy
// computations, each cycle is Burst consecutive panics followed by
// one success. Paired with a breaker whose FailureThreshold equals
// Burst, every burst trips the breaker and the next computation — the
// recovery probe — closes it again, driving repeated quarantine
// entry/exit.
type FlapFault struct {
	Skip  int // initial computations that succeed
	Burst int // consecutive panics per cycle

	n atomic.Int64
}

// step advances the flap sequence by one computation and reports
// whether it must panic.
func (f *FlapFault) step() bool {
	i := f.n.Add(1)
	if i <= int64(f.Skip) {
		return false
	}
	return (i-int64(f.Skip)-1)%int64(f.Burst+1) < int64(f.Burst)
}

// WindowLog records the window sequence one periodic handler instance
// computed. The Figure 4 isolation condition requires the windows to
// tile time: start at the subscription instant with an empty window,
// then each window begins exactly where the previous ended.
type WindowLog struct {
	Item ikey

	mu   sync.Mutex
	wins [][2]clock.Time
}

func (l *WindowLog) add(start, end clock.Time) {
	l.mu.Lock()
	l.wins = append(l.wins, [2]clock.Time{start, end})
	l.mu.Unlock()
}

// Windows returns a copy of the recorded window sequence.
func (l *WindowLog) Windows() [][2]clock.Time {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([][2]clock.Time, len(l.wins))
	copy(out, l.wins)
	return out
}

// System is the real implementation under test, instantiated from a
// workload: one core.Registry per RegSpec, wired and populated with
// deterministic item definitions whose value semantics the reference
// model mirrors exactly.
type System struct {
	Wl   *Workload
	Clk  *clock.Virtual
	Env  *core.Env
	Regs []*core.Registry

	faults *Faults

	mu   sync.Mutex
	logs []*WindowLog
}

// NewSystem builds the system under test. updater may be nil for the
// deterministic inline updater; pass a pool updater for concurrent
// stress. faults may be nil. extra env options (e.g. core.WithBreaker,
// core.WithComputeDeadline for the degraded-mode fault scenarios) are
// applied after the updater.
func NewSystem(wl *Workload, updater core.Updater, faults *Faults, extra ...core.EnvOption) *System {
	vc := clock.NewVirtual()
	var opts []core.EnvOption
	if updater != nil {
		opts = append(opts, core.WithUpdater(updater))
	}
	opts = append(opts, extra...)
	s := &System{Wl: wl, Clk: vc, Env: core.NewEnv(vc, opts...), faults: faults}

	for _, spec := range wl.Regs {
		s.Regs = append(s.Regs, s.Env.NewRegistry(spec.ID))
	}
	// Neighbor wiring: inputs per spec, outputs derived by reversal.
	outputs := make([][]int, len(wl.Regs))
	for ri, spec := range wl.Regs {
		for _, in := range spec.Inputs {
			outputs[in] = append(outputs[in], ri)
		}
	}
	resolver := func(idxs []int) func() []*core.Registry {
		return func() []*core.Registry {
			out := make([]*core.Registry, len(idxs))
			for i, idx := range idxs {
				out[i] = s.Regs[idx]
			}
			return out
		}
	}
	for ri, spec := range wl.Regs {
		if spec.Parent >= 0 {
			continue
		}
		s.Regs[ri].SetNeighbors(resolver(spec.Inputs), resolver(outputs[ri]))
	}
	for ri, spec := range wl.Regs {
		if spec.Parent >= 0 {
			s.Regs[spec.Parent].AttachModule(spec.ModName, s.Regs[ri])
		}
	}
	for ri, spec := range wl.Regs {
		for _, it := range spec.Items {
			s.Regs[ri].MustDefine(s.definition(ri, it))
		}
	}
	return s
}

// definition builds the core.Definition for one workload item. The
// compute functions implement the deterministic value semantics shared
// with the model:
//
//	static:          Base
//	on-demand:       Base + Σ dep values + 0.001·now  (at access time)
//	on-demand, pure: Base + Σ dep values              (no access-time term)
//	periodic:        start·1e6 + end                  (encodes the window)
//	triggered:       Base + Σ dep values + 0.01·now   (at refresh time)
//	aggregate:       the Delta spec's fold over the fan-in (no Base or
//	                 time term, so delta and fold paths compare exactly)
//
// Pure on-demand items carry Definition.Pure, so a memo-enabled env
// (core.WithMemoizedOnDemand) may serve them from cache; their value
// depends only on the dependency values, so memoization is invisible in
// the value domain and the model needs no memo awareness.
//
// Periodic values encode their exact window boundaries, so value
// equivalence against the model verifies the window sequence itself.
func (s *System) definition(ri int, it ItemSpec) *core.Definition {
	k := ikey{ri, it.Kind}
	deps := make([]core.DepRef, len(it.Deps))
	for i, d := range it.Deps {
		deps[i] = toDepRef(d)
	}
	var delta *core.DeltaSpec
	if it.Agg != "" {
		delta = deltaSpecFor(&it)
	}
	return &core.Definition{
		Kind:   it.Kind,
		Deps:   deps,
		Events: it.Events,
		Pure:   it.Pure,
		Delta:  delta,
		Adapt:  adaptSpec(it),
		Build: func(ctx *core.BuildContext) (core.Handler, error) {
			if s.faults.panicBuild(k) {
				panic(fmt.Sprintf("injected: build %v", k))
			}
			if s.faults.failBuild(k) {
				return nil, fmt.Errorf("injected: build %v failed", k)
			}
			switch it.Mech {
			case core.StaticMechanism:
				return core.NewStatic(it.Base), nil
			case core.OnDemandMechanism:
				if it.Pure {
					return core.NewOnDemand(func(clock.Time) (core.Value, error) {
						v, err := sumDeps(ctx)
						if err != nil {
							return nil, err
						}
						return it.Base + v, nil
					}), nil
				}
				return core.NewOnDemand(func(now clock.Time) (core.Value, error) {
					v, err := sumDeps(ctx)
					if err != nil {
						return nil, err
					}
					return it.Base + v + 0.001*float64(now), nil
				}), nil
			case core.PeriodicMechanism:
				log := &WindowLog{Item: k}
				s.mu.Lock()
				s.logs = append(s.logs, log)
				s.mu.Unlock()
				// calls is atomic: with compute deadlines an abandoned
				// (hung) computation may still be running when the next
				// one starts, so the closure must be race-free.
				var calls atomic.Int64
				return core.NewPeriodic(it.Window, func(start, end clock.Time) (core.Value, error) {
					if calls.Add(1) > 1 {
						if ch := s.faults.blockPeriodic(k); ch != nil {
							<-ch
						}
						if hf := s.faults.hangPeriodic(k); hf != nil {
							hf.gate()
						}
						if s.faults.panicPeriodic(k) {
							panic(fmt.Sprintf("injected: periodic %v", k))
						}
						if ff := s.faults.flapPeriodic(k); ff != nil && ff.step() {
							panic(fmt.Sprintf("injected: flap %v", k))
						}
					}
					log.add(start, end)
					return encodeWindow(start, end), nil
				}), nil
			case core.TriggeredMechanism:
				if it.Agg != "" {
					// Delta aggregate: the handler's value is the declared
					// fold over the fan-in, maintained through the pair
					// channel when the exactness contract holds.
					return core.NewDeltaAggregate(ctx)
				}
				return core.NewTriggered(func(now clock.Time) (core.Value, error) {
					v, err := sumDeps(ctx)
					if err != nil {
						return nil, err
					}
					return it.Base + v + 0.01*float64(now), nil
				}), nil
			default:
				return nil, fmt.Errorf("modelcheck: bad mechanism %v", it.Mech)
			}
		},
	}
}

// adaptSpec materializes the migration surface of an adaptable
// workload item: the same deterministic value semantics as the Build
// forms (system/model shared), constructed over the same resolved
// dependency handles. AdaptExact omits the triggered form — its
// 0.01·now term is not exactly representable, and AdaptExact items
// feed delta-aggregate fan-ins that must stay bit-exact. The periodic
// form computes plain window encodings without a WindowLog or fault
// hooks: each migrated handler instance starts a fresh window
// sequence, which the per-instance tiling check does not span.
func adaptSpec(it ItemSpec) *core.AdaptSpec {
	if it.Adapt == AdaptNone {
		return nil
	}
	spec := &core.AdaptSpec{
		OnDemand: func(ctx *core.BuildContext) core.ComputeFunc {
			if it.Pure {
				return func(clock.Time) (core.Value, error) {
					v, err := sumDeps(ctx)
					if err != nil {
						return nil, err
					}
					return it.Base + v, nil
				}
			}
			return func(now clock.Time) (core.Value, error) {
				v, err := sumDeps(ctx)
				if err != nil {
					return nil, err
				}
				return it.Base + v + 0.001*float64(now), nil
			}
		},
		Periodic: func(*core.BuildContext) core.WindowComputeFunc {
			return func(start, end clock.Time) (core.Value, error) {
				return encodeWindow(start, end), nil
			}
		},
		Window: it.Window,
		Pure:   it.Pure,
	}
	if it.Adapt == AdaptFull {
		spec.Triggered = func(ctx *core.BuildContext) core.ComputeFunc {
			return func(now clock.Time) (core.Value, error) {
				v, err := sumDeps(ctx)
				if err != nil {
					return nil, err
				}
				return it.Base + v + 0.01*float64(now), nil
			}
		}
	}
	return spec
}

// encodeWindow is the canonical value a periodic workload item
// publishes for the window [start, end): both boundaries are encoded,
// so the equivalence check verifies the exact window sequence (the
// isolation condition of Figure 4).
func encodeWindow(start, end clock.Time) float64 {
	return float64(start)*1e6 + float64(end)
}

// sumDeps folds the dependency handles in declaration order. The model
// performs the identical float64 additions in the identical order, so
// values compare exactly.
func sumDeps(ctx *core.BuildContext) (float64, error) {
	total := 0.0
	for i := 0; i < ctx.NumDeps(); i++ {
		for _, h := range ctx.DepGroup(i) {
			f, err := h.Float()
			if err != nil {
				return 0, err
			}
			total += f
		}
	}
	return total, nil
}

// WindowLogs returns every periodic window log created so far
// (including logs of handlers since removed).
func (s *System) WindowLogs() []*WindowLog {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*WindowLog, len(s.logs))
	copy(out, s.logs)
	return out
}

// BaseRegs returns the base (non-module) registries — the roots
// passed to core.VerifyIntegrity, which walks modules itself.
func (s *System) BaseRegs() []*core.Registry {
	var out []*core.Registry
	for ri, spec := range s.Wl.Regs {
		if spec.Parent < 0 {
			out = append(out, s.Regs[ri])
		}
	}
	return out
}
