package modelcheck

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

// TestConcurrentStress applies seeded workloads from four goroutines
// over a pool updater (run it with -race), then checks quiescent-state
// equivalence against the model plus the standing invariants: refcount
// conservation, inclusion closure, handler lifecycle, union-find scope
// consistency, unwedged component locks, and periodic window tiling.
// Reproduce one schedule's workload with:
//
//	go test -race ./internal/modelcheck -run 'TestConcurrentStress/seed=7$'
func TestConcurrentStress(t *testing.T) {
	for seed := int64(1); seed <= 48; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			RunConcurrent(t, seed, 4)
		})
	}
}

// TestConcurrentStressMemoized is TestConcurrentStress with the
// versioned read path enabled: concurrent readers race memo
// publication, revalidation, singleflight coalescing, and invalidation
// against subscribes, unsubscribes, clock advances, and notifications.
// Run with -race; quiescent-state equivalence and the structural
// invariants must hold exactly as without memoization.
func TestConcurrentStressMemoized(t *testing.T) {
	for seed := int64(1); seed <= 48; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			RunConcurrent(t, seed, 4, core.WithMemoizedOnDemand())
		})
	}
}
