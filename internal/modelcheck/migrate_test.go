package modelcheck

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// TestMigrateWorkloadCoverage guards that the generator actually
// exercises the migration surface: across the standard seed range the
// workloads must contain migrate ops and both kinds of adaptable items
// (the bit-exact pure pair and the full three-form spec). Without this,
// a generator regression could silently turn the migration lockstep
// vacuous.
func TestMigrateWorkloadCoverage(t *testing.T) {
	migOps, exact, full := 0, 0, 0
	for seed := int64(1); seed <= 120; seed++ {
		wl := Generate(seed, Config{Ops: 80})
		for _, op := range wl.Ops {
			if op.Kind == OpMigrate {
				migOps++
			}
		}
		for _, r := range wl.Regs {
			for _, it := range r.Items {
				switch it.Adapt {
				case AdaptExact:
					exact++
				case AdaptFull:
					full++
				}
			}
		}
	}
	if migOps < 100 || exact == 0 || full == 0 {
		t.Fatalf("thin migration coverage: %d migrate ops, %d AdaptExact, %d AdaptFull items",
			migOps, exact, full)
	}
}

// TestAdaptiveLockstep runs the closed-loop equivalence proof: a
// per-registry adapt.Controller plans migrations from the real system's
// sampled read/update economics, every planned migration is mirrored
// into the reference model, and the complete observable state — exact
// values, mechanisms, windows, migration and delta counters — must
// match after every workload op and after every migration. The final
// assertion guards against a vacuous pass: across the seed range the
// controller must have actually migrated something. Reproduce one
// failing workload with:
//
//	go test ./internal/modelcheck -run 'TestAdaptiveLockstep/seed=7$'
func TestAdaptiveLockstep(t *testing.T) {
	var applied atomic.Int64
	t.Cleanup(func() {
		if !t.Failed() && applied.Load() == 0 {
			t.Errorf("no controller-planned migrations across any seed (vacuous lockstep)")
		}
	})
	for seed := int64(1); seed <= 60; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			applied.Add(int64(RunSequentialAdaptive(t, seed)))
		})
	}
}

// TestConcurrentStressMigrations races a seeded migration storm against
// four workload goroutines over a pool updater (run with -race): a
// dedicated migrator live-migrates pre-subscribed adaptable items while
// the workers subscribe, release, advance the clock, fire events, and
// read. At quiescence the migration counter and every target's final
// mechanism are pinned against the migrator's deterministic trajectory.
// Reproduce one schedule's workload with:
//
//	go test -race ./internal/modelcheck -run 'TestConcurrentStressMigrations/seed=7$'
func TestConcurrentStressMigrations(t *testing.T) {
	var migrated atomic.Int64
	t.Cleanup(func() {
		if !t.Failed() && migrated.Load() == 0 {
			t.Errorf("no migrations performed across any seed (vacuous stress)")
		}
	})
	for seed := int64(1); seed <= 24; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			migrated.Add(RunConcurrentMigrations(t, seed, 4))
		})
	}
}
