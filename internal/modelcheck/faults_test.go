package modelcheck

import (
	"fmt"
	"testing"
)

// TestFaultInjection exercises the degradation contract on seeded
// topologies: panicking or failing Build calls mid-traversal,
// panicking periodic computations on the worker pool, slow updaters
// outliving their window, and clock skew across many window
// boundaries. Reproduce one scenario with e.g.:
//
//	go test -race ./internal/modelcheck -run 'TestFaultInjection/PanickingBuild/seed=3$'
func TestFaultInjection(t *testing.T) {
	t.Run("PanickingBuild", func(t *testing.T) {
		for seed := int64(1); seed <= 16; seed++ {
			t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
				t.Parallel()
				RunFaultBuild(t, seed, true)
			})
		}
	})
	t.Run("FailingBuild", func(t *testing.T) {
		for seed := int64(1); seed <= 16; seed++ {
			t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
				t.Parallel()
				RunFaultBuild(t, seed, false)
			})
		}
	})
	t.Run("PanickingPeriodic", func(t *testing.T) {
		for seed := int64(1); seed <= 8; seed++ {
			t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
				t.Parallel()
				RunFaultPeriodicPanic(t, seed)
			})
		}
	})
	t.Run("SlowPeriodic", func(t *testing.T) {
		for seed := int64(1); seed <= 8; seed++ {
			t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
				t.Parallel()
				RunFaultSlowPeriodic(t, seed)
			})
		}
	})
	t.Run("ClockSkew", func(t *testing.T) {
		for seed := int64(1); seed <= 16; seed++ {
			t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
				t.Parallel()
				RunClockSkew(t, seed)
			})
		}
	})
}

// TestQuarantineHungCompute checks the degraded-mode contract against
// the reference model: a periodic item whose computation hangs on a
// pool worker times out, trips the breaker after repeated timeouts,
// serves the model's value at the fault instant tagged stale, fences
// off late results from released computations, and recovers through a
// backoff probe once the fault heals. Top-level (not a subtest of
// TestFaultInjection) so the CI deadline-fault race job's
// -run 'Quarantine|Deadline|Backpressure' filter reaches it.
func TestQuarantineHungCompute(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			RunFaultHungCompute(t, seed)
		})
	}
}

// TestQuarantineFlappingCompute checks repeated quarantine entry/exit
// on the deterministic inline updater: panic bursts trip the breaker,
// recovery probes close it, and each quarantined phase serves the
// last-good value (cycle 1: the reference model's value at the fault
// instant) tagged stale.
func TestQuarantineFlappingCompute(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			RunFaultFlappingCompute(t, seed)
		})
	}
}
