package modelcheck

import (
	"fmt"
	"testing"
)

// TestFaultInjection exercises the degradation contract on seeded
// topologies: panicking or failing Build calls mid-traversal,
// panicking periodic computations on the worker pool, slow updaters
// outliving their window, and clock skew across many window
// boundaries. Reproduce one scenario with e.g.:
//
//	go test -race ./internal/modelcheck -run 'TestFaultInjection/PanickingBuild/seed=3$'
func TestFaultInjection(t *testing.T) {
	t.Run("PanickingBuild", func(t *testing.T) {
		for seed := int64(1); seed <= 16; seed++ {
			t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
				t.Parallel()
				RunFaultBuild(t, seed, true)
			})
		}
	})
	t.Run("FailingBuild", func(t *testing.T) {
		for seed := int64(1); seed <= 16; seed++ {
			t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
				t.Parallel()
				RunFaultBuild(t, seed, false)
			})
		}
	})
	t.Run("PanickingPeriodic", func(t *testing.T) {
		for seed := int64(1); seed <= 8; seed++ {
			t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
				t.Parallel()
				RunFaultPeriodicPanic(t, seed)
			})
		}
	})
	t.Run("SlowPeriodic", func(t *testing.T) {
		for seed := int64(1); seed <= 8; seed++ {
			t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
				t.Parallel()
				RunFaultSlowPeriodic(t, seed)
			})
		}
	})
	t.Run("ClockSkew", func(t *testing.T) {
		for seed := int64(1); seed <= 16; seed++ {
			t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
				t.Parallel()
				RunClockSkew(t, seed)
			})
		}
	})
}
