package modelcheck

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
)

// TestSequentialEquivalenceDeltaOff runs the seeded workloads — whose
// generated mix includes delta aggregates (invertible sum/count/mean
// and non-invertible min, with small rebase intervals) — against the
// model with the delta channel disabled. The same seeds run delta-on
// in TestSequentialEquivalence; both pin every value bitwise against
// the same model, so the two ablations are proven bit-identical to
// each other, and the counter pinning proves the delta-off run never
// fires the O(1) path.
func TestSequentialEquivalenceDeltaOff(t *testing.T) {
	t.Parallel()
	for seed := int64(1); seed <= 120; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			RunSequentialDeltaOff(t, seed)
		})
	}
}

// deltaTwin is one hand-built system for the quarantine twin test: a
// triggered cell publishing a shared variable on event "ev", and a
// delta-sum aggregate over it whose Combine panics while a shared
// fault flag is set.
type deltaTwin struct {
	clk *clock.Virtual
	env *core.Env
	reg *core.Registry
}

func newDeltaTwin(t *testing.T, val *float64, broken *bool, extra ...core.EnvOption) *deltaTwin {
	t.Helper()
	vc := clock.NewVirtual()
	opts := append([]core.EnvOption{core.WithBreaker(core.BreakerPolicy{
		FailureThreshold: 2,
		FailureWindow:    1 << 20,
		ProbeBackoff:     3,
		MaxProbeBackoff:  12,
	})}, extra...)
	tw := &deltaTwin{clk: vc, env: core.NewEnv(vc, opts...)}
	tw.reg = tw.env.NewRegistry("tw")

	tw.reg.MustDefine(&core.Definition{
		Kind:   "cell",
		Events: []string{"ev"},
		Build: func(*core.BuildContext) (core.Handler, error) {
			return core.NewTriggered(func(clock.Time) (core.Value, error) { return *val, nil }), nil
		},
	})
	spec := core.DeltaSum()
	combine := spec.Combine
	spec.Combine = func(a core.DeltaAcc, v float64) core.DeltaAcc {
		if *broken {
			panic("injected: combine")
		}
		return combine(a, v)
	}
	tw.reg.MustDefine(&core.Definition{
		Kind:  "agg",
		Deps:  []core.DepRef{core.Dep(core.Self(), "cell")},
		Delta: spec,
		Build: core.NewDeltaAggregate,
	})
	if _, err := tw.reg.Subscribe("agg"); err != nil {
		t.Fatal(err)
	}
	return tw
}

// TestDeltaQuarantineTwin drives a breaker trip/quarantine/probe/
// recovery cycle through a faulty delta aggregate on two twin systems
// — delta-on and delta-off — and checks at every step that the
// published value, the error class, and the health state are
// identical: the O(1) path must not change what a degraded aggregate
// looks like, only how a healthy one is maintained (pinned by the
// final counters: the on-twin both fires and falls back, the off-twin
// never fires).
func TestDeltaQuarantineTwin(t *testing.T) {
	val, broken := 5.0, false
	on := newDeltaTwin(t, &val, &broken)
	off := newDeltaTwin(t, &val, &broken, core.WithoutDeltaPropagation())
	twins := []*deltaTwin{on, off}

	compare := func(step string, wantErr error, wantState core.HealthState) {
		t.Helper()
		vOn, eOn := on.reg.Peek("agg")
		vOff, eOff := off.reg.Peek("agg")
		if vOn != vOff || classify(eOn) != classify(eOff) {
			t.Fatalf("%s: on (%v, %v), off (%v, %v)", step, vOn, eOn, vOff, eOff)
		}
		for _, tw := range twins {
			if wantErr == nil && eOn != nil {
				t.Fatalf("%s: Peek error %v, want nil", step, eOn)
			}
			if wantErr != nil && !errors.Is(eOn, wantErr) {
				t.Fatalf("%s: Peek error %v, want %v", step, eOn, wantErr)
			}
			hs, ok := tw.reg.Health("agg")
			if !ok || hs.State != wantState {
				t.Fatalf("%s: health %v (ok=%v), want %v", step, hs.State, ok, wantState)
			}
		}
	}
	fire := func(v float64) {
		val = v
		for _, tw := range twins {
			tw.reg.FireEvent("ev")
		}
	}

	compare("initial fold", nil, core.Healthy)

	fire(7) // healthy update: on-twin fires the O(1) path
	compare("healthy update", nil, core.Healthy)

	broken = true
	fire(9) // Combine panics: applyPairs refuses, fold fails — failure 1
	compare("failure 1", core.ErrComputePanic, core.Degraded)
	fire(11) // failure 2: breaker trips, stale last-good (7) served
	compare("tripped", core.ErrStale, core.Quarantined)

	fire(13) // while quarantined: pairs dropped, stale value stands
	compare("quarantined refresh", core.ErrStale, core.Quarantined)
	for _, tw := range twins {
		if v, _ := tw.reg.Peek("agg"); v != any(7.0) {
			t.Fatalf("quarantined refresh: stale value %v, want 7", v)
		}
	}

	broken = false
	for _, tw := range twins {
		tw.clk.Advance(20) // past the probe backoff: recovery probe folds live
	}
	compare("probe recovery", nil, core.Healthy)
	for _, tw := range twins {
		if v, _ := tw.reg.Peek("agg"); v != any(13.0) {
			t.Fatalf("probe recovery: value %v, want 13", v)
		}
	}

	fire(15) // first post-recovery refresh: accumulator invalid, fold fallback
	compare("post-recovery fold", nil, core.Healthy)
	fire(16) // re-validated: on-twin back on the O(1) path
	compare("steady state", nil, core.Healthy)
	for _, tw := range twins {
		if v, _ := tw.reg.Peek("agg"); v != any(16.0) {
			t.Fatalf("steady state: value %v, want 16", v)
		}
	}

	stOn := on.env.Stats().Snapshot()
	stOff := off.env.Stats().Snapshot()
	if stOn.DeltaFires != 2 || stOn.DeltaFallbacks != 3 || stOn.DeltaRebases != 0 {
		t.Fatalf("on-twin delta counters fires=%d fallbacks=%d rebases=%d, want 2/3/0",
			stOn.DeltaFires, stOn.DeltaFallbacks, stOn.DeltaRebases)
	}
	if stOff.DeltaFires != 0 || stOff.DeltaFallbacks != 5 {
		t.Fatalf("off-twin delta counters fires=%d fallbacks=%d, want 0/5",
			stOff.DeltaFires, stOff.DeltaFallbacks)
	}
}

// TestConcurrentStressDeltaOff is the concurrent stress driver over a
// delta-disabled env: 4 goroutines, pool updater, race detector. The
// delta-on variant is TestConcurrentStress (the generated workloads
// include aggregates either way).
func TestConcurrentStressDeltaOff(t *testing.T) {
	t.Parallel()
	for seed := int64(1); seed <= 24; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			RunConcurrent(t, seed, 4, core.WithoutDeltaPropagation())
		})
	}
}
