package modelcheck

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/watch"
)

// This file proves the watch delivery contract (see watch_test.go)
// holds THROUGH a relay hop: publications cross an HTTP mux session
// into a watch.Relay, and local watchers on the relay must still see
// monotonic, gap-flagged, bounded, caught-up-at-quiescence streams.
// The relay strips upstream Snapshot/Coalesced flags and re-derives
// both locally, so these checks would catch any hole in that
// re-derivation.

// relayPlane stands up the watch plane behind a real HTTP server and
// a relay mirroring it over one mux session. The returned barrier
// waits until the relay has mirrored version v of w1/val — quiescence
// across the network hop (the hub barrier alone only covers the
// upstream rings).
func relayPlane(t *testing.T) (*watch.Relay, func(), func(uint64)) {
	t.Helper()
	env, r, publish := watchPlane(t)
	h := watch.NewHub(env)
	t.Cleanup(h.Close)
	srv := watch.NewServer(h, env, r)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	rel, err := watch.NewRelay(ctx, ts.URL, watch.RelayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rel.Close)
	barrier := func(v uint64) {
		h.Barrier()
		deadline := time.Now().Add(10 * time.Second)
		for {
			if got, ok := rel.ItemVersion("w1", "val"); ok && got >= v {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("relay never mirrored w1/val v%d", v)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	return rel, publish, barrier
}

// TestRelayDeliverySequential runs seeded schedules of interleaved
// publishes, joins (random resume points and ring sizes), drains, and
// closes against watchers hosted on the relay instead of the hub.
func TestRelayDeliverySequential(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			rel, publish, barrier := relayPlane(t)

			type rec struct {
				since uint64
				evs   []watch.Event
				w     *watch.Watcher
			}
			var open []*rec
			var closed []*rec
			published := uint64(1) // the pinning subscription published v1
			barrier(1)
			for i := 0; i < 120; i++ {
				switch rng.Intn(10) {
				case 0: // join at a random resume point with a random ring
					since := uint64(rng.Intn(int(published) + 1))
					w, err := rel.WatchItem("w1", "val", watch.Options{Since: since, Buffer: 1 << rng.Intn(5)})
					if err != nil {
						t.Fatal(err)
					}
					open = append(open, &rec{since: since, w: w})
				case 1: // drain everybody once the relay is caught up
					barrier(published)
					for _, rc := range open {
						rc.evs = append(rc.evs, drainW(rc.w)...)
					}
				case 2: // close a random watcher (its history still checks)
					if len(open) > 0 {
						j := rng.Intn(len(open))
						rc := open[j]
						barrier(published)
						rc.evs = append(rc.evs, drainW(rc.w)...)
						rc.w.Close()
						open = append(open[:j], open[j+1:]...)
						closed = append(closed, rc)
					}
				default:
					publish()
					published++
				}
			}

			barrier(published)
			final, ok := rel.ItemVersion("w1", "val")
			if !ok || final != published {
				t.Fatalf("relay version = %d,%v, want %d", final, ok, published)
			}
			for i, rc := range open {
				rc.evs = append(rc.evs, drainW(rc.w)...)
				label := fmt.Sprintf("open[%d]", i)
				checkWatchDelivery(t, label, rc.since, rc.evs, final)
				// Property 4: an open watcher is caught up at quiescence.
				last := rc.since
				if len(rc.evs) > 0 {
					last = rc.evs[len(rc.evs)-1].Version
				}
				if last != final {
					t.Fatalf("%s: last delivered %d, want final %d", label, last, final)
				}
				rc.w.Close()
			}
			for i, rc := range closed {
				checkWatchDelivery(t, fmt.Sprintf("closed[%d]", i), rc.since, rc.evs, final)
			}
		})
	}
}

// TestRelayStressConcurrent races 4 publisher workers against three
// long-lived consumers on the relay (one with a 1-slot ring, forcing
// shed and coalesce-to-latest on top of upstream mux coalescing) and
// a watch/unwatch churn goroutine. Run it with -race.
func TestRelayStressConcurrent(t *testing.T) {
	rel, publish, barrier := relayPlane(t)

	type consumer struct {
		w    *watch.Watcher
		evs  []watch.Event
		done chan struct{}
	}
	mk := func(buffer int) *consumer {
		w, err := rel.WatchItem("w1", "val", watch.Options{Buffer: buffer})
		if err != nil {
			t.Fatal(err)
		}
		c := &consumer{w: w, done: make(chan struct{})}
		go func() {
			defer close(c.done)
			for {
				ev, ok := c.w.Next()
				if !ok {
					return
				}
				c.evs = append(c.evs, ev)
			}
		}()
		return c
	}
	consumers := []*consumer{mk(64), mk(4), mk(1)}

	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		rng := rand.New(rand.NewSource(99))
		for {
			select {
			case <-stop:
				return
			default:
			}
			w, err := rel.WatchItem("w1", "val", watch.Options{Buffer: 1 + rng.Intn(4)})
			if err != nil {
				continue
			}
			w.Poll()
			w.Close()
		}
	}()

	const workers, perWorker = 4, 250
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				publish()
			}
		}()
	}
	wg.Wait()
	close(stop)
	churn.Wait()

	final := uint64(workers*perWorker + 1)
	barrier(final)
	for i, c := range consumers {
		c.w.Close()
		<-c.done
		c.evs = append(c.evs, drainW(c.w)...)
		label := fmt.Sprintf("consumer[%d]", i)
		checkWatchDelivery(t, label, 0, c.evs, final)
		if last := c.evs[len(c.evs)-1].Version; last != final {
			t.Fatalf("%s: last delivered %d, want final %d", label, last, final)
		}
	}
}
