package modelcheck

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/adapt"
	"repro/internal/clock"
	"repro/internal/core"
)

// This file closes the loop between the adaptive-maintenance controller
// (internal/adapt) and the reference model: the controller plans
// migrations from the REAL system's sampled economics, and the driver
// mirrors every planned migration into the model, so the lockstep
// comparison proves that controller-driven live migration preserves
// exact value semantics — not just that hand-picked migrations do.

// RunSequentialAdaptive drives one seeded workload through the real
// system and the model in lockstep with a per-registry adapt.Controller
// layered on top: every few ops each controller samples the real
// system's access/update counters, plans migrations through the cost
// model, and the driver applies each plan to BOTH the system and the
// model, comparing error classes and then the complete observable
// state (values bit-exact, mechanisms, migration and delta counters).
// It returns the number of controller-planned migrations applied, so
// callers can assert the adaptive path was actually exercised across a
// seed set.
func RunSequentialAdaptive(t *testing.T, seed int64) int {
	t.Helper()
	wl := Generate(seed, Config{Ops: 80})
	label := fmt.Sprintf("seed=%d(adaptive)", seed)
	sys := NewSystem(wl, nil, nil)
	model := NewModel(wl)

	// Aggressive controller settings so short workloads migrate: no
	// dwell requirement, low hysteresis, an SLO that admits periodic
	// cadences in the generated windows' range, and a compute cost that
	// makes read/update rate differences decisive.
	ctrls := make([]*adapt.Controller, len(wl.Regs))
	for ri := range wl.Regs {
		ctrls[ri] = adapt.New(sys.Regs[ri], adapt.Config{
			Interval: 10, Hysteresis: 0.05, MinDwell: -1,
			FreshnessSLO: 20, MinWindow: 2, MaxWindow: 50, CostHint: 4,
		})
	}
	tracked := make(map[ikey]bool)
	applied := 0

	var subs []heldSub
	for i, op := range wl.Ops {
		at := fmt.Sprintf("%s op#%d (%s)", label, i, op)
		subs = stepOp(t, at, sys, model, op, subs)
		compareStates(t, at, sys, model, subs)

		if (i+1)%8 != 0 {
			continue
		}
		// Sync controller tracking with the inclusion set: newly
		// included adaptable items join (Track resets their sampling
		// baseline), excluded ones leave.
		for ri := range wl.Regs {
			for _, it := range wl.Regs[ri].Items {
				if it.Adapt == AdaptNone {
					continue
				}
				k := ikey{ri, it.Kind}
				switch inc := model.IsIncluded(ri, it.Kind); {
				case inc && !tracked[k]:
					if err := ctrls[ri].Track(it.Kind, 0, 0); err != nil {
						t.Fatalf("%s: Track(%s): %v", at, it.Kind, err)
					}
					tracked[k] = true
				case !inc && tracked[k]:
					ctrls[ri].Untrack(it.Kind)
					delete(tracked, k)
				}
			}
		}
		// One controller iteration per registry, each planned migration
		// mirrored into the model.
		for ri, ctrl := range ctrls {
			for _, mg := range ctrl.Plan(ctrl.Sample()) {
				cat := fmt.Sprintf("%s ctrl[%d] %v", at, ri, mg)
				err := sys.Regs[ri].Migrate(mg.Kind, mg.To, mg.Window)
				merr := model.Migrate(ri, mg.Kind, mg.To, mg.Window)
				if classify(err) != classify(merr) {
					t.Fatalf("%s: real err %q, model err %q", cat, classify(err), classify(merr))
				}
				if err == nil {
					applied++
				}
				compareStates(t, cat, sys, model, subs)
			}
		}
	}

	for _, s := range subs {
		s.sub.Unsubscribe()
		model.Unsubscribe(s.key)
	}
	checkClean(t, label+" teardown", sys)
	checkWindowLogs(t, label, sys, nil)
	return applied
}

// migTarget is one item a RunConcurrentMigrations migrator goroutine
// owns: only that goroutine migrates it, so its mechanism trajectory —
// and therefore the expected final mechanism and total migration count
// — is deterministic regardless of how the other workers interleave.
type migTarget struct {
	ri    int
	kind  core.Kind
	adapt AdaptKind
	mech  core.Mechanism
	win   clock.Duration
}

// RunConcurrentMigrations drives one seeded concurrent workload from
// `workers` goroutines (as RunConcurrent does) with a dedicated
// migrator goroutine storming seeded live migrations over a handful of
// pre-subscribed adaptable items — racing subscribes, releases, clock
// advances, event propagation, and reads under -race. Mid-run values
// are schedule-dependent and checked for readability only; at
// quiescence the migration counter and each target's final mechanism
// and window are pinned against the migrator's deterministic
// trajectory, structure is replayed against a fresh model, and the
// standing invariants (integrity, scopes, window tiling, handler
// conservation) must hold. Returns the number of migrations performed.
func RunConcurrentMigrations(t *testing.T, seed int64, workers int, extra ...core.EnvOption) int64 {
	t.Helper()
	wl := Generate(seed, Config{Ops: 40 * workers, Concurrent: true})
	u := core.NewPoolUpdater(workers)
	defer u.Stop()
	sys := NewSystem(wl, u, nil, extra...)

	// Pre-subscribe up to four adaptable items from here, held for the
	// whole run so the migrator never races exclusion (Migrate on an
	// excluded item is ErrUnsubscribed, which would make the expected
	// count schedule-dependent).
	var targets []*migTarget
	var held []heldSub
	for ri := range wl.Regs {
		for _, it := range wl.Regs[ri].Items {
			if it.Adapt == AdaptNone || len(targets) >= 4 {
				continue
			}
			sub, err := sys.Regs[ri].Subscribe(it.Kind)
			if err != nil {
				t.Fatalf("seed=%d: subscribing migration target r%d/%s: %v", seed, ri, it.Kind, err)
			}
			held = append(held, heldSub{sub: sub, key: ikey{ri, it.Kind}})
			targets = append(targets, &migTarget{
				ri: ri, kind: it.Kind, adapt: it.Adapt,
				mech: it.Mech, win: it.Window,
			})
		}
	}

	// Partition the script exactly like RunConcurrent: advances to
	// worker 0 (the virtual clock forbids re-entrant advancement), the
	// rest round-robin.
	scripts := make([][]Op, workers)
	rr := 0
	for _, op := range wl.Ops {
		w := 0
		if op.Kind != OpAdvance {
			w = rr % workers
			rr++
		}
		scripts[w] = append(scripts[w], op)
	}

	survivors := make([][]heldSub, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var subs []heldSub
			for _, op := range scripts[w] {
				switch op.Kind {
				case OpSubscribe:
					sub, err := sys.Regs[op.Reg].Subscribe(op.Item)
					if err != nil {
						t.Errorf("seed=%d worker %d: %s failed: %v", seed, w, op, err)
						continue
					}
					subs = append(subs, heldSub{sub: sub, key: ikey{op.Reg, op.Item}})
				case OpUnsubscribe:
					if len(subs) == 0 {
						continue
					}
					idx := int(op.Arg) % len(subs)
					subs[idx].sub.Unsubscribe()
					subs = append(subs[:idx], subs[idx+1:]...)
				case OpAdvance:
					sys.Clk.Advance(clock.Duration(op.Arg))
				case OpFireEvent:
					sys.Regs[op.Reg].FireEvent(op.Event)
				case OpNotifyChanged:
					sys.Regs[op.Reg].NotifyChanged(op.Item)
				case OpRead:
					v, err := sys.Regs[op.Reg].Peek(op.Item)
					if err != nil {
						if !errors.Is(err, core.ErrUnsubscribed) {
							t.Errorf("seed=%d worker %d: %s: %v", seed, w, op, err)
						}
						continue
					}
					if _, ok := v.(float64); !ok {
						t.Errorf("seed=%d worker %d: %s: corrupt value %v (%T)", seed, w, op, v, v)
					}
				}
			}
			survivors[w] = subs
		}(w)
	}

	// The migrator: a seeded storm of legal migrations over the held
	// targets, tracking the deterministic expected trajectory.
	var expected int64
	if len(targets) > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed ^ 0x6d696772))
			for i := 0; i < 6*workers; i++ {
				tg := targets[rng.Intn(len(targets))]
				var to core.Mechanism
				if tg.adapt == AdaptExact {
					// AdaptExact declares no triggered form.
					to = []core.Mechanism{core.OnDemandMechanism, core.PeriodicMechanism}[rng.Intn(2)]
				} else {
					to = core.Mechanism(1 + rng.Intn(3))
				}
				win := []clock.Duration{3, 5, 7, 10}[rng.Intn(4)]
				if err := sys.Regs[tg.ri].Migrate(tg.kind, to, win); err != nil {
					t.Errorf("seed=%d: migrate r%d/%s -> %v: %v", seed, tg.ri, tg.kind, to, err)
					continue
				}
				if to != tg.mech || (to == core.PeriodicMechanism && win != tg.win) {
					expected++
				}
				tg.mech = to
				if to == core.PeriodicMechanism {
					tg.win = win
				}
			}
		}()
	}
	wg.Wait()
	sys.Env.Quiesce()

	at := fmt.Sprintf("seed=%d quiescent", seed)
	if got := sys.Env.Stats().Migrations.Load(); got != expected {
		t.Fatalf("%s: %d migrations, migrator performed %d", at, got, expected)
	}
	for _, tg := range targets {
		mech, ok := sys.Regs[tg.ri].Mechanism(tg.kind)
		if !ok || mech != tg.mech {
			t.Fatalf("%s: r%d/%s mechanism %v (ok=%v), migrator left %v", at, tg.ri, tg.kind, mech, ok, tg.mech)
		}
		if tg.mech == core.PeriodicMechanism {
			if w, ok := sys.Regs[tg.ri].Window(tg.kind); !ok || w != tg.win {
				t.Fatalf("%s: r%d/%s window %d (ok=%v), migrator left %d", at, tg.ri, tg.kind, w, ok, tg.win)
			}
		}
	}

	subs := append([]heldSub(nil), held...)
	for _, s := range survivors {
		subs = append(subs, s...)
	}

	// Quiescent structural equivalence: replay the surviving
	// subscriptions into a fresh model. Structure is migration-invariant
	// (Migrate never touches edges or refcounts), so the replay needs no
	// migration mirroring.
	model := NewModel(wl)
	for _, s := range subs {
		if err := model.Subscribe(s.key.reg, s.key.kind); err != nil {
			t.Fatalf("%s: model rejects surviving subscription %v: %v", at, s.key, err)
		}
	}
	for ri := range wl.Regs {
		reg := sys.Regs[ri]
		for _, it := range wl.Regs[ri].Items {
			inc, minc := reg.IsIncluded(it.Kind), model.IsIncluded(ri, it.Kind)
			if inc != minc {
				t.Fatalf("%s: r%d/%s included=%v, model=%v", at, ri, it.Kind, inc, minc)
			}
			if !inc {
				continue
			}
			if got, want := reg.Refs(it.Kind), model.Refs(ri, it.Kind); got != want {
				t.Fatalf("%s: r%d/%s refs=%d, model=%d", at, ri, it.Kind, got, want)
			}
			if v, err := reg.Peek(it.Kind); err != nil {
				t.Fatalf("%s: r%d/%s Peek error %v", at, ri, it.Kind, err)
			} else if _, ok := v.(float64); !ok {
				t.Fatalf("%s: r%d/%s corrupt value %v (%T)", at, ri, it.Kind, v, v)
			}
			compareDeps(t, at, sys, model, ri, it.Kind)
		}
	}
	if errs := core.VerifyIntegrity(extCounts(wl, subs), sys.BaseRegs()...); len(errs) > 0 {
		t.Fatalf("%s: integrity violations: %v", at, errs)
	}
	if err := core.ScopesUnlocked(sys.Regs...); err != nil {
		t.Fatalf("%s: %v", at, err)
	}
	checkWindowLogs(t, fmt.Sprintf("seed=%d", seed), sys, nil)

	for _, s := range subs {
		s.sub.Unsubscribe()
	}
	checkClean(t, fmt.Sprintf("seed=%d teardown", seed), sys)
	return expected
}
