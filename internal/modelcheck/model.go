package modelcheck

import (
	"sort"

	"repro/internal/clock"
	"repro/internal/core"
)

// Model is the naive sequential reference implementation of the
// paper's metadata semantics: single-threaded, no locks, no handler
// objects — just maps and the refcounting/propagation rules spelled
// out in DESIGN.md. The drivers run the real internal/core against it
// and fail on any divergence.
//
// The model mirrors core operation by operation:
//
//   - include/release mirror includeLocked/releaseLocked: depth-first
//     inclusion with rollback on failure, sharing via reference
//     counts, recursive release when a count reaches zero;
//   - Advance mirrors the virtual clock + batched tick dispatch:
//     periodic items fire at exact window boundaries in (time,
//     tiebreak) order, every item due at one instant publishes its
//     window value, then trigger propagation runs once over the merged
//     seed set (same-instant coalescing);
//   - FireEvent/NotifyChanged mirror refreshClosureLocked: expansion
//     through triggered handlers only, refresh in topological order.
//
// Value semantics are shared with system.go (same float64 operations
// in the same order), so the drivers compare values exactly.
type Model struct {
	wl       *Workload
	now      clock.Time
	attached []bool // per registry index; modules start attached
	items    map[ikey]*mItem

	// DeltaOff mirrors core.WithoutDeltaPropagation on the system under
	// test: no pairs flow and every aggregate refresh is a fallback.
	DeltaOff bool

	// epoch mirrors Env.writeEpoch: bumped once per entry creation (at
	// commit, before handler start), once per entry removal, and once
	// per successful Define — the exact bumpStruct sites of core. An
	// aggregate whose stamp lags the epoch must take the fold fallback.
	epoch uint64

	// Delta-path counters, pinned against the system's stats after
	// every op: the model decides fire/fallback/rebase from the mirrored
	// contract, so a divergence localizes a wrong decision in core.
	deltaFires     int64
	deltaFallbacks int64
	deltaRebases   int64

	// cseq mirrors Env.seq (entry creation order, the tie-break of
	// trigger propagation); eseq mirrors the virtual clock's event
	// sequence (the tie-break between ticks at one instant). Both
	// orders are observable: a triggered item reading a periodic
	// value through an on-demand intermediary sees the value as of
	// its own refresh, so same-instant processing order matters.
	cseq uint64
	eseq uint64

	// refreshes counts triggered-item refreshes performed by
	// propagate; it mirrors core's Stats.TriggerNotifications and pins
	// the coalesced refresh count (a triggered dependent of k
	// same-boundary publishers refreshes once per instant, not k
	// times).
	refreshes int64

	// migrations mirrors Stats.Migrations: one per successful Migrate
	// (identity no-ops and rejected migrations count nothing).
	migrations int64
}

// mItem is the model's entry: one included item with its resolved
// dependency groups and bookkeeping, mirroring core's entry struct.
type mItem struct {
	spec       *ItemSpec
	key        ikey
	refs       int
	depGroups  [][]ikey
	dependents map[ikey]int

	// mech and window are the item's CURRENT maintenance mechanism and
	// periodic window — spec.Mech/spec.Window at inclusion, updated by
	// Migrate. Every mechanism-dependent rule below (value semantics,
	// tick firing, propagation expansion, delta eligibility) reads
	// these, never the spec, mirroring that core's behavior follows the
	// live handler.
	mech   core.Mechanism
	window clock.Duration

	val      float64    // published value (static, periodic, triggered)
	winStart clock.Time // periodic: current window start
	nextFire clock.Time // periodic: next boundary
	cseq     uint64     // creation order (mirrors entry.seq)
	evSeq    uint64     // periodic: pending tick's event sequence

	delta *mDelta // delta-aggregate state (nil for plain items)
}

// mDelta mirrors core's deltaState for the fire/fallback/rebase
// decision. The model never maintains the accumulator incrementally —
// its value is always the full fold, which is the exactness claim
// under test: if core's O(1) path ever drifts from the fold, the value
// comparison catches it at the op where it happened.
type mDelta struct {
	spec    *core.DeltaSpec
	valid   bool
	epoch   uint64
	applied int
	rebase  int // resolved limit (0 = never rebase)
	pending int // pairs consumed by the next refresh
}

// NewModel returns the reference model for a workload, at time 0 with
// all modules attached (matching NewSystem).
func NewModel(wl *Workload) *Model {
	m := &Model{
		wl:       wl,
		items:    make(map[ikey]*mItem),
		attached: make([]bool, len(wl.Regs)),
	}
	for i, r := range wl.Regs {
		if r.Parent >= 0 {
			m.attached[i] = true
		}
	}
	return m
}

// Now returns the model's clock position.
func (m *Model) Now() clock.Time { return m.now }

// Refreshes returns the number of triggered-item refreshes performed
// so far; it must equal the system's Stats.TriggerNotifications after
// every operation (with the inline updater).
func (m *Model) Refreshes() int64 { return m.refreshes }

// Migrations returns the number of successful migrations; it must
// equal the system's Stats.Migrations after every operation.
func (m *Model) Migrations() int64 { return m.migrations }

// Mechanism returns the item's current maintenance mechanism, and its
// window when periodic. ok is false for excluded items.
func (m *Model) Mechanism(ri int, kind core.Kind) (core.Mechanism, clock.Duration, bool) {
	it, ok := m.items[ikey{ri, kind}]
	if !ok {
		return 0, 0, false
	}
	if it.mech == core.PeriodicMechanism {
		return it.mech, it.window, true
	}
	return it.mech, 0, true
}

// DeltaCounters returns the mirrored delta-path counters; they must
// equal the system's DeltaFires/DeltaFallbacks/DeltaRebases after
// every operation (with the inline updater).
func (m *Model) DeltaCounters() (fires, fallbacks, rebases int64) {
	return m.deltaFires, m.deltaFallbacks, m.deltaRebases
}

// IsIncluded reports whether the item is included.
func (m *Model) IsIncluded(ri int, kind core.Kind) bool {
	_, ok := m.items[ikey{ri, kind}]
	return ok
}

// Refs returns the item's reference count (0 if not included).
func (m *Model) Refs(ri int, kind core.Kind) int {
	if it, ok := m.items[ikey{ri, kind}]; ok {
		return it.refs
	}
	return 0
}

// Included returns the included kinds of registry ri, sorted.
func (m *Model) Included(ri int) []core.Kind {
	var out []core.Kind
	for k := range m.items {
		if k.reg == ri {
			out = append(out, k.kind)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// resolve maps a dependency spec of registry ri to target registry
// indices, mirroring Registry.resolveSelector.
func (m *Model) resolve(ri int, d DepSpec) []int {
	spec := &m.wl.Regs[ri]
	switch d.Sel {
	case SelSelf:
		return []int{ri}
	case SelInput:
		if d.Index < 0 || d.Index >= len(spec.Inputs) {
			return nil
		}
		return []int{spec.Inputs[d.Index]}
	case SelEachInput:
		return append([]int(nil), spec.Inputs...)
	case SelModule:
		for mi := range m.wl.Regs {
			mr := &m.wl.Regs[mi]
			if mr.Parent == ri && mr.ModName == d.Name && m.attached[mi] {
				return []int{mi}
			}
		}
		return nil
	}
	return nil
}

// Subscribe mirrors Registry.Subscribe: include the item (depth-first
// over dependencies, sharing what is already included) and take one
// external reference. The returned error is the sentinel the real
// system's error wraps, for class comparison.
func (m *Model) Subscribe(ri int, kind core.Kind) error {
	_, err := m.include(ri, kind)
	return err
}

func (m *Model) include(ri int, kind core.Kind) (ikey, error) {
	k := ikey{ri, kind}
	if it, ok := m.items[k]; ok {
		it.refs++
		return k, nil
	}
	spec := m.wl.Item(ri, kind)
	if spec == nil {
		return k, core.ErrUnknownItem
	}
	// The real system numbers the entry before including dependencies
	// (and a failed inclusion still consumes the number).
	cs := m.cseq
	m.cseq++

	// Include dependencies depth-first, rolling back on failure so a
	// failed subscription leaves no residue (mirrors includeLocked).
	var included []ikey
	rollback := func() {
		for i := len(included) - 1; i >= 0; i-- {
			m.release(included[i])
		}
	}
	groups := make([][]ikey, len(spec.Deps))
	for i, d := range spec.Deps {
		regs := m.resolve(ri, d)
		if len(regs) == 0 && !d.Optional {
			rollback()
			return k, core.ErrBadSelector
		}
		for _, tr := range regs {
			dk, err := m.include(tr, d.Kind)
			if err != nil {
				rollback()
				return k, err
			}
			included = append(included, dk)
			groups[i] = append(groups[i], dk)
		}
	}

	it := &mItem{
		spec: spec, key: k, refs: 1, cseq: cs,
		depGroups: groups, dependents: make(map[ikey]int),
		mech: spec.Mech, window: spec.Window,
	}
	m.items[k] = it
	for _, g := range groups {
		for _, dk := range g {
			m.items[dk].dependents[k]++
		}
	}

	// Entry commit: core bumps the write epoch once per created entry,
	// then starts the handler (so an aggregate's own stamp reflects its
	// own bump, but lags any entry created later in the same cascade).
	m.epoch++

	// Handler start: the initial value per the shared semantics.
	switch spec.Mech {
	case core.StaticMechanism:
		it.val = spec.Base
	case core.PeriodicMechanism:
		it.winStart = m.now
		it.nextFire = m.now.Add(it.window)
		it.evSeq = m.eseq // the ticker schedules the first tick now
		m.eseq++
		it.val = encodeWindow(m.now, m.now)
	case core.TriggeredMechanism:
		if spec.Agg != "" {
			it.delta = &mDelta{
				spec:   deltaSpecFor(spec),
				valid:  true,
				epoch:  m.epoch,
				rebase: rebaseLimit(spec.Rebase),
			}
			it.val = m.foldAgg(it)
		} else {
			it.val = spec.Base + m.sumDeps(it) + 0.01*float64(m.now)
		}
	}
	return k, nil
}

// rebaseLimit mirrors core's DeltaSpec.rebaseLimit: 0 selects the
// default interval, negative disables rebasing.
func rebaseLimit(n int) int {
	if n == 0 {
		return core.DefaultDeltaRebaseEvery
	}
	if n < 0 {
		return 0
	}
	return n
}

// Unsubscribe releases one external reference of an included item.
func (m *Model) Unsubscribe(k ikey) { m.release(k) }

// release mirrors entry.releaseLocked: decrement, and on zero remove
// the item and recursively release each dependency handle.
func (m *Model) release(k ikey) {
	it := m.items[k]
	it.refs--
	if it.refs > 0 {
		return
	}
	delete(m.items, k)
	m.epoch++ // entry removal bumps the write epoch (releaseLocked)
	for _, g := range it.depGroups {
		for _, dk := range g {
			d := m.items[dk]
			if d.dependents[k]--; d.dependents[k] <= 0 {
				delete(d.dependents, k)
			}
			m.release(dk)
		}
	}
}

// Value returns the current value of an included item, mirroring
// Registry.Peek under the shared semantics. ok=false means the real
// system must report ErrUnsubscribed.
func (m *Model) Value(ri int, kind core.Kind) (float64, bool) {
	it, ok := m.items[ikey{ri, kind}]
	if !ok {
		return 0, false
	}
	return m.value(it), true
}

// value evaluates one included item: published value for static,
// periodic and triggered items; recomputation at the current time for
// on-demand items (which compute on every access).
func (m *Model) value(it *mItem) float64 {
	if it.mech == core.OnDemandMechanism {
		if it.spec.Pure {
			// Pure on-demand: no access-time term. Whether the real
			// system recomputes or serves its memo, the value is the
			// same — that is the exactness property under test.
			return it.spec.Base + m.sumDeps(it)
		}
		return it.spec.Base + m.sumDeps(it) + 0.001*float64(m.now)
	}
	return it.val
}

// sumDeps folds the dependency values in declaration order — the same
// float64 additions in the same order as system.go's sumDeps, so the
// results compare exactly.
func (m *Model) sumDeps(it *mItem) float64 {
	total := 0.0
	for _, g := range it.depGroups {
		for _, dk := range g {
			total += m.value(m.items[dk])
		}
	}
	return total
}

// Advance mirrors Virtual.Advance with the inline updater over the
// batched tick pipeline: instants are processed in order, and at each
// instant every periodic item due then fires in event-sequence order
// (the arm order of the scheduler bucket — publish the window value,
// reschedule, which assigns the next event sequence), after which
// trigger propagation runs ONCE over the merged dependents of all
// same-instant publishers. Coalescing is observable both through
// values (a triggered dependent of publishers A and B reads both new
// windows in its single refresh) and through the refresh count.
func (m *Model) Advance(d int64) {
	target := m.now.Add(clock.Duration(d))
	for {
		// Earliest due boundary <= target.
		var fireAt clock.Time
		found := false
		for _, it := range m.items {
			if it.mech != core.PeriodicMechanism || it.nextFire > target {
				continue
			}
			if !found || it.nextFire < fireAt {
				fireAt = it.nextFire
				found = true
			}
		}
		if !found {
			break
		}
		if fireAt > m.now {
			m.now = fireAt
		}
		// All items due at this instant, in event-sequence order (the
		// order they joined the scheduler bucket).
		var due []*mItem
		for _, it := range m.items {
			if it.mech == core.PeriodicMechanism && it.nextFire <= m.now {
				due = append(due, it)
			}
		}
		sort.Slice(due, func(i, j int) bool { return due[i].evSeq < due[j].evSeq })
		var seeds []ikey
		for _, it := range due {
			old := it.val
			it.val = encodeWindow(it.winStart, m.now)
			it.winStart = m.now
			it.nextFire = m.now.Add(it.window)
			it.evSeq = m.eseq // re-armed in bucket order at dispatch
			m.eseq++
			// The tick batch delivers every publication to the delta
			// channel before the merged propagation runs, so an aggregate
			// refresh consumes all same-instant pairs at once.
			m.pushPairs(it, old)
			seeds = append(seeds, dependentKeys(it)...)
		}
		m.propagate(seeds)
	}
	if target > m.now {
		m.now = target
	}
}

// FireEvent mirrors Registry.FireEvent: refresh the closure of the
// registry's items registered for the event.
func (m *Model) FireEvent(ri int, name string) {
	var seeds []ikey
	for k, it := range m.items {
		if k.reg != ri {
			continue
		}
		for _, ev := range it.spec.Events {
			if ev == name {
				seeds = append(seeds, k)
				break
			}
		}
	}
	m.propagate(seeds)
}

// NotifyChanged mirrors Registry.NotifyChanged: refresh the closure of
// the item's dependents. No-op if the item is not included.
func (m *Model) NotifyChanged(ri int, kind core.Kind) {
	it, ok := m.items[ikey{ri, kind}]
	if !ok {
		return
	}
	m.propagate(dependentKeys(it))
}

// propagate mirrors refreshClosureLocked: the affected set expands
// from the seeds through triggered items only (on-demand and periodic
// dependents absorb the notification), then refreshes in topological
// order of the dependency graph so every item recomputes after all of
// its updated dependencies.
func (m *Model) propagate(seeds []ikey) {
	affected := make(map[ikey]bool)
	var expand func(k ikey)
	expand = func(k ikey) {
		if affected[k] {
			return
		}
		it := m.items[k]
		if it.mech != core.TriggeredMechanism {
			return
		}
		affected[k] = true
		for d := range it.dependents {
			expand(d)
		}
	}
	for _, s := range seeds {
		expand(s)
	}
	if len(affected) == 0 {
		return
	}

	// Kahn over the affected subgraph, counting one in-edge per
	// declared dependency occurrence (matching core's multiplicity
	// accounting). Ready ties break by creation sequence, exactly as
	// refreshClosureLocked does: the order is observable through
	// on-demand intermediaries read during refresh.
	indeg := make(map[ikey]int, len(affected))
	for k := range affected {
		for _, g := range m.items[k].depGroups {
			for _, dk := range g {
				if affected[dk] {
					indeg[k]++
				}
			}
		}
	}
	var ready []ikey
	for k := range affected {
		if indeg[k] == 0 {
			ready = append(ready, k)
		}
	}
	m.sortByCreation(ready)
	for len(ready) > 0 {
		k := ready[0]
		ready = ready[1:]
		it := m.items[k]
		m.refreshes++
		old := it.val
		if it.delta != nil {
			m.refreshAgg(it)
		} else {
			it.val = it.spec.Base + m.sumDeps(it) + 0.01*float64(m.now)
		}
		// The plan walk notifies the delta channel after each refresh in
		// topological order, so aggregate dependents deeper in the walk
		// see this item's transition before their own refresh.
		m.pushPairs(it, old)
		var next []ikey
		for d := range it.dependents {
			if !affected[d] {
				continue
			}
			edges := 0
			for _, g := range m.items[d].depGroups {
				for _, dk := range g {
					if dk == k {
						edges++
					}
				}
			}
			indeg[d] -= edges
			if indeg[d] == 0 {
				next = append(next, d)
			}
		}
		m.sortByCreation(next)
		ready = append(ready, next...)
	}
}

// Migrate mirrors Registry.Migrate: validate (same sentinel classes in
// the same precedence — unknown/excluded items are ErrUnsubscribed,
// everything structurally unsupported is ErrNotMigratable, and target
// checks precede the identity no-op), then swap the item's mechanism
// and replay the new handler's start-time effects: epoch and version
// bumps, the initial publication per the shared value semantics,
// dependent delta-aggregate invalidation, dependent refresh. The
// migrated item's own publication does NOT feed the delta channel
// (core migrates without notifyDeltaLocked; the re-anchored aggregates
// re-fold instead).
func (m *Model) Migrate(ri int, kind core.Kind, to core.Mechanism, window clock.Duration) error {
	it, ok := m.items[ikey{ri, kind}]
	if !ok {
		return core.ErrUnsubscribed
	}
	spec := it.spec
	if spec.Adapt == AdaptNone {
		return core.ErrNotMigratable
	}
	if spec.Agg != "" {
		return core.ErrNotMigratable
	}
	switch it.mech {
	case core.OnDemandMechanism, core.PeriodicMechanism, core.TriggeredMechanism:
	default:
		return core.ErrNotMigratable
	}
	switch to {
	case core.OnDemandMechanism:
	case core.TriggeredMechanism:
		// system.go's adaptSpec declares a triggered form only for
		// AdaptFull items (AdaptExact keeps the bit-exact pure pair).
		if spec.Adapt != AdaptFull {
			return core.ErrNotMigratable
		}
	case core.PeriodicMechanism:
		if window <= 0 {
			window = spec.Window
		}
		if window <= 0 {
			return core.ErrNotMigratable
		}
	default:
		return core.ErrNotMigratable
	}
	if it.mech == to && (to != core.PeriodicMechanism || it.window == window) {
		return nil // identity no-op: no counters, no epoch bump
	}

	// Commit: one write-epoch bump (bumpStruct) plus the migration
	// counter, then the new mechanism's start-time state.
	m.epoch++
	m.migrations++
	it.mech = to
	switch to {
	case core.OnDemandMechanism:
		it.window = 0 // value recomputed at every access
	case core.TriggeredMechanism:
		it.window = 0
		it.val = spec.Base + m.sumDeps(it) + 0.01*float64(m.now)
	case core.PeriodicMechanism:
		it.window = window
		it.val = encodeWindow(m.now, m.now)
		it.winStart = m.now
		it.nextFire = m.now.Add(window)
		it.evSeq = m.eseq // new ticker armed now
		m.eseq++
	}

	// Dependent delta aggregates are re-anchored: accumulators
	// invalidated, queued pairs dropped, eligibility re-decided (the
	// model re-decides on the fly in aggEligible). The propagation
	// below re-folds them as fallbacks.
	for dk := range it.dependents {
		if d := m.items[dk]; d.delta != nil {
			d.delta.valid = false
			d.delta.pending = 0
		}
	}
	m.propagate(dependentKeys(it))
	return nil
}

// aggEligible mirrors deltaState eligibility: the O(1) path is armed
// only when delta propagation is on and no fan-in dependency is
// maintained on demand (an on-demand dependency never publishes, so
// there is no pair stream to consume). Core decides this at tracker
// start and re-decides it in Migrate's re-anchor pass; since
// mechanisms only change through migrations and every migration
// re-anchors the dependent aggregates, evaluating it on the fly over
// current mechanisms is equivalent.
func (m *Model) aggEligible(it *mItem) bool {
	if m.DeltaOff {
		return false
	}
	for _, g := range it.depGroups {
		for _, dk := range g {
			if m.items[dk].mech == core.OnDemandMechanism {
				return false
			}
		}
	}
	return true
}

// Redefine mirrors Registry.Define of an identical definition: an
// error while the item is in use, otherwise no observable change.
func (m *Model) Redefine(ri int, kind core.Kind) error {
	if _, ok := m.items[ikey{ri, kind}]; ok {
		return core.ErrItemInUse
	}
	// A successful Define bumps the write epoch (conservatively, like
	// core), so every live aggregate's next refresh is a fold fallback.
	m.epoch++
	return nil
}

// Detach mirrors Registry.DetachModule on the module registry mi: nil
// if not attached, an error while the module has included items.
func (m *Model) Detach(mi int) error {
	if !m.attached[mi] {
		return nil
	}
	for k := range m.items {
		if k.reg == mi {
			return core.ErrItemInUse
		}
	}
	m.attached[mi] = false
	return nil
}

// Attach mirrors Registry.AttachModule: unconditional.
func (m *Model) Attach(mi int) { m.attached[mi] = true }

// pushPairs mirrors notifyDeltaLocked for a fault-free publication: an
// unchanged value delivers nothing, a changed one delivers one pair
// per declared edge to every delta-tracking dependent. (Poison never
// arises here: workload values are always clean finite floats.)
func (m *Model) pushPairs(it *mItem, old float64) {
	if m.DeltaOff || it.val == old {
		return
	}
	for dk, edges := range it.dependents {
		if d := m.items[dk]; d.delta != nil {
			d.delta.pending += edges
		}
	}
}

// refreshAgg mirrors refreshDelta's decision for one aggregate refresh
// in a fault-free sequential run: consume the pending pairs, fire the
// O(1) path when the contract proves it exact, else count a rebase or
// fallback and re-fold (which re-validates and re-stamps the
// accumulator). The published value is always the full fold — see
// mDelta.
func (m *Model) refreshAgg(it *mItem) {
	d := it.delta
	pairs := d.pending
	d.pending = 0
	if m.aggEligible(it) && d.valid && d.epoch == m.epoch &&
		(pairs == 0 || d.spec.Retract != nil) {
		if d.rebase > 0 && d.applied >= d.rebase {
			m.deltaRebases++
			m.foldRestamp(it)
			return
		}
		// applyPairs cannot refuse here: the generated specs' Retract
		// callbacks are total (Min, the only refusing form, is handled
		// by the pairs==0 gate above).
		m.deltaFires++
		d.applied++
		it.val = m.foldAgg(it)
		return
	}
	m.deltaFallbacks++
	m.foldRestamp(it)
}

// foldRestamp is the model's foldRefreshLocked: full fold, accumulator
// re-validated and re-stamped at the current epoch.
func (m *Model) foldRestamp(it *mItem) {
	d := it.delta
	d.valid = true
	d.applied = 0
	d.epoch = m.epoch
	it.val = m.foldAgg(it)
}

// foldAgg folds the aggregate's flattened fan-in in declaration order
// through the shared core.DeltaSpec — the identical float64 operations
// core's fold performs, so values compare exactly.
func (m *Model) foldAgg(it *mItem) float64 {
	spec := it.delta.spec
	var acc core.DeltaAcc
	for _, g := range it.depGroups {
		for _, dk := range g {
			acc = spec.Combine(acc, m.value(m.items[dk]))
		}
	}
	if spec.Finish != nil {
		return spec.Finish(acc)
	}
	return acc[0]
}

func dependentKeys(it *mItem) []ikey {
	out := make([]ikey, 0, len(it.dependents))
	for d := range it.dependents {
		out = append(out, d)
	}
	return out
}

// sortByCreation orders keys by their items' creation sequence,
// mirroring core's sortEntries.
func (m *Model) sortByCreation(ks []ikey) {
	sort.Slice(ks, func(i, j int) bool { return m.items[ks[i]].cseq < m.items[ks[j]].cseq })
}
