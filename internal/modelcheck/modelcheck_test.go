package modelcheck

import (
	"fmt"
	"testing"
)

// TestSequentialEquivalence runs seeded workloads through the real
// system and the sequential reference model in lockstep, comparing
// the complete observable state after every operation. Reproduce one
// failing workload with:
//
//	go test ./internal/modelcheck -run 'TestSequentialEquivalence/seed=42$'
func TestSequentialEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 120; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			RunSequential(t, seed)
		})
	}
}

// TestSequentialEquivalenceMemoized re-runs the lockstep driver with
// core.WithMemoizedOnDemand enabled: pure on-demand items are served
// from the versioned memo, volatile ones keep recomputing, and every
// observable — values, error classes, structure, refresh counts — must
// stay exactly equal to the memo-unaware reference model. Reproduce one
// failing workload with:
//
//	go test ./internal/modelcheck -run 'TestSequentialEquivalenceMemoized/seed=42$'
func TestSequentialEquivalenceMemoized(t *testing.T) {
	for seed := int64(1); seed <= 120; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			RunSequentialMemo(t, seed)
		})
	}
}

// TestGenerateDeterministic guards replayability: the same seed must
// produce the identical workload.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		a := Generate(seed, Config{})
		b := Generate(seed, Config{})
		if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
			t.Fatalf("seed=%d: Generate is not deterministic", seed)
		}
	}
}
