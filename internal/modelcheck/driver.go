package modelcheck

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
)

// heldSub is one live external subscription, tracked identically by
// the driver for the real system and the model.
type heldSub struct {
	sub *core.Subscription
	key ikey
}

// classify collapses an error to its sentinel class, so the real
// system's wrapped errors compare against the model's bare sentinels.
func classify(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, core.ErrUnknownItem):
		return "unknown-item"
	case errors.Is(err, core.ErrItemInUse):
		return "in-use"
	case errors.Is(err, core.ErrBadSelector):
		return "bad-selector"
	case errors.Is(err, core.ErrCycle):
		return "cycle"
	case errors.Is(err, core.ErrUnsubscribed):
		return "unsubscribed"
	case errors.Is(err, core.ErrNotMigratable):
		return "not-migratable"
	case errors.Is(err, core.ErrComputePanic):
		return "compute-panic"
	default:
		return "other: " + err.Error()
	}
}

// extCounts derives the external-subscription counts VerifyIntegrity
// checks refcount conservation against.
func extCounts(wl *Workload, subs []heldSub) map[core.ItemKey]int {
	ext := make(map[core.ItemKey]int)
	for _, s := range subs {
		ext[core.ItemKey{Registry: wl.Regs[s.key.reg].ID, Kind: s.key.kind}]++
	}
	return ext
}

// RunSequential drives one seeded workload through the real system
// and the reference model in lockstep, comparing the complete
// observable state — error classes, inclusion sets, reference counts,
// dependency edges, and exact metadata values — after every single
// operation, plus the structural invariants (core.VerifyIntegrity)
// and lock hygiene (core.ScopesUnlocked).
func RunSequential(t *testing.T, seed int64) {
	t.Helper()
	wl := Generate(seed, Config{Ops: 80})
	runLockstep(t, fmt.Sprintf("seed=%d", seed), wl)
}

// RunSequentialMemo is RunSequential over a memo-enabled env
// (core.WithMemoizedOnDemand): the identical workload — mixing pure,
// volatile, and pure-over-volatile on-demand items — must stay exactly
// value- and error-equivalent to the model while pure reads are served
// from the versioned cache. The model has no memo concept, so any
// stale memo hit shows up as a value divergence at the op where it
// happened.
func RunSequentialMemo(t *testing.T, seed int64) {
	t.Helper()
	wl := Generate(seed, Config{Ops: 80})
	runLockstep(t, fmt.Sprintf("seed=%d(memo)", seed), wl, core.WithMemoizedOnDemand())
}

// RunSequentialDeltaOff is RunSequential over a delta-disabled env
// (core.WithoutDeltaPropagation): the identical workload — including
// its delta aggregates — must stay exactly value- and
// error-equivalent to the model with every aggregate refresh on the
// full-fold path (the model pins DeltaFires to zero). Together with
// RunSequential on the same seeds this is the delta-on/delta-off
// lockstep: both runs compare bit-identical values against the same
// model, so they are bit-identical to each other.
func RunSequentialDeltaOff(t *testing.T, seed int64) {
	t.Helper()
	wl := Generate(seed, Config{Ops: 80})
	model := NewModel(wl)
	model.DeltaOff = true
	runLockstepModel(t, fmt.Sprintf("seed=%d(delta-off)", seed), wl, model,
		core.WithoutDeltaPropagation())
}

// runLockstep executes a workload's op script against the real system
// (inline updater) and the model in lockstep, comparing after every
// op. It is shared by the seeded sequential driver and the hand-built
// coalescing workloads. extra env options (e.g. WithMemoizedOnDemand)
// are forwarded to NewSystem.
func runLockstep(t *testing.T, label string, wl *Workload, extra ...core.EnvOption) {
	t.Helper()
	runLockstepModel(t, label, wl, NewModel(wl), extra...)
}

// runLockstepModel is runLockstep with a caller-prepared model (e.g.
// one with DeltaOff set to match a delta-disabled env).
func runLockstepModel(t *testing.T, label string, wl *Workload, model *Model, extra ...core.EnvOption) {
	t.Helper()
	sys := NewSystem(wl, nil, nil, extra...)
	var subs []heldSub

	for i, op := range wl.Ops {
		at := fmt.Sprintf("%s op#%d (%s)", label, i, op)
		subs = stepOp(t, at, sys, model, op, subs)
		compareStates(t, at, sys, model, subs)
	}

	// Teardown: release everything and verify the graph drains clean.
	for _, s := range subs {
		s.sub.Unsubscribe()
		model.Unsubscribe(s.key)
	}
	checkClean(t, label+" teardown", sys)
	checkWindowLogs(t, label, sys, nil)
}

// stepOp applies one workload op to the real system and the model in
// lockstep, comparing error classes, and returns the updated list of
// held external subscriptions. Shared by the plain and adaptive
// sequential drivers.
func stepOp(t *testing.T, at string, sys *System, model *Model, op Op, subs []heldSub) []heldSub {
	t.Helper()
	switch op.Kind {
	case OpSubscribe:
		sub, err := sys.Regs[op.Reg].Subscribe(op.Item)
		merr := model.Subscribe(op.Reg, op.Item)
		if classify(err) != classify(merr) {
			t.Fatalf("%s: real err %q, model err %q", at, classify(err), classify(merr))
		}
		if err == nil {
			subs = append(subs, heldSub{sub: sub, key: ikey{op.Reg, op.Item}})
		}
	case OpUnsubscribe:
		if len(subs) == 0 {
			return subs
		}
		idx := int(op.Arg) % len(subs)
		subs[idx].sub.Unsubscribe()
		model.Unsubscribe(subs[idx].key)
		subs = append(subs[:idx], subs[idx+1:]...)
	case OpAdvance:
		sys.Clk.Advance(clock.Duration(op.Arg))
		model.Advance(op.Arg)
	case OpFireEvent:
		sys.Regs[op.Reg].FireEvent(op.Event)
		model.FireEvent(op.Reg, op.Event)
	case OpNotifyChanged:
		sys.Regs[op.Reg].NotifyChanged(op.Item)
		model.NotifyChanged(op.Reg, op.Item)
	case OpRead:
		v, err := sys.Regs[op.Reg].Peek(op.Item)
		mv, ok := model.Value(op.Reg, op.Item)
		if !ok {
			if !errors.Is(err, core.ErrUnsubscribed) {
				t.Fatalf("%s: real (%v, %v), model not included", at, v, err)
			}
		} else if err != nil || v != any(mv) {
			t.Fatalf("%s: real (%v, %v), model %v", at, v, err, mv)
		}
	case OpMigrate:
		to := core.Mechanism(op.Arg & 0xff)
		win := clock.Duration(op.Arg >> 8)
		err := sys.Regs[op.Reg].Migrate(op.Item, to, win)
		if got, want := classify(err), classify(model.Migrate(op.Reg, op.Item, to, win)); got != want {
			t.Fatalf("%s: real err %q, model err %q", at, got, want)
		}
	case OpRedefine:
		spec := sys.Wl.Item(op.Reg, op.Item)
		err := sys.Regs[op.Reg].Define(sys.definition(op.Reg, *spec))
		if got, want := classify(err), classify(model.Redefine(op.Reg, op.Item)); got != want {
			t.Fatalf("%s: real err %q, model err %q", at, got, want)
		}
	case OpDetachModule:
		parent := sys.Wl.Regs[op.Reg].Parent
		err := sys.Regs[parent].DetachModule(sys.Wl.Regs[op.Reg].ModName)
		if got, want := classify(err), classify(model.Detach(op.Reg)); got != want {
			t.Fatalf("%s: real err %q, model err %q", at, got, want)
		}
	case OpAttachModule:
		parent := sys.Wl.Regs[op.Reg].Parent
		sys.Regs[parent].AttachModule(sys.Wl.Regs[op.Reg].ModName, sys.Regs[op.Reg])
		model.Attach(op.Reg)
	}
	return subs
}

// compareStates checks full observable equivalence between the real
// system and the model at a quiescent point.
func compareStates(t *testing.T, at string, sys *System, model *Model, subs []heldSub) {
	t.Helper()
	if got, want := sys.Clk.Now(), model.Now(); got != want {
		t.Fatalf("%s: clock at %d, model at %d", at, got, want)
	}
	// Pin the coalesced refresh count, not just the resulting values: a
	// triggered dependent of k same-boundary publishers must refresh
	// exactly once per instant.
	if got, want := sys.Env.Stats().TriggerNotifications.Load(), model.Refreshes(); got != want {
		t.Fatalf("%s: %d trigger notifications, model %d refreshes", at, got, want)
	}
	// Pin the delta-path decision, not just the resulting values: the
	// model mirrors the fire/fallback/rebase contract, so a divergence
	// here localizes a refresh that took the wrong path even when both
	// paths would publish the same (exact) value.
	st := sys.Env.Stats().Snapshot()
	mf, mfb, mr := model.DeltaCounters()
	if st.DeltaFires != mf || st.DeltaFallbacks != mfb || st.DeltaRebases != mr {
		t.Fatalf("%s: delta fires/fallbacks/rebases %d/%d/%d, model %d/%d/%d",
			at, st.DeltaFires, st.DeltaFallbacks, st.DeltaRebases, mf, mfb, mr)
	}
	// Pin the migration count: every successful Migrate counts exactly
	// once, identity no-ops and rejections count nothing.
	if got, want := st.Migrations, model.Migrations(); got != want {
		t.Fatalf("%s: %d migrations, model %d", at, got, want)
	}
	for ri := range sys.Wl.Regs {
		reg := sys.Regs[ri]
		for _, it := range sys.Wl.Regs[ri].Items {
			inc := reg.IsIncluded(it.Kind)
			minc := model.IsIncluded(ri, it.Kind)
			if inc != minc {
				t.Fatalf("%s: r%d/%s included=%v, model=%v", at, ri, it.Kind, inc, minc)
			}
			if !inc {
				continue
			}
			if got, want := reg.Refs(it.Kind), model.Refs(ri, it.Kind); got != want {
				t.Fatalf("%s: r%d/%s refs=%d, model=%d", at, ri, it.Kind, got, want)
			}
			// Pin the live mechanism (and, for periodic, the window):
			// migrations must land on the real handler exactly as the
			// model recorded them.
			mech, mwin, _ := model.Mechanism(ri, it.Kind)
			if got, ok := reg.Mechanism(it.Kind); !ok || got != mech {
				t.Fatalf("%s: r%d/%s mechanism %v (ok=%v), model %v", at, ri, it.Kind, got, ok, mech)
			}
			if mech == core.PeriodicMechanism {
				if w, ok := reg.Window(it.Kind); !ok || w != mwin {
					t.Fatalf("%s: r%d/%s window %d (ok=%v), model %d", at, ri, it.Kind, w, ok, mwin)
				}
			}
			v, err := reg.Peek(it.Kind)
			mv, _ := model.Value(ri, it.Kind)
			if err != nil {
				t.Fatalf("%s: r%d/%s Peek error %v", at, ri, it.Kind, err)
			}
			if f, ok := v.(float64); !ok || f != mv {
				t.Fatalf("%s: r%d/%s value %v (%T), model %v", at, ri, it.Kind, v, v, mv)
			}
			compareDeps(t, at, sys, model, ri, it.Kind)
		}
	}
	if errs := core.VerifyIntegrity(extCounts(sys.Wl, subs), sys.BaseRegs()...); len(errs) > 0 {
		t.Fatalf("%s: integrity violations: %v", at, errs)
	}
	if err := core.ScopesUnlocked(sys.Regs...); err != nil {
		t.Fatalf("%s: %v", at, err)
	}
}

// compareDeps checks the live dependency edges of one included item
// against the model's resolved groups, as multisets.
func compareDeps(t *testing.T, at string, sys *System, model *Model, ri int, kind core.Kind) {
	t.Helper()
	refs, ok := sys.Regs[ri].Dependencies(kind)
	if !ok {
		t.Fatalf("%s: r%d/%s included but Dependencies reports not", at, ri, kind)
	}
	got := make(map[core.ItemKey]int)
	for _, d := range refs {
		got[core.ItemKey{Registry: d.RegistryID, Kind: d.Kind}]++
	}
	want := make(map[core.ItemKey]int)
	it := model.items[ikey{ri, kind}]
	for _, g := range it.depGroups {
		for _, dk := range g {
			want[core.ItemKey{Registry: sys.Wl.Regs[dk.reg].ID, Kind: dk.kind}]++
		}
	}
	if len(got) != len(want) {
		t.Fatalf("%s: r%d/%s deps %v, model %v", at, ri, kind, got, want)
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("%s: r%d/%s deps %v, model %v", at, ri, kind, got, want)
		}
	}
}

// checkClean verifies a fully-released graph: no included items, no
// integrity violations, no held component locks, and handler
// create/remove conservation.
func checkClean(t *testing.T, at string, sys *System) {
	t.Helper()
	for ri := range sys.Wl.Regs {
		if inc := sys.Regs[ri].Included(); len(inc) > 0 {
			t.Fatalf("%s: registry %s still includes %v", at, sys.Wl.Regs[ri].ID, inc)
		}
	}
	if errs := core.VerifyIntegrity(map[core.ItemKey]int{}, sys.BaseRegs()...); len(errs) > 0 {
		t.Fatalf("%s: integrity violations: %v", at, errs)
	}
	if err := core.ScopesUnlocked(sys.Regs...); err != nil {
		t.Fatalf("%s: %v", at, err)
	}
	st := sys.Env.Stats().Snapshot()
	if st.HandlersCreated != st.HandlersRemoved {
		t.Fatalf("%s: %d handlers created, %d removed (leak)", at, st.HandlersCreated, st.HandlersRemoved)
	}
}

// checkWindowLogs verifies the Figure 4 isolation condition on every
// periodic handler instance: the windows tile time — the initial
// window is empty at the subscription instant, and each subsequent
// window begins exactly where the previous ended and strictly
// advances. Items in skip (fault victims whose panicked windows are
// unlogged) are exempt.
func checkWindowLogs(t *testing.T, at string, sys *System, skip map[ikey]bool) {
	t.Helper()
	for _, l := range sys.WindowLogs() {
		if skip[l.Item] {
			continue
		}
		wins := l.Windows()
		if len(wins) == 0 {
			t.Errorf("%s: %v: periodic handler computed no initial window", at, l.Item)
			continue
		}
		if wins[0][0] != wins[0][1] {
			t.Errorf("%s: %v: initial window %v not empty", at, l.Item, wins[0])
		}
		for i := 1; i < len(wins); i++ {
			if wins[i][0] != wins[i-1][1] {
				t.Errorf("%s: %v: window %d %v does not continue %v (gap or overlap)",
					at, l.Item, i, wins[i], wins[i-1])
			}
			if wins[i][1] <= wins[i][0] {
				t.Errorf("%s: %v: window %d %v does not advance", at, l.Item, i, wins[i])
			}
		}
	}
}

// RunConcurrent drives one seeded workload through the real system
// from `workers` goroutines over a pool updater, then checks the
// quiescent state: the op mix is commutative (all subscriptions are
// valid and module/definition state is fixed), so the final structure
// must equal the model's closure of the surviving subscriptions
// regardless of interleaving. Values of periodic and triggered items
// are schedule-dependent and are checked for integrity (tiling,
// readability), not for exact equality.
func RunConcurrent(t *testing.T, seed int64, workers int, extra ...core.EnvOption) {
	t.Helper()
	wl := Generate(seed, Config{Ops: 40 * workers, Concurrent: true})
	u := core.NewPoolUpdater(workers)
	defer u.Stop()
	sys := NewSystem(wl, u, nil, extra...)

	// Partition the script: clock advances all go to worker 0 (the
	// virtual clock forbids re-entrant advancement), the rest round-
	// robin.
	scripts := make([][]Op, workers)
	rr := 0
	for _, op := range wl.Ops {
		w := 0
		if op.Kind != OpAdvance {
			w = rr % workers
			rr++
		}
		scripts[w] = append(scripts[w], op)
	}

	survivors := make([][]heldSub, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var subs []heldSub
			for _, op := range scripts[w] {
				switch op.Kind {
				case OpSubscribe:
					sub, err := sys.Regs[op.Reg].Subscribe(op.Item)
					if err != nil {
						t.Errorf("seed=%d worker %d: %s failed: %v", seed, w, op, err)
						continue
					}
					subs = append(subs, heldSub{sub: sub, key: ikey{op.Reg, op.Item}})
				case OpUnsubscribe:
					if len(subs) == 0 {
						continue
					}
					idx := int(op.Arg) % len(subs)
					subs[idx].sub.Unsubscribe()
					subs = append(subs[:idx], subs[idx+1:]...)
				case OpAdvance:
					sys.Clk.Advance(clock.Duration(op.Arg))
				case OpFireEvent:
					sys.Regs[op.Reg].FireEvent(op.Event)
				case OpNotifyChanged:
					sys.Regs[op.Reg].NotifyChanged(op.Item)
				case OpRead:
					// Mid-run reads must never observe a corrupt
					// snapshot: a clean float64 or ErrUnsubscribed.
					v, err := sys.Regs[op.Reg].Peek(op.Item)
					if err != nil {
						if !errors.Is(err, core.ErrUnsubscribed) {
							t.Errorf("seed=%d worker %d: %s: %v", seed, w, op, err)
						}
						continue
					}
					if _, ok := v.(float64); !ok {
						t.Errorf("seed=%d worker %d: %s: corrupt value %v (%T)", seed, w, op, v, v)
					}
				}
			}
			survivors[w] = subs
		}(w)
	}
	wg.Wait()
	sys.Env.Quiesce()

	var subs []heldSub
	for _, s := range survivors {
		subs = append(subs, s...)
	}
	at := fmt.Sprintf("seed=%d quiescent", seed)

	// Quiescent structural equivalence: replay only the surviving
	// subscriptions into a fresh model; inclusion sets and refcounts
	// must match exactly.
	model := NewModel(wl)
	for _, s := range subs {
		if err := model.Subscribe(s.key.reg, s.key.kind); err != nil {
			t.Fatalf("%s: model rejects surviving subscription %v: %v", at, s.key, err)
		}
	}
	for ri := range wl.Regs {
		reg := sys.Regs[ri]
		for _, it := range wl.Regs[ri].Items {
			inc, minc := reg.IsIncluded(it.Kind), model.IsIncluded(ri, it.Kind)
			if inc != minc {
				t.Fatalf("%s: r%d/%s included=%v, model=%v", at, ri, it.Kind, inc, minc)
			}
			if !inc {
				continue
			}
			if got, want := reg.Refs(it.Kind), model.Refs(ri, it.Kind); got != want {
				t.Fatalf("%s: r%d/%s refs=%d, model=%d", at, ri, it.Kind, got, want)
			}
			if v, err := reg.Peek(it.Kind); err != nil {
				t.Fatalf("%s: r%d/%s Peek error %v", at, ri, it.Kind, err)
			} else if _, ok := v.(float64); !ok {
				t.Fatalf("%s: r%d/%s corrupt value %v (%T)", at, ri, it.Kind, v, v)
			}
			compareDeps(t, at, sys, model, ri, it.Kind)
		}
	}
	if errs := core.VerifyIntegrity(extCounts(wl, subs), sys.BaseRegs()...); len(errs) > 0 {
		t.Fatalf("%s: integrity violations: %v", at, errs)
	}
	if err := core.ScopesUnlocked(sys.Regs...); err != nil {
		t.Fatalf("%s: %v", at, err)
	}
	checkWindowLogs(t, fmt.Sprintf("seed=%d", seed), sys, nil)

	for _, s := range subs {
		s.sub.Unsubscribe()
	}
	checkClean(t, fmt.Sprintf("seed=%d teardown", seed), sys)
}
