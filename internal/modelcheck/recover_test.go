package modelcheck

import (
	"fmt"
	"testing"
)

// Kill-matrix: arbitrary op boundaries across seeds, with the
// checkpoint placed before, at, and far from the kill point so the
// WAL-tail replay length varies from zero to the whole script.
func TestCrashRecoveryKillMatrix(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 5, 8} {
		for _, kill := range []int{1, 7, 20, 45, 1 << 30} {
			for _, ckptFrac := range []int{0, 2, 1} { // none, kill/2, at kill
				ckpt := 0
				if ckptFrac > 0 {
					ckpt = kill / ckptFrac
				}
				seed, kill, ckpt := seed, kill, ckpt
				t.Run(fmt.Sprintf("seed%d_ckpt%d_kill%d", seed, ckpt, kill), func(t *testing.T) {
					t.Parallel()
					RunCrashRecovery(t, seed, ckpt, kill)
				})
			}
		}
	}
}

// Torn-write fault injection: every truncation class plus mid-record
// bit flips, each recovering to the exact durable op-boundary prefix.
func TestCrashRecoveryTornWrites(t *testing.T) {
	cases := map[string]func(wal []byte) []byte{
		"whole": func(b []byte) []byte { return b },
		"empty": func([]byte) []byte { return nil },
		"half": func(b []byte) []byte {
			return b[:len(b)/2]
		},
		"minus-one-byte": func(b []byte) []byte {
			if len(b) == 0 {
				return b
			}
			return b[:len(b)-1]
		},
		"header-only-tail": func(b []byte) []byte {
			if len(b) < 5 {
				return b
			}
			return b[:len(b)*3/4]
		},
		"bit-flip-middle": func(b []byte) []byte {
			if len(b) == 0 {
				return b
			}
			b[len(b)/2] ^= 0x10
			return b
		},
		"bit-flip-early": func(b []byte) []byte {
			if len(b) < 16 {
				return b
			}
			b[9] ^= 0x01 // inside the first record's payload
			return b
		},
	}
	for name, mutate := range cases {
		for _, seed := range []int64{4, 11} {
			name, mutate, seed := name, mutate, seed
			t.Run(fmt.Sprintf("%s_seed%d", name, seed), func(t *testing.T) {
				t.Parallel()
				RunTornWrite(t, seed, mutate)
			})
		}
	}
}
