package resource

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/stream"
)

var intSchema = stream.Schema{Name: "ints", Fields: []stream.Field{{Name: "v", Type: "int"}}}

type plan struct {
	g          *graph.Graph
	vc         *clock.Virtual
	src1, src2 *ops.Source
	w1, w2     *ops.TimeWindow
	join       *ops.Join
}

func newPlan(rate float64, win clock.Duration) *plan {
	vc := clock.NewVirtual()
	g := graph.New(core.NewEnv(vc))
	p := &plan{g: g, vc: vc}
	p.src1 = ops.NewSource(g, "s1", intSchema, rate, 0)
	p.src2 = ops.NewSource(g, "s2", intSchema, rate, 0)
	p.w1 = ops.NewTimeWindow(g, "w1", intSchema, win, 0)
	p.w2 = ops.NewTimeWindow(g, "w2", intSchema, win, 0)
	p.join = ops.NewJoin(g, "join", intSchema, intSchema,
		func(l, r stream.Tuple) bool { return true }, 0)
	sink := ops.NewSink(g, "sink", p.join.Schema(), nil, 0, 0, 0)
	g.Connect(p.src1, p.w1)
	g.Connect(p.src2, p.w2)
	g.Connect(p.w1, p.join)
	g.Connect(p.w2, p.join)
	g.Connect(p.join, sink)
	costmodel.Install(g)
	return p
}

func TestWindowAdaptorShrinksToBound(t *testing.T) {
	p := newPlan(0.5, 100) // estMem = 2 * 0.5*100*32 = 3200
	bound := 800.0
	a, err := NewWindowAdaptor(p.g.Env(), p.join.Registry(), []*ops.TimeWindow{p.w1, p.w2}, bound, 10)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	est, _ := p.join.Registry().Subscribe(costmodel.KindEstMem)
	defer est.Unsubscribe()

	before, _ := est.Float()
	if before <= bound {
		t.Fatalf("test setup: estMem %v should exceed bound %v", before, bound)
	}
	if !a.Adjust() {
		t.Fatal("Adjust did not change windows")
	}
	after, _ := est.Float()
	if after > bound*1.01 {
		t.Fatalf("estMem %v still above bound %v after adjustment", after, bound)
	}
	if p.w1.Size() >= 100 {
		t.Fatalf("window not shrunk: %d", p.w1.Size())
	}
	if a.Adjustments() != 1 {
		t.Fatalf("Adjustments = %d, want 1", a.Adjustments())
	}
}

func TestWindowAdaptorGrowsBackWithHeadroom(t *testing.T) {
	p := newPlan(0.5, 100)
	a, err := NewWindowAdaptor(p.g.Env(), p.join.Registry(), []*ops.TimeWindow{p.w1, p.w2}, 800, 10)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.Adjust()
	shrunk := p.w1.Size()

	// Capacity increase: raise the bound; windows grow back toward
	// the preferred 100, never beyond.
	a.bound = 1e9
	a.Adjust()
	if p.w1.Size() != 100 {
		t.Fatalf("window = %d after headroom, want preferred 100 (was %d)", p.w1.Size(), shrunk)
	}
	if a.Scale() != 1 {
		t.Fatalf("scale = %v, want 1", a.Scale())
	}
}

func TestWindowAdaptorRunsOnTicker(t *testing.T) {
	p := newPlan(0.5, 100)
	a, err := NewWindowAdaptor(p.g.Env(), p.join.Registry(), []*ops.TimeWindow{p.w1, p.w2}, 800, 10)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	p.vc.Advance(10)
	if a.Adjustments() == 0 {
		t.Fatal("ticker did not run an adjustment")
	}
}

func TestWindowAdaptorValidation(t *testing.T) {
	p := newPlan(0.5, 100)
	if _, err := NewWindowAdaptor(p.g.Env(), p.join.Registry(), nil, 100, 10); err == nil {
		t.Fatal("accepted empty window list")
	}
	if _, err := NewWindowAdaptor(p.g.Env(), p.join.Registry(), []*ops.TimeWindow{p.w1}, 0, 10); err == nil {
		t.Fatal("accepted zero bound")
	}
}

func TestWindowAdaptorCloseReleasesSubscription(t *testing.T) {
	p := newPlan(0.5, 100)
	a, _ := NewWindowAdaptor(p.g.Env(), p.join.Registry(), []*ops.TimeWindow{p.w1, p.w2}, 800, 10)
	if !p.join.Registry().IsIncluded(costmodel.KindEstMem) {
		t.Fatal("estMem not included")
	}
	a.Close()
	if p.join.Registry().IsIncluded(costmodel.KindEstMem) {
		t.Fatal("estMem still included after Close")
	}
}

// TestLoadShedderBoundsMeasuredCPU runs an overloaded join behind a
// sampler; the shedder must raise the drop probability until the
// measured CPU usage falls to the capacity.
func TestLoadShedderBoundsMeasuredCPU(t *testing.T) {
	vc := clock.NewVirtual()
	g := graph.New(core.NewEnv(vc))
	src1 := ops.NewSource(g, "s1", intSchema, 0, 100)
	src2 := ops.NewSource(g, "s2", intSchema, 0, 100)
	sampler := ops.NewSampler(g, "shed", intSchema, 0, 7, 100)
	w1 := ops.NewTimeWindow(g, "w1", intSchema, 200, 100)
	w2 := ops.NewTimeWindow(g, "w2", intSchema, 200, 100)
	join := ops.NewJoin(g, "join", intSchema, intSchema,
		func(l, r stream.Tuple) bool { return true }, 100)
	sink := ops.NewSink(g, "sink", join.Schema(), nil, 0, 0, 0)
	g.Connect(src1, sampler)
	g.Connect(sampler, w1)
	g.Connect(src2, w2)
	g.Connect(w1, join)
	g.Connect(w2, join)
	g.Connect(join, sink)

	shed, err := NewLoadShedder(g.Env(), join.Registry(), ops.KindMeasuredCPU, sampler, 5, 100)
	if err != nil {
		t.Fatal(err)
	}
	defer shed.Close()

	e := engine.New(g, vc)
	e.Bind(src1, stream.NewConstantRate(0, 2, 0))
	e.Bind(src2, stream.NewConstantRate(1, 2, 0))

	load, _ := join.Registry().Subscribe(ops.KindMeasuredCPU)
	defer load.Unsubscribe()

	e.RunUntil(1000)
	unshed, _ := load.Float()

	e.RunUntil(10000)
	final, _ := load.Float()
	if final > 5*1.5 {
		t.Fatalf("measured CPU %v still far above capacity 5 (was %v before shedding settled)", final, unshed)
	}
	if sampler.DropProbability() <= 0 {
		t.Fatal("shedder never raised the drop probability")
	}
	if shed.Steps() == 0 {
		t.Fatal("no control steps ran")
	}
}

func TestLoadShedderValidation(t *testing.T) {
	vc := clock.NewVirtual()
	g := graph.New(core.NewEnv(vc))
	sampler := ops.NewSampler(g, "shed", intSchema, 0, 7, 100)
	if _, err := NewLoadShedder(g.Env(), sampler.Registry(), ops.KindMeasuredCPU, sampler, 0, 10); err == nil {
		t.Fatal("accepted zero capacity")
	}
	if _, err := NewLoadShedder(g.Env(), sampler.Registry(), "missing", sampler, 5, 10); err == nil {
		t.Fatal("accepted unknown load item")
	}
}

func TestLoadShedderStopsSheddingWhenLoadVanishes(t *testing.T) {
	vc := clock.NewVirtual()
	g := graph.New(core.NewEnv(vc))
	sampler := ops.NewSampler(g, "shed", intSchema, 0.8, 7, 100)
	// A load item we control directly.
	load := 0.0
	sampler.Registry().MustDefine(&core.Definition{
		Kind: "load",
		Build: func(*core.BuildContext) (core.Handler, error) {
			return core.NewOnDemand(func(clock.Time) (core.Value, error) { return load, nil }), nil
		},
	})
	shed, err := NewLoadShedder(g.Env(), sampler.Registry(), "load", sampler, 5, 100)
	if err != nil {
		t.Fatal(err)
	}
	defer shed.Close()
	// No measurable load: the drop probability decays toward zero.
	for i := 0; i < 20; i++ {
		shed.Step()
	}
	if p := sampler.DropProbability(); p > 0.01 {
		t.Fatalf("dropP = %v after idle decay, want ~0", p)
	}
	// Extreme overload: the pass fraction is clamped above zero so the
	// controller can recover.
	load = 1e9
	for i := 0; i < 20; i++ {
		shed.Step()
	}
	if p := sampler.DropProbability(); p >= 1 {
		t.Fatalf("dropP = %v, want < 1 (pass fraction clamped)", p)
	}
}
