// Package resource implements the adaptive resource-management
// consumers of the metadata framework: an adaptive window-size manager
// (the approach of [9] sketched in Section 3.3, which adjusts window
// sizes at runtime and relies on the triggered re-estimation of the
// cost model) and a load shedder ([21], the paper's second motivating
// application, driven by resource-usage metadata).
package resource

import (
	"errors"
	"sync"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/ops"
)

// WindowAdaptor keeps a join's estimated memory usage under a bound by
// scaling the sizes of the windows feeding it. Every adjustment fires
// the window-change events that re-estimate the cost model (Section
// 3.3), so the adaptor reads a fresh estimate in the same step.
type WindowAdaptor struct {
	windows   []*ops.TimeWindow
	preferred []clock.Duration
	bound     float64
	est       *core.Subscription
	ticker    *clock.Ticker

	mu          sync.Mutex
	adjustments int
	scale       float64
}

// NewWindowAdaptor subscribes to the join's estimated memory usage and
// adjusts the given windows every period so the estimate stays at or
// below bound. Close releases the subscription.
func NewWindowAdaptor(env *core.Env, joinReg *core.Registry, windows []*ops.TimeWindow, bound float64, period clock.Duration) (*WindowAdaptor, error) {
	if bound <= 0 {
		return nil, errors.New("resource: memory bound must be positive")
	}
	if len(windows) == 0 {
		return nil, errors.New("resource: no windows to adapt")
	}
	est, err := joinReg.Subscribe(costmodel.KindEstMem)
	if err != nil {
		return nil, err
	}
	a := &WindowAdaptor{
		windows: windows,
		bound:   bound,
		est:     est,
		scale:   1,
	}
	for _, w := range windows {
		a.preferred = append(a.preferred, w.Size())
	}
	a.ticker = clock.NewTicker(env.Clock(), period, func(clock.Time) { a.Adjust() })
	return a, nil
}

// Adjust performs one control step: if the estimated memory exceeds
// the bound, windows shrink proportionally; if there is headroom,
// windows grow back toward their preferred sizes. It reports whether
// any window size changed.
func (a *WindowAdaptor) Adjust() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	est, err := a.est.Float()
	if err != nil || est <= 0 {
		return false
	}
	// The estimate is linear in the window sizes, so the corrective
	// scale is simply bound/est relative to the current scale.
	target := a.scale * a.bound / est
	if target > 1 {
		target = 1 // never exceed the preferred sizes
	}
	if target < 1e-3 {
		target = 1e-3
	}
	if target == a.scale {
		return false
	}
	a.scale = target
	changed := false
	for i, w := range a.windows {
		size := clock.Duration(float64(a.preferred[i]) * a.scale)
		if size < 1 {
			size = 1
		}
		if size != w.Size() {
			w.SetSize(size)
			changed = true
		}
	}
	if changed {
		a.adjustments++
	}
	return changed
}

// Adjustments returns how many control steps changed a window size.
func (a *WindowAdaptor) Adjustments() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.adjustments
}

// Scale returns the current window scale in (0, 1].
func (a *WindowAdaptor) Scale() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.scale
}

// Close stops the adaptor and releases its metadata subscription.
func (a *WindowAdaptor) Close() {
	if a.ticker != nil {
		a.ticker.Stop()
	}
	a.est.Unsubscribe()
}

// LoadShedder keeps a measured load metric (typically the measured CPU
// usage of an expensive operator) at or below a capacity by adjusting
// a sampler's drop probability — load shedding driven by runtime
// resource metadata.
type LoadShedder struct {
	sampler  *ops.Sampler
	load     *core.Subscription
	capacity float64
	gain     float64
	ticker   *clock.Ticker

	mu    sync.Mutex
	steps int
}

// NewLoadShedder subscribes to the load item (kind) at the monitored
// node's registry and runs one control step per period.
func NewLoadShedder(env *core.Env, monitored *core.Registry, kind core.Kind, sampler *ops.Sampler, capacity float64, period clock.Duration) (*LoadShedder, error) {
	if capacity <= 0 {
		return nil, errors.New("resource: capacity must be positive")
	}
	load, err := monitored.Subscribe(kind)
	if err != nil {
		return nil, err
	}
	s := &LoadShedder{
		sampler:  sampler,
		load:     load,
		capacity: capacity,
		gain:     0.5,
	}
	s.ticker = clock.NewTicker(env.Clock(), period, func(clock.Time) { s.Step() })
	return s, nil
}

// Step performs one control iteration. The controller is
// multiplicative in the pass fraction (1 - dropP): since the shed load
// scales with the fraction of elements passed, the fixed point of
// pass' = pass * capacity/load is exactly load = capacity. The gain
// damps the move toward that target so the controller stays stable
// despite the measurement lag of the periodic load item.
func (s *LoadShedder) Step() {
	load, err := s.load.Float()
	if err != nil {
		return
	}
	s.mu.Lock()
	s.steps++
	s.mu.Unlock()
	pass := 1 - s.sampler.DropProbability()
	var target float64
	if load <= 0 {
		target = 1 // no measurable load: stop shedding
	} else {
		target = pass * s.capacity / load
	}
	if target > 1 {
		target = 1
	}
	if target < 0.01 {
		target = 0.01
	}
	newPass := pass + s.gain*(target-pass)
	s.sampler.SetDropProbability(1 - newPass)
}

// Steps returns how many control iterations have run.
func (s *LoadShedder) Steps() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.steps
}

// Close stops the shedder and releases its metadata subscription.
func (s *LoadShedder) Close() {
	if s.ticker != nil {
		s.ticker.Stop()
	}
	s.load.Unsubscribe()
}
