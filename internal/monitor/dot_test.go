package monitor

import (
	"strings"
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/stream"
)

// fig3Plan builds the Figure 3 join plan with the cost model and one
// estCPU subscription.
func fig3Plan(t *testing.T) (*graph.Graph, *core.Subscription) {
	t.Helper()
	vc := clock.NewVirtual()
	g := graph.New(core.NewEnv(vc))
	s1 := ops.NewSource(g, "s1", intSchema, 0.1, 0)
	s2 := ops.NewSource(g, "s2", intSchema, 0.2, 0)
	w1 := ops.NewTimeWindow(g, "w1", intSchema, 100, 0)
	w2 := ops.NewTimeWindow(g, "w2", intSchema, 50, 0)
	j := ops.NewJoin(g, "join", intSchema, intSchema,
		func(l, r stream.Tuple) bool { return true }, 0)
	sink := ops.NewSink(g, "sink", j.Schema(), nil, 0, 0, 0)
	g.Connect(s1, w1)
	g.Connect(s2, w2)
	g.Connect(w1, j)
	g.Connect(w2, j)
	g.Connect(j, sink)
	costmodel.Install(g)
	sub, err := j.Registry().Subscribe(costmodel.KindEstCPU)
	if err != nil {
		t.Fatal(err)
	}
	return g, sub
}

func TestDependencyDOTRendersFigure3(t *testing.T) {
	g, sub := fig3Plan(t)
	defer sub.Unsubscribe()
	dot := DependencyDOT(g)
	for _, want := range []string{
		"digraph metadata",
		"estimatedCPUUsage",  // the subscribed item
		"estElementValidity", // included via inter-node dependency
		"windowSize",         // included via intra-node dependency
		"(triggered)",        // mechanism labels
		"(on-demand)",
		`"join#4/estimatedCPUUsage" -> "w1#2/estElementValidity";`, // a concrete inter-node edge
	} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
	// The estimated output rate of the join is available but unused:
	// it must not appear.
	if strings.Contains(dot, "join#4/estOutputRate") {
		t.Fatal("unused item rendered")
	}
}

func TestDependencyDOTIncludesModules(t *testing.T) {
	vc := clock.NewVirtual()
	g := graph.New(core.NewEnv(vc))
	j := ops.NewJoin(g, "join", intSchema, intSchema,
		func(l, r stream.Tuple) bool { return true }, 0)
	sub, err := j.Registry().Subscribe(ops.KindMemUsage)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Unsubscribe()
	dot := DependencyDOT(g)
	if !strings.Contains(dot, "/left/memUsage") || !strings.Contains(dot, "/right/memUsage") {
		t.Fatalf("module items missing from DOT:\n%s", dot)
	}
}

func TestDependencyDOTEmptyGraph(t *testing.T) {
	vc := clock.NewVirtual()
	g := graph.New(core.NewEnv(vc))
	ops.NewSource(g, "s", intSchema, 0, 0)
	dot := DependencyDOT(g)
	if !strings.HasPrefix(dot, "digraph metadata") || strings.Contains(dot, "subgraph") {
		t.Fatalf("empty graph DOT wrong:\n%s", dot)
	}
}

func TestIntrospectionAPIs(t *testing.T) {
	g, sub := fig3Plan(t)
	defer sub.Unsubscribe()
	var join graph.Node
	for _, n := range g.Nodes() {
		if n.Name() == "join" {
			join = n
		}
	}
	deps, ok := join.Registry().Dependencies(costmodel.KindEstCPU)
	if !ok || len(deps) != 5 {
		t.Fatalf("Dependencies = %v, %v; want 5 deps", deps, ok)
	}
	ref, ok := join.Registry().Ref(costmodel.KindEstCPU)
	if !ok || ref.Mechanism != core.TriggeredMechanism {
		t.Fatalf("Ref = %+v, %v", ref, ok)
	}
	// Dependents of a window's validity item include the join's CPU
	// estimate.
	var w1 graph.Node
	for _, n := range g.Nodes() {
		if n.Name() == "w1" {
			w1 = n
		}
	}
	dents, ok := w1.Registry().Dependents(costmodel.KindEstValidity)
	if !ok || len(dents) != 1 || dents[0].Kind != costmodel.KindEstCPU {
		t.Fatalf("Dependents = %v, %v", dents, ok)
	}
	if _, ok := w1.Registry().Dependencies("nope"); ok {
		t.Fatal("Dependencies reported an absent item")
	}
	if _, ok := w1.Registry().Dependents("nope"); ok {
		t.Fatal("Dependents reported an absent item")
	}
	if _, ok := w1.Registry().Ref("nope"); ok {
		t.Fatal("Ref reported an absent item")
	}
}
