package monitor

import (
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
)

// ItemSnapshot is the captured state of one included metadata item.
type ItemSnapshot struct {
	// Kind is the item kind.
	Kind string `json:"kind"`
	// Mechanism is the handler's update mechanism.
	Mechanism string `json:"mechanism"`
	// Value is the current value (numbers as float64, everything else
	// stringified). A quarantined item reports its last-good value
	// here, with Health/StaleFor flagging the degradation.
	Value any `json:"value"`
	// Error carries a failed read.
	Error string `json:"error,omitempty"`
	// Refs is the item's subscription count.
	Refs int `json:"refs"`
	// Health is the item's breaker state ("degraded", "quarantined",
	// "probing"); omitted while healthy.
	Health string `json:"health,omitempty"`
	// StaleFor is how long a quarantined item has been serving its
	// last-good value, in clock units; 0 unless quarantined/probing.
	StaleFor int64 `json:"staleFor,omitempty"`
}

// NodeSnapshot captures one registry (node or module).
type NodeSnapshot struct {
	// Registry is the registry identifier.
	Registry string `json:"registry"`
	// Type is the node type ("source", "operator", "sink", "module").
	Type string `json:"type"`
	// Items holds the included items in kind order.
	Items []ItemSnapshot `json:"items"`
}

// Snapshot captures the complete metadata state of the graph: every
// included item of every node and module with its current value — the
// raw material of the paper's system-profiling application ("analysis
// gives insight into system behavior", Section 1).
func Snapshot(g *graph.Graph) []NodeSnapshot {
	var out []NodeSnapshot
	var capture func(r *core.Registry, typ string)
	capture = func(r *core.Registry, typ string) {
		ns := NodeSnapshot{Registry: r.ID(), Type: typ}
		for _, kind := range r.Included() {
			item := ItemSnapshot{Kind: string(kind), Refs: r.Refs(kind)}
			if mech, ok := r.Mechanism(kind); ok {
				item.Mechanism = mech.String()
			}
			if hs, ok := r.Health(kind); ok && hs.State != core.Healthy {
				item.Health = hs.State.String()
				item.StaleFor = int64(hs.StaleFor)
			}
			// Peek reads the live value without subscription churn:
			// monitoring never perturbs reference counts or takes the
			// structural locks of the scopes it observes.
			v, err := r.Peek(kind)
			if err != nil {
				item.Error = err.Error()
				if !errors.Is(err, core.ErrStale) {
					v = nil
				}
			}
			switch v.(type) {
			case float64, int, int64, bool, string, nil:
				item.Value = v
			default:
				item.Value = fmt.Sprint(v)
			}
			ns.Items = append(ns.Items, item)
		}
		if len(ns.Items) > 0 {
			out = append(out, ns)
		}
		for _, name := range r.Modules() {
			capture(r.ModuleRegistry(name), "module")
		}
	}
	for _, n := range g.Nodes() {
		capture(n.Registry(), n.Type().String())
	}
	return out
}

// SnapshotJSON renders the snapshot as indented JSON.
func SnapshotJSON(g *graph.Graph) ([]byte, error) {
	return json.MarshalIndent(Snapshot(g), "", "  ")
}
