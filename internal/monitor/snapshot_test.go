package monitor

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/stream"
)

func TestSnapshotCapturesIncludedItems(t *testing.T) {
	vc := clock.NewVirtual()
	g := graph.New(core.NewEnv(vc))
	f := ops.NewFilter(g, "f", intSchema, func(stream.Tuple) bool { return true }, 50)
	sub, _ := f.Registry().Subscribe(ops.KindAvgInputRate)
	defer sub.Unsubscribe()
	implSub, _ := f.Registry().Subscribe(ops.KindImplType)
	defer implSub.Unsubscribe()

	snaps := Snapshot(g)
	if len(snaps) != 1 {
		t.Fatalf("snapshots = %d, want 1 (only the filter has items)", len(snaps))
	}
	ns := snaps[0]
	if ns.Type != "operator" {
		t.Fatalf("type = %s", ns.Type)
	}
	kinds := map[string]ItemSnapshot{}
	for _, it := range ns.Items {
		kinds[it.Kind] = it
	}
	// avgInputRate plus its auto-included dependency inputRate, plus
	// implType.
	if len(kinds) != 3 {
		t.Fatalf("items = %v, want 3", kinds)
	}
	if kinds["avgInputRate"].Mechanism != "triggered" {
		t.Fatalf("avgInputRate mechanism = %s", kinds["avgInputRate"].Mechanism)
	}
	if kinds["implType"].Value != "filter" {
		t.Fatalf("implType value = %v", kinds["implType"].Value)
	}
	// Snapshot's temporary subscriptions must not change refcounts.
	if got := f.Registry().Refs(ops.KindAvgInputRate); got != 1 {
		t.Fatalf("Refs changed by snapshot: %d", got)
	}
}

func TestSnapshotIncludesModules(t *testing.T) {
	vc := clock.NewVirtual()
	g := graph.New(core.NewEnv(vc))
	j := ops.NewJoin(g, "join", intSchema, intSchema,
		func(l, r stream.Tuple) bool { return true }, 0)
	sub, _ := j.Registry().Subscribe(ops.KindMemUsage)
	defer sub.Unsubscribe()
	snaps := Snapshot(g)
	var moduleSeen bool
	for _, ns := range snaps {
		if ns.Type == "module" {
			moduleSeen = true
		}
	}
	if !moduleSeen {
		t.Fatal("module registries missing from snapshot")
	}
}

func TestSnapshotJSONRoundTrips(t *testing.T) {
	vc := clock.NewVirtual()
	g := graph.New(core.NewEnv(vc))
	f := ops.NewFilter(g, "f", intSchema, func(stream.Tuple) bool { return true }, 50)
	sub, _ := f.Registry().Subscribe(ops.KindCountIn)
	defer sub.Unsubscribe()
	raw, err := SnapshotJSON(g)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "countIn") {
		t.Fatalf("JSON missing item:\n%s", raw)
	}
	var decoded []NodeSnapshot
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
}

func TestSnapshotReportsQuarantine(t *testing.T) {
	vc := clock.NewVirtual()
	env := core.NewEnv(vc, core.WithBreaker(core.BreakerPolicy{
		FailureThreshold: 2,
		FailureWindow:    1000,
		ProbeBackoff:     5,
		MaxProbeBackoff:  40,
	}))
	g := graph.New(env)
	f := ops.NewFilter(g, "f", intSchema, func(stream.Tuple) bool { return true }, 0)
	fail := false
	f.Registry().MustDefine(&core.Definition{
		Kind: "flaky",
		Build: func(*core.BuildContext) (core.Handler, error) {
			return core.NewPeriodic(10, func(a, b clock.Time) (core.Value, error) {
				if fail {
					panic("injected")
				}
				return 7.0, nil
			}), nil
		},
	})
	sub, err := f.Registry().Subscribe("flaky")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Unsubscribe()

	fail = true
	vc.Advance(20) // two panicking boundaries trip the breaker at t=20
	vc.Advance(3)  // stale age grows while quarantined (probe due at 25)

	var item ItemSnapshot
	found := false
	for _, ns := range Snapshot(g) {
		for _, it := range ns.Items {
			if it.Kind == "flaky" {
				item, found = it, true
			}
		}
	}
	if !found {
		t.Fatal("flaky item missing from snapshot")
	}
	if item.Health != "quarantined" {
		t.Fatalf("Health = %q, want quarantined", item.Health)
	}
	if item.StaleFor != 3 {
		t.Fatalf("StaleFor = %d, want 3", item.StaleFor)
	}
	if item.Value != any(7.0) {
		t.Fatalf("Value = %v, want last-good 7", item.Value)
	}
	if !strings.Contains(item.Error, "stale") {
		t.Fatalf("Error = %q, want stale tag", item.Error)
	}

	raw, err := SnapshotJSON(g)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"health": "quarantined"`) {
		t.Fatalf("JSON missing health field:\n%s", raw)
	}
}

func TestSnapshotEmptyGraph(t *testing.T) {
	vc := clock.NewVirtual()
	g := graph.New(core.NewEnv(vc))
	ops.NewSource(g, "s", intSchema, 0, 0)
	if snaps := Snapshot(g); len(snaps) != 0 {
		t.Fatalf("snapshot of idle graph = %v, want empty", snaps)
	}
}
