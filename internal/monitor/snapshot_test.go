package monitor

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/stream"
)

func TestSnapshotCapturesIncludedItems(t *testing.T) {
	vc := clock.NewVirtual()
	g := graph.New(core.NewEnv(vc))
	f := ops.NewFilter(g, "f", intSchema, func(stream.Tuple) bool { return true }, 50)
	sub, _ := f.Registry().Subscribe(ops.KindAvgInputRate)
	defer sub.Unsubscribe()
	implSub, _ := f.Registry().Subscribe(ops.KindImplType)
	defer implSub.Unsubscribe()

	snaps := Snapshot(g)
	if len(snaps) != 1 {
		t.Fatalf("snapshots = %d, want 1 (only the filter has items)", len(snaps))
	}
	ns := snaps[0]
	if ns.Type != "operator" {
		t.Fatalf("type = %s", ns.Type)
	}
	kinds := map[string]ItemSnapshot{}
	for _, it := range ns.Items {
		kinds[it.Kind] = it
	}
	// avgInputRate plus its auto-included dependency inputRate, plus
	// implType.
	if len(kinds) != 3 {
		t.Fatalf("items = %v, want 3", kinds)
	}
	if kinds["avgInputRate"].Mechanism != "triggered" {
		t.Fatalf("avgInputRate mechanism = %s", kinds["avgInputRate"].Mechanism)
	}
	if kinds["implType"].Value != "filter" {
		t.Fatalf("implType value = %v", kinds["implType"].Value)
	}
	// Snapshot's temporary subscriptions must not change refcounts.
	if got := f.Registry().Refs(ops.KindAvgInputRate); got != 1 {
		t.Fatalf("Refs changed by snapshot: %d", got)
	}
}

func TestSnapshotIncludesModules(t *testing.T) {
	vc := clock.NewVirtual()
	g := graph.New(core.NewEnv(vc))
	j := ops.NewJoin(g, "join", intSchema, intSchema,
		func(l, r stream.Tuple) bool { return true }, 0)
	sub, _ := j.Registry().Subscribe(ops.KindMemUsage)
	defer sub.Unsubscribe()
	snaps := Snapshot(g)
	var moduleSeen bool
	for _, ns := range snaps {
		if ns.Type == "module" {
			moduleSeen = true
		}
	}
	if !moduleSeen {
		t.Fatal("module registries missing from snapshot")
	}
}

func TestSnapshotJSONRoundTrips(t *testing.T) {
	vc := clock.NewVirtual()
	g := graph.New(core.NewEnv(vc))
	f := ops.NewFilter(g, "f", intSchema, func(stream.Tuple) bool { return true }, 50)
	sub, _ := f.Registry().Subscribe(ops.KindCountIn)
	defer sub.Unsubscribe()
	raw, err := SnapshotJSON(g)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "countIn") {
		t.Fatalf("JSON missing item:\n%s", raw)
	}
	var decoded []NodeSnapshot
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
}

func TestSnapshotEmptyGraph(t *testing.T) {
	vc := clock.NewVirtual()
	g := graph.New(core.NewEnv(vc))
	ops.NewSource(g, "s", intSchema, 0, 0)
	if snaps := Snapshot(g); len(snaps) != 0 {
		t.Fatalf("snapshot of idle graph = %v, want empty", snaps)
	}
}
