package monitor

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/graph"
)

// DependencyDOT renders the live metadata dependency graph — every
// included item across all nodes and their modules, with an edge from
// each item to the items it depends on — in Graphviz DOT format. The
// output is the Figure 3 picture for the running system: one cluster
// per graph node, items labeled with their update mechanism.
func DependencyDOT(g *graph.Graph) string {
	var b strings.Builder
	b.WriteString("digraph metadata {\n")
	b.WriteString("  rankdir=BT;\n")
	b.WriteString("  node [shape=box, fontsize=10];\n")

	var regs []*core.Registry
	var collect func(r *core.Registry)
	collect = func(r *core.Registry) {
		regs = append(regs, r)
		for _, name := range r.Modules() {
			collect(r.ModuleRegistry(name))
		}
	}
	for _, n := range g.Nodes() {
		collect(n.Registry())
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i].ID() < regs[j].ID() })

	id := func(ref core.ItemRef) string {
		return fmt.Sprintf("%q", ref.RegistryID+"/"+string(ref.Kind))
	}
	var edges []string
	for ci, r := range regs {
		included := r.Included()
		if len(included) == 0 {
			continue
		}
		fmt.Fprintf(&b, "  subgraph cluster_%d {\n", ci)
		fmt.Fprintf(&b, "    label=%q;\n", r.ID())
		for _, kind := range included {
			ref, ok := r.Ref(kind)
			if !ok {
				continue
			}
			fmt.Fprintf(&b, "    %s [label=\"%s\\n(%s)\"];\n", id(ref), kind, ref.Mechanism)
			deps, _ := r.Dependencies(kind)
			for _, d := range deps {
				edges = append(edges, fmt.Sprintf("  %s -> %s;", id(ref), id(d)))
			}
		}
		b.WriteString("  }\n")
	}
	sort.Strings(edges)
	for _, e := range edges {
		b.WriteString(e + "\n")
	}
	b.WriteString("}\n")
	return b.String()
}
