// Package monitor implements the monitoring and profiling consumers of
// Section 1's fourth motivating application: a time-series recorder
// that subscribes to metadata items and samples them on the clock
// (e.g. the monitoring tool of Section 2.5 plotting estimated vs.
// measured CPU usage of a join), and inventory/profiling helpers that
// expose which metadata is available and included per node — metadata
// discovery per Section 2.2.
package monitor

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/graph"
)

// Sample is one recorded metadata value.
type Sample struct {
	// At is the sampling time.
	At clock.Time
	// Value is the metadata value at that time.
	Value float64
	// Err records a failed read (Value is 0 then).
	Err error
}

// Series is the recorded history of one tracked item.
type Series struct {
	// Name labels the series.
	Name string
	// Samples holds the recorded values in time order.
	Samples []Sample
}

// Last returns the most recent sample (zero Sample if empty).
func (s *Series) Last() Sample {
	if len(s.Samples) == 0 {
		return Sample{}
	}
	return s.Samples[len(s.Samples)-1]
}

// Mean returns the mean of the successfully recorded values.
func (s *Series) Mean() float64 {
	sum, n := 0.0, 0
	for _, sm := range s.Samples {
		if sm.Err == nil {
			sum += sm.Value
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Max returns the maximum recorded value.
func (s *Series) Max() float64 {
	max := 0.0
	for i, sm := range s.Samples {
		if sm.Err == nil && (i == 0 || sm.Value > max) {
			max = sm.Value
		}
	}
	return max
}

// tracked pairs a series with its subscription.
type tracked struct {
	name string
	sub  *core.Subscription
}

// Recorder samples subscribed metadata items at a fixed period. It is
// itself a metadata consumer: tracking an item subscribes to it (and
// so includes its dependency closure), and Close unsubscribes.
type Recorder struct {
	env    *core.Env
	every  clock.Duration
	ticker *clock.Ticker

	mu      sync.Mutex
	order   []string
	tracks  map[string]*tracked
	series  map[string]*Series
	stopped bool
}

// NewRecorder creates a recorder sampling every period time units.
func NewRecorder(env *core.Env, period clock.Duration) *Recorder {
	r := &Recorder{
		env:    env,
		every:  period,
		tracks: make(map[string]*tracked),
		series: make(map[string]*Series),
	}
	r.ticker = clock.NewTicker(env.Clock(), period, func(now clock.Time) { r.Sample(now) })
	return r
}

// Track subscribes to the item and starts recording it under name.
func (r *Recorder) Track(name string, reg *core.Registry, kind core.Kind) error {
	sub, err := reg.Subscribe(kind)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.tracks[name]; dup {
		sub.Unsubscribe()
		return fmt.Errorf("monitor: series %q already tracked", name)
	}
	r.order = append(r.order, name)
	r.tracks[name] = &tracked{name: name, sub: sub}
	r.series[name] = &Series{Name: name}
	return nil
}

// Sample records one value per tracked item at the given time.
func (r *Recorder) Sample(now clock.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stopped {
		return
	}
	for _, name := range r.order {
		tr := r.tracks[name]
		v, err := tr.sub.Float()
		r.series[name].Samples = append(r.series[name].Samples, Sample{At: now, Value: v, Err: err})
	}
}

// Series returns the recorded series by name, or nil.
func (r *Recorder) Series(name string) *Series {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.series[name]
}

// Names returns the tracked series names in tracking order.
func (r *Recorder) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// WriteCSV emits the recorded series as a time-aligned CSV table.
func (r *Recorder) WriteCSV(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, err := fmt.Fprintf(w, "time,%s\n", strings.Join(r.order, ",")); err != nil {
		return err
	}
	if len(r.order) == 0 {
		return nil
	}
	n := len(r.series[r.order[0]].Samples)
	for i := 0; i < n; i++ {
		row := make([]string, 0, len(r.order)+1)
		row = append(row, fmt.Sprint(r.series[r.order[0]].Samples[i].At))
		for _, name := range r.order {
			ss := r.series[name].Samples
			if i < len(ss) {
				row = append(row, fmt.Sprintf("%g", ss[i].Value))
			} else {
				row = append(row, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Close stops sampling and releases all subscriptions.
func (r *Recorder) Close() {
	r.ticker.Stop()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stopped {
		return
	}
	r.stopped = true
	for _, tr := range r.tracks {
		tr.sub.Unsubscribe()
	}
}

// NodeInventory describes the metadata surface of one node: what it
// can provide and what is currently provided.
type NodeInventory struct {
	// Node is the node's name and id label.
	Node string
	// Type is the node type.
	Type graph.NodeType
	// Available lists every defined item kind.
	Available []core.Kind
	// Included lists the kinds currently having handlers.
	Included []core.Kind
}

// Inventory walks the graph and reports each node's metadata surface —
// the discovery facility of Section 2.2.
func Inventory(g *graph.Graph) []NodeInventory {
	var out []NodeInventory
	for _, n := range g.Nodes() {
		out = append(out, NodeInventory{
			Node:      n.Registry().ID(),
			Type:      n.Type(),
			Available: n.Registry().Available(),
			Included:  n.Registry().Included(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// FormatInventory renders the inventory as a fixed-width table.
func FormatInventory(inv []NodeInventory) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %-9s %9s %9s  included items\n", "node", "type", "available", "included")
	for _, ni := range inv {
		kinds := make([]string, len(ni.Included))
		for i, k := range ni.Included {
			kinds[i] = string(k)
		}
		fmt.Fprintf(&b, "%-24s %-9s %9d %9d  %s\n",
			ni.Node, ni.Type, len(ni.Available), len(ni.Included), strings.Join(kinds, ","))
	}
	return b.String()
}

// OverheadProfile summarizes framework activity between two stats
// snapshots — the profiling view of the metadata subsystem itself.
type OverheadProfile struct {
	// Window is the profiled activity delta.
	Window core.Snapshot
	// Duration is the profiled time span.
	Duration clock.Duration
	// At is the instant the window closed — the reference point for
	// age-style gauges like checkpoint age.
	At clock.Time
}

// UpdatesPerTimeUnit returns the maintenance operations per time unit.
func (p OverheadProfile) UpdatesPerTimeUnit() float64 {
	if p.Duration <= 0 {
		return 0
	}
	return float64(p.Window.UpdateWork()) / float64(p.Duration)
}

// MeanBatchSize returns the mean number of periodic ticks per scope
// batch in the profiled window — how much same-instant work the
// batched update pipeline amortized per dispatch.
func (p OverheadProfile) MeanBatchSize() float64 { return p.Window.MeanBatchSize() }

// PlanHitRate returns the fraction of trigger propagations in the
// window served from a cached propagation plan.
func (p OverheadProfile) PlanHitRate() float64 { return p.Window.PlanHitRate() }

// MemoHitRate returns the fraction of memoized on-demand reads in the
// window served from the versioned memo without recomputing.
func (p OverheadProfile) MemoHitRate() float64 { return p.Window.MemoHitRate() }

// DeltaHitRate returns the fraction of delta-aggregate refreshes in
// the window served by the O(1) pair-apply path instead of a full
// fold.
func (p OverheadProfile) DeltaHitRate() float64 { return p.Window.DeltaHitRate() }

// FormatReadPath renders the window's versioned-read-path counters as a
// one-line summary: memo hits and misses, the resulting hit rate, and
// reads coalesced onto another reader's in-flight compute.
func (p OverheadProfile) FormatReadPath() string {
	return fmt.Sprintf("memoHits=%d memoMisses=%d memoHitRate=%.3f coalescedReads=%d",
		p.Window.MemoHits, p.Window.MemoMisses, p.MemoHitRate(), p.Window.CoalescedReads)
}

// FormatPipeline renders the window's batched-update-pipeline counters
// as a one-line summary.
func (p OverheadProfile) FormatPipeline() string {
	return fmt.Sprintf("scopeBatches=%d batchedTicks=%d meanBatch=%.1f planHits=%d planMisses=%d hitRate=%.3f",
		p.Window.ScopeBatches, p.Window.BatchedTicks, p.MeanBatchSize(),
		p.Window.PlanCacheHits, p.Window.PlanCacheMisses, p.PlanHitRate())
}

// FormatDelta renders the window's delta-propagation counters as a
// one-line summary: O(1) pair-apply fires, exact full-fold fallbacks,
// scheduled drift rebases, and the resulting hit rate.
func (p OverheadProfile) FormatDelta() string {
	return fmt.Sprintf("deltaFires=%d deltaFallbacks=%d deltaRebases=%d deltaHitRate=%.3f",
		p.Window.DeltaFires, p.Window.DeltaFallbacks, p.Window.DeltaRebases, p.DeltaHitRate())
}

// FormatAdaptive renders the window's adaptive-maintenance counters as
// a one-line summary: live mechanism migrations and the handler churn
// they (and subscription churn) caused.
func (p OverheadProfile) FormatAdaptive() string {
	return fmt.Sprintf("migrations=%d handlersCreated=%d handlersRemoved=%d",
		p.Window.Migrations, p.Window.HandlersCreated, p.Window.HandlersRemoved)
}

// FormatHealth renders the window's degraded-operation counters as a
// one-line summary: compute deadline hits, fenced late results,
// breaker activity, and updater backpressure (shed scope batches plus
// the bounded queue's current depth and high-water mark — the two
// gauges report end-of-window state, not a delta).
func (p OverheadProfile) FormatHealth() string {
	return fmt.Sprintf("timeouts=%d lateResults=%d trips=%d recoveries=%d shedTicks=%d queueDepth=%d queueHighWater=%d",
		p.Window.Timeouts, p.Window.LateResults,
		p.Window.BreakerTrips, p.Window.BreakerRecoveries,
		p.Window.ShedTicks, p.Window.QueueDepth, p.Window.QueueHighWater)
}

// FormatWatch renders the window's fan-out counters as a one-line
// summary: registered watchers (a gauge: end-of-window state), sweep
// wakeups that ran, publications coalesced into pending wakeups,
// notifications shed onto full subscriber rings, and
// snapshot-then-delta catch-ups.
func (p OverheadProfile) FormatWatch() string {
	return fmt.Sprintf("watchers=%d wakeups=%d coalescedWakeups=%d shedNotifies=%d catchUps=%d",
		p.Window.Watchers, p.Window.Wakeups, p.Window.CoalescedWakeups,
		p.Window.ShedNotifies, p.Window.CatchUps)
}

// FormatMux renders the window's network-tier counters as a one-line
// summary: live mux sessions (a gauge: end-of-window state), batched
// event frames written with the events they carried and the resulting
// amortization factor (events per write), heartbeats sent, and —
// when this process is a relay — upstream events republished locally
// and completed reconnect-with-resume cycles.
func (p OverheadProfile) FormatMux() string {
	epf := 0.0
	if p.Window.MuxFrames > 0 {
		epf = float64(p.Window.MuxEvents) / float64(p.Window.MuxFrames)
	}
	return fmt.Sprintf("muxSessions=%d muxFrames=%d muxEvents=%d eventsPerFrame=%.1f heartbeats=%d relayEvents=%d relayResumes=%d",
		p.Window.MuxSessions, p.Window.MuxFrames, p.Window.MuxEvents, epf,
		p.Window.MuxHeartbeats, p.Window.RelayEvents, p.Window.RelayResumes)
}

// FormatDurability renders the window's durable-plane counters as a
// one-line summary: WAL appends in the window and the current segment
// size, checkpoints written with the age of the newest one
// (checkpointAge=-1 means no checkpoint yet), and recovery activity.
func (p OverheadProfile) FormatDurability() string {
	age := int64(-1)
	if p.Window.CheckpointAt > 0 {
		age = int64(p.At.Sub(clock.Time(p.Window.CheckpointAt)))
	}
	return fmt.Sprintf("walRecords=%d walBytes=%d checkpoints=%d checkpointAge=%d recoveries=%d restoredStale=%d",
		p.Window.WALRecords, p.Window.WALBytes, p.Window.Checkpoints,
		age, p.Window.Recoveries, p.Window.RestoredStale)
}

// Profiler captures framework overhead over a time window.
type Profiler struct {
	env   *core.Env
	start core.Snapshot
	since clock.Time
}

// NewProfiler begins profiling now.
func NewProfiler(env *core.Env) *Profiler {
	return &Profiler{env: env, start: env.Stats().Snapshot(), since: env.Now()}
}

// Stop returns the profile since construction (or the last Reset).
func (p *Profiler) Stop() OverheadProfile {
	return OverheadProfile{
		Window:   p.env.Stats().Snapshot().Sub(p.start),
		Duration: p.env.Now().Sub(p.since),
		At:       p.env.Now(),
	}
}

// Reset restarts the profiling window.
func (p *Profiler) Reset() {
	p.start = p.env.Stats().Snapshot()
	p.since = p.env.Now()
}
