package monitor

import (
	"strings"
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/stream"
	"repro/internal/watch"
)

var intSchema = stream.Schema{Name: "ints", Fields: []stream.Field{{Name: "v", Type: "int"}}}

func testSetup() (*core.Env, *clock.Virtual, *core.Registry) {
	vc := clock.NewVirtual()
	env := core.NewEnv(vc)
	r := env.NewRegistry("n")
	r.MustDefine(&core.Definition{
		Kind: "clockValue",
		Build: func(*core.BuildContext) (core.Handler, error) {
			return core.NewOnDemand(func(now clock.Time) (core.Value, error) {
				return float64(now), nil
			}), nil
		},
	})
	return env, vc, r
}

func TestRecorderSamplesPeriodically(t *testing.T) {
	env, vc, r := testSetup()
	rec := NewRecorder(env, 10)
	defer rec.Close()
	if err := rec.Track("cv", r, "clockValue"); err != nil {
		t.Fatal(err)
	}
	vc.Advance(35)
	s := rec.Series("cv")
	if len(s.Samples) != 3 {
		t.Fatalf("recorded %d samples, want 3", len(s.Samples))
	}
	if s.Samples[0].Value != 10 || s.Samples[2].Value != 30 {
		t.Fatalf("samples = %v", s.Samples)
	}
	if s.Last().Value != 30 {
		t.Fatalf("Last = %v", s.Last())
	}
	if s.Mean() != 20 {
		t.Fatalf("Mean = %v, want 20", s.Mean())
	}
	if s.Max() != 30 {
		t.Fatalf("Max = %v, want 30", s.Max())
	}
}

func TestRecorderTrackSubscribes(t *testing.T) {
	env, _, r := testSetup()
	rec := NewRecorder(env, 10)
	rec.Track("cv", r, "clockValue")
	if !r.IsIncluded("clockValue") {
		t.Fatal("Track did not subscribe")
	}
	rec.Close()
	if r.IsIncluded("clockValue") {
		t.Fatal("Close did not unsubscribe")
	}
}

func TestRecorderRejectsDuplicatesAndUnknown(t *testing.T) {
	env, _, r := testSetup()
	rec := NewRecorder(env, 10)
	defer rec.Close()
	if err := rec.Track("cv", r, "clockValue"); err != nil {
		t.Fatal(err)
	}
	if err := rec.Track("cv", r, "clockValue"); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if err := rec.Track("x", r, "missing"); err == nil {
		t.Fatal("unknown item accepted")
	}
	if got := rec.Names(); len(got) != 1 || got[0] != "cv" {
		t.Fatalf("Names = %v", got)
	}
}

func TestRecorderCSV(t *testing.T) {
	env, vc, r := testSetup()
	rec := NewRecorder(env, 10)
	defer rec.Close()
	rec.Track("cv", r, "clockValue")
	vc.Advance(20)
	var b strings.Builder
	if err := rec.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d, want 3:\n%s", len(lines), b.String())
	}
	if lines[0] != "time,cv" || lines[1] != "10,10" {
		t.Fatalf("CSV content wrong:\n%s", b.String())
	}
}

func TestEmptySeriesStats(t *testing.T) {
	s := &Series{Name: "e"}
	if s.Mean() != 0 || s.Max() != 0 || s.Last().At != 0 {
		t.Fatal("empty series stats should be zero")
	}
}

func TestInventoryReportsIncludedItems(t *testing.T) {
	vc := clock.NewVirtual()
	g := graph.New(core.NewEnv(vc))
	f := ops.NewFilter(g, "f", intSchema, func(stream.Tuple) bool { return true }, 0)
	sub, _ := f.Registry().Subscribe(ops.KindInputRate)
	defer sub.Unsubscribe()

	inv := Inventory(g)
	if len(inv) != 1 {
		t.Fatalf("inventory over %d nodes, want 1", len(inv))
	}
	ni := inv[0]
	if len(ni.Available) == 0 {
		t.Fatal("no available items reported")
	}
	found := false
	for _, k := range ni.Included {
		if k == ops.KindInputRate {
			found = true
		}
	}
	if !found {
		t.Fatalf("included items %v missing inputRate", ni.Included)
	}
	out := FormatInventory(inv)
	if !strings.Contains(out, "inputRate") || !strings.Contains(out, "operator") {
		t.Fatalf("formatted inventory missing content:\n%s", out)
	}
}

func TestProfilerMeasuresUpdateWork(t *testing.T) {
	env, vc, _ := testSetup()
	r2 := env.NewRegistry("p")
	r2.MustDefine(&core.Definition{
		Kind: "tick",
		Build: func(*core.BuildContext) (core.Handler, error) {
			return core.NewPeriodic(10, func(a, b clock.Time) (core.Value, error) { return 1.0, nil }), nil
		},
	})
	sub, _ := r2.Subscribe("tick")
	defer sub.Unsubscribe()

	p := NewProfiler(env)
	vc.Advance(100)
	prof := p.Stop()
	if prof.Window.PeriodicUpdates != 10 {
		t.Fatalf("PeriodicUpdates = %d, want 10", prof.Window.PeriodicUpdates)
	}
	if prof.Duration != 100 {
		t.Fatalf("Duration = %d, want 100", prof.Duration)
	}
	if got := prof.UpdatesPerTimeUnit(); got != 0.1 {
		t.Fatalf("UpdatesPerTimeUnit = %v, want 0.1", got)
	}
	p.Reset()
	if got := p.Stop().Window.PeriodicUpdates; got != 0 {
		t.Fatalf("after Reset: %d updates, want 0", got)
	}
}

func TestOverheadProfileHealth(t *testing.T) {
	vc := clock.NewVirtual()
	env := core.NewEnv(vc, core.WithBreaker(core.BreakerPolicy{
		FailureThreshold: 2,
		FailureWindow:    1000,
		ProbeBackoff:     5,
		MaxProbeBackoff:  40,
	}))
	r := env.NewRegistry("p")
	fail := false
	r.MustDefine(&core.Definition{
		Kind: "flaky",
		Build: func(*core.BuildContext) (core.Handler, error) {
			return core.NewPeriodic(10, func(a, b clock.Time) (core.Value, error) {
				if fail {
					panic("injected")
				}
				return 7.0, nil
			}), nil
		},
	})
	sub, err := r.Subscribe("flaky")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Unsubscribe()

	p := NewProfiler(env)
	fail = true
	vc.Advance(20) // two panicking boundaries: degraded at 10, tripped at 20
	prof := p.Stop()
	if prof.Window.BreakerTrips != 1 {
		t.Fatalf("BreakerTrips = %d, want 1", prof.Window.BreakerTrips)
	}
	line := prof.FormatHealth()
	for _, want := range []string{"trips=1", "timeouts=0", "recoveries=0", "shedTicks=0"} {
		if !strings.Contains(line, want) {
			t.Fatalf("FormatHealth() = %q, missing %q", line, want)
		}
	}

	// Recovery: heal and let the probe (armed at t=25) close the
	// breaker; a fresh window shows the recovery, not the old trip.
	p.Reset()
	fail = false
	vc.Advance(5)
	prof = p.Stop()
	if prof.Window.BreakerTrips != 0 || prof.Window.BreakerRecoveries != 1 {
		t.Fatalf("after recovery: trips=%d recoveries=%d, want 0/1",
			prof.Window.BreakerTrips, prof.Window.BreakerRecoveries)
	}
	if line := prof.FormatHealth(); !strings.Contains(line, "recoveries=1") {
		t.Fatalf("FormatHealth() = %q, missing recoveries=1", line)
	}
}

func TestOverheadProfileAdaptive(t *testing.T) {
	vc := clock.NewVirtual()
	env := core.NewEnv(vc)
	r := env.NewRegistry("p")
	compute := func(*core.BuildContext) core.ComputeFunc {
		return func(clock.Time) (core.Value, error) { return 7.0, nil }
	}
	r.MustDefine(&core.Definition{
		Kind: "adaptable",
		Adapt: &core.AdaptSpec{
			OnDemand:  compute,
			Triggered: compute,
		},
		Build: func(ctx *core.BuildContext) (core.Handler, error) {
			return core.NewOnDemand(compute(ctx)), nil
		},
	})
	sub, err := r.Subscribe("adaptable")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Unsubscribe()

	p := NewProfiler(env)
	if err := r.Migrate("adaptable", core.TriggeredMechanism, 0); err != nil {
		t.Fatal(err)
	}
	prof := p.Stop()
	if prof.Window.Migrations != 1 {
		t.Fatalf("Migrations = %d, want 1", prof.Window.Migrations)
	}
	line := prof.FormatAdaptive()
	for _, want := range []string{"migrations=1", "handlersCreated=1", "handlersRemoved=1"} {
		if !strings.Contains(line, want) {
			t.Fatalf("FormatAdaptive() = %q, missing %q", line, want)
		}
	}
}

func TestOverheadProfileWatch(t *testing.T) {
	vc := clock.NewVirtual()
	env := core.NewEnv(vc)
	r := env.NewRegistry("p")
	r.MustDefine(&core.Definition{
		Kind: "item",
		Build: func(*core.BuildContext) (core.Handler, error) {
			return core.NewTriggered(func(clock.Time) (core.Value, error) { return 7.0, nil }), nil
		},
	})

	p := NewProfiler(env)
	h := watch.NewHub(env)
	defer h.Close()
	w, err := h.Watch(r, "item", watch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	r.NotifyChanged("item")
	h.Barrier()
	prof := p.Stop()
	if prof.Window.Watchers != 1 || prof.Window.CatchUps != 1 {
		t.Fatalf("Watchers=%d CatchUps=%d, want 1/1", prof.Window.Watchers, prof.Window.CatchUps)
	}
	line := prof.FormatWatch()
	for _, want := range []string{"watchers=1", "catchUps=1", "wakeups=", "coalescedWakeups=", "shedNotifies=0"} {
		if !strings.Contains(line, want) {
			t.Fatalf("FormatWatch() = %q, missing %q", line, want)
		}
	}
}

func TestOverheadProfileZeroDuration(t *testing.T) {
	var p OverheadProfile
	if p.UpdatesPerTimeUnit() != 0 {
		t.Fatal("zero-duration profile should report 0")
	}
}

func TestOverheadProfilePipeline(t *testing.T) {
	env, vc, _ := testSetup()
	r2 := env.NewRegistry("p")
	for _, kind := range []core.Kind{"tickA", "tickB"} {
		kind := kind
		r2.MustDefine(&core.Definition{
			Kind: kind,
			Build: func(*core.BuildContext) (core.Handler, error) {
				return core.NewPeriodic(10, func(a, b clock.Time) (core.Value, error) { return 1.0, nil }), nil
			},
		})
	}
	subA, _ := r2.Subscribe("tickA")
	defer subA.Unsubscribe()
	subB, _ := r2.Subscribe("tickB")
	defer subB.Unsubscribe()

	p := NewProfiler(env)
	vc.Advance(100)
	prof := p.Stop()
	// Two same-boundary handlers in one scope: one batch of two ticks
	// per boundary.
	if prof.Window.ScopeBatches != 10 || prof.Window.BatchedTicks != 20 {
		t.Fatalf("ScopeBatches=%d BatchedTicks=%d, want 10/20", prof.Window.ScopeBatches, prof.Window.BatchedTicks)
	}
	if got := prof.MeanBatchSize(); got != 2 {
		t.Fatalf("MeanBatchSize = %v, want 2", got)
	}
	line := prof.FormatPipeline()
	for _, want := range []string{"scopeBatches=10", "batchedTicks=20", "meanBatch=2.0"} {
		if !strings.Contains(line, want) {
			t.Fatalf("FormatPipeline() = %q, missing %q", line, want)
		}
	}
}

func TestOverheadProfileDurability(t *testing.T) {
	vc := clock.NewVirtual()
	env := core.NewEnv(vc)
	p := NewProfiler(env)

	// Simulate durable-plane activity the way persist reports it.
	st := env.Stats()
	st.WALRecords.Add(3)
	st.WALBytes.Store(120)
	st.Checkpoints.Add(1)
	vc.Advance(50)
	st.CheckpointAt.Store(int64(env.Now()) - 10)
	st.Recoveries.Add(1)
	st.RestoredStale.Add(2)

	line := p.Stop().FormatDurability()
	for _, want := range []string{
		"walRecords=3", "walBytes=120", "checkpoints=1",
		"checkpointAge=10", "recoveries=1", "restoredStale=2",
	} {
		if !strings.Contains(line, want) {
			t.Fatalf("FormatDurability() = %q, missing %q", line, want)
		}
	}

	// No checkpoint yet: age is -1, not a bogus now-zero delta.
	fresh := NewProfiler(core.NewEnv(clock.NewVirtual())).Stop()
	if line := fresh.FormatDurability(); !strings.Contains(line, "checkpointAge=-1") {
		t.Fatalf("FormatDurability() = %q, want checkpointAge=-1", line)
	}
}
