package ops

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/stream"
)

var intSchema = stream.Schema{Name: "ints", Fields: []stream.Field{{Name: "v", Type: "int"}}}

func newTestGraph() (*graph.Graph, *clock.Virtual) {
	vc := clock.NewVirtual()
	return graph.New(core.NewEnv(vc)), vc
}

func el(v int, ts clock.Time) stream.Element {
	return stream.NewElement(stream.Tuple{v}, ts)
}

func TestSourceEmitCountsAndDeclaredRate(t *testing.T) {
	g, _ := newTestGraph()
	s := NewSource(g, "src", intSchema, 0.1, 0)
	sub, err := s.Registry().Subscribe(KindCountOut)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Unsubscribe()
	for i := 0; i < 5; i++ {
		out := s.Emit(el(i, clock.Time(i)))
		if out.Tuple[0] != i {
			t.Fatal("Emit altered the element")
		}
	}
	if v, _ := sub.Float(); v != 5 {
		t.Fatalf("countOut = %v, want 5", v)
	}
	dr, _ := s.Registry().Subscribe(KindDeclaredRate)
	defer dr.Unsubscribe()
	if v, _ := dr.Float(); v != 0.1 {
		t.Fatalf("declaredRate = %v, want 0.1", v)
	}
	if s.DeclaredRate() != 0.1 {
		t.Fatal("DeclaredRate accessor wrong")
	}
}

func TestFilterPredicate(t *testing.T) {
	g, _ := newTestGraph()
	f := NewFilter(g, "f", intSchema, func(tp stream.Tuple) bool { return tp[0].(int)%2 == 0 }, 0)
	var out []stream.Element
	for i := 0; i < 10; i++ {
		out = append(out, f.Process(el(i, clock.Time(i)), 0)...)
	}
	if len(out) != 5 {
		t.Fatalf("filter passed %d elements, want 5", len(out))
	}
	for _, e := range out {
		if e.Tuple[0].(int)%2 != 0 {
			t.Fatalf("filter passed odd element %v", e)
		}
	}
}

func TestFilterSelectivityMetadata(t *testing.T) {
	g, vc := newTestGraph()
	f := NewFilter(g, "f", intSchema, func(tp stream.Tuple) bool { return tp[0].(int) < 25 }, 100)
	sub, err := f.Registry().Subscribe(KindSelectivity)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Unsubscribe()
	// 100 elements in window [0,100): 25 pass -> selectivity 0.25.
	for i := 0; i < 100; i++ {
		i := i
		vc.Schedule(clock.Time(i), func(now clock.Time) {
			f.Process(el(i, now), 0)
		})
	}
	vc.Advance(100)
	if v, _ := sub.Float(); v != 0.25 {
		t.Fatalf("selectivity = %v, want 0.25", v)
	}
}

func TestMapTransforms(t *testing.T) {
	g, _ := newTestGraph()
	m := NewMap(g, "m", intSchema, func(tp stream.Tuple) stream.Tuple {
		return stream.Tuple{tp[0].(int) * 10}
	}, 0)
	out := m.Process(el(3, 7), 0)
	if len(out) != 1 || out[0].Tuple[0] != 30 {
		t.Fatalf("map output = %v", out)
	}
	if out[0].TS != 7 {
		t.Fatal("map altered timestamp")
	}
}

func TestUnionPassesAllPorts(t *testing.T) {
	g, _ := newTestGraph()
	u := NewUnion(g, "u", intSchema, 0)
	a := u.Process(el(1, 1), 0)
	b := u.Process(el(2, 2), 1)
	if len(a) != 1 || len(b) != 1 {
		t.Fatal("union dropped elements")
	}
}

func TestSinkDeliversAndQoS(t *testing.T) {
	g, _ := newTestGraph()
	var got []stream.Element
	s := NewSink(g, "k", intSchema, func(e stream.Element) { got = append(got, e) }, 500, 3, 0)
	s.Process(el(1, 1), 0)
	s.Process(el(2, 2), 0)
	if len(got) != 2 {
		t.Fatalf("sink delivered %d, want 2", len(got))
	}
	q, _ := s.Registry().Subscribe(KindQoSLatency)
	defer q.Unsubscribe()
	if v, _ := q.Float(); v != 500 {
		t.Fatalf("qosLatency = %v, want 500", v)
	}
	p, _ := s.Registry().Subscribe(KindQoSPriority)
	defer p.Unsubscribe()
	if v, _ := p.Float(); v != 3 {
		t.Fatalf("qosPriority = %v, want 3", v)
	}
}

func TestTimeWindowAssignsValidity(t *testing.T) {
	g, _ := newTestGraph()
	w := NewTimeWindow(g, "w", intSchema, 100, 0)
	out := w.Process(el(1, 10), 0)
	if len(out) != 1 || out[0].TS != 10 || out[0].End != 110 {
		t.Fatalf("window output = %v, want validity [10,110)", out)
	}
}

func TestTimeWindowSetSizeFiresEvent(t *testing.T) {
	g, _ := newTestGraph()
	w := NewTimeWindow(g, "w", intSchema, 100, 0)
	r := w.Registry()
	// estValidity is a triggered item over windowSize, refreshed by
	// the window-change event (Figure 3 / Section 3.3).
	r.MustDefine(&core.Definition{
		Kind:   "estValidity",
		Deps:   []core.DepRef{core.Dep(core.Self(), KindWindowSize)},
		Events: []string{EventWindowChanged},
		Build: func(ctx *core.BuildContext) (core.Handler, error) {
			dep := ctx.Dep(0)
			return core.NewTriggered(func(clock.Time) (core.Value, error) { return dep.Float() }), nil
		},
	})
	sub, err := r.Subscribe("estValidity")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Unsubscribe()
	if v, _ := sub.Float(); v != 100 {
		t.Fatalf("estValidity = %v, want 100", v)
	}
	w.SetSize(40)
	if v, _ := sub.Float(); v != 40 {
		t.Fatalf("estValidity = %v, want 40 after SetSize", v)
	}
	if w.Size() != 40 {
		t.Fatal("Size() not updated")
	}
	out := w.Process(el(1, 0), 0)
	if out[0].End != 40 {
		t.Fatalf("element End = %d, want 40", out[0].End)
	}
}

func TestTimeWindowInvalidSizePanics(t *testing.T) {
	g, _ := newTestGraph()
	defer func() {
		if recover() == nil {
			t.Fatal("zero window size did not panic")
		}
	}()
	NewTimeWindow(g, "w", intSchema, 0, 0)
}

func TestCountWindowEmitsWithDelay(t *testing.T) {
	g, _ := newTestGraph()
	w := NewCountWindow(g, "w", intSchema, 3, 0)
	var out []stream.Element
	for i := 0; i < 5; i++ {
		out = append(out, w.Process(el(i, clock.Time(i*10)), 0)...)
	}
	// Elements 0 and 1 expire when elements 3 and 4 arrive.
	if len(out) != 2 {
		t.Fatalf("count window emitted %d, want 2", len(out))
	}
	if out[0].Tuple[0] != 0 || out[0].TS != 0 || out[0].End != 30 {
		t.Fatalf("first emission = %v, want value 0 valid [0,30)", out[0])
	}
	if out[1].Tuple[0] != 1 || out[1].End != 40 {
		t.Fatalf("second emission = %v, want value 1 valid [10,40)", out[1])
	}
	// Flush releases the rest.
	rest := w.Flush(100)
	if len(rest) != 3 {
		t.Fatalf("Flush emitted %d, want 3", len(rest))
	}
	if rest[0].Tuple[0] != 2 || rest[0].End != 100 {
		t.Fatalf("flushed = %v", rest[0])
	}
	if w.N() != 3 {
		t.Fatal("N accessor wrong")
	}
}

func TestCountWindowStateSizeMetadata(t *testing.T) {
	g, _ := newTestGraph()
	w := NewCountWindow(g, "w", intSchema, 10, 0)
	sub, _ := w.Registry().Subscribe(KindStateSize)
	defer sub.Unsubscribe()
	for i := 0; i < 4; i++ {
		w.Process(el(i, clock.Time(i)), 0)
	}
	if v, _ := sub.Float(); v != 4 {
		t.Fatalf("stateSize = %v, want 4", v)
	}
}

func TestCountWindowInvalidNPanics(t *testing.T) {
	g, _ := newTestGraph()
	defer func() {
		if recover() == nil {
			t.Fatal("count window n=0 did not panic")
		}
	}()
	NewCountWindow(g, "w", intSchema, 0, 0)
}

func TestSamplerDropsDeterministically(t *testing.T) {
	g, _ := newTestGraph()
	s := NewSampler(g, "s", intSchema, 0.5, 42, 0)
	passed := 0
	for i := 0; i < 1000; i++ {
		if len(s.Process(el(i, clock.Time(i)), 0)) > 0 {
			passed++
		}
	}
	if passed < 400 || passed > 600 {
		t.Fatalf("passed %d of 1000 at p=0.5", passed)
	}
	// Drop counter metadata.
	d, _ := s.Registry().Subscribe(KindCountDropped)
	defer d.Unsubscribe()
	if v, _ := d.Float(); v != 0 {
		// The probe was inactive during the loop above, so it counted
		// nothing — activation-gated monitoring.
		t.Fatalf("countDropped = %v, want 0 (probe was inactive)", v)
	}
	for i := 0; i < 100; i++ {
		s.Process(el(i, clock.Time(i)), 0)
	}
	if v, _ := d.Float(); v == 0 {
		t.Fatal("countDropped stayed 0 while probe active")
	}
}

func TestSamplerSetDropProbabilityClamps(t *testing.T) {
	g, _ := newTestGraph()
	s := NewSampler(g, "s", intSchema, 0, 1, 0)
	s.SetDropProbability(1.5)
	if s.DropProbability() != 1 {
		t.Fatal("not clamped to 1")
	}
	s.SetDropProbability(-0.5)
	if s.DropProbability() != 0 {
		t.Fatal("not clamped to 0")
	}
	if len(s.Process(el(1, 1), 0)) != 1 {
		t.Fatal("p=0 sampler dropped an element")
	}
	s.SetDropProbability(1)
	if len(s.Process(el(1, 1), 0)) != 0 {
		t.Fatal("p=1 sampler passed an element")
	}
}

func TestSamplerInvalidProbabilityPanics(t *testing.T) {
	g, _ := newTestGraph()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid probability did not panic")
		}
	}()
	NewSampler(g, "s", intSchema, 2, 1, 0)
}

func TestInputRateMetadataOnOperator(t *testing.T) {
	g, vc := newTestGraph()
	f := NewFilter(g, "f", intSchema, func(stream.Tuple) bool { return true }, 50)
	sub, _ := f.Registry().Subscribe(KindInputRate)
	defer sub.Unsubscribe()
	// 1 element per 10 units -> rate 0.1 (Figure 4's scenario).
	for i := 0; i < 20; i++ {
		i := i
		vc.Schedule(clock.Time(i*10+5), func(now clock.Time) {
			f.Process(el(i, now), 0)
		})
	}
	vc.Advance(200)
	if v, _ := sub.Float(); v != 0.1 {
		t.Fatalf("inputRate = %v, want exactly 0.1", v)
	}
}

func TestAvgInputRateTriggeredByInputRate(t *testing.T) {
	g, vc := newTestGraph()
	f := NewFilter(g, "f", intSchema, func(stream.Tuple) bool { return true }, 10)
	sub, err := f.Registry().Subscribe(KindAvgInputRate)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Unsubscribe()
	if !f.Registry().IsIncluded(KindInputRate) {
		t.Fatal("avgInputRate did not auto-include inputRate")
	}
	// Window [0,10): 2 elements (rate .2); [10,20): 0 (rate 0).
	vc.Schedule(1, func(now clock.Time) { f.Process(el(1, now), 0) })
	vc.Schedule(2, func(now clock.Time) { f.Process(el(2, now), 0) })
	vc.Advance(20)
	// avg of initial 0, 0.2, 0: 0.2/3... use tolerance
	v, _ := sub.Float()
	want := (0.0 + 0.2 + 0.0) / 3
	if diff := v - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("avgInputRate = %v, want %v", v, want)
	}
}

func TestImplTypeMetadata(t *testing.T) {
	g, _ := newTestGraph()
	f := NewFilter(g, "f", intSchema, func(stream.Tuple) bool { return true }, 0)
	sub, _ := f.Registry().Subscribe(KindImplType)
	defer sub.Unsubscribe()
	if v, _ := sub.Value(); v != "filter" {
		t.Fatalf("implType = %v, want filter", v)
	}
}

func TestSchemaAndElementSizeMetadata(t *testing.T) {
	g, _ := newTestGraph()
	f := NewFilter(g, "f", intSchema, func(stream.Tuple) bool { return true }, 0)
	ss, _ := f.Registry().Subscribe(KindSchema)
	defer ss.Unsubscribe()
	v, _ := ss.Value()
	if v.(stream.Schema).Name != "ints" {
		t.Fatalf("schema = %v", v)
	}
	es, _ := f.Registry().Subscribe(KindElementSize)
	defer es.Unsubscribe()
	if sz, _ := es.Float(); sz != float64(intSchema.ElementSize()) {
		t.Fatalf("elementSize = %v", sz)
	}
}

func TestMeasuredCPUMetadata(t *testing.T) {
	g, vc := newTestGraph()
	f := NewFilter(g, "f", intSchema, func(stream.Tuple) bool { return true }, 100)
	f.SetCostPerElement(5)
	sub, _ := f.Registry().Subscribe(KindMeasuredCPU)
	defer sub.Unsubscribe()
	// 10 elements x 5 units in window [0,100) -> 0.5 units/time.
	for i := 0; i < 10; i++ {
		i := i
		vc.Schedule(clock.Time(i*10+1), func(now clock.Time) { f.Process(el(i, now), 0) })
	}
	vc.Advance(100)
	if v, _ := sub.Float(); v != 0.5 {
		t.Fatalf("measuredCPU = %v, want 0.5", v)
	}
}

func TestFanoutMetadataTracksSubquerySharing(t *testing.T) {
	g, _ := newTestGraph()
	f := NewFilter(g, "shared", intSchema, func(stream.Tuple) bool { return true }, 0)
	sub, err := f.Registry().Subscribe(KindFanout)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Unsubscribe()
	if v, _ := sub.Float(); v != 0 {
		t.Fatalf("fanout = %v, want 0 before wiring", v)
	}
	NewSink(g, "k1", intSchema, nil, 0, 0, 0)
	k1 := g.Sinks()[0]
	g.Connect(f, k1)
	if v, _ := sub.Float(); v != 1 {
		t.Fatalf("fanout = %v, want 1", v)
	}
	k2 := NewSink(g, "k2", intSchema, nil, 0, 0, 0)
	g.Connect(f, k2)
	if v, _ := sub.Float(); v != 2 {
		t.Fatalf("fanout = %v, want 2 (reuse by a second query)", v)
	}
}
