package ops

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/stream"
)

// AggFunc is an incremental aggregate over the live window contents.
// Implementations must support removal (the window slides).
type AggFunc interface {
	// Add incorporates a tuple.
	Add(t stream.Tuple)
	// Remove retracts a tuple previously added.
	Remove(t stream.Tuple)
	// Value returns the current aggregate.
	Value() float64
	// Clone returns an empty aggregate of the same kind (for groups).
	Clone() AggFunc
	// Name identifies the aggregate for schemas and logs.
	Name() string
}

// countAgg counts live elements.
type countAgg struct{ n int }

// NewCount returns a COUNT aggregate.
func NewCount() AggFunc { return &countAgg{} }

func (a *countAgg) Add(stream.Tuple)    { a.n++ }
func (a *countAgg) Remove(stream.Tuple) { a.n-- }
func (a *countAgg) Value() float64      { return float64(a.n) }
func (a *countAgg) Clone() AggFunc      { return &countAgg{} }
func (a *countAgg) Name() string        { return "count" }

// sumAgg sums a numeric field.
type sumAgg struct {
	field int
	sum   float64
}

// NewSum returns a SUM aggregate over the given tuple field.
func NewSum(field int) AggFunc { return &sumAgg{field: field} }

func (a *sumAgg) Add(t stream.Tuple)    { a.sum += core.MustFloat(t[a.field]) }
func (a *sumAgg) Remove(t stream.Tuple) { a.sum -= core.MustFloat(t[a.field]) }
func (a *sumAgg) Value() float64        { return a.sum }
func (a *sumAgg) Clone() AggFunc        { return &sumAgg{field: a.field} }
func (a *sumAgg) Name() string          { return fmt.Sprintf("sum(%d)", a.field) }

// avgAgg averages a numeric field.
type avgAgg struct {
	field int
	sum   float64
	n     int
}

// NewAvg returns an AVG aggregate over the given tuple field.
func NewAvg(field int) AggFunc { return &avgAgg{field: field} }

func (a *avgAgg) Add(t stream.Tuple)    { a.sum += core.MustFloat(t[a.field]); a.n++ }
func (a *avgAgg) Remove(t stream.Tuple) { a.sum -= core.MustFloat(t[a.field]); a.n-- }
func (a *avgAgg) Value() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sum / float64(a.n)
}
func (a *avgAgg) Clone() AggFunc { return &avgAgg{field: a.field} }
func (a *avgAgg) Name() string   { return fmt.Sprintf("avg(%d)", a.field) }

// varAgg computes the population variance of a numeric field (an
// online aggregate like the "variance of the join selectivity" example
// of Section 2.3).
type varAgg struct {
	field int
	sum   float64
	sumSq float64
	n     int
}

// NewVar returns a population-variance aggregate over the field.
func NewVar(field int) AggFunc { return &varAgg{field: field} }

func (a *varAgg) Add(t stream.Tuple) {
	v := core.MustFloat(t[a.field])
	a.sum += v
	a.sumSq += v * v
	a.n++
}

func (a *varAgg) Remove(t stream.Tuple) {
	v := core.MustFloat(t[a.field])
	a.sum -= v
	a.sumSq -= v * v
	a.n--
}

func (a *varAgg) Value() float64 {
	if a.n == 0 {
		return 0
	}
	mean := a.sum / float64(a.n)
	v := a.sumSq/float64(a.n) - mean*mean
	if v < 0 {
		v = 0 // numeric noise
	}
	return v
}
func (a *varAgg) Clone() AggFunc { return &varAgg{field: a.field} }
func (a *varAgg) Name() string   { return fmt.Sprintf("var(%d)", a.field) }

// minAgg tracks the minimum of a numeric field by rescanning on
// removal (non-invertible aggregate).
type minAgg struct {
	field int
	live  map[float64]int
}

// NewMin returns a MIN aggregate over the field.
func NewMin(field int) AggFunc { return &minAgg{field: field, live: make(map[float64]int)} }

func (a *minAgg) Add(t stream.Tuple) { a.live[core.MustFloat(t[a.field])]++ }
func (a *minAgg) Remove(t stream.Tuple) {
	v := core.MustFloat(t[a.field])
	if a.live[v]--; a.live[v] <= 0 {
		delete(a.live, v)
	}
}
func (a *minAgg) Value() float64 {
	min := math.Inf(1)
	for v := range a.live {
		if v < min {
			min = v
		}
	}
	if math.IsInf(min, 1) {
		return 0
	}
	return min
}
func (a *minAgg) Clone() AggFunc { return &minAgg{field: a.field, live: make(map[float64]int)} }
func (a *minAgg) Name() string   { return fmt.Sprintf("min(%d)", a.field) }

// Aggregate computes a windowed aggregate over its input: every
// arriving element retracts the elements whose validity has ended,
// adds itself, and emits the current aggregate value.
type Aggregate struct {
	*Common
	agg AggFunc

	mu   sync.Mutex
	live []stream.Element
}

// AggSchema returns the output schema of an ungrouped aggregate.
func AggSchema(agg AggFunc) stream.Schema {
	return stream.Schema{
		Name:   agg.Name(),
		Fields: []stream.Field{{Name: agg.Name(), Type: "float"}},
	}
}

// NewAggregate creates a windowed aggregation operator.
func NewAggregate(g *graph.Graph, name string, agg AggFunc, statWindow clock.Duration) *Aggregate {
	a := &Aggregate{
		Common: newCommon(g, name, graph.OperatorNode, AggSchema(agg), statWindow),
		agg:    agg,
	}
	defineStaticImplType(a.Registry(), "aggregate")
	a.Registry().MustDefine(&core.Definition{
		Kind: KindStateSize,
		Build: func(*core.BuildContext) (core.Handler, error) {
			return core.NewOnDemand(func(clock.Time) (core.Value, error) {
				a.mu.Lock()
				defer a.mu.Unlock()
				return float64(len(a.live)), nil
			}), nil
		},
	})
	g.Register(a)
	return a
}

// Process implements graph.Node.
func (a *Aggregate) Process(el stream.Element, port int) []stream.Element {
	a.recordIn()
	a.mu.Lock()
	kept := a.live[:0]
	cost := int64(1)
	for _, old := range a.live {
		if old.End <= el.TS {
			a.agg.Remove(old.Tuple)
			cost++
		} else {
			kept = append(kept, old)
		}
	}
	for i := len(kept); i < len(a.live); i++ {
		a.live[i] = stream.Element{}
	}
	a.live = append(kept, el)
	a.agg.Add(el.Tuple)
	v := a.agg.Value()
	a.mu.Unlock()
	a.recordCost(cost)
	a.recordOut(1)
	return []stream.Element{{Tuple: stream.Tuple{v}, TS: el.TS, End: el.End}}
}

// GroupAggregate computes a windowed aggregate per group key.
type GroupAggregate struct {
	*Common
	keyField int
	proto    AggFunc

	mu     sync.Mutex
	groups map[any]AggFunc
	live   []stream.Element
}

// GroupAggSchema returns the output schema of a grouped aggregate.
func GroupAggSchema(agg AggFunc) stream.Schema {
	return stream.Schema{
		Name: "group-" + agg.Name(),
		Fields: []stream.Field{
			{Name: "key", Type: "any"},
			{Name: agg.Name(), Type: "float"},
		},
	}
}

// NewGroupAggregate creates a grouped windowed aggregation operator
// keyed by the given tuple field.
func NewGroupAggregate(g *graph.Graph, name string, keyField int, proto AggFunc, statWindow clock.Duration) *GroupAggregate {
	a := &GroupAggregate{
		Common:   newCommon(g, name, graph.OperatorNode, GroupAggSchema(proto), statWindow),
		keyField: keyField,
		proto:    proto,
		groups:   make(map[any]AggFunc),
	}
	defineStaticImplType(a.Registry(), "groupAggregate")
	a.Registry().MustDefine(&core.Definition{
		Kind: KindStateSize,
		Build: func(*core.BuildContext) (core.Handler, error) {
			return core.NewOnDemand(func(clock.Time) (core.Value, error) {
				a.mu.Lock()
				defer a.mu.Unlock()
				return float64(len(a.live)), nil
			}), nil
		},
	})
	g.Register(a)
	return a
}

// Process implements graph.Node.
func (a *GroupAggregate) Process(el stream.Element, port int) []stream.Element {
	a.recordIn()
	a.mu.Lock()
	cost := int64(1)
	kept := a.live[:0]
	for _, old := range a.live {
		if old.End <= el.TS {
			k := old.Tuple[a.keyField]
			if agg := a.groups[k]; agg != nil {
				agg.Remove(old.Tuple)
			}
			cost++
		} else {
			kept = append(kept, old)
		}
	}
	for i := len(kept); i < len(a.live); i++ {
		a.live[i] = stream.Element{}
	}
	a.live = append(kept, el)
	key := el.Tuple[a.keyField]
	agg := a.groups[key]
	if agg == nil {
		agg = a.proto.Clone()
		a.groups[key] = agg
	}
	agg.Add(el.Tuple)
	v := agg.Value()
	a.mu.Unlock()
	a.recordCost(cost)
	a.recordOut(1)
	return []stream.Element{{Tuple: stream.Tuple{key, v}, TS: el.TS, End: el.End}}
}
