package ops

import (
	"sync"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/stream"
)

// JoinPredicate decides whether two tuples join.
type JoinPredicate func(left, right stream.Tuple) bool

// SweepArea is an exchangeable join-state module (Section 4.5): the
// data structure storing one input's window contents. The join
// operator can be based on different implementations (lists, hash
// tables); each carries its own metadata registry so the join's
// memory-usage item can aggregate module metadata recursively.
type SweepArea interface {
	// Insert adds an element.
	Insert(el stream.Element)
	// PurgeBefore removes all elements whose validity ended at or
	// before t and returns how many were removed.
	PurgeBefore(t clock.Time) int
	// Probe calls emit for every stored element that time-overlaps el
	// and satisfies pred(stored, probe); it returns the number of
	// candidate comparisons performed (the simulated CPU cost).
	Probe(el stream.Element, pred func(stored stream.Tuple) bool, emit func(stored stream.Element)) int
	// Size returns the number of stored elements.
	Size() int
	// MemBytes returns the estimated memory footprint in bytes.
	MemBytes() int64
	// Registry returns the module's metadata registry.
	Registry() *core.Registry
}

// defineSweepAreaMetadata registers the module items every sweep area
// provides.
func defineSweepAreaMetadata(sa SweepArea, impl string) {
	r := sa.Registry()
	defineStaticImplType(r, impl)
	r.MustDefine(&core.Definition{
		Kind: KindSize,
		Build: func(*core.BuildContext) (core.Handler, error) {
			return core.NewOnDemand(func(clock.Time) (core.Value, error) {
				return float64(sa.Size()), nil
			}), nil
		},
	})
	r.MustDefine(&core.Definition{
		Kind: KindMemUsage,
		Build: func(*core.BuildContext) (core.Handler, error) {
			return core.NewOnDemand(func(clock.Time) (core.Value, error) {
				return float64(sa.MemBytes()), nil
			}), nil
		},
	})
}

// ListSweepArea stores elements in arrival order and probes by linear
// scan. It is the nested-loops implementation type of Section 1's
// operator metadata example.
type ListSweepArea struct {
	reg      *core.Registry
	elemSize int64

	mu  sync.Mutex
	els []stream.Element
}

// NewListSweepArea creates a list-based sweep area. elemSize is the
// per-element memory estimate in bytes.
func NewListSweepArea(env *core.Env, id string, elemSize int64) *ListSweepArea {
	sa := &ListSweepArea{reg: env.NewRegistry(id), elemSize: elemSize}
	defineSweepAreaMetadata(sa, "list")
	return sa
}

// Registry implements SweepArea.
func (sa *ListSweepArea) Registry() *core.Registry { return sa.reg }

// Insert implements SweepArea.
func (sa *ListSweepArea) Insert(el stream.Element) {
	sa.mu.Lock()
	defer sa.mu.Unlock()
	sa.els = append(sa.els, el)
}

// PurgeBefore implements SweepArea.
func (sa *ListSweepArea) PurgeBefore(t clock.Time) int {
	sa.mu.Lock()
	defer sa.mu.Unlock()
	kept := sa.els[:0]
	removed := 0
	for _, el := range sa.els {
		if el.End > t {
			kept = append(kept, el)
		} else {
			removed++
		}
	}
	// Clear the tail so purged elements are collectable.
	for i := len(kept); i < len(sa.els); i++ {
		sa.els[i] = stream.Element{}
	}
	sa.els = kept
	return removed
}

// Probe implements SweepArea.
func (sa *ListSweepArea) Probe(el stream.Element, pred func(stream.Tuple) bool, emit func(stream.Element)) int {
	sa.mu.Lock()
	snapshot := make([]stream.Element, len(sa.els))
	copy(snapshot, sa.els)
	sa.mu.Unlock()
	comparisons := 0
	for _, stored := range snapshot {
		comparisons++
		if stored.Overlaps(el) && pred(stored.Tuple) {
			emit(stored)
		}
	}
	return comparisons
}

// Size implements SweepArea.
func (sa *ListSweepArea) Size() int {
	sa.mu.Lock()
	defer sa.mu.Unlock()
	return len(sa.els)
}

// MemBytes implements SweepArea.
func (sa *ListSweepArea) MemBytes() int64 {
	return int64(sa.Size()) * sa.elemSize
}

// HashSweepArea partitions elements by a key function and probes only
// the matching bucket. It is the hash-based implementation type; the
// join predicate must imply key equality.
type HashSweepArea struct {
	reg      *core.Registry
	elemSize int64
	key      func(stream.Tuple) any

	mu      sync.Mutex
	buckets map[any][]stream.Element
	size    int
}

// NewHashSweepArea creates a hash-based sweep area partitioned by key.
func NewHashSweepArea(env *core.Env, id string, elemSize int64, key func(stream.Tuple) any) *HashSweepArea {
	sa := &HashSweepArea{
		reg:      env.NewRegistry(id),
		elemSize: elemSize,
		key:      key,
		buckets:  make(map[any][]stream.Element),
	}
	defineSweepAreaMetadata(sa, "hash")
	return sa
}

// Registry implements SweepArea.
func (sa *HashSweepArea) Registry() *core.Registry { return sa.reg }

// Insert implements SweepArea.
func (sa *HashSweepArea) Insert(el stream.Element) {
	k := sa.key(el.Tuple)
	sa.mu.Lock()
	defer sa.mu.Unlock()
	sa.buckets[k] = append(sa.buckets[k], el)
	sa.size++
}

// PurgeBefore implements SweepArea.
func (sa *HashSweepArea) PurgeBefore(t clock.Time) int {
	sa.mu.Lock()
	defer sa.mu.Unlock()
	removed := 0
	for k, els := range sa.buckets {
		kept := els[:0]
		for _, el := range els {
			if el.End > t {
				kept = append(kept, el)
			} else {
				removed++
			}
		}
		if len(kept) == 0 {
			delete(sa.buckets, k)
		} else {
			for i := len(kept); i < len(els); i++ {
				els[i] = stream.Element{}
			}
			sa.buckets[k] = kept
		}
	}
	sa.size -= removed
	return removed
}

// Probe implements SweepArea.
func (sa *HashSweepArea) Probe(el stream.Element, pred func(stream.Tuple) bool, emit func(stream.Element)) int {
	k := sa.key(el.Tuple)
	sa.mu.Lock()
	bucket := sa.buckets[k]
	snapshot := make([]stream.Element, len(bucket))
	copy(snapshot, bucket)
	sa.mu.Unlock()
	comparisons := 0
	for _, stored := range snapshot {
		comparisons++
		if stored.Overlaps(el) && pred(stored.Tuple) {
			emit(stored)
		}
	}
	return comparisons
}

// Size implements SweepArea.
func (sa *HashSweepArea) Size() int {
	sa.mu.Lock()
	defer sa.mu.Unlock()
	return sa.size
}

// MemBytes implements SweepArea. Hash buckets carry a small per-bucket
// overhead on top of the element payloads.
func (sa *HashSweepArea) MemBytes() int64 {
	sa.mu.Lock()
	defer sa.mu.Unlock()
	return int64(sa.size)*sa.elemSize + int64(len(sa.buckets))*48
}
