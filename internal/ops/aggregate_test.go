package ops

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/clock"
	"repro/internal/stream"
)

func TestCountAggregateSlidesWithValidity(t *testing.T) {
	g, _ := newTestGraph()
	a := NewAggregate(g, "cnt", NewCount(), 0)
	// Three elements valid 20 units each, arriving every 10.
	out1 := a.Process(windowed(1, 0, 20), 0)
	out2 := a.Process(windowed(2, 10, 20), 0)
	out3 := a.Process(windowed(3, 20, 20), 0) // first expired (End 20 <= TS 20)
	if v := out1[0].Tuple[0].(float64); v != 1 {
		t.Fatalf("count after 1st = %v", v)
	}
	if v := out2[0].Tuple[0].(float64); v != 2 {
		t.Fatalf("count after 2nd = %v", v)
	}
	if v := out3[0].Tuple[0].(float64); v != 2 {
		t.Fatalf("count after 3rd = %v, want 2 (first element expired)", v)
	}
}

func TestSumAvgAggregates(t *testing.T) {
	g, _ := newTestGraph()
	sum := NewAggregate(g, "sum", NewSum(0), 0)
	avg := NewAggregate(g, "avg", NewAvg(0), 0)
	for _, v := range []int{10, 20, 30} {
		sum.Process(windowed(v, 0, 100), 0)
		avg.Process(windowed(v, 0, 100), 0)
	}
	got := sum.Process(windowed(40, 1, 100), 0)
	if v := got[0].Tuple[0].(float64); v != 100 {
		t.Fatalf("sum = %v, want 100", v)
	}
	got = avg.Process(windowed(40, 1, 100), 0)
	if v := got[0].Tuple[0].(float64); v != 25 {
		t.Fatalf("avg = %v, want 25", v)
	}
}

func TestVarAggregate(t *testing.T) {
	g, _ := newTestGraph()
	a := NewAggregate(g, "var", NewVar(0), 0)
	var out []stream.Element
	for _, v := range []int{2, 4, 4, 4, 5, 5, 7, 9} {
		out = a.Process(windowed(v, 0, 1000), 0)
	}
	// Known population variance of this classic sequence is 4.
	if v := out[0].Tuple[0].(float64); math.Abs(v-4) > 1e-9 {
		t.Fatalf("variance = %v, want 4", v)
	}
}

func TestMinAggregateWithExpiry(t *testing.T) {
	g, _ := newTestGraph()
	a := NewAggregate(g, "min", NewMin(0), 0)
	a.Process(windowed(5, 0, 15), 0)
	out := a.Process(windowed(9, 10, 15), 0)
	if v := out[0].Tuple[0].(float64); v != 5 {
		t.Fatalf("min = %v, want 5", v)
	}
	// At t=20 the 5 has expired; min is 9.
	out = a.Process(windowed(12, 20, 15), 0)
	if v := out[0].Tuple[0].(float64); v != 9 {
		t.Fatalf("min = %v, want 9 after expiry", v)
	}
}

func TestAggregateStateSizeMetadata(t *testing.T) {
	g, _ := newTestGraph()
	a := NewAggregate(g, "cnt", NewCount(), 0)
	sub, _ := a.Registry().Subscribe(KindStateSize)
	defer sub.Unsubscribe()
	a.Process(windowed(1, 0, 100), 0)
	a.Process(windowed(2, 1, 100), 0)
	if v, _ := sub.Float(); v != 2 {
		t.Fatalf("stateSize = %v, want 2", v)
	}
}

func TestGroupAggregate(t *testing.T) {
	g, _ := newTestGraph()
	// Tuples (key, value): sum value per key.
	a := NewGroupAggregate(g, "gsum", 0, NewSum(1), 0)
	mk := func(k string, v int, ts clock.Time) stream.Element {
		return stream.Element{Tuple: stream.Tuple{k, v}, TS: ts, End: ts + 100}
	}
	a.Process(mk("a", 1, 0), 0)
	a.Process(mk("b", 10, 1), 0)
	out := a.Process(mk("a", 2, 2), 0)
	if out[0].Tuple[0] != "a" || out[0].Tuple[1].(float64) != 3 {
		t.Fatalf("group a = %v, want (a, 3)", out[0].Tuple)
	}
	out = a.Process(mk("b", 5, 3), 0)
	if out[0].Tuple[0] != "b" || out[0].Tuple[1].(float64) != 15 {
		t.Fatalf("group b = %v, want (b, 15)", out[0].Tuple)
	}
}

func TestGroupAggregateExpiry(t *testing.T) {
	g, _ := newTestGraph()
	a := NewGroupAggregate(g, "gcnt", 0, NewCount(), 0)
	mk := func(k string, ts clock.Time, w clock.Duration) stream.Element {
		return stream.Element{Tuple: stream.Tuple{k}, TS: ts, End: ts.Add(w)}
	}
	a.Process(mk("a", 0, 10), 0)
	out := a.Process(mk("a", 20, 10), 0) // first a expired
	if out[0].Tuple[1].(float64) != 1 {
		t.Fatalf("group count = %v, want 1 after expiry", out[0].Tuple)
	}
}

// TestPropertyAggregateEqualsRescan: the incremental windowed average
// always equals a brute-force recomputation over the live window.
func TestPropertyAggregateEqualsRescan(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g, _ := newTestGraph()
		a := NewAggregate(g, "avg", NewAvg(0), 0)
		var all []stream.Element
		ts := clock.Time(0)
		for i := 0; i < 150; i++ {
			ts += clock.Time(rng.Intn(4))
			e := windowed(rng.Intn(100), ts, clock.Duration(rng.Intn(30)+1))
			all = append(all, e)
			out := a.Process(e, 0)
			got := out[0].Tuple[0].(float64)
			// Reference: mean over elements valid at ts (End > ts).
			sum, n := 0.0, 0
			for _, x := range all {
				if x.End > ts {
					sum += float64(x.Tuple[0].(int))
					n++
				}
			}
			want := sum / float64(n)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("seed %d step %d: avg = %v, want %v", seed, i, got, want)
			}
		}
	}
}

func TestAggSchemas(t *testing.T) {
	if s := AggSchema(NewCount()); s.Arity() != 1 || s.Name != "count" {
		t.Fatalf("AggSchema = %v", s)
	}
	if s := GroupAggSchema(NewSum(1)); s.Arity() != 2 {
		t.Fatalf("GroupAggSchema = %v", s)
	}
}

func TestAggCloneIndependent(t *testing.T) {
	protos := []AggFunc{NewCount(), NewSum(0), NewAvg(0), NewVar(0), NewMin(0)}
	for _, p := range protos {
		p.Add(stream.Tuple{5})
		c := p.Clone()
		if c.Value() != 0 && p.Name() != "min(0)" {
			t.Fatalf("%s: clone inherited state: %v", p.Name(), c.Value())
		}
		c.Add(stream.Tuple{3})
		if p.Name() == "count" && p.Value() != 1 {
			t.Fatal("clone mutated prototype")
		}
	}
}
