// Package ops implements the operator library of the stream processing
// system: sources, filters, maps, unions, window operators, the
// sliding-window join with exchangeable sweep-area modules, windowed
// aggregation, a sampling/load-shedding operator, and sinks.
//
// Every operator registers the metadata definitions it can provide —
// the addMetadata step of Section 4.4.1 — with its node registry:
// static items (schema, element size), measured items with monitoring
// probes activated only while the item is in use (input/output rate,
// selectivity, CPU usage), and derived items maintained by triggered
// handlers (average rates).
package ops

import "repro/internal/core"

// Well-known metadata kinds provided by the operator library. Source,
// operator, and sink metadata follow the classification of Figure 1.
const (
	// KindSchema is the static output schema of a node.
	KindSchema = core.Kind("schema")
	// KindElementSize is the static estimated element size in bytes.
	KindElementSize = core.Kind("elementSize")
	// KindCountIn is the cumulative number of input elements
	// (on-demand; monitored only while included).
	KindCountIn = core.Kind("countIn")
	// KindCountOut is the cumulative number of output elements.
	KindCountOut = core.Kind("countOut")
	// KindInputRate is the measured input rate, updated periodically
	// (elements per time unit).
	KindInputRate = core.Kind("inputRate")
	// KindOutputRate is the measured output rate, updated
	// periodically.
	KindOutputRate = core.Kind("outputRate")
	// KindAvgInputRate is the running average of the measured input
	// rate, refreshed by a triggered handler whenever KindInputRate
	// publishes (the dependency example of Sections 1 and 3.2.3).
	KindAvgInputRate = core.Kind("avgInputRate")
	// KindAvgOutputRate is the running average of the measured output
	// rate.
	KindAvgOutputRate = core.Kind("avgOutputRate")
	// KindSelectivity is the measured output/input ratio per update
	// window (the input/output ratio example of Section 2.3).
	KindSelectivity = core.Kind("selectivity")
	// KindMeasuredCPU is the measured CPU usage: simulated work units
	// per time unit, updated periodically.
	KindMeasuredCPU = core.Kind("measuredCPUUsage")
	// KindStateSize is the number of elements held in operator state
	// (on-demand).
	KindStateSize = core.Kind("stateSize")
	// KindMemUsage is the measured memory usage in bytes (on-demand;
	// for the join it aggregates the sweep-area modules, Section 4.5).
	KindMemUsage = core.Kind("memUsage")
	// KindWindowSize is the current window size of a window operator
	// (on-demand; changes are announced via EventWindowChanged).
	KindWindowSize = core.Kind("windowSize")
	// KindDropProbability is the sampler's current drop probability.
	KindDropProbability = core.Kind("dropProbability")
	// KindCountDropped is the cumulative number of dropped elements
	// at a sampler.
	KindCountDropped = core.Kind("countDropped")
	// KindQoSLatency is a sink's static Quality-of-Service latency
	// budget (query-level metadata).
	KindQoSLatency = core.Kind("qosLatency")
	// KindQoSPriority is a sink's static scheduling priority.
	KindQoSPriority = core.Kind("qosPriority")
	// KindSize is an exchangeable module's element count.
	KindSize = core.Kind("size")
	// KindImplType is the static implementation type of a node or
	// module (e.g. "hash", "list"), per Figure 1's operator metadata.
	KindImplType = core.Kind("implType")
	// KindFanout is the number of consumers currently fed by the node
	// — the "frequency of reuse by subquery sharing" query-level
	// metadata of Figure 1 (on-demand from the live topology).
	KindFanout = core.Kind("fanout")
)

// Events fired by operators (Section 3.2.3's developer-fired
// notifications).
const (
	// EventWindowChanged fires when a window operator's size is
	// adjusted (e.g. by the adaptive resource manager of Section 3.3).
	EventWindowChanged = "windowSizeChanged"
	// EventStateChanged fires when an operator announces a relevant
	// state change to dependent triggered handlers.
	EventStateChanged = "stateChanged"
)
