package ops

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/clock"
	"repro/internal/stream"
)

// eqPred joins tuples with equal first fields.
func eqPred(l, r stream.Tuple) bool { return l[0] == r[0] }

// windowed returns an element with validity [ts, ts+w).
func windowed(v int, ts clock.Time, w clock.Duration) stream.Element {
	return stream.Element{Tuple: stream.Tuple{v}, TS: ts, End: ts.Add(w)}
}

func TestJoinMatchesOverlappingEquals(t *testing.T) {
	g, _ := newTestGraph()
	j := NewJoin(g, "j", intSchema, intSchema, eqPred, 0)
	// Left 7 at [0,100); right 7 at [50,150): overlap, equal -> match.
	out := j.Process(windowed(7, 0, 100), 0)
	if len(out) != 0 {
		t.Fatalf("empty right side produced output: %v", out)
	}
	out = j.Process(windowed(7, 50, 100), 1)
	if len(out) != 1 {
		t.Fatalf("join produced %d results, want 1", len(out))
	}
	r := out[0]
	if r.Tuple[0] != 7 || r.Tuple[1] != 7 {
		t.Fatalf("joined tuple = %v, want (7, 7)", r.Tuple)
	}
	if r.TS != 50 || r.End != 100 {
		t.Fatalf("result validity = [%d,%d), want [50,100) (intersection)", r.TS, r.End)
	}
}

func TestJoinRespectsPredicate(t *testing.T) {
	g, _ := newTestGraph()
	j := NewJoin(g, "j", intSchema, intSchema, eqPred, 0)
	j.Process(windowed(1, 0, 100), 0)
	out := j.Process(windowed(2, 10, 100), 1)
	if len(out) != 0 {
		t.Fatalf("join matched unequal keys: %v", out)
	}
}

func TestJoinRespectsTime(t *testing.T) {
	g, _ := newTestGraph()
	j := NewJoin(g, "j", intSchema, intSchema, eqPred, 0)
	j.Process(windowed(1, 0, 10), 0) // valid [0,10)
	out := j.Process(windowed(1, 10, 10), 1)
	if len(out) != 0 {
		t.Fatalf("join matched non-overlapping validities: %v", out)
	}
}

func TestJoinPurgesExpiredState(t *testing.T) {
	g, _ := newTestGraph()
	j := NewJoin(g, "j", intSchema, intSchema, eqPred, 0)
	for i := 0; i < 10; i++ {
		j.Process(windowed(i, clock.Time(i), 10), 0)
	}
	if got := j.Area(0).Size(); got != 10 {
		t.Fatalf("left area size = %d, want 10", got)
	}
	// An element far in the future expires everything on both sides.
	j.Process(windowed(99, 1000, 10), 1)
	if got := j.Area(0).Size(); got != 0 {
		t.Fatalf("left area size = %d after purge, want 0", got)
	}
	if got := j.Area(1).Size(); got != 1 {
		t.Fatalf("right area size = %d, want 1", got)
	}
}

func TestJoinTupleOrderFromRightPort(t *testing.T) {
	g, _ := newTestGraph()
	ls := stream.Schema{Name: "L", Fields: []stream.Field{{Name: "k", Type: "int"}, {Name: "l", Type: "string"}}}
	rs := stream.Schema{Name: "R", Fields: []stream.Field{{Name: "k", Type: "int"}, {Name: "r", Type: "string"}}}
	j := NewJoin(g, "j", ls, rs, eqPred, 0)
	j.Process(stream.Element{Tuple: stream.Tuple{1, "left"}, TS: 0, End: 100}, 0)
	out := j.Process(stream.Element{Tuple: stream.Tuple{1, "right"}, TS: 0, End: 100}, 1)
	if len(out) != 1 {
		t.Fatal("no result")
	}
	// Left fields must come first regardless of arrival port.
	if out[0].Tuple[1] != "left" || out[0].Tuple[3] != "right" {
		t.Fatalf("tuple order wrong: %v", out[0].Tuple)
	}
}

func TestJoinMemUsageAggregatesModules(t *testing.T) {
	g, _ := newTestGraph()
	j := NewJoin(g, "j", intSchema, intSchema, eqPred, 0)
	sub, err := j.Registry().Subscribe(KindMemUsage)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Unsubscribe()
	// Module items were auto-included (Section 4.5).
	if !j.Area(0).Registry().IsIncluded(KindMemUsage) {
		t.Fatal("module memUsage not auto-included")
	}
	j.Process(windowed(1, 0, 100), 0)
	j.Process(windowed(2, 0, 100), 0)
	j.Process(windowed(3, 0, 100), 1)
	want := float64(3 * intSchema.ElementSize())
	if v, _ := sub.Float(); v != want {
		t.Fatalf("memUsage = %v, want %v", v, want)
	}
	ss, _ := j.Registry().Subscribe(KindStateSize)
	defer ss.Unsubscribe()
	if v, _ := ss.Float(); v != 3 {
		t.Fatalf("stateSize = %v, want 3", v)
	}
}

func TestJoinHashAreasSameResultsAsList(t *testing.T) {
	runJoin := func(opt JoinOption) []string {
		g, _ := newTestGraph()
		j := NewJoin(g, "j", intSchema, intSchema, eqPred, 0, opt)
		rng := rand.New(rand.NewSource(7))
		var results []string
		for i := 0; i < 400; i++ {
			port := rng.Intn(2)
			e := windowed(rng.Intn(10), clock.Time(i), 50)
			for _, o := range j.Process(e, port) {
				results = append(results, fmt.Sprintf("%v@%d-%d", o.Tuple, o.TS, o.End))
			}
		}
		sort.Strings(results)
		return results
	}
	list := runJoin(WithListAreas())
	hash := runJoin(WithHashAreas(
		func(tp stream.Tuple) any { return tp[0] },
		func(tp stream.Tuple) any { return tp[0] },
	))
	if len(list) == 0 {
		t.Fatal("workload produced no join results")
	}
	if len(list) != len(hash) {
		t.Fatalf("list join %d results, hash join %d", len(list), len(hash))
	}
	for i := range list {
		if list[i] != hash[i] {
			t.Fatalf("results diverge at %d: %s vs %s", i, list[i], hash[i])
		}
	}
}

func TestJoinHashCheaperThanList(t *testing.T) {
	drive := func(opt JoinOption) float64 {
		g, vc := newTestGraph()
		j := NewJoin(g, "j", intSchema, intSchema, eqPred, 1000, opt)
		sub, _ := j.Registry().Subscribe(KindMeasuredCPU)
		defer sub.Unsubscribe()
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 500; i++ {
			i := i
			vc.Schedule(clock.Time(i), func(now clock.Time) {
				j.Process(windowed(rng.Intn(50), now, 200), i%2)
			})
		}
		vc.Advance(1000)
		v, _ := sub.Float()
		return v
	}
	list := drive(WithListAreas())
	hash := drive(WithHashAreas(
		func(tp stream.Tuple) any { return tp[0] },
		func(tp stream.Tuple) any { return tp[0] },
	))
	if hash >= list {
		t.Fatalf("hash join CPU %v not cheaper than list join %v", hash, list)
	}
}

func TestJoinImplTypeFollowsModule(t *testing.T) {
	g, _ := newTestGraph()
	j := NewJoin(g, "j", intSchema, intSchema, eqPred, 0, WithHashAreas(
		func(tp stream.Tuple) any { return tp[0] },
		func(tp stream.Tuple) any { return tp[0] },
	))
	sub, err := j.Area(0).Registry().Subscribe(KindImplType)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Unsubscribe()
	if v, _ := sub.Value(); v != "hash" {
		t.Fatalf("module implType = %v, want hash", v)
	}
}

func TestJoinPredicateCostMetadata(t *testing.T) {
	g, _ := newTestGraph()
	j := NewJoin(g, "j", intSchema, intSchema, eqPred, 0, WithPredicateCost(7))
	sub, _ := j.Registry().Subscribe(KindPredicateCost)
	defer sub.Unsubscribe()
	if v, _ := sub.Float(); v != 7 {
		t.Fatalf("predicateCost = %v, want 7", v)
	}
}

// referenceJoin recomputes all join results of a two-sided trace by
// brute force over every pair.
func referenceJoin(left, right []stream.Element, pred JoinPredicate) int {
	n := 0
	for _, l := range left {
		for _, r := range right {
			if l.Overlaps(r) && pred(l.Tuple, r.Tuple) {
				n++
			}
		}
	}
	return n
}

// TestPropertyJoinEqualsReference: the streaming join over interleaved
// inputs produces exactly the pairs a brute-force join over the full
// traces produces, for random workloads. Arrival order must follow
// timestamps (stream order).
func TestPropertyJoinEqualsReference(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g, _ := newTestGraph()
		j := NewJoin(g, "j", intSchema, intSchema, eqPred, 0)
		var left, right []stream.Element
		got := 0
		ts := clock.Time(0)
		for i := 0; i < 200; i++ {
			ts += clock.Time(rng.Intn(5))
			w := clock.Duration(rng.Intn(40) + 1)
			e := windowed(rng.Intn(8), ts, w)
			port := rng.Intn(2)
			if port == 0 {
				left = append(left, e)
			} else {
				right = append(right, e)
			}
			got += len(j.Process(e, port))
		}
		want := referenceJoin(left, right, eqPred)
		if got != want {
			t.Fatalf("seed %d: streaming join found %d pairs, reference %d", seed, got, want)
		}
	}
}

// TestPropertyHashJoinEqualsReference repeats the reference check for
// the hash sweep areas.
func TestPropertyHashJoinEqualsReference(t *testing.T) {
	for seed := int64(20); seed < 35; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g, _ := newTestGraph()
		j := NewJoin(g, "j", intSchema, intSchema, eqPred, 0, WithHashAreas(
			func(tp stream.Tuple) any { return tp[0] },
			func(tp stream.Tuple) any { return tp[0] },
		))
		var left, right []stream.Element
		got := 0
		ts := clock.Time(0)
		for i := 0; i < 200; i++ {
			ts += clock.Time(rng.Intn(5))
			e := windowed(rng.Intn(8), ts, clock.Duration(rng.Intn(40)+1))
			port := rng.Intn(2)
			if port == 0 {
				left = append(left, e)
			} else {
				right = append(right, e)
			}
			got += len(j.Process(e, port))
		}
		if want := referenceJoin(left, right, eqPred); got != want {
			t.Fatalf("seed %d: hash join found %d pairs, reference %d", seed, got, want)
		}
	}
}

func TestSweepAreaPurgeBoundary(t *testing.T) {
	g, _ := newTestGraph()
	env := g.Env()
	for name, sa := range map[string]SweepArea{
		"list": NewListSweepArea(env, "l", 32),
		"hash": NewHashSweepArea(env, "h", 32, func(tp stream.Tuple) any { return tp[0] }),
	} {
		sa.Insert(windowed(1, 0, 10)) // valid [0,10)
		sa.Insert(windowed(2, 0, 11)) // valid [0,11)
		if got := sa.PurgeBefore(10); got != 1 {
			t.Fatalf("%s: purged %d, want 1 (End == t expires)", name, got)
		}
		if sa.Size() != 1 {
			t.Fatalf("%s: size = %d, want 1", name, sa.Size())
		}
	}
}

func TestHashSweepAreaMemIncludesBuckets(t *testing.T) {
	g, _ := newTestGraph()
	sa := NewHashSweepArea(g.Env(), "h", 32, func(tp stream.Tuple) any { return tp[0] })
	if sa.MemBytes() != 0 {
		t.Fatal("empty area has nonzero memory")
	}
	sa.Insert(windowed(1, 0, 10))
	sa.Insert(windowed(2, 0, 10))
	if got := sa.MemBytes(); got != 2*32+2*48 {
		t.Fatalf("MemBytes = %d, want %d", got, 2*32+2*48)
	}
}
