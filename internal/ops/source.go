package ops

import (
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/stream"
)

// Source is a raw data stream entering the query graph. The engine
// drives it from a stream.Generator; Emit is the instrumented exit
// point. A source may additionally declare its expected rate, which
// seeds the cost model before measurements are available.
type Source struct {
	*Common
	declaredRate float64
}

// NewSource creates a source node with the given output schema.
// declaredRate is the expected element rate (elements per time unit);
// pass 0 if unknown.
func NewSource(g *graph.Graph, name string, schema stream.Schema, declaredRate float64, statWindow clock.Duration) *Source {
	s := &Source{
		Common:       newCommon(g, name, graph.SourceNode, schema, statWindow),
		declaredRate: declaredRate,
	}
	defineStaticImplType(s.Registry(), "source")
	s.Registry().MustDefine(&core.Definition{
		Kind: KindDeclaredRate,
		Build: func(*core.BuildContext) (core.Handler, error) {
			return core.NewStatic(s.declaredRate), nil
		},
	})
	g.Register(s)
	return s
}

// DeclaredRate returns the declared expected rate.
func (s *Source) DeclaredRate() float64 { return s.declaredRate }

// Emit instruments and returns one outgoing element; the engine
// forwards it to the source's consumers.
func (s *Source) Emit(el stream.Element) stream.Element {
	s.recordIn()
	s.recordOut(1)
	return el
}

// KindDeclaredRate is the statically declared expected output rate of
// a source.
const KindDeclaredRate = core.Kind("declaredRate")
