package ops

import (
	"sync"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/stream"
)

// TimeWindow is the time-based sliding window operator of Section 2.5:
// it assigns a validity to each incoming stream element according to
// the window size, i.e. End = TS + size. The size is adjustable at
// runtime (the adaptive resource manager of Section 3.3 shrinks or
// grows it); a change fires EventWindowChanged so that dependent
// triggered handlers — estimated element validity, estimated join CPU
// usage — re-estimate immediately.
type TimeWindow struct {
	*Common
	mu   sync.Mutex
	size clock.Duration
}

// NewTimeWindow creates a time-based window operator.
func NewTimeWindow(g *graph.Graph, name string, schema stream.Schema, size clock.Duration, statWindow clock.Duration) *TimeWindow {
	if size <= 0 {
		panic("ops: window size must be positive")
	}
	w := &TimeWindow{
		Common: newCommon(g, name, graph.OperatorNode, schema, statWindow),
		size:   size,
	}
	defineStaticImplType(w.Registry(), "timeWindow")
	w.Registry().MustDefine(&core.Definition{
		Kind: KindWindowSize,
		Build: func(*core.BuildContext) (core.Handler, error) {
			return core.NewOnDemand(func(clock.Time) (core.Value, error) {
				return float64(w.Size()), nil
			}), nil
		},
	})
	g.Register(w)
	return w
}

// Size returns the current window size.
func (w *TimeWindow) Size() clock.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// SetSize adjusts the window size at runtime and fires the
// window-change event so dependent metadata re-estimates (Section 3.3).
func (w *TimeWindow) SetSize(size clock.Duration) {
	if size <= 0 {
		panic("ops: window size must be positive")
	}
	w.mu.Lock()
	w.size = size
	w.mu.Unlock()
	w.Registry().NotifyChanged(KindWindowSize)
	w.Registry().FireEvent(EventWindowChanged)
}

// Process implements graph.Node.
func (w *TimeWindow) Process(el stream.Element, port int) []stream.Element {
	w.recordIn()
	w.recordCost(1)
	out := el
	out.End = el.TS.Add(w.Size())
	w.recordOut(1)
	return []stream.Element{out}
}

// CountWindow is a count-based window: each element is valid until n
// further elements have arrived. Because the expiring timestamp is
// only known when the (i+n)-th element arrives, element i is emitted
// at that moment with validity [TS_i, TS_{i+n}).
type CountWindow struct {
	*Common
	n   int
	mu  sync.Mutex
	buf []stream.Element
}

// NewCountWindow creates a count-based window of n elements.
func NewCountWindow(g *graph.Graph, name string, schema stream.Schema, n int, statWindow clock.Duration) *CountWindow {
	if n <= 0 {
		panic("ops: count window must hold at least one element")
	}
	w := &CountWindow{
		Common: newCommon(g, name, graph.OperatorNode, schema, statWindow),
		n:      n,
	}
	defineStaticImplType(w.Registry(), "countWindow")
	w.Registry().MustDefine(&core.Definition{
		Kind: KindStateSize,
		Build: func(*core.BuildContext) (core.Handler, error) {
			return core.NewOnDemand(func(clock.Time) (core.Value, error) {
				w.mu.Lock()
				defer w.mu.Unlock()
				return float64(len(w.buf)), nil
			}), nil
		},
	})
	g.Register(w)
	return w
}

// N returns the window's element count.
func (w *CountWindow) N() int { return w.n }

// Process implements graph.Node.
func (w *CountWindow) Process(el stream.Element, port int) []stream.Element {
	w.recordIn()
	w.recordCost(1)
	w.mu.Lock()
	w.buf = append(w.buf, el)
	var out []stream.Element
	if len(w.buf) > w.n {
		old := w.buf[0]
		w.buf = w.buf[1:]
		old.End = el.TS
		out = []stream.Element{old}
	}
	w.mu.Unlock()
	if out != nil {
		w.recordOut(1)
	}
	return out
}

// Flush emits the buffered elements with the given end timestamp; used
// when a bounded stream terminates.
func (w *CountWindow) Flush(end clock.Time) []stream.Element {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]stream.Element, 0, len(w.buf))
	for _, el := range w.buf {
		el.End = end
		out = append(out, el)
	}
	w.buf = nil
	w.recordOut(int64(len(out)))
	return out
}
