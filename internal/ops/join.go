package ops

import (
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/stream"
)

// Join is the binary sliding-window join of Figure 3. Each input keeps
// its window contents in an exchangeable sweep-area module ("left",
// "right"); an arriving element is inserted into its own area, expired
// elements are purged from the opposite area, and the opposite area is
// probed for time-overlapping, predicate-satisfying partners.
//
// The join's measured memory usage aggregates the memory usage of its
// two modules through module metadata dependencies (Section 4.5), and
// its probe comparisons feed the measured-CPU item.
type Join struct {
	*Common
	pred  JoinPredicate
	areas [2]SweepArea
	// predCost is the simulated CPU cost of one predicate evaluation,
	// exposed as metadata for the cost model (Figure 3's "costs of the
	// join predicate" intra-node dependency).
	predCost int64
}

// JoinOption configures a Join.
type JoinOption func(*joinConfig)

type joinConfig struct {
	makeArea func(env *core.Env, id string, elemSize int64, side int) SweepArea
	predCost int64
}

// WithListAreas stores join state in list sweep areas (default).
func WithListAreas() JoinOption {
	return func(c *joinConfig) {
		c.makeArea = func(env *core.Env, id string, elemSize int64, _ int) SweepArea {
			return NewListSweepArea(env, id, elemSize)
		}
	}
}

// WithHashAreas stores join state in hash sweep areas keyed by the
// given per-side key extractors. The join predicate must imply key
// equality.
func WithHashAreas(leftKey, rightKey func(stream.Tuple) any) JoinOption {
	keys := [2]func(stream.Tuple) any{leftKey, rightKey}
	return func(c *joinConfig) {
		c.makeArea = func(env *core.Env, id string, elemSize int64, side int) SweepArea {
			return NewHashSweepArea(env, id, elemSize, keys[side])
		}
	}
}

// WithPredicateCost sets the simulated cost of one predicate
// evaluation.
func WithPredicateCost(c int64) JoinOption {
	return func(cfg *joinConfig) { cfg.predCost = c }
}

// NewJoin creates a sliding-window join. leftSchema and rightSchema
// are the input schemas (the output schema is their concatenation).
func NewJoin(g *graph.Graph, name string, leftSchema, rightSchema stream.Schema, pred JoinPredicate, statWindow clock.Duration, opts ...JoinOption) *Join {
	cfg := joinConfig{predCost: 1}
	WithListAreas()(&cfg)
	for _, o := range opts {
		o(&cfg)
	}
	outSchema := leftSchema.Concat(rightSchema)
	j := &Join{
		Common:   newCommon(g, name, graph.OperatorNode, outSchema, statWindow),
		pred:     pred,
		predCost: cfg.predCost,
	}
	env := g.Env()
	j.areas[0] = cfg.makeArea(env, j.Registry().ID()+"/left", leftSchema.ElementSize(), 0)
	j.areas[1] = cfg.makeArea(env, j.Registry().ID()+"/right", rightSchema.ElementSize(), 1)
	j.Registry().AttachModule("left", j.areas[0].Registry())
	j.Registry().AttachModule("right", j.areas[1].Registry())

	defineStaticImplType(j.Registry(), "slidingWindowJoin")
	j.defineJoinMetadata()
	g.Register(j)
	return j
}

// defineJoinMetadata registers the join-specific items.
func (j *Join) defineJoinMetadata() {
	r := j.Registry()

	// State size and measured memory usage aggregate the exchangeable
	// modules — the recursive module-metadata application of Section
	// 4.5 and Figure 3's "memory usage of the internal data
	// structures".
	r.MustDefine(&core.Definition{
		Kind: KindStateSize,
		Deps: []core.DepRef{
			core.Dep(core.Module("left"), KindSize),
			core.Dep(core.Module("right"), KindSize),
		},
		Build: func(ctx *core.BuildContext) (core.Handler, error) {
			l, rt := ctx.Dep(0), ctx.Dep(1)
			return core.NewOnDemand(func(clock.Time) (core.Value, error) {
				a, err := l.Float()
				if err != nil {
					return nil, err
				}
				b, err := rt.Float()
				if err != nil {
					return nil, err
				}
				return a + b, nil
			}), nil
		},
	})
	r.MustDefine(&core.Definition{
		Kind: KindMemUsage,
		Deps: []core.DepRef{
			core.Dep(core.Module("left"), KindMemUsage),
			core.Dep(core.Module("right"), KindMemUsage),
		},
		Build: func(ctx *core.BuildContext) (core.Handler, error) {
			l, rt := ctx.Dep(0), ctx.Dep(1)
			return core.NewOnDemand(func(clock.Time) (core.Value, error) {
				a, err := l.Float()
				if err != nil {
					return nil, err
				}
				b, err := rt.Float()
				if err != nil {
					return nil, err
				}
				return a + b, nil
			}), nil
		},
	})
	// The predicate cost is an intra-node input to the cost model.
	r.MustDefine(&core.Definition{
		Kind: KindPredicateCost,
		Build: func(*core.BuildContext) (core.Handler, error) {
			return core.NewOnDemand(func(clock.Time) (core.Value, error) {
				return float64(j.predCost), nil
			}), nil
		},
	})
}

// Area returns the sweep-area module of the given side (0 = left).
func (j *Join) Area(side int) SweepArea { return j.areas[side] }

// Process implements graph.Node.
func (j *Join) Process(el stream.Element, port int) []stream.Element {
	j.recordIn()
	own, other := j.areas[port], j.areas[1-port]

	// Time-based expiration: elements whose validity ended before the
	// new element's timestamp can no longer join.
	own.PurgeBefore(el.TS)
	other.PurgeBefore(el.TS)
	own.Insert(el)

	var out []stream.Element
	pred := func(stored stream.Tuple) bool {
		if port == 0 {
			return j.pred(el.Tuple, stored)
		}
		return j.pred(stored, el.Tuple)
	}
	comparisons := other.Probe(el, pred, func(stored stream.Element) {
		ts := el.TS
		if stored.TS > ts {
			ts = stored.TS
		}
		end := el.End
		if stored.End < end {
			end = stored.End
		}
		var tuple stream.Tuple
		if port == 0 {
			tuple = el.Tuple.Concat(stored.Tuple)
		} else {
			tuple = stored.Tuple.Concat(el.Tuple)
		}
		out = append(out, stream.Element{Tuple: tuple, TS: ts, End: end})
	})
	j.recordCost(int64(comparisons)*j.predCost + 1)
	j.recordOut(int64(len(out)))
	return out
}

// KindPredicateCost is the simulated CPU cost of one join-predicate
// evaluation.
const KindPredicateCost = core.Kind("predicateCost")
