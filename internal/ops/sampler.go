package ops

import (
	"math/rand"
	"sync"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/stream"
)

// Sampler randomly drops elements with an adjustable probability. It
// is the load-shedding operator ([21]): the resource manager raises
// the drop probability when resource-usage metadata exceeds its bound
// and lowers it when headroom returns.
type Sampler struct {
	*Common
	mu      sync.Mutex
	dropP   float64
	rng     *rand.Rand
	dropped core.Counter
}

// NewSampler creates a sampler with the given initial drop probability
// in [0, 1] and a deterministic seed.
func NewSampler(g *graph.Graph, name string, schema stream.Schema, dropP float64, seed int64, statWindow clock.Duration) *Sampler {
	if dropP < 0 || dropP > 1 {
		panic("ops: drop probability must be in [0, 1]")
	}
	s := &Sampler{
		Common: newCommon(g, name, graph.OperatorNode, schema, statWindow),
		dropP:  dropP,
		rng:    rand.New(rand.NewSource(seed)),
	}
	defineStaticImplType(s.Registry(), "sampler")
	s.Registry().MustDefine(&core.Definition{
		Kind: KindDropProbability,
		Build: func(*core.BuildContext) (core.Handler, error) {
			return core.NewOnDemand(func(clock.Time) (core.Value, error) {
				return s.DropProbability(), nil
			}), nil
		},
	})
	s.Registry().MustDefine(counterDefinition(KindCountDropped, &s.dropped))
	g.Register(s)
	return s
}

// DropProbability returns the current drop probability.
func (s *Sampler) DropProbability() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropP
}

// SetDropProbability adjusts the drop probability at runtime and
// notifies dependents of the metadata change.
func (s *Sampler) SetDropProbability(p float64) {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	s.mu.Lock()
	s.dropP = p
	s.mu.Unlock()
	s.Registry().NotifyChanged(KindDropProbability)
}

// Process implements graph.Node.
func (s *Sampler) Process(el stream.Element, port int) []stream.Element {
	s.recordIn()
	s.recordCost(1)
	s.mu.Lock()
	drop := s.rng.Float64() < s.dropP
	s.mu.Unlock()
	if drop {
		s.dropped.Inc()
		return nil
	}
	s.recordOut(1)
	return []stream.Element{el}
}
