package ops

import (
	"sync"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/stream"
)

// Filter passes elements whose tuples satisfy a predicate. Its
// selectivity metadata is the canonical scheduler input (Chain [5]
// reacts to selectivity changes).
type Filter struct {
	*Common
	mu   sync.Mutex
	pred func(stream.Tuple) bool
	// costPerElement is the simulated CPU work of one predicate
	// evaluation.
	costPerElement int64
}

// NewFilter creates a filter over the schema of its (future) input.
func NewFilter(g *graph.Graph, name string, schema stream.Schema, pred func(stream.Tuple) bool, statWindow clock.Duration) *Filter {
	f := &Filter{
		Common:         newCommon(g, name, graph.OperatorNode, schema, statWindow),
		pred:           pred,
		costPerElement: 1,
	}
	defineStaticImplType(f.Registry(), "filter")
	g.Register(f)
	return f
}

// SetCostPerElement adjusts the simulated predicate cost.
func (f *Filter) SetCostPerElement(c int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.costPerElement = c
}

// CostPerElement returns the simulated predicate cost.
func (f *Filter) CostPerElement() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.costPerElement
}

// Predicate returns the filter's current predicate.
func (f *Filter) Predicate() func(stream.Tuple) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.pred
}

// SetPredicate replaces the filter's predicate (and its simulated
// cost) at runtime. The adaptive optimizer uses it to reorder
// commuting predicates along a filter chain without rewiring the
// graph; measured selectivity metadata re-converges over the following
// update windows.
func (f *Filter) SetPredicate(pred func(stream.Tuple) bool, cost int64) {
	f.mu.Lock()
	f.pred = pred
	f.costPerElement = cost
	f.mu.Unlock()
	f.Registry().FireEvent(EventStateChanged)
}

// Process implements graph.Node.
func (f *Filter) Process(el stream.Element, port int) []stream.Element {
	f.mu.Lock()
	pred, cost := f.pred, f.costPerElement
	f.mu.Unlock()
	f.recordIn()
	f.recordCost(cost)
	if !pred(el.Tuple) {
		return nil
	}
	f.recordOut(1)
	return []stream.Element{el}
}

// Map transforms each tuple with a function.
type Map struct {
	*Common
	fn             func(stream.Tuple) stream.Tuple
	costPerElement int64
}

// NewMap creates a map operator with the given output schema.
func NewMap(g *graph.Graph, name string, outSchema stream.Schema, fn func(stream.Tuple) stream.Tuple, statWindow clock.Duration) *Map {
	m := &Map{
		Common:         newCommon(g, name, graph.OperatorNode, outSchema, statWindow),
		fn:             fn,
		costPerElement: 1,
	}
	defineStaticImplType(m.Registry(), "map")
	g.Register(m)
	return m
}

// SetCostPerElement adjusts the simulated mapping cost.
func (m *Map) SetCostPerElement(c int64) { m.costPerElement = c }

// Process implements graph.Node.
func (m *Map) Process(el stream.Element, port int) []stream.Element {
	m.recordIn()
	m.recordCost(m.costPerElement)
	out := el
	out.Tuple = m.fn(el.Tuple)
	m.recordOut(1)
	return []stream.Element{out}
}

// Union merges any number of inputs with identical schemas.
type Union struct {
	*Common
}

// NewUnion creates a union operator.
func NewUnion(g *graph.Graph, name string, schema stream.Schema, statWindow clock.Duration) *Union {
	u := &Union{Common: newCommon(g, name, graph.OperatorNode, schema, statWindow)}
	defineStaticImplType(u.Registry(), "union")
	g.Register(u)
	return u
}

// Process implements graph.Node.
func (u *Union) Process(el stream.Element, port int) []stream.Element {
	u.recordIn()
	u.recordCost(1)
	u.recordOut(1)
	return []stream.Element{el}
}

// Sink consumes query results on behalf of an application and carries
// the query-level metadata of Figure 1 (QoS specification, priority).
// It also measures the delivery latency of its results — application
// time between an element's timestamp and its arrival at the sink —
// as periodic metadata, the runtime statistic QoS enforcement needs.
type Sink struct {
	*Common
	onElement func(stream.Element)
	latSum    core.Gauge   // sum of delivery latencies in the window
	latCount  core.Counter // deliveries in the window
}

// NewSink creates a sink. onElement may be nil; qosLatency is the
// static QoS latency budget and priority the static scheduling
// priority exposed as metadata.
func NewSink(g *graph.Graph, name string, schema stream.Schema, onElement func(stream.Element), qosLatency float64, priority float64, statWindow clock.Duration) *Sink {
	s := &Sink{
		Common:    newCommon(g, name, graph.SinkNode, schema, statWindow),
		onElement: onElement,
	}
	defineStaticImplType(s.Registry(), "sink")
	defineStaticFloat(s.Registry(), KindQoSLatency, qosLatency)
	defineStaticFloat(s.Registry(), KindQoSPriority, priority)
	s.defineLatencyMetadata()
	g.Register(s)
	return s
}

// defineLatencyMetadata registers the measured average delivery
// latency per update window.
func (s *Sink) defineLatencyMetadata() {
	latSum, latCount, window := &s.latSum, &s.latCount, s.statWindow
	s.Registry().MustDefine(&core.Definition{
		Kind:  KindAvgLatency,
		Probe: core.Probes{latSum, latCount},
		Build: func(*core.BuildContext) (core.Handler, error) {
			last := 0.0
			return core.NewPeriodic(window, func(start, end clock.Time) (core.Value, error) {
				n := latCount.Take()
				sum := latSum.Take()
				if n > 0 {
					last = float64(sum) / float64(n)
				}
				// Windows without deliveries keep the previous value.
				return last, nil
			}), nil
		},
	})
}

// Process implements graph.Node.
func (s *Sink) Process(el stream.Element, port int) []stream.Element {
	s.recordIn()
	if s.latCount.Active() {
		now := s.Registry().Env().Now()
		s.latSum.Add(int64(now.Sub(el.TS)))
		s.latCount.Inc()
	}
	if s.onElement != nil {
		s.onElement(el)
	}
	return nil
}

// KindAvgLatency is a sink's measured average delivery latency per
// update window (time units between element timestamp and delivery).
const KindAvgLatency = core.Kind("avgLatency")
