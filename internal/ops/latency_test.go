package ops

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/stream"
)

func TestSinkAvgLatencyMetadata(t *testing.T) {
	g, vc := newTestGraph()
	s := NewSink(g, "k", intSchema, nil, 0, 0, 100)
	sub, err := s.Registry().Subscribe(KindAvgLatency)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Unsubscribe()

	// Deliver elements whose timestamps lag the current time by 5 and
	// 15 units inside the first window.
	vc.Schedule(50, func(now clock.Time) {
		s.Process(stream.NewElement(stream.Tuple{1}, now-5), 0)
		s.Process(stream.NewElement(stream.Tuple{2}, now-15), 0)
	})
	vc.Advance(100)
	if v, _ := sub.Float(); v != 10 {
		t.Fatalf("avgLatency = %v, want 10", v)
	}

	// A window without deliveries keeps the previous value (like the
	// selectivity item).
	vc.Advance(100)
	if v, _ := sub.Float(); v != 10 {
		t.Fatalf("avgLatency after idle window = %v, want retained 10", v)
	}
}

func TestSinkLatencyProbeInactiveWithoutSubscription(t *testing.T) {
	g, vc := newTestGraph()
	s := NewSink(g, "k", intSchema, nil, 0, 0, 100)
	// No subscription: delivering elements must not accumulate
	// latency state (activation-gated monitoring).
	vc.Advance(50)
	s.Process(stream.NewElement(stream.Tuple{1}, 0), 0)
	if s.latCount.Read() != 0 || s.latSum.Read() != 0 {
		t.Fatal("latency probes counted while inactive")
	}
}

func TestFilterPredicateAccessors(t *testing.T) {
	g, _ := newTestGraph()
	f := NewFilter(g, "f", intSchema, func(tp stream.Tuple) bool { return tp[0].(int) > 0 }, 0)
	f.SetCostPerElement(7)
	if f.CostPerElement() != 7 {
		t.Fatal("cost accessor wrong")
	}
	pred := f.Predicate()
	if !pred(stream.Tuple{1}) || pred(stream.Tuple{-1}) {
		t.Fatal("Predicate accessor returned wrong function")
	}
	f.SetPredicate(func(stream.Tuple) bool { return false }, 3)
	if f.CostPerElement() != 3 {
		t.Fatal("SetPredicate did not update cost")
	}
	if out := f.Process(el(1, 0), 0); len(out) != 0 {
		t.Fatal("new predicate not in effect")
	}
}
