package ops

import (
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/stream"
)

// DefaultStatWindow is the default update window of periodic metadata
// handlers. It calibrates the freshness/overhead trade-off of Section
// 3.1 and can be overridden per node.
const DefaultStatWindow = clock.Duration(100)

// Common carries the per-node instrumentation shared by all concrete
// nodes: activation-gated probes for the measured metadata items, and
// the standard metadata definitions. Each metadata item owns its own
// probe so that, e.g., the input-rate item and the selectivity item
// can reset their window counters independently.
type Common struct {
	*graph.Base

	schema     stream.Schema
	statWindow clock.Duration

	// Probes, one per measured item (activated only while the item's
	// handler exists).
	totIn   core.Counter // countIn
	totOut  core.Counter // countOut
	rateIn  core.Counter // inputRate window counter
	rateOut core.Counter // outputRate window counter
	selIn   core.Counter // selectivity window counters
	selOut  core.Counter
	cpu     core.Gauge // measuredCPUUsage work accumulator
}

// newCommon builds the node core and registers the standard metadata.
func newCommon(g *graph.Graph, name string, typ graph.NodeType, schema stream.Schema, statWindow clock.Duration) *Common {
	if statWindow <= 0 {
		statWindow = DefaultStatWindow
	}
	c := &Common{
		Base:       g.NewBase(name, typ),
		schema:     schema,
		statWindow: statWindow,
	}
	c.defineStandardMetadata()
	return c
}

// Schema returns the node's output schema.
func (c *Common) Schema() stream.Schema { return c.schema }

// StatWindow returns the node's periodic update window.
func (c *Common) StatWindow() clock.Duration { return c.statWindow }

// recordIn instruments one input element.
func (c *Common) recordIn() {
	c.totIn.Inc()
	c.rateIn.Inc()
	c.selIn.Inc()
}

// recordOut instruments n output elements.
func (c *Common) recordOut(n int64) {
	c.totOut.Add(n)
	c.rateOut.Add(n)
	c.selOut.Add(n)
}

// recordCost accumulates simulated CPU work units.
func (c *Common) recordCost(units int64) { c.cpu.Add(units) }

// rateDefinition builds a periodic rate item over a window counter.
func rateDefinition(kind core.Kind, probe *core.Counter, window clock.Duration) *core.Definition {
	return &core.Definition{
		Kind:  kind,
		Probe: probe,
		Build: func(*core.BuildContext) (core.Handler, error) {
			return core.NewPeriodic(window, func(start, end clock.Time) (core.Value, error) {
				w := end.Sub(start)
				if w == 0 {
					return 0.0, nil
				}
				return float64(probe.Take()) / float64(w), nil
			}), nil
		},
	}
}

// runningAvgDefinition builds a triggered running average over a
// periodic base item (Section 3.2.3: replacing an on-demand average by
// a triggered handler synchronizes it with the base item's updates).
func runningAvgDefinition(kind, base core.Kind) *core.Definition {
	return &core.Definition{
		Kind: kind,
		Deps: []core.DepRef{core.Dep(core.Self(), base)},
		Build: func(ctx *core.BuildContext) (core.Handler, error) {
			dep := ctx.Dep(0)
			n, sum := 0.0, 0.0
			return core.NewTriggered(func(clock.Time) (core.Value, error) {
				v, err := dep.Float()
				if err != nil {
					return nil, err
				}
				n++
				sum += v
				return sum / n, nil
			}), nil
		},
	}
}

// counterDefinition builds an on-demand cumulative counter item.
func counterDefinition(kind core.Kind, probe *core.Counter) *core.Definition {
	return &core.Definition{
		Kind:  kind,
		Probe: probe,
		Build: func(*core.BuildContext) (core.Handler, error) {
			return core.NewOnDemand(func(clock.Time) (core.Value, error) {
				return float64(probe.Read()), nil
			}), nil
		},
	}
}

// defineStandardMetadata registers the items every node provides.
func (c *Common) defineStandardMetadata() {
	r := c.Registry()
	schema := c.schema
	r.MustDefine(&core.Definition{
		Kind:  KindSchema,
		Build: func(*core.BuildContext) (core.Handler, error) { return core.NewStatic(schema), nil },
	})
	r.MustDefine(&core.Definition{
		Kind:  KindElementSize,
		Build: func(*core.BuildContext) (core.Handler, error) { return core.NewStatic(schema.ElementSize()), nil },
	})
	r.MustDefine(counterDefinition(KindCountIn, &c.totIn))
	r.MustDefine(counterDefinition(KindCountOut, &c.totOut))
	r.MustDefine(rateDefinition(KindInputRate, &c.rateIn, c.statWindow))
	r.MustDefine(rateDefinition(KindOutputRate, &c.rateOut, c.statWindow))
	r.MustDefine(runningAvgDefinition(KindAvgInputRate, KindInputRate))
	r.MustDefine(runningAvgDefinition(KindAvgOutputRate, KindOutputRate))

	// Selectivity: output/input ratio per update window (Section 2.3).
	selIn, selOut, window := &c.selIn, &c.selOut, c.statWindow
	r.MustDefine(&core.Definition{
		Kind:  KindSelectivity,
		Probe: core.Probes{selIn, selOut},
		Build: func(*core.BuildContext) (core.Handler, error) {
			last := 1.0
			return core.NewPeriodic(window, func(start, end clock.Time) (core.Value, error) {
				in, out := selIn.Take(), selOut.Take()
				if in > 0 {
					last = float64(out) / float64(in)
				}
				// Windows without input keep the previous estimate.
				return last, nil
			}), nil
		},
	})

	// Fanout: how many consumers share this node's output (Figure 1's
	// reuse frequency). On-demand over the live topology.
	r.MustDefine(&core.Definition{
		Kind: KindFanout,
		Build: func(*core.BuildContext) (core.Handler, error) {
			return core.NewOnDemand(func(clock.Time) (core.Value, error) {
				return float64(len(c.Graph().Outputs(c))), nil
			}), nil
		},
	})

	// Measured CPU usage: simulated work units per time unit.
	cpu := &c.cpu
	r.MustDefine(&core.Definition{
		Kind:  KindMeasuredCPU,
		Probe: cpu,
		Build: func(*core.BuildContext) (core.Handler, error) {
			return core.NewPeriodic(window, func(start, end clock.Time) (core.Value, error) {
				w := end.Sub(start)
				if w == 0 {
					return 0.0, nil
				}
				return float64(cpu.Take()) / float64(w), nil
			}), nil
		},
	})
}

// defineStaticFloat registers a static numeric item.
func defineStaticFloat(r *core.Registry, kind core.Kind, v float64) {
	r.MustDefine(&core.Definition{
		Kind:  kind,
		Build: func(*core.BuildContext) (core.Handler, error) { return core.NewStatic(v), nil },
	})
}

// defineStaticImplType registers the implementation-type item.
func defineStaticImplType(r *core.Registry, impl string) {
	r.MustDefine(&core.Definition{
		Kind:  KindImplType,
		Build: func(*core.BuildContext) (core.Handler, error) { return core.NewStatic(impl), nil },
	})
}
