package sched

import (
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ops"
)

// QoS is a priority scheduler driven by query-level metadata: every
// queue inherits the maximum static QoS priority of the sinks
// reachable downstream of its operator (the "scheduling priority"
// query metadata of Figure 1). Queues of higher-priority queries are
// always serviced first; ties fall back to the oldest head so equal
// queries share fairly.
type QoS struct {
	// prio caches per-node priority; sink priorities are obtained
	// through metadata subscriptions.
	prio map[int]float64
	subs []*core.Subscription
}

// NewQoS returns a QoS priority scheduler.
func NewQoS() *QoS {
	return &QoS{prio: make(map[int]float64)}
}

// Name implements Scheduler.
func (s *QoS) Name() string { return "qos" }

// priority computes (and caches) the node's priority as the maximum
// qosPriority metadata value among its downstream sinks.
func (s *QoS) priority(n graph.Node) float64 {
	if p, ok := s.prio[n.ID()]; ok {
		return p
	}
	p := 0.0
	gn, ok := n.(interface{ Graph() *graph.Graph })
	if ok {
		for _, d := range gn.Graph().Downstream(n) {
			if d.Type() != graph.SinkNode {
				continue
			}
			sub, err := d.Registry().Subscribe(ops.KindQoSPriority)
			if err != nil {
				continue
			}
			s.subs = append(s.subs, sub)
			if v, err := sub.Float(); err == nil && v > p {
				p = v
			}
		}
	}
	s.prio[n.ID()] = p
	return p
}

// Pick implements Scheduler.
func (s *QoS) Pick(queues []QueueInfo) int {
	best := -1
	bestP := 0.0
	for i, q := range queues {
		p := s.priority(q.Node)
		if best == -1 || p > bestP ||
			(p == bestP && q.HeadArrival < queues[best].HeadArrival) {
			best = i
			bestP = p
		}
	}
	return best
}

// Close releases the priority subscriptions.
func (s *QoS) Close() {
	for _, sub := range s.subs {
		sub.Unsubscribe()
	}
	s.subs = nil
	s.prio = make(map[int]float64)
}
