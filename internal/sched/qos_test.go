package sched_test

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/sched"
	"repro/internal/stream"
)

var intSchema = stream.Schema{Name: "ints", Fields: []stream.Field{{Name: "v", Type: "int"}}}

// qi builds a QueueInfo for tests.
func qi(n graph.Node, length int, head clock.Time) sched.QueueInfo {
	return sched.QueueInfo{Node: n, Len: length, HeadArrival: head, Bytes: int64(length) * 32}
}

func TestQoSPicksHighestPriorityQueue(t *testing.T) {
	vc := clock.NewVirtual()
	g := graph.New(core.NewEnv(vc))
	lo := ops.NewFilter(g, "lo", intSchema, func(stream.Tuple) bool { return true }, 10)
	hi := ops.NewFilter(g, "hi", intSchema, func(stream.Tuple) bool { return true }, 10)
	g.Connect(lo, ops.NewSink(g, "loSink", intSchema, nil, 0, 1, 10))
	g.Connect(hi, ops.NewSink(g, "hiSink", intSchema, nil, 0, 9, 10))

	s := sched.NewQoS()
	defer s.Close()
	qs := []sched.QueueInfo{qi(lo, 5, 0), qi(hi, 1, 100)}
	if got := s.Pick(qs); got != 1 {
		t.Fatalf("QoS picked %d, want the high-priority queue", got)
	}
	if s.Name() != "qos" {
		t.Fatal("name wrong")
	}
}

func TestQoSSubscribesToSinkPriorities(t *testing.T) {
	vc := clock.NewVirtual()
	g := graph.New(core.NewEnv(vc))
	f := ops.NewFilter(g, "f", intSchema, func(stream.Tuple) bool { return true }, 10)
	sink := ops.NewSink(g, "k", intSchema, nil, 0, 3, 10)
	g.Connect(f, sink)
	_ = vc
	s := sched.NewQoS()
	s.Pick([]sched.QueueInfo{qi(f, 1, 0)})
	if !sink.Registry().IsIncluded(ops.KindQoSPriority) {
		t.Fatal("QoS scheduler did not subscribe to the sink's priority item")
	}
	s.Close()
	if sink.Registry().IsIncluded(ops.KindQoSPriority) {
		t.Fatal("Close did not release the subscription")
	}
}

func TestQoSTieFallsBackToOldest(t *testing.T) {
	vc := clock.NewVirtual()
	g := graph.New(core.NewEnv(vc))
	a := ops.NewFilter(g, "a", intSchema, func(stream.Tuple) bool { return true }, 10)
	b := ops.NewFilter(g, "b", intSchema, func(stream.Tuple) bool { return true }, 10)
	g.Connect(a, ops.NewSink(g, "ka", intSchema, nil, 0, 2, 10))
	g.Connect(b, ops.NewSink(g, "kb", intSchema, nil, 0, 2, 10))
	s := sched.NewQoS()
	defer s.Close()
	qs := []sched.QueueInfo{qi(a, 1, 50), qi(b, 1, 10)}
	if got := s.Pick(qs); got != 1 {
		t.Fatalf("QoS tie pick = %d, want the older head", got)
	}
}

// TestQoSEndToEndLatency runs two identical queries with different
// priorities under overload: the high-priority query's measured
// delivery latency must be much lower.
func TestQoSEndToEndLatency(t *testing.T) {
	vc := clock.NewVirtual()
	g := graph.New(core.NewEnv(vc))
	src := ops.NewSource(g, "src", intSchema, 0, 200)
	lo := ops.NewFilter(g, "lo", intSchema, func(stream.Tuple) bool { return true }, 200)
	hi := ops.NewFilter(g, "hi", intSchema, func(stream.Tuple) bool { return true }, 200)
	loSink := ops.NewSink(g, "loSink", intSchema, nil, 0, 1, 500)
	hiSink := ops.NewSink(g, "hiSink", intSchema, nil, 0, 9, 500)
	g.Connect(src, lo)
	g.Connect(src, hi)
	g.Connect(lo, loSink)
	g.Connect(hi, hiSink)

	s := sched.NewQoS()
	defer s.Close()
	// Bursts enqueue 2 elements/unit (one per query) against a budget
	// of 1/unit; the silent phases let the low-priority backlog drain,
	// so both queries deliver — with very different latencies.
	e := engine.New(g, vc, engine.WithScheduler(s, 1, 1))
	e.Bind(src, stream.NewBursty(0, 1, 300, 300, 0))

	loLat, err := loSink.Registry().Subscribe(ops.KindAvgLatency)
	if err != nil {
		t.Fatal(err)
	}
	defer loLat.Unsubscribe()
	hiLat, err := hiSink.Registry().Subscribe(ops.KindAvgLatency)
	if err != nil {
		t.Fatal(err)
	}
	defer hiLat.Unsubscribe()

	loCount, err := loSink.Registry().Subscribe(ops.KindCountIn)
	if err != nil {
		t.Fatal(err)
	}
	defer loCount.Unsubscribe()
	hiCount, err := hiSink.Registry().Subscribe(ops.KindCountIn)
	if err != nil {
		t.Fatal(err)
	}
	defer hiCount.Unsubscribe()

	e.RunUntil(3000)
	loV, _ := loLat.Float()
	hiV, _ := hiLat.Float()
	loN, _ := loCount.Float()
	hiN, _ := hiCount.Float()
	if loN == 0 || hiN == 0 {
		t.Fatalf("a query starved entirely: lo=%v hi=%v deliveries", loN, hiN)
	}
	// The high-priority query is serviced promptly (latency around the
	// service tick granularity); the low-priority query waits out the
	// bursts.
	if hiV > 5 {
		t.Fatalf("high-priority latency = %v, want near-immediate service", hiV)
	}
	if loV < 20 {
		t.Fatalf("low-priority latency = %v, want a burst-length backlog", loV)
	}
}
