package sched

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/stream"
)

var intSchema = stream.Schema{Name: "ints", Fields: []stream.Field{{Name: "v", Type: "int"}}}

func testFilters(sels []float64) (*graph.Graph, []graph.Node, *clock.Virtual) {
	vc := clock.NewVirtual()
	g := graph.New(core.NewEnv(vc))
	var nodes []graph.Node
	for i, s := range sels {
		s := s
		f := ops.NewFilter(g, "f", intSchema, func(stream.Tuple) bool { return true }, 10)
		_ = s
		_ = i
		nodes = append(nodes, f)
	}
	return g, nodes, vc
}

func q(n graph.Node, length int, head clock.Time) QueueInfo {
	return QueueInfo{Node: n, Len: length, HeadArrival: head, Bytes: int64(length) * 32}
}

func TestRoundRobinRotates(t *testing.T) {
	_, nodes, _ := testFilters([]float64{1, 1, 1})
	s := NewRoundRobin()
	defer s.Close()
	qs := []QueueInfo{q(nodes[0], 1, 0), q(nodes[1], 1, 0), q(nodes[2], 1, 0)}
	seen := map[int]int{}
	for i := 0; i < 6; i++ {
		seen[s.Pick(qs)]++
	}
	if seen[0] != 2 || seen[1] != 2 || seen[2] != 2 {
		t.Fatalf("round robin distribution = %v", seen)
	}
	if s.Pick(nil) != -1 {
		t.Fatal("empty pick should be -1")
	}
	if s.Name() != "roundrobin" {
		t.Fatal("name wrong")
	}
}

func TestFIFOPicksOldestHead(t *testing.T) {
	_, nodes, _ := testFilters([]float64{1, 1})
	s := NewFIFO()
	defer s.Close()
	qs := []QueueInfo{q(nodes[0], 5, 100), q(nodes[1], 1, 20)}
	if got := s.Pick(qs); got != 1 {
		t.Fatalf("FIFO picked %d, want 1 (older head)", got)
	}
	if s.Pick(nil) != -1 {
		t.Fatal("empty pick should be -1")
	}
	if s.Name() != "fifo" {
		t.Fatal("name wrong")
	}
}

// TestChainPrefersSelectiveOperator drives two filters so their
// measured selectivities differ, then checks Chain services the more
// selective one (steeper memory-reduction slope) first.
func TestChainPrefersSelectiveOperator(t *testing.T) {
	vc := clock.NewVirtual()
	g := graph.New(core.NewEnv(vc))
	drop := ops.NewFilter(g, "drop", intSchema, func(stream.Tuple) bool { return false }, 10)
	keep := ops.NewFilter(g, "keep", intSchema, func(stream.Tuple) bool { return true }, 10)
	// Both filters feed further operators, so their slopes follow
	// their selectivities (outputs re-enter queues).
	g.Connect(drop, ops.NewFilter(g, "d2", intSchema, func(stream.Tuple) bool { return true }, 10))
	g.Connect(keep, ops.NewFilter(g, "k2", intSchema, func(stream.Tuple) bool { return true }, 10))

	s := NewChain()
	defer s.Close()

	// Feed both filters so the periodic selectivity handlers measure
	// 0.0 (drop) and 1.0 (keep). Chain's first Pick subscribes.
	warm := []QueueInfo{q(drop, 1, 0), q(keep, 1, 0)}
	s.Pick(warm)
	for i := 0; i < 20; i++ {
		el := stream.NewElement(stream.Tuple{i}, clock.Time(i))
		drop.Process(el, 0)
		keep.Process(el, 0)
	}
	vc.Advance(10) // publish one selectivity window

	if got := s.Pick(warm); got != 0 {
		t.Fatalf("Chain picked %d, want 0 (the dropping filter frees memory fastest)", got)
	}
	if s.Name() != "chain" {
		t.Fatal("name wrong")
	}
}

func TestChainSubscribesToSelectivityMetadata(t *testing.T) {
	vc := clock.NewVirtual()
	g := graph.New(core.NewEnv(vc))
	f := ops.NewFilter(g, "f", intSchema, func(stream.Tuple) bool { return true }, 10)
	g.Connect(f, ops.NewFilter(g, "f2", intSchema, func(stream.Tuple) bool { return true }, 10))
	_ = vc
	s := NewChain()
	s.Pick([]QueueInfo{q(f, 1, 0)})
	if !f.Registry().IsIncluded(ops.KindSelectivity) {
		t.Fatal("Chain did not subscribe to the selectivity item")
	}
	s.Close()
	if f.Registry().IsIncluded(ops.KindSelectivity) {
		t.Fatal("Close did not release the subscription")
	}
}

func TestChainTieBreaksByQueueLength(t *testing.T) {
	vc := clock.NewVirtual()
	g := graph.New(core.NewEnv(vc))
	a := ops.NewFilter(g, "a", intSchema, func(stream.Tuple) bool { return true }, 10)
	b := ops.NewFilter(g, "b", intSchema, func(stream.Tuple) bool { return true }, 10)
	g.Connect(a, ops.NewFilter(g, "a2", intSchema, func(stream.Tuple) bool { return true }, 10))
	g.Connect(b, ops.NewFilter(g, "b2", intSchema, func(stream.Tuple) bool { return true }, 10))
	s := NewChain()
	defer s.Close()
	qs := []QueueInfo{q(a, 2, 0), q(b, 9, 0)}
	if got := s.Pick(qs); got != 1 {
		t.Fatalf("Chain picked %d, want 1 (longer queue at equal slope)", got)
	}
}

func TestChainHandlesNodesWithoutSelectivity(t *testing.T) {
	vc := clock.NewVirtual()
	g := graph.New(core.NewEnv(vc))
	_ = vc
	// A bare node without standard metadata.
	type bare struct{ *graph.Base }
	n := &bare{g.NewBase("bare", graph.OperatorNode)}
	g.Register(n)
	s := NewChain()
	defer s.Close()
	if got := s.Pick([]QueueInfo{q(n, 1, 0)}); got != 0 {
		t.Fatalf("Pick = %d, want 0", got)
	}
}
