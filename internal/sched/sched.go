// Package sched implements operator scheduling strategies for the
// stream engine. Scheduling is the paper's first motivating
// application for dynamic metadata (Section 1): the Chain strategy [5]
// "has to react to significant changes in operator selectivities to
// minimize the memory usage of inter-operator queues" — so the Chain
// scheduler here is a metadata consumer that subscribes to the
// selectivity items of the operators it schedules.
package sched

import (
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ops"
)

// QueueInfo describes one non-empty inter-operator queue to a
// scheduling strategy.
type QueueInfo struct {
	// Node is the operator the queue feeds.
	Node graph.Node
	// Port is the input port the queue feeds.
	Port int
	// Len is the number of queued elements.
	Len int
	// Bytes is the memory held by the queue.
	Bytes int64
	// HeadArrival is the enqueue time of the oldest element.
	HeadArrival clock.Time
}

// Scheduler picks the next queue to service.
type Scheduler interface {
	// Name identifies the strategy in experiment output.
	Name() string
	// Pick returns the index into queues of the queue to service
	// next, or -1 to stay idle. All queues passed are non-empty.
	Pick(queues []QueueInfo) int
	// Close releases any resources (e.g. metadata subscriptions).
	Close()
}

// RoundRobin services queues in rotation. It is the metadata-oblivious
// baseline.
type RoundRobin struct {
	next int
}

// NewRoundRobin returns a round-robin scheduler.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Scheduler.
func (s *RoundRobin) Name() string { return "roundrobin" }

// Pick implements Scheduler.
func (s *RoundRobin) Pick(queues []QueueInfo) int {
	if len(queues) == 0 {
		return -1
	}
	idx := s.next % len(queues)
	s.next++
	return idx
}

// Close implements Scheduler.
func (s *RoundRobin) Close() {}

// FIFO services the queue holding the globally oldest element,
// approximating arrival-order processing.
type FIFO struct{}

// NewFIFO returns a FIFO scheduler.
func NewFIFO() *FIFO { return &FIFO{} }

// Name implements Scheduler.
func (s *FIFO) Name() string { return "fifo" }

// Pick implements Scheduler.
func (s *FIFO) Pick(queues []QueueInfo) int {
	best := -1
	for i, q := range queues {
		if best == -1 || q.HeadArrival < queues[best].HeadArrival {
			best = i
		}
	}
	return best
}

// Close implements Scheduler.
func (s *FIFO) Close() {}

// Chain is the memory-minimizing strategy of Babcock et al. [5],
// driven by live selectivity metadata: it greedily services the
// operator with the steepest memory-reduction slope, i.e. the one that
// discards the largest expected fraction of its input per unit of
// work. Selectivities are obtained through metadata subscriptions and
// follow workload changes automatically.
type Chain struct {
	subs map[int]*core.Subscription // node id -> selectivity subscription
}

// NewChain returns a Chain scheduler.
func NewChain() *Chain {
	return &Chain{subs: make(map[int]*core.Subscription)}
}

// Name implements Scheduler.
func (s *Chain) Name() string { return "chain" }

// selectivity returns the operator's current selectivity estimate,
// subscribing to the metadata item on first use.
func (s *Chain) selectivity(n graph.Node) float64 {
	sub, ok := s.subs[n.ID()]
	if !ok {
		var err error
		sub, err = n.Registry().Subscribe(ops.KindSelectivity)
		if err != nil {
			// Nodes without a selectivity item (e.g. sinks) count as
			// pass-through.
			s.subs[n.ID()] = nil
			return 1
		}
		s.subs[n.ID()] = sub
	}
	if sub == nil {
		return 1
	}
	v, err := sub.Float()
	if err != nil {
		return 1
	}
	return v
}

// slope returns the expected queue-memory decrease of servicing one
// element of the operator: 1 minus the expected number of elements
// re-entering downstream queues. Outputs consumed by sinks leave the
// queue system entirely, so an operator feeding only sinks has slope
// 1 regardless of selectivity; an operator feeding further operators
// retains a fraction equal to its measured selectivity.
func (s *Chain) slope(n graph.Node) float64 {
	requeued := false
	if gn, ok := n.(interface{ Graph() *graph.Graph }); ok {
		for _, c := range gn.Graph().Outputs(n) {
			if c.Type() != graph.SinkNode {
				requeued = true
				break
			}
		}
	}
	if !requeued {
		return 1
	}
	return 1 - s.selectivity(n)
}

// Pick implements Scheduler.
func (s *Chain) Pick(queues []QueueInfo) int {
	best := -1
	bestSlope := -1.0
	for i, q := range queues {
		// Ties favor longer queues (more memory at stake).
		slope := s.slope(q.Node)
		if best == -1 || slope > bestSlope ||
			(slope == bestSlope && q.Len > queues[best].Len) {
			best = i
			bestSlope = slope
		}
	}
	return best
}

// Close releases the selectivity subscriptions.
func (s *Chain) Close() {
	for _, sub := range s.subs {
		if sub != nil {
			sub.Unsubscribe()
		}
	}
	s.subs = make(map[int]*core.Subscription)
}
