package watch

import (
	"fmt"
	"sort"

	"repro/internal/core"
)

// Source is anything that can register watchers on items addressed by
// name: the in-process HubView (the epoch-diff hub over an
// environment's registries) or a Relay re-serving an upstream server.
// Server, Session, and the mux transport are written against this
// interface, so one HTTP surface and one multiplexing session
// implementation serve both a primary and any depth of relays.
type Source interface {
	// WatchItem registers a watcher on the item (registry, kind) with
	// the usual contract: snapshot-then-delta catch-up when behind
	// opt.Since, then strictly increasing versions with flagged gaps.
	WatchItem(registry string, kind core.Kind, opt Options) (*Watcher, error)
	// ListItems returns each registry's defined item kinds.
	ListItems() (map[string][]string, error)
	// SourceStats returns the stats sink the source accounts into.
	SourceStats() *core.Stats
}

// HubView adapts a Hub plus the registries it exposes by name into a
// Source — the primary-server implementation.
type HubView struct {
	hub  *Hub
	env  *core.Env
	regs map[string]*core.Registry
	keys []string
}

// NewHubView builds the hub-backed source exposing the given
// registries by their IDs.
func NewHubView(hub *Hub, env *core.Env, regs ...*core.Registry) *HubView {
	v := &HubView{hub: hub, env: env, regs: make(map[string]*core.Registry)}
	for _, r := range regs {
		if _, dup := v.regs[r.ID()]; !dup {
			v.keys = append(v.keys, r.ID())
		}
		v.regs[r.ID()] = r
	}
	sort.Strings(v.keys)
	return v
}

// Hub returns the underlying fan-out hub.
func (v *HubView) Hub() *Hub { return v.hub }

// WatchItem implements Source by resolving the registry name and
// registering on the hub.
func (v *HubView) WatchItem(registry string, kind core.Kind, opt Options) (*Watcher, error) {
	reg := v.regs[registry]
	if reg == nil {
		return nil, fmt.Errorf("watch: unknown registry %q", registry)
	}
	if kind == "" {
		return nil, fmt.Errorf("watch: missing kind")
	}
	return v.hub.Watch(reg, kind, opt)
}

// ListItems implements Source: each exposed registry's defined kinds.
func (v *HubView) ListItems() (map[string][]string, error) {
	out := make(map[string][]string, len(v.keys))
	for _, id := range v.keys {
		var kinds []string
		for _, k := range v.regs[id].Available() {
			kinds = append(kinds, string(k))
		}
		out[id] = kinds
	}
	return out, nil
}

// SourceStats implements Source with the environment's stats.
func (v *HubView) SourceStats() *core.Stats { return v.env.Stats() }
