package watch

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
)

// relayUpstream serves the test plane over HTTP as a relay's origin,
// with the registry handle exposed so tests can pin items directly on
// the hub (keeping version streams alive across relay generations).
func relayUpstream(t *testing.T) (*httptest.Server, *Hub, *core.Registry, func()) {
	t.Helper()
	env, r, _, publish := testPlane(t)
	h := NewHub(env)
	t.Cleanup(h.Close)
	srv := NewServer(h, env, r)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, h, r, publish
}

// waitVersion polls until the relay has mirrored want for the item.
func waitVersion(t *testing.T, r *Relay, registry, kind string, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if v, ok := r.ItemVersion(registry, core.Kind(kind)); ok && v >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("relay never mirrored %s/%s v%d", registry, kind, want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRelayMirrorsUpstream(t *testing.T) {
	ts, h, r, publish := relayUpstream(t)
	pin, err := h.Watch(r, "val", Options{Buffer: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer pin.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rel, err := NewRelay(ctx, ts.URL, RelayOptions{Reconnect: fastReconnect()})
	if err != nil {
		t.Fatal(err)
	}
	defer rel.Close()

	// The whole upstream inventory rides one session: src + val.
	if got := rel.Watches(); got != 2 {
		t.Fatalf("Watches() = %d, want 2", got)
	}
	items, err := rel.ListItems()
	if err != nil || len(items["n1"]) != 2 {
		t.Fatalf("ListItems = %v, %v", items, err)
	}

	// A local watcher catches up against the mirrored value.
	waitVersion(t, rel, "n1", "val", 1)
	w, err := rel.WatchItem("n1", "val", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	ev, ok := w.Next()
	if !ok || !ev.Snapshot || ev.Version != 1 {
		t.Fatalf("catch-up = %+v, %v; want snapshot v1", ev, ok)
	}
	if ev.Registry != "n1" || ev.Kind != "val" {
		t.Fatalf("catch-up addressed %s/%s", ev.Registry, ev.Kind)
	}

	// An upstream publication arrives as a plain delta — never
	// Snapshot-flagged mid-stream, whatever the upstream frame said.
	publish()
	h.Barrier()
	waitVersion(t, rel, "n1", "val", 2)
	ev, ok = w.Next()
	if !ok || ev.Snapshot || ev.Version != 2 {
		t.Fatalf("delta = %+v, %v; want v2 delta", ev, ok)
	}
	if f, err := core.Float(ev.Value); err != nil || f != 1 {
		t.Fatalf("delta value = %v, %v; want 1", ev.Value, err)
	}
	if rel.SourceStats().RelayEvents.Load() < 2 {
		t.Fatalf("RelayEvents = %d, want >= 2", rel.SourceStats().RelayEvents.Load())
	}
}

func TestRelayWatchErrors(t *testing.T) {
	ts, _, _, _ := relayUpstream(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rel, err := NewRelay(ctx, ts.URL, RelayOptions{Reconnect: fastReconnect()})
	if err != nil {
		t.Fatal(err)
	}
	defer rel.Close()

	if _, err := rel.WatchItem("nope", "val", Options{}); err == nil {
		t.Fatal("unknown registry accepted")
	}
	if _, err := rel.WatchItem("n1", "bogus", Options{}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := rel.WatchItem("n1", "", Options{}); err == nil {
		t.Fatal("missing kind accepted")
	}
}

// TestRelayKillResume kills a relay mid-stream and proves recovery
// through a replacement costs the downstream exactly one
// Snapshot-flagged event per watch — never a replay, never a gap.
func TestRelayKillResume(t *testing.T) {
	ts, h, r, publish := relayUpstream(t)
	// Pin the item upstream: versions are per-inclusion, and the dead
	// relay's teardown must not release the item (restarting its
	// version stream) before the replacement attaches.
	pin, err := h.Watch(r, "val", Options{Buffer: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer pin.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	relayA, err := NewRelay(ctx, ts.URL, RelayOptions{Reconnect: fastReconnect()})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	hsA := &http.Server{Handler: NewSourceServer(relayA).Handler()}
	go hsA.Serve(ln)

	// Downstream: a reconnecting mux client on the relay tier.
	m := NewClient("http://"+addr).MuxReconnect(ctx, fastReconnect())
	defer m.Close()
	if err := m.Add(1, MuxWatch{Registry: "n1", Kind: "val"}); err != nil {
		t.Fatal(err)
	}

	// Catch up through the relay to v3.
	publish()
	publish()
	h.Barrier()
	snapshots := 0
	var last uint64
	for last < 3 {
		ev, err := m.Next()
		if err != nil {
			t.Fatal(err)
		}
		if ev.Snapshot {
			snapshots++
		}
		last = ev.Version
	}
	if snapshots > 1 {
		t.Fatalf("%d snapshots during initial catch-up, want at most 1", snapshots)
	}

	// Kill the relay mid-stream and publish while the tier is down.
	hsA.Close()
	relayA.Close()
	publish()
	h.Barrier()

	// Replacement relay: wait for it to mirror v4 before re-listening
	// on the same address, so the downstream redial's catch-up is
	// deterministic.
	relayB, err := NewRelay(ctx, ts.URL, RelayOptions{Reconnect: fastReconnect()})
	if err != nil {
		t.Fatal(err)
	}
	defer relayB.Close()
	waitVersion(t, relayB, "n1", "val", 4)
	lnB, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	hsB := &http.Server{Handler: NewSourceServer(relayB).Handler()}
	go hsB.Serve(lnB)
	defer hsB.Close()

	// Recovery: exactly one Snapshot (the v4 catch-up), then deltas.
	ev, err := m.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Snapshot || ev.Version != 4 {
		t.Fatalf("post-kill event = %+v; want snapshot v4", ev)
	}
	publish()
	h.Barrier()
	waitVersion(t, relayB, "n1", "val", 5)
	ev, err = m.Next()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Snapshot || ev.Version != 5 {
		t.Fatalf("post-kill delta = %+v; want v5 delta", ev)
	}
	if relayB.Resumes() != 0 {
		t.Fatalf("fresh relay reports %d resumes", relayB.Resumes())
	}
}
