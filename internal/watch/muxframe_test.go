package watch

import (
	"bytes"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"
)

func TestMuxFrameRoundTrip(t *testing.T) {
	evs := []MuxEvent{
		{ID: 1, Version: 7, Numeric: true, Value: 3.25},
		{ID: 2, Version: 9, Snapshot: true, Coalesced: true, Raw: "hello"},
		{ID: 300, Version: 1 << 40, Err: "compute timeout"},
		{ID: 4, Version: 2},
		{ID: 5, Version: 3, Numeric: true, Value: -0.5, Err: "stale"},
	}
	b := AppendMuxEvents(nil, evs)
	got, heartbeat, n, err := DecodeMuxFrame(b)
	if err != nil || heartbeat || n != len(b) {
		t.Fatalf("DecodeMuxFrame = hb=%v n=%d err=%v", heartbeat, n, err)
	}
	if !reflect.DeepEqual(got, evs) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, evs)
	}

	// The io.Reader path decodes the same bytes, one frame per call.
	two := AppendMuxHeartbeat(b) // events frame then heartbeat frame
	r := bytes.NewReader(two)
	got2, hb2, err := ReadMuxFrame(r)
	if err != nil || hb2 || !reflect.DeepEqual(got2, evs) {
		t.Fatalf("ReadMuxFrame events = %+v hb=%v err=%v", got2, hb2, err)
	}
	if _, hb3, err := ReadMuxFrame(r); err != nil || !hb3 {
		t.Fatalf("ReadMuxFrame heartbeat = hb=%v err=%v", hb3, err)
	}
	if _, _, err := ReadMuxFrame(r); err != io.EOF {
		t.Fatalf("stream end = %v, want io.EOF", err)
	}
}

func TestMuxFrameNonFiniteReroutes(t *testing.T) {
	// Encoding is total: NaN/Inf numerics travel as Raw strings, like
	// EncodeFrame, so the strict decoder never sees our own output as
	// corrupt.
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		b := AppendMuxEvents(nil, []MuxEvent{{ID: 1, Version: 2, Numeric: true, Value: v}})
		got, _, _, err := DecodeMuxFrame(b)
		if err != nil {
			t.Fatalf("decode(%v): %v", v, err)
		}
		if got[0].Numeric || got[0].Raw == "" {
			t.Fatalf("non-finite %v encoded as %+v; want raw", v, got[0])
		}
	}
}

func TestMuxFrameTornAndCorrupt(t *testing.T) {
	b := AppendMuxEvents(nil, []MuxEvent{{ID: 1, Version: 2, Numeric: true, Value: 1}})

	// Every strict prefix is torn: the byte-slice decoder refuses it
	// and the reader path reports an unexpected EOF (or a clean EOF at
	// offset 0 — a frame boundary).
	for cut := 0; cut < len(b); cut++ {
		if _, _, _, err := DecodeMuxFrame(b[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
		_, _, err := ReadMuxFrame(bytes.NewReader(b[:cut]))
		switch {
		case cut == 0 && err != io.EOF:
			t.Fatalf("empty stream = %v, want io.EOF", err)
		case cut > 0 && err != io.ErrUnexpectedEOF && !errors.Is(err, ErrMuxCorrupt):
			t.Fatalf("torn frame at %d = %v", cut, err)
		}
	}

	// Any single bit flip must be rejected (CRC) or decode to a valid
	// frame of different bytes — never panic. Flips confined to the
	// payload must always be caught by the CRC.
	for i := 8; i < len(b); i++ {
		mut := append([]byte(nil), b...)
		mut[i] ^= 0x01
		if _, _, _, err := DecodeMuxFrame(mut); !errors.Is(err, ErrMuxCorrupt) {
			t.Fatalf("payload bit flip at %d slipped past the CRC: %v", i, err)
		}
	}

	// Heartbeat with trailing garbage, empty event list, unknown type.
	for _, payload := range [][]byte{
		{muxPayloadHeartbeat, 0x00},
		{muxPayloadEvents},
		{'Z'},
		{},
	} {
		if _, _, err := DecodeMuxPayload(payload); !errors.Is(err, ErrMuxCorrupt) {
			t.Fatalf("payload %v accepted (err=%v)", payload, err)
		}
	}
}

// FuzzMuxFrame pins the mux codec's safety and canonicalization: no
// panic on arbitrary input; any accepted frame re-encodes to a frame
// that decodes to the same events (semantic fixed point) and whose
// second re-encode is byte-identical (the encoder output is
// canonical).
func FuzzMuxFrame(f *testing.F) {
	f.Add(AppendMuxEvents(nil, []MuxEvent{{ID: 1, Version: 2, Numeric: true, Value: 3.5}}))
	f.Add(AppendMuxEvents(nil, []MuxEvent{
		{ID: 9, Version: 1, Snapshot: true, Raw: "r"},
		{ID: 10, Version: 77, Coalesced: true, Err: "e"},
	}))
	f.Add(AppendMuxHeartbeat(nil))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		evs, heartbeat, _, err := DecodeMuxFrame(data)
		if err != nil {
			return // rejected input: only obligation is not panicking
		}
		var enc1 []byte
		if heartbeat {
			enc1 = AppendMuxHeartbeat(nil)
		} else {
			enc1 = AppendMuxEvents(nil, evs)
		}
		evs2, hb2, n2, err := DecodeMuxFrame(enc1)
		if err != nil || hb2 != heartbeat || n2 != len(enc1) {
			t.Fatalf("re-decode failed: hb=%v n=%d err=%v", hb2, n2, err)
		}
		if !reflect.DeepEqual(evs2, evs) {
			t.Fatalf("semantic fixed point violated:\n first %+v\nsecond %+v", evs, evs2)
		}
		var enc2 []byte
		if hb2 {
			enc2 = AppendMuxHeartbeat(nil)
		} else {
			enc2 = AppendMuxEvents(nil, evs2)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("canonical encode unstable:\n first %x\nsecond %x", enc1, enc2)
		}
	})
}
