package watch

import (
	"testing"
	"time"
)

// sessionPlane builds a hub + view over the test plane and a session
// on it.
func sessionPlane(t *testing.T) (*Session, *Hub, func()) {
	t.Helper()
	env, r, _, publish := testPlane(t)
	h := NewHub(env)
	t.Cleanup(h.Close)
	v := NewHubView(h, env, r)
	s := NewSession(v)
	t.Cleanup(s.Close)
	return s, h, publish
}

// drainSession collects everything pending without blocking.
func drainSession(s *Session) []SessionEvent {
	var evs []SessionEvent
	for {
		ev, ok := s.Poll()
		if !ok {
			return evs
		}
		evs = append(evs, ev)
	}
}

func TestSessionMultiplexesWatches(t *testing.T) {
	s, h, publish := sessionPlane(t)

	// Two watches on the same item under distinct ids: both must see
	// every delivery, each tagged with its own id.
	if err := s.Add(1, "n1", "val", Options{}); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(2, "n1", "val", Options{}); err != nil {
		t.Fatal(err)
	}
	if got := s.Watches(); got != 2 {
		t.Fatalf("Watches() = %d, want 2", got)
	}

	// Both catch-up snapshots (v1 from inclusion) arrive through the
	// merged queue.
	seen := map[uint64]Event{}
	for len(seen) < 2 {
		ev, ok := s.Next()
		if !ok {
			t.Fatal("session closed early")
		}
		seen[ev.ID] = ev.Event
	}
	for id, ev := range seen {
		if !ev.Snapshot || ev.Version != 1 {
			t.Fatalf("watch %d first event = %+v; want snapshot v1", id, ev)
		}
	}

	publish()
	h.Barrier()
	seen = map[uint64]Event{}
	for len(seen) < 2 {
		ev, ok := s.Next()
		if !ok {
			t.Fatal("session closed early")
		}
		seen[ev.ID] = ev.Event
	}
	for id, ev := range seen {
		if ev.Snapshot || ev.Version != 2 {
			t.Fatalf("watch %d delta = %+v; want v2 delta", id, ev)
		}
	}
}

func TestSessionAddErrors(t *testing.T) {
	s, _, _ := sessionPlane(t)

	if err := s.Add(1, "n1", "val", Options{}); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(1, "n1", "src", Options{}); err == nil {
		t.Fatal("duplicate id accepted")
	}
	if err := s.Add(2, "nope", "val", Options{}); err == nil {
		t.Fatal("unknown registry accepted")
	}
	if err := s.Add(2, "n1", "bogus", Options{}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	// A failed add must not leak its id.
	if err := s.Add(2, "n1", "val", Options{}); err != nil {
		t.Fatalf("id 2 not reusable after failed add: %v", err)
	}
}

func TestSessionRemoveDropsEvents(t *testing.T) {
	s, h, publish := sessionPlane(t)

	if err := s.Add(1, "n1", "val", Options{}); err != nil {
		t.Fatal(err)
	}
	if ev, ok := s.Next(); !ok || ev.ID != 1 || !ev.Snapshot {
		t.Fatalf("first event = %+v, %v; want id-1 snapshot", ev, ok)
	}
	s.Remove(1)
	if got := s.Watches(); got != 0 {
		t.Fatalf("Watches() after remove = %d, want 0", got)
	}
	publish()
	h.Barrier()
	if evs := drainSession(s); len(evs) != 0 {
		t.Fatalf("removed watch still delivered: %+v", evs)
	}
	// The id is reusable, and the re-add catches up from scratch.
	// (Removing the last watcher released the item, so its version
	// stream restarted: the snapshot is v1 of a fresh inclusion.)
	if err := s.Add(1, "n1", "val", Options{}); err != nil {
		t.Fatal(err)
	}
	if ev, ok := s.Next(); !ok || !ev.Snapshot {
		t.Fatalf("re-added watch first event = %+v, %v; want snapshot", ev, ok)
	}
}

func TestSessionRoundRobinFairness(t *testing.T) {
	s, h, publish := sessionPlane(t)

	// A hot watch with a deep backlog must not starve a second watch:
	// the dirty queue is serviced one event per turn.
	if err := s.Add(1, "n1", "val", Options{Buffer: 64}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		publish()
		h.Barrier()
	}
	if err := s.Add(2, "n1", "val", Options{Buffer: 64}); err != nil {
		t.Fatal(err)
	}
	// Watch 1 has a multi-event backlog; watch 2 exactly one snapshot.
	// The second poll position must not wait for watch 1 to drain.
	first, ok := s.Poll()
	if !ok {
		t.Fatal("no first event")
	}
	second, ok := s.Poll()
	if !ok {
		t.Fatal("no second event")
	}
	if first.ID == second.ID {
		t.Fatalf("queue not fair: first two events from watch %d and %d", first.ID, second.ID)
	}
}

func TestSessionCloseReleasesNext(t *testing.T) {
	s, _, _ := sessionPlane(t)
	if err := s.Add(1, "n1", "val", Options{}); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if _, ok := s.Next(); !ok {
				return
			}
		}
	}()
	time.Sleep(10 * time.Millisecond)
	s.Close()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Next did not release on Close")
	}
	if err := s.Add(2, "n1", "val", Options{}); err == nil {
		t.Fatal("Add accepted on closed session")
	}
}

func TestSessionAggregatedSignal(t *testing.T) {
	s, h, publish := sessionPlane(t)
	for id := uint64(1); id <= 8; id++ {
		if err := s.Add(id, "n1", "val", Options{}); err != nil {
			t.Fatal(err)
		}
	}
	drainSession(s) // swallow the 8 catch-up snapshots
	publish()
	h.Barrier()
	// One wait on the merged signal suffices to find all 8 deliveries.
	select {
	case <-s.Signal():
	default:
		// Poll below will still find the events; Signal is cap-1 and
		// may have been consumed by the drain above racing delivery.
	}
	evs := drainSession(s)
	if len(evs) != 8 {
		t.Fatalf("drained %d events after publish, want 8", len(evs))
	}
}
