package watch

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// MuxWatch names one desired watch in a mux session: the item plus the
// initial resume point.
type MuxWatch struct {
	Registry string
	Kind     string
	Since    uint64
}

// MuxSession is one live mux transport session: a single streaming
// connection carrying every added watch, plus the control endpoint for
// dynamic add/remove. It is the raw transport — ReconnectMux wraps it
// with redial-and-resume.
type MuxSession struct {
	c    *Client
	id   string
	body io.ReadCloser
	br   *bufio.Reader
	wd   *watchdog
	hbt  time.Duration

	pending []MuxEvent
	frames  atomic.Int64
	events  atomic.Int64
}

// Mux creates a session on the server and attaches its stream. Cancel
// ctx to end the session.
func (c *Client) Mux(ctx context.Context) (*MuxSession, error) {
	return c.mux(ctx, c.HeartbeatTimeout)
}

func (c *Client) mux(ctx context.Context, hbt time.Duration) (*MuxSession, error) {
	var created struct {
		Session string `json:"session"`
	}
	if err := c.postJSON(ctx, "/mux", nil, &created); err != nil {
		return nil, err
	}
	if created.Session == "" {
		return nil, fmt.Errorf("watch: mux create returned no session id")
	}
	u := fmt.Sprintf("%s/mux/stream?session=%s", c.base, url.QueryEscape(created.Session))
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		return nil, &StatusError{Code: resp.StatusCode, Body: string(bytes.TrimSpace(body))}
	}
	return &MuxSession{
		c:    c,
		id:   created.Session,
		body: resp.Body,
		br:   bufio.NewReaderSize(resp.Body, 64<<10),
		wd:   newWatchdog(hbt, resp.Body),
		hbt:  hbt,
	}, nil
}

// ID returns the server-assigned session id.
func (m *MuxSession) ID() string { return m.id }

// Add registers watches under caller-chosen ids in one control round
// trip. The returned map carries per-id registration errors (absent
// ids succeeded); err is a transport- or session-level failure — a
// *StatusError with code 410 means the session is gone and the caller
// must redial.
func (m *MuxSession) Add(ctx context.Context, adds map[uint64]MuxWatch) (map[uint64]string, error) {
	ctl := muxControl{}
	ids := make([]uint64, 0, len(adds))
	for id := range adds {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		w := adds[id]
		ctl.Add = append(ctl.Add, muxAdd{ID: id, Registry: w.Registry, Kind: w.Kind, Since: w.Since})
	}
	return m.control(ctx, ctl)
}

// Remove unregisters watch ids in one control round trip.
func (m *MuxSession) Remove(ctx context.Context, ids ...uint64) error {
	_, err := m.control(ctx, muxControl{Remove: ids})
	return err
}

func (m *MuxSession) control(ctx context.Context, ctl muxControl) (map[uint64]string, error) {
	var res muxControlResult
	path := fmt.Sprintf("/mux/watch?session=%s", url.QueryEscape(m.id))
	if err := m.c.postJSON(ctx, path, ctl, &res); err != nil {
		return nil, err
	}
	return res.Errors, nil
}

// Next blocks for the next event, consuming heartbeat frames
// internally (they feed the watchdog, not the caller). It returns
// io.EOF on clean stream end and ErrHeartbeatTimeout when the peer
// goes silent past the deadline.
func (m *MuxSession) Next() (MuxEvent, error) {
	for {
		if len(m.pending) > 0 {
			ev := m.pending[0]
			m.pending = m.pending[1:]
			return ev, nil
		}
		evs, heartbeat, err := ReadMuxFrame(m.br)
		if err != nil {
			if m.wd.expired() {
				return MuxEvent{}, ErrHeartbeatTimeout
			}
			return MuxEvent{}, err
		}
		m.wd.reset(m.hbt)
		if heartbeat {
			continue
		}
		m.frames.Add(1)
		m.events.Add(int64(len(evs)))
		m.pending = evs
	}
}

// Frames and Events report how many event frames and events this
// session has received — Events()/Frames() is the measured batching
// factor (E25's events-per-write column).
func (m *MuxSession) Frames() int64 { return m.frames.Load() }

// Events reports total events received; see Frames.
func (m *MuxSession) Events() int64 { return m.events.Load() }

// Close ends the session; the server destroys it on stream teardown.
func (m *MuxSession) Close() error {
	m.wd.stop()
	return m.body.Close()
}

// postJSON POSTs body (nil for empty) and decodes the JSON reply.
func (c *Client) postJSON(ctx context.Context, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return &StatusError{Code: resp.StatusCode, Body: string(bytes.TrimSpace(b))}
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// ReconnectMux is a mux session that survives server restarts: it
// tracks the desired watch set and each watch's highest delivered
// version, and on any transport failure redials, re-creates the
// session, and re-adds every watch with since set to its LastSeen —
// so a reconnect costs at most one Snapshot-flagged event per behind
// watch instead of a full replay or a re-subscribe storm. This is the
// upstream leg of a Relay and of mdtop's mux -connect mode.
type ReconnectMux struct {
	c   *Client
	ctx context.Context
	opt ReconnectOptions

	// OnResume, when set, runs after every successful (re)attach with
	// the number of watches re-added — the hook behind the relay's
	// resume banner and RelayResumes counter. The first attach counts.
	OnResume func(watches int)
	// OnReject, when set, runs when the server permanently rejects a
	// watch id (unknown registry/kind); the watch leaves the desired
	// set and will not be retried.
	OnReject func(id uint64, msg string)

	mu       sync.Mutex
	watches  map[uint64]MuxWatch
	lastSeen map[uint64]uint64

	sess     *MuxSession
	delay    time.Duration
	attempts int
}

// MuxReconnect creates an empty self-healing mux session. Connection
// is lazy: the first Next dials. Add/Remove may be called from a
// different goroutine than Next.
func (c *Client) MuxReconnect(ctx context.Context, opt ReconnectOptions) *ReconnectMux {
	return &ReconnectMux{
		c:        c,
		ctx:      ctx,
		opt:      opt.withDefaults(),
		watches:  make(map[uint64]MuxWatch),
		lastSeen: make(map[uint64]uint64),
	}
}

// Add puts (registry, kind, since) into the desired watch set under
// id. When connected it registers immediately; a per-id rejection is
// returned (and the id dropped); transport failures are absorbed — the
// watch registers on the next (re)dial.
func (m *ReconnectMux) Add(id uint64, w MuxWatch) error {
	m.mu.Lock()
	if _, dup := m.watches[id]; dup {
		m.mu.Unlock()
		return fmt.Errorf("watch: duplicate watch id %d", id)
	}
	m.watches[id] = w
	sess := m.sess
	m.mu.Unlock()
	if sess == nil {
		return nil
	}
	rejects, err := sess.Add(m.ctx, map[uint64]MuxWatch{id: w})
	if err != nil {
		// Transport/session failure: Next's redial re-adds the watch.
		return nil
	}
	if msg, bad := rejects[id]; bad {
		m.drop(id, msg)
		return fmt.Errorf("watch: %s", msg)
	}
	return nil
}

// Remove takes id out of the desired set and, when connected,
// unregisters it best-effort.
func (m *ReconnectMux) Remove(id uint64) {
	m.mu.Lock()
	delete(m.watches, id)
	delete(m.lastSeen, id)
	sess := m.sess
	m.mu.Unlock()
	if sess != nil {
		_ = sess.Remove(m.ctx, id)
	}
}

// drop removes a permanently rejected id and fires OnReject.
func (m *ReconnectMux) drop(id uint64, msg string) {
	m.mu.Lock()
	delete(m.watches, id)
	delete(m.lastSeen, id)
	m.mu.Unlock()
	if m.OnReject != nil {
		m.OnReject(id, msg)
	}
}

// LastSeen reports the highest version delivered for watch id — its
// resume point.
func (m *ReconnectMux) LastSeen(id uint64) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastSeen[id]
}

// Watches reports the size of the desired watch set.
func (m *ReconnectMux) Watches() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.watches)
}

// Session exposes the live underlying session (nil before the first
// dial and between redials) for its Frames/Events counters.
func (m *ReconnectMux) Session() *MuxSession {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sess
}

// connect dials a fresh session and re-adds the whole desired set,
// each watch resuming after max(its initial Since, its LastSeen).
func (m *ReconnectMux) connect() error {
	sess, err := m.c.mux(m.ctx, m.heartbeatTimeout())
	if err != nil {
		return err
	}
	m.mu.Lock()
	adds := make(map[uint64]MuxWatch, len(m.watches))
	for id, w := range m.watches {
		if seen := m.lastSeen[id]; seen > w.Since {
			w.Since = seen
		}
		adds[id] = w
	}
	m.mu.Unlock()
	var rejects map[uint64]string
	if len(adds) > 0 {
		rejects, err = sess.Add(m.ctx, adds)
		if err != nil {
			sess.Close()
			return err
		}
	}
	for id, msg := range rejects {
		m.drop(id, msg)
	}
	m.mu.Lock()
	m.sess = sess
	n := len(m.watches)
	m.mu.Unlock()
	if m.OnResume != nil {
		m.OnResume(n)
	}
	return nil
}

func (m *ReconnectMux) heartbeatTimeout() time.Duration {
	if m.opt.HeartbeatTimeout > 0 {
		return m.opt.HeartbeatTimeout
	}
	return m.c.HeartbeatTimeout
}

// Next blocks for the next event, transparently redialing with resume
// across dropped connections, heartbeat timeouts, and server-side
// session loss (410 Gone). It returns the context's error on
// cancellation and the last error once MaxAttempts consecutive
// failures accumulate.
func (m *ReconnectMux) Next() (MuxEvent, error) {
	for {
		if err := m.ctx.Err(); err != nil {
			return MuxEvent{}, err
		}
		m.mu.Lock()
		sess := m.sess
		m.mu.Unlock()
		if sess == nil {
			if err := m.connect(); err != nil {
				if err2 := m.backoff(err); err2 != nil {
					return MuxEvent{}, err2
				}
			}
			continue
		}
		ev, err := sess.Next()
		if err != nil {
			sess.Close()
			m.mu.Lock()
			m.sess = nil
			m.mu.Unlock()
			if cerr := m.ctx.Err(); cerr != nil {
				return MuxEvent{}, cerr
			}
			if err2 := m.backoff(err); err2 != nil {
				return MuxEvent{}, err2
			}
			continue
		}
		m.delay, m.attempts = 0, 0
		m.mu.Lock()
		_, wanted := m.watches[ev.ID]
		if wanted && ev.Version > m.lastSeen[ev.ID] {
			m.lastSeen[ev.ID] = ev.Version
		}
		m.mu.Unlock()
		if !wanted {
			continue // event raced a Remove; drop it
		}
		return ev, nil
	}
}

// backoff sleeps the next jittered exponential delay, mirroring
// ReconnectStream.backoff.
func (m *ReconnectMux) backoff(cause error) error {
	m.attempts++
	if m.opt.MaxAttempts > 0 && m.attempts >= m.opt.MaxAttempts {
		return cause
	}
	if m.delay == 0 {
		m.delay = m.opt.InitialBackoff
	} else if m.delay *= 2; m.delay > m.opt.MaxBackoff {
		m.delay = m.opt.MaxBackoff
	}
	return m.opt.sleep(m.ctx, m.opt.jitter(m.delay))
}

// Close tears down the live session, if any. Further Next calls redial
// unless the context is canceled, so cancel the context to stop for
// good.
func (m *ReconnectMux) Close() error {
	m.mu.Lock()
	sess := m.sess
	m.sess = nil
	m.mu.Unlock()
	if sess == nil {
		return nil
	}
	return sess.Close()
}
