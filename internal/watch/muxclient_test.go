package watch

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"
)

// muxTestServer serves the test plane over a real HTTP listener.
func muxTestServer(t *testing.T, heartbeat time.Duration) (*httptest.Server, *Hub, func()) {
	t.Helper()
	env, r, _, publish := testPlane(t)
	h := NewHub(env)
	t.Cleanup(h.Close)
	srv := NewServer(h, env, r)
	if heartbeat > 0 {
		srv.SetHeartbeat(heartbeat)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, h, publish
}

// fastReconnect is a reconnect policy tight enough for tests.
func fastReconnect() ReconnectOptions {
	return ReconnectOptions{InitialBackoff: time.Millisecond, MaxBackoff: 10 * time.Millisecond}
}

func TestMuxSessionEndToEnd(t *testing.T) {
	ts, h, publish := muxTestServer(t, 0)
	c := NewClient(ts.URL)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	m, err := c.Mux(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Two independent watches on the same item, one connection. (The
	// static "src" item never publishes, so both ride "val".)
	rejects, err := m.Add(ctx, map[uint64]MuxWatch{
		1: {Registry: "n1", Kind: "val"},
		2: {Registry: "n1", Kind: "val"},
	})
	if err != nil || len(rejects) != 0 {
		t.Fatalf("Add = %v, %v", rejects, err)
	}

	// Both watches catch up with their inclusion snapshots through the
	// one stream.
	snaps := map[uint64]MuxEvent{}
	for len(snaps) < 2 {
		ev, err := m.Next()
		if err != nil {
			t.Fatal(err)
		}
		snaps[ev.ID] = ev
	}
	for id, ev := range snaps {
		if !ev.Snapshot || ev.Version != 1 {
			t.Fatalf("watch %d snapshot = %+v", id, ev)
		}
	}

	publish()
	h.Barrier()
	deltas := map[uint64]MuxEvent{}
	for len(deltas) < 2 {
		ev, err := m.Next()
		if err != nil {
			t.Fatal(err)
		}
		deltas[ev.ID] = ev
	}
	for id, ev := range deltas {
		if ev.Version != 2 || ev.Snapshot || !ev.Numeric || ev.Value != 1 {
			t.Fatalf("watch %d delta = %+v; want v2 value 1", id, ev)
		}
	}

	// Remove watch 1, then prove the removal took effect server-side:
	// after a publish plus a fresh add, the stream carries watch 2's
	// delta and watch 3's snapshot but nothing for id 1.
	if err := m.Remove(ctx, 1); err != nil {
		t.Fatal(err)
	}
	publish()
	h.Barrier()
	if rejects, err := m.Add(ctx, map[uint64]MuxWatch{3: {Registry: "n1", Kind: "val"}}); err != nil || len(rejects) != 0 {
		t.Fatalf("re-add = %v, %v", rejects, err)
	}
	got := map[uint64]MuxEvent{}
	for len(got) < 2 {
		ev, err := m.Next()
		if err != nil {
			t.Fatal(err)
		}
		if ev.ID == 1 {
			t.Fatalf("removed watch still delivered: %+v", ev)
		}
		got[ev.ID] = ev
	}
	if ev := got[2]; ev.Version != 3 || ev.Snapshot {
		t.Fatalf("watch 2 post-remove = %+v; want v3 delta", ev)
	}
	if ev := got[3]; !ev.Snapshot || ev.Version != 3 {
		t.Fatalf("watch 3 post-remove = %+v; want v3 snapshot", ev)
	}
	if m.Events() < 4 || m.Frames() < 1 || m.Events() < m.Frames() {
		t.Fatalf("counters: frames=%d events=%d", m.Frames(), m.Events())
	}
}

func TestMuxControlErrors(t *testing.T) {
	ts, _, _ := muxTestServer(t, 0)
	c := NewClient(ts.URL)
	ctx := context.Background()

	m, err := c.Mux(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Per-id errors: the bad watch is reported, the good one works.
	rejects, err := m.Add(ctx, map[uint64]MuxWatch{
		1: {Registry: "nope", Kind: "val"},
		2: {Registry: "n1", Kind: "bogus"},
		3: {Registry: "n1", Kind: "val"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rejects) != 2 || rejects[1] == "" || rejects[2] == "" {
		t.Fatalf("rejects = %v; want errors for ids 1 and 2", rejects)
	}
	if ev, err := m.Next(); err != nil || ev.ID != 3 || !ev.Snapshot {
		t.Fatalf("good watch event = %+v, %v", ev, err)
	}

	// Unknown sessions answer 410 Gone — the redial signal.
	var se *StatusError
	if _, err := (&MuxSession{c: c, id: "deadbeef"}).Add(ctx, map[uint64]MuxWatch{1: {Registry: "n1", Kind: "val"}}); !errors.As(err, &se) || se.Code != 410 {
		t.Fatalf("unknown session Add = %v; want 410", err)
	}
}

func TestMuxStreamSingleAttach(t *testing.T) {
	ts, _, _ := muxTestServer(t, 0)
	c := NewClient(ts.URL)
	ctx := context.Background()
	m, err := c.Mux(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// A second stream attach on the same session must be refused; the
	// session id is single-consumer by construction.
	resp, err := ts.Client().Get(ts.URL + "/mux/stream?session=" + m.ID())
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 409 {
		t.Fatalf("second attach status = %d, want 409", resp.StatusCode)
	}
}

func TestMuxHeartbeatsKeepSessionAlive(t *testing.T) {
	ts, _, _ := muxTestServer(t, 10*time.Millisecond)
	c := NewClient(ts.URL)
	c.HeartbeatTimeout = 150 * time.Millisecond
	ctx := context.Background()
	m, err := c.Mux(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := m.Add(ctx, map[uint64]MuxWatch{1: {Registry: "n1", Kind: "val"}}); err != nil {
		t.Fatal(err)
	}
	if ev, err := m.Next(); err != nil || !ev.Snapshot {
		t.Fatalf("snapshot = %+v, %v", ev, err)
	}
	// Idle for several watchdog periods with Next blocked on the
	// stream: each server heartbeat frame resets the watchdog, so the
	// session stays alive well past the timeout.
	done := make(chan error, 1)
	go func() {
		_, err := m.Next()
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("Next returned during idle: %v", err)
	case <-time.After(400 * time.Millisecond):
	}
}

func TestMuxHeartbeatTimeout(t *testing.T) {
	// A server that never heartbeats trips the client watchdog.
	ts, _, _ := muxTestServer(t, time.Hour)
	c := NewClient(ts.URL)
	c.HeartbeatTimeout = 50 * time.Millisecond
	ctx := context.Background()
	m, err := c.Mux(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := m.Add(ctx, map[uint64]MuxWatch{1: {Registry: "n1", Kind: "val"}}); err != nil {
		t.Fatal(err)
	}
	if ev, err := m.Next(); err != nil || !ev.Snapshot {
		t.Fatalf("snapshot = %+v, %v", ev, err)
	}
	if _, err := m.Next(); err != ErrHeartbeatTimeout {
		t.Fatalf("idle Next = %v, want ErrHeartbeatTimeout", err)
	}
}

func TestReconnectMuxResumesWithOneSnapshot(t *testing.T) {
	ts, h, publish := muxTestServer(t, 0)
	c := NewClient(ts.URL)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Pin the item with an independent session: versions are
	// per-inclusion, so without another watcher the server would
	// release the item (and restart its version stream) the moment the
	// severed session is torn down.
	pin, err := c.Mux(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer pin.Close()
	if _, err := pin.Add(ctx, map[uint64]MuxWatch{1: {Registry: "n1", Kind: "val"}}); err != nil {
		t.Fatal(err)
	}

	resumes := 0
	m := c.MuxReconnect(ctx, fastReconnect())
	m.OnResume = func(int) { resumes++ }
	if err := m.Add(1, MuxWatch{Registry: "n1", Kind: "val"}); err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Catch up to v3.
	publish()
	publish()
	h.Barrier()
	var last uint64
	for last < 3 {
		ev, err := m.Next()
		if err != nil {
			t.Fatal(err)
		}
		last = ev.Version
	}
	if m.LastSeen(1) != 3 {
		t.Fatalf("LastSeen = %d, want 3", m.LastSeen(1))
	}

	// Sever the transport (simulated network drop), publish while
	// disconnected, and verify the redial resumes from LastSeen: the
	// recovery costs exactly one Snapshot-flagged event, not a replay.
	m.Session().Close()
	publish()
	h.Barrier()
	ev, err := m.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Snapshot || ev.Version != 4 {
		t.Fatalf("post-resume event = %+v; want snapshot v4", ev)
	}
	if resumes != 2 { // initial attach + one resume
		t.Fatalf("OnResume fired %d times, want 2", resumes)
	}

	// The stream continues as deltas — no second snapshot.
	publish()
	h.Barrier()
	ev, err = m.Next()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Snapshot || ev.Version != 5 {
		t.Fatalf("post-resume delta = %+v; want v5 delta", ev)
	}
}

func TestLegacyClientHeartbeatTimeout(t *testing.T) {
	// The legacy SSE path gets the same watchdog: a silent server ends
	// the stream with ErrHeartbeatTimeout instead of hanging forever,
	// and WatchReconnect treats it as reconnectable.
	ts, h, publish := muxTestServer(t, time.Hour)
	c := NewClient(ts.URL)
	c.HeartbeatTimeout = 50 * time.Millisecond
	ctx := context.Background()

	st, err := c.Watch(ctx, "n1", "val", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if f, err := st.Next(); err != nil || !f.Snapshot {
		t.Fatalf("snapshot = %+v, %v", f, err)
	}
	if _, err := st.Next(); err != ErrHeartbeatTimeout {
		t.Fatalf("idle Next = %v, want ErrHeartbeatTimeout", err)
	}

	// Through WatchReconnect the timeout is just another redial: the
	// stream heals and the next publication arrives.
	rs := c.WatchReconnect(ctx, "n1", "val", 0, fastReconnect())
	defer rs.Close()
	if f, err := rs.Next(); err != nil || !f.Snapshot {
		t.Fatalf("reconnect snapshot = %+v, %v", f, err)
	}
	publish()
	h.Barrier()
	deadline := time.Now().Add(5 * time.Second)
	for {
		f, err := rs.Next()
		if err != nil {
			t.Fatalf("reconnect stream died: %v", err)
		}
		if f.Version >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no post-timeout delivery")
		}
	}
}

func TestLegacySSEHeartbeatComments(t *testing.T) {
	// Fast server heartbeats keep a watchdogged legacy stream alive
	// while idle.
	ts, _, _ := muxTestServer(t, 10*time.Millisecond)
	c := NewClient(ts.URL)
	c.HeartbeatTimeout = 150 * time.Millisecond
	ctx := context.Background()
	st, err := c.Watch(ctx, "n1", "val", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if f, err := st.Next(); err != nil || !f.Snapshot {
		t.Fatalf("snapshot = %+v, %v", f, err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := st.Next()
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("stream ended during heartbeat-covered idle: %v", err)
	case <-time.After(400 * time.Millisecond):
	}
}
