package watch

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/core"
)

// Frame is the wire form of an Event: flat, comparable scalars only,
// encoded as one JSON object per SSE data line. Numeric values travel
// in Value with Numeric set; everything else (including NaN/Inf, which
// JSON cannot carry) travels as its string form in Raw.
type Frame struct {
	Registry  string  `json:"registry"`
	Kind      string  `json:"kind"`
	Version   uint64  `json:"version"`
	Numeric   bool    `json:"numeric,omitempty"`
	Value     float64 `json:"value,omitempty"`
	Raw       string  `json:"raw,omitempty"`
	Err       string  `json:"err,omitempty"`
	Snapshot  bool    `json:"snapshot,omitempty"`
	Coalesced bool    `json:"coalesced,omitempty"`
}

// FrameOf converts an in-process event to its wire form.
func FrameOf(ev Event) Frame {
	f := Frame{
		Registry:  ev.Registry,
		Kind:      string(ev.Kind),
		Version:   ev.Version,
		Snapshot:  ev.Snapshot,
		Coalesced: ev.Coalesced,
	}
	if ev.Err != nil {
		f.Err = ev.Err.Error()
	}
	if ev.Value == nil {
		return f
	}
	if x, err := core.Float(ev.Value); err == nil && !math.IsNaN(x) && !math.IsInf(x, 0) {
		f.Numeric = true
		f.Value = x
		return f
	}
	f.Raw = fmt.Sprint(ev.Value)
	return f
}

// EncodeFrame renders f as one JSON object. It is total: values JSON
// cannot represent (NaN, ±Inf) are rerouted to Raw, so encoding never
// fails.
func EncodeFrame(f Frame) []byte {
	if f.Numeric && (math.IsNaN(f.Value) || math.IsInf(f.Value, 0)) {
		f.Raw = fmt.Sprint(f.Value)
		f.Numeric = false
		f.Value = 0
	}
	b, err := json.Marshal(f)
	if err != nil {
		// Unreachable: Frame holds only marshalable scalars.
		b, _ = json.Marshal(Frame{Registry: f.Registry, Kind: f.Kind, Version: f.Version, Err: err.Error()})
	}
	return b
}

// DecodeFrame parses one JSON frame. Malformed input yields an error,
// never a panic; a decoded frame re-encodes to an equal frame
// (round-trip fixed point, pinned by FuzzWatchFrame).
func DecodeFrame(data []byte) (Frame, error) {
	var f Frame
	if err := json.Unmarshal(data, &f); err != nil {
		return Frame{}, err
	}
	return f, nil
}
