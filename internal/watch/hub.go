// Package watch is the fan-out hub of the metadata plane: it turns the
// per-entry publication versions of internal/core (PR 5) into a
// subscription service that scales to very large watcher counts.
//
// The scaling argument is the epoch diff. A watcher is the predicate
// "wake me when version(item) > lastSeen", so a publication does not
// need to visit subscribers at all: it CAS-maxes the item's version
// into the hub's per-item point, marks the point dirty, and kicks a
// single sweeper — O(1), allocation-free, and independent of the
// watcher count. The sweeper wakes once per batch of publications
// (publications landing while a sweep is pending coalesce into it,
// which piggybacks on the PR 3 same-instant scope batches: one batch
// of window publishes produces one wakeup, not one per item per
// subscriber), reads each dirty item's latest value once, and delivers
// one event to each watcher that is behind. Watch delivery is
// sheddable in the PR 4 sense: every watcher has a bounded ring and a
// slow consumer's overflow coalesces to the latest value
// (Stats.ShedNotifies) — publishers never block on watchers.
//
// Late joiners and re-joiners get snapshot-then-delta catch-up: Watch
// compares the caller's last-seen version with the item's current one
// and, when behind, enqueues a single snapshot event (one Peek) before
// the delta stream of versions strictly greater than the snapshot's.
package watch

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// shardCount shards each point's wait-list so registration and
// delivery on different shards never contend on one lock.
const shardCount = 8

// DefaultBuffer is the per-watcher ring capacity when Options.Buffer
// is zero.
const DefaultBuffer = 16

// Options configure one Watch registration.
type Options struct {
	// Since is the watcher's last-seen publication version; 0 means
	// "never saw a value". When the item is already past Since, the
	// watcher receives one snapshot event at the current version, then
	// only versions greater than it.
	Since uint64
	// Buffer is the watcher's ring capacity (DefaultBuffer if zero).
	// When the ring is full the newest slot is overwritten with the
	// latest event (coalesce-to-latest).
	Buffer int
	// Notify, when non-nil, is invoked (never blocking on the caller's
	// behalf — it must only do non-blocking work, e.g. a cap-1 channel
	// send) after every event enqueued to the watcher's ring, in
	// addition to the watcher's own signal channel. A mux Session uses
	// it to aggregate any number of watchers into one wakeup.
	Notify func()
}

// pointKey addresses one watched item.
type pointKey struct {
	reg  *core.Registry
	kind core.Kind
}

// point is the hub's per-item state: the highest published version,
// the dirty flag, the intrusive dirty-stack link, and the sharded
// wait-list. It implements core.WatchSink; Published is the publish
// hot path and must stay O(1) and allocation-free.
type point struct {
	hub  *Hub
	reg  *core.Registry
	kind core.Kind
	// sub pins the item for the lifetime of the point, so the entry
	// (and its version stream) cannot be released while watched.
	sub *core.Subscription

	// ver is the highest version handed to Published (CAS-max: calls
	// may arrive out of order from concurrent publishers).
	ver atomic.Uint64
	// dirty is true while the point awaits a sweep. The CAS false->true
	// elects exactly one publisher to push the point onto the hub's
	// dirty stack, so each point is in the stack at most once.
	dirty atomic.Bool
	// next is the intrusive dirty-stack link. Between the winning
	// dirty-CAS and the sweeper's pop it is owned by exactly one
	// goroutine, so no lock guards it.
	next *point

	// nwatchers counts registered watchers across all shards.
	nwatchers atomic.Int64

	shards [shardCount]struct {
		mu       sync.Mutex
		watchers map[*Watcher]struct{}
	}
}

// Published implements core.WatchSink: record the version, elect a
// pusher, kick the sweeper. Everything else — the Peek, the fan-out,
// the ring writes — happens on the sweeper goroutine.
func (p *point) Published(v uint64) {
	p.casMax(v)
	if p.dirty.CompareAndSwap(false, true) {
		p.hub.pushDirty(p)
		p.hub.kick()
		return
	}
	// Already awaiting a sweep: this publication coalesced into the
	// pending wakeup.
	p.hub.stats.CoalescedWakeups.Add(1)
}

// casMax raises ver to v; concurrent publishers may deliver versions
// out of order, and the point only ever tracks the maximum.
func (p *point) casMax(v uint64) {
	for {
		cur := p.ver.Load()
		if v <= cur || p.ver.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Hub is an epoch-diff fan-out hub over one environment's registries.
// One hub serves any number of items and watchers; a single sweeper
// goroutine performs all per-subscriber work.
type Hub struct {
	stats *core.Stats

	mu     sync.Mutex // guards points/closed (structural ops only)
	points map[pointKey]*point
	closed bool

	// dirtyHead is a Treiber stack of points awaiting a sweep. Multiple
	// elected pushers CAS onto it; the sweeper detaches the whole stack
	// with one Swap.
	dirtyHead atomic.Pointer[point]

	wake   chan struct{}      // cap 1: pending-wakeup flag
	syncCh chan chan struct{} // Barrier round-trips
	done   chan struct{}
	swept  sync.WaitGroup

	// nextShard round-robins new watchers across wait-list shards.
	nextShard atomic.Uint64
}

// NewHub creates a hub accounting into the environment's stats and
// starts its sweeper goroutine.
func NewHub(env *core.Env) *Hub {
	h := &Hub{
		stats:  env.Stats(),
		points: make(map[pointKey]*point),
		wake:   make(chan struct{}, 1),
		syncCh: make(chan chan struct{}),
		done:   make(chan struct{}),
	}
	h.swept.Add(1)
	go h.run()
	return h
}

// pushDirty pushes p onto the dirty stack. Only the publisher that won
// p's dirty-CAS calls this, so p.next has a single writer.
func (h *Hub) pushDirty(p *point) {
	for {
		head := h.dirtyHead.Load()
		p.next = head
		if h.dirtyHead.CompareAndSwap(head, p) {
			return
		}
	}
}

// kick arms the sweeper. A kick that finds one already armed is
// absorbed — that batch of publications shares a single wakeup.
func (h *Hub) kick() {
	select {
	case h.wake <- struct{}{}:
	default:
		h.stats.CoalescedWakeups.Add(1)
	}
}

// run is the sweeper loop: one goroutine performs every sweep, so all
// per-subscriber work is serialized off the publish path.
func (h *Hub) run() {
	defer h.swept.Done()
	for {
		select {
		case <-h.wake:
			h.sweep()
		case reply := <-h.syncCh:
			h.sweep()
			close(reply)
		case <-h.done:
			return
		}
	}
}

// sweep drains the dirty stack repeatedly until a pass finds it empty,
// so publications landing mid-sweep are delivered before the sweeper
// sleeps.
func (h *Hub) sweep() {
	for h.sweepPass() {
		h.stats.Wakeups.Add(1)
	}
}

// sweepPass detaches the current dirty stack and delivers each point.
// It reports whether it processed any point. The pass allocates
// nothing: popping is pointer arithmetic, Peek returns the already
// boxed snapshot, and delivery writes into preallocated rings.
func (h *Hub) sweepPass() bool {
	head := h.dirtyHead.Swap(nil)
	if head == nil {
		return false
	}
	for p := head; p != nil; {
		np := p.next
		p.next = nil
		// Clear dirty BEFORE loading the version: a publisher whose
		// dirty-CAS fails against the still-set flag stored its version
		// first, so this load observes it; a publisher that runs after
		// the clear wins the CAS and schedules the next sweep itself.
		// Either way no publication is left undelivered.
		p.dirty.Store(false)
		v := p.ver.Load()
		h.deliverPoint(p, v)
		p = np
	}
	return true
}

// deliverPoint reads the item's current value once and hands one event
// to every watcher behind v.
func (h *Hub) deliverPoint(p *point, v uint64) {
	if p.nwatchers.Load() == 0 {
		return
	}
	val, err := p.reg.Peek(p.kind)
	ev := Event{
		Registry: p.reg.ID(),
		Kind:     p.kind,
		Version:  v,
		Value:    val,
		Err:      err,
	}
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for w := range sh.watchers {
			w.deliver(ev)
		}
		sh.mu.Unlock()
	}
}

// Watch registers a watcher on (reg, kind). The item must be defined;
// the hub takes (and pins) its own subscription, so watching an item
// includes it like any consumer subscription would. If the item is
// already past opt.Since, the watcher's first event is a snapshot at
// the current version (snapshot-then-delta catch-up); afterwards it
// receives only versions strictly greater than the last one delivered.
func (h *Hub) Watch(reg *core.Registry, kind core.Kind, opt Options) (*Watcher, error) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil, fmt.Errorf("watch: hub is closed")
	}
	key := pointKey{reg, kind}
	p := h.points[key]
	if p == nil {
		sub, err := reg.Subscribe(kind)
		if err != nil {
			h.mu.Unlock()
			return nil, fmt.Errorf("watch: including %s/%s: %w", reg.ID(), kind, err)
		}
		p = &point{hub: h, reg: reg, kind: kind, sub: sub}
		for i := range p.shards {
			p.shards[i].watchers = make(map[*Watcher]struct{})
		}
		v0, err := reg.Watch(kind, p)
		if err != nil {
			sub.Unsubscribe()
			h.mu.Unlock()
			return nil, err
		}
		p.casMax(v0)
		h.points[key] = p
	}
	p.nwatchers.Add(1)
	h.mu.Unlock()
	h.stats.Watchers.Add(1)

	w := newWatcher(h.stats, opt.Buffer, opt.Since, opt.Notify, func(w *Watcher) { h.remove(p, w) })
	w.shardIdx = int(h.nextShard.Add(1) % shardCount)
	sh := &p.shards[w.shard()]
	// Catch-up and registration are atomic under the shard lock (the
	// sweeper takes it to deliver): a publication before the version
	// read below is covered by the snapshot, one after it is delivered
	// by the sweep that follows the lock release.
	sh.mu.Lock()
	if cur := p.ver.Load(); cur > opt.Since {
		val, verr := p.reg.Peek(p.kind)
		w.deliver(Event{
			Registry: p.reg.ID(),
			Kind:     p.kind,
			Version:  cur,
			Value:    val,
			Err:      verr,
			Snapshot: true,
		})
		h.stats.CatchUps.Add(1)
	}
	sh.watchers[w] = struct{}{}
	sh.mu.Unlock()
	return w, nil
}

// remove unregisters w from its point and tears the point down when
// the last watcher leaves: the sink is uninstalled and the pinning
// subscription released, so an unwatched item costs nothing again.
func (h *Hub) remove(p *point, w *Watcher) {
	sh := &p.shards[w.shard()]
	sh.mu.Lock()
	_, ok := sh.watchers[w]
	delete(sh.watchers, w)
	sh.mu.Unlock()
	if !ok {
		return
	}
	h.stats.Watchers.Add(-1)
	h.mu.Lock()
	last := p.nwatchers.Add(-1) == 0 && h.points[pointKey{p.reg, p.kind}] == p
	if last {
		delete(h.points, pointKey{p.reg, p.kind})
	}
	h.mu.Unlock()
	if last {
		p.reg.Unwatch(p.kind)
		p.sub.Unsubscribe()
		// The point may still sit on the dirty stack; the sweeper
		// delivers it to an empty wait-list, which is a no-op.
	}
}

// Barrier returns once every publication that completed before the
// call has been delivered to watcher rings. It is the hub's quiescence
// primitive: Env.Quiesce() then Barrier() guarantees every watcher's
// ring holds the final version of its item.
func (h *Hub) Barrier() {
	reply := make(chan struct{})
	select {
	case h.syncCh <- reply:
		<-reply
	case <-h.done:
	}
}

// Close stops the sweeper, closes every watcher, and releases every
// pinned subscription. Watch fails afterwards.
func (h *Hub) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	points := make([]*point, 0, len(h.points))
	for k, p := range h.points {
		points = append(points, p)
		delete(h.points, k)
	}
	h.mu.Unlock()
	close(h.done)
	h.swept.Wait()
	for _, p := range points {
		p.reg.Unwatch(p.kind)
		for i := range p.shards {
			sh := &p.shards[i]
			sh.mu.Lock()
			for w := range sh.watchers {
				delete(sh.watchers, w)
				w.closeRing()
				h.stats.Watchers.Add(-1)
			}
			sh.mu.Unlock()
		}
		p.sub.Unsubscribe()
	}
}
