package watch

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// RelayOptions tunes a relay's upstream leg.
type RelayOptions struct {
	// Reconnect is the upstream redial policy (zero value: retry
	// forever, 50ms..2s jittered backoff). HeartbeatTimeout inside it
	// arms the silent-peer watchdog on the upstream stream.
	Reconnect ReconnectOptions
	// OnResume, when set, runs after every upstream reconnect-with-
	// resume (the first attach excluded) with the number of watches
	// resumed — mdserve -relay prints its banner from here.
	OnResume func(watches int)
	// Stats is the relay's counter sink; nil allocates a private one.
	Stats *core.Stats
}

// relayKey addresses one mirrored item by name (a relay has no
// *core.Registry handles, only the upstream's string inventory).
type relayKey struct {
	registry string
	kind     core.Kind
}

// rpoint is one mirrored item: the latest value received upstream plus
// the local watchers fanned out to. Its mutex orders delivery against
// catch-up — ItemVersion can only report v after every watcher ring
// registered before v's arrival contains v (or a successor).
type rpoint struct {
	registry string
	kind     core.Kind

	mu       sync.Mutex
	version  uint64
	frame    Frame
	watchers map[*Watcher]struct{}
}

// Relay mirrors an upstream watch server through exactly one mux
// session and re-serves it locally, implementing Source so the same
// HTTP Server and mux Sessions run on top of it. 10k downstream
// watchers cost the upstream one connection and one event per
// publication, whatever the local fan-out.
//
// Delivery preserves the 4-property contract end to end: versions are
// the upstream item versions (monotonic per watcher by construction),
// gaps are re-derived locally (an upstream coalesce or resume shows up
// as a version jump and is flagged Coalesced by the watcher ring), a
// Snapshot is only ever the head of a local catch-up, and an upstream
// reconnect resumes from each watch's LastSeen — one Snapshot-flagged
// event per behind watch, never a replay.
type Relay struct {
	upstream string
	stats    *core.Stats
	onResume func(int)

	cancel context.CancelFunc
	mux    *ReconnectMux

	points map[relayKey]*rpoint // immutable after NewRelay
	byID   map[uint64]*rpoint   // upstream watch id -> point
	items  map[string][]string  // upstream inventory at attach time

	attaches atomic.Int64
	err      atomic.Value // error: terminal pump failure
	done     chan struct{}
}

// NewRelay connects to the upstream server, subscribes its whole item
// inventory over one mux session, and starts mirroring. The context
// bounds the relay's lifetime (Close cancels it too).
func NewRelay(ctx context.Context, upstream string, opt RelayOptions) (*Relay, error) {
	stats := opt.Stats
	if stats == nil {
		stats = &core.Stats{}
	}
	client := NewClient(upstream)
	items, err := client.Items(ctx)
	if err != nil {
		return nil, fmt.Errorf("watch: relay: fetch upstream items: %w", err)
	}
	rctx, cancel := context.WithCancel(ctx)
	r := &Relay{
		upstream: upstream,
		stats:    stats,
		onResume: opt.OnResume,
		cancel:   cancel,
		points:   make(map[relayKey]*rpoint),
		byID:     make(map[uint64]*rpoint),
		items:    items,
		done:     make(chan struct{}),
	}
	r.mux = client.MuxReconnect(rctx, opt.Reconnect)
	r.mux.OnResume = func(n int) {
		if r.attaches.Add(1) > 1 {
			stats.RelayResumes.Add(1)
			if r.onResume != nil {
				r.onResume(n)
			}
		}
	}

	// Deterministic id assignment over the sorted inventory; ids are
	// session-scoped, so sorting only aids debugging.
	regs := make([]string, 0, len(items))
	for reg := range items {
		regs = append(regs, reg)
	}
	sort.Strings(regs)
	var id uint64
	for _, reg := range regs {
		kinds := append([]string(nil), items[reg]...)
		sort.Strings(kinds)
		for _, kind := range kinds {
			id++
			p := &rpoint{registry: reg, kind: core.Kind(kind), watchers: make(map[*Watcher]struct{})}
			r.points[relayKey{reg, core.Kind(kind)}] = p
			r.byID[id] = p
			if err := r.mux.Add(id, MuxWatch{Registry: reg, Kind: kind}); err != nil {
				cancel()
				return nil, fmt.Errorf("watch: relay: subscribe %s/%s: %w", reg, kind, err)
			}
		}
	}
	go r.pump()
	return r, nil
}

// pump drains the upstream session for the relay's lifetime.
func (r *Relay) pump() {
	defer close(r.done)
	for {
		ev, err := r.mux.Next()
		if err != nil {
			// Canceled context or exhausted retry budget: park the
			// error and stop. Local watchers keep serving the last
			// mirrored values until the relay is closed.
			r.err.Store(err)
			return
		}
		p := r.byID[ev.ID]
		if p == nil {
			continue
		}
		r.apply(p, ev)
	}
}

// apply publishes one upstream event into the point and its watchers.
func (r *Relay) apply(p *rpoint, me MuxEvent) {
	f := me.AsFrame(p.registry, string(p.kind))
	// Strip transport flags: an upstream Snapshot or Coalesced is a
	// fact about the *upstream* stream. Locally both re-derive — any
	// skipped publication is a version jump, which each watcher ring
	// flags Coalesced itself, and Snapshot marks only the head of a
	// local catch-up (so a mid-stream downstream frame is never
	// Snapshot-flagged, preserving the contract through the hop).
	f.Snapshot = false
	f.Coalesced = false
	ev := frameEvent(f)

	p.mu.Lock()
	if me.Version <= p.version {
		p.mu.Unlock()
		return // stale duplicate (e.g. the post-resume snapshot)
	}
	p.version = me.Version
	p.frame = f
	for w := range p.watchers {
		w.deliver(ev)
	}
	p.mu.Unlock()
	r.stats.RelayEvents.Add(1)
}

// frameEvent converts a wire frame back to an in-process event.
func frameEvent(f Frame) Event {
	ev := Event{
		Registry:  f.Registry,
		Kind:      core.Kind(f.Kind),
		Version:   f.Version,
		Snapshot:  f.Snapshot,
		Coalesced: f.Coalesced,
	}
	if f.Err != "" {
		ev.Err = errors.New(f.Err)
	}
	if f.Numeric {
		ev.Value = f.Value
	} else if f.Raw != "" {
		ev.Value = f.Raw
	}
	return ev
}

// WatchItem implements Source: a local watcher on a mirrored item,
// with the standard snapshot-then-delta catch-up against the last
// value received upstream.
func (r *Relay) WatchItem(registry string, kind core.Kind, opt Options) (*Watcher, error) {
	if kind == "" {
		return nil, fmt.Errorf("watch: missing kind")
	}
	p := r.points[relayKey{registry, kind}]
	if p == nil {
		if _, ok := r.items[registry]; !ok {
			return nil, fmt.Errorf("watch: unknown registry %q", registry)
		}
		return nil, fmt.Errorf("watch: unknown kind %q in registry %q", kind, registry)
	}
	w := newWatcher(r.stats, opt.Buffer, opt.Since, opt.Notify, func(w *Watcher) { r.detach(p, w) })
	p.mu.Lock()
	if p.version > opt.Since {
		snap := frameEvent(p.frame)
		snap.Snapshot = true
		w.deliver(snap)
		r.stats.CatchUps.Add(1)
	}
	p.watchers[w] = struct{}{}
	p.mu.Unlock()
	r.stats.Watchers.Add(1)
	return w, nil
}

// detach removes a closed watcher from its point (idempotent).
func (r *Relay) detach(p *rpoint, w *Watcher) {
	p.mu.Lock()
	_, present := p.watchers[w]
	delete(p.watchers, w)
	p.mu.Unlock()
	if present {
		r.stats.Watchers.Add(-1)
	}
}

// ListItems implements Source with the upstream inventory.
func (r *Relay) ListItems() (map[string][]string, error) {
	out := make(map[string][]string, len(r.items))
	for reg, kinds := range r.items {
		out[reg] = append([]string(nil), kinds...)
	}
	return out, nil
}

// SourceStats implements Source.
func (r *Relay) SourceStats() *core.Stats { return r.stats }

// ItemVersion reports the highest upstream version mirrored for the
// item (0, false before the first event). Once it reports v, every
// watcher registered before v arrived has v (or a successor) in its
// ring — the quiescence anchor modelcheck polls.
func (r *Relay) ItemVersion(registry string, kind core.Kind) (uint64, bool) {
	p := r.points[relayKey{registry, kind}]
	if p == nil {
		return 0, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.version, p.version > 0
}

// Resumes reports completed upstream reconnect-with-resume cycles.
func (r *Relay) Resumes() int64 {
	n := r.attaches.Load()
	if n <= 1 {
		return 0
	}
	return n - 1
}

// Watches reports the relay's upstream watch count (its whole
// mirrored inventory).
func (r *Relay) Watches() int { return len(r.byID) }

// Err returns the terminal upstream failure, if the pump has stopped.
func (r *Relay) Err() error {
	if v := r.err.Load(); v != nil {
		return v.(error)
	}
	return nil
}

// Done is closed when the upstream pump exits (cancellation or an
// exhausted retry budget).
func (r *Relay) Done() <-chan struct{} { return r.done }

// Close tears down the upstream session and closes every local
// watcher.
func (r *Relay) Close() {
	r.cancel()
	r.mux.Close()
	<-r.done
	for _, p := range r.points {
		p.mu.Lock()
		ws := make([]*Watcher, 0, len(p.watchers))
		for w := range p.watchers {
			ws = append(ws, w)
		}
		for _, w := range ws {
			delete(p.watchers, w)
		}
		p.mu.Unlock()
		for _, w := range ws {
			r.stats.Watchers.Add(-1)
			w.closeRing()
		}
	}
}
