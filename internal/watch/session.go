package watch

import (
	"fmt"
	"sync"

	"repro/internal/core"
)

// SessionEvent is one event delivered through a Session, tagged with
// the caller-assigned watch id it belongs to.
type SessionEvent struct {
	ID uint64
	Event
}

// Session multiplexes any number of watches over one consumer: the
// caller Adds and Removes (registry, kind, since) watches under small
// integer ids of its choosing and drains a single merged queue. Each
// watch keeps its own bounded ring underneath — per-watch
// coalesce-to-latest shedding and the per-watch delivery contract
// (monotonic versions, flagged gaps, snapshot catch-up) are exactly
// those of a standalone Watcher — but wakeups aggregate onto one cap-1
// signal channel, so a consumer of 10k watches waits on one channel,
// not 10k. The HTTP mux transport serializes a Session onto one
// connection; pipes.System.WatchMux exposes it in-process.
//
// Delivery notifications push the affected watch onto a dirty queue
// (deduplicated per watch), and Poll services dirty watches in FIFO
// order, one event at a time — round-robin fairness, so a hot item
// cannot starve a quiet one.
type Session struct {
	src Source

	mu      sync.Mutex
	entries map[uint64]*sessionEntry
	queue   []*sessionEntry
	closed  bool

	// signal is the merged cap-1 wakeup; done closes with the session.
	signal chan struct{}
	done   chan struct{}
}

// sessionEntry is one multiplexed watch.
type sessionEntry struct {
	id uint64
	// w is nil until registration completes; a notification arriving
	// in that window (the catch-up snapshot delivered inside WatchItem)
	// sets stalled, and Add re-queues the entry once w is set.
	w       *Watcher
	queued  bool
	stalled bool
}

// NewSession creates an empty session over src.
func NewSession(src Source) *Session {
	return &Session{
		src:     src,
		entries: make(map[uint64]*sessionEntry),
		signal:  make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
}

// Add registers a watch on (registry, kind) under the caller-assigned
// id. The watch's first events obey the standalone contract: a single
// snapshot when the item is already past opt.Since, then deltas.
// Duplicate ids are rejected; the id becomes reusable after Remove.
func (s *Session) Add(id uint64, registry string, kind string, opt Options) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("watch: session is closed")
	}
	if _, dup := s.entries[id]; dup {
		s.mu.Unlock()
		return fmt.Errorf("watch: duplicate watch id %d", id)
	}
	e := &sessionEntry{id: id}
	s.entries[id] = e
	s.mu.Unlock()

	// The catch-up snapshot is delivered inside WatchItem, before e.w
	// is set: wake() records it as stalled and Add requeues below.
	opt.Notify = func() { s.wake(e) }
	w, err := s.src.WatchItem(registry, core.Kind(kind), opt)
	s.mu.Lock()
	if err != nil || s.closed {
		delete(s.entries, id)
		closed := s.closed
		s.mu.Unlock()
		if w != nil && closed {
			w.Close()
		}
		if err == nil {
			err = fmt.Errorf("watch: session is closed")
		}
		return err
	}
	e.w = w
	if e.stalled {
		e.stalled = false
		s.wakeLocked(e)
	}
	s.mu.Unlock()
	return nil
}

// Remove unregisters the watch id. Its undrained events are dropped.
func (s *Session) Remove(id uint64) {
	s.mu.Lock()
	e := s.entries[id]
	delete(s.entries, id)
	s.mu.Unlock()
	if e != nil && e.w != nil {
		e.w.Close()
	}
}

// wake marks e dirty and arms the merged signal. It is the watcher's
// Options.Notify hook — called after every ring write, it must stay
// non-blocking (map/slice ops under a leaf mutex plus a cap-1 send).
func (s *Session) wake(e *sessionEntry) {
	s.mu.Lock()
	if e.w == nil {
		e.stalled = true
		s.mu.Unlock()
		return
	}
	s.wakeLocked(e)
	s.mu.Unlock()
}

// wakeLocked queues e (deduplicated) and arms the signal.
func (s *Session) wakeLocked(e *sessionEntry) {
	if !e.queued {
		e.queued = true
		s.queue = append(s.queue, e)
	}
	select {
	case s.signal <- struct{}{}:
	default:
	}
}

// Poll removes and returns the next event across all watches without
// blocking, servicing dirty watches round-robin.
func (s *Session) Poll() (SessionEvent, bool) {
	for {
		s.mu.Lock()
		var e *sessionEntry
		for len(s.queue) > 0 {
			cand := s.queue[0]
			s.queue = s.queue[1:]
			cand.queued = false
			if s.entries[cand.id] != cand || cand.w == nil {
				continue // removed, or still registering (wake re-marks)
			}
			e = cand
			break
		}
		s.mu.Unlock()
		if e == nil {
			return SessionEvent{}, false
		}
		ev, ok := e.w.Poll()
		if !ok {
			continue // raced empty; the next deliver re-queues it
		}
		if e.w.Pending() > 0 {
			s.wake(e)
		}
		return SessionEvent{ID: e.id, Event: ev}, true
	}
}

// Next blocks until an event is available on any watch and returns
// it; ok is false once the session is closed and drained.
func (s *Session) Next() (SessionEvent, bool) {
	for {
		if ev, ok := s.Poll(); ok {
			return ev, true
		}
		s.mu.Lock()
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return SessionEvent{}, false
		}
		select {
		case <-s.signal:
		case <-s.done:
		}
	}
}

// Signal exposes the merged wakeup channel for select loops. After a
// receive, drain with Poll until empty.
func (s *Session) Signal() <-chan struct{} { return s.signal }

// Done is closed when the session is closed.
func (s *Session) Done() <-chan struct{} { return s.done }

// Watches returns the number of registered watches.
func (s *Session) Watches() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Close unregisters every watch. Events already polled stay valid;
// queued ones are dropped, and Next returns ok == false.
func (s *Session) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ws := make([]*Watcher, 0, len(s.entries))
	for id, e := range s.entries {
		if e.w != nil {
			ws = append(ws, e.w)
		}
		delete(s.entries, id)
	}
	s.queue = nil
	s.mu.Unlock()
	for _, w := range ws {
		w.Close()
	}
	close(s.done)
}
