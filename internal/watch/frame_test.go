package watch

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

func TestFrameOf(t *testing.T) {
	ev := Event{Registry: "n1", Kind: "val", Version: 7, Value: 3.5, Snapshot: true}
	f := FrameOf(ev)
	if !f.Numeric || f.Value != 3.5 || f.Version != 7 || !f.Snapshot || f.Registry != "n1" || f.Kind != "val" {
		t.Fatalf("FrameOf = %+v", f)
	}
	f = FrameOf(Event{Registry: "n1", Kind: "schema", Value: "a,b", Coalesced: true})
	if f.Numeric || f.Raw != "a,b" || !f.Coalesced {
		t.Fatalf("non-numeric FrameOf = %+v", f)
	}
	f = FrameOf(Event{Registry: "n1", Kind: "val", Err: errors.New("boom")})
	if f.Err != "boom" {
		t.Fatalf("error FrameOf = %+v", f)
	}
	f = FrameOf(Event{Registry: "n1", Kind: "val", Value: math.NaN()})
	if f.Numeric || f.Raw == "" {
		t.Fatalf("NaN FrameOf = %+v, want routed to Raw", f)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	in := Frame{Registry: "n1", Kind: "val", Version: 42, Numeric: true, Value: 1.25, Snapshot: true}
	out, err := DecodeFrame(EncodeFrame(in))
	if err != nil || out != in {
		t.Fatalf("round trip = %+v, %v; want %+v", out, err, in)
	}
}

func TestEncodeFrameTotal(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		b := EncodeFrame(Frame{Registry: "n1", Kind: "val", Numeric: true, Value: v})
		f, err := DecodeFrame(b)
		if err != nil {
			t.Fatalf("encode of %v produced undecodable %q: %v", v, b, err)
		}
		if f.Numeric || f.Raw == "" {
			t.Fatalf("encode of %v = %+v, want rerouted to Raw", v, f)
		}
	}
}

func TestDecodeFrameMalformed(t *testing.T) {
	for _, in := range []string{"", "{", "[]", `{"version":-1}`, "\xff\xfe", `{"version":1e999}`} {
		if _, err := DecodeFrame([]byte(in)); err == nil && in != "" {
			// Some inputs (like {}) legitimately decode; only assert no
			// panic, which reaching this line proves.
			continue
		}
	}
}

// FuzzWatchFrame pins the codec contract: DecodeFrame never panics,
// and any input it accepts reaches a fixed point after one round trip
// — decode, encode, decode yields the same frame, and the re-encoded
// bytes are stable.
func FuzzWatchFrame(f *testing.F) {
	f.Add([]byte(`{"registry":"n1","kind":"val","version":3,"numeric":true,"value":2.5}`))
	f.Add([]byte(`{"registry":"n","kind":"k","version":1,"raw":"a,b","snapshot":true,"coalesced":true}`))
	f.Add([]byte(`{"err":"boom"}`))
	f.Add([]byte(`{`))
	f.Add([]byte{0xff, 0xfe, 0xfd})
	f.Fuzz(func(t *testing.T, data []byte) {
		f1, err := DecodeFrame(data)
		if err != nil {
			return
		}
		b1 := EncodeFrame(f1)
		f2, err := DecodeFrame(b1)
		if err != nil {
			t.Fatalf("re-decode of %q failed: %v", b1, err)
		}
		if f1 != f2 {
			t.Fatalf("round trip changed frame: %+v -> %+v", f1, f2)
		}
		if b2 := EncodeFrame(f2); !bytes.Equal(b1, b2) {
			t.Fatalf("encoding not a fixed point: %q -> %q", b1, b2)
		}
	})
}
