package watch

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
)

// Client consumes a Server's SSE watch streams — the library behind
// cmd/mdtop's -connect mode. It uses only net/http.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient creates a client for the server at base (e.g.
// "http://localhost:7171").
func NewClient(base string) *Client {
	return &Client{base: base, hc: &http.Client{}}
}

// Stream is one live SSE watch subscription.
type Stream struct {
	body io.ReadCloser
	sc   *bufio.Scanner
}

// Watch opens a watch stream on (registry, kind) resuming after since
// (0 for snapshot-first). Cancel ctx to end the stream.
func (c *Client) Watch(ctx context.Context, registry, kind string, since uint64) (*Stream, error) {
	u := fmt.Sprintf("%s/watch?registry=%s&kind=%s&since=%s",
		c.base, url.QueryEscape(registry), url.QueryEscape(kind),
		strconv.FormatUint(since, 10))
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		return nil, &StatusError{Code: resp.StatusCode, Body: string(bytes.TrimSpace(body))}
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	return &Stream{body: resp.Body, sc: sc}, nil
}

// Next blocks for the next frame. It returns io.EOF when the server
// closes the stream and the context's error when the watch context is
// canceled.
func (s *Stream) Next() (Frame, error) {
	for s.sc.Scan() {
		line := s.sc.Bytes()
		rest, ok := bytes.CutPrefix(line, []byte("data: "))
		if !ok {
			continue // blank separators, comments, other SSE fields
		}
		return DecodeFrame(rest)
	}
	if err := s.sc.Err(); err != nil {
		return Frame{}, err
	}
	return Frame{}, io.EOF
}

// Close ends the stream.
func (s *Stream) Close() error { return s.body.Close() }

// Items fetches the server's inventory: registry ID to defined kinds.
func (c *Client) Items(ctx context.Context) (map[string][]string, error) {
	var out map[string][]string
	if err := c.getJSON(ctx, "/items", &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Stats fetches the server's core stats snapshot as raw JSON keyed by
// counter name.
func (c *Client) Stats(ctx context.Context) (map[string]int64, error) {
	var out map[string]int64
	if err := c.getJSON(ctx, "/stats", &out); err != nil {
		return nil, err
	}
	return out, nil
}

func (c *Client) getJSON(ctx context.Context, path string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
