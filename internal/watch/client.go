package watch

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync/atomic"
	"time"
)

// ErrHeartbeatTimeout reports a stream whose peer went silent past the
// heartbeat deadline: no event, keepalive, or heartbeat frame arrived
// in time, so the TCP peer is presumed dead even though the connection
// never errored. It is reconnectable — WatchReconnect (and the mux
// ReconnectMux) redial on it like any transport failure.
var ErrHeartbeatTimeout = errors.New("watch: heartbeat timeout")

// Client consumes a Server's watch streams — the library behind
// cmd/mdtop's -connect mode. It uses only net/http.
type Client struct {
	base string
	hc   *http.Client

	// HeartbeatTimeout, when positive, arms a watchdog on every stream
	// this client opens: if no bytes (events, SSE keepalive comments,
	// or mux heartbeat frames) arrive for this long, the stream fails
	// with ErrHeartbeatTimeout instead of hanging on a dead peer. Set
	// it above the server's heartbeat interval (e.g. 4x).
	HeartbeatTimeout time.Duration
}

// NewClient creates a client for the server at base (e.g.
// "http://localhost:7171").
func NewClient(base string) *Client {
	return &Client{base: base, hc: &http.Client{}}
}

// watchdog closes a stream body when the peer goes silent too long.
// Reset after every received line/frame; expired reports whether the
// teardown it forced was a heartbeat timeout (vs a normal Close).
type watchdog struct {
	timer    *time.Timer
	timedOut atomic.Bool
}

// newWatchdog arms a watchdog over body, or returns nil for d <= 0.
func newWatchdog(d time.Duration, body io.Closer) *watchdog {
	if d <= 0 {
		return nil
	}
	wd := &watchdog{}
	wd.timer = time.AfterFunc(d, func() {
		wd.timedOut.Store(true)
		body.Close()
	})
	return wd
}

func (wd *watchdog) reset(d time.Duration) {
	if wd != nil {
		wd.timer.Reset(d)
	}
}

func (wd *watchdog) stop() {
	if wd != nil {
		wd.timer.Stop()
	}
}

// expired translates a read error into ErrHeartbeatTimeout when the
// watchdog caused it.
func (wd *watchdog) expired() bool {
	return wd != nil && wd.timedOut.Load()
}

// Stream is one live SSE watch subscription.
type Stream struct {
	body io.ReadCloser
	sc   *bufio.Scanner
	wd   *watchdog
	hbt  time.Duration
}

// Watch opens a watch stream on (registry, kind) resuming after since
// (0 for snapshot-first). Cancel ctx to end the stream.
func (c *Client) Watch(ctx context.Context, registry, kind string, since uint64) (*Stream, error) {
	return c.watch(ctx, registry, kind, since, c.HeartbeatTimeout)
}

func (c *Client) watch(ctx context.Context, registry, kind string, since uint64, hbt time.Duration) (*Stream, error) {
	u := fmt.Sprintf("%s/watch?registry=%s&kind=%s&since=%s",
		c.base, url.QueryEscape(registry), url.QueryEscape(kind),
		strconv.FormatUint(since, 10))
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		return nil, &StatusError{Code: resp.StatusCode, Body: string(bytes.TrimSpace(body))}
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	return &Stream{body: resp.Body, sc: sc, wd: newWatchdog(hbt, resp.Body), hbt: hbt}, nil
}

// Next blocks for the next frame. It returns io.EOF when the server
// closes the stream, ErrHeartbeatTimeout when the peer goes silent
// past the client's heartbeat deadline, and the context's error when
// the watch context is canceled.
func (s *Stream) Next() (Frame, error) {
	for s.sc.Scan() {
		// Any line — data, keepalive comment, blank separator — proves
		// the peer alive.
		s.wd.reset(s.hbt)
		line := s.sc.Bytes()
		rest, ok := bytes.CutPrefix(line, []byte("data: "))
		if !ok {
			continue // blank separators, comments, other SSE fields
		}
		return DecodeFrame(rest)
	}
	if s.wd.expired() {
		return Frame{}, ErrHeartbeatTimeout
	}
	if err := s.sc.Err(); err != nil {
		return Frame{}, err
	}
	return Frame{}, io.EOF
}

// Close ends the stream.
func (s *Stream) Close() error {
	s.wd.stop()
	return s.body.Close()
}

// Items fetches the server's inventory: registry ID to defined kinds.
func (c *Client) Items(ctx context.Context) (map[string][]string, error) {
	var out map[string][]string
	if err := c.getJSON(ctx, "/items", &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Stats fetches the server's core stats snapshot as raw JSON keyed by
// counter name.
func (c *Client) Stats(ctx context.Context) (map[string]int64, error) {
	var out map[string]int64
	if err := c.getJSON(ctx, "/stats", &out); err != nil {
		return nil, err
	}
	return out, nil
}

func (c *Client) getJSON(ctx context.Context, path string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
