package watch

import (
	"context"
	"net/http/httptest"
	"testing"
)

func TestServerSSEEndToEnd(t *testing.T) {
	env, r, _, publish := testPlane(t)
	h := NewHub(env)
	defer h.Close()
	srv := httptest.NewServer(NewServer(h, env, r).Handler())
	defer srv.Close()

	c := NewClient(srv.URL)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	st, err := c.Watch(ctx, "n1", "val", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// Snapshot head: the watch included the item (publishing v1) and
	// the fresh stream is behind.
	f, err := st.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !f.Snapshot || f.Version != 1 || f.Registry != "n1" || f.Kind != "val" {
		t.Fatalf("first frame = %+v, want n1/val snapshot v1", f)
	}

	publish()
	f, err = st.Next()
	if err != nil {
		t.Fatal(err)
	}
	if f.Snapshot || f.Version != 2 || !f.Numeric || f.Value != 1 {
		t.Fatalf("delta frame = %+v, want v2 value 1", f)
	}

	items, err := c.Items(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if kinds := items["n1"]; len(kinds) != 2 {
		t.Fatalf("items[n1] = %v, want [src val]", kinds)
	}
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats["Watchers"] != 1 {
		t.Fatalf("stats Watchers = %d, want 1", stats["Watchers"])
	}
	if stats["CatchUps"] < 1 {
		t.Fatalf("stats CatchUps = %d, want >= 1", stats["CatchUps"])
	}
}

func TestServerWatchErrors(t *testing.T) {
	env, r, _, _ := testPlane(t)
	h := NewHub(env)
	defer h.Close()
	srv := httptest.NewServer(NewServer(h, env, r).Handler())
	defer srv.Close()
	c := NewClient(srv.URL)
	ctx := context.Background()

	for _, tc := range []struct{ reg, kind string }{
		{"nope", "val"},   // unknown registry
		{"n1", ""},        // missing kind
		{"n1", "missing"}, // unknown item
	} {
		if _, err := c.Watch(ctx, tc.reg, tc.kind, 0); err == nil {
			t.Fatalf("Watch(%q, %q) succeeded", tc.reg, tc.kind)
		}
	}
}

func TestServerResume(t *testing.T) {
	env, r, _, publish := testPlane(t)
	h := NewHub(env)
	defer h.Close()
	srv := httptest.NewServer(NewServer(h, env, r).Handler())
	defer srv.Close()
	c := NewClient(srv.URL)
	ctx := context.Background()

	// Pin the item for the whole test: publication versions are
	// per-entry-lifetime, and without an application subscription the
	// hub's pin is the only one — a disconnect would release the entry
	// and restart its version stream.
	sub, err := r.Subscribe("val")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Unsubscribe()

	// First connection: snapshot, then disconnect after noting the
	// version.
	st, err := c.Watch(ctx, "n1", "val", 0)
	if err != nil {
		t.Fatal(err)
	}
	f, err := st.Next()
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	seen := f.Version

	// Activity while disconnected.
	publish()
	publish()
	h.Barrier()

	// Resume with since=seen: one snapshot covering the gap, nothing
	// replayed.
	st2, err := c.Watch(ctx, "n1", "val", seen)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	f2, err := st2.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !f2.Snapshot || f2.Version != seen+2 {
		t.Fatalf("resume frame = %+v, want snapshot v%d", f2, seen+2)
	}
}
