package watch

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
)

// DefaultHeartbeat is the interval between server keepalives on an
// otherwise idle stream: a comment line on legacy SSE, an 'H' frame on
// mux streams. Clients use its absence to detect a silently dead peer.
const DefaultHeartbeat = 15 * time.Second

// muxSessionTTL bounds how long a created-but-unclaimed mux session
// may wait for its stream before the next create sweeps it.
const muxSessionTTL = time.Minute

// maxMuxBatch caps the events packed into one mux frame; a burst
// larger than this simply spans frames, all written before one flush.
const maxMuxBatch = 1024

// Server exposes a watch Source over HTTP — the stdlib-only wire
// surface behind cmd/mdserve, serving either a primary hub (HubView)
// or a Relay. Endpoints:
//
//	GET /watch?registry=ID&kind=K[&since=N][&buffer=N]
//	    Legacy per-item stream: text/event-stream of JSON frames, one
//	    snapshot (when behind) then deltas, with ": hb" comment
//	    keepalives. One connection per watched item.
//	POST /mux
//	    Create a mux session; returns {"session": id}. The session
//	    holds any number of watches over one downstream connection.
//	POST /mux/watch?session=ID
//	    Batched control: {"add": [{id, registry, kind, since}...],
//	    "remove": [id...]}. Per-id failures come back in "errors";
//	    unknown sessions answer 410 Gone (redial signal).
//	GET /mux/stream?session=ID
//	    The session's single downstream: CRC-framed binary batches
//	    ('E' frames carrying many events, 'H' heartbeats). Closing the
//	    stream destroys the session.
//	GET /items
//	    JSON inventory: each registry with its defined item kinds.
//	GET /stats
//	    JSON core.Snapshot of the source's self-metrics.
type Server struct {
	src       Source
	heartbeat time.Duration

	mu       sync.Mutex
	sessions map[string]*muxSessionState
}

// muxSessionState is one server-side mux session between creation and
// stream teardown.
type muxSessionState struct {
	id      string
	sess    *Session
	created time.Time
	claimed bool
}

// NewServer creates a server over hub exposing the given registries by
// their IDs — the primary-server constructor.
func NewServer(hub *Hub, env *core.Env, regs ...*core.Registry) *Server {
	return NewSourceServer(NewHubView(hub, env, regs...))
}

// NewSourceServer creates a server over any Source (a HubView or a
// Relay re-serving an upstream).
func NewSourceServer(src Source) *Server {
	return &Server{src: src, heartbeat: DefaultHeartbeat, sessions: make(map[string]*muxSessionState)}
}

// SetHeartbeat overrides the keepalive interval (tests use millisecond
// values). Call before serving.
func (s *Server) SetHeartbeat(d time.Duration) {
	if d > 0 {
		s.heartbeat = d
	}
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/watch", s.handleWatch)
	mux.HandleFunc("/mux", s.handleMuxCreate)
	mux.HandleFunc("/mux/watch", s.handleMuxControl)
	mux.HandleFunc("/mux/stream", s.handleMuxStream)
	mux.HandleFunc("/items", s.handleItems)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

// parseWatchOptions extracts since/buffer from a query.
func parseWatchOptions(q map[string][]string) (Options, error) {
	var opt Options
	get := func(k string) string {
		if vs := q[k]; len(vs) > 0 {
			return vs[0]
		}
		return ""
	}
	if v := get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return opt, fmt.Errorf("bad since")
		}
		opt.Since = n
	}
	if v := get("buffer"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return opt, fmt.Errorf("bad buffer")
		}
		opt.Buffer = n
	}
	return opt, nil
}

func (s *Server) handleWatch(w http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	opt, err := parseWatchOptions(q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	wt, err := s.src.WatchItem(q.Get("registry"), core.Kind(q.Get("kind")), opt)
	if err != nil {
		code := http.StatusNotFound
		if q.Get("kind") == "" {
			code = http.StatusBadRequest
		}
		http.Error(w, err.Error(), code)
		return
	}
	defer wt.Close()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	stats := s.src.SourceStats()
	hb := time.NewTicker(s.heartbeat)
	defer hb.Stop()
	ctx := req.Context()
	for {
		// Drain every pending event before the single Flush below: a
		// burst costs one flush (and at most one packet per writev),
		// not one per event.
		for {
			ev, ok := wt.Poll()
			if !ok {
				break
			}
			if _, err := fmt.Fprintf(w, "data: %s\n\n", EncodeFrame(FrameOf(ev))); err != nil {
				return
			}
		}
		fl.Flush()
		select {
		case <-wt.Signal():
		case <-hb.C:
			// SSE comment line: ignored by frame parsing, resets the
			// client's heartbeat watchdog.
			if _, err := fmt.Fprintf(w, ": hb\n\n"); err != nil {
				return
			}
			fl.Flush()
			stats.MuxHeartbeats.Add(1)
		case <-wt.Done():
			return
		case <-ctx.Done():
			return
		}
	}
}

// handleMuxCreate allocates a session and sweeps stale unclaimed ones.
func (s *Server) handleMuxCreate(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var idb [16]byte
	if _, err := rand.Read(idb[:]); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	id := hex.EncodeToString(idb[:])
	st := &muxSessionState{id: id, sess: NewSession(s.src), created: time.Now()}

	stats := s.src.SourceStats()
	var stale []*muxSessionState
	s.mu.Lock()
	for sid, old := range s.sessions {
		if !old.claimed && time.Since(old.created) > muxSessionTTL {
			delete(s.sessions, sid)
			stale = append(stale, old)
		}
	}
	s.sessions[id] = st
	s.mu.Unlock()
	for _, old := range stale {
		old.sess.Close()
		stats.MuxSessions.Add(-1)
	}
	stats.MuxSessions.Add(1)
	writeJSON(w, map[string]string{"session": id})
}

// lookupSession resolves the session query parameter; a miss has
// already answered the request (410 Gone — the client's session died
// with its stream, redial from scratch).
func (s *Server) lookupSession(w http.ResponseWriter, req *http.Request) *muxSessionState {
	id := req.URL.Query().Get("session")
	s.mu.Lock()
	st := s.sessions[id]
	s.mu.Unlock()
	if st == nil {
		http.Error(w, "unknown session", http.StatusGone)
		return nil
	}
	return st
}

// handleMuxControl applies one batched add/remove request to a
// session. Registration errors are per-id, not request-fatal: a
// relay re-adding 10k watches should not lose 9999 good ones to one
// deleted item.
func (s *Server) handleMuxControl(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	st := s.lookupSession(w, req)
	if st == nil {
		return
	}
	var ctl muxControl
	if err := json.NewDecoder(req.Body).Decode(&ctl); err != nil {
		http.Error(w, "bad control body: "+err.Error(), http.StatusBadRequest)
		return
	}
	res := muxControlResult{}
	for _, a := range ctl.Add {
		err := st.sess.Add(a.ID, a.Registry, a.Kind, Options{Since: a.Since})
		if err != nil {
			if res.Errors == nil {
				res.Errors = make(map[uint64]string)
			}
			res.Errors[a.ID] = err.Error()
		}
	}
	for _, id := range ctl.Remove {
		st.sess.Remove(id)
	}
	writeJSON(w, res)
}

// handleMuxStream attaches the session's one downstream connection and
// pumps batched binary frames until the client goes away; teardown
// destroys the session.
func (s *Server) handleMuxStream(w http.ResponseWriter, req *http.Request) {
	st := s.lookupSession(w, req)
	if st == nil {
		return
	}
	s.mu.Lock()
	if st.claimed {
		s.mu.Unlock()
		http.Error(w, "stream already attached", http.StatusConflict)
		return
	}
	st.claimed = true
	s.mu.Unlock()

	stats := s.src.SourceStats()
	defer func() {
		s.mu.Lock()
		delete(s.sessions, st.id)
		s.mu.Unlock()
		st.sess.Close()
		stats.MuxSessions.Add(-1)
	}()

	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	hb := time.NewTicker(s.heartbeat)
	defer hb.Stop()
	ctx := req.Context()
	var buf []byte
	evs := make([]MuxEvent, 0, maxMuxBatch)
	for {
		// Pack everything pending into full frames, then flush once: a
		// 10k-event burst amortizes to maxMuxBatch events per write and
		// a single flush.
		for {
			evs = evs[:0]
			for len(evs) < maxMuxBatch {
				se, ok := st.sess.Poll()
				if !ok {
					break
				}
				evs = append(evs, MuxEventOf(se.ID, se.Event))
			}
			if len(evs) == 0 {
				break
			}
			buf = AppendMuxEvents(buf[:0], evs)
			if _, err := w.Write(buf); err != nil {
				return
			}
			stats.MuxFrames.Add(1)
			stats.MuxEvents.Add(int64(len(evs)))
		}
		fl.Flush()
		select {
		case <-st.sess.Signal():
		case <-hb.C:
			buf = AppendMuxHeartbeat(buf[:0])
			if _, err := w.Write(buf); err != nil {
				return
			}
			fl.Flush()
			stats.MuxHeartbeats.Add(1)
		case <-st.sess.Done():
			return
		case <-ctx.Done():
			return
		}
	}
}

func (s *Server) handleItems(w http.ResponseWriter, _ *http.Request) {
	items, err := s.src.ListItems()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if items == nil {
		items = map[string][]string{}
	}
	writeJSON(w, items)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.src.SourceStats().Snapshot())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
