package watch

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"

	"repro/internal/core"
)

// Server exposes a Hub over HTTP with server-sent events — the
// stdlib-only wire surface behind cmd/mdserve. Endpoints:
//
//	GET /watch?registry=ID&kind=K[&since=N][&buffer=N]
//	    text/event-stream of JSON frames: one snapshot (when behind),
//	    then deltas. The stream lives until the client disconnects.
//	GET /items
//	    JSON inventory: each registry with its defined item kinds.
//	GET /stats
//	    JSON core.Snapshot of the environment's self-metrics.
type Server struct {
	hub  *Hub
	env  *core.Env
	mu   map[string]*core.Registry
	keys []string
}

// NewServer creates a server over hub exposing the given registries by
// their IDs.
func NewServer(hub *Hub, env *core.Env, regs ...*core.Registry) *Server {
	s := &Server{hub: hub, env: env, mu: make(map[string]*core.Registry)}
	for _, r := range regs {
		if _, dup := s.mu[r.ID()]; !dup {
			s.keys = append(s.keys, r.ID())
		}
		s.mu[r.ID()] = r
	}
	sort.Strings(s.keys)
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/watch", s.handleWatch)
	mux.HandleFunc("/items", s.handleItems)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

func (s *Server) handleWatch(w http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	reg := s.mu[q.Get("registry")]
	if reg == nil {
		http.Error(w, fmt.Sprintf("unknown registry %q", q.Get("registry")), http.StatusNotFound)
		return
	}
	kind := core.Kind(q.Get("kind"))
	if kind == "" {
		http.Error(w, "missing kind", http.StatusBadRequest)
		return
	}
	var opt Options
	if v := q.Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			http.Error(w, "bad since", http.StatusBadRequest)
			return
		}
		opt.Since = n
	}
	if v := q.Get("buffer"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "bad buffer", http.StatusBadRequest)
			return
		}
		opt.Buffer = n
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	wt, err := s.hub.Watch(reg, kind, opt)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	defer wt.Close()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	ctx := req.Context()
	for {
		for {
			ev, ok := wt.Poll()
			if !ok {
				break
			}
			if _, err := fmt.Fprintf(w, "data: %s\n\n", EncodeFrame(FrameOf(ev))); err != nil {
				return
			}
		}
		fl.Flush()
		select {
		case <-wt.Signal():
		case <-wt.Done():
			return
		case <-ctx.Done():
			return
		}
	}
}

// itemsReply is the /items payload: registry ID to its defined kinds.
type itemsReply map[string][]string

func (s *Server) handleItems(w http.ResponseWriter, _ *http.Request) {
	reply := make(itemsReply, len(s.keys))
	for _, id := range s.keys {
		var kinds []string
		for _, k := range s.mu[id].Available() {
			kinds = append(kinds, string(k))
		}
		reply[id] = kinds
	}
	writeJSON(w, reply)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.env.Stats().Snapshot())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
