package watch

import (
	"sync"

	"repro/internal/core"
)

// NaiveHub is the ablation baseline for E23: the classic per-subscriber
// callback fan-out. Every publication synchronously invokes every
// subscriber's callback on the publisher's goroutine, so publish cost
// is O(watchers) — the shape the epoch-diff hub exists to avoid. It is
// not part of the public surface; internal/bench compares against it.
type NaiveHub struct {
	mu   sync.RWMutex
	subs map[pointKey]*naivePoint
}

type naivePoint struct {
	hub *NaiveHub
	mu  sync.RWMutex
	cbs []func(version uint64)
	sub *core.Subscription
}

// Published implements core.WatchSink by calling back every subscriber
// inline.
func (p *naivePoint) Published(v uint64) {
	p.mu.RLock()
	for _, cb := range p.cbs {
		cb(v)
	}
	p.mu.RUnlock()
}

// NewNaiveHub creates an empty callback hub.
func NewNaiveHub() *NaiveHub {
	return &NaiveHub{subs: make(map[pointKey]*naivePoint)}
}

// Subscribe registers cb to run inline on every publication of
// (reg, kind), including the item if needed.
func (h *NaiveHub) Subscribe(reg *core.Registry, kind core.Kind, cb func(version uint64)) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	key := pointKey{reg, kind}
	p := h.subs[key]
	if p == nil {
		sub, err := reg.Subscribe(kind)
		if err != nil {
			return err
		}
		p = &naivePoint{hub: h, sub: sub}
		if _, err := reg.Watch(kind, p); err != nil {
			sub.Unsubscribe()
			return err
		}
		h.subs[key] = p
	}
	p.mu.Lock()
	p.cbs = append(p.cbs, cb)
	p.mu.Unlock()
	return nil
}

// Close uninstalls every sink and releases every pinned subscription.
func (h *NaiveHub) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for key, p := range h.subs {
		key.reg.Unwatch(key.kind)
		p.sub.Unsubscribe()
		delete(h.subs, key)
	}
}
