package watch

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"time"
)

// ReconnectOptions tunes WatchReconnect's retry loop. The zero value
// retries forever with 50ms initial backoff doubling to 2s, each delay
// jittered uniformly over [d/2, d] to decorrelate a fleet of clients
// reconnecting after the same server restart.
type ReconnectOptions struct {
	// InitialBackoff is the first retry delay (default 50ms).
	InitialBackoff time.Duration
	// MaxBackoff caps the exponential growth (default 2s).
	MaxBackoff time.Duration
	// MaxAttempts bounds consecutive failures before Next gives up and
	// returns the last error; 0 retries until the context is canceled.
	MaxAttempts int
	// HeartbeatTimeout arms the per-stream silent-peer watchdog (see
	// Client.HeartbeatTimeout); 0 falls back to the client's setting.
	// A tripped watchdog surfaces as ErrHeartbeatTimeout internally and
	// is retried like any dropped connection.
	HeartbeatTimeout time.Duration

	// Test hooks: nil selects time-based sleep and math/rand jitter.
	sleep  func(context.Context, time.Duration) error
	jitter func(time.Duration) time.Duration
}

// StatusError reports a watch request the server answered with a
// non-200 status. Client errors (4xx) mark the watch itself invalid —
// unknown registry or kind — and are not retried by WatchReconnect.
type StatusError struct {
	Code int
	Body string
}

func (e *StatusError) Error() string {
	return "watch: " + http.StatusText(e.Code) + ": " + e.Body
}

// ReconnectStream is a Watch that survives server restarts. On any
// stream error it backs off and redials with since set to the highest
// version it delivered, so the server's snapshot-then-delta catch-up
// yields at most one Snapshot-flagged frame per reconnect and no
// replayed deltas. Connection is lazy: the first Next dials.
type ReconnectStream struct {
	c              *Client
	ctx            context.Context
	registry, kind string
	opt            ReconnectOptions

	cur      *Stream
	lastSeen uint64
	delay    time.Duration
	attempts int
}

// WatchReconnect creates a self-healing watch stream on (registry,
// kind) resuming after since. It never dials here — connection errors
// surface through Next, which retries them under opt's backoff policy.
func (c *Client) WatchReconnect(ctx context.Context, registry, kind string, since uint64, opt ReconnectOptions) *ReconnectStream {
	return &ReconnectStream{c: c, ctx: ctx, registry: registry, kind: kind, opt: opt.withDefaults(), lastSeen: since}
}

// withDefaults fills the zero-value policy: 50ms initial backoff
// doubling to 2s, time-based sleep, uniform [d/2, d] jitter.
func (opt ReconnectOptions) withDefaults() ReconnectOptions {
	if opt.InitialBackoff <= 0 {
		opt.InitialBackoff = 50 * time.Millisecond
	}
	if opt.MaxBackoff <= 0 {
		opt.MaxBackoff = 2 * time.Second
	}
	if opt.sleep == nil {
		opt.sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
	if opt.jitter == nil {
		opt.jitter = func(d time.Duration) time.Duration {
			return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
		}
	}
	return opt
}

// LastSeen reports the highest version Next has delivered — the resume
// point the next reconnect will use.
func (s *ReconnectStream) LastSeen() uint64 { return s.lastSeen }

// Next blocks for the next frame, transparently reconnecting across
// dropped connections. It returns the context's error on cancellation,
// a *StatusError immediately when the server rejects the watch as
// invalid (4xx), and the last dial error once MaxAttempts consecutive
// failures accumulate.
func (s *ReconnectStream) Next() (Frame, error) {
	for {
		if err := s.ctx.Err(); err != nil {
			return Frame{}, err
		}
		if s.cur == nil {
			hbt := s.opt.HeartbeatTimeout
			if hbt <= 0 {
				hbt = s.c.HeartbeatTimeout
			}
			st, err := s.c.watch(s.ctx, s.registry, s.kind, s.lastSeen, hbt)
			if err != nil {
				var se *StatusError
				if errors.As(err, &se) && se.Code >= 400 && se.Code < 500 {
					return Frame{}, err
				}
				if err2 := s.backoff(err); err2 != nil {
					return Frame{}, err2
				}
				continue
			}
			s.cur = st
		}
		f, err := s.cur.Next()
		if err != nil {
			s.cur.Close()
			s.cur = nil
			if cerr := s.ctx.Err(); cerr != nil {
				return Frame{}, cerr
			}
			if err2 := s.backoff(err); err2 != nil {
				return Frame{}, err2
			}
			continue
		}
		s.delay, s.attempts = 0, 0
		if f.Version > s.lastSeen {
			s.lastSeen = f.Version
		}
		return f, nil
	}
}

// backoff sleeps the next jittered exponential delay. It returns a
// non-nil error — cause, or the context's error — when the retry budget
// or the context is exhausted, ending the stream.
func (s *ReconnectStream) backoff(cause error) error {
	s.attempts++
	if s.opt.MaxAttempts > 0 && s.attempts >= s.opt.MaxAttempts {
		return cause
	}
	if s.delay == 0 {
		s.delay = s.opt.InitialBackoff
	} else if s.delay *= 2; s.delay > s.opt.MaxBackoff {
		s.delay = s.opt.MaxBackoff
	}
	return s.opt.sleep(s.ctx, s.opt.jitter(s.delay))
}

// Close ends the stream. Further Next calls redial unless the context
// is also canceled, so cancel the watch context to stop for good.
func (s *ReconnectStream) Close() error {
	if s.cur == nil {
		return nil
	}
	st := s.cur
	s.cur = nil
	return st.Close()
}
