package watch

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// The mux wire protocol batches many watch events into one CRC-framed
// binary write. Framing follows internal/persist: 4-byte little-endian
// payload length, 4-byte little-endian IEEE CRC32 of the payload, then
// the payload. The payload's first byte is its type:
//
//	'E'  one or more events, back to back:
//	       uvarint watch id | uvarint version | flags byte
//	       | 8B LE float64        (iff flags&muxNumeric)
//	       | uvarint len + bytes  (iff flags&muxRaw)
//	       | uvarint len + bytes  (iff flags&muxErr)
//	'H'  heartbeat, no body
//
// Registry and kind never travel per event — the watch id was bound to
// them at Add time, which is what makes a 10k-watch burst amortize to a
// few hundred bytes per frame instead of 10k JSON objects.
const (
	muxPayloadEvents    = 'E'
	muxPayloadHeartbeat = 'H'

	muxSnapshot  = 1 << 0
	muxCoalesced = 1 << 1
	muxNumeric   = 1 << 2
	muxRaw       = 1 << 3
	muxErr       = 1 << 4
	muxFlagsMask = muxSnapshot | muxCoalesced | muxNumeric | muxRaw | muxErr

	muxFrameHeader = 8
	// maxMuxFrame bounds one frame payload; a longer length field is
	// corruption, not an allocation request.
	maxMuxFrame = 16 << 20
)

// ErrMuxCorrupt reports mux transport bytes that cannot be decoded: a
// torn frame, a CRC mismatch, or a payload violating the grammar above.
var ErrMuxCorrupt = errors.New("watch: corrupt mux frame")

// MuxEvent is the wire form of one multiplexed event: an Event with
// its registry/kind replaced by the session-scoped watch id.
type MuxEvent struct {
	ID        uint64
	Version   uint64
	Snapshot  bool
	Coalesced bool
	Numeric   bool
	Value     float64
	Raw       string
	Err       string
}

// MuxEventOf converts an in-process event for watch id to wire form,
// with the same value routing as FrameOf (finite numerics in Value,
// everything else stringly in Raw).
func MuxEventOf(id uint64, ev Event) MuxEvent {
	f := FrameOf(ev)
	return MuxEvent{
		ID:        id,
		Version:   f.Version,
		Snapshot:  f.Snapshot,
		Coalesced: f.Coalesced,
		Numeric:   f.Numeric,
		Value:     f.Value,
		Raw:       f.Raw,
		Err:       f.Err,
	}
}

// AsFrame rebinds the wire event to the (registry, kind) its watch id
// was registered under, recovering the legacy Frame shape.
func (me MuxEvent) AsFrame(registry, kind string) Frame {
	return Frame{
		Registry:  registry,
		Kind:      kind,
		Version:   me.Version,
		Numeric:   me.Numeric,
		Value:     me.Value,
		Raw:       me.Raw,
		Err:       me.Err,
		Snapshot:  me.Snapshot,
		Coalesced: me.Coalesced,
	}
}

// appendMuxEvent appends one event body (no framing) to dst. Encoding
// is total: a non-finite numeric is rerouted to Raw, mirroring
// EncodeFrame, so the strict decoder's NaN/Inf rejection can never hit
// our own output.
func appendMuxEvent(dst []byte, me MuxEvent) []byte {
	if me.Numeric && (math.IsNaN(me.Value) || math.IsInf(me.Value, 0)) {
		me.Raw = fmt.Sprint(me.Value)
		me.Numeric = false
		me.Value = 0
	}
	dst = binary.AppendUvarint(dst, me.ID)
	dst = binary.AppendUvarint(dst, me.Version)
	var flags byte
	if me.Snapshot {
		flags |= muxSnapshot
	}
	if me.Coalesced {
		flags |= muxCoalesced
	}
	if me.Numeric {
		flags |= muxNumeric
	}
	if me.Raw != "" {
		flags |= muxRaw
	}
	if me.Err != "" {
		flags |= muxErr
	}
	dst = append(dst, flags)
	if me.Numeric {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(me.Value))
		dst = append(dst, b[:]...)
	}
	if me.Raw != "" {
		dst = binary.AppendUvarint(dst, uint64(len(me.Raw)))
		dst = append(dst, me.Raw...)
	}
	if me.Err != "" {
		dst = binary.AppendUvarint(dst, uint64(len(me.Err)))
		dst = append(dst, me.Err...)
	}
	return dst
}

// AppendMuxEvents appends one framed 'E' payload carrying all of evs —
// the batch write that amortizes framing and syscall cost across many
// events. With no events it appends nothing.
func AppendMuxEvents(dst []byte, evs []MuxEvent) []byte {
	if len(evs) == 0 {
		return dst
	}
	payload := make([]byte, 1, 1+16*len(evs))
	payload[0] = muxPayloadEvents
	for _, me := range evs {
		payload = appendMuxEvent(payload, me)
	}
	return appendMuxFrame(dst, payload)
}

// AppendMuxHeartbeat appends one framed 'H' payload.
func AppendMuxHeartbeat(dst []byte) []byte {
	return appendMuxFrame(dst, []byte{muxPayloadHeartbeat})
}

// appendMuxFrame wraps payload in the length+CRC header.
func appendMuxFrame(dst, payload []byte) []byte {
	var hdr [muxFrameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// decodeMuxEvent decodes one event body at the start of b, returning
// the bytes consumed. The grammar is strict — unknown flag bits, a
// non-finite numeric, a numeric-and-raw combination, or a truncated
// field are all ErrMuxCorrupt — so that accepted inputs re-encode to a
// stable canonical form (pinned by FuzzMuxFrame).
func decodeMuxEvent(b []byte) (MuxEvent, int, error) {
	var me MuxEvent
	id, n := binary.Uvarint(b)
	if n <= 0 {
		return me, 0, ErrMuxCorrupt
	}
	off := n
	ver, n := binary.Uvarint(b[off:])
	if n <= 0 {
		return me, 0, ErrMuxCorrupt
	}
	off += n
	if off >= len(b) {
		return me, 0, ErrMuxCorrupt
	}
	flags := b[off]
	off++
	if flags&^byte(muxFlagsMask) != 0 {
		return me, 0, ErrMuxCorrupt
	}
	me.ID = id
	me.Version = ver
	me.Snapshot = flags&muxSnapshot != 0
	me.Coalesced = flags&muxCoalesced != 0
	if flags&muxNumeric != 0 {
		if flags&muxRaw != 0 || len(b)-off < 8 {
			return me, 0, ErrMuxCorrupt
		}
		me.Numeric = true
		me.Value = math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
		if math.IsNaN(me.Value) || math.IsInf(me.Value, 0) {
			return me, 0, ErrMuxCorrupt
		}
		off += 8
	}
	if flags&muxRaw != 0 {
		s, n, err := decodeMuxString(b[off:])
		if err != nil {
			return me, 0, err
		}
		me.Raw = s
		off += n
	}
	if flags&muxErr != 0 {
		s, n, err := decodeMuxString(b[off:])
		if err != nil {
			return me, 0, err
		}
		me.Err = s
		off += n
	}
	return me, off, nil
}

// decodeMuxString decodes a uvarint-length-prefixed string. A zero
// length is corrupt: the encoder only emits a string field when it is
// non-empty (the flag bit is the presence marker).
func decodeMuxString(b []byte) (string, int, error) {
	ln, n := binary.Uvarint(b)
	if n <= 0 || ln == 0 || ln > uint64(len(b)-n) {
		return "", 0, ErrMuxCorrupt
	}
	return string(b[n : n+int(ln)]), n + int(ln), nil
}

// DecodeMuxPayload decodes one frame payload (header already stripped
// and CRC-verified). It returns the events for an 'E' payload, or
// heartbeat == true for an 'H'. Trailing garbage, an empty event list,
// and unknown payload types are all ErrMuxCorrupt.
func DecodeMuxPayload(payload []byte) (evs []MuxEvent, heartbeat bool, err error) {
	if len(payload) == 0 {
		return nil, false, ErrMuxCorrupt
	}
	switch payload[0] {
	case muxPayloadHeartbeat:
		if len(payload) != 1 {
			return nil, false, ErrMuxCorrupt
		}
		return nil, true, nil
	case muxPayloadEvents:
		b := payload[1:]
		if len(b) == 0 {
			return nil, false, ErrMuxCorrupt
		}
		for len(b) > 0 {
			me, n, err := decodeMuxEvent(b)
			if err != nil {
				return nil, false, err
			}
			evs = append(evs, me)
			b = b[n:]
		}
		return evs, false, nil
	default:
		return nil, false, ErrMuxCorrupt
	}
}

// DecodeMuxFrame decodes one whole frame at the start of b, returning
// the bytes consumed — the byte-slice twin of ReadMuxFrame, used by
// tests and the fuzz harness.
func DecodeMuxFrame(b []byte) (evs []MuxEvent, heartbeat bool, n int, err error) {
	if len(b) < muxFrameHeader {
		return nil, false, 0, ErrMuxCorrupt
	}
	ln := binary.LittleEndian.Uint32(b[0:4])
	sum := binary.LittleEndian.Uint32(b[4:8])
	if ln > maxMuxFrame || int(ln) > len(b)-muxFrameHeader {
		return nil, false, 0, ErrMuxCorrupt
	}
	payload := b[muxFrameHeader : muxFrameHeader+int(ln)]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, false, 0, ErrMuxCorrupt
	}
	evs, heartbeat, err = DecodeMuxPayload(payload)
	if err != nil {
		return nil, false, 0, err
	}
	return evs, heartbeat, muxFrameHeader + int(ln), nil
}

// ReadMuxFrame reads one whole frame from r. io.EOF on a frame
// boundary passes through as io.EOF (clean end of stream); a tear
// inside a frame is io.ErrUnexpectedEOF, and a CRC/grammar violation
// is ErrMuxCorrupt.
func ReadMuxFrame(r io.Reader) (evs []MuxEvent, heartbeat bool, err error) {
	var hdr [muxFrameHeader]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return nil, false, err // io.EOF here is a clean stream end
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, false, err
	}
	ln := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if ln > maxMuxFrame {
		return nil, false, ErrMuxCorrupt
	}
	payload := make([]byte, ln)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, false, err
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, false, ErrMuxCorrupt
	}
	return DecodeMuxPayload(payload)
}

// muxItem names one watched item in the JSON control protocol.
type muxItem struct {
	Registry string `json:"registry"`
	Kind     string `json:"kind"`
}

// muxAdd is one watch registration in a control request.
type muxAdd struct {
	ID       uint64 `json:"id"`
	Registry string `json:"registry"`
	Kind     string `json:"kind"`
	Since    uint64 `json:"since,omitempty"`
}

// muxControl is the body of POST /mux/watch: batched adds and removes
// applied to one session.
type muxControl struct {
	Add    []muxAdd `json:"add,omitempty"`
	Remove []uint64 `json:"remove,omitempty"`
}

// muxControlResult reports per-id registration errors; absent ids
// succeeded.
type muxControlResult struct {
	Errors map[uint64]string `json:"errors,omitempty"`
}
