package watch

import (
	"sync/atomic"
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
)

// testPlane builds an env with one registry carrying a static "src"
// and a triggered "val" that recomputes n on every src notification.
// The returned publish func bumps n and fires a propagation, so each
// call publishes exactly one new version of "val".
func testPlane(t *testing.T) (*core.Env, *core.Registry, *atomic.Int64, func()) {
	t.Helper()
	env := core.NewEnv(clock.NewVirtual())
	r := env.NewRegistry("n1")
	r.MustDefine(&core.Definition{
		Kind:  "src",
		Build: func(*core.BuildContext) (core.Handler, error) { return core.NewStatic(0.0), nil },
	})
	n := new(atomic.Int64)
	r.MustDefine(&core.Definition{
		Kind: "val",
		Deps: []core.DepRef{core.Dep(core.Self(), "src")},
		Build: func(*core.BuildContext) (core.Handler, error) {
			return core.NewTriggered(func(clock.Time) (core.Value, error) {
				return float64(n.Load()), nil
			}), nil
		},
	})
	publish := func() {
		n.Add(1)
		r.NotifyChanged("src")
	}
	return env, r, n, publish
}

func drain(w *Watcher) []Event {
	var evs []Event
	for {
		ev, ok := w.Poll()
		if !ok {
			return evs
		}
		evs = append(evs, ev)
	}
}

func TestHubDeliversPublications(t *testing.T) {
	env, r, _, publish := testPlane(t)
	h := NewHub(env)
	defer h.Close()

	w, err := h.Watch(r, "val", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	// The initial inclusion published version 1; a fresh watcher is
	// behind and catches up with a snapshot.
	ev, ok := w.Next()
	if !ok || !ev.Snapshot || ev.Version != 1 {
		t.Fatalf("first event = %+v, %v; want snapshot v1", ev, ok)
	}
	if ev.Registry != "n1" || ev.Kind != "val" {
		t.Fatalf("event addressed %s/%s, want n1/val", ev.Registry, ev.Kind)
	}

	publish()
	h.Barrier()
	ev, ok = w.Next()
	if !ok || ev.Version != 2 || ev.Snapshot {
		t.Fatalf("delta event = %+v, %v; want v2 delta", ev, ok)
	}
	if f, err := core.Float(ev.Value); err != nil || f != 1 {
		t.Fatalf("delta value = %v, %v; want 1", ev.Value, err)
	}
}

func TestHubSnapshotThenDeltaCatchUp(t *testing.T) {
	env, r, _, publish := testPlane(t)
	h := NewHub(env)
	defer h.Close()

	// Publish well past any joiner before the first watch.
	w0, err := h.Watch(r, "val", Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		publish()
	}
	h.Barrier()
	cur := w0.LastSent()
	if cur != 6 {
		t.Fatalf("horizon = %d, want 6 (include + 5 publishes)", cur)
	}

	// Late joiner: one snapshot at the current version, no replay.
	w, err := h.Watch(r, "val", Options{})
	if err != nil {
		t.Fatal(err)
	}
	evs := drain(w)
	if len(evs) != 1 || !evs[0].Snapshot || evs[0].Version != cur {
		t.Fatalf("late joiner saw %+v, want one snapshot at v%d", evs, cur)
	}

	// Resuming joiner already at the horizon: no snapshot, deltas only.
	w2, err := h.Watch(r, "val", Options{Since: cur})
	if err != nil {
		t.Fatal(err)
	}
	if evs := drain(w2); len(evs) != 0 {
		t.Fatalf("caught-up joiner saw %+v, want nothing", evs)
	}
	publish()
	h.Barrier()
	evs = drain(w2)
	if len(evs) != 1 || evs[0].Snapshot || evs[0].Version != cur+1 {
		t.Fatalf("caught-up joiner then saw %+v, want one delta at v%d", evs, cur+1)
	}

	st := env.Stats().Snapshot()
	if st.CatchUps != 2 { // w0 and w (w2 joined current)
		t.Fatalf("CatchUps = %d, want 2", st.CatchUps)
	}
}

func TestHubCoalescesToLatestOnOverflow(t *testing.T) {
	env, r, n, publish := testPlane(t)
	h := NewHub(env)
	defer h.Close()

	w, err := h.Watch(r, "val", Options{Buffer: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Barrier after every publish so each one is delivered as its own
	// event (otherwise the point-level epoch diff coalesces them before
	// they ever reach the ring, and the ring never overflows).
	const rounds = 50
	for i := 0; i < rounds; i++ {
		publish()
		h.Barrier()
	}

	evs := drain(w)
	if len(evs) > 2 {
		t.Fatalf("ring of 2 drained %d events", len(evs))
	}
	last := evs[len(evs)-1]
	if last.Version != uint64(rounds+1) {
		t.Fatalf("final version = %d, want %d (coalesce-to-latest keeps the newest)", last.Version, rounds+1)
	}
	if f, err := core.Float(last.Value); err != nil || f != float64(n.Load()) {
		t.Fatalf("final value = %v, want %d", last.Value, n.Load())
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Version <= evs[i-1].Version {
			t.Fatalf("versions not strictly increasing: %+v", evs)
		}
	}
	if st := env.Stats().Snapshot(); st.ShedNotifies == 0 {
		t.Fatal("ShedNotifies = 0 after overflowing a 2-slot ring")
	}
}

func TestHubPublishCoalescingStats(t *testing.T) {
	env, r, _, publish := testPlane(t)
	h := NewHub(env)
	defer h.Close()
	w, err := h.Watch(r, "val", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 0; i < 100; i++ {
		publish()
	}
	h.Barrier()
	st := env.Stats().Snapshot()
	if st.Wakeups == 0 {
		t.Fatal("Wakeups = 0 after publications")
	}
	if st.Wakeups+st.CoalescedWakeups < 100 {
		t.Fatalf("Wakeups(%d) + CoalescedWakeups(%d) < 100 publications",
			st.Wakeups, st.CoalescedWakeups)
	}
}

func TestHubTeardownReleasesItem(t *testing.T) {
	env, r, _, _ := testPlane(t)
	h := NewHub(env)
	defer h.Close()

	w1, err := h.Watch(r, "val", Options{})
	if err != nil {
		t.Fatal(err)
	}
	w2, err := h.Watch(r, "val", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.IsIncluded("val") {
		t.Fatal("watched item not included")
	}
	if st := env.Stats().Snapshot(); st.Watchers != 2 {
		t.Fatalf("Watchers = %d, want 2", st.Watchers)
	}
	w1.Close()
	if !r.IsIncluded("val") {
		t.Fatal("item released while still watched")
	}
	w2.Close()
	if r.IsIncluded("val") {
		t.Fatal("last watcher left but the item is still pinned")
	}
	if st := env.Stats().Snapshot(); st.Watchers != 0 {
		t.Fatalf("Watchers = %d, want 0", st.Watchers)
	}
	// Queued events stay drainable after Close; once drained, Next
	// reports closed instead of blocking.
	for {
		if _, ok := w2.Next(); !ok {
			break
		}
	}
}

func TestHubWatchErrors(t *testing.T) {
	env, r, _, _ := testPlane(t)
	h := NewHub(env)
	if _, err := h.Watch(r, "nope", Options{}); err == nil {
		t.Fatal("Watch on unknown item succeeded")
	}
	h.Close()
	h.Close() // idempotent
	if _, err := h.Watch(r, "val", Options{}); err == nil {
		t.Fatal("Watch on closed hub succeeded")
	}
}

func TestHubManyWatchersOnePublish(t *testing.T) {
	env, r, _, publish := testPlane(t)
	h := NewHub(env)
	defer h.Close()

	const watchers = 1000
	ws := make([]*Watcher, watchers)
	for i := range ws {
		w, err := h.Watch(r, "val", Options{Since: 1})
		if err != nil {
			t.Fatal(err)
		}
		ws[i] = w
	}
	publish()
	h.Barrier()
	for i, w := range ws {
		evs := drain(w)
		if len(evs) != 1 || evs[0].Version != 2 {
			t.Fatalf("watcher %d saw %+v, want one v2 event", i, evs)
		}
	}
}
