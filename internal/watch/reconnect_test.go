package watch

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// flapWriter lets a fixed number of SSE data frames through, then
// aborts the connection — a server that keeps dying mid-stream.
type flapWriter struct {
	http.ResponseWriter
	remaining *int
}

func (w *flapWriter) Write(p []byte) (int, error) {
	if bytes.HasPrefix(p, []byte("data: ")) {
		if *w.remaining <= 0 {
			panic(http.ErrAbortHandler)
		}
		*w.remaining--
	}
	return w.ResponseWriter.Write(p)
}

func (w *flapWriter) Flush() { w.ResponseWriter.(http.Flusher).Flush() }

func flapEvery(h http.Handler, frames int) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		n := frames
		h.ServeHTTP(&flapWriter{w, &n}, req)
	})
}

func TestWatchReconnectFlappingServer(t *testing.T) {
	env, r, _, publish := testPlane(t)
	h := NewHub(env)
	defer h.Close()
	// Every connection dies after two frames: the stream below must
	// reconnect repeatedly to stay gapless.
	srv := httptest.NewServer(flapEvery(NewServer(h, env, r).Handler(), 2))
	defer srv.Close()

	// Pin the item so versions survive disconnects (the hub pin is
	// otherwise the only subscription).
	sub, err := r.Subscribe("val")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Unsubscribe()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rs := NewClient(srv.URL).WatchReconnect(ctx, "n1", "val", 0, ReconnectOptions{
		InitialBackoff: time.Millisecond,
		MaxBackoff:     8 * time.Millisecond,
	})
	defer rs.Close()

	f, err := rs.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !f.Snapshot || f.Version != 1 {
		t.Fatalf("first frame = %+v, want snapshot v1", f)
	}
	last := f.Version
	snapshots := 0
	for i := 0; i < 10; i++ {
		publish()
		h.Barrier()
		f, err := rs.Next()
		if err != nil {
			t.Fatalf("frame after publish %d: %v", i, err)
		}
		if f.Version != last+1 {
			t.Fatalf("version gap: %+v after v%d", f, last)
		}
		last = f.Version
		if f.Snapshot {
			snapshots++
		}
	}
	// With 11 frames total and 2 per connection, at least 4 reconnects
	// happened; each catch-up is one Snapshot-flagged frame, never a
	// replayed delta (the gapless versions above prove no replay).
	if snapshots < 2 {
		t.Fatalf("snapshots = %d, want >= 2 reconnect catch-ups", snapshots)
	}
	if rs.LastSeen() != last {
		t.Fatalf("LastSeen = %d, want %d", rs.LastSeen(), last)
	}
}

func TestWatchReconnectPermanentError(t *testing.T) {
	env, r, _, _ := testPlane(t)
	h := NewHub(env)
	defer h.Close()
	srv := httptest.NewServer(NewServer(h, env, r).Handler())
	defer srv.Close()

	// Unknown registry is a 4xx: surfaced immediately, not retried.
	rs := NewClient(srv.URL).WatchReconnect(context.Background(), "nope", "val", 0, ReconnectOptions{})
	_, err := rs.Next()
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusNotFound {
		t.Fatalf("err = %v, want StatusError 404", err)
	}
}

func TestWatchReconnectGivesUpAfterMaxAttempts(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	base := srv.URL
	srv.Close() // nothing listening: every dial fails

	slept := 0
	rs := NewClient(base).WatchReconnect(context.Background(), "n1", "val", 0, ReconnectOptions{
		MaxAttempts: 3,
		sleep: func(context.Context, time.Duration) error {
			slept++
			return nil
		},
	})
	if _, err := rs.Next(); err == nil {
		t.Fatal("Next succeeded against a dead server")
	}
	if slept != 2 { // attempts 1 and 2 sleep; attempt 3 returns the error
		t.Fatalf("slept %d times, want 2", slept)
	}
}

func TestWatchReconnectCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rs := NewClient("http://127.0.0.1:0").WatchReconnect(ctx, "n1", "val", 0, ReconnectOptions{})
	if _, err := rs.Next(); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
