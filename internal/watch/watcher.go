package watch

import (
	"sync"

	"repro/internal/core"
)

// Event is one in-process watch notification: the watched item reached
// Version, and Value/Err are its value at (or after) that version.
// Watchers observe a subsequence of the item's publications — versions
// are strictly increasing per watcher, never exhaustive.
type Event struct {
	Registry string
	Kind     core.Kind
	Version  uint64
	Value    core.Value
	Err      error
	// Snapshot marks the head of a snapshot-then-delta catch-up: the
	// watcher was behind, and this event carries the current value in
	// place of every missed publication.
	Snapshot bool
	// Coalesced reports that publications between the watcher's
	// previous event and this one were skipped — either because the
	// sweeper batched them or because the watcher's ring overflowed
	// (coalesce-to-latest).
	Coalesced bool
}

// Watcher is one subscriber's bounded delivery queue. Its host (the
// epoch-diff Hub, or a Relay re-serving an upstream server) writes
// events into the ring; the consumer drains them with Next or Poll. A
// full ring overwrites its newest slot with the latest event, so a
// slow consumer always converges to the current value without ever
// blocking a publisher.
type Watcher struct {
	// stats is the host's counter sink (ShedNotifies on overflow).
	stats *core.Stats
	// detach unregisters the watcher from its host; set by the host at
	// registration and called once from Close.
	detach func(*Watcher)
	// notify, when set (Options.Notify), is invoked after every ring
	// write in addition to the signal channel — the aggregation hook a
	// mux Session uses to fold many watchers into one wakeup.
	notify func()
	// shardIdx is the watcher's wait-list shard in a hub point,
	// assigned round-robin at registration for an even spread (unused
	// by relay hosts).
	shardIdx int

	mu       sync.Mutex
	ring     []Event
	head     int // index of the oldest queued event
	n        int // queued events
	lastSent uint64
	closed   bool

	// signal is the cap-1 wakeup channel: deliver arms it, consumers
	// drain the ring after each receive.
	signal chan struct{}
	done   chan struct{}
}

// newWatcher builds an unregistered watcher; the host fills detach and
// delivers into it once it is on a wait-list.
func newWatcher(stats *core.Stats, buffer int, since uint64, notify func(), detach func(*Watcher)) *Watcher {
	if buffer <= 0 {
		buffer = DefaultBuffer
	}
	return &Watcher{
		stats:    stats,
		detach:   detach,
		notify:   notify,
		ring:     make([]Event, buffer),
		lastSent: since,
		signal:   make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
}

func (w *Watcher) shard() int { return w.shardIdx }

// deliver enqueues ev unless the watcher already saw that version. It
// is called by the host (and by catch-up under the host's lock) and
// never blocks: a full ring coalesces to the latest event.
func (w *Watcher) deliver(ev Event) {
	w.mu.Lock()
	if w.closed || ev.Version <= w.lastSent {
		w.mu.Unlock()
		return
	}
	if ev.Version > w.lastSent+1 {
		// Publications between lastSent and this event were skipped:
		// the epoch diff coalesced them.
		ev.Coalesced = true
	}
	w.lastSent = ev.Version
	shed := false
	if w.n == len(w.ring) {
		// Coalesce-to-latest: overwrite the newest slot so the ring
		// keeps its oldest events (the consumer's reading position)
		// and its final slot always holds the latest value.
		ev.Coalesced = true
		w.ring[(w.head+w.n-1)%len(w.ring)] = ev
		shed = true
	} else {
		w.ring[(w.head+w.n)%len(w.ring)] = ev
		w.n++
	}
	w.mu.Unlock()
	if shed {
		w.stats.ShedNotifies.Add(1)
	}
	select {
	case w.signal <- struct{}{}:
	default:
	}
	if w.notify != nil {
		w.notify()
	}
}

// Poll removes and returns the oldest queued event without blocking.
func (w *Watcher) Poll() (Event, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.n == 0 {
		return Event{}, false
	}
	ev := w.ring[w.head]
	w.ring[w.head] = Event{}
	w.head = (w.head + 1) % len(w.ring)
	w.n--
	return ev, true
}

// Pending returns the number of queued events.
func (w *Watcher) Pending() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n
}

// Next blocks until an event is queued and returns it; ok is false
// once the watcher is closed and drained.
func (w *Watcher) Next() (Event, bool) {
	for {
		if ev, ok := w.Poll(); ok {
			return ev, true
		}
		w.mu.Lock()
		closed := w.closed
		w.mu.Unlock()
		if closed {
			return Event{}, false
		}
		select {
		case <-w.signal:
		case <-w.done:
		}
	}
}

// Signal exposes the watcher's wakeup channel for select loops (e.g.
// an SSE connection multiplexing the watcher with its request
// context). After a receive, drain the ring with Poll until empty.
func (w *Watcher) Signal() <-chan struct{} { return w.signal }

// Done is closed when the watcher is closed.
func (w *Watcher) Done() <-chan struct{} { return w.done }

// LastSent returns the version of the most recently enqueued event —
// the watcher's delivery horizon (queued events included, drained or
// not).
func (w *Watcher) LastSent() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastSent
}

// Close unregisters the watcher. Queued events remain drainable; Next
// returns ok == false once the ring is empty.
func (w *Watcher) Close() {
	w.detach(w)
	w.closeRing()
}

// closeRing marks the watcher closed and releases blocked Next calls.
func (w *Watcher) closeRing() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	w.mu.Unlock()
	close(w.done)
}
