package persist

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/clock"
	"repro/internal/core"
)

// Options configures a durability plane.
type Options struct {
	// Sync is the WAL fsync policy (default SyncAlways).
	Sync SyncPolicy
	// CheckpointEvery writes an automatic checkpoint after this many
	// WAL records (0 = manual checkpoints only, via Plane.Checkpoint or
	// Close). The checkpoint runs inline on the structural operation
	// that crossed the threshold.
	CheckpointEvery int
}

// RecoveryStats reports what persist.Open found and rebuilt.
type RecoveryStats struct {
	// Recovered is false for a fresh start (no checkpoint, no WAL).
	Recovered bool
	// CheckpointSeq/CheckpointNow identify the loaded checkpoint
	// (0 when starting from WAL only or fresh).
	CheckpointSeq uint64
	CheckpointNow clock.Time
	// WALRecords counts structural ops replayed from the WAL tail;
	// WALTruncated reports a torn/corrupt tail dropped by framing.
	WALRecords   int
	WALTruncated bool
	// Defined/Subscribed/Migrated count replayed structural ops;
	// Restored counts items re-published into the stale-serving state;
	// Skipped counts ops and items the replay could not apply.
	Defined    int
	Subscribed int
	Migrated   int
	Restored   int
	Skipped    int
}

type key struct{ reg, kind string }

// Plane is the durability side of one Env: it implements core.Journal
// (appending every structural op to the WAL), writes checkpoints, and
// owns the subscriptions it re-created during recovery.
//
// Lock order: a structural operation holds its dependency-scope
// component lock when Record runs, so the order is component -> Plane.mu
// -> node-level RLocks (checkpoint reads). Nothing under Plane.mu may
// start a structural operation.
type Plane struct {
	dir      string
	env      *core.Env
	opt      Options
	regs     map[string]*core.Registry
	regOrder []string

	mu        sync.Mutex
	w         *walWriter
	seq       uint64
	subs      map[key]int
	held      map[key][]*core.Subscription
	migs      map[key]migRec
	sinceCkpt int
	closed    bool
	broken    error
}

func (p *Plane) walPath(seq uint64) string {
	return filepath.Join(p.dir, fmt.Sprintf("wal.%d.log", seq))
}

// Open recovers the plane persisted in dir (if any) into env and
// returns the attached Plane. regs are the registries the plane covers,
// addressed by their IDs, which must be unique.
//
// Recovery sequence: load the last checkpoint (a corrupt checkpoint is
// a hard ErrCorrupt error; a torn WAL tail is not), advance a virtual
// clock to the persisted instant, re-register codec-backed definitions,
// replay external subscriptions and migrations (checkpoint state first,
// then the WAL tail in commit order) with initial computes suppressed,
// re-publish every checkpointed item's last-good value in quarantine
// (serving it tagged core.ErrStale, recovery probe armed), and finally
// attach the journal and write a fresh barrier checkpoint. On an env
// without WithBreaker the stale-restore phase is skipped and recovered
// items cold-compute instead.
func Open(env *core.Env, dir string, opt Options, regs ...*core.Registry) (*Plane, *RecoveryStats, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("persist: creating %s: %w", dir, err)
	}
	p := &Plane{
		dir:  dir,
		env:  env,
		opt:  opt,
		regs: make(map[string]*core.Registry, len(regs)),
		subs: make(map[key]int),
		held: make(map[key][]*core.Subscription),
		migs: make(map[key]migRec),
	}
	for _, r := range regs {
		if _, dup := p.regs[r.ID()]; dup {
			return nil, nil, fmt.Errorf("persist: duplicate registry id %q", r.ID())
		}
		p.regs[r.ID()] = r
		p.regOrder = append(p.regOrder, r.ID())
	}
	sort.Strings(p.regOrder)

	rs, err := p.recover()
	if err != nil {
		return nil, nil, err
	}
	// Attach the journal only now: recovery's own replayed operations
	// are never re-journaled.
	env.SetJournal(p)
	// Barrier checkpoint: the recovered state becomes the new baseline
	// and a fresh WAL segment starts empty.
	p.mu.Lock()
	err = p.checkpointLocked()
	p.mu.Unlock()
	if err != nil {
		env.SetJournal(nil)
		return nil, nil, err
	}
	return p, rs, nil
}

// recover loads and replays dir into the env. It also seeds the
// in-memory mirrors the next checkpoint serializes.
func (p *Plane) recover() (*RecoveryStats, error) {
	rs := &RecoveryStats{}
	var data *checkpointData
	raw, err := os.ReadFile(filepath.Join(p.dir, "checkpoint.db"))
	switch {
	case err == nil:
		data, err = DecodeCheckpoint(raw)
		if err != nil {
			return nil, err
		}
	case os.IsNotExist(err):
		// Fresh start (or checkpoint lost): replay the WAL alone.
	default:
		return nil, fmt.Errorf("persist: reading checkpoint: %w", err)
	}

	var tail []core.JournalOp
	if data != nil {
		p.seq = data.Seq
		rs.CheckpointSeq = data.Seq
		rs.CheckpointNow = clock.Time(data.Now)
	}
	walRaw, err := os.ReadFile(p.walPath(p.seq))
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("persist: reading WAL: %w", err)
	}
	payloads, truncated := ReplayWAL(walRaw)
	for _, b := range payloads {
		var rec walRec
		if err := json.Unmarshal(b, &rec); err != nil {
			// A framed record that is not valid JSON means the frame
			// survived but its content did not; stop at it like a torn
			// tail — the prefix property must hold for replay order.
			truncated = true
			break
		}
		tail = append(tail, rec.journalOp())
	}
	rs.WALRecords = len(tail)
	rs.WALTruncated = truncated
	if data == nil && len(tail) == 0 {
		return rs, nil
	}
	rs.Recovered = true

	// Resume the pre-crash timeline on virtual clocks so probe backoffs
	// and window cadences recover deterministically; wall clocks are
	// already past the persisted instant.
	if data != nil {
		if vc, ok := p.env.Clock().(*clock.Virtual); ok && clock.Time(data.Now) > p.env.Now() {
			vc.AdvanceTo(clock.Time(data.Now))
		}
	}

	// Restore-pending predicate: replayed subscriptions of checkpointed
	// items skip their initial compute (RestoreStale below re-publishes
	// the last-good value). Requires the breaker machinery.
	restorable := make(map[key]bool)
	if data != nil && p.env.HasBreaker() {
		for _, ir := range data.Items {
			restorable[key{ir.Reg, ir.Kind}] = true
		}
	}
	if len(restorable) > 0 {
		p.env.SetRestorePending(func(reg *core.Registry, kind core.Kind) bool {
			return restorable[key{reg.ID(), string(kind)}]
		})
		defer p.env.SetRestorePending(nil)
	}

	// Checkpoint state: definitions, then external subscriptions, then
	// the last applied migration per item.
	if data != nil {
		for _, dr := range data.Defines {
			p.applyDefine(core.JournalOp{
				Op: core.JournalDefine, Registry: dr.Reg, Kind: core.Kind(dr.Kind),
				Codec: dr.Codec, CodecArgs: dr.Args,
			}, rs)
		}
		for _, sr := range data.Subs {
			for i := 0; i < sr.Count; i++ {
				p.applySubscribe(core.JournalOp{
					Op: core.JournalSubscribe, Registry: sr.Reg, Kind: core.Kind(sr.Kind),
				}, rs)
			}
		}
		for _, mr := range data.Migs {
			p.applyMigrate(core.JournalOp{
				Op: core.JournalMigrate, Registry: mr.Reg, Kind: core.Kind(mr.Kind),
				To: core.Mechanism(mr.To), Window: clock.Duration(mr.Window),
			}, rs)
		}
	}
	// WAL tail, in commit order.
	for _, op := range tail {
		switch op.Op {
		case core.JournalDefine:
			p.applyDefine(op, rs)
		case core.JournalSubscribe:
			p.applySubscribe(op, rs)
		case core.JournalUnsubscribe:
			p.applyUnsubscribe(op, rs)
		case core.JournalMigrate:
			p.applyMigrate(op, rs)
		default:
			rs.Skipped++
		}
	}

	// Degraded-mode restore: every checkpointed item still included
	// serves its pre-crash last-good tagged ErrStale, recovery probe
	// armed. Items excluded by the WAL tail are simply skipped.
	if data != nil && p.env.HasBreaker() {
		for _, ir := range data.Items {
			reg := p.regs[ir.Reg]
			if reg == nil || !reg.IsIncluded(core.Kind(ir.Kind)) {
				continue
			}
			v, err := ir.decodeValue()
			if err != nil {
				rs.Skipped++
				continue
			}
			cause := core.ErrRestored
			if ir.Stale && ir.Cause != "" {
				cause = fmt.Errorf("%w (pre-crash cause: %s)", core.ErrRestored, ir.Cause)
			}
			if err := reg.RestoreStale(core.Kind(ir.Kind), v, ir.Version, cause); err != nil {
				rs.Skipped++
				continue
			}
			rs.Restored++
		}
	}
	p.env.Stats().Recoveries.Add(1)
	return rs, nil
}

func (p *Plane) applyDefine(op core.JournalOp, rs *RecoveryStats) {
	reg := p.regs[op.Registry]
	if reg == nil {
		rs.Skipped++
		return
	}
	if reg.IsDefined(op.Kind) {
		// Already re-registered by application code; keep its version.
		return
	}
	def, err := buildDef(op.Codec, op.CodecArgs)
	if err != nil || def.Kind != op.Kind {
		rs.Skipped++
		return
	}
	if err := reg.Define(def); err != nil {
		rs.Skipped++
		return
	}
	rs.Defined++
}

func (p *Plane) applySubscribe(op core.JournalOp, rs *RecoveryStats) {
	k := key{op.Registry, string(op.Kind)}
	reg := p.regs[op.Registry]
	if reg == nil {
		rs.Skipped++
		return
	}
	sub, err := reg.Subscribe(op.Kind)
	if err != nil {
		rs.Skipped++
		return
	}
	p.subs[k]++
	p.held[k] = append(p.held[k], sub)
	rs.Subscribed++
}

func (p *Plane) applyUnsubscribe(op core.JournalOp, rs *RecoveryStats) {
	k := key{op.Registry, string(op.Kind)}
	hs := p.held[k]
	if len(hs) == 0 {
		rs.Skipped++
		return
	}
	sub := hs[len(hs)-1]
	p.held[k] = hs[:len(hs)-1]
	sub.Unsubscribe()
	if p.subs[k]--; p.subs[k] <= 0 {
		delete(p.subs, k)
	}
}

func (p *Plane) applyMigrate(op core.JournalOp, rs *RecoveryStats) {
	k := key{op.Registry, string(op.Kind)}
	reg := p.regs[op.Registry]
	if reg == nil {
		rs.Skipped++
		return
	}
	if err := reg.Migrate(op.Kind, op.To, op.Window); err != nil {
		rs.Skipped++
		return
	}
	p.migs[k] = migRec{Reg: op.Registry, Kind: string(op.Kind), To: uint8(op.To), Window: int64(op.Window)}
	rs.Migrated++
}

// Record implements core.Journal: append the op to the WAL, maintain
// the topology mirrors the next checkpoint serializes, and checkpoint
// automatically when the record threshold is crossed. It runs with the
// mutating operation's component lock held (see the lock-order comment
// on Plane).
func (p *Plane) Record(op core.JournalOp) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || p.broken != nil || p.w == nil {
		return
	}
	k := key{op.Registry, string(op.Kind)}
	switch op.Op {
	case core.JournalDefine:
		// No mirror: checkpoints read PersistableDefinitions from the
		// live registry, which also covers pre-attach defines.
	case core.JournalSubscribe:
		p.subs[k]++
	case core.JournalUnsubscribe:
		if p.subs[k]--; p.subs[k] <= 0 {
			delete(p.subs, k)
		}
	case core.JournalMigrate:
		p.migs[k] = migRec{Reg: op.Registry, Kind: string(op.Kind), To: uint8(op.To), Window: int64(op.Window)}
	}
	payload, err := json.Marshal(walRecOf(op))
	if err != nil {
		p.failLocked(err)
		return
	}
	if err := p.w.append(payload); err != nil {
		p.failLocked(err)
		return
	}
	st := p.env.Stats()
	st.WALRecords.Add(1)
	st.WALBytes.Store(p.w.bytes)
	p.sinceCkpt++
	if p.opt.CheckpointEvery > 0 && p.sinceCkpt >= p.opt.CheckpointEvery {
		if err := p.checkpointLocked(); err != nil {
			p.failLocked(err)
		}
	}
}

// failLocked records the first persistence failure and stops journaling
// — the plane degrades to non-durable rather than wedging structural
// operations. Err surfaces it.
func (p *Plane) failLocked(err error) {
	if p.broken == nil {
		p.broken = err
	}
	if p.w != nil {
		p.w.close()
		p.w = nil
	}
}

// Err returns the first persistence failure, or nil. A non-nil error
// means journaling stopped at that point and the on-disk state is
// frozen at the last successful write.
func (p *Plane) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.broken
}

// Checkpoint writes a full-plane checkpoint now and truncates the WAL
// at the barrier.
func (p *Plane) Checkpoint() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return errors.New("persist: plane closed")
	}
	if p.broken != nil {
		return p.broken
	}
	return p.checkpointLocked()
}

// checkpointLocked serializes the plane — mirrors for topology, live
// node-level reads for item snapshots — writes it atomically, and
// rotates the WAL segment. It takes no component locks: values,
// versions, and health come from the node-RLock read primitives, and
// subscription counts from the plane's own mirror, so it is safe to run
// inline from Record (which holds a component lock).
func (p *Plane) checkpointLocked() error {
	now := p.env.Now()
	d := &checkpointData{Seq: p.seq + 1, Now: int64(now)}
	for _, id := range p.regOrder {
		for _, pd := range p.regs[id].PersistableDefinitions() {
			d.Defines = append(d.Defines, defineRec{Reg: id, Kind: string(pd.Kind), Codec: pd.Codec, Args: pd.Args})
		}
	}
	for _, k := range sortedKeys(p.subs) {
		d.Subs = append(d.Subs, subRec{Reg: k.reg, Kind: k.kind, Count: p.subs[k]})
	}
	for _, k := range sortedKeys(p.migs) {
		// The mirror is last-written intent; an item fully released since
		// its migration reverts to its definition's default mechanism on
		// re-include, so only migrations still live on an included handler
		// are replayable state.
		mr := p.migs[k]
		reg := p.regs[k.reg]
		if reg == nil {
			continue
		}
		if mech, ok := reg.Mechanism(core.Kind(k.kind)); !ok || uint8(mech) != mr.To {
			continue
		}
		if mr.To == uint8(core.PeriodicMechanism) {
			if w, ok := reg.Window(core.Kind(k.kind)); ok {
				mr.Window = int64(w)
			}
		}
		d.Migs = append(d.Migs, mr)
	}
	for _, id := range p.regOrder {
		reg := p.regs[id]
		for _, kind := range reg.Included() {
			if mech, ok := reg.Mechanism(kind); !ok || mech == core.StaticMechanism {
				// Static values are rebuilt by Build at replay time;
				// there is nothing stale to restore.
				continue
			}
			ver, ok := reg.ItemVersion(kind)
			if !ok {
				continue
			}
			v, err := reg.Peek(kind)
			rec := itemRec{Reg: id, Kind: string(kind), Version: ver}
			if err != nil {
				if !errors.Is(err, core.ErrStale) {
					// No last-good value to serve after recovery.
					continue
				}
				rec.Stale = true
				var se *core.StaleError
				if errors.As(err, &se) && se.Cause != nil {
					rec.Cause = se.Cause.Error()
				}
			}
			if !rec.encodeValue(v) {
				continue
			}
			d.Items = append(d.Items, rec)
		}
	}
	if err := writeCheckpoint(p.dir, d); err != nil {
		return err
	}
	neww, err := openWAL(p.walPath(d.Seq), p.opt.Sync)
	if err != nil {
		return err
	}
	old, oldSeq := p.w, p.seq
	p.w, p.seq, p.sinceCkpt = neww, d.Seq, 0
	if old != nil {
		old.close()
	}
	os.Remove(p.walPath(oldSeq))
	st := p.env.Stats()
	st.Checkpoints.Add(1)
	st.CheckpointAt.Store(int64(now))
	st.WALBytes.Store(0)
	return nil
}

// Close writes a final checkpoint, detaches the journal, and releases
// the subscriptions recovery re-created (the checkpoint already carries
// them, so the next recovery re-pins them).
func (p *Plane) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	var err error
	if p.broken == nil {
		err = p.checkpointLocked()
	} else {
		err = p.broken
	}
	p.env.SetJournal(nil)
	if p.w != nil {
		p.w.close()
		p.w = nil
	}
	p.closed = true
	held := p.held
	p.held = nil
	p.mu.Unlock()
	// Release outside p.mu: Unsubscribe takes component locks, and the
	// lock order is component -> Plane.mu, never the reverse.
	for _, hs := range held {
		for _, sub := range hs {
			sub.Unsubscribe()
		}
	}
	return err
}

// Abandon simulates a crash for tests: stop journaling and close file
// handles without a final checkpoint and without releasing recovered
// subscriptions. The on-disk state is exactly what a SIGKILL at this
// instant would leave.
func (p *Plane) Abandon() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.env.SetJournal(nil)
	if p.w != nil {
		p.w.close()
		p.w = nil
	}
	p.closed = true
}

// sortedKeys returns m's keys ordered by (reg, kind) for deterministic
// checkpoint bytes.
func sortedKeys[V any](m map[key]V) []key {
	ks := make([]key, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool {
		if ks[i].reg != ks[j].reg {
			return ks[i].reg < ks[j].reg
		}
		return ks[i].kind < ks[j].kind
	})
	return ks
}
