package persist

import (
	"fmt"
	"os"

	"repro/internal/clock"
	"repro/internal/core"
)

// SyncPolicy selects when WAL appends reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every appended record (default): a
	// crashed process loses at most the op being written, which the
	// framed replay drops as a torn tail.
	SyncAlways SyncPolicy = iota
	// SyncNone leaves flushing to the OS: faster appends, but a crash
	// may lose recent ops (replay still stops cleanly at the torn
	// tail). Checkpoints fsync regardless of the policy.
	SyncNone
)

// walRec is the JSON payload of one WAL frame. Structural ops are rare
// relative to value traffic, so a self-describing encoding wins over a
// packed one.
type walRec struct {
	Op     uint8  `json:"op"`
	Reg    string `json:"reg"`
	Kind   string `json:"kind"`
	To     uint8  `json:"to,omitempty"`
	Window int64  `json:"win,omitempty"`
	Codec  string `json:"codec,omitempty"`
	Args   string `json:"args,omitempty"`
}

func walRecOf(op core.JournalOp) walRec {
	return walRec{
		Op:     uint8(op.Op),
		Reg:    op.Registry,
		Kind:   string(op.Kind),
		To:     uint8(op.To),
		Window: int64(op.Window),
		Codec:  op.Codec,
		Args:   op.CodecArgs,
	}
}

func (r walRec) journalOp() core.JournalOp {
	return core.JournalOp{
		Op:        core.JournalOpKind(r.Op),
		Registry:  r.Reg,
		Kind:      core.Kind(r.Kind),
		To:        core.Mechanism(r.To),
		Window:    clock.Duration(r.Window),
		Codec:     r.Codec,
		CodecArgs: r.Args,
	}
}

// walWriter appends framed records to one WAL segment.
type walWriter struct {
	f     *os.File
	sync  SyncPolicy
	buf   []byte
	bytes int64
}

// openWAL opens (creating or truncating) the segment at path.
func openWAL(path string, sync SyncPolicy) (*walWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: opening WAL: %w", err)
	}
	return &walWriter{f: f, sync: sync}, nil
}

// append frames and writes one payload, fsyncing per the policy.
func (w *walWriter) append(payload []byte) error {
	w.buf = appendFrame(w.buf[:0], payload)
	if _, err := w.f.Write(w.buf); err != nil {
		return fmt.Errorf("persist: WAL append: %w", err)
	}
	w.bytes += int64(len(w.buf))
	if w.sync == SyncAlways {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("persist: WAL sync: %w", err)
		}
	}
	return nil
}

func (w *walWriter) close() error {
	if w.sync == SyncNone {
		// Best-effort flush on clean close; errors surface to Close.
		if err := w.f.Sync(); err != nil {
			w.f.Close()
			return err
		}
	}
	return w.f.Close()
}

// ReplayWAL decodes the valid frame prefix of a WAL segment. A torn or
// corrupt frame terminates the replay at the last whole record —
// truncated reports whether trailing bytes were dropped. It never
// fails: the worst input (zero-length, garbage, bit-flipped) yields an
// empty or partial prefix.
func ReplayWAL(b []byte) (payloads [][]byte, truncated bool) {
	for len(b) > 0 {
		payload, n, err := readFrame(b)
		if err != nil {
			return payloads, true
		}
		payloads = append(payloads, payload)
		b = b[n:]
	}
	return payloads, false
}
