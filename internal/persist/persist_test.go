package persist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
)

// The test fixture: registry "op" with a codec-backed triggered item per
// index reading a live source cell, so a recovered process observes a
// DIFFERENT live value than the checkpointed one — proving reads after
// recovery serve the persisted last-good, not a silent recompute.

var srcCells [64]atomic.Uint64 // Float64bits per item index

func setSrc(i int, v float64) { srcCells[i].Store(mathFloat64bits(v)) }

func mathFloat64bits(v float64) uint64 {
	var ir itemRec
	ir.encodeValue(v)
	return *ir.F
}

func init() {
	RegisterCodec("test.cell", func(args string) (*core.Definition, error) {
		i, err := strconv.Atoi(args)
		if err != nil {
			return nil, err
		}
		read := func(clock.Time) (core.Value, error) {
			ir := itemRec{F: new(uint64)}
			*ir.F = srcCells[i].Load()
			return ir.decodeValue()
		}
		return &core.Definition{
			Kind: core.Kind(fmt.Sprintf("cell%d", i)),
			Build: func(*core.BuildContext) (core.Handler, error) {
				return core.NewTriggered(read), nil
			},
			Adapt: &core.AdaptSpec{
				OnDemand:  func(*core.BuildContext) core.ComputeFunc { return read },
				Triggered: func(*core.BuildContext) core.ComputeFunc { return read },
				Periodic: func(*core.BuildContext) core.WindowComputeFunc {
					return func(_, end clock.Time) (core.Value, error) { return read(end) }
				},
				Window: 50,
			},
		}, nil
	})
}

func testEnv(t *testing.T, breaker bool) (*core.Env, *clock.Virtual) {
	t.Helper()
	vc := clock.NewVirtual()
	opts := []core.EnvOption{}
	if breaker {
		opts = append(opts, core.WithBreaker(core.DefaultBreakerPolicy))
	}
	return core.NewEnv(vc, opts...), vc
}

func defineCell(t *testing.T, r *core.Registry, i int) {
	t.Helper()
	def, err := buildDef("test.cell", strconv.Itoa(i))
	if err != nil {
		t.Fatalf("buildDef: %v", err)
	}
	if err := r.Define(def); err != nil {
		t.Fatalf("Define: %v", err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var b []byte
	payloads := [][]byte{[]byte("a"), {}, []byte("hello world")}
	for _, p := range payloads {
		b = appendFrame(b, p)
	}
	for i := 0; len(b) > 0; i++ {
		p, n, err := readFrame(b)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if string(p) != string(payloads[i]) {
			t.Fatalf("frame %d = %q, want %q", i, p, payloads[i])
		}
		b = b[n:]
	}
}

func TestFrameCorruption(t *testing.T) {
	good := appendFrame(nil, []byte("payload"))
	cases := map[string][]byte{
		"short header": good[:4],
		"torn body":    good[:len(good)-2],
		"bit flip":     append(append([]byte{}, good[:frameHeader]...), 'X', 'a', 'y', 'l', 'o', 'a', 'd'),
	}
	for name, b := range cases {
		if _, _, err := readFrame(b); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}

func TestWALReplayTornTail(t *testing.T) {
	dir := t.TempDir()
	w, err := openWAL(filepath.Join(dir, "wal.1.log"), SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.append([]byte(fmt.Sprintf("rec%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	w.close()
	raw, _ := os.ReadFile(filepath.Join(dir, "wal.1.log"))

	if ps, trunc := ReplayWAL(raw); trunc || len(ps) != 5 {
		t.Fatalf("clean replay = %d recs trunc=%v, want 5 false", len(ps), trunc)
	}
	// Every possible torn length replays the longest whole prefix.
	// Each record is 8 bytes of header + 4 bytes of payload = 12 bytes.
	for cut := 0; cut < len(raw); cut++ {
		ps, trunc := ReplayWAL(raw[:cut])
		if len(ps) != cut/12 {
			t.Fatalf("cut %d: replayed %d recs, want %d", cut, len(ps), cut/12)
		}
		if wantTrunc := cut%12 != 0; trunc != wantTrunc {
			t.Fatalf("cut %d: truncated = %v, want %v", cut, trunc, wantTrunc)
		}
	}
	// A bit flip in the middle stops replay at the damaged record.
	flipped := append([]byte{}, raw...)
	flipped[12+frameHeader] ^= 0x40 // payload byte of record 1
	ps, trunc := ReplayWAL(flipped)
	if len(ps) != 1 || !trunc {
		t.Fatalf("bit-flipped replay = %d recs trunc=%v, want 1 true", len(ps), trunc)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	f := mathFloat64bits(3.5)
	d := &checkpointData{
		Seq: 7, Now: 1234,
		Defines: []defineRec{{Reg: "op", Kind: "cell0", Codec: "test.cell", Args: "0"}},
		Subs:    []subRec{{Reg: "op", Kind: "cell0", Count: 2}},
		Migs:    []migRec{{Reg: "op", Kind: "cell0", To: 2, Window: 50}},
		Items:   []itemRec{{Reg: "op", Kind: "cell0", Version: 9, F: &f}},
	}
	enc, err := EncodeCheckpoint(d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCheckpoint(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 7 || got.Now != 1234 || len(got.Items) != 1 || *got.Items[0].F != f {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	v, err := got.Items[0].decodeValue()
	if err != nil || v.(float64) != 3.5 {
		t.Fatalf("decodeValue = %v, %v; want 3.5", v, err)
	}

	for name, mangle := range map[string]func([]byte) []byte{
		"bad magic":  func(b []byte) []byte { b = append([]byte{}, b...); b[0] = 'X'; return b },
		"truncated":  func(b []byte) []byte { return b[:len(b)-3] },
		"trailing":   func(b []byte) []byte { return append(append([]byte{}, b...), 0xFF) },
		"crc flip":   func(b []byte) []byte { b = append([]byte{}, b...); b[len(b)-1] ^= 1; return b },
		"empty":      func([]byte) []byte { return nil },
		"magic only": func(b []byte) []byte { return b[:len(ckptMagic)] },
	} {
		if _, err := DecodeCheckpoint(mangle(append([]byte{}, enc...))); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}

func TestCodecRegistry(t *testing.T) {
	if _, err := buildDef("no.such.codec", ""); err == nil {
		t.Fatal("unknown codec did not error")
	}
	def, err := buildDef("test.cell", "3")
	if err != nil {
		t.Fatal(err)
	}
	if def.Persist != "test.cell" || def.PersistArgs != "3" || def.Kind != "cell3" {
		t.Fatalf("buildDef stamped %q/%q kind %q", def.Persist, def.PersistArgs, def.Kind)
	}
}

// TestSaveRecoverCycle is the full tentpole loop: run, checkpoint,
// crash, recover into degraded mode, warm back to healthy.
func TestSaveRecoverCycle(t *testing.T) {
	dir := t.TempDir()

	// ---- First life: define, subscribe, run, crash. ----
	env1, vc1 := testEnv(t, true)
	r1 := env1.NewRegistry("op")
	for i := 0; i < 3; i++ {
		defineCell(t, r1, i)
		setSrc(i, float64(10+i))
	}
	p1, rs1, err := Open(env1, dir, Options{}, r1)
	if err != nil {
		t.Fatalf("first Open: %v", err)
	}
	if rs1.Recovered {
		t.Fatalf("fresh dir reported recovered: %+v", rs1)
	}
	subs := make([]*core.Subscription, 3)
	for i := range subs {
		if subs[i], err = r1.Subscribe(core.Kind(fmt.Sprintf("cell%d", i))); err != nil {
			t.Fatalf("Subscribe: %v", err)
		}
	}
	vc1.Advance(100)
	env1.Quiesce()
	ver1, _ := r1.ItemVersion("cell1")
	if err := p1.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if env1.Stats().Checkpoints.Load() < 2 { // barrier + explicit
		t.Fatalf("Checkpoints stat = %d", env1.Stats().Checkpoints.Load())
	}
	p1.Abandon() // SIGKILL

	// The world moves on while the process is down.
	for i := 0; i < 3; i++ {
		setSrc(i, float64(1000+i))
	}

	// ---- Second life: recover. ----
	env2, vc2 := testEnv(t, true)
	r2 := env2.NewRegistry("op")
	p2, rs2, err := Open(env2, dir, Options{}, r2)
	if err != nil {
		t.Fatalf("recovery Open: %v", err)
	}
	defer p2.Close()
	if !rs2.Recovered || rs2.Defined != 3 || rs2.Subscribed != 3 || rs2.Restored != 3 || rs2.Skipped != 0 {
		t.Fatalf("recovery stats = %+v, want 3 defined/subscribed/restored", rs2)
	}
	if vc2.Now() < vc1.Now() {
		t.Fatalf("recovered clock %d behind pre-crash %d", vc2.Now(), vc1.Now())
	}
	// Reads serve the pre-crash last-good tagged stale — not the live
	// source (1000+i), and not a placeholder.
	for i := 0; i < 3; i++ {
		kind := core.Kind(fmt.Sprintf("cell%d", i))
		v, err := r2.Peek(kind)
		if !errors.Is(err, core.ErrStale) || !errors.Is(err, core.ErrRestored) {
			t.Fatalf("%s: err = %v, want ErrStale+ErrRestored", kind, err)
		}
		if v.(float64) != float64(10+i) {
			t.Fatalf("%s = %v, want checkpointed %d", kind, v, 10+i)
		}
		if hs, ok := r2.Health(kind); !ok || hs.State != core.Quarantined {
			t.Fatalf("%s health = %+v, want quarantined", kind, hs)
		}
	}
	// Version stream continued: the stale republish is persisted+1.
	if ver2, _ := r2.ItemVersion("cell1"); ver2 != ver1+1 {
		t.Fatalf("cell1 version = %d, want pre-crash %d + 1", ver2, ver1)
	}
	if env2.Stats().Recoveries.Load() != 1 || env2.Stats().RestoredStale.Load() != 3 {
		t.Fatalf("recovery stats: Recoveries=%d RestoredStale=%d",
			env2.Stats().Recoveries.Load(), env2.Stats().RestoredStale.Load())
	}

	// ---- Warm phase: probes recompute from the live world. ----
	vc2.Advance(2 * core.DefaultBreakerPolicy.MaxProbeBackoff)
	env2.Quiesce()
	for i := 0; i < 3; i++ {
		kind := core.Kind(fmt.Sprintf("cell%d", i))
		v, err := r2.Peek(kind)
		if err != nil {
			t.Fatalf("%s after warm: %v", kind, err)
		}
		if v.(float64) != float64(1000+i) {
			t.Fatalf("%s after warm = %v, want live %d", kind, v, 1000+i)
		}
		if hs, _ := r2.Health(kind); hs.State != core.Healthy {
			t.Fatalf("%s health after warm = %+v", kind, hs)
		}
	}
}

// TestRecoverWALTail covers structural ops recorded after the last
// checkpoint: they replay from the WAL in commit order.
func TestRecoverWALTail(t *testing.T) {
	dir := t.TempDir()
	env1, _ := testEnv(t, true)
	r1 := env1.NewRegistry("op")
	for i := 0; i < 3; i++ {
		defineCell(t, r1, i)
		setSrc(i, float64(i))
	}
	p1, _, err := Open(env1, dir, Options{}, r1)
	if err != nil {
		t.Fatal(err)
	}
	s0, _ := r1.Subscribe("cell0")
	if err := p1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Tail: subscribe cell1, migrate it, drop cell0. None checkpointed.
	if _, err := r1.Subscribe("cell1"); err != nil {
		t.Fatal(err)
	}
	if err := r1.Migrate("cell1", core.PeriodicMechanism, 25); err != nil {
		t.Fatal(err)
	}
	s0.Unsubscribe()
	// Cumulative counter: 1 pre-checkpoint subscribe + 3 tail ops.
	if env1.Stats().WALRecords.Load() != 4 {
		t.Fatalf("WALRecords = %d, want 4", env1.Stats().WALRecords.Load())
	}
	p1.Abandon()

	env2, _ := testEnv(t, true)
	r2 := env2.NewRegistry("op")
	p2, rs2, err := Open(env2, dir, Options{}, r2)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if rs2.WALRecords != 3 || rs2.WALTruncated {
		t.Fatalf("tail replay = %+v", rs2)
	}
	if r2.IsIncluded("cell0") {
		t.Fatal("cell0 still included after tail unsubscribe replay")
	}
	if !r2.IsIncluded("cell1") {
		t.Fatal("cell1 not included after tail subscribe replay")
	}
	if m, _ := r2.Mechanism("cell1"); m != core.PeriodicMechanism {
		t.Fatalf("cell1 mechanism = %v, want periodic after tail migrate replay", m)
	}
	if w, _ := r2.Window("cell1"); w != 25 {
		t.Fatalf("cell1 window = %d, want 25", w)
	}
}

// TestRecoverNoBreaker: without WithBreaker there is no quarantine to
// serve stale values through, so recovery degrades gracefully to cold
// recomputes — topology restored, values live, nothing restored stale.
func TestRecoverNoBreaker(t *testing.T) {
	dir := t.TempDir()
	env1, _ := testEnv(t, true)
	r1 := env1.NewRegistry("op")
	defineCell(t, r1, 0)
	setSrc(0, 5)
	p1, _, err := Open(env1, dir, Options{}, r1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r1.Subscribe("cell0"); err != nil {
		t.Fatal(err)
	}
	p1.Checkpoint()
	p1.Abandon()

	setSrc(0, 77)
	env2, _ := testEnv(t, false)
	r2 := env2.NewRegistry("op")
	p2, rs2, err := Open(env2, dir, Options{}, r2)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if rs2.Restored != 0 || rs2.Subscribed != 1 {
		t.Fatalf("no-breaker recovery = %+v", rs2)
	}
	v, err := r2.Peek("cell0")
	if err != nil || v.(float64) != 77 {
		t.Fatalf("cold recompute = %v, %v; want live 77", v, err)
	}
}

// TestCorruptCheckpointFails: a damaged checkpoint is a hard error (it
// is written atomically, so damage is real), reported as ErrCorrupt.
func TestCorruptCheckpointFails(t *testing.T) {
	dir := t.TempDir()
	env1, _ := testEnv(t, true)
	r1 := env1.NewRegistry("op")
	defineCell(t, r1, 0)
	p1, _, err := Open(env1, dir, Options{}, r1)
	if err != nil {
		t.Fatal(err)
	}
	p1.Close()
	path := filepath.Join(dir, "checkpoint.db")
	raw, _ := os.ReadFile(path)
	raw[len(raw)-1] ^= 0xFF
	os.WriteFile(path, raw, 0o644)

	env2, _ := testEnv(t, true)
	r2 := env2.NewRegistry("op")
	if _, _, err := Open(env2, dir, Options{}, r2); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open on corrupt checkpoint = %v, want ErrCorrupt", err)
	}
}

// TestAutoCheckpoint: CheckpointEvery rotates the WAL automatically.
func TestAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	env, _ := testEnv(t, true)
	r := env.NewRegistry("op")
	for i := 0; i < 8; i++ {
		defineCell(t, r, i)
	}
	p, _, err := Open(env, dir, Options{CheckpointEvery: 4}, r)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	base := env.Stats().Checkpoints.Load() // the Open barrier
	var held []*core.Subscription
	for i := 0; i < 8; i++ {
		s, err := r.Subscribe(core.Kind(fmt.Sprintf("cell%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, s)
	}
	if got := env.Stats().Checkpoints.Load() - base; got != 2 {
		t.Fatalf("auto checkpoints = %d, want 2 (8 ops / every 4)", got)
	}
	// Only the current segment remains on disk.
	seen := 0
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if len(e.Name()) > 4 && e.Name()[:4] == "wal." {
			seen++
		}
	}
	if seen != 1 {
		t.Fatalf("%d WAL segments on disk, want 1 (rotation deletes old)", seen)
	}
	for _, s := range held {
		s.Unsubscribe()
	}
}

// TestCloseReleasesAndRestartRepins: Close writes a final checkpoint
// before releasing its recovered pins, so repeated graceful restarts
// keep the same subscription set.
func TestCloseReleasesAndRestartRepins(t *testing.T) {
	dir := t.TempDir()
	env1, _ := testEnv(t, true)
	r1 := env1.NewRegistry("op")
	defineCell(t, r1, 0)
	setSrc(0, 5)
	p1, _, err := Open(env1, dir, Options{}, r1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r1.Subscribe("cell0"); err != nil {
		t.Fatal(err)
	}
	if err := p1.Close(); err != nil {
		t.Fatal(err)
	}

	for restart := 0; restart < 3; restart++ {
		env, _ := testEnv(t, true)
		r := env.NewRegistry("op")
		p, rs, err := Open(env, dir, Options{}, r)
		if err != nil {
			t.Fatalf("restart %d: %v", restart, err)
		}
		if rs.Subscribed != 1 {
			t.Fatalf("restart %d: Subscribed = %d, want stable 1", restart, rs.Subscribed)
		}
		if !r.IsIncluded("cell0") {
			t.Fatalf("restart %d: cell0 not re-pinned", restart)
		}
		if err := p.Close(); err != nil {
			t.Fatalf("restart %d close: %v", restart, err)
		}
	}
}
