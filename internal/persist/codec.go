package persist

import (
	"fmt"
	"sync"

	"repro/internal/core"
)

// Definition codecs: Go functions do not serialize, so a definition is
// durable only by naming a registered codec (Definition.Persist) that
// can rebuild it from an opaque argument string at recovery time.
// Definitions without a codec are expected to be re-registered by
// application code (node constructors run before persist.Open), which
// is why recovery skips defines whose kind already exists.

var (
	codecMu sync.RWMutex
	codecs  = map[string]func(args string) (*core.Definition, error){}
)

// RegisterCodec registers a definition codec under name, typically
// from an init function of the package owning the definition shape.
// Registering a duplicate name panics: silently replacing a codec
// would change what recovery rebuilds.
func RegisterCodec(name string, build func(args string) (*core.Definition, error)) {
	if name == "" || build == nil {
		panic("persist: RegisterCodec with empty name or nil builder")
	}
	codecMu.Lock()
	defer codecMu.Unlock()
	if _, dup := codecs[name]; dup {
		panic(fmt.Sprintf("persist: codec %q registered twice", name))
	}
	codecs[name] = build
}

// buildDef rebuilds a definition through its codec, stamping
// Persist/PersistArgs so the rebuilt definition re-journals and
// re-checkpoints identically.
func buildDef(name, args string) (*core.Definition, error) {
	codecMu.RLock()
	build := codecs[name]
	codecMu.RUnlock()
	if build == nil {
		return nil, fmt.Errorf("persist: unknown definition codec %q", name)
	}
	def, err := build(args)
	if err != nil {
		return nil, fmt.Errorf("persist: codec %q: %w", name, err)
	}
	if def == nil {
		return nil, fmt.Errorf("persist: codec %q returned nil definition", name)
	}
	def.Persist = name
	def.PersistArgs = args
	return def, nil
}
