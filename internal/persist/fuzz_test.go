package persist

import (
	"bytes"
	"errors"
	"testing"
)

// Fuzz targets for the two decode surfaces. The contract under fuzzing:
// arbitrary bytes never panic; WAL replay always yields a valid prefix
// (every returned payload re-frames to a prefix of the input);
// checkpoint decode either round-trips or reports ErrCorrupt.

func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add(appendFrame(nil, []byte(`{"op":2,"reg":"op","kind":"x"}`)))
	two := appendFrame(appendFrame(nil, []byte("a")), []byte("bb"))
	f.Add(two)
	f.Add(two[:len(two)-1])                           // torn tail
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0}) // absurd length
	f.Fuzz(func(t *testing.T, data []byte) {
		payloads, truncated := ReplayWAL(data)
		// Prefix property: re-framing the payloads reproduces a prefix
		// of the input, and truncated is exact.
		var reframed []byte
		for _, p := range payloads {
			reframed = appendFrame(reframed, p)
		}
		if !bytes.HasPrefix(data, reframed) {
			t.Fatalf("replayed payloads are not an input prefix (%d bytes vs %d input)",
				len(reframed), len(data))
		}
		if truncated != (len(reframed) != len(data)) {
			t.Fatalf("truncated = %v with %d of %d bytes consumed",
				truncated, len(reframed), len(data))
		}
	})
}

func FuzzCheckpointDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("MDCKPT1\n"))
	if enc, err := EncodeCheckpoint(&checkpointData{Seq: 1, Now: 42}); err == nil {
		f.Add(enc)
		f.Add(enc[:len(enc)-1])
		f.Add(append(enc, 0))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := DecodeCheckpoint(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode error %v does not wrap ErrCorrupt", err)
			}
			return
		}
		// A successful decode must re-encode and decode to the same seq
		// (full structural round trip).
		enc, err := EncodeCheckpoint(d)
		if err != nil {
			t.Fatalf("re-encode of decoded checkpoint: %v", err)
		}
		d2, err := DecodeCheckpoint(enc)
		if err != nil {
			t.Fatalf("decode of re-encode: %v", err)
		}
		if d2.Seq != d.Seq || d2.Now != d.Now || len(d2.Items) != len(d.Items) {
			t.Fatalf("round trip drifted: %+v vs %+v", d, d2)
		}
		for i := range d.Items {
			if _, err := d.Items[i].decodeValue(); err != nil && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("item %d decodeValue error %v does not wrap ErrCorrupt", i, err)
			}
		}
	})
}
