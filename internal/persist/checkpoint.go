package persist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
)

// ckptMagic heads every checkpoint file; the trailing version digit
// gates future format changes.
var ckptMagic = []byte("MDCKPT1\n")

// checkpointData is the full-plane snapshot serialized into one framed
// JSON record: topology (external subscription counts and applied
// migrations), persistable definitions, and per-item last-good
// (value, version) snapshots with their health condition.
type checkpointData struct {
	// Seq numbers checkpoints; the WAL segment wal.<Seq>.log holds the
	// ops recorded after this checkpoint.
	Seq uint64 `json:"seq"`
	// Now is the env clock at checkpoint time. Recovery advances a
	// virtual clock to it so probe backoffs and window cadences resume
	// on the pre-crash timeline; real clocks are left alone.
	Now int64 `json:"now"`

	Defines []defineRec `json:"defines,omitempty"`
	Subs    []subRec    `json:"subs,omitempty"`
	Migs    []migRec    `json:"migs,omitempty"`
	Items   []itemRec   `json:"items,omitempty"`
}

// defineRec is a persistable definition by codec name (Definition.Persist).
type defineRec struct {
	Reg   string `json:"reg"`
	Kind  string `json:"kind"`
	Codec string `json:"codec"`
	Args  string `json:"args,omitempty"`
}

// subRec is the external subscription count of one item.
type subRec struct {
	Reg   string `json:"reg"`
	Kind  string `json:"kind"`
	Count int    `json:"count"`
}

// migRec is the last applied migration of one item.
type migRec struct {
	Reg    string `json:"reg"`
	Kind   string `json:"kind"`
	To     uint8  `json:"to"`
	Window int64  `json:"win,omitempty"`
}

// itemRec is one included item's last-good snapshot. Float values are
// persisted as their IEEE-754 bit pattern (exact round trip — a decimal
// rendering would perturb the modelcheck bit-identity contract); other
// values ride JSON and are skipped if unencodable.
type itemRec struct {
	Reg     string          `json:"reg"`
	Kind    string          `json:"kind"`
	Version uint64          `json:"ver"`
	F       *uint64         `json:"f,omitempty"`
	J       json.RawMessage `json:"j,omitempty"`
	// Stale marks an item that was already serving a stale value at
	// checkpoint time; Cause preserves its quarantine cause text.
	Stale bool   `json:"stale,omitempty"`
	Cause string `json:"cause,omitempty"`
}

// encodeValue packs a value into an itemRec, reporting ok=false for
// values that do not round-trip (functions, channels, cyclic graphs).
func (ir *itemRec) encodeValue(v any) bool {
	if f, isF := v.(float64); isF {
		bits := math.Float64bits(f)
		ir.F = &bits
		return true
	}
	j, err := json.Marshal(v)
	if err != nil {
		return false
	}
	ir.J = j
	return true
}

// decodeValue unpacks the persisted value.
func (ir *itemRec) decodeValue() (any, error) {
	if ir.F != nil {
		return math.Float64frombits(*ir.F), nil
	}
	var v any
	if err := json.Unmarshal(ir.J, &v); err != nil {
		return nil, fmt.Errorf("%w: item %s/%s value: %v", ErrCorrupt, ir.Reg, ir.Kind, err)
	}
	return v, nil
}

// EncodeCheckpoint serializes d as magic + one framed JSON record.
func EncodeCheckpoint(d *checkpointData) ([]byte, error) {
	payload, err := json.Marshal(d)
	if err != nil {
		return nil, fmt.Errorf("persist: encoding checkpoint: %w", err)
	}
	out := make([]byte, 0, len(ckptMagic)+frameHeader+len(payload))
	out = append(out, ckptMagic...)
	return appendFrame(out, payload), nil
}

// DecodeCheckpoint parses checkpoint bytes. Checkpoints are written
// atomically (temp-file + rename), so any defect — bad magic, torn
// frame, CRC mismatch, malformed JSON, trailing garbage — is real
// corruption and reports ErrCorrupt; it never panics.
func DecodeCheckpoint(b []byte) (*checkpointData, error) {
	if !bytes.HasPrefix(b, ckptMagic) {
		return nil, fmt.Errorf("%w: bad checkpoint magic", ErrCorrupt)
	}
	payload, n, err := readFrame(b[len(ckptMagic):])
	if err != nil {
		return nil, fmt.Errorf("%w: checkpoint frame", ErrCorrupt)
	}
	if len(b) != len(ckptMagic)+n {
		return nil, fmt.Errorf("%w: %d trailing checkpoint bytes", ErrCorrupt, len(b)-len(ckptMagic)-n)
	}
	var d checkpointData
	if err := json.Unmarshal(payload, &d); err != nil {
		return nil, fmt.Errorf("%w: checkpoint payload: %v", ErrCorrupt, err)
	}
	return &d, nil
}

// writeCheckpoint atomically replaces dir/checkpoint.db: write to a
// temp file in the same directory, fsync it, rename over the target,
// fsync the directory so the rename itself is durable.
func writeCheckpoint(dir string, d *checkpointData) error {
	enc, err := EncodeCheckpoint(d)
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, "checkpoint.db.tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("persist: checkpoint temp: %w", err)
	}
	if _, err := f.Write(enc); err != nil {
		f.Close()
		return fmt.Errorf("persist: checkpoint write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("persist: checkpoint sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("persist: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, "checkpoint.db")); err != nil {
		return fmt.Errorf("persist: checkpoint rename: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a completed rename survives power loss.
// Best-effort: some filesystems refuse directory fsync.
func syncDir(dir string) error {
	df, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer df.Close()
	df.Sync()
	return nil
}
