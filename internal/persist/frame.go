// Package persist is the durable metadata plane: a write-ahead log of
// structural operations plus periodic full-plane checkpoints, and the
// recovery path that rebuilds a crashed process's metadata topology and
// parks every checkpointed item in degraded mode (serving its pre-crash
// last-good value tagged core.ErrStale) until the existing
// probe/republish machinery warms it back to healthy.
//
// On-disk layout (all inside one directory):
//
//	checkpoint.db   magic + one CRC-framed JSON record (temp+rename)
//	wal.<seq>.log   CRC-framed JSON records, one per structural op;
//	                <seq> is the checkpoint sequence the segment follows
//
// Record framing is crash-safe: a torn tail (partial frame, or a frame
// whose CRC does not match) terminates replay at the last whole record
// instead of failing recovery; see ReplayWAL.
package persist

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
)

// ErrCorrupt reports persistence bytes that cannot be decoded: a bad
// magic, an absurd length, a CRC mismatch, or a truncation in a
// structure that is written atomically (checkpoints). WAL tails are the
// exception — a torn tail is the expected crash artifact and yields
// partial replay, not an error.
var ErrCorrupt = errors.New("persist: corrupt or truncated data")

// A frame is: 4-byte little-endian payload length, 4-byte little-endian
// IEEE CRC32 of the payload, payload bytes.
const frameHeader = 8

// maxFrame bounds a single frame payload; a length field beyond it is
// treated as corruption, not an allocation request.
const maxFrame = 64 << 20

// appendFrame appends the framed payload to dst and returns it.
func appendFrame(dst, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// readFrame decodes one frame at the start of b, returning the payload
// and the total bytes consumed. It returns ErrCorrupt for a frame that
// is torn (truncated header or body), oversized, or whose CRC does not
// match — callers decide whether that is a clean replay stop (WAL tail)
// or a hard error (checkpoint).
func readFrame(b []byte) (payload []byte, n int, err error) {
	if len(b) < frameHeader {
		return nil, 0, ErrCorrupt
	}
	ln := binary.LittleEndian.Uint32(b[0:4])
	sum := binary.LittleEndian.Uint32(b[4:8])
	if ln > maxFrame || int(ln) > len(b)-frameHeader {
		return nil, 0, ErrCorrupt
	}
	payload = b[frameHeader : frameHeader+int(ln)]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, 0, ErrCorrupt
	}
	return payload, frameHeader + int(ln), nil
}
