package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/clock"
)

// defineCell defines kind as a triggered item publishing *v, refreshed
// by the event ev — a mutable publishing source for delta tests.
func defineCell(r *Registry, kind Kind, ev string, v *float64) {
	r.MustDefine(&Definition{
		Kind:   kind,
		Events: []string{ev},
		Build: func(*BuildContext) (Handler, error) {
			return NewTriggered(func(clock.Time) (Value, error) { return *v, nil }), nil
		},
	})
}

// defineDeltaAgg defines kind as a delta aggregate over deps.
func defineDeltaAgg(r *Registry, kind Kind, spec *DeltaSpec, deps ...DepRef) {
	r.MustDefine(&Definition{
		Kind:  kind,
		Deps:  deps,
		Delta: spec,
		Build: NewDeltaAggregate,
	})
}

// deltaCells builds n cells on r plus a delta aggregate over all of
// them, subscribes to the aggregate, and returns the cell values and
// the subscription.
func deltaCells(t *testing.T, r *Registry, spec *DeltaSpec, n int) ([]float64, *Subscription) {
	t.Helper()
	vals := make([]float64, n)
	deps := make([]DepRef, n)
	for i := range vals {
		vals[i] = float64(i + 1)
		kind := Kind("cell" + string(rune('A'+i)))
		defineCell(r, kind, "ev"+string(rune('A'+i)), &vals[i])
		deps[i] = Dep(Self(), kind)
	}
	defineDeltaAgg(r, "agg", spec, deps...)
	sub, err := r.Subscribe("agg")
	if err != nil {
		t.Fatal(err)
	}
	return vals, sub
}

func aggFloat(t *testing.T, sub *Subscription) float64 {
	t.Helper()
	f, err := sub.Float()
	if err != nil {
		t.Fatalf("aggregate read: %v", err)
	}
	return f
}

func TestDeltaSumFiresOnCellUpdates(t *testing.T) {
	env, _ := testEnv()
	r := env.NewRegistry("n1")
	vals, sub := deltaCells(t, r, DeltaSum(), 4)
	defer sub.Unsubscribe()

	if got := aggFloat(t, sub); got != 1+2+3+4 {
		t.Fatalf("initial sum = %v, want 10", got)
	}
	st := env.Stats()
	base := st.Snapshot()

	vals[2] = 30
	r.FireEvent("evC")
	if got := aggFloat(t, sub); got != 1+2+30+4 {
		t.Fatalf("sum after update = %v, want 37", got)
	}
	vals[0] = -5
	r.FireEvent("evA")
	if got := aggFloat(t, sub); got != -5+2+30+4 {
		t.Fatalf("sum after update = %v, want 31", got)
	}
	d := st.Snapshot().Sub(base)
	if d.DeltaFires != 2 || d.DeltaFallbacks != 0 {
		t.Fatalf("fires=%d fallbacks=%d, want 2 fires 0 fallbacks (d=%+v)", d.DeltaFires, d.DeltaFallbacks, d)
	}
	if hr := d.DeltaHitRate(); hr != 1 {
		t.Fatalf("DeltaHitRate = %v, want 1", hr)
	}
}

func TestDeltaOffEnvNeverFires(t *testing.T) {
	for _, opt := range []EnvOption{WithoutDeltaPropagation(), WithNaivePropagation()} {
		vc := clock.NewVirtual()
		env := NewEnv(vc, opt)
		r := env.NewRegistry("n1")
		vals, sub := deltaCells(t, r, DeltaSum(), 3)
		vals[1] = 20
		r.FireEvent("evB")
		if got := aggFloat(t, sub); got != 1+20+3 {
			t.Fatalf("sum = %v, want 24", got)
		}
		st := env.Stats().Snapshot()
		if st.DeltaFires != 0 {
			t.Fatalf("DeltaFires = %d on delta-off env, want 0", st.DeltaFires)
		}
		if st.DeltaFallbacks == 0 {
			t.Fatalf("DeltaFallbacks = 0 on delta-off env, want > 0")
		}
		sub.Unsubscribe()
	}
}

// TestDeltaMatchesDeltaOff drives the same update sequence through a
// delta-on and a delta-off graph and requires bit-identical values —
// the exact-fallback contract at unit-test scale (the modelcheck
// lockstep covers generated workloads).
func TestDeltaMatchesDeltaOff(t *testing.T) {
	specs := map[string]func() *DeltaSpec{
		"sum": DeltaSum, "count": DeltaCount, "mean": DeltaMean, "var": DeltaVar, "min": DeltaMin,
	}
	for name, mk := range specs {
		t.Run(name, func(t *testing.T) {
			envOn, _ := testEnv()
			vcOff := clock.NewVirtual()
			envOff := NewEnv(vcOff, WithoutDeltaPropagation())
			rOn := envOn.NewRegistry("n1")
			rOff := envOff.NewRegistry("n1")
			valsOn, subOn := deltaCells(t, rOn, mk(), 5)
			valsOff, subOff := deltaCells(t, rOff, mk(), 5)
			defer subOn.Unsubscribe()
			defer subOff.Unsubscribe()

			updates := []struct {
				i  int
				v  float64
				ev string
			}{
				{2, 7, "evC"}, {0, -3, "evA"}, {2, 2.5, "evC"}, {4, 100, "evE"},
				{1, 0.125, "evB"}, {3, -41, "evD"}, {0, 9, "evA"},
			}
			for _, u := range updates {
				valsOn[u.i], valsOff[u.i] = u.v, u.v
				rOn.FireEvent(u.ev)
				rOff.FireEvent(u.ev)
				fOn, errOn := subOn.Float()
				fOff, errOff := subOff.Float()
				if (errOn == nil) != (errOff == nil) {
					t.Fatalf("error divergence: on=%v off=%v", errOn, errOff)
				}
				if math.Float64bits(fOn) != math.Float64bits(fOff) {
					t.Fatalf("value divergence after %+v: on=%v off=%v", u, fOn, fOff)
				}
			}
			if envOn.Stats().Snapshot().DeltaFires == 0 && mk().Retract != nil {
				t.Fatalf("invertible spec %q never used the delta path", name)
			}
		})
	}
}

func TestDeltaMinFallsBackOnPairs(t *testing.T) {
	env, _ := testEnv()
	r := env.NewRegistry("n1")
	vals, sub := deltaCells(t, r, DeltaMin(), 3)
	defer sub.Unsubscribe()
	base := env.Stats().Snapshot()

	vals[0] = 50 // retract the minimum: not invertible
	r.FireEvent("evA")
	if got := aggFloat(t, sub); got != 2 {
		t.Fatalf("min = %v, want 2", got)
	}
	d := env.Stats().Snapshot().Sub(base)
	if d.DeltaFires != 0 || d.DeltaFallbacks != 1 {
		t.Fatalf("fires=%d fallbacks=%d, want 0/1 for non-invertible pairs", d.DeltaFires, d.DeltaFallbacks)
	}
}

func TestDeltaRetractRefusalFallsBack(t *testing.T) {
	env, _ := testEnv()
	r := env.NewRegistry("n1")
	spec := DeltaSum()
	refuse := false
	inner := spec.Retract
	spec.Retract = func(a DeltaAcc, v float64) (DeltaAcc, bool) {
		if refuse {
			return a, false
		}
		return inner(a, v)
	}
	vals, sub := deltaCells(t, r, spec, 3)
	defer sub.Unsubscribe()

	refuse = true
	base := env.Stats().Snapshot()
	vals[1] = 17
	r.FireEvent("evB")
	if got := aggFloat(t, sub); got != 1+17+3 {
		t.Fatalf("sum = %v, want 21", got)
	}
	d := env.Stats().Snapshot().Sub(base)
	if d.DeltaFires != 0 || d.DeltaFallbacks != 1 {
		t.Fatalf("fires=%d fallbacks=%d, want refusal to fold", d.DeltaFires, d.DeltaFallbacks)
	}
	// The fold re-validated the accumulator; with retraction allowed
	// again the next update fires.
	refuse = false
	vals[1] = 18
	r.FireEvent("evB")
	if got := aggFloat(t, sub); got != 1+18+3 {
		t.Fatalf("sum = %v, want 22", got)
	}
	d = env.Stats().Snapshot().Sub(base)
	if d.DeltaFires != 1 {
		t.Fatalf("fires=%d, want 1 after recovery", d.DeltaFires)
	}
}

func TestDeltaStructuralChangeForcesFallback(t *testing.T) {
	env, _ := testEnv()
	r := env.NewRegistry("n1")
	vals, sub := deltaCells(t, r, DeltaSum(), 3)
	defer sub.Unsubscribe()
	defineConst(r, "unrelated", 1.0)

	// Warm the delta path.
	vals[0] = 4
	r.FireEvent("evA")
	base := env.Stats().Snapshot()

	// Any structural change advances the write epoch and invalidates
	// the accumulator (conservative, like memo stamps).
	other, err := r.Subscribe("unrelated")
	if err != nil {
		t.Fatal(err)
	}
	vals[1] = 9
	r.FireEvent("evB")
	if got := aggFloat(t, sub); got != 4+9+3 {
		t.Fatalf("sum = %v, want 16", got)
	}
	d := env.Stats().Snapshot().Sub(base)
	if d.DeltaFallbacks != 1 || d.DeltaFires != 0 {
		t.Fatalf("fires=%d fallbacks=%d after structural change, want 0/1", d.DeltaFires, d.DeltaFallbacks)
	}
	// The fold re-stamped the epoch; steady state fires again.
	vals[1] = 10
	r.FireEvent("evB")
	d = env.Stats().Snapshot().Sub(base)
	if d.DeltaFires != 1 {
		t.Fatalf("fires=%d, want 1 after re-stamp", d.DeltaFires)
	}
	other.Unsubscribe()
}

func TestDeltaNotifyChangedPoisons(t *testing.T) {
	env, _ := testEnv()
	r := env.NewRegistry("n1")
	cell := 3.0
	r.MustDefine(&Definition{
		Kind: "cell",
		Build: func(*BuildContext) (Handler, error) {
			return NewStatic(&cell), nil // non-float static: never pair-trackable
		},
	})
	defineDeltaAgg(r, "agg", &DeltaSpec{
		Combine: func(a DeltaAcc, v float64) DeltaAcc { a[0] += v; return a },
		Retract: func(a DeltaAcc, v float64) (DeltaAcc, bool) { a[0] -= v; return a, true },
	}, Dep(Self(), "cell"))
	// A *float64 static is not numeric: the aggregate's fold errors.
	sub, err := r.Subscribe("agg")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Unsubscribe()
	if _, err := sub.Float(); !errors.Is(err, ErrNotNumeric) {
		t.Fatalf("err = %v, want ErrNotNumeric for pointer-valued dep", err)
	}
}

func TestDeltaNotifyChangedOnFloatStatic(t *testing.T) {
	env, _ := testEnv()
	r := env.NewRegistry("n1")
	// A float static whose definition captures a mutable box: Define
	// stores the value at build time, NotifyChanged announces the edit.
	cur := 5.0
	r.MustDefine(&Definition{
		Kind: "cell",
		Build: func(*BuildContext) (Handler, error) {
			return &mutableStatic{v: &cur}, nil
		},
	})
	defineDeltaAgg(r, "agg", DeltaSum(), Dep(Self(), "cell"))
	sub, err := r.Subscribe("agg")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Unsubscribe()
	if got := aggFloat(t, sub); got != 5 {
		t.Fatalf("sum = %v, want 5", got)
	}
	cur = 8
	r.NotifyChanged("cell")
	if got := aggFloat(t, sub); got != 8 {
		t.Fatalf("sum after NotifyChanged = %v, want 8", got)
	}
}

// mutableStatic is a static-mechanism handler over external state, the
// NotifyChanged escape-hatch scenario.
type mutableStatic struct{ v *float64 }

func (h *mutableStatic) Value() (Value, error) { return *h.v, nil }
func (h *mutableStatic) Mechanism() Mechanism  { return StaticMechanism }
func (h *mutableStatic) start(*entry) error    { return nil }
func (h *mutableStatic) stop()                 {}

func TestDeltaRebaseInterval(t *testing.T) {
	env, _ := testEnv()
	r := env.NewRegistry("n1")
	spec := DeltaSum()
	spec.RebaseEvery = 2
	vals, sub := deltaCells(t, r, spec, 3)
	defer sub.Unsubscribe()
	base := env.Stats().Snapshot()

	for i := 0; i < 6; i++ {
		vals[0] = float64(10 + i)
		r.FireEvent("evA")
		if got, want := aggFloat(t, sub), float64(10+i)+2+3; got != want {
			t.Fatalf("sum = %v, want %v", got, want)
		}
	}
	d := env.Stats().Snapshot().Sub(base)
	// applied runs 0,1 then rebases: fire, fire, rebase, repeated.
	if d.DeltaRebases != 2 || d.DeltaFires != 4 || d.DeltaFallbacks != 0 {
		t.Fatalf("fires=%d rebases=%d fallbacks=%d, want 4/2/0", d.DeltaFires, d.DeltaRebases, d.DeltaFallbacks)
	}
}

func TestDeltaOnDemandDepIneligible(t *testing.T) {
	env, _ := testEnv()
	r := env.NewRegistry("n1")
	n := 0.0
	r.MustDefine(&Definition{
		Kind: "vol",
		Build: func(*BuildContext) (Handler, error) {
			return NewOnDemand(func(clock.Time) (Value, error) { n++; return n, nil }), nil
		},
	})
	v := 1.0
	defineCell(r, "cell", "ev", &v)
	defineDeltaAgg(r, "agg", DeltaSum(), Dep(Self(), "vol"), Dep(Self(), "cell"))
	sub, err := r.Subscribe("agg")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Unsubscribe()

	base := env.Stats().Snapshot()
	v = 2
	r.FireEvent("ev")
	// The on-demand edge has no delta form: every refresh folds, and
	// the fold reads the volatile dependency live (recompute-per-access
	// semantics preserved).
	if got := aggFloat(t, sub); got != 2+2 { // n=2 on the fold's read
		t.Fatalf("sum = %v, want 4", got)
	}
	d := env.Stats().Snapshot().Sub(base)
	if d.DeltaFires != 0 || d.DeltaFallbacks != 1 {
		t.Fatalf("fires=%d fallbacks=%d with on-demand dep, want 0/1", d.DeltaFires, d.DeltaFallbacks)
	}
}

func TestDeltaAggregateAsDependency(t *testing.T) {
	// Aggregates publish like any triggered handler, so a second-level
	// aggregate can consume them through the delta channel.
	env, _ := testEnv()
	r := env.NewRegistry("n1")
	vals, sub := deltaCells(t, r, DeltaSum(), 3)
	defer sub.Unsubscribe()
	defineDeltaAgg(r, "agg2", DeltaMean(), Dep(Self(), "agg"), Dep(Self(), "cellA"))
	sub2, err := r.Subscribe("agg2")
	if err != nil {
		t.Fatal(err)
	}
	defer sub2.Unsubscribe()

	vals[0] = 7
	r.FireEvent("evA")
	if got := aggFloat(t, sub); got != 7+2+3 {
		t.Fatalf("agg = %v, want 12", got)
	}
	f, err := sub2.Float()
	if err != nil || f != (12+7)/2.0 {
		t.Fatalf("agg2 = %v, %v; want 9.5", f, err)
	}
}

func TestDeltaUnsubscribeDeregisters(t *testing.T) {
	env, _ := testEnv()
	r := env.NewRegistry("n1")
	vals, sub := deltaCells(t, r, DeltaSum(), 2)
	sub.Unsubscribe()
	// Cells are gone with the aggregate (refcounts), so re-include one
	// and verify no delta bookkeeping leaked.
	defineConst(r, "probe", 1.0)
	ps, err := r.Subscribe("probe")
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Unsubscribe()
	_ = vals
	sc := env.lockScope(r)
	for _, e := range r.entries {
		if e.deltaDeps != 0 {
			sc.unlock()
			t.Fatalf("entry %s has deltaDeps=%d after unsubscribe", e.kind, e.deltaDeps)
		}
	}
	sc.unlock()
}

func TestPutFloatBoxing(t *testing.T) {
	var a snapAlloc
	s1 := a.putFloat(3.5)
	s2 := a.putFloat(-0.0)
	s3 := a.put("str", nil)
	if f, ok := s1.val.(float64); !ok || f != 3.5 {
		t.Fatalf("s1.val = %#v, want float64 3.5", s1.val)
	}
	if f, ok := s2.val.(float64); !ok || math.Float64bits(f) != math.Float64bits(-0.0) {
		t.Fatalf("s2.val = %#v, want -0.0", s2.val)
	}
	if s, ok := s3.val.(string); !ok || s != "str" {
		t.Fatalf("s3.val = %#v, want \"str\"", s3.val)
	}
	if f, _ := Float(s1.val); f != 3.5 {
		t.Fatalf("Float(s1.val) = %v, want 3.5", f)
	}
	// Snapshots are independent: later puts must not disturb earlier
	// boxes even across chunk growth.
	for i := 0; i < 200; i++ {
		a.putFloat(float64(i))
	}
	if f := s1.val.(float64); f != 3.5 {
		t.Fatalf("s1 disturbed: %v", f)
	}
}

func TestDeltaStatsSnapshotAndSub(t *testing.T) {
	var st Stats
	st.DeltaFires.Add(6)
	st.DeltaFallbacks.Add(3)
	st.DeltaRebases.Add(1)
	snap := st.Snapshot()
	if snap.DeltaFires != 6 || snap.DeltaFallbacks != 3 || snap.DeltaRebases != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if hr := snap.DeltaHitRate(); hr != 0.6 {
		t.Fatalf("DeltaHitRate = %v, want 0.6", hr)
	}
	st.DeltaFires.Add(2)
	d := st.Snapshot().Sub(snap)
	if d.DeltaFires != 2 || d.DeltaFallbacks != 0 || d.DeltaRebases != 0 {
		t.Fatalf("delta window = %+v", d)
	}
	if (Snapshot{}).DeltaHitRate() != 0 {
		t.Fatalf("empty DeltaHitRate != 0")
	}
}
