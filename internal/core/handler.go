package core

import (
	"fmt"
	"sync"

	"repro/internal/clock"
)

// recoverCompute converts a panic in user-supplied code (compute
// closures, Definition.Build, Definition.Resolve) into an
// ErrComputePanic error. Handlers store the error like any other
// compute failure, so it surfaces at the consumer's next Value() read
// instead of unwinding through framework locks (a panic escaping a
// pool worker would kill the process; one escaping a tick would wedge
// the handler mutex).
func recoverCompute(what string, errp *error) {
	if p := recover(); p != nil {
		*errp = fmt.Errorf("%w: %s: %v", ErrComputePanic, what, p)
	}
}

// safeCompute runs an on-demand/triggered compute with panic recovery.
func safeCompute(fn ComputeFunc, now clock.Time) (v Value, err error) {
	defer recoverCompute("compute", &err)
	return fn(now)
}

// safeWindowCompute runs a periodic window compute with panic recovery.
func safeWindowCompute(fn WindowComputeFunc, start, end clock.Time) (v Value, err error) {
	defer recoverCompute("window compute", &err)
	return fn(start, end)
}

// Handler maintains the value of one metadata item. There is a 1-to-1
// relationship between in-use metadata items and handlers (Section
// 2.1): the first subscription creates the handler, later ones share
// it, and the last unsubscription removes it.
//
// A handler is a proxy between the item and its consumers: it
// synchronizes concurrent access and guarantees a consistent view of
// the value during updates.
type Handler interface {
	// Value returns the current metadata value under the handler's
	// update discipline.
	Value() (Value, error)
	// Mechanism identifies the update mechanism.
	Mechanism() Mechanism

	// start binds the handler to its entry when the item is included.
	start(e *entry) error
	// stop releases handler resources when the item is excluded.
	stop()
}

// triggerable is implemented by handlers that recompute when notified
// of a dependency update or event (periodic handlers refresh on their
// own schedule and are not triggerable).
type triggerable interface {
	// refresh recomputes and publishes the value.
	refresh(now clock.Time) error
}

// valueSnapshot is one published (value, error) pair. Periodic and
// triggered handlers swap a pointer to the current snapshot at publish
// time, so Value() is a single atomic load and the read path never
// touches a mutex.
type valueSnapshot struct {
	val Value
	err error
}

// snapAlloc hands out valueSnapshot slots from chunked backing arrays,
// amortizing the per-publish heap allocation that lock-free value
// publication would otherwise pay on every update. Slots are never
// reused, so a reader holding a snapshot pointer is always safe; a
// chunk becomes collectable once no reader references any of its
// slots. Callers must serialize put calls (handlers publish under
// their update mutex).
type snapAlloc struct {
	chunk []valueSnapshot
	next  int
}

func (a *snapAlloc) put(v Value, err error) *valueSnapshot {
	if a.next == len(a.chunk) {
		// Grow geometrically from a single slot: a handler that only
		// ever publishes once (create/destroy churn) pays one
		// snapshot-sized allocation, while a long-lived periodic
		// handler quickly reaches full chunks.
		n := 2 * len(a.chunk)
		if n == 0 {
			n = 1
		} else if n > 64 {
			n = 64
		}
		a.chunk = make([]valueSnapshot, n)
		a.next = 0
	}
	s := &a.chunk[a.next]
	a.next++
	s.val = v
	if err != nil {
		// Slots are freshly zeroed and never reused, so the nil-error
		// common case needs no store (and no write barrier).
		s.err = err
	}
	return s
}

// --- Static ---

// staticHandler serves an invariable value.
type staticHandler struct {
	v Value
}

// NewStatic returns a handler for static metadata such as schema
// information or element sizes.
func NewStatic(v Value) Handler { return &staticHandler{v: v} }

func (h *staticHandler) Value() (Value, error) { return h.v, nil }
func (h *staticHandler) Mechanism() Mechanism  { return StaticMechanism }
func (h *staticHandler) start(*entry) error    { return nil }
func (h *staticHandler) stop()                 {}

// --- On-demand ---

// ComputeFunc computes a metadata value at the given time.
type ComputeFunc func(now clock.Time) (Value, error)

// onDemandHandler recomputes the value on every access.
type onDemandHandler struct {
	compute ComputeFunc
	mu      sync.Mutex
	e       *entry

	// deadline bounds each compute (0 = unbounded), resolved from the
	// definition/env at start. A deadline wait needs the clock to keep
	// advancing, so deadline-bounded on-demand reads must not be issued
	// from the clock-advancing goroutine itself.
	deadline clock.Duration
	// health is the item's circuit breaker, nil unless the env enables
	// WithBreaker.
	health *itemHealth
	// lastGood is the latest successfully computed value, served
	// tagged *StaleError while quarantined.
	lastGood Value
}

// NewOnDemand returns a handler that evaluates compute on each access.
// Use it for items that are rarely accessed, cheap to compute, or
// whose consumers need the exact value at access time (Section 3.2.1).
func NewOnDemand(compute ComputeFunc) Handler {
	return &onDemandHandler{compute: compute}
}

func (h *onDemandHandler) Value() (Value, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.e == nil {
		return nil, ErrUnsubscribed
	}
	if h.health.isQuarantined() {
		// Serve the last-good value without recomputing; recovery goes
		// through the armed probe. Value() may run during trigger
		// propagation with the scope lock held, so nothing here may
		// take structural locks.
		return h.lastGood, h.health.staleError()
	}
	env := h.e.reg.env
	stats := env.Stats()
	stats.ComputeCalls.Add(1)
	stats.OnDemandComputes.Add(1)
	now := env.Now()
	var v Value
	var err error
	if h.deadline > 0 {
		v, err = boundedCompute(env.clk, h.deadline, stats, h.compute, now)
	} else {
		v, err = safeCompute(h.compute, now)
	}
	if err == nil || !breakerEligible(err) {
		h.health.onSuccess()
		if err == nil && h.health != nil {
			// lastGood is only ever served while quarantined, so the
			// breaker-less hot path skips the store (and, for pointer
			// values, its write barrier).
			h.lastGood = v
		}
		return v, err
	}
	if h.health.onFailure(now, err) {
		return h.lastGood, h.health.staleError()
	}
	return v, err
}

// runProbe implements quarantineOwner: one recompute on the updater; a
// success closes the breaker (dependents recompute lazily on their
// next access) and notifies triggered dependents that the item is live
// again.
func (h *onDemandHandler) runProbe(now clock.Time) {
	h.mu.Lock()
	if h.e == nil {
		h.mu.Unlock()
		return
	}
	env := h.e.reg.env
	stats := env.Stats()
	stats.ComputeCalls.Add(1)
	stats.OnDemandComputes.Add(1)
	v, err := boundedCompute(env.clk, h.deadline, stats, h.compute, now)
	if err != nil && breakerEligible(err) {
		h.mu.Unlock()
		h.health.probeFailed(now, err)
		return
	}
	if err == nil {
		h.lastGood = v
	}
	h.health.closeBreaker()
	e := h.e
	h.mu.Unlock()
	if e.ndeps.Load() > 0 {
		sc := env.lockScope(e.reg)
		e.reg.propagateLocked(e, now)
		sc.unlock()
	}
}

// healthSnapshot implements healthCarrier.
func (h *onDemandHandler) healthSnapshot() HealthSnapshot { return h.health.snapshot() }

func (h *onDemandHandler) Mechanism() Mechanism { return OnDemandMechanism }

func (h *onDemandHandler) start(e *entry) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.e = e
	h.deadline = e.reg.env.deadlineFor(e.def)
	h.health = newItemHealth(e.reg.env, h)
	return nil
}

func (h *onDemandHandler) stop() {
	h.mu.Lock()
	h.e = nil
	h.mu.Unlock()
	h.health.stop()
}
