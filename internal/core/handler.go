package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/clock"
)

// recoverCompute converts a panic in user-supplied code (compute
// closures, Definition.Build, Definition.Resolve) into an
// ErrComputePanic error. Handlers store the error like any other
// compute failure, so it surfaces at the consumer's next Value() read
// instead of unwinding through framework locks (a panic escaping a
// pool worker would kill the process; one escaping a tick would wedge
// the handler mutex).
func recoverCompute(what string, errp *error) {
	if p := recover(); p != nil {
		*errp = fmt.Errorf("%w: %s: %v", ErrComputePanic, what, p)
	}
}

// safeCompute runs an on-demand/triggered compute with panic recovery.
func safeCompute(fn ComputeFunc, now clock.Time) (v Value, err error) {
	defer recoverCompute("compute", &err)
	return fn(now)
}

// safeWindowCompute runs a periodic window compute with panic recovery.
func safeWindowCompute(fn WindowComputeFunc, start, end clock.Time) (v Value, err error) {
	defer recoverCompute("window compute", &err)
	return fn(start, end)
}

// Handler maintains the value of one metadata item. There is a 1-to-1
// relationship between in-use metadata items and handlers (Section
// 2.1): the first subscription creates the handler, later ones share
// it, and the last unsubscription removes it.
//
// A handler is a proxy between the item and its consumers: it
// synchronizes concurrent access and guarantees a consistent view of
// the value during updates.
type Handler interface {
	// Value returns the current metadata value under the handler's
	// update discipline.
	Value() (Value, error)
	// Mechanism identifies the update mechanism.
	Mechanism() Mechanism

	// start binds the handler to its entry when the item is included.
	start(e *entry) error
	// stop releases handler resources when the item is excluded.
	stop()
}

// triggerable is implemented by handlers that recompute when notified
// of a dependency update or event (periodic handlers refresh on their
// own schedule and are not triggerable).
type triggerable interface {
	// refresh recomputes and publishes the value.
	refresh(now clock.Time) error
}

// valueSnapshot is one published (value, error) pair. Periodic and
// triggered handlers swap a pointer to the current snapshot at publish
// time, so Value() is a single atomic load and the read path never
// touches a mutex.
type valueSnapshot struct {
	val Value
	err error
	// fbox is the inline storage of a float64 published via putFloat
	// (delta path): val's eface points at it, so the publish costs no
	// boxing allocation (see delta.go).
	fbox float64
}

// snapAlloc hands out valueSnapshot slots from chunked backing arrays,
// amortizing the per-publish heap allocation that lock-free value
// publication would otherwise pay on every update. Slots are never
// reused, so a reader holding a snapshot pointer is always safe; a
// chunk becomes collectable once no reader references any of its
// slots. Callers must serialize put calls (handlers publish under
// their update mutex).
type snapAlloc struct {
	chunk []valueSnapshot
	next  int
}

func (a *snapAlloc) put(v Value, err error) *valueSnapshot {
	if a.next == len(a.chunk) {
		// Grow geometrically from a single slot: a handler that only
		// ever publishes once (create/destroy churn) pays one
		// snapshot-sized allocation, while a long-lived periodic
		// handler quickly reaches full chunks.
		n := 2 * len(a.chunk)
		if n == 0 {
			n = 1
		} else if n > 64 {
			n = 64
		}
		a.chunk = make([]valueSnapshot, n)
		a.next = 0
	}
	s := &a.chunk[a.next]
	a.next++
	s.val = v
	if err != nil {
		// Slots are freshly zeroed and never reused, so the nil-error
		// common case needs no store (and no write barrier).
		s.err = err
	}
	return s
}

// --- Static ---

// staticHandler serves an invariable value.
type staticHandler struct {
	v Value
}

// NewStatic returns a handler for static metadata such as schema
// information or element sizes.
func NewStatic(v Value) Handler { return &staticHandler{v: v} }

func (h *staticHandler) Value() (Value, error) { return h.v, nil }
func (h *staticHandler) Mechanism() Mechanism  { return StaticMechanism }
func (h *staticHandler) start(*entry) error    { return nil }
func (h *staticHandler) stop()                 {}

// --- On-demand ---

// ComputeFunc computes a metadata value at the given time.
type ComputeFunc func(now clock.Time) (Value, error)

// onDemandHandler recomputes the value on every access — unless the
// item is declared Pure on an env with WithMemoizedOnDemand, in which
// case repeat reads are served from a dependency-stamped memo and
// misses coalesce behind a single compute (see memo.go).
type onDemandHandler struct {
	compute ComputeFunc
	mu      sync.Mutex
	e       *entry

	// mstate is the memoized read-path state, published at start when
	// memoization engages (env option + Pure + stampable deps) and nil
	// otherwise. Non-nil mstate routes Value() through the versioned
	// read path; nil keeps the paper's recompute-per-access behaviour
	// untouched.
	mstate atomic.Pointer[memoState]
	// memo is the current dependency-stamped snapshot; nil before the
	// first memoized compute, after a breaker trip, and after stop.
	memo atomic.Pointer[memoSnapshot]
	// flight is the in-flight coalesced compute, guarded by mu.
	flight *memoFlight

	// deadline bounds each compute (0 = unbounded), resolved from the
	// definition/env at start. A deadline wait needs the clock to keep
	// advancing, so deadline-bounded on-demand reads must not be issued
	// from the clock-advancing goroutine itself.
	deadline clock.Duration
	// health is the item's circuit breaker, nil unless the env enables
	// WithBreaker.
	health *itemHealth
	// lastGood is the latest successfully computed value, served
	// tagged *StaleError while quarantined.
	lastGood Value
	// pure records whether the installed compute is a pure function of
	// the declared dependencies (Definition.Pure at start, AdaptSpec.Pure
	// after a migration); consulted when migration of a dependency
	// re-decides this handler's memo engagement. Guarded by mu.
	pure bool
	// retired marks a handler replaced by migration: the entry stays
	// included (readers already holding this handler still serve it),
	// but an in-flight recovery probe must re-arm for the replacement
	// owner instead of probing the retired compute. Guarded by mu.
	retired bool
}

// NewOnDemand returns a handler that evaluates compute on each access.
// Use it for items that are rarely accessed, cheap to compute, or
// whose consumers need the exact value at access time (Section 3.2.1).
func NewOnDemand(compute ComputeFunc) Handler {
	return &onDemandHandler{compute: compute}
}

func (h *onDemandHandler) Value() (Value, error) {
	ms := h.mstate.Load()
	if ms == nil {
		return h.valueVolatile()
	}
	// Memoized fast path: a hit is two atomic pointer loads plus the
	// stamp walk — no mutex, no compute, no allocation. The atomic
	// memo load orders the snapshot's fields before this read.
	if m := h.memo.Load(); m != nil && ms.memoValid(m) {
		ms.env.stats.MemoHits.Add(1)
		return m.val, m.err
	}
	return h.valueMiss(ms)
}

// valueVolatile is the paper's on-demand read: recompute per access
// under the handler mutex. It is the only path when memoization is not
// engaged and is kept byte-for-byte as before the versioned read path
// existed.
func (h *onDemandHandler) valueVolatile() (Value, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.e == nil {
		return nil, ErrUnsubscribed
	}
	if h.health.isQuarantined() {
		// Serve the last-good value without recomputing; recovery goes
		// through the armed probe. Value() may run during trigger
		// propagation with the scope lock held, so nothing here may
		// take structural locks.
		return h.lastGood, h.health.staleError()
	}
	env := h.e.reg.env
	stats := env.Stats()
	stats.ComputeCalls.Add(1)
	stats.OnDemandComputes.Add(1)
	now := env.Now()
	var v Value
	var err error
	if h.deadline > 0 {
		v, err = boundedCompute(env.clk, h.deadline, stats, h.compute, now)
	} else {
		v, err = safeCompute(h.compute, now)
	}
	if err == nil || !breakerEligible(err) {
		h.health.onSuccess()
		if err == nil && h.health != nil {
			// lastGood is only ever served while quarantined, so the
			// breaker-less hot path skips the store (and, for pointer
			// values, its write barrier).
			h.lastGood = v
		}
		return v, err
	}
	if h.health.onFailure(now, err) {
		return h.lastGood, h.health.staleError()
	}
	return v, err
}

// valueMiss is the memoized slow path: revalidate under the mutex,
// coalesce onto an in-flight compute when one exists, else lead one
// compute outside the mutex and publish the stamped result.
func (h *onDemandHandler) valueMiss(ms *memoState) (Value, error) {
	env := ms.env
	stats := env.Stats()
	h.mu.Lock()
	if h.e == nil {
		h.mu.Unlock()
		return nil, ErrUnsubscribed
	}
	// Double-check under the mutex: a leader that beat us here may have
	// published a valid memo while we blocked on the lock.
	if m := h.memo.Load(); m != nil && ms.memoValid(m) {
		h.mu.Unlock()
		stats.MemoHits.Add(1)
		return m.val, m.err
	}
	if h.health.isQuarantined() {
		// Same containment as the volatile path: serve last-good tagged
		// stale, recovery goes through the armed probe.
		v, serr := h.lastGood, h.health.staleError()
		h.mu.Unlock()
		return v, serr
	}
	if f := h.flight; f != nil {
		// Coalesce: another reader is computing this miss. Wait off the
		// mutex so the leader can publish.
		h.mu.Unlock()
		stats.CoalescedReads.Add(1)
		<-f.done
		return f.val, f.err
	}
	f := &memoFlight{done: make(chan struct{})}
	h.flight = f
	stats.MemoMisses.Add(1)
	stats.ComputeCalls.Add(1)
	stats.OnDemandComputes.Add(1)
	deadline := h.deadline
	h.mu.Unlock()

	// Warm memoized dependencies whose memo is not current before
	// capturing stamps: a cold dependency bumps its version when its
	// first read publishes its memo, and a stamp captured before that
	// bump would be immediately stale — costing one spurious miss per
	// chain level per read until convergence. Warming first lets a
	// dependency chain of any depth converge in a single read. No lock is
	// held here, so recursing into dependency read paths cannot deadlock.
	for _, od := range ms.depMemo {
		if od != nil && !od.memoCurrent() {
			od.Value()
		}
	}
	// Stamps are captured BEFORE the compute reads its inputs — the
	// order the exactness argument in memo.go depends on. They are
	// atomic loads and need no mutex.
	epoch, depVers := ms.captureStamps()

	// The compute runs outside the handler mutex: hits and coalescing
	// waiters never queue behind user code. Panics are recovered inside
	// safeCompute/boundedCompute, so the flight is always delivered.
	now := env.Now()
	var v Value
	var err error
	if deadline > 0 {
		v, err = boundedCompute(env.clk, deadline, stats, h.compute, now)
	} else {
		v, err = safeCompute(h.compute, now)
	}

	h.mu.Lock()
	h.flight = nil
	stopped := h.e == nil
	if err == nil || !breakerEligible(err) {
		h.health.onSuccess()
		if err == nil && h.health != nil {
			h.lastGood = v
		}
		if !stopped {
			// Publish the memo, then bump the version (publication
			// order: a dependent observing the new version sees this
			// memo or a newer one). Pure compute errors are memoized
			// like values — recomputing would fail identically.
			h.memo.Store(&memoSnapshot{val: v, err: err, epoch: epoch, depVers: depVers})
			h.e.bumpVersion()
		}
		h.mu.Unlock()
		f.deliver(v, err)
		return v, err
	}
	if h.health.onFailure(now, err) {
		// Tripped: drop the memo — quarantined reads serve last-good
		// through the slow path — and bump the version so dependent
		// memos stamped over this item revalidate.
		h.memo.Store(nil)
		if !stopped {
			h.e.bumpVersion()
		}
		v, serr := h.lastGood, h.health.staleError()
		h.mu.Unlock()
		f.deliver(v, serr)
		return v, serr
	}
	// Breaker-eligible failure below the trip threshold: delivered to
	// every waiter but never memoized — panics and timeouts are
	// transient containment outcomes, not values of the pure function.
	h.mu.Unlock()
	f.deliver(v, err)
	return v, err
}

// runProbe implements quarantineOwner: one recompute on the updater; a
// success closes the breaker (dependents recompute lazily on their
// next access) and notifies triggered dependents that the item is live
// again.
func (h *onDemandHandler) runProbe(now clock.Time) {
	h.mu.Lock()
	if h.e == nil || h.retired {
		// Stopped or migrated away. Report a no-op failure so the probe
		// re-arms: after a real stop the health state is stopped and the
		// report is inert, while after a migration the re-armed probe
		// reaches the replacement handler (the transplanted owner).
		h.mu.Unlock()
		h.health.probeFailed(now, nil)
		return
	}
	env := h.e.reg.env
	stats := env.Stats()
	stats.ComputeCalls.Add(1)
	stats.OnDemandComputes.Add(1)
	v, err := boundedCompute(env.clk, h.deadline, stats, h.compute, now)
	if err != nil && breakerEligible(err) {
		h.mu.Unlock()
		h.health.probeFailed(now, err)
		return
	}
	if err == nil {
		h.lastGood = v
	}
	h.health.closeBreaker()
	e := h.e
	// The item is live again and may serve fresh computes where it
	// served stale; bump so dependent memos stamped over it revalidate.
	// The memo itself stays nil (dropped at the trip) — the next read
	// recomputes with fresh stamps.
	e.bumpVersion()
	h.mu.Unlock()
	if e.ndeps.Load() > 0 {
		sc := env.lockScope(e.reg)
		e.reg.propagateLocked(e, now)
		sc.unlock()
	}
}

// healthSnapshot implements healthCarrier.
func (h *onDemandHandler) healthSnapshot() HealthSnapshot { return h.health.snapshot() }

func (h *onDemandHandler) Mechanism() Mechanism { return OnDemandMechanism }

func (h *onDemandHandler) start(e *entry) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.e = e
	h.deadline = e.reg.env.deadlineFor(e.def)
	h.health = newItemHealth(e.reg.env, h)
	h.pure = e.def != nil && e.def.Pure
	// Engage memoization last: publishing mstate is what routes reads
	// onto the versioned path, and the atomic store orders the fields
	// set above before any lock-free reader can observe them.
	if ms := newMemoState(e, h.health, h.pure); ms != nil {
		h.mstate.Store(ms)
	}
	return nil
}

func (h *onDemandHandler) stop() {
	h.mu.Lock()
	h.e = nil
	h.mstate.Store(nil)
	h.memo.Store(nil)
	h.mu.Unlock()
	h.health.stop()
}
