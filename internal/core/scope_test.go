package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/clock"
)

// TestComponentsMergeOnDependencyEdge verifies the union-find: two
// registries start as separate dependency-scope components and share
// one once an inter-registry dependency edge is created.
func TestComponentsMergeOnDependencyEdge(t *testing.T) {
	env, _ := testEnv()
	a := env.NewRegistry("a")
	b := env.NewRegistry("b")
	defineConst(b, "base", 2.0)
	a.SetNeighbors(func() []*Registry { return []*Registry{b} }, nil)
	defineDerived(a, "up", Dep(Input(0), "base"))

	if find(a.comp) == find(b.comp) {
		t.Fatal("components merged before any dependency edge exists")
	}
	s, err := a.Subscribe("up")
	if err != nil {
		t.Fatal(err)
	}
	if find(a.comp) != find(b.comp) {
		t.Fatal("components not merged by inter-registry subscription")
	}
	v, err := s.Float()
	if err != nil || v != 2.0 {
		t.Fatalf("value = %v, %v; want 2", v, err)
	}
	s.Unsubscribe()
	// Components stay merged after release (conservative, documented).
	if find(a.comp) != find(b.comp) {
		t.Fatal("components split on unsubscribe")
	}
	if got := len(a.Included()) + len(b.Included()); got != 0 {
		t.Fatalf("%d items left included", got)
	}
}

// TestModuleKeepsOwnComponentUntilLinked verifies that AttachModule
// does not merge scopes by itself, and that DetachModule — a
// cross-component structural operation — works either way.
func TestModuleKeepsOwnComponentUntilLinked(t *testing.T) {
	env, _ := testEnv()
	op := env.NewRegistry("op")
	mod := env.NewRegistry("op.state")
	op.AttachModule("state", mod)
	if find(op.comp) == find(mod.comp) {
		t.Fatal("attach merged components without a metadata link")
	}
	if err := op.DetachModule("state"); err != nil {
		t.Fatal(err)
	}

	// Re-attach and link via metadata: now they merge.
	op.AttachModule("state", mod)
	defineConst(mod, "memUsage", 64.0)
	defineDerived(op, "memUsage", Dep(Module("state"), "memUsage"))
	s, err := op.Subscribe("memUsage")
	if err != nil {
		t.Fatal(err)
	}
	if find(op.comp) != find(mod.comp) {
		t.Fatal("module dependency did not merge components")
	}
	if err := op.DetachModule("state"); err == nil {
		t.Fatal("detach succeeded with included module items")
	}
	s.Unsubscribe()
	if err := op.DetachModule("state"); err != nil {
		t.Fatal(err)
	}
}

// TestCrossComponentSubscribeNoDeadlock hammers cross-component
// subscriptions from many goroutines over a ring of registries:
// goroutine work on registry i creates dependency edges i -> i+1 while
// its neighbors do the same. Without the deterministic component-id
// lock order (plus widen-and-retry), opposing acquisition orders
// deadlock. Run with -race.
func TestCrossComponentSubscribeNoDeadlock(t *testing.T) {
	env, _ := testEnv()
	const n = 16
	regs := make([]*Registry, n)
	for i := range regs {
		regs[i] = env.NewRegistry(fmt.Sprintf("n%d", i))
		defineConst(regs[i], "base", float64(i))
	}
	for i := range regs {
		next := regs[(i+1)%n]
		regs[i].SetNeighbors(func() []*Registry { return []*Registry{next} }, nil)
		defineDerived(regs[i], "up", Dep(Input(0), "base"))
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r := regs[(g+i)%n]
				s, err := r.Subscribe("up")
				if err != nil {
					t.Error(err)
					return
				}
				want := float64(((g+i)%n + 1) % n)
				if v, err := s.Float(); err != nil || v != want {
					t.Errorf("value = %v, %v; want %v", v, err, want)
					s.Unsubscribe()
					return
				}
				s.Unsubscribe()
			}
		}(g)
	}
	wg.Wait()
	for _, r := range regs {
		if got := len(r.Included()); got != 0 {
			t.Fatalf("%s: %d items left included", r.ID(), got)
		}
	}
	if c, rm := env.Stats().HandlersCreated.Load(), env.Stats().HandlersRemoved.Load(); c != rm {
		t.Fatalf("created %d != removed %d", c, rm)
	}
}

// TestIndependentComponentsChurnWithPeriodicPublishes exercises the
// sharding win end to end: concurrent subscribe/unsubscribe on
// *different* components in parallel with periodic publishes (and the
// trigger propagation they batch under each owning component's lock).
// Run with -race.
func TestIndependentComponentsChurnWithPeriodicPublishes(t *testing.T) {
	env, vc := testEnv()
	const n = 8
	regs := make([]*Registry, n)
	pinned := make([]*Subscription, n)
	for i := range regs {
		r := env.NewRegistry(fmt.Sprintf("p%d", i))
		r.MustDefine(&Definition{
			Kind: "tick",
			Build: func(*BuildContext) (Handler, error) {
				return NewPeriodic(5, func(start, end clock.Time) (Value, error) {
					return float64(end), nil
				}), nil
			},
		})
		defineDerived(r, "echo", Dep(Self(), "tick"))
		regs[i] = r
		// Pin the periodic item so it keeps publishing (and
		// propagating to "echo" subscribers) throughout the churn.
		s, err := r.Subscribe("echo")
		if err != nil {
			t.Fatal(err)
		}
		pinned[i] = s
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := range regs {
		wg.Add(1)
		go func(r *Registry) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s, err := r.Subscribe("echo")
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Float(); err != nil {
					t.Error(err)
					s.Unsubscribe()
					return
				}
				s.Unsubscribe()
			}
		}(regs[i])
	}
	vc.Advance(500)
	close(stop)
	wg.Wait()
	for i, s := range pinned {
		v, err := s.Float()
		if err != nil {
			t.Fatal(err)
		}
		if v != 500 {
			t.Fatalf("reg %d: value = %v, want 500", i, v)
		}
		s.Unsubscribe()
	}
}

// TestScopeWidenRollbackLeavesNoResidue forces the widen-and-retry
// path of Subscribe (first attempt escapes the initial scope after
// partially including local dependencies) and checks that the rollback
// plus retry produces exactly one clean inclusion.
func TestScopeWidenRollbackLeavesNoResidue(t *testing.T) {
	env, _ := testEnv()
	a := env.NewRegistry("a")
	b := env.NewRegistry("b")
	defineConst(b, "remote", 5.0)
	a.SetNeighbors(func() []*Registry { return []*Registry{b} }, nil)
	defineConst(a, "local", 1.0)
	// "top" includes a local dependency first, then escapes to b: the
	// first attempt includes "local", rolls back, and retries under
	// the widened scope.
	defineDerived(a, "top", Dep(Self(), "local"), Dep(Input(0), "remote"))

	s, err := a.Subscribe("top")
	if err != nil {
		t.Fatal(err)
	}
	if v, err := s.Float(); err != nil || v != 6.0 {
		t.Fatalf("value = %v, %v; want 6", v, err)
	}
	if refs := a.Refs("local"); refs != 1 {
		t.Fatalf("local refs = %d, want 1 (rollback residue?)", refs)
	}
	s.Unsubscribe()
	if got := len(a.Included()) + len(b.Included()); got != 0 {
		t.Fatalf("%d items left included", got)
	}
	if c, rm := env.Stats().HandlersCreated.Load(), env.Stats().HandlersRemoved.Load(); c != rm {
		t.Fatalf("created %d != removed %d", c, rm)
	}
}
