package core

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Dependency-scope locking (the graph level of Section 4.2, sharded).
//
// Instead of one graph-wide structural mutex, the registries of an Env
// are partitioned into connected components of the dependency relation:
// two registries share a component once a metadata dependency edge (or
// an attach/detach of a module that metadata links) has connected them.
// Each component carries its own structural lock, so structural
// operations on unrelated parts of the query graph — subscription,
// unsubscription, trigger propagation, event firing, introspection —
// proceed in parallel. This realizes the paper's "only the locks
// involved in the currently included items are used" at the graph
// level.
//
// The partition is a union-find forest maintained incrementally:
// NewRegistry creates a singleton component, and the inclusion
// traversal merges the components of two registries the moment it
// creates a dependency edge between them. Components only ever merge
// (a conservative over-approximation: unsubscribing the last
// cross-registry edge does not split them), which is what makes the
// locking protocol below terminate.
//
// find is lock-free: parent pointers are atomic, path compression uses
// benign CAS. A root can only gain a parent (lose root-hood) while its
// component lock is held — lockScope relies on this to validate its
// lock set.

// component is one union-find node. Roots (parent == nil) carry the
// live structural lock of their component.
type component struct {
	// mu is the component's structural lock; meaningful at roots.
	mu sync.Mutex
	// id orders lock acquisition deterministically (creation order).
	id int64
	// parent is nil at a root; set once when the component merges into
	// another, only while both roots' locks are held.
	parent atomic.Pointer[component]

	// Propagation-plan cache and reusable scratch space, guarded by mu
	// and meaningful at roots (see plan.go). structVer counts
	// structural mutations of the component — entry inclusion/removal,
	// component merges, redefinitions — and stamps cached plans so a
	// stale plan can never be executed.
	structVer uint64
	plans     map[string]*propPlan
	seedBuf   []*entry
	keyBuf    []int64
	keyBytes  []byte
}

// newComponent allocates a fresh singleton component.
func (e *Env) newComponent() *component {
	return &component{id: e.compSeq.Add(1)}
}

// find returns the root of c's component, compressing the path. It is
// lock-free; the result may be stale the moment it returns unless the
// caller holds the root's lock (see lockScope validation).
func find(c *component) *component {
	root := c
	for {
		p := root.parent.Load()
		if p == nil {
			break
		}
		root = p
	}
	// Path compression: point traversed nodes at the root. CAS failures
	// mean someone else compressed further; both outcomes are fine.
	for c != root {
		p := c.parent.Load()
		if p == nil || p == root {
			break
		}
		c.parent.CompareAndSwap(p, root)
		c = p
	}
	return root
}

// union merges the components rooted at a and b; the caller must hold
// both roots' locks. The root with the smaller id wins, so component
// ids (and hence lock order) stay stable as components coarsen.
func union(a, b *component) *component {
	if a == b {
		return a
	}
	if a.id > b.id {
		a, b = b, a
	}
	b.parent.Store(a)
	// The merged component has new structure; cached propagation plans
	// of both halves are stale. The loser can never be consulted again
	// (it is no longer a root), so clearing it just releases memory.
	a.bumpStructLocked()
	b.plans = nil
	return a
}

// scope is a set of locked components covering one structural
// operation. While a scope is held, no registry inside it can move to
// a component outside it and no outside registry can join it, because
// either would require the merging operation to hold a lock the scope
// owns.
// scope is returned by value and lives on the caller's stack: taking a
// component lock must not cost a heap allocation on the hot
// single-registry path. Small root sets sit in the inline array;
// larger ones (rare multi-registry operations) spill to extra.
type scope struct {
	n      int // roots in inline (0 when extra is used)
	inline [2]*component
	extra  []*component
}

// roots returns the locked roots in ascending id order.
func (s *scope) roots() []*component {
	if s.extra != nil {
		return s.extra
	}
	return s.inline[:s.n]
}

// lockScope locks the components covering regs. Locks are taken in
// ascending component-id order — the deterministic cross-component
// ordering rule — and the covering set is revalidated after
// acquisition, since a concurrent merge may have changed it between
// find and lock. The retry loop terminates because components only
// merge: every retry sees the same or fewer distinct roots.
func (e *Env) lockScope(regs ...*Registry) scope {
	// Fast path: a single registry needs a single root — no dedup, no
	// sort, no allocation. This is the overwhelmingly common case
	// (every structural operation confined to one node's dependency
	// scope).
	if len(regs) == 1 {
		for {
			root := find(regs[0].comp)
			root.mu.Lock()
			if find(regs[0].comp) == root {
				return scope{n: 1, inline: [2]*component{root}}
			}
			root.mu.Unlock()
		}
	}
	for {
		roots := make([]*component, 0, len(regs))
		for _, r := range regs {
			root := find(r.comp)
			dup := false
			for _, c := range roots {
				if c == root {
					dup = true
					break
				}
			}
			if !dup {
				roots = append(roots, root)
			}
		}
		sort.Slice(roots, func(i, j int) bool { return roots[i].id < roots[j].id })
		for _, c := range roots {
			c.mu.Lock()
		}
		ok := true
		for _, r := range regs {
			if !rootsContain(roots, find(r.comp)) {
				ok = false
				break
			}
		}
		if ok {
			return scope{extra: roots}
		}
		for i := len(roots) - 1; i >= 0; i-- {
			roots[i].mu.Unlock()
		}
	}
}

// covers reports whether r's component is locked by this scope. The
// answer is stable for the lifetime of the scope (merges into or out
// of a held component are impossible).
func (s *scope) covers(r *Registry) bool {
	return rootsContain(s.roots(), find(r.comp))
}

// mergeLocked unions the components of a and b, both of which must be
// covered by the scope. Called when the inclusion traversal creates a
// dependency edge between registries of different components.
func (s *scope) mergeLocked(a, b *Registry) {
	union(find(a.comp), find(b.comp))
}

// unlock releases every component lock of the scope.
func (s *scope) unlock() {
	roots := s.roots()
	for i := len(roots) - 1; i >= 0; i-- {
		roots[i].mu.Unlock()
	}
}

func rootsContain(roots []*component, c *component) bool {
	for _, r := range roots {
		if r == c {
			return true
		}
	}
	return false
}

// scopeEscapeError reports that the inclusion traversal reached a
// registry outside the locked scope. The caller rolls back, widens the
// scope to include the escaped registry, and retries. It is an
// internal control-flow error and never escapes the package.
type scopeEscapeError struct {
	reg *Registry
}

func (e *scopeEscapeError) Error() string {
	return "core: dependency traversal left the locked scope at " + e.reg.id
}
