package core

import (
	"fmt"

	"repro/internal/clock"
)

// Live mechanism migration (ROADMAP: closed-loop adaptive maintenance).
//
// The paper fixes each metadata item's update mechanism at definition
// time, but the economics of a mechanism depend on the live workload:
// an item read on every tuple wants a published (periodic/triggered)
// or memoized value, an item updated constantly but read rarely wants
// on-demand, and the break-even point moves as the stream's mix moves.
// Registry.Migrate swaps an in-use item's handler for an equivalent one
// under a different mechanism — atomically under the dependency-scope
// lock, without disturbing subscribers, and preserving the item's
// last-good value and circuit-breaker state — so a controller
// (internal/adapt) can follow the workload instead of pinning the
// definition-time guess.
//
// A definition opts in by declaring an AdaptSpec: the same metadata
// quantity expressed as an on-demand compute, a triggered compute,
// and/or a periodic window compute. The factories receive the item's
// original BuildContext, so every form reads the same resolved
// dependency handles and the forms cannot drift structurally.
//
// What a migration preserves:
//
//   - subscribers: Subscriptions and Handles point at the entry, not
//     the handler; they observe the new mechanism on their next read.
//   - readers in flight: the entry publishes its handler through a
//     write-once heap cell (entry.pub); a reader that loaded the old
//     cell finishes its read against the old handler, which stays
//     servable (its published snapshot is left in place) until
//     unreferenced.
//   - last-good value and breaker state: the itemHealth is transplanted
//     to the new handler — failure history, quarantine, armed probes
//     and their backoff all carry over; a quarantined item migrates
//     quarantined, serving the same stale value, and its next probe
//     recovers through the new mechanism.
//   - exactness machinery: the migration bumps the item's publication
//     version and the env write epoch, so memo stamps and cached
//     propagation plans can never survive it; dependent delta
//     aggregates are re-anchored in two phases so their accumulators
//     re-fold against the new handler's published value.
//
// What cannot migrate: static items (nothing to maintain), delta
// aggregates (their handler IS the delta machinery; re-expressing it
// per mechanism is not meaningful), items without an AdaptSpec, and
// targets the spec declares no compute for — all ErrNotMigratable.

// AdaptSpec declares a metadata item's alternative maintenance forms
// for live migration (Definition.Adapt). Each non-nil factory provides
// one target mechanism; Registry.Migrate invokes it with the item's
// original BuildContext. A factory must return a compute over the
// resolved dependency handles equivalent to the Build-time form —
// "equivalent" in whatever sense the item's consumers need; the
// modelcheck harness pins bit-identity for pure forms.
type AdaptSpec struct {
	// OnDemand builds the recompute-per-access form.
	OnDemand func(ctx *BuildContext) ComputeFunc
	// Triggered builds the recompute-on-dependency-update form.
	Triggered func(ctx *BuildContext) ComputeFunc
	// Periodic builds the per-window form.
	Periodic func(ctx *BuildContext) WindowComputeFunc
	// Window is the default periodic window, used when Migrate is called
	// with window <= 0. Required (here or per call) for periodic targets.
	Window clock.Duration
	// Pure declares that the OnDemand form is a pure function of the
	// declared dependencies, exactly like Definition.Pure: after a
	// migration to on-demand it decides memo engagement on
	// WithMemoizedOnDemand envs.
	Pure bool
}

// Migrate atomically replaces the maintenance mechanism of an in-use
// item with the AdaptSpec form for the target mechanism, preserving
// subscribers, the last-good value, and circuit-breaker state (see the
// package comment above). window sets the periodic window for
// PeriodicMechanism targets (<= 0 selects AdaptSpec.Window) and is
// ignored for other targets. Migrating an item onto its current
// mechanism (and, for periodic, its current window) is a no-op.
//
// It returns ErrUnsubscribed if the item is not included and
// ErrNotMigratable if the item or the target does not support
// migration. A factory that panics or returns nil fails the migration
// with the item untouched.
func (r *Registry) Migrate(kind Kind, to Mechanism, window clock.Duration) error {
	sc := r.env.lockScope(r)
	defer sc.unlock()
	env := r.env
	now := env.Now()

	e, ok := r.entries[kind]
	if !ok {
		return fmt.Errorf("%w: %s/%s", ErrUnsubscribed, r.id, kind)
	}
	spec := e.def.Adapt
	if spec == nil {
		return fmt.Errorf("%w: %s/%s declares no AdaptSpec", ErrNotMigratable, r.id, kind)
	}
	if e.def.Delta != nil {
		return fmt.Errorf("%w: %s/%s is a delta aggregate", ErrNotMigratable, r.id, kind)
	}
	old := e.handler
	switch old.(type) {
	case *onDemandHandler, *periodicHandler, *triggeredHandler:
	default:
		return fmt.Errorf("%w: %s/%s handler is %T", ErrNotMigratable, r.id, kind, old)
	}

	// Target checks precede the identity no-op so an unsupported target
	// reports the same error whether or not it matches the current
	// mechanism.
	switch to {
	case OnDemandMechanism:
		if spec.OnDemand == nil {
			return fmt.Errorf("%w: %s/%s declares no on-demand form", ErrNotMigratable, r.id, kind)
		}
	case TriggeredMechanism:
		if spec.Triggered == nil {
			return fmt.Errorf("%w: %s/%s declares no triggered form", ErrNotMigratable, r.id, kind)
		}
	case PeriodicMechanism:
		if spec.Periodic == nil {
			return fmt.Errorf("%w: %s/%s declares no periodic form", ErrNotMigratable, r.id, kind)
		}
		if window <= 0 {
			window = spec.Window
		}
		if window <= 0 {
			return fmt.Errorf("%w: %s/%s periodic migration without a positive window", ErrNotMigratable, r.id, kind)
		}
	default:
		return fmt.Errorf("%w: cannot migrate %s/%s to %v", ErrNotMigratable, r.id, kind, to)
	}

	if old.Mechanism() == to {
		if to != PeriodicMechanism || old.(*periodicHandler).window == window {
			return nil
		}
	}

	// Build the replacement compute before touching the old handler, so
	// a panicking (or nil-returning) factory leaves the item untouched.
	var compute ComputeFunc
	var winCompute WindowComputeFunc
	var err error
	switch to {
	case OnDemandMechanism:
		compute, err = adaptCompute("on-demand", spec.OnDemand, e.bctx)
	case TriggeredMechanism:
		compute, err = adaptCompute("triggered", spec.Triggered, e.bctx)
	case PeriodicMechanism:
		winCompute, err = adaptWindowCompute(spec.Periodic, e.bctx)
	}
	if err != nil {
		return fmt.Errorf("migrating %s/%s to %v: %w", r.id, kind, to, err)
	}

	// Tear down the old handler WITHOUT stop(): stop would retire the
	// breaker and cancel armed probes, which must survive the migration.
	// The old handler's published snapshot is deliberately left in place
	// so a reader that loaded the old pub cell still gets a coherent
	// (pre-migration) read; its maintenance is disarmed so it never
	// publishes again.
	var lastGood Value
	var haveGood bool
	var ih *itemHealth
	var cancelTask *clock.Task
	switch h := old.(type) {
	case *onDemandHandler:
		h.mu.Lock()
		ih = h.health
		lastGood = h.lastGood
		haveGood = h.lastGood != nil
		h.retired = true
		h.mstate.Store(nil)
		h.memo.Store(nil)
		// h.e stays set: ghost readers of the retired handler still
		// compute (equivalent to a read that landed just before the
		// migration); runProbe routes around it via the retired flag.
		h.mu.Unlock()
	case *periodicHandler:
		h.mu.Lock()
		ih = h.health
		if h.lastGood != nil {
			lastGood, haveGood = h.lastGood.val, true
		}
		h.stopped = true
		h.e = nil
		cancelTask = h.task
		h.task = nil
		h.mu.Unlock()
	case *triggeredHandler:
		h.mu.Lock()
		ih = h.health
		if h.lastGood != nil {
			lastGood, haveGood = h.lastGood.val, true
		}
		h.e = nil
		h.mu.Unlock()
	}
	if cancelTask != nil {
		env.scheduler().Cancel(cancelTask)
	}
	quarantined := ih.isQuarantined()

	// Build and initialize the replacement. This mirrors what the
	// handler's start would do, except the itemHealth is the transplanted
	// one and a quarantined item publishes its stale last-good instead of
	// computing (the armed probe owns recovery, now through the new
	// mechanism). Initial computes run on the caller's goroutine under
	// the scope lock, exactly like include-time initial computes, and are
	// therefore never deadline-bounded.
	var nh Handler
	switch to {
	case OnDemandMechanism:
		od := &onDemandHandler{compute: compute}
		od.e = e
		od.deadline = env.deadlineFor(e.def)
		od.health = ih
		od.pure = spec.Pure
		od.lastGood = lastGood
		if ms := newMemoState(e, ih, od.pure); ms != nil {
			od.mstate.Store(ms)
		}
		nh = od
	case TriggeredMechanism:
		th := &triggeredHandler{compute: compute}
		th.e = e
		th.deadline = env.deadlineFor(e.def)
		th.health = ih
		if haveGood && ih != nil {
			th.lastGood = th.snaps.put(lastGood, nil)
		}
		if quarantined {
			th.cur.Store(th.snaps.put(lastGood, ih.staleError()))
		} else {
			env.stats.ComputeCalls.Add(1)
			v, cerr := safeCompute(compute, now)
			snap := th.snaps.put(v, cerr)
			th.cur.Store(snap)
			if cerr == nil && ih != nil {
				th.lastGood = snap
			}
		}
		nh = th
	case PeriodicMechanism:
		ph := &periodicHandler{window: window, compute: winCompute}
		ph.env = env
		ph.e = e
		ph.winStart = now
		ph.async = env.async
		ph.deadline = env.deadlineFor(e.def)
		ph.health = ih
		if haveGood && ih != nil {
			ph.lastGood = ph.snaps.put(lastGood, nil)
		}
		if quarantined {
			// Unscheduled like any quarantined periodic handler; the
			// probe's success republishes and re-arms the cadence.
			ph.cur.Store(ph.snaps.put(lastGood, ih.staleError()))
		} else {
			env.stats.ComputeCalls.Add(1)
			v, cerr := safeWindowCompute(winCompute, now, now)
			snap := ph.snaps.put(v, cerr)
			ph.cur.Store(snap)
			if cerr == nil && ih != nil {
				ph.lastGood = snap
			}
			ph.task = &clock.Task{Data: ph}
			env.scheduler().At(now.Add(window), ph.task)
		}
		nh = ph
	}

	// Transplant the breaker: from here on, probe fires reach the new
	// handler. A probe that fired against the old handler in the window
	// since teardown re-armed itself via probeFailed and lands here next.
	if ih != nil {
		ih.mu.Lock()
		ih.owner = nh.(quarantineOwner)
		ih.mu.Unlock()
	}

	// Commit: swap the structural reference, publish the new handler
	// through a fresh write-once cell, and invalidate every exactness
	// cache — the version bump covers memo stamps over this item, the
	// structural bump covers plans and env-wide memo epochs.
	e.handler = nh
	e.publishHandlerLocked(nh)
	e.bumpVersion()
	bumpStruct(r)

	// Re-anchor dependent delta aggregates in two phases: first drop
	// every tracked edge (so this entry's deltaDeps drains to zero even
	// when several aggregates track it), then reset and re-register each
	// aggregate. The 0 -> 1 transition in startLocked re-anchors
	// deltaLast at the NEW handler's published value, and eligibility is
	// re-decided against the new mechanism (an on-demand target forces
	// dependents onto the exact fold path). Accumulators are invalidated;
	// the propagation below re-folds them.
	var aggs []*entry
	for d := range e.dependents {
		if th, ok := d.handler.(*triggeredHandler); ok && th.ds != nil {
			aggs = append(aggs, d)
		}
	}
	for _, d := range aggs {
		d.handler.(*triggeredHandler).ds.stopLocked()
	}
	for _, d := range aggs {
		ds := d.handler.(*triggeredHandler).ds
		ds.eligible = false
		ds.pending = ds.pending[:0]
		ds.poisoned = false
		ds.valid = false
		ds.startLocked(d)
	}

	// Re-decide memo engagement for direct on-demand dependents: their
	// stampability premises over this item may have changed in either
	// direction (a volatile on-demand dependency became a publishing
	// periodic one, or vice versa).
	for d := range e.dependents {
		od, ok := d.handler.(*onDemandHandler)
		if !ok {
			continue
		}
		od.mu.Lock()
		od.mstate.Store(newMemoState(d, od.health, od.pure))
		od.memo.Store(nil)
		od.mu.Unlock()
	}

	// The old handler is retired, the new one live: counted as a
	// removal plus a creation so handler conservation checks stay exact.
	env.stats.HandlersCreated.Add(1)
	env.stats.HandlersRemoved.Add(1)
	env.stats.Migrations.Add(1)

	// Dependents refresh against the new mechanism's published value.
	r.propagateLocked(e, now)

	// Journal the committed migration (identity no-ops returned early
	// and are never recorded); replaying it at recovery reproduces the
	// item's final mechanism. The window is only meaningful for
	// periodic targets.
	jw := clock.Duration(0)
	if to == PeriodicMechanism {
		jw = window
	}
	env.journalRecord(JournalOp{Op: JournalMigrate, Registry: r.id, Kind: kind, To: to, Window: jw})
	return nil
}

// adaptCompute runs an AdaptSpec compute factory with panic recovery.
func adaptCompute(what string, f func(*BuildContext) ComputeFunc, ctx *BuildContext) (fn ComputeFunc, err error) {
	defer recoverCompute("adapt "+what, &err)
	fn = f(ctx)
	if fn == nil && err == nil {
		err = fmt.Errorf("core: AdaptSpec %s factory returned nil compute", what)
	}
	return fn, err
}

// adaptWindowCompute runs the AdaptSpec periodic factory with panic
// recovery.
func adaptWindowCompute(f func(*BuildContext) WindowComputeFunc, ctx *BuildContext) (fn WindowComputeFunc, err error) {
	defer recoverCompute("adapt periodic", &err)
	fn = f(ctx)
	if fn == nil && err == nil {
		err = fmt.Errorf("core: AdaptSpec periodic factory returned nil compute")
	}
	return fn, err
}

// TrackReads installs a read counter on an included item: every
// Handle/Subscription read and every Registry.Peek of the item
// increments it. The counter is sharded, so tracking adds one predicted
// branch plus one striped increment to the read path; untracked items
// pay the branch alone. Tracking survives migrations (it lives on the
// entry, not the handler) and ends when the item is excluded. It
// returns false if the item is not included.
func (r *Registry) TrackReads(kind Kind) bool {
	r.mu.RLock()
	e, ok := r.entries[kind]
	r.mu.RUnlock()
	if !ok {
		return false
	}
	if e.track.Load() == nil {
		e.track.CompareAndSwap(nil, new(ShardedCounter))
	}
	return true
}

// AccessStats samples an included item's access-vs-update economics:
// reads is the number of value reads since TrackReads installed the
// counter (0 if tracking was never enabled), updates is the item's
// publication version — a monotonic count of its publications — so a
// controller differencing two samples gets the read and update rates of
// the interval. ok is false if the item is not included.
func (r *Registry) AccessStats(kind Kind) (reads int64, updates uint64, ok bool) {
	r.mu.RLock()
	e, ok := r.entries[kind]
	r.mu.RUnlock()
	if !ok {
		return 0, 0, false
	}
	if t := e.track.Load(); t != nil {
		reads = t.Load()
	}
	return reads, e.version.Load(), true
}

// DepUpdates sums the publication versions of an included item's
// direct dependencies — a mechanism-independent measure of how often
// the item's inputs change. The item's own version (AccessStats) counts
// what the current mechanism publishes instead: per-cadence for
// periodic, per-refresh for triggered, and nothing at all for
// on-demand, so a controller pricing alternative mechanisms from the
// own-version rate would see an on-demand item's input churn as zero
// and flap. ndeps reports the dependency count so callers can fall back
// to the own version for source items (whose inputs are events, not
// dependencies). ok is false if the item is not included.
func (r *Registry) DepUpdates(kind Kind) (sum uint64, ndeps int, ok bool) {
	sc := r.env.lockScope(r)
	defer sc.unlock()
	e, found := r.entries[kind]
	if !found {
		return 0, 0, false
	}
	for _, g := range e.depGroups {
		for _, de := range g {
			sum += de.version.Load()
			ndeps++
		}
	}
	return sum, ndeps, true
}

// Window returns the update window of an included periodic item, or
// ok == false for excluded items and non-periodic mechanisms.
func (r *Registry) Window(kind Kind) (clock.Duration, bool) {
	r.mu.RLock()
	e, ok := r.entries[kind]
	r.mu.RUnlock()
	if !ok {
		return 0, false
	}
	if ph, ok := e.getHandler().(*periodicHandler); ok {
		return ph.window, true
	}
	return 0, false
}

// Adaptable reports whether the included item declares alternative
// maintenance forms (Definition.Adapt) and, if so, whether its
// on-demand form is memoizable (AdaptSpec.Pure). ok is false for
// excluded items and for items without an AdaptSpec.
func (r *Registry) Adaptable(kind Kind) (pure bool, ok bool) {
	r.mu.RLock()
	e, found := r.entries[kind]
	r.mu.RUnlock()
	if !found || e.def == nil || e.def.Adapt == nil {
		return false, false
	}
	return e.def.Adapt.Pure, true
}
