package core

import "fmt"

// WatchSink receives publication notifications for one watched item.
// Published is invoked with the item's new publication version after
// every version bump — window publishes, triggered refreshes, probe
// republishes, quarantine trips, memoized recomputes, migrations, and
// NotifyChanged. It runs on the publisher's goroutine, often with the
// handler mutex (and sometimes the dependency-scope lock) held, so
// implementations MUST be O(1), non-blocking, and allocation-free:
// record the version, set a flag, kick a channel — never compute,
// never take locks that publishers could wait on. The fan-out hub in
// internal/watch is the intended implementation; its Published is a
// CAS-max plus a dirty-flag test.
//
// Published calls are not serialized: concurrent publishers (e.g. a
// probe racing a migration) may invoke it concurrently and versions
// may arrive out of order. Sinks must treat the argument as "the
// version is now AT LEAST v".
type WatchSink interface {
	Published(version uint64)
}

// bumpVersion is the single publication gate: it advances the entry's
// monotonic publication version and, when a watch sink is installed,
// hands the new version to it. With no watcher the cost over a bare
// version bump is one atomic load and a predicted-false branch, which
// keeps the zero-watcher publish path at its PR 7 cost.
func (e *entry) bumpVersion() {
	v := e.version.Add(1)
	if ws := e.watch.Load(); ws != nil {
		(*ws).Published(v)
	}
}

// Watch installs sink as the item's publication sink and returns the
// item's current publication version, the watcher's catch-up anchor: a
// snapshot read (Peek) taken after Watch returns reflects version v or
// newer, and every later publication reaches the sink with a version
// > v (a publication racing Watch may be reported both ways, which is
// harmless under the at-least semantics of WatchSink).
//
// One sink per (registry, kind): a second Watch replaces the previous
// sink, which stops receiving notifications. The item must currently
// be included (ErrUnsubscribed otherwise) and the sink survives
// exclusion/re-inclusion of the item: it is re-installed when a new
// entry for the kind commits. Note that publication versions are
// per-entry-lifetime — a re-included item restarts at version 1 — so
// callers that need a stable stream across re-inclusion (the watch
// hub) pin the item with a Subscription for the sink's lifetime.
func (r *Registry) Watch(kind Kind, sink WatchSink) (uint64, error) {
	if sink == nil {
		return 0, fmt.Errorf("core: nil WatchSink for %s/%s", r.id, kind)
	}
	sc := r.env.lockScope(r)
	defer sc.unlock()
	r.mu.Lock()
	if r.watchSinks == nil {
		r.watchSinks = make(map[Kind]WatchSink)
	}
	r.watchSinks[kind] = sink
	e := r.entries[kind]
	r.mu.Unlock()
	if e == nil {
		return 0, fmt.Errorf("%w: %s/%s", ErrUnsubscribed, r.id, kind)
	}
	cell := new(WatchSink)
	*cell = sink
	e.watch.Store(cell)
	return e.version.Load(), nil
}

// Unwatch removes the item's publication sink (a no-op when none is
// installed). In-flight Published calls may still be delivered after
// Unwatch returns; sinks must tolerate that.
func (r *Registry) Unwatch(kind Kind) {
	sc := r.env.lockScope(r)
	defer sc.unlock()
	r.mu.Lock()
	delete(r.watchSinks, kind)
	e := r.entries[kind]
	r.mu.Unlock()
	if e != nil {
		e.watch.Store(nil)
	}
}

// ItemVersion returns the item's current publication version, or
// ok == false when the item is not included. It is a lock-free read
// (one map read under the node-level RLock plus an atomic load), the
// right primitive for snapshot-then-delta catch-up: read the version,
// Peek the value, and every publication after the Peek carries a
// version strictly greater than the one returned here.
func (r *Registry) ItemVersion(kind Kind) (uint64, bool) {
	r.mu.RLock()
	e, ok := r.entries[kind]
	r.mu.RUnlock()
	if !ok {
		return 0, false
	}
	return e.version.Load(), true
}

// reattachWatchLocked re-installs a previously registered watch sink
// on a freshly committed entry. Called from includeLocked under the
// component lock, gated on the registry having any sinks at all so the
// common include path pays one map-nil check.
func (r *Registry) reattachWatchLocked(e *entry) {
	sink, ok := r.watchSinks[e.kind]
	if !ok {
		return
	}
	cell := new(WatchSink)
	*cell = sink
	e.watch.Store(cell)
}
