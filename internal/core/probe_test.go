package core

import (
	"sync"
	"testing"
)

func TestCounterGating(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(5)
	if c.Read() != 0 {
		t.Fatal("inactive counter counted")
	}
	c.Activate()
	c.Inc()
	c.Add(2)
	if c.Read() != 3 {
		t.Fatalf("Read = %d, want 3", c.Read())
	}
	if c.Take() != 3 || c.Read() != 0 {
		t.Fatal("Take did not reset")
	}
	c.Deactivate()
	if c.Active() {
		t.Fatal("still active")
	}
}

func TestCounterNestedActivation(t *testing.T) {
	var c Counter
	c.Activate()
	c.Activate()
	c.Inc()
	c.Deactivate()
	if !c.Active() {
		t.Fatal("deactivated too early")
	}
	c.Inc()
	if c.Read() != 2 {
		t.Fatalf("Read = %d, want 2", c.Read())
	}
	c.Deactivate()
	if c.Read() != 0 {
		t.Fatal("count not reset when last activation released")
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	c.Activate()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Read() != 8000 {
		t.Fatalf("Read = %d, want 8000", c.Read())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(5)
	if g.Read() != 0 {
		t.Fatal("inactive gauge stored")
	}
	g.Activate()
	g.Set(5)
	g.Add(2)
	if g.Read() != 7 {
		t.Fatalf("Read = %d, want 7", g.Read())
	}
	if g.Take() != 7 || g.Read() != 0 {
		t.Fatal("Take did not reset")
	}
	g.Deactivate()
	if g.Active() {
		t.Fatal("still active")
	}
}

func TestFuncProbeFiresOnEdges(t *testing.T) {
	on, off := 0, 0
	p := &FuncProbe{
		OnActivate:   func() { on++ },
		OnDeactivate: func() { off++ },
	}
	p.Activate()
	p.Activate()
	if on != 1 {
		t.Fatalf("OnActivate fired %d times, want 1", on)
	}
	p.Deactivate()
	if off != 0 {
		t.Fatal("OnDeactivate fired before last release")
	}
	p.Deactivate()
	if off != 1 {
		t.Fatalf("OnDeactivate fired %d times, want 1", off)
	}
}

func TestProbesCombinator(t *testing.T) {
	var a, b Counter
	p := Probes{&a, &b}
	p.Activate()
	if !a.Active() || !b.Active() {
		t.Fatal("combined activation missed a probe")
	}
	p.Deactivate()
	if a.Active() || b.Active() {
		t.Fatal("combined deactivation missed a probe")
	}
}
