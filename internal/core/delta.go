package core

import (
	"fmt"
	"unsafe"

	"repro/internal/clock"
)

// Incremental delta propagation (ROADMAP item 4).
//
// The paper's triggered maintenance recomputes a dependent from scratch
// on every upstream publication, so an aggregate over N fan-in edges
// pays O(N) per fire. The delta channel removes that cost for
// invertible aggregates: every publishing handler records, per
// publication, the (old, new) float transition of its value, and a
// dependent built with NewDeltaAggregate folds those transitions into a
// running accumulator — sum: acc + new - old — in O(1) per fire,
// publishing through the normal version-bump path so PR 5 memo stamps
// stay exact.
//
// The contract is opt-in-with-exact-fallback, like Pure/memoization:
// whenever the O(1) path cannot be proven byte-identical to a full
// recompute, the handler falls back to the fold. The fallback matrix:
//
//   - the env disables the channel (WithoutDeltaPropagation, or the
//     WithNaivePropagation paper-faithful ablation);
//   - any fan-in edge lacks a delta form (an on-demand dependency never
//     publishes, so its changes are invisible to the channel);
//   - the accumulator is invalid (no successful fold yet, a prior
//     compute error, or the item was quarantined);
//   - a dependency publication could not be expressed as a pair
//     (error/non-finite value, probe recovery without a tracked
//     predecessor, NotifyChanged) — the dependent is poisoned;
//   - a structural change advanced the env write epoch since the
//     accumulator was folded (the same conservative stamp the memoized
//     read path uses; structural bumps also reset cached propagation
//     plans);
//   - the spec declares Retract=nil (non-invertible, e.g. Min) and the
//     refresh carries pairs to retract;
//   - Retract reports it cannot retract (ok=false);
//   - the periodic rebase interval expired (float drift bound).
//
// Consistency of the pair stream: pairs are derived under the
// dependency-scope lock from the per-entry deltaLast field — "the value
// every delta accumulator over this edge currently reflects" — not
// captured at publish time. Publishes happen under the handler's own
// mutex only (scope batches publish before locking the scope), so two
// pool batches can publish v1->v2 and v2->v3 in either order; deriving
// the pair as (deltaLast, currently-published) at the locked notify
// site makes the stream immune to that reordering. For the same reason
// the fold of an eligible aggregate reads deltaLast rather than the
// live snapshot: the accumulator then reflects exactly the prefix of
// the pair stream it has consumed, and a publication racing the fold is
// delivered as the next pair instead of being half-visible. At
// quiescence deltaLast equals the live value, so fold and live reads
// agree wherever the model-based harness compares states.

// DeltaAcc is the accumulator of a delta aggregate: up to three float64
// moments (e.g. count, sum, sum of squares). Fixed-size so the delta
// path moves it by value, allocation-free.
type DeltaAcc [3]float64

// DeltaPair is one (old, new) value transition published along a
// dependency edge.
type DeltaPair struct {
	Old float64
	New float64
}

// DeltaSpec declares the delta form of an aggregate item. Combine folds
// one dependency value into the accumulator; Retract removes one
// (returning ok=false when it cannot, which forces the fallback);
// Finish extracts the published value (nil means acc[0]). A
// non-invertible aggregate (Min, Max, ...) declares Retract=nil and
// takes the fallback whenever a refresh carries pairs.
type DeltaSpec struct {
	Combine func(acc DeltaAcc, v float64) DeltaAcc
	Retract func(acc DeltaAcc, v float64) (DeltaAcc, bool)
	Finish  func(acc DeltaAcc) float64

	// RebaseEvery bounds float drift: after this many consecutive O(1)
	// applications the next refresh re-folds from scratch (counted as
	// DeltaRebases, not DeltaFallbacks). 0 selects
	// DefaultDeltaRebaseEvery; negative disables rebasing (exact
	// domains, e.g. integer-valued counters).
	RebaseEvery int
}

// DefaultDeltaRebaseEvery is the rebase interval used when a DeltaSpec
// leaves RebaseEvery at 0.
const DefaultDeltaRebaseEvery = 1024

// finishAcc extracts the published value from an accumulator.
func (s *DeltaSpec) finishAcc(a DeltaAcc) float64 {
	if s.Finish != nil {
		return s.Finish(a)
	}
	return a[0]
}

// rebaseLimit resolves the spec's rebase interval (0 = never).
func (s *DeltaSpec) rebaseLimit() int {
	if s.RebaseEvery == 0 {
		return DefaultDeltaRebaseEvery
	}
	if s.RebaseEvery < 0 {
		return 0
	}
	return s.RebaseEvery
}

// DeltaSum sums the fan-in values; fully invertible and exact on
// integer-valued domains (rebasing disabled there by the caller via
// RebaseEvery < 0 if desired).
func DeltaSum() *DeltaSpec {
	return &DeltaSpec{
		Combine: func(a DeltaAcc, v float64) DeltaAcc { a[0] += v; return a },
		Retract: func(a DeltaAcc, v float64) (DeltaAcc, bool) { a[0] -= v; return a, true },
	}
}

// DeltaCount counts the fan-in edges. A value transition leaves the
// count unchanged (Combine adds one, Retract removes one), so the delta
// path is trivially exact.
func DeltaCount() *DeltaSpec {
	return &DeltaSpec{
		Combine:     func(a DeltaAcc, v float64) DeltaAcc { a[0]++; return a },
		Retract:     func(a DeltaAcc, v float64) (DeltaAcc, bool) { a[0]--; return a, true },
		RebaseEvery: -1,
	}
}

// DeltaMean maintains (count, sum) and finishes to sum/count (0 when
// empty).
func DeltaMean() *DeltaSpec {
	return &DeltaSpec{
		Combine: func(a DeltaAcc, v float64) DeltaAcc { a[0]++; a[1] += v; return a },
		Retract: func(a DeltaAcc, v float64) (DeltaAcc, bool) { a[0]--; a[1] -= v; return a, true },
		Finish: func(a DeltaAcc) float64 {
			if a[0] == 0 {
				return 0
			}
			return a[1] / a[0]
		},
	}
}

// DeltaVar maintains (count, sum, sum of squares) and finishes to the
// population variance (0 when empty). Squared moments drift fastest, so
// the default rebase interval applies.
func DeltaVar() *DeltaSpec {
	return &DeltaSpec{
		Combine: func(a DeltaAcc, v float64) DeltaAcc { a[0]++; a[1] += v; a[2] += v * v; return a },
		Retract: func(a DeltaAcc, v float64) (DeltaAcc, bool) { a[0]--; a[1] -= v; a[2] -= v * v; return a, true },
		Finish: func(a DeltaAcc) float64 {
			if a[0] == 0 {
				return 0
			}
			m := a[1] / a[0]
			return a[2]/a[0] - m*m
		},
	}
}

// DeltaMin tracks the minimum. Minima are not invertible — retracting
// the current minimum would need the runner-up — so Retract is nil and
// any refresh carrying pairs takes the exact fold fallback; only
// pair-free refreshes (event fires) use the O(1) path.
func DeltaMin() *DeltaSpec {
	return &DeltaSpec{
		Combine: func(a DeltaAcc, v float64) DeltaAcc {
			if a[1] == 0 || v < a[0] {
				a[0] = v
			}
			a[1]++
			return a
		},
	}
}

// deltaState is the per-handler state of a delta aggregate. Everything
// except spec/handles (immutable after build) is guarded by the
// dependency-scope component lock, which every refresh and every pair
// push already holds.
type deltaState struct {
	spec    *DeltaSpec
	handles []*Handle // flattened fan-in, declaration order

	// acc is the running accumulator; valid reports whether it reflects
	// a successful fold plus the consumed prefix of the pair stream.
	acc   DeltaAcc
	valid bool
	// eligible reports that every fan-in edge has a delta form (no
	// on-demand dependency) and the env has the channel enabled; fixed
	// at start.
	eligible bool
	// epoch is the env write epoch the accumulator was folded under; a
	// structural change anywhere invalidates it (conservative, like
	// memo stamps).
	epoch uint64
	// applied counts O(1) applications since the last fold, against the
	// rebase limit (0 = never rebase).
	applied int
	rebase  int

	// pending and poisoned are the delta input of the next refresh:
	// pairs pushed by dependency publications, and the mark set when a
	// publication could not be expressed as a pair.
	pending  []DeltaPair
	poisoned bool
}

// NewDeltaAggregate builds a triggered handler that maintains the
// aggregate declared by the definition's Delta spec over all resolved
// dependencies (flattened in declaration order). It refreshes like any
// triggered handler — on dependency publications and declared events —
// but consumes the delta channel: an eligible refresh applies the
// pending (old, new) pairs in O(1) each instead of re-folding the full
// fan-in, falling back to the byte-identical fold per the matrix in the
// package comment.
func NewDeltaAggregate(ctx *BuildContext) (Handler, error) {
	spec := ctx.e.def.Delta
	if spec == nil {
		return nil, fmt.Errorf("core: NewDeltaAggregate on %s/%s: definition declares no Delta spec",
			ctx.e.reg.id, ctx.e.kind)
	}
	if spec.Combine == nil {
		return nil, fmt.Errorf("core: NewDeltaAggregate on %s/%s: Delta spec without Combine",
			ctx.e.reg.id, ctx.e.kind)
	}
	var handles []*Handle
	for i := 0; i < ctx.NumDeps(); i++ {
		handles = append(handles, ctx.DepGroup(i)...)
	}
	ds := &deltaState{spec: spec, handles: handles, rebase: spec.rebaseLimit()}
	h := &triggeredHandler{ds: ds}
	// The full recompute folds every fan-in value in declaration order,
	// first error wins. It returns the raw DeltaAcc; the handler
	// publishes finishAcc of it, so fold and delta paths share one
	// Finish application and cannot diverge there.
	h.compute = func(clock.Time) (Value, error) {
		acc, err := ds.foldFrom(ds.eligible)
		if err != nil {
			return nil, err
		}
		return acc, nil
	}
	return h, nil
}

// foldFrom folds the fan-in into a fresh accumulator. With useLast,
// tracked dependencies are read through deltaLast (see the package
// comment on consistency); otherwise — ineligible aggregates, probe
// recovery without the scope lock, and any dependency in an
// untracked/error state — the live value is read exactly like a
// hand-written compute would.
func (ds *deltaState) foldFrom(useLast bool) (DeltaAcc, error) {
	var acc DeltaAcc
	for _, h := range ds.handles {
		var f float64
		if useLast && h.e.deltaLastOK {
			f = h.e.deltaLast
		} else {
			var err error
			f, err = h.Float()
			if err != nil {
				return DeltaAcc{}, err
			}
		}
		acc = ds.spec.Combine(acc, f)
	}
	return acc, nil
}

// applyPairs applies the pending pairs to acc: Combine the new value,
// Retract the old. A panic in user spec code is converted to ok=false
// so the refresh falls back to the (equally recovered) fold.
func (ds *deltaState) applyPairs(acc DeltaAcc, pairs []DeltaPair) (out DeltaAcc, ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	spec := ds.spec
	for _, p := range pairs {
		acc = spec.Combine(acc, p.New)
		acc, ok = spec.Retract(acc, p.Old)
		if !ok {
			return acc, false
		}
	}
	return acc, true
}

// startLocked fixes eligibility and registers the aggregate on the
// delta channel of its dependencies. Called from the handler's start
// under the dependency-scope lock, after the dependency entries have
// committed and started.
func (ds *deltaState) startLocked(e *entry) {
	env := e.reg.env
	if env.deltaOff {
		return
	}
	for _, h := range ds.handles {
		if dh := h.e.getHandler(); dh == nil || dh.Mechanism() == OnDemandMechanism {
			// An on-demand dependency recomputes per access and never
			// publishes: its changes are invisible to the delta channel,
			// so the whole aggregate stays on the fold path.
			return
		}
	}
	ds.eligible = true
	for _, h := range ds.handles {
		de := h.e
		de.deltaDeps++
		if de.deltaDeps == 1 {
			// First tracked consumer of this edge: anchor deltaLast to
			// the currently published value so the next publication
			// forms a valid pair.
			de.deltaLast, de.deltaLastOK = currentFloat(de)
		}
	}
}

// stopLocked deregisters the aggregate from its dependencies' delta
// channels. Called from releaseLocked under the dependency-scope lock,
// before the dependencies themselves are released.
func (ds *deltaState) stopLocked() {
	if !ds.eligible {
		return
	}
	for _, h := range ds.handles {
		h.e.deltaDeps--
	}
}

// currentFloat reads the entry's currently published value as a
// delta-trackable float: ok only for a clean, finite numeric value.
func currentFloat(e *entry) (float64, bool) {
	h := e.getHandler()
	if h == nil {
		return 0, false
	}
	v, err := h.Value()
	if err != nil {
		return 0, false
	}
	f, err := Float(v)
	if err != nil || f != f || f-f != 0 { // NaN, ±Inf
		return 0, false
	}
	return f, true
}

// notifyDeltaLocked delivers the entry's latest publication to the
// delta channel: it derives the (deltaLast, current) transition and
// pushes it — or a poison mark, when the publication is not a clean
// finite float — to every delta-eligible dependent, once per declared
// edge. The dependency-scope lock must be held; callers gate on
// e.deltaDeps > 0 so untracked entries pay one int load.
func notifyDeltaLocked(e *entry) {
	f, good := currentFloat(e)
	if good && e.deltaLastOK && f == e.deltaLast {
		// Republication of the identical value (or no publication since
		// the last notify): nothing to deliver.
		return
	}
	pair := good && e.deltaLastOK
	for d, edges := range e.dependents {
		th, ok := d.handler.(*triggeredHandler)
		if !ok || th.ds == nil || !th.ds.eligible {
			continue
		}
		if pair {
			for i := 0; i < edges; i++ {
				th.ds.pending = append(th.ds.pending, DeltaPair{Old: e.deltaLast, New: f})
			}
		} else {
			// No trackable predecessor (error value, first good value
			// after an error, NotifyChanged on a non-float): the
			// accumulators over this edge cannot be patched — poison
			// them onto the fold.
			th.ds.poisoned = true
		}
	}
	e.deltaLast, e.deltaLastOK = f, good
}

// --- allocation-free float publication ---

// eface mirrors the runtime layout of an empty interface. putFloat
// writes a float64 eface by hand so the delta hot path publishes
// without the boxing allocation `Value(f)` would cost per fire.
type eface struct {
	typ  unsafe.Pointer
	data unsafe.Pointer
}

// float64EfaceType is the runtime type word of a float64 eface,
// captured once from an ordinary boxed value.
var float64EfaceType = func() unsafe.Pointer {
	var v Value = float64(0)
	return (*eface)(unsafe.Pointer(&v)).typ
}()

// putFloat is put for a clean float64 value: the float is stored in the
// slot's inline fbox and the eface points at it, so no per-publish heap
// allocation occurs (the slot's chunk is the only allocation,
// amortized 1/64). The data pointer is an interior pointer into the
// live chunk, which the GC tracks like any other; slots are never
// reused, so a reader holding the snapshot keeps the box alive.
func (a *snapAlloc) putFloat(f float64) *valueSnapshot {
	if a.next == len(a.chunk) {
		n := 2 * len(a.chunk)
		if n == 0 {
			n = 1
		} else if n > 64 {
			n = 64
		}
		a.chunk = make([]valueSnapshot, n)
		a.next = 0
	}
	s := &a.chunk[a.next]
	a.next++
	s.fbox = f
	ef := (*eface)(unsafe.Pointer(&s.val))
	ef.typ = float64EfaceType
	ef.data = unsafe.Pointer(&s.fbox)
	return s
}
