package core

import "repro/internal/clock"

// Batched tick dispatch (Section 4.3 at scale).
//
// All periodic handlers of an Env share one bucketed deadline
// scheduler (clock.Scheduler): handlers due at the same instant arrive
// here as a single batch behind a single clock event, in arm order —
// which preserves the virtual clock's same-instant tie-break exactly
// as if each handler still owned a private ticker. The dispatch then
//
//  1. re-arms every task for its next boundary (on the clock
//     goroutine, like the old per-handler ticker reschedule, so pool
//     workers lagging behind the clock never lose future ticks),
//  2. groups the due handlers by dependency-scope root, and
//  3. runs one scope batch per group — one Updater.Submit instead of
//     one per handler.
//
// A scope batch publishes all of its windows first and then runs
// trigger propagation once over the merged seed set, so a triggered
// item depending on k same-boundary periodic items refreshes once per
// instant, not k times. Coalescing preserves quiescent values: every
// refresh is an idempotent function of its dependencies' current
// values and the shared instant, propagation still runs in
// topological order, and the single pass reads all newly published
// windows — only the redundant intermediate refreshes disappear.
//
// Lock footprint of the batched tick path: the grouping step takes
// each handler's metadata-level mutex only to read its entry pointer;
// publishing takes it per handler around the window compute (as
// before); propagation then takes the dependency-scope lock(s) once
// per batch — no handler mutex is held while any structural lock is
// taken, and no structural lock is held while a window computes.

// tickGroup collects the due handlers of one dependency-scope root.
// The groups live in Env.tickGroups, reused across dispatches under
// tickMu.
type tickGroup struct {
	root *component
	hs   []*periodicHandler
}

// dispatchTicks is the Env's scheduler callback: it receives every
// periodic handler due at instant now, in arm order.
func (env *Env) dispatchTicks(now clock.Time, due []*clock.Task) {
	// Re-arm first, in batch order: the scheduler ignores re-arms of
	// tasks a concurrent unsubscribe has canceled, and arming before
	// the (possibly pooled, possibly lagging) update work runs keeps
	// the boundary cadence anchored to the clock, exactly like the old
	// ticker's clock-goroutine reschedule.
	sched := env.scheduler()
	for _, t := range due {
		switch d := t.Data.(type) {
		case *periodicHandler:
			sched.At(now.Add(d.window), t)
		case *itemHealth:
			// Recovery probe of a quarantined handler: not re-armed
			// here — the probe's outcome decides whether the breaker
			// closes (the owner reschedules itself) or the probe is
			// re-armed on doubled backoff.
			d.probeFired(now)
		}
	}

	_, inline := env.updater.(inlineUpdater)

	if env.perHandlerTicks {
		// Ablation/baseline: one dispatch and one propagation per
		// handler, legacy semantics.
		for _, t := range due {
			h, ok := t.Data.(*periodicHandler)
			if !ok {
				continue
			}
			if inline {
				h.tick(now)
			} else {
				h := h
				env.updater.Submit(func() { h.tick(now) })
			}
		}
		return
	}

	env.tickMu.Lock()
	defer env.tickMu.Unlock()
	// Group by dependency-scope root. The lock-free find may observe a
	// root that is merging away; that is safe — the batch's lockScope
	// revalidates — and at worst splits one logical scope into two
	// batches for this boundary.
	n := 0
	for _, t := range due {
		h, ok := t.Data.(*periodicHandler)
		if !ok {
			continue // recovery probe, handled above
		}
		e := h.entry()
		if e == nil {
			continue // stopped between fire and dispatch
		}
		root := find(e.reg.comp)
		idx := -1
		for i := 0; i < n; i++ {
			if env.tickGroups[i].root == root {
				idx = i
				break
			}
		}
		if idx < 0 {
			if n < len(env.tickGroups) {
				env.tickGroups[n].root = root
				env.tickGroups[n].hs = env.tickGroups[n].hs[:0]
			} else {
				env.tickGroups = append(env.tickGroups, tickGroup{root: root})
			}
			idx = n
			n++
		}
		env.tickGroups[idx].hs = append(env.tickGroups[idx].hs, h)
	}
	shed, _ := env.updater.(sheddableUpdater)
	for i := 0; i < n; i++ {
		g := &env.tickGroups[i]
		root := g.root
		g.root = nil // do not pin merged-away roots between boundaries
		if inline {
			// Inline updater: run the batch directly instead of paying
			// a closure allocation and dispatch for a Submit that
			// would execute it synchronously anyway.
			env.runTickBatch(g.hs, now)
		} else {
			hs := make([]*periodicHandler, len(g.hs))
			copy(hs, g.hs)
			if shed != nil {
				// Scope batches are the sheddable class: under
				// backpressure a batch still queued when this scope's
				// next boundary arrives is superseded by it — the newer
				// batch recomputes the same cumulative windows at the
				// later instant, so coalescing costs latency, not data.
				// (The root pointer is only a coalescing key; a bounded
				// updater drops the reference when the batch runs or is
				// superseded.)
				shed.SubmitSheddable(root, func() { env.runTickBatch(hs, now) })
			} else {
				env.updater.Submit(func() { env.runTickBatch(hs, now) })
			}
		}
	}
}

// runTickBatch executes one scope batch: publish every due window,
// then propagate once over the merged seed set. It runs on the
// updater (a pool worker for large graphs).
func (env *Env) runTickBatch(hs []*periodicHandler, now clock.Time) {
	env.stats.ScopeBatches.Add(1)
	env.stats.BatchedTicks.Add(int64(len(hs)))

	var pubsArr [16]*entry
	pubs := pubsArr[:0]
	var regsArr [8]*Registry
	regs := regsArr[:0]
	end := now
	for _, h := range hs {
		e, pubEnd, ok := h.publish(now)
		if !ok || e.ndeps.Load() == 0 {
			// Nothing depends on the item: skip the scope lock
			// entirely (the key to parallel periodic updates on the
			// worker pool).
			continue
		}
		pubs = append(pubs, e)
		if pubEnd > end {
			end = pubEnd
		}
		dup := false
		for _, r := range regs {
			if r == e.reg {
				dup = true
				break
			}
		}
		if !dup {
			regs = append(regs, e.reg)
		}
	}
	if len(pubs) == 0 {
		return
	}

	// One propagation for the whole batch, under the scope lock(s).
	// Seeds — the dependents of every published entry — go into the
	// root's scratch buffer; duplicates (an item depending on several
	// publishers) are deduplicated by the plan lookup. A lagging pool
	// batch may have clamped windows to a later end; propagate at the
	// latest published instant so dependents never see a timestamp
	// older than the values they read.
	sc := env.lockScope(regs...)
	// Deliver every publication of the batch to the delta channel
	// first: a dependent shared by k same-boundary publishers then
	// refreshes once with k pairs pending (the same coalescing the
	// merged seed set gives the refresh itself).
	for _, e := range pubs {
		if e.deltaDeps > 0 {
			notifyDeltaLocked(e)
		}
	}
	root := find(pubs[0].reg.comp)
	seeds := root.seedBuf[:0]
	for _, e := range pubs {
		for d := range e.dependents {
			seeds = append(seeds, d)
		}
	}
	root.seedBuf = seeds
	env.refreshClosureLocked(seeds, end)
	sc.unlock()
}
