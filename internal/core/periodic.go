package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/clock"
)

// WindowComputeFunc computes a periodic metadata value for the time
// window [start, end). The initial value at subscription time is
// computed with start == end; rate-like computations must handle the
// zero-width window (typically by returning 0).
type WindowComputeFunc func(start, end clock.Time) (Value, error)

// periodicHandler publishes a new value at each window boundary and
// serves the published value to every consumer in between. This is the
// mechanism that guarantees the isolation condition of Section 3:
// concurrent consumers never interfere with each other's measurements
// (contrast Figure 4, where naive on-demand rate computations by two
// consumers corrupt each other's counters).
//
// The current value is published through an atomic snapshot pointer,
// so Value() is lock-free: readers never contend with the periodic
// update or with each other.
//
// Boundary scheduling is delegated to the env's bucketed scheduler:
// the handler arms one clock.Task per pending boundary, and all
// handlers due at the same instant are dispatched as one batch (see
// batch.go) instead of one ticker event + one updater submit each.
type periodicHandler struct {
	window  clock.Duration
	compute WindowComputeFunc

	// cur is the published value snapshot; nil before the handler
	// starts and again after it stops (reads then report
	// ErrUnsubscribed).
	cur atomic.Pointer[valueSnapshot]

	mu       sync.Mutex
	env      *Env
	e        *entry
	snaps    snapAlloc
	winStart clock.Time
	task     *clock.Task
	stopped  bool
	// async records whether updates run asynchronously to the clock
	// (pool updater): only then can a tick lag behind the clock and
	// need its window end clamped to the clock's current position.
	async bool

	// deadline bounds each window compute (0 = unbounded), resolved
	// from the definition/env at start.
	deadline clock.Duration
	// health is the item's circuit breaker, nil unless the env enables
	// WithBreaker.
	health *itemHealth
	// lastGood is the latest successfully published snapshot; it is
	// what a quarantined handler serves, tagged *StaleError.
	lastGood *valueSnapshot
}

// NewPeriodic returns a handler that recomputes its value every window
// time units. Information gathered during a window (via probes) is
// turned into the value published for the following window.
func NewPeriodic(window clock.Duration, compute WindowComputeFunc) Handler {
	if window <= 0 {
		panic("core: periodic window must be positive")
	}
	return &periodicHandler{window: window, compute: compute}
}

func (h *periodicHandler) Value() (Value, error) {
	s := h.cur.Load()
	if s == nil {
		return nil, ErrUnsubscribed
	}
	return s.val, s.err
}

func (h *periodicHandler) Mechanism() Mechanism { return PeriodicMechanism }

// Window returns the handler's update period.
func (h *periodicHandler) Window() clock.Duration { return h.window }

func (h *periodicHandler) start(e *entry) error {
	env := e.reg.env
	now := env.Now()
	h.mu.Lock()
	h.env = env
	h.e = e
	h.winStart = now
	h.async = env.async
	h.deadline = env.deadlineFor(e.def)
	h.health = newItemHealth(env, h)
	if env.restorePendingFor(e.reg, e.kind) {
		// Recovery replay: skip the initial compute — RestoreStale will
		// re-publish the checkpointed last-good value before the plane is
		// exposed — but still arm the boundary cadence below so an item
		// that turns out to have no checkpoint snapshot updates normally.
		h.cur.Store(h.snaps.put(nil, ErrNoValue))
		e.bumpVersion()
	} else {
		env.Stats().ComputeCalls.Add(1)
		// The initial compute runs on the subscriber's goroutine (possibly
		// the clock-advancing one), where a deadline wait could never be
		// released; deadlines apply to maintenance computes only.
		v, err := safeWindowCompute(h.compute, now, now)
		snap := h.snaps.put(v, err)
		h.cur.Store(snap)
		e.bumpVersion()
		if err == nil {
			h.lastGood = snap
		}
	}
	h.task = &clock.Task{Data: h}
	task := h.task
	h.mu.Unlock()
	// Arm the first boundary. The scheduler coalesces every handler
	// due at the same instant behind one clock event and delivers them
	// in arm order, so same-instant fire order still follows the
	// scheduling sequence exactly as with per-handler tickers.
	env.scheduler().At(now.Add(h.window), task)
	return nil
}

// entry returns the handler's entry, or nil once stopped. Used by the
// batch dispatcher to group due handlers by dependency scope.
func (h *periodicHandler) entry() *entry {
	h.mu.Lock()
	e := h.e
	h.mu.Unlock()
	return e
}

// publish computes and publishes the window ending at now (clamped to
// the clock for lagging pool batches) without propagating. It returns
// the handler's entry and the actual window end, or ok == false when
// the handler is stopped or the tick is stale. The computation runs
// under the handler's own (metadata-level) lock only, so independent
// scope batches execute in parallel on the worker pool, and no
// structural lock is held while user code computes.
func (h *periodicHandler) publish(now clock.Time) (e *entry, end clock.Time, ok bool) {
	h.mu.Lock()
	if h.stopped || h.e == nil {
		h.mu.Unlock()
		return nil, 0, false
	}
	if h.health.isQuarantined() {
		// A batch queued before the breaker tripped may still reach a
		// quarantined handler; the stale publication stands until a
		// probe succeeds.
		h.mu.Unlock()
		return nil, 0, false
	}
	e = h.e
	start := h.winStart
	env := h.env
	// A pooled batch may run after the clock has moved past its
	// scheduled boundary (Submit never blocks, so the clock goroutine
	// can outpace the workers). Measure up to the clock's current
	// position: the window then covers exactly the probe events
	// gathered since winStart instead of attributing them all to the
	// first lagging window and none to the rest. Inline batches run
	// synchronously on the clock goroutine and are never late.
	if h.async {
		if cur := env.Now(); cur > now {
			now = cur
		}
	}
	if now <= start {
		// A worker pool may also execute batches out of order; a stale
		// tick must not overwrite a newer published value.
		h.mu.Unlock()
		return nil, 0, false
	}
	stats := env.Stats()
	stats.ComputeCalls.Add(1)
	stats.PeriodicUpdates.Add(1)
	var v Value
	var err error
	if h.deadline > 0 {
		v, err = boundedWindowCompute(env.clk, h.deadline, stats, h.compute, start, now)
	} else {
		v, err = safeWindowCompute(h.compute, start, now)
	}
	if err == nil || !breakerEligible(err) {
		h.health.onSuccess()
		snap := h.snaps.put(v, err)
		h.cur.Store(snap)
		e.bumpVersion()
		if err == nil && h.health != nil {
			// lastGood is only ever served while quarantined, so the
			// breaker-less hot path skips the pointer store (and its
			// write barrier).
			h.lastGood = snap
		}
		h.winStart = now
		h.mu.Unlock()
		return e, now, true
	}
	// Panic or timeout: count it toward the breaker. Below the trip
	// threshold the error publishes like any compute failure (degraded,
	// still scheduled); at the threshold the handler quarantines —
	// unscheduled from the boundary cadence, last-good value republished
	// tagged *StaleError, recovery probe armed on backoff — and the
	// publication still propagates so dependents observe the
	// degradation.
	if h.health.onFailure(now, err) {
		if t := h.task; t != nil {
			h.task = nil
			env.scheduler().Cancel(t)
		}
		var lastVal Value
		if h.lastGood != nil {
			lastVal = h.lastGood.val
		}
		h.cur.Store(h.snaps.put(lastVal, h.health.staleError()))
		e.bumpVersion()
		// winStart is left in place: the recovery probe recomputes the
		// cumulative window [winStart, probe instant].
		h.mu.Unlock()
		return e, now, true
	}
	h.cur.Store(h.snaps.put(v, err))
	e.bumpVersion()
	h.winStart = now
	h.mu.Unlock()
	return e, now, true
}

// runProbe implements quarantineOwner: recompute once; success (or an
// ordinary compute error, which is a legitimate result) closes the
// breaker, republishes, re-arms the boundary cadence on a fresh task
// (Cancel retired the old one), and propagates the recovery to
// dependents; another panic/timeout re-arms the probe on doubled
// backoff. It runs on the updater with no locks held.
func (h *periodicHandler) runProbe(now clock.Time) {
	h.mu.Lock()
	if h.stopped || h.e == nil {
		// Stopped or migrated away. Report a no-op failure so the probe
		// re-arms: after a real stop the health state is stopped and the
		// report is inert, while after a migration the re-armed probe
		// reaches the replacement handler (the transplanted owner).
		h.mu.Unlock()
		h.health.probeFailed(now, nil)
		return
	}
	env := h.env
	start := h.winStart
	if h.async {
		if cur := env.Now(); cur > now {
			now = cur
		}
	}
	if now <= start {
		h.mu.Unlock()
		h.health.probeFailed(now, nil)
		return
	}
	stats := env.Stats()
	stats.ComputeCalls.Add(1)
	v, err := boundedWindowCompute(env.clk, h.deadline, stats, h.compute, start, now)
	if err != nil && breakerEligible(err) {
		h.mu.Unlock()
		h.health.probeFailed(now, err)
		return
	}
	stats.PeriodicUpdates.Add(1)
	snap := h.snaps.put(v, err)
	h.cur.Store(snap)
	h.e.bumpVersion()
	if err == nil {
		h.lastGood = snap
	}
	h.winStart = now
	h.health.closeBreaker()
	h.task = &clock.Task{Data: h}
	task := h.task
	e := h.e
	h.mu.Unlock()
	env.scheduler().At(now.Add(h.window), task)
	if e.ndeps.Load() > 0 {
		sc := env.lockScope(e.reg)
		if e.deltaDeps > 0 {
			notifyDeltaLocked(e)
		}
		e.reg.propagateLocked(e, now)
		sc.unlock()
	}
}

// healthSnapshot implements healthCarrier.
func (h *periodicHandler) healthSnapshot() HealthSnapshot { return h.health.snapshot() }

// tick is the legacy per-handler update path, kept for the
// WithPerHandlerTicks ablation: publish, then propagate this
// handler's update alone under the scope lock.
func (h *periodicHandler) tick(now clock.Time) {
	e, end, ok := h.publish(now)
	if !ok {
		return
	}
	if e.ndeps.Load() > 0 {
		env := e.reg.env
		sc := env.lockScope(e.reg)
		if e.deltaDeps > 0 {
			notifyDeltaLocked(e)
		}
		e.reg.propagateLocked(e, end)
		sc.unlock()
	}
}

func (h *periodicHandler) stop() {
	h.mu.Lock()
	h.stopped = true
	h.e = nil
	h.cur.Store(nil)
	t := h.task
	env := h.env
	h.task = nil
	h.mu.Unlock()
	if t != nil && env != nil {
		// Cancel retires the task permanently: a concurrent dispatch
		// that already detached it will find its re-arm ignored.
		env.scheduler().Cancel(t)
	}
	// Retire the breaker (and any armed recovery probe) with the
	// handler.
	h.health.stop()
}
