package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/clock"
)

// WindowComputeFunc computes a periodic metadata value for the time
// window [start, end). The initial value at subscription time is
// computed with start == end; rate-like computations must handle the
// zero-width window (typically by returning 0).
type WindowComputeFunc func(start, end clock.Time) (Value, error)

// periodicHandler publishes a new value at each window boundary and
// serves the published value to every consumer in between. This is the
// mechanism that guarantees the isolation condition of Section 3:
// concurrent consumers never interfere with each other's measurements
// (contrast Figure 4, where naive on-demand rate computations by two
// consumers corrupt each other's counters).
//
// The current value is published through an atomic snapshot pointer,
// so Value() is lock-free: readers never contend with the periodic
// update or with each other.
//
// Boundary scheduling is delegated to the env's bucketed scheduler:
// the handler arms one clock.Task per pending boundary, and all
// handlers due at the same instant are dispatched as one batch (see
// batch.go) instead of one ticker event + one updater submit each.
type periodicHandler struct {
	window  clock.Duration
	compute WindowComputeFunc

	// cur is the published value snapshot; nil before the handler
	// starts and again after it stops (reads then report
	// ErrUnsubscribed).
	cur atomic.Pointer[valueSnapshot]

	mu       sync.Mutex
	env      *Env
	e        *entry
	snaps    snapAlloc
	winStart clock.Time
	task     *clock.Task
	stopped  bool
	// async records whether updates run asynchronously to the clock
	// (pool updater): only then can a tick lag behind the clock and
	// need its window end clamped to the clock's current position.
	async bool
}

// NewPeriodic returns a handler that recomputes its value every window
// time units. Information gathered during a window (via probes) is
// turned into the value published for the following window.
func NewPeriodic(window clock.Duration, compute WindowComputeFunc) Handler {
	if window <= 0 {
		panic("core: periodic window must be positive")
	}
	return &periodicHandler{window: window, compute: compute}
}

func (h *periodicHandler) Value() (Value, error) {
	s := h.cur.Load()
	if s == nil {
		return nil, ErrUnsubscribed
	}
	return s.val, s.err
}

func (h *periodicHandler) Mechanism() Mechanism { return PeriodicMechanism }

// Window returns the handler's update period.
func (h *periodicHandler) Window() clock.Duration { return h.window }

func (h *periodicHandler) start(e *entry) error {
	env := e.reg.env
	now := env.Now()
	h.mu.Lock()
	h.env = env
	h.e = e
	h.winStart = now
	_, inline := env.Updater().(inlineUpdater)
	h.async = !inline
	env.Stats().ComputeCalls.Add(1)
	v, err := safeWindowCompute(h.compute, now, now)
	h.cur.Store(h.snaps.put(v, err))
	h.task = &clock.Task{Data: h}
	task := h.task
	h.mu.Unlock()
	// Arm the first boundary. The scheduler coalesces every handler
	// due at the same instant behind one clock event and delivers them
	// in arm order, so same-instant fire order still follows the
	// scheduling sequence exactly as with per-handler tickers.
	env.scheduler().At(now.Add(h.window), task)
	return nil
}

// entry returns the handler's entry, or nil once stopped. Used by the
// batch dispatcher to group due handlers by dependency scope.
func (h *periodicHandler) entry() *entry {
	h.mu.Lock()
	e := h.e
	h.mu.Unlock()
	return e
}

// publish computes and publishes the window ending at now (clamped to
// the clock for lagging pool batches) without propagating. It returns
// the handler's entry and the actual window end, or ok == false when
// the handler is stopped or the tick is stale. The computation runs
// under the handler's own (metadata-level) lock only, so independent
// scope batches execute in parallel on the worker pool, and no
// structural lock is held while user code computes.
func (h *periodicHandler) publish(now clock.Time) (e *entry, end clock.Time, ok bool) {
	h.mu.Lock()
	if h.stopped || h.e == nil {
		h.mu.Unlock()
		return nil, 0, false
	}
	e = h.e
	start := h.winStart
	env := h.env
	// A pooled batch may run after the clock has moved past its
	// scheduled boundary (Submit never blocks, so the clock goroutine
	// can outpace the workers). Measure up to the clock's current
	// position: the window then covers exactly the probe events
	// gathered since winStart instead of attributing them all to the
	// first lagging window and none to the rest. Inline batches run
	// synchronously on the clock goroutine and are never late.
	if h.async {
		if cur := env.Now(); cur > now {
			now = cur
		}
	}
	if now <= start {
		// A worker pool may also execute batches out of order; a stale
		// tick must not overwrite a newer published value.
		h.mu.Unlock()
		return nil, 0, false
	}
	stats := env.Stats()
	stats.ComputeCalls.Add(1)
	stats.PeriodicUpdates.Add(1)
	v, err := safeWindowCompute(h.compute, start, now)
	h.cur.Store(h.snaps.put(v, err))
	h.winStart = now
	h.mu.Unlock()
	return e, now, true
}

// tick is the legacy per-handler update path, kept for the
// WithPerHandlerTicks ablation: publish, then propagate this
// handler's update alone under the scope lock.
func (h *periodicHandler) tick(now clock.Time) {
	e, end, ok := h.publish(now)
	if !ok {
		return
	}
	if e.ndeps.Load() > 0 {
		env := e.reg.env
		sc := env.lockScope(e.reg)
		e.reg.propagateLocked(e, end)
		sc.unlock()
	}
}

func (h *periodicHandler) stop() {
	h.mu.Lock()
	h.stopped = true
	h.e = nil
	h.cur.Store(nil)
	t := h.task
	env := h.env
	h.task = nil
	h.mu.Unlock()
	if t != nil && env != nil {
		// Cancel retires the task permanently: a concurrent dispatch
		// that already detached it will find its re-arm ignored.
		env.scheduler().Cancel(t)
	}
}
