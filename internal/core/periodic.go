package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/clock"
)

// WindowComputeFunc computes a periodic metadata value for the time
// window [start, end). The initial value at subscription time is
// computed with start == end; rate-like computations must handle the
// zero-width window (typically by returning 0).
type WindowComputeFunc func(start, end clock.Time) (Value, error)

// periodicHandler publishes a new value at each window boundary and
// serves the published value to every consumer in between. This is the
// mechanism that guarantees the isolation condition of Section 3:
// concurrent consumers never interfere with each other's measurements
// (contrast Figure 4, where naive on-demand rate computations by two
// consumers corrupt each other's counters).
//
// The current value is published through an atomic snapshot pointer,
// so Value() is lock-free: readers never contend with the periodic
// update or with each other.
type periodicHandler struct {
	window  clock.Duration
	compute WindowComputeFunc

	// cur is the published value snapshot; nil before the handler
	// starts and again after it stops (reads then report
	// ErrUnsubscribed).
	cur atomic.Pointer[valueSnapshot]

	mu       sync.Mutex
	e        *entry
	snaps    snapAlloc
	winStart clock.Time
	ticker   *clock.Ticker
	stopped  bool
	// async records whether ticks run asynchronously to the clock
	// (pool updater): only then can a tick lag behind the clock and
	// need its window end clamped to the clock's current position.
	async bool
}

// NewPeriodic returns a handler that recomputes its value every window
// time units. Information gathered during a window (via probes) is
// turned into the value published for the following window.
func NewPeriodic(window clock.Duration, compute WindowComputeFunc) Handler {
	if window <= 0 {
		panic("core: periodic window must be positive")
	}
	return &periodicHandler{window: window, compute: compute}
}

func (h *periodicHandler) Value() (Value, error) {
	s := h.cur.Load()
	if s == nil {
		return nil, ErrUnsubscribed
	}
	return s.val, s.err
}

func (h *periodicHandler) Mechanism() Mechanism { return PeriodicMechanism }

// Window returns the handler's update period.
func (h *periodicHandler) Window() clock.Duration { return h.window }

func (h *periodicHandler) start(e *entry) error {
	env := e.reg.env
	now := env.Now()
	h.mu.Lock()
	h.e = e
	h.winStart = now
	_, inline := env.Updater().(inlineUpdater)
	h.async = !inline
	env.Stats().ComputeCalls.Add(1)
	v, err := safeWindowCompute(h.compute, now, now)
	h.cur.Store(h.snaps.put(v, err))
	h.mu.Unlock()
	// The ticker fires on the clock goroutine; the actual update runs
	// on the env's updater (a worker pool for large graphs, Section
	// 4.3) and takes only the owning component's lock, so trigger
	// propagation is serialized with structural changes of its own
	// dependency scope while unrelated scopes proceed in parallel.
	h.ticker = clock.NewTicker(env.Clock(), h.window, func(now clock.Time) {
		if h.async {
			env.Updater().Submit(func() { h.tick(now) })
		} else {
			// Inline updater: run the tick directly instead of paying
			// a closure allocation and dispatch per tick for a Submit
			// that would execute it synchronously anyway.
			h.tick(now)
		}
	})
	return nil
}

func (h *periodicHandler) tick(now clock.Time) {
	h.mu.Lock()
	if h.stopped || h.e == nil {
		h.mu.Unlock()
		return
	}
	e := h.e
	start := h.winStart
	env := e.reg.env
	// A pooled tick may run after the clock has moved past its
	// scheduled boundary (Submit never blocks, so the clock goroutine
	// can outpace the workers). Measure up to the clock's current
	// position: the window then covers exactly the probe events
	// gathered since winStart instead of attributing them all to the
	// first lagging window and none to the rest. Inline ticks run
	// synchronously on the clock goroutine and are never late.
	if h.async {
		if cur := env.Now(); cur > now {
			now = cur
		}
	}
	if now <= start {
		// A worker pool may also execute tick tasks out of order; a
		// stale tick must not overwrite a newer published value.
		h.mu.Unlock()
		return
	}
	stats := env.Stats()
	stats.ComputeCalls.Add(1)
	stats.PeriodicUpdates.Add(1)
	// The computation runs under the handler's own (metadata-level)
	// lock only, so independent periodic updates execute in parallel
	// on the worker pool. The result is published atomically for
	// lock-free readers.
	v, err := safeWindowCompute(h.compute, start, now)
	h.cur.Store(h.snaps.put(v, err))
	h.winStart = now
	h.mu.Unlock()

	// Publishing a periodic value notifies dependent triggered
	// handlers along the inverted dependency graph. Propagation is a
	// structural traversal batched under the owning component's lock
	// only — and only when the item actually has dependents.
	if e.ndeps.Load() > 0 {
		sc := env.lockScope(e.reg)
		e.reg.propagateLocked(e, now)
		sc.unlock()
	}
}

func (h *periodicHandler) stop() {
	h.mu.Lock()
	h.stopped = true
	h.e = nil
	h.cur.Store(nil)
	t := h.ticker
	h.ticker = nil
	h.mu.Unlock()
	if t != nil {
		t.Stop()
	}
}
