package core

import (
	"sync"

	"repro/internal/clock"
)

// WindowComputeFunc computes a periodic metadata value for the time
// window [start, end). The initial value at subscription time is
// computed with start == end; rate-like computations must handle the
// zero-width window (typically by returning 0).
type WindowComputeFunc func(start, end clock.Time) (Value, error)

// periodicHandler publishes a new value at each window boundary and
// serves the published value to every consumer in between. This is the
// mechanism that guarantees the isolation condition of Section 3:
// concurrent consumers never interfere with each other's measurements
// (contrast Figure 4, where naive on-demand rate computations by two
// consumers corrupt each other's counters).
type periodicHandler struct {
	window  clock.Duration
	compute WindowComputeFunc

	mu       sync.Mutex
	e        *entry
	val      Value
	err      error
	winStart clock.Time
	ticker   *clock.Ticker
	stopped  bool
}

// NewPeriodic returns a handler that recomputes its value every window
// time units. Information gathered during a window (via probes) is
// turned into the value published for the following window.
func NewPeriodic(window clock.Duration, compute WindowComputeFunc) Handler {
	if window <= 0 {
		panic("core: periodic window must be positive")
	}
	return &periodicHandler{window: window, compute: compute}
}

func (h *periodicHandler) Value() (Value, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.e == nil {
		return nil, ErrUnsubscribed
	}
	return h.val, h.err
}

func (h *periodicHandler) Mechanism() Mechanism { return PeriodicMechanism }

// Window returns the handler's update period.
func (h *periodicHandler) Window() clock.Duration { return h.window }

func (h *periodicHandler) start(e *entry) error {
	env := e.reg.env
	now := env.Now()
	h.mu.Lock()
	h.e = e
	h.winStart = now
	env.Stats().ComputeCalls.Add(1)
	h.val, h.err = h.compute(now, now)
	h.mu.Unlock()
	// The ticker fires on the clock goroutine; the actual update runs
	// on the env's updater (a worker pool for large graphs, Section
	// 4.3) and takes the graph-level lock so trigger propagation is
	// serialized with structural changes.
	h.ticker = clock.NewTicker(env.Clock(), h.window, func(now clock.Time) {
		env.Updater().Submit(func() { h.tick(now) })
	})
	return nil
}

func (h *periodicHandler) tick(now clock.Time) {
	h.mu.Lock()
	if h.stopped || h.e == nil {
		h.mu.Unlock()
		return
	}
	e := h.e
	start := h.winStart
	if now <= start {
		// A worker pool may execute tick tasks out of order; a stale
		// tick must not overwrite a newer published value.
		h.mu.Unlock()
		return
	}
	env := e.reg.env
	stats := env.Stats()
	stats.ComputeCalls.Add(1)
	stats.PeriodicUpdates.Add(1)
	// The computation runs under the handler's own (metadata-level)
	// lock only, so independent periodic updates execute in parallel
	// on the worker pool.
	h.val, h.err = h.compute(start, now)
	h.winStart = now
	h.mu.Unlock()

	// Publishing a periodic value notifies dependent triggered
	// handlers along the inverted dependency graph. Propagation is a
	// structural traversal and takes the graph-level lock — but only
	// when the item actually has dependents.
	if e.ndeps.Load() > 0 {
		env.structMu.Lock()
		e.reg.propagateLocked(e, now)
		env.structMu.Unlock()
	}
}

func (h *periodicHandler) stop() {
	h.mu.Lock()
	h.stopped = true
	h.e = nil
	t := h.ticker
	h.ticker = nil
	h.mu.Unlock()
	if t != nil {
		t.Stop()
	}
}
