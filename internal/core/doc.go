// Package core implements the paper's primary contribution: a
// publish-subscribe framework for dynamic metadata management in a
// scalable stream processing system.
//
// # Model
//
// Every query-graph node (source, operator, sink) — and, recursively,
// every exchangeable module inside an operator — owns a Registry. A
// Registry holds Definitions of the metadata items the node can
// provide, and, for each item currently in use, an entry pairing the
// item with its unique metadata handler.
//
// Consumers call Registry.Subscribe to obtain a Subscription — a proxy
// through which they read the current metadata value. The first
// subscription to an item creates its handler and performs a
// depth-first traversal of the item's dependency graph, implicitly
// including every transitively required item (stopping at items that
// are already provided). Subsequent subscriptions share the existing
// handler via a reference count. Unsubscribing decrements the count;
// when it reaches zero the handler is removed, its monitoring probes
// are deactivated, and its dependencies are recursively excluded.
// Only the metadata actually needed is therefore ever maintained —
// the paper's central scalability property.
//
// # Update mechanisms
//
// Handlers come in four flavors matching Figure 2 of the paper:
//
//   - Static: an immutable value (schema, element size).
//   - OnDemand: recomputed on every access; exact, cheapest for rarely
//     accessed or cheap items.
//   - Periodic: gathers information over a fixed time window and
//     publishes a new value at each window boundary; all concurrent
//     consumers observe the same published value (the isolation
//     condition of Section 3).
//   - Triggered: recomputed only when an underlying metadata item
//     publishes a new value or a developer-defined event fires;
//     updates propagate recursively along the inverted dependency
//     graph, across nodes, in topological order.
//
// # Dependencies
//
// A Definition declares its dependencies as (Selector, Kind) pairs.
// Selectors address registries relationally — the node itself, its
// i-th input, every input, its outputs, or a named module — so a
// single definition serves every operator instance. Dynamic
// dependency resolution (Section 4.4.3) is supported by an optional
// Resolve hook that may choose alternative dependencies based on what
// is already included.
package core
