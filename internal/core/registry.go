package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/clock"
)

// Registry manages the metadata items of one query-graph node (or of
// one exchangeable module inside a node, Section 4.5). It stores the
// item definitions, and — for items currently in use — the entry
// pairing each item with its unique handler and reference count.
// Metadata items are stored directly at the graph nodes they describe
// (Section 2.2), so each registry advertises exactly the items its
// node can provide.
type Registry struct {
	env *Env
	id  string

	// comp is the registry's dependency-scope component (union-find
	// node, see scope.go). Structural operations lock the component's
	// root instead of a graph-wide mutex.
	comp *component

	// inputs/outputs resolve the node's upstream and downstream
	// registries for inter-node dependencies. They are set by the
	// graph layer and read at inclusion time.
	inputs  func() []*Registry
	outputs func() []*Registry
	parent  *Registry

	mu      sync.RWMutex
	defs    map[Kind]*Definition
	entries map[Kind]*entry
	modules map[string]*Registry
	events  map[string]map[*entry]bool

	// watchSinks holds the registered publication sinks per kind
	// (watchgate.go), so a sink survives exclusion/re-inclusion of its
	// item. Guarded by mu; nil until the first Watch.
	watchSinks map[Kind]WatchSink
}

// entry pairs an in-use metadata item with its handler (1-to-1,
// Section 2.1). All structural fields are guarded by the owning
// component's structural lock; the handler is additionally published
// through an atomic pointer for lock-free reads on the value path.
type entry struct {
	reg  *Registry
	kind Kind
	def  *Definition
	seq  int64

	// handler is the structural reference, guarded by the component
	// lock. Migration (migrate.go) may replace it while the entry is in
	// use.
	handler Handler
	// pub publishes the handler for lock-free value reads; nil before
	// the entry commits and again once it is removed. It points at a
	// heap cell that is written once and never mutated: commit and
	// migration each publish a fresh cell, so a reader that loaded the
	// pointer may dereference it without synchronization even while a
	// migration installs a replacement handler.
	pub atomic.Pointer[Handler]

	// bctx is the handler's build context, retained so migration can
	// construct the replacement mechanism's compute over the same
	// resolved dependency handles. Guarded by the component lock.
	bctx *BuildContext

	// track, when non-nil, counts value reads of this item (Handle
	// reads and Registry.Peek) for the adaptive controller's access
	// sampling; nil — the default — keeps the read path at a single
	// predicted branch. Installed by Registry.TrackReads.
	track atomic.Pointer[ShardedCounter]

	refs       int
	depGroups  [][]*entry
	dependents map[*entry]int
	events     []string

	// Delta-channel edge state, guarded by the component lock (see
	// delta.go). deltaDeps counts delta-eligible dependent edges;
	// while it is positive, deltaLast/deltaLastOK track the latest
	// delta-visible published value — the value every dependent
	// accumulator over this edge currently reflects.
	deltaDeps   int
	deltaLast   float64
	deltaLastOK bool

	// ndeps mirrors len(dependents) so periodic handlers can skip the
	// component lock entirely when nothing depends on them — the
	// key to parallel periodic updates on the worker pool (Section
	// 4.3: only the locks involved in the currently included items
	// are used).
	ndeps atomic.Int32

	// version counts the item's publications: every periodic window
	// publish, triggered refresh, probe republish, quarantine trip, and
	// memoized on-demand recompute bumps it (after the new snapshot is
	// stored, so a reader observing version v sees the v-th value or a
	// newer one). NotifyChanged bumps it too, as the declared escape
	// hatch for items whose value changed outside the framework.
	// Memoized on-demand handlers stamp their dependencies' versions at
	// compute time; an unchanged stamp proves the dependency's served
	// value is unchanged, which is what makes the lock-free memo hit
	// exact (see handler.go). Monotonic and never reused, so a stale
	// stamp can never revalidate.
	version atomic.Uint64

	// watch, when non-nil, is the publication sink notified after every
	// version bump (see watchgate.go). nil — the default — keeps the
	// publish path at a single predicted branch over the bare bump. The
	// cell is write-once: Watch installs a fresh cell, so a publisher
	// that loaded it may call through without synchronization while a
	// replacement is installed.
	watch atomic.Pointer[WatchSink]
}

// getHandler returns the entry's handler, or nil once removed. It is
// an atomic load — the value read path takes no lock.
func (e *entry) getHandler() Handler {
	if p := e.pub.Load(); p != nil {
		return *p
	}
	return nil
}

// publishHandlerLocked publishes h for lock-free reads through a fresh
// write-once heap cell. The component lock must be held. Readers that
// loaded the previous cell keep a consistent view of the previous
// handler; the cell is never mutated after this store.
func (e *entry) publishHandlerLocked(h Handler) {
	c := new(Handler)
	*c = h
	e.pub.Store(c)
}

// NewRegistry creates a registry bound to this environment. The id
// appears in error messages and must be unique within the graph. Every
// registry starts as its own dependency-scope component; components
// merge as metadata dependencies connect registries.
func (env *Env) NewRegistry(id string) *Registry {
	return &Registry{
		env:     env,
		id:      id,
		comp:    env.newComponent(),
		defs:    make(map[Kind]*Definition),
		entries: make(map[Kind]*entry),
		modules: make(map[string]*Registry),
		events:  make(map[string]map[*entry]bool),
	}
}

// ID returns the registry's identifier.
func (r *Registry) ID() string { return r.id }

// Env returns the registry's environment.
func (r *Registry) Env() *Env { return r.env }

// SetNeighbors installs the resolver functions for upstream and
// downstream registries. The graph layer calls this when nodes are
// wired; either function may be nil for none.
func (r *Registry) SetNeighbors(inputs, outputs func() []*Registry) {
	sc := r.env.lockScope(r)
	defer sc.unlock()
	r.inputs = inputs
	r.outputs = outputs
}

// AttachModule registers the registry of an exchangeable module under
// the given name (Section 4.5). Metadata items of the node can then
// depend on the module's items via the Module selector, recursively.
// The module keeps its own dependency-scope component until metadata
// actually links it to the node; attach itself only needs both
// components locked (in deterministic order).
func (r *Registry) AttachModule(name string, m *Registry) {
	sc := r.env.lockScope(r, m)
	defer sc.unlock()
	m.parent = r
	r.mu.Lock()
	r.modules[name] = m
	r.mu.Unlock()
}

// DetachModule removes a module registry. Items of the module must not
// be in use. This is a cross-component operation when no metadata ever
// linked module and node; lockScope orders the two locks by component
// id.
func (r *Registry) DetachModule(name string) error {
	r.mu.RLock()
	m := r.modules[name]
	r.mu.RUnlock()
	if m == nil {
		return nil
	}
	sc := r.env.lockScope(r, m)
	defer sc.unlock()
	r.mu.RLock()
	still := r.modules[name] == m
	r.mu.RUnlock()
	if !still {
		return nil
	}
	m.mu.RLock()
	inUse := len(m.entries)
	m.mu.RUnlock()
	if inUse > 0 {
		return fmt.Errorf("%w: module %q of %s has %d included items",
			ErrItemInUse, name, r.id, inUse)
	}
	r.mu.Lock()
	delete(r.modules, name)
	r.mu.Unlock()
	m.parent = nil
	return nil
}

// ModuleRegistry returns the registry of the named module, or nil.
func (r *Registry) ModuleRegistry(name string) *Registry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.modules[name]
}

// Define registers (or overrides) the definition of a metadata item.
// Overriding implements metadata inheritance (Section 4.4.2): a
// specialized node re-Defines an inherited item, e.g. to reflect
// additional data structures in its memory usage. An item currently in
// use cannot be redefined.
func (r *Registry) Define(def *Definition) error {
	if def.Kind == "" {
		return fmt.Errorf("core: definition without kind on %s", r.id)
	}
	if def.Build == nil {
		return fmt.Errorf("core: definition of %s/%s without Build", r.id, def.Kind)
	}
	sc := r.env.lockScope(r)
	defer sc.unlock()
	r.mu.Lock()
	if _, ok := r.entries[def.Kind]; ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %s/%s", ErrItemInUse, r.id, def.Kind)
	}
	r.defs[def.Kind] = def
	// The node lock is released before bumping and journaling: the
	// journal may checkpoint inline, and a checkpoint reads items
	// through node-RLock primitives (Peek) — holding the write lock
	// across it would self-deadlock.
	r.mu.Unlock()
	// Redefinition cannot change the edges of included entries (the
	// item must not be in use), but bump conservatively so plans never
	// outlive a definition change.
	bumpStruct(r)
	if def.Persist != "" {
		r.env.journalRecord(JournalOp{
			Op: JournalDefine, Registry: r.id, Kind: def.Kind,
			Codec: def.Persist, CodecArgs: def.PersistArgs,
		})
	}
	return nil
}

// MustDefine is Define but panics on error; for node constructors.
func (r *Registry) MustDefine(def *Definition) {
	if err := r.Define(def); err != nil {
		panic(err)
	}
}

// Available returns the kinds of all defined items, sorted. This is
// the metadata discovery surface of Section 2.2: each node gives
// information about its available metadata items.
func (r *Registry) Available() []Kind {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Kind, 0, len(r.defs))
	for k := range r.defs {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Included returns the kinds of items currently provided (in use),
// sorted.
func (r *Registry) Included() []Kind {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Kind, 0, len(r.entries))
	for k := range r.entries {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PersistableDef identifies a definition restorable through a codec
// (Definition.Persist), as recorded in checkpoints.
type PersistableDef struct {
	Kind  Kind
	Codec string
	Args  string
}

// PersistableDefinitions returns the registry's codec-backed
// definitions, sorted by kind. Checkpoints read this instead of
// mirroring Define calls so definitions registered before the journal
// attached are still captured.
func (r *Registry) PersistableDefinitions() []PersistableDef {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]PersistableDef, 0)
	for k, d := range r.defs {
		if d.Persist == "" {
			continue
		}
		out = append(out, PersistableDef{Kind: k, Codec: d.Persist, Args: d.PersistArgs})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}

// IsDefined reports whether the item kind has a definition.
func (r *Registry) IsDefined(kind Kind) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.defs[kind]
	return ok
}

// IsIncluded reports whether the item currently has a handler.
func (r *Registry) IsIncluded(kind Kind) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.entries[kind]
	return ok
}

// Refs returns the current reference count of the item (0 if not
// included). Intended for tests and monitoring.
func (r *Registry) Refs(kind Kind) int {
	sc := r.env.lockScope(r)
	defer sc.unlock()
	e, ok := r.entries[kind]
	if !ok {
		return 0
	}
	return e.refs
}

// Peek reads the current value of an included item without taking a
// subscription: no reference count churn, no structural lock — just
// the node-level map read and the handler's own (lock-free for
// periodic/triggered) value read. It returns ErrUnsubscribed if the
// item is not included, which makes it the right primitive for
// monitoring paths that sample many items at once.
func (r *Registry) Peek(kind Kind) (Value, error) {
	r.mu.RLock()
	e, ok := r.entries[kind]
	r.mu.RUnlock()
	if !ok {
		return nil, ErrUnsubscribed
	}
	h := e.getHandler()
	if h == nil {
		return nil, ErrUnsubscribed
	}
	if t := e.track.Load(); t != nil {
		t.Add(1)
	}
	return h.Value()
}

// Mechanism returns the update mechanism of an included item's handler.
func (r *Registry) Mechanism(kind Kind) (Mechanism, bool) {
	r.mu.RLock()
	e, ok := r.entries[kind]
	r.mu.RUnlock()
	if !ok {
		return 0, false
	}
	h := e.getHandler()
	if h == nil {
		return 0, false
	}
	return h.Mechanism(), true
}

// Subscribe obtains a Subscription on the item, creating its handler —
// and, by depth-first traversal of the dependency graph, the handlers
// of every transitively required item — if it is not yet provided
// (Section 2.4). Dependent items already provided are shared.
//
// Locking: the traversal runs under the dependency-scope component
// lock(s) covering the registries it touches. The covering set is not
// known up front — an inter-node dependency may reach a registry in
// another component — so the traversal starts under the subscriber's
// component lock and, when it would leave the locked scope, rolls back,
// widens the scope by the escaped registry (lockScope re-acquires all
// locks in ascending component-id order), and retries. Each retry
// covers strictly more of the closure and components only ever merge,
// so the loop terminates. Cross-component edges created by the
// traversal merge the components involved.
func (r *Registry) Subscribe(kind Kind) (*Subscription, error) {
	need := []*Registry{r}
	for {
		e, err := r.subscribeAttempt(kind, need)
		if err == nil {
			return &Subscription{h: &Handle{e: e}}, nil
		}
		var esc *scopeEscapeError
		if errors.As(err, &esc) {
			need = append(need, esc.reg)
			continue
		}
		return nil, err
	}
}

// subscribeAttempt runs one locked inclusion attempt over the widened
// registry set. The unlock is deferred so that a panic escaping the
// traversal (framework bug) propagates without wedging component
// locks; user-code panics in Build/Resolve/compute are converted to
// errors before they reach this frame.
func (r *Registry) subscribeAttempt(kind Kind, need []*Registry) (*entry, error) {
	sc := r.env.lockScope(need...)
	defer sc.unlock()
	e, err := r.includeLocked(kind, make(map[*Registry]map[Kind]bool), &sc)
	if err == nil {
		// Journal the external subscription (transitive includes are
		// derived state) inside the scope lock, so WAL order equals
		// commit order per component.
		r.env.journalRecord(JournalOp{Op: JournalSubscribe, Registry: r.id, Kind: kind})
	}
	return e, err
}

// resolveSelector maps a dependency selector to concrete registries.
func (r *Registry) resolveSelector(s Selector) ([]*Registry, error) {
	get := func(f func() []*Registry) []*Registry {
		if f == nil {
			return nil
		}
		return f()
	}
	switch s.kind {
	case selSelf:
		return []*Registry{r}, nil
	case selInput:
		ins := get(r.inputs)
		if s.index < 0 || s.index >= len(ins) {
			return nil, nil
		}
		return []*Registry{ins[s.index]}, nil
	case selEachInput:
		return get(r.inputs), nil
	case selOutput:
		outs := get(r.outputs)
		if s.index < 0 || s.index >= len(outs) {
			return nil, nil
		}
		return []*Registry{outs[s.index]}, nil
	case selEachOutput:
		return get(r.outputs), nil
	case selModule:
		r.mu.RLock()
		m := r.modules[s.name]
		r.mu.RUnlock()
		if m == nil {
			return nil, nil
		}
		return []*Registry{m}, nil
	case selParent:
		if r.parent == nil {
			return nil, nil
		}
		return []*Registry{r.parent}, nil
	default:
		return nil, fmt.Errorf("core: unknown selector %v on %s", s, r.id)
	}
}

// includeLocked performs one step of the depth-first inclusion
// traversal. The component lock(s) of the scope must be held and cover
// r. When a dependency resolves to a registry outside the scope, the
// step rolls back and reports a scopeEscapeError so Subscribe can
// widen the scope and retry.
func (r *Registry) includeLocked(kind Kind, visiting map[*Registry]map[Kind]bool, sc *scope) (*entry, error) {
	// The traversal stops at items already provided: sharing the
	// existing handler saves redundant maintenance costs (Section 2.1).
	if e, ok := r.entries[kind]; ok {
		e.refs++
		r.env.stats.SharedSubscriptions.Add(1)
		return e, nil
	}
	if visiting[r] != nil && visiting[r][kind] {
		return nil, fmt.Errorf("%w: via %s/%s", ErrCycle, r.id, kind)
	}
	r.mu.RLock()
	def := r.defs[kind]
	r.mu.RUnlock()
	if def == nil {
		return nil, fmt.Errorf("%w: %s/%s", ErrUnknownItem, r.id, kind)
	}
	if visiting[r] == nil {
		visiting[r] = make(map[Kind]bool)
	}
	visiting[r][kind] = true
	defer delete(visiting[r], kind)

	r.env.stats.IncludeTraversals.Add(1)

	deps, err := resolveDeps(def, &ResolveContext{reg: r})
	if err != nil {
		return nil, fmt.Errorf("resolving deps of %s/%s: %w", r.id, kind, err)
	}

	e := &entry{
		reg:        r,
		kind:       kind,
		def:        def,
		seq:        r.env.nextSeq(),
		dependents: make(map[*entry]int),
	}

	// Include dependencies depth-first; roll back on any failure so a
	// failed subscription leaves no residue.
	var included []*entry
	rollback := func() {
		for i := len(included) - 1; i >= 0; i-- {
			included[i].releaseLocked()
		}
	}
	groups := make([][]*entry, len(deps))
	for i, dr := range deps {
		regs, err := r.resolveSelector(dr.Target)
		if err != nil {
			rollback()
			return nil, err
		}
		if len(regs) == 0 && !dr.Optional {
			rollback()
			return nil, fmt.Errorf("%w: %s of %s/%s (dep %s)",
				ErrBadSelector, dr.Target, r.id, kind, dr.Kind)
		}
		for _, tr := range regs {
			if !sc.covers(tr) {
				rollback()
				return nil, &scopeEscapeError{reg: tr}
			}
			// The dependency edge r -> tr joins the two registries'
			// components; merge eagerly (a later rollback leaves them
			// merged, which is conservative but correct).
			sc.mergeLocked(r, tr)
			de, err := tr.includeLocked(dr.Kind, visiting, sc)
			if err != nil {
				rollback()
				return nil, fmt.Errorf("including %s/%s: %w", r.id, kind, err)
			}
			included = append(included, de)
			groups[i] = append(groups[i], de)
		}
	}
	e.depGroups = groups

	// Build the handler with handles on the resolved dependencies.
	handleGroups := make([][]*Handle, len(groups))
	for i, g := range groups {
		for _, de := range g {
			handleGroups[i] = append(handleGroups[i], &Handle{e: de})
		}
	}
	bctx := &BuildContext{e: e, groups: handleGroups, deps: deps}
	handler, err := buildHandler(def, bctx)
	if err != nil {
		rollback()
		return nil, fmt.Errorf("building handler %s/%s: %w", r.id, kind, err)
	}
	if handler == nil {
		rollback()
		return nil, fmt.Errorf("core: Build of %s/%s returned nil handler", r.id, kind)
	}

	// Commit: register trigger edges, event registrations, probe, and
	// the entry itself, then start the handler (which may pre-compute
	// the value from the now-included dependencies).
	for _, g := range groups {
		for _, de := range g {
			de.dependents[e]++
			de.ndeps.Store(int32(len(de.dependents)))
		}
	}
	e.events = def.Events
	for _, name := range def.Events {
		if r.events[name] == nil {
			r.events[name] = make(map[*entry]bool)
		}
		r.events[name][e] = true
	}
	if def.Probe != nil {
		def.Probe.Activate()
	}
	e.refs = 1
	e.bctx = bctx
	e.handler = handler
	e.publishHandlerLocked(handler)
	r.mu.Lock()
	r.entries[kind] = e
	if r.watchSinks != nil {
		r.reattachWatchLocked(e)
	}
	r.mu.Unlock()
	// The new entry and its trigger edges changed the component's
	// propagation structure; cached plans are stale.
	bumpStruct(r)
	r.env.stats.HandlersCreated.Add(1)

	if err := handler.start(e); err != nil {
		e.releaseLocked()
		return nil, fmt.Errorf("starting handler %s/%s: %w", r.id, kind, err)
	}
	return e, nil
}

// resolveDeps returns the item's dependencies, running a dynamic
// Resolve hook with panic recovery: a panicking resolver fails the
// subscription instead of unwinding with component locks held.
func resolveDeps(def *Definition, rc *ResolveContext) (deps []DepRef, err error) {
	if def.Resolve == nil {
		return def.Deps, nil
	}
	defer recoverCompute("resolve", &err)
	return def.Resolve(rc), nil
}

// buildHandler runs Definition.Build with panic recovery: a panicking
// Build fails the subscription (rolling back included dependencies)
// instead of unwinding with component locks held.
func buildHandler(def *Definition, ctx *BuildContext) (h Handler, err error) {
	defer recoverCompute("build", &err)
	return def.Build(ctx)
}

// unsubscribe releases one reference from a consumer Subscription.
// The release closure stays within the entry's component: every
// dependency edge merged the components involved at inclusion time,
// and components never split.
func (r *Registry) unsubscribe(e *entry) {
	sc := r.env.lockScope(r)
	defer sc.unlock()
	e.releaseLocked()
	r.env.journalRecord(JournalOp{Op: JournalUnsubscribe, Registry: r.id, Kind: e.kind})
}

// releaseLocked decrements the reference count and removes the handler
// — deactivating monitoring code and recursively excluding
// dependencies — when it reaches zero (the removeMetadata operation of
// Section 4.4.1). The owning component's lock must be held.
func (e *entry) releaseLocked() {
	e.refs--
	if e.refs > 0 {
		return
	}
	r := e.reg
	r.mu.Lock()
	delete(r.entries, e.kind)
	r.mu.Unlock()
	e.pub.Store(nil)

	if e.handler != nil {
		e.handler.stop()
	}
	// Deregister from the dependencies' delta channels before the
	// dependency entries themselves are released.
	if th, ok := e.handler.(*triggeredHandler); ok && th.ds != nil {
		th.ds.stopLocked()
	}
	if e.def.Probe != nil {
		e.def.Probe.Deactivate()
	}
	for _, name := range e.events {
		if set := r.events[name]; set != nil {
			delete(set, e)
			if len(set) == 0 {
				delete(r.events, name)
			}
		}
	}
	for _, g := range e.depGroups {
		for _, de := range g {
			if de.dependents[e]--; de.dependents[e] <= 0 {
				delete(de.dependents, e)
			}
			de.ndeps.Store(int32(len(de.dependents)))
			de.releaseLocked()
		}
	}
	// Removing the entry (and its trigger edges) invalidates every
	// cached propagation plan of the component — a stale plan would
	// refresh a dead handler.
	bumpStruct(r)
	r.env.stats.HandlersRemoved.Add(1)
}

// FireEvent refreshes every triggered handler registered for the named
// event and propagates the updates along the inverted dependency graph
// (Section 3.2.3: event notifications let developers fire triggers
// manually, e.g. when an operator's state or a window size changes).
func (r *Registry) FireEvent(name string) {
	sc := r.env.lockScope(r)
	defer sc.unlock()
	r.env.stats.EventsFired.Add(1)
	set := r.events[name]
	if len(set) == 0 {
		return
	}
	// Seeds are collected into the component root's scratch buffer:
	// the root is locked for the whole propagation, so the buffer has
	// a single writer and steady-state event firing allocates nothing.
	root := find(r.comp)
	seeds := root.seedBuf[:0]
	for e := range set {
		seeds = append(seeds, e)
	}
	root.seedBuf = seeds
	r.env.refreshClosureLocked(seeds, r.env.Now())
}

// NotifyChanged announces that the value of an on-demand (or static)
// item changed, so that dependent triggered handlers refresh. This is
// the notification mechanism for items whose handlers do not publish
// (Section 3.2.3). It is a no-op if the item is not included.
func (r *Registry) NotifyChanged(kind Kind) {
	sc := r.env.lockScope(r)
	defer sc.unlock()
	e, ok := r.entries[kind]
	if !ok {
		return
	}
	// The announced change is invisible to publication versions (the
	// handler did not publish), so invalidate explicitly: drop the item's
	// own memo (its stamps cover dependencies, not the announced change)
	// and bump the version so memoized dependents revalidate just like
	// triggered dependents refresh.
	if od, ok := e.getHandler().(*onDemandHandler); ok {
		od.memo.Store(nil)
	}
	e.bumpVersion()
	// The announced value is the new delta-visible truth of this edge:
	// deliver the transition (or a poison mark for non-float values) to
	// delta dependents before they refresh.
	if e.deltaDeps > 0 {
		notifyDeltaLocked(e)
	}
	r.propagateLocked(e, r.env.Now())
}

// propagateLocked pushes an update of e to its transitive triggerable
// dependents. The owning component's lock must be held; the dependent
// closure cannot leave the component.
func (r *Registry) propagateLocked(e *entry, now clock.Time) {
	root := find(r.comp)
	seeds := root.seedBuf[:0]
	for d := range e.dependents {
		seeds = append(seeds, d)
	}
	root.seedBuf = seeds
	r.env.refreshClosureLocked(seeds, now)
}

// sortEntries orders entries by creation sequence for deterministic
// propagation.
func sortEntries(es []*entry) {
	sort.Slice(es, func(i, j int) bool { return es[i].seq < es[j].seq })
}

// refreshNaiveLocked is the ablation propagation: plain depth-first
// recursion along the inverted dependency graph without deduplication
// or ordering. Diamond dependents refresh once per incoming edge and
// may read half-updated inputs.
func (env *Env) refreshNaiveLocked(seeds []*entry, now clock.Time) {
	sorted := make([]*entry, len(seeds))
	copy(sorted, seeds)
	sortEntries(sorted)
	for _, e := range sorted {
		t, ok := e.handler.(triggerable)
		if !ok {
			continue
		}
		env.stats.TriggerNotifications.Add(1)
		_ = t.refresh(now)
		if e.deltaDeps > 0 {
			notifyDeltaLocked(e)
		}
		deps := make([]*entry, 0, len(e.dependents))
		for d := range e.dependents {
			deps = append(deps, d)
		}
		env.refreshNaiveLocked(deps, now)
	}
}
