package core

import "fmt"

// Kind names a metadata item within a registry, e.g. "inputRate" or
// "estimatedCPUUsage". The well-known kinds used by the operator
// library and the cost model are defined in their packages; the
// framework treats kinds as opaque.
type Kind string

// Mechanism enumerates the maintenance concepts of Figure 2.
type Mechanism int

// The four maintenance mechanisms.
const (
	// StaticMechanism marks an invariable value.
	StaticMechanism Mechanism = iota
	// OnDemandMechanism recomputes the value on every access.
	OnDemandMechanism
	// PeriodicMechanism publishes a value per fixed time window.
	PeriodicMechanism
	// TriggeredMechanism recomputes on dependency updates and events.
	TriggeredMechanism
)

// String returns the mechanism name as used in the paper.
func (m Mechanism) String() string {
	switch m {
	case StaticMechanism:
		return "static"
	case OnDemandMechanism:
		return "on-demand"
	case PeriodicMechanism:
		return "periodic"
	case TriggeredMechanism:
		return "triggered"
	default:
		return fmt.Sprintf("mechanism(%d)", int(m))
	}
}

// selKind discriminates Selector variants.
type selKind int

const (
	selSelf selKind = iota
	selInput
	selEachInput
	selOutput
	selEachOutput
	selModule
	selParent
)

// Selector addresses the registry (or registries) a dependency refers
// to, relative to the registry defining the dependent item. Selectors
// let one Definition serve every operator instance: "Input(0)" on a
// join resolves to whatever node feeds its left input in the concrete
// query graph.
type Selector struct {
	kind  selKind
	index int
	name  string
}

// Self selects the defining registry itself (intra-node dependency).
func Self() Selector { return Selector{kind: selSelf} }

// Input selects the registry of the i-th upstream node (inter-node
// dependency on a node upstream).
func Input(i int) Selector { return Selector{kind: selInput, index: i} }

// EachInput selects the registries of all upstream nodes; the
// dependency group then holds one handle per input.
func EachInput() Selector { return Selector{kind: selEachInput} }

// Output selects the registry of the i-th downstream node (inter-node
// dependency on a node downstream, e.g. QoS specifications at sinks).
func Output(i int) Selector { return Selector{kind: selOutput, index: i} }

// EachOutput selects the registries of all downstream nodes.
func EachOutput() Selector { return Selector{kind: selEachOutput} }

// Module selects the registry of the named exchangeable module of the
// node (Section 4.5), e.g. the join's "left" sweep area.
func Module(name string) Selector { return Selector{kind: selModule, name: name} }

// Parent selects the registry of the node owning this module. It lets
// module metadata reach the enclosing operator.
func Parent() Selector { return Selector{kind: selParent} }

// String renders the selector for error messages.
func (s Selector) String() string {
	switch s.kind {
	case selSelf:
		return "self"
	case selInput:
		return fmt.Sprintf("input(%d)", s.index)
	case selEachInput:
		return "eachInput"
	case selOutput:
		return fmt.Sprintf("output(%d)", s.index)
	case selEachOutput:
		return "eachOutput"
	case selModule:
		return "module(" + s.name + ")"
	case selParent:
		return "parent"
	default:
		return "selector(?)"
	}
}

// DepRef is one declared dependency: the item Kind at the registries
// matched by Target.
type DepRef struct {
	// Target addresses the registries providing the dependency.
	Target Selector
	// Kind is the metadata item required there.
	Kind Kind
	// Optional marks dependencies that may match no registry without
	// failing the subscription (the dependency group is then empty).
	Optional bool
}

// Dep is shorthand for a required DepRef.
func Dep(target Selector, kind Kind) DepRef {
	return DepRef{Target: target, Kind: kind}
}

// OptionalDep is shorthand for an optional DepRef.
func OptionalDep(target Selector, kind Kind) DepRef {
	return DepRef{Target: target, Kind: kind, Optional: true}
}
