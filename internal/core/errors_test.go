package core

import (
	"errors"
	"testing"

	"repro/internal/clock"
)

// TestComputeErrorSurfacesThroughChain: a failing compute in the
// middle of a dependency chain surfaces at the consumer's read instead
// of being swallowed by propagation.
func TestComputeErrorSurfacesThroughChain(t *testing.T) {
	env, _ := testEnv()
	r := env.NewRegistry("n")
	boom := errors.New("sensor offline")
	failing := false
	r.MustDefine(&Definition{
		Kind:   "base",
		Events: []string{"changed"},
		Build: func(*BuildContext) (Handler, error) {
			return NewTriggered(func(clock.Time) (Value, error) {
				if failing {
					return nil, boom
				}
				return 1.0, nil
			}), nil
		},
	})
	defineDerived(r, "derived", Dep(Self(), "base"))
	s, err := r.Subscribe("derived")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Unsubscribe()
	if v, err := s.Float(); err != nil || v != 1 {
		t.Fatalf("pre-failure read: %v, %v", v, err)
	}

	failing = true
	r.FireEvent("changed")
	if _, err := s.Value(); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the underlying compute error", err)
	}

	// Recovery: the next successful propagation clears the error.
	failing = false
	r.FireEvent("changed")
	if v, err := s.Float(); err != nil || v != 1 {
		t.Fatalf("post-recovery read: %v, %v", v, err)
	}
}

// TestPeriodicComputeErrorRetained: a periodic window whose compute
// fails serves the error until the next window succeeds.
func TestPeriodicComputeErrorRetained(t *testing.T) {
	env, vc := testEnv()
	r := env.NewRegistry("n")
	boom := errors.New("bad window")
	fail := false
	r.MustDefine(&Definition{
		Kind: "p",
		Build: func(*BuildContext) (Handler, error) {
			return NewPeriodic(10, func(a, b clock.Time) (Value, error) {
				if fail {
					return nil, boom
				}
				return float64(b), nil
			}), nil
		},
	})
	s, _ := r.Subscribe("p")
	defer s.Unsubscribe()
	fail = true
	vc.Advance(10)
	if _, err := s.Value(); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	fail = false
	vc.Advance(10)
	if v, err := s.Float(); err != nil || v != 20 {
		t.Fatalf("recovered read: %v, %v", v, err)
	}
}

// TestSubscribeAfterNeighborRewire: inter-node dependencies resolve
// against the topology at inclusion time.
func TestSubscribeAfterNeighborRewire(t *testing.T) {
	env, _ := testEnv()
	a := env.NewRegistry("a")
	b := env.NewRegistry("b")
	op := env.NewRegistry("op")
	defineConst(a, "rate", 1.0)
	defineConst(b, "rate", 2.0)
	defineDerived(op, "est", Dep(Input(0), "rate"))

	wire(op, []*Registry{a}, nil)
	s1, err := op.Subscribe("est")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := s1.Float(); v != 1 {
		t.Fatalf("est = %v, want 1 via a", v)
	}
	s1.Unsubscribe()

	// Re-wire the input to b: a fresh subscription follows the new
	// topology.
	wire(op, []*Registry{b}, nil)
	s2, err := op.Subscribe("est")
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Unsubscribe()
	if v, _ := s2.Float(); v != 2 {
		t.Fatalf("est = %v, want 2 via b", v)
	}
	if a.IsIncluded("rate") {
		t.Fatal("old neighbor still included")
	}
}

// TestModuleAttachedAfterDefinition: a definition with a Module
// selector only resolves once the module is attached.
func TestModuleAttachedAfterDefinition(t *testing.T) {
	env, _ := testEnv()
	op := env.NewRegistry("op")
	defineDerived(op, "size", Dep(Module("m"), "size"))
	if _, err := op.Subscribe("size"); !errors.Is(err, ErrBadSelector) {
		t.Fatalf("err = %v, want ErrBadSelector before attach", err)
	}
	mod := env.NewRegistry("op.m")
	defineConst(mod, "size", 4.0)
	op.AttachModule("m", mod)
	s, err := op.Subscribe("size")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Unsubscribe()
	if v, _ := s.Float(); v != 4 {
		t.Fatalf("size = %v, want 4 after attach", v)
	}
}

// TestHandleMechanismAfterRemoval: introspection on a dead handle
// degrades gracefully.
func TestHandleMechanismAfterRemoval(t *testing.T) {
	env, _ := testEnv()
	r := env.NewRegistry("n")
	r.MustDefine(&Definition{Kind: "x", Build: func(*BuildContext) (Handler, error) {
		return NewOnDemand(func(clock.Time) (Value, error) { return 1.0, nil }), nil
	}})
	s, _ := r.Subscribe("x")
	h := s.Handle()
	if h.Mechanism() != OnDemandMechanism {
		t.Fatal("live mechanism wrong")
	}
	if h.Kind() != "x" || h.Registry() != r {
		t.Fatal("handle accessors wrong")
	}
	s.Unsubscribe()
	if h.Mechanism() != StaticMechanism {
		t.Fatal("dead handle mechanism should degrade to static zero value")
	}
	if _, err := h.Float(); !errors.Is(err, ErrUnsubscribed) {
		t.Fatal("dead handle read should fail")
	}
}

// TestSubscriptionAccessors covers the remaining Subscription surface.
func TestSubscriptionAccessors(t *testing.T) {
	env, _ := testEnv()
	r := env.NewRegistry("n")
	defineConst(r, "x", 1.5)
	s, _ := r.Subscribe("x")
	defer s.Unsubscribe()
	if s.Kind() != "x" {
		t.Fatal("Kind wrong")
	}
	if s.Mechanism() != StaticMechanism {
		t.Fatal("Mechanism wrong")
	}
	if v, err := s.Float(); err != nil || v != 1.5 {
		t.Fatalf("Float = %v, %v", v, err)
	}
	s.Unsubscribe()
	if _, err := s.Float(); !errors.Is(err, ErrUnsubscribed) {
		t.Fatal("Float after release should fail")
	}
}

// TestEventOnNonTriggeredHandlerIsIgnored: registering an event on an
// on-demand handler is harmless — only triggerable handlers refresh.
func TestEventOnNonTriggeredHandlerIsIgnored(t *testing.T) {
	env, _ := testEnv()
	r := env.NewRegistry("n")
	calls := 0
	r.MustDefine(&Definition{
		Kind:   "od",
		Events: []string{"e"},
		Build: func(*BuildContext) (Handler, error) {
			return NewOnDemand(func(clock.Time) (Value, error) {
				calls++
				return 1.0, nil
			}), nil
		},
	})
	s, _ := r.Subscribe("od")
	defer s.Unsubscribe()
	r.FireEvent("e")
	if calls != 0 {
		t.Fatalf("on-demand handler computed %d times on event, want 0", calls)
	}
}

// TestUnsubscribeDuringErrorState: releasing a chain whose handlers
// are in error state must still clean up fully.
func TestUnsubscribeDuringErrorState(t *testing.T) {
	env, _ := testEnv()
	r := env.NewRegistry("n")
	r.MustDefine(&Definition{
		Kind:   "base",
		Events: []string{"fail"},
		Build: func(*BuildContext) (Handler, error) {
			return NewTriggered(func(clock.Time) (Value, error) {
				return nil, errors.New("down")
			}), nil
		},
	})
	defineDerived(r, "derived", Dep(Self(), "base"))
	s, _ := r.Subscribe("derived")
	r.FireEvent("fail")
	s.Unsubscribe()
	if n := len(r.Included()); n != 0 {
		t.Fatalf("%d items leaked after unsubscribe in error state", n)
	}
}
