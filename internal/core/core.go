package core
