package core

import (
	"errors"
	"fmt"
)

// Value is the value of a metadata item. Most runtime statistics are
// float64; schema-like static metadata may be any type.
type Value = any

// Errors returned by the metadata framework.
var (
	// ErrUnknownItem reports a subscription to a metadata item the
	// registry has no definition for.
	ErrUnknownItem = errors.New("core: unknown metadata item")
	// ErrCycle reports a cyclic metadata dependency discovered during
	// the inclusion traversal.
	ErrCycle = errors.New("core: cyclic metadata dependency")
	// ErrItemInUse reports an attempt to redefine a metadata item
	// whose handler currently exists.
	ErrItemInUse = errors.New("core: metadata item is in use")
	// ErrUnsubscribed reports a read through a released subscription.
	ErrUnsubscribed = errors.New("core: subscription already released")
	// ErrNoValue reports that a handler has no value yet.
	ErrNoValue = errors.New("core: metadata value not available")
	// ErrBadSelector reports a dependency selector that matched no
	// registry (e.g. Input(2) on a unary operator).
	ErrBadSelector = errors.New("core: dependency selector matched no registry")
	// ErrNotNumeric reports a Float conversion of a non-numeric value.
	ErrNotNumeric = errors.New("core: metadata value is not numeric")
	// ErrComputePanic reports that user-supplied compute, Build, or
	// Resolve code panicked. The framework converts such panics into
	// errors surfaced on Value()/Subscribe so a faulty metadata item
	// cannot wedge component locks or kill updater workers.
	ErrComputePanic = errors.New("core: metadata computation panicked")
	// ErrComputeTimeout reports that a metadata computation exceeded
	// its configured deadline (WithComputeDeadline or the definition's
	// override). The computation is abandoned — its goroutine is fenced
	// by a generation counter so a late result can never overwrite a
	// newer publication — and the worker slot is released.
	ErrComputeTimeout = errors.New("core: metadata computation timed out")
	// ErrStale tags a value served by a quarantined handler: the
	// circuit breaker tripped and the item now serves its last-good
	// value instead of recomputing. Reads return (lastGood, *StaleError);
	// errors.Is(err, ErrStale) identifies the condition and the
	// *StaleError carries the quarantine instant, the live age, and the
	// failure that tripped the breaker, so degrade-aware consumers can
	// keep operating on the stale value.
	ErrStale = errors.New("core: serving stale value, item quarantined")
	// ErrNotMigratable reports a Registry.Migrate call the item cannot
	// satisfy: no AdaptSpec on its definition, a target mechanism the
	// spec provides no compute for, a static or delta-aggregate item, or
	// a handler type the framework does not own.
	ErrNotMigratable = errors.New("core: metadata item is not migratable")
	// ErrNotRestorable reports a Registry.RestoreStale call the item
	// cannot satisfy: a static handler (nothing to restore into), or an
	// env without WithBreaker (no quarantine machinery to serve the
	// restored value through). See restore.go.
	ErrNotRestorable = errors.New("core: metadata item is not restorable")
	// ErrRestored is the default quarantine cause of an item restored
	// from a checkpoint: the served value is the pre-crash last-good,
	// not yet recomputed by this process. It surfaces wrapped in the
	// *StaleError tagging restored reads until the recovery probe's
	// first successful recompute.
	ErrRestored = errors.New("core: value restored from checkpoint, not yet recomputed")
)

// Float converts a numeric metadata value to float64.
func Float(v Value) (float64, error) {
	switch x := v.(type) {
	case float64:
		return x, nil
	case float32:
		return float64(x), nil
	case int:
		return float64(x), nil
	case int8:
		return float64(x), nil
	case int16:
		return float64(x), nil
	case int32:
		return float64(x), nil
	case int64:
		return float64(x), nil
	case uint:
		return float64(x), nil
	case uint8:
		return float64(x), nil
	case uint16:
		return float64(x), nil
	case uint32:
		return float64(x), nil
	case uint64:
		return float64(x), nil
	case nil:
		return 0, ErrNoValue
	default:
		return 0, fmt.Errorf("%w: %T", ErrNotNumeric, v)
	}
}

// MustFloat is Float for values known to be numeric; it panics
// otherwise. Intended for compute closures over trusted dependencies.
func MustFloat(v Value) float64 {
	f, err := Float(v)
	if err != nil {
		panic(err)
	}
	return f
}
