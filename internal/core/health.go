package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/clock"
)

// Degraded-mode maintenance: compute deadlines and circuit-breaker
// quarantine.
//
// The paper's metadata-on-demand design assumes compute functions are
// cheap and well-behaved; a production stream processor cannot. This
// file contains the containment layer: a bounded compute runner that
// abandons a computation at its deadline (the abandoned goroutine is
// fenced by a generation claim so its late result can never clobber a
// newer publication), and a per-handler circuit breaker that trips a
// repeatedly failing item into quarantine — the item is unscheduled,
// serves its last-good value tagged *StaleError, and is re-probed on
// exponential backoff through the env's bucketed scheduler until a
// success closes the breaker.
//
// Health state machine per handler:
//
//	            failure                 threshold reached
//	Healthy ────────────▶ Degraded ────────────────────────▶ Quarantined
//	   ▲                      │                                  │
//	   │        success       │                     backoff timer fires
//	   │◀─────────────────────┘                                  ▼
//	   │                                                      Probing
//	   │                probe succeeds                           │
//	   └─────────────────────────────────────────────────────────┘
//	                     (probe fails: backoff doubles, ──▶ Quarantined)
//
// Lock order: handler mutex -> itemHealth.mu -> scheduler/clock
// internals. The lock-free value read path never touches itemHealth.

// BreakerPolicy configures circuit-breaker quarantine (WithBreaker).
type BreakerPolicy struct {
	// FailureThreshold is the number of breaker-eligible failures
	// (panics and deadline timeouts) within FailureWindow that trips
	// the handler into quarantine.
	FailureThreshold int
	// FailureWindow is the sliding window over which failures count.
	FailureWindow clock.Duration
	// ProbeBackoff is the delay before the first recovery probe of a
	// quarantined handler.
	ProbeBackoff clock.Duration
	// MaxProbeBackoff caps the exponential probe backoff.
	MaxProbeBackoff clock.Duration
}

// DefaultBreakerPolicy is the policy selected by WithBreaker with a
// zero FailureThreshold: trip after 3 failures within 1000 time units,
// probe after 50 units doubling up to 1600.
var DefaultBreakerPolicy = BreakerPolicy{
	FailureThreshold: 3,
	FailureWindow:    1000,
	ProbeBackoff:     50,
	MaxProbeBackoff:  1600,
}

// HealthState is a handler's position in the degraded-operation state
// machine.
type HealthState int

const (
	// Healthy: no recent breaker-eligible failures.
	Healthy HealthState = iota
	// Degraded: at least one recent failure, breaker not yet tripped.
	Degraded
	// Quarantined: the breaker tripped; the handler is unscheduled and
	// serves its last-good value tagged *StaleError until a probe
	// succeeds.
	Quarantined
	// Probing: a recovery probe is in flight.
	Probing
)

func (s HealthState) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Quarantined:
		return "quarantined"
	case Probing:
		return "probing"
	default:
		return fmt.Sprintf("HealthState(%d)", int(s))
	}
}

// StaleError tags the value served by a quarantined handler. Reads
// return (lastGoodValue, *StaleError): callers that treat any error as
// fatal fail safe, while degrade-aware consumers detect the condition
// with errors.Is(err, ErrStale) and keep operating on the stale value.
type StaleError struct {
	// Cause is the failure that tripped the breaker.
	Cause error
	// Since is the instant the breaker tripped.
	Since clock.Time

	clk clock.Clock
}

// Error implements error.
func (e *StaleError) Error() string {
	return fmt.Sprintf("%v (stale for %d since %d: %v)",
		ErrStale, e.Age(), e.Since, e.Cause)
}

// Age returns how long the handler has been serving this stale value —
// evaluated against the live clock, so the age grows while quarantine
// lasts.
func (e *StaleError) Age() clock.Duration { return e.clk.Now().Sub(e.Since) }

// Unwrap lets errors.Is see both the ErrStale marker and the
// underlying cause (e.g. ErrComputeTimeout).
func (e *StaleError) Unwrap() []error { return []error{ErrStale, e.Cause} }

// HealthSnapshot is a point-in-time view of one handler's breaker
// state, surfaced through Registry.Health and monitor snapshots.
type HealthSnapshot struct {
	State HealthState
	// RecentFailures counts breaker-eligible failures inside the
	// policy's sliding window.
	RecentFailures int
	// Since is the quarantine instant (zero time unless quarantined or
	// probing).
	Since clock.Time
	// StaleFor is the age of the stale value being served (0 unless
	// quarantined or probing).
	StaleFor clock.Duration
	// Cause is the failure that tripped the breaker, if tripped.
	Cause error
}

// healthCarrier is implemented by handlers that track breaker state.
type healthCarrier interface {
	healthSnapshot() HealthSnapshot
}

// quarantineOwner is the handler-side contract of itemHealth: how to
// run one recovery probe. The probe recomputes once; on success the
// owner republishes, reschedules itself, and closes the breaker via
// closeBreaker; on failure it reports probeFailed to re-arm the next
// probe on doubled backoff.
type quarantineOwner interface {
	runProbe(now clock.Time)
}

// itemHealth is the per-handler circuit breaker. It exists only when
// the env enables WithBreaker; every method is safe on a nil receiver
// so handlers call the bookkeeping hooks unconditionally — the healthy
// hot path with no breaker configured pays a single nil check.
type itemHealth struct {
	env    *Env
	policy *BreakerPolicy
	owner  quarantineOwner

	// st mirrors state for lock-free healthy-path checks: the publish
	// path reads it on every compute (isQuarantined, the onSuccess
	// fast path), so it must not pay the transition mutex. Transitions
	// hold mu and store both fields via setStateLocked.
	st atomic.Int32

	mu       sync.Mutex
	state    HealthState  // guarded by mu; mirrored in st
	failures []clock.Time // breaker-eligible failure instants, pruned to the window
	cause    error
	since    clock.Time
	backoff  clock.Duration
	// probeTask is the armed recovery probe; its Data points back at
	// this itemHealth so the tick dispatcher can route it.
	probeTask *clock.Task
	stopped   bool
}

// newItemHealth returns breaker state for owner, or nil when the env
// has no breaker configured.
func newItemHealth(env *Env, owner quarantineOwner) *itemHealth {
	if env.breaker == nil {
		return nil
	}
	return &itemHealth{env: env, policy: env.breaker, owner: owner}
}

// breakerEligible reports whether err counts toward tripping the
// breaker: panics and deadline timeouts do, ordinary compute errors
// (a Value()-returned error is a legitimate result) do not. A
// stale-tagged error never counts: it means an upstream breaker is
// already containing the fault — the local compute completed promptly,
// and quarantining dependents of a quarantined item would cascade the
// outage instead of degrading it.
func breakerEligible(err error) bool {
	if err == nil || errors.Is(err, ErrStale) {
		return false
	}
	return errorsIsAny(err, ErrComputePanic, ErrComputeTimeout)
}

// setStateLocked transitions the state machine; callers hold mu.
func (ih *itemHealth) setStateLocked(s HealthState) {
	ih.state = s
	ih.st.Store(int32(s))
}

// onSuccess records a successful compute, resetting the failure window.
// A handler that is already Healthy has nothing to reset (Healthy
// implies an empty failure window), so the steady-state success path is
// a single atomic load.
func (ih *itemHealth) onSuccess() {
	if ih == nil || ih.st.Load() == int32(Healthy) {
		return
	}
	ih.mu.Lock()
	if ih.state == Degraded {
		ih.setStateLocked(Healthy)
		ih.failures = ih.failures[:0]
		ih.cause = nil
	}
	ih.mu.Unlock()
}

// onFailure records a breaker-eligible failure at now and reports
// whether the breaker tripped on this failure. When it trips, the
// probe is armed internally; the caller performs the handler-specific
// quarantine actions (unschedule, publish stale) and must do so before
// releasing the handler mutex it holds, so the stale publication and
// the trip are one atomic step from a reader's perspective.
func (ih *itemHealth) onFailure(now clock.Time, err error) (tripped bool) {
	if ih == nil {
		return false
	}
	ih.mu.Lock()
	defer ih.mu.Unlock()
	if ih.stopped || ih.state == Quarantined || ih.state == Probing {
		return false
	}
	cutoff := now.Add(-ih.policy.FailureWindow)
	kept := ih.failures[:0]
	for _, t := range ih.failures {
		if t > cutoff {
			kept = append(kept, t)
		}
	}
	ih.failures = append(kept, now)
	if len(ih.failures) < ih.policy.FailureThreshold {
		ih.setStateLocked(Degraded)
		ih.cause = err
		return false
	}
	ih.setStateLocked(Quarantined)
	ih.cause = err
	ih.since = now
	ih.backoff = ih.policy.ProbeBackoff
	ih.env.stats.BreakerTrips.Add(1)
	ih.armProbeLocked(now)
	return true
}

// forceQuarantine administratively trips the breaker at now with the
// given cause — no failure history required — and arms the first
// recovery probe on the policy's initial backoff. Used by crash
// recovery (restore.go) to park restored items in the stale-serving
// state; deliberately not counted in Stats.BreakerTrips, which counts
// failure-driven trips. A no-op if the breaker is already open.
func (ih *itemHealth) forceQuarantine(now clock.Time, cause error) {
	if ih == nil {
		return
	}
	ih.mu.Lock()
	defer ih.mu.Unlock()
	if ih.stopped || ih.state == Quarantined || ih.state == Probing {
		return
	}
	ih.setStateLocked(Quarantined)
	ih.cause = cause
	ih.since = now
	ih.backoff = ih.policy.ProbeBackoff
	ih.armProbeLocked(now)
}

// staleError returns the *StaleError to publish for the current
// quarantine. Must be called after onFailure tripped (or while
// quarantined).
func (ih *itemHealth) staleError() *StaleError {
	ih.mu.Lock()
	defer ih.mu.Unlock()
	return &StaleError{Cause: ih.cause, Since: ih.since, clk: ih.env.clk}
}

// armProbeLocked arms the next recovery probe backoff units after now.
// Probes ride the env's bucketed scheduler like periodic boundaries;
// the task's Data routes the fire back here via probeFired.
func (ih *itemHealth) armProbeLocked(now clock.Time) {
	if ih.stopped {
		return
	}
	if ih.probeTask == nil {
		ih.probeTask = &clock.Task{Data: ih}
	}
	ih.env.scheduler().At(now.Add(ih.backoff), ih.probeTask)
}

// probeFired is called by the tick dispatcher when the probe backoff
// elapses. The probe compute itself runs on the updater (it is user
// code and may be slow); probes are never submitted sheddable — losing
// one would strand the handler in quarantine for a full extra backoff.
func (ih *itemHealth) probeFired(now clock.Time) {
	ih.mu.Lock()
	if ih.stopped || ih.state != Quarantined {
		ih.mu.Unlock()
		return
	}
	ih.setStateLocked(Probing)
	owner := ih.owner
	ih.mu.Unlock()
	if ih.env.async {
		ih.env.updater.Submit(func() { owner.runProbe(now) })
	} else {
		owner.runProbe(now)
	}
}

// probeFailed records an unsuccessful probe: the breaker stays open
// and the next probe is armed on doubled (capped) backoff.
func (ih *itemHealth) probeFailed(now clock.Time, err error) {
	if ih == nil {
		return
	}
	ih.mu.Lock()
	defer ih.mu.Unlock()
	if ih.stopped || ih.state != Probing {
		return
	}
	ih.setStateLocked(Quarantined)
	if err != nil {
		ih.cause = err
	}
	ih.backoff *= 2
	if ih.backoff > ih.policy.MaxProbeBackoff {
		ih.backoff = ih.policy.MaxProbeBackoff
	}
	ih.armProbeLocked(now)
}

// closeBreaker records a successful probe: the breaker closes and the
// handler is healthy again. The owner republishes and reschedules
// itself around this call.
func (ih *itemHealth) closeBreaker() {
	if ih == nil {
		return
	}
	ih.mu.Lock()
	defer ih.mu.Unlock()
	if ih.state != Probing && ih.state != Quarantined {
		return
	}
	ih.setStateLocked(Healthy)
	ih.failures = ih.failures[:0]
	ih.cause = nil
	ih.since = 0
	ih.backoff = 0
	ih.env.stats.BreakerRecoveries.Add(1)
}

// isQuarantined reports whether the handler currently serves stale
// values (quarantined or probing). Lock-free: it runs on every publish.
func (ih *itemHealth) isQuarantined() bool {
	if ih == nil {
		return false
	}
	s := HealthState(ih.st.Load())
	return s == Quarantined || s == Probing
}

// stop retires the breaker when its handler stops, canceling any armed
// probe.
func (ih *itemHealth) stop() {
	if ih == nil {
		return
	}
	ih.mu.Lock()
	ih.stopped = true
	t := ih.probeTask
	ih.probeTask = nil
	ih.mu.Unlock()
	if t != nil {
		ih.env.scheduler().Cancel(t)
	}
}

// snapshot returns the current health view.
func (ih *itemHealth) snapshot() HealthSnapshot {
	if ih == nil {
		return HealthSnapshot{State: Healthy}
	}
	ih.mu.Lock()
	defer ih.mu.Unlock()
	hs := HealthSnapshot{
		State:          ih.state,
		RecentFailures: len(ih.failures),
		Cause:          ih.cause,
	}
	if ih.state == Quarantined || ih.state == Probing {
		hs.Since = ih.since
		hs.StaleFor = ih.env.clk.Now().Sub(ih.since)
	}
	return hs
}

// Health returns the degraded-operation state of an included item.
// Items whose handlers carry no breaker (static handlers, or envs
// without WithBreaker) report Healthy. The second result is false if
// the item is not included.
func (r *Registry) Health(kind Kind) (HealthSnapshot, bool) {
	r.mu.RLock()
	e, ok := r.entries[kind]
	r.mu.RUnlock()
	if !ok {
		return HealthSnapshot{}, false
	}
	h := e.getHandler()
	if h == nil {
		return HealthSnapshot{}, false
	}
	if hc, ok := h.(healthCarrier); ok {
		return hc.healthSnapshot(), true
	}
	return HealthSnapshot{State: Healthy}, true
}

// --- Bounded computes ---

type computeResult struct {
	v   Value
	err error
}

// runBounded executes compute under deadline d on clk. The result is
// claimed through a generation fence (gen): the compute goroutine and
// the deadline each try to advance the fence exactly once, and only
// the winner's outcome is published. A compute still running at its
// deadline is abandoned — runBounded returns ErrComputeTimeout, the
// worker slot is released — and when the straggler eventually
// finishes, the fence rejects its result (counted in Stats.LateResults)
// so a late value can never clobber a newer publication.
//
// The deadline event is armed before the compute goroutine is spawned:
// on the virtual clock this makes timeout delivery deterministic — the
// event is in the clock's queue before any advancement can run, so a
// test advancing past the deadline always observes the timeout.
//
// A timed-out compute's goroutine keeps running until the user code
// returns; compute functions used with deadlines must tolerate such a
// straggler executing concurrently with later computes (pure functions
// trivially do).
func runBounded(clk clock.Clock, d clock.Duration, stats *Stats, compute func() (Value, error)) (Value, error) {
	var gen atomic.Uint32 // 0 = undecided, 1 = claimed
	done := make(chan computeResult, 1)
	timeout := make(chan struct{})
	ev := clk.Schedule(clk.Now().Add(d), func(clock.Time) { close(timeout) })
	go func() {
		v, err := compute()
		if gen.CompareAndSwap(0, 1) {
			done <- computeResult{v, err}
		} else {
			// Fenced off: the deadline already published
			// ErrComputeTimeout for this generation.
			stats.LateResults.Add(1)
		}
	}()
	select {
	case r := <-done:
		clk.Cancel(ev)
		return r.v, r.err
	case <-timeout:
		if gen.CompareAndSwap(0, 1) {
			stats.Timeouts.Add(1)
			return nil, ErrComputeTimeout
		}
		// The compute claimed the fence at the same instant; its result
		// is in flight and wins.
		r := <-done
		return r.v, r.err
	}
}

// boundedCompute runs an on-demand/triggered compute with panic
// recovery, under deadline d when d > 0.
func boundedCompute(clk clock.Clock, d clock.Duration, stats *Stats, fn ComputeFunc, now clock.Time) (Value, error) {
	if d <= 0 {
		return safeCompute(fn, now)
	}
	return runBounded(clk, d, stats, func() (Value, error) {
		return safeCompute(fn, now)
	})
}

// boundedWindowCompute runs a periodic window compute with panic
// recovery, under deadline d when d > 0.
func boundedWindowCompute(clk clock.Clock, d clock.Duration, stats *Stats, fn WindowComputeFunc, start, end clock.Time) (Value, error) {
	if d <= 0 {
		return safeWindowCompute(fn, start, end)
	}
	return runBounded(clk, d, stats, func() (Value, error) {
		return safeWindowCompute(fn, start, end)
	})
}

// errorsIsAny reports whether err matches any of the targets.
func errorsIsAny(err error, targets ...error) bool {
	for _, t := range targets {
		if errors.Is(err, t) {
			return true
		}
	}
	return false
}
