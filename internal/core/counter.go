package core

import (
	"sync/atomic"
	"unsafe"
)

// ShardedCounter is a monotonic int64 counter striped over
// cache-line-padded cells. The hot value-read path increments framework
// counters on every access; a single shared atomic.Int64 turns those
// increments into cache-line ping-pong between cores and bounds
// parallel read throughput (visible in BenchmarkValueReadParallel at
// -cpu 8). Striping spreads the increments over independent cache
// lines; Load sums the stripes, so totals stay exact — only the
// ordering of concurrent increments across stripes is unobservable,
// which a counter never exposes anyway.
//
// The zero value is ready to use, like atomic.Int64, and the Add/Load
// method set matches it so Stats fields can switch representation
// without touching call sites.

// counterStripes is the number of stripes; must be a power of two.
// 16 stripes * 64 bytes = 1KiB per counter, paid only for the few
// hottest Stats fields.
const counterStripes = 16

// counterStripe pads one cell to a full cache line so neighbouring
// stripes never share a line (false sharing would defeat the striping).
type counterStripe struct {
	v atomic.Int64
	_ [56]byte
}

// ShardedCounter is the striped counter. See the package comment above.
type ShardedCounter struct {
	stripes [counterStripes]counterStripe
}

// stripeIndex picks this goroutine's stripe from the address of a stack
// local: goroutine stacks are distinct allocations of at least 2KiB, so
// kilobyte granularity separates concurrent goroutines onto different
// stripes without any per-goroutine state or runtime hooks. The pointer
// is reduced to uintptr immediately and never stored, so the local does
// not escape and the index costs no allocation.
func stripeIndex() uintptr {
	var b byte
	return (uintptr(unsafe.Pointer(&b)) >> 10) & (counterStripes - 1)
}

// Add adds n to the counter.
func (c *ShardedCounter) Add(n int64) {
	c.stripes[stripeIndex()].v.Add(n)
}

// Load returns the current total. Concurrent Adds may or may not be
// included, exactly as with a plain atomic counter.
func (c *ShardedCounter) Load() int64 {
	var sum int64
	for i := range c.stripes {
		sum += c.stripes[i].v.Load()
	}
	return sum
}
