package core

import (
	"errors"
	"sync"
	"testing"
)

// recordingSink records every Published call, for gate tests.
type recordingSink struct {
	mu   sync.Mutex
	vers []uint64
}

func (s *recordingSink) Published(v uint64) {
	s.mu.Lock()
	s.vers = append(s.vers, v)
	s.mu.Unlock()
}

func (s *recordingSink) versions() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]uint64(nil), s.vers...)
}

func TestWatchGateNotifiesOnPublish(t *testing.T) {
	env, _ := testEnv()
	r := env.NewRegistry("n1")
	defineConst(r, "src", 1.0)
	defineDerived(r, "sum", Dep(Self(), "src"))
	sub, err := r.Subscribe("sum")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Unsubscribe()

	sink := &recordingSink{}
	v0, err := r.Watch("sum", sink)
	if err != nil {
		t.Fatal(err)
	}
	if v0 != 1 {
		t.Fatalf("Watch anchor = %d, want 1 (initial compute)", v0)
	}
	if got, ok := r.ItemVersion("sum"); !ok || got != v0 {
		t.Fatalf("ItemVersion = %d, %v; want %d, true", got, ok, v0)
	}

	r.NotifyChanged("src") // triggers a refresh of sum
	vers := sink.versions()
	if len(vers) != 1 || vers[0] != 2 {
		t.Fatalf("sink saw %v, want [2]", vers)
	}

	r.Unwatch("sum")
	r.NotifyChanged("src")
	if got := sink.versions(); len(got) != 1 {
		t.Fatalf("sink saw %v after Unwatch, want no new notifications", got)
	}
}

func TestWatchGateErrors(t *testing.T) {
	env, _ := testEnv()
	r := env.NewRegistry("n1")
	defineConst(r, "src", 1.0)
	if _, err := r.Watch("src", &recordingSink{}); !errors.Is(err, ErrUnsubscribed) {
		t.Fatalf("Watch on non-included item: err = %v, want ErrUnsubscribed", err)
	}
	if _, err := r.Watch("src", nil); err == nil {
		t.Fatal("Watch with nil sink succeeded")
	}
	r.Unwatch("src") // no-op on a never-watched kind
	if _, ok := r.ItemVersion("src"); ok {
		t.Fatal("ItemVersion ok on non-included item")
	}
}

func TestWatchSinkSurvivesReinclusion(t *testing.T) {
	env, _ := testEnv()
	r := env.NewRegistry("n1")
	defineConst(r, "src", 1.0)
	defineDerived(r, "sum", Dep(Self(), "src"))
	sub, err := r.Subscribe("sum")
	if err != nil {
		t.Fatal(err)
	}
	sink := &recordingSink{}
	if _, err := r.Watch("sum", sink); err != nil {
		t.Fatal(err)
	}
	sub.Unsubscribe() // entry released; sink stays registered

	sub2, err := r.Subscribe("sum")
	if err != nil {
		t.Fatal(err)
	}
	defer sub2.Unsubscribe()
	// The fresh entry's initial compute publishes version 1 through the
	// re-attached sink.
	vers := sink.versions()
	if len(vers) == 0 || vers[len(vers)-1] != 1 {
		t.Fatalf("sink saw %v after re-inclusion, want trailing 1", vers)
	}
}
