package core

import (
	"fmt"

	"repro/internal/clock"
)

// Cached propagation plans.
//
// Trigger propagation from a fixed seed set over an unchanged
// dependency graph always visits the same entries in the same order:
// the affected closure is a function of the graph structure alone, and
// the topological order is made deterministic by the creation-sequence
// tie-break. Steady-state workloads — periodic boundaries, repeated
// FireEvent/NotifyChanged on a stable subscription set — therefore
// re-derive the identical closure on every publish. The plan cache
// memoizes the ordered affected-entry slice per seed set on the
// component root, turning repeat propagation into an allocation-free
// walk of a precomputed slice.
//
// Invalidation: every structural mutation of a component — entry
// inclusion (new trigger edges), entry removal, component merges, and
// (conservatively) redefinition — bumps the root's structVer and drops
// its plans. Plans are keyed by the exact canonical seed-seq set (not
// a hash of it), so distinct seed sets can never alias, and each plan
// additionally records the structVer it was built under, so a stale
// plan can never be executed. All cache state lives on the component
// root and is guarded by the root's structural lock, which every
// propagation path already holds.

// propPlan is one memoized propagation: the topologically ordered
// affected entries for one seed set at one structural version.
type propPlan struct {
	ver   uint64
	order []*entry
}

// maxPlansPerScope bounds the cache per component; steady workloads
// use a handful of distinct seed sets, so a full reset on overflow is
// simpler than LRU and costs one rebuild per set.
const maxPlansPerScope = 64

// bumpStructLocked invalidates every cached plan of the component.
// The caller must hold the root's lock (c must be a root or about to
// stop being one under both locks, see union).
func (c *component) bumpStructLocked() {
	c.structVer++
	if len(c.plans) > 0 {
		clear(c.plans)
	}
}

// bumpStruct invalidates the plans of the component covering r. The
// component's structural lock must be held. It also advances the env
// write epoch, which invalidates every memoized on-demand value in the
// env: memo stamps must never survive a structural change (an
// unsubscribe could otherwise leave a memo revalidating against a dead
// dependency entry).
func bumpStruct(r *Registry) {
	find(r.comp).bumpStructLocked()
	r.env.writeEpoch.Add(1)
}

// planFor returns the ordered affected-entry slice for seeds,
// memoizing it on the seeds' component root. Seeds spanning several
// roots (possible only transiently, while a multi-registry batch
// observes a merge in flight) fall back to an uncached build. The
// structural lock(s) covering the seeds must be held.
func (env *Env) planFor(seeds []*entry) []*entry {
	root := find(seeds[0].reg.comp)
	for _, s := range seeds[1:] {
		if find(s.reg.comp) != root {
			return env.buildPlanLocked(seeds)
		}
	}

	// Canonical cache key: the sorted, deduplicated seed seqs.
	// Insertion sort on root-owned scratch keeps the hit path
	// allocation-free; seed sets are small.
	kb := root.keyBuf[:0]
	for _, s := range seeds {
		kb = append(kb, s.seq)
	}
	for i := 1; i < len(kb); i++ {
		for j := i; j > 0 && kb[j] < kb[j-1]; j-- {
			kb[j], kb[j-1] = kb[j-1], kb[j]
		}
	}
	u := 0
	for i, q := range kb {
		if i == 0 || q != kb[u-1] {
			kb[u] = q
			u++
		}
	}
	kb = kb[:u]
	root.keyBuf = kb

	// Exact key: the seq bytes themselves. A map lookup indexed by
	// string(key) does not copy the byte slice, so hits stay
	// allocation-free; only a miss materializes the key string.
	key := root.keyBytes[:0]
	for _, q := range kb {
		key = append(key,
			byte(q), byte(q>>8), byte(q>>16), byte(q>>24),
			byte(q>>32), byte(q>>40), byte(q>>48), byte(q>>56))
	}
	root.keyBytes = key

	if p := root.plans[string(key)]; p != nil && p.ver == root.structVer {
		env.stats.PlanCacheHits.Add(1)
		return p.order
	}
	env.stats.PlanCacheMisses.Add(1)
	order := env.buildPlanLocked(seeds)
	if root.plans == nil {
		root.plans = make(map[string]*propPlan)
	}
	if len(root.plans) >= maxPlansPerScope {
		clear(root.plans)
	}
	root.plans[string(key)] = &propPlan{ver: root.structVer, order: order}
	return order
}

// buildPlanLocked computes the ordered affected-entry slice for seeds:
// the triggerable entries among the seeds and all their transitive
// triggerable dependents, in topological order of the dependency graph
// (edges run from dependency to dependent), ready entries processed in
// creation order for determinism. This is the plan-cache miss path;
// executing the result is refreshClosureLocked's job.
func (env *Env) buildPlanLocked(seeds []*entry) []*entry {
	affected := make(map[*entry]bool)
	var expand func(e *entry)
	expand = func(e *entry) {
		if affected[e] {
			return
		}
		if _, ok := e.handler.(triggerable); !ok {
			// Non-triggerable dependents absorb the notification:
			// on-demand handlers recompute on access anyway, and
			// periodic handlers follow their own schedule.
			return
		}
		affected[e] = true
		for d := range e.dependents {
			expand(d)
		}
	}
	for _, s := range seeds {
		expand(s)
	}
	if len(affected) == 0 {
		return nil
	}

	indeg := make(map[*entry]int, len(affected))
	for e := range affected {
		for _, g := range e.depGroups {
			for _, de := range g {
				if affected[de] {
					indeg[e]++
				}
			}
		}
	}
	ready := make([]*entry, 0, len(affected))
	for e := range affected {
		if indeg[e] == 0 {
			ready = append(ready, e)
		}
	}
	sortEntries(ready)
	order := make([]*entry, 0, len(affected))
	for len(ready) > 0 {
		e := ready[0]
		ready = ready[1:]
		order = append(order, e)
		next := make([]*entry, 0)
		for d := range e.dependents {
			if !affected[d] {
				continue
			}
			// Each edge between e and d may be declared several times
			// (multiple DepRefs); indeg counted each, so decrement per
			// declared edge.
			edges := 0
			for _, g := range d.depGroups {
				for _, de := range g {
					if de == e {
						edges++
					}
				}
			}
			indeg[d] -= edges
			if indeg[d] == 0 {
				next = append(next, d)
			}
		}
		sortEntries(next)
		ready = append(ready, next...)
	}
	if len(order) != len(affected) {
		// A cycle among triggered handlers would starve the queue;
		// inclusion-time cycle detection should make this impossible.
		panic(fmt.Sprintf("core: trigger propagation planned %d of %d entries (dependency cycle?)", len(order), len(affected)))
	}
	return order
}

// refreshClosureLocked refreshes the triggerable entries among seeds
// and all their transitive triggerable dependents, in topological
// order of the dependency graph, so every handler recomputes after all
// of its updated dependencies (the update-order requirement of Section
// 3.2.3). The lock of the component(s) holding the seeds must be held.
// The walk itself executes a (usually cached) propagation plan and is
// allocation-free on cache hits.
func (env *Env) refreshClosureLocked(seeds []*entry, now clock.Time) {
	if env.naivePropagation {
		env.refreshNaiveLocked(seeds, now)
		return
	}
	if len(seeds) == 0 {
		return
	}
	for _, e := range env.planFor(seeds) {
		env.stats.TriggerNotifications.Add(1)
		if t, ok := e.handler.(triggerable); ok {
			// Errors are stored in the handler and surface at the
			// consumer's next read.
			_ = t.refresh(now)
			// The refresh may have republished; deliver the transition
			// to delta dependents before the plan reaches them (the
			// topological order guarantees they come later).
			if e.deltaDeps > 0 {
				notifyDeltaLocked(e)
			}
		}
	}
}
