package core

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/clock"
)

// Degraded-mode tests: compute deadlines, circuit-breaker quarantine,
// and updater backpressure. All of them run on the virtual clock with a
// pool updater and are deterministic: the hung compute signals entry
// through a channel, and the deadline event is armed before the compute
// goroutine spawns, so a test that advances past the deadline always
// observes the timeout.

// waitStat polls an atomic counter until it reaches want. Used only for
// late-straggler accounting, where the counting goroutine is by design
// not synchronized with publication.
func waitStat(t *testing.T, c *atomic.Int64, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.Load() < want {
		if time.Now().After(deadline) {
			t.Fatalf("counter = %d, want %d", c.Load(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestQuarantineBreakerLifecycle drives the full breaker state machine
// deterministically: a healthy periodic handler hangs, times out twice,
// trips into quarantine (unscheduled, serving its stale-tagged
// last-good value), is re-probed on backoff through the bucketed
// scheduler, and recovers — with a triggered dependent observing the
// quarantine and the recovery through propagation, and the abandoned
// computes fenced off as late results.
func TestQuarantineBreakerLifecycle(t *testing.T) {
	vc := clock.NewVirtual()
	u := NewPoolUpdater(2)
	defer u.Stop()
	env := NewEnv(vc,
		WithUpdater(u),
		WithComputeDeadline(5),
		WithBreaker(BreakerPolicy{
			FailureThreshold: 2,
			FailureWindow:    100,
			ProbeBackoff:     7,
			MaxProbeBackoff:  28,
		}))
	r := env.NewRegistry("op")

	var hanging atomic.Bool
	entered := make(chan struct{}, 16)
	release := make(chan struct{})
	r.MustDefine(&Definition{
		Kind: "rate",
		Build: func(*BuildContext) (Handler, error) {
			return NewPeriodic(10, func(start, end clock.Time) (Value, error) {
				if hanging.Load() {
					entered <- struct{}{}
					<-release
				}
				return float64(end - start), nil
			}), nil
		},
	})
	r.MustDefine(&Definition{
		Kind: "cost",
		Deps: []DepRef{Dep(Self(), "rate")},
		Build: func(ctx *BuildContext) (Handler, error) {
			dep := ctx.Dep(0)
			return NewTriggered(func(clock.Time) (Value, error) {
				v, err := dep.Value()
				if err != nil {
					return v, err
				}
				return v.(float64) * 2, nil
			}), nil
		},
	})

	sub, err := r.Subscribe("cost")
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	defer sub.Unsubscribe()

	if hs, ok := r.Health("rate"); !ok || hs.State != Healthy {
		t.Fatalf("initial health = %+v ok=%v, want healthy", hs, ok)
	}

	// Failure 1: the boundary-10 compute hangs and times out at 15.
	hanging.Store(true)
	vc.Advance(10)
	<-entered // deadline event armed before the compute entered
	vc.Advance(5)
	env.Quiesce()
	if _, err := r.Peek("rate"); !errors.Is(err, ErrComputeTimeout) {
		t.Fatalf("after first timeout Peek error = %v, want ErrComputeTimeout", err)
	} else if errors.Is(err, ErrStale) {
		t.Fatalf("first timeout already stale-tagged: %v", err)
	}
	if hs, _ := r.Health("rate"); hs.State != Degraded || hs.RecentFailures != 1 {
		t.Fatalf("after first timeout health = %+v, want degraded with 1 failure", hs)
	}

	// Failure 2 at boundary 20 trips the breaker.
	vc.Advance(5)
	<-entered
	vc.Advance(5)
	env.Quiesce()
	v, err := r.Peek("rate")
	if !errors.Is(err, ErrStale) || !errors.Is(err, ErrComputeTimeout) {
		t.Fatalf("quarantined Peek error = %v, want ErrStale wrapping ErrComputeTimeout", err)
	}
	if v != 0.0 {
		// Last good value: the initial zero-width window publication.
		t.Fatalf("quarantined Peek value = %v, want last-good 0", v)
	}
	var stale *StaleError
	if !errors.As(err, &stale) {
		t.Fatalf("quarantined error %v is not a *StaleError", err)
	}
	if stale.Since != 20 {
		t.Fatalf("StaleError.Since = %d, want trip instant 20", stale.Since)
	}
	ageAtTrip := stale.Age()
	if hs, _ := r.Health("rate"); hs.State != Quarantined {
		t.Fatalf("health after trip = %+v, want quarantined", hs)
	}
	// The dependent observed the quarantine through propagation.
	if _, err := sub.Value(); !errors.Is(err, ErrStale) {
		t.Fatalf("dependent error after trip = %v, want ErrStale propagated", err)
	}

	// The stale age is live: it grows as the clock advances.
	vc.Advance(1) // t = 26
	if a := stale.Age(); a != ageAtTrip+1 {
		t.Fatalf("stale age after advance = %d, want %d", a, ageAtTrip+1)
	}

	// Probe 1: armed at trip+backoff = 27 through the bucketed
	// scheduler. Still hanging, so it enters the compute and times out
	// at its own deadline (27+5 = 32), re-arming on doubled backoff.
	vc.Advance(1) // t = 27: probe fires, probe compute dispatched
	<-entered     // probe deadline armed before the compute entered
	vc.Advance(5) // t = 32: probe deadline fires
	env.Quiesce()
	if hs, _ := r.Health("rate"); hs.State != Quarantined {
		t.Fatalf("health after failed probe = %+v, want quarantined again", hs)
	}
	if got := env.Stats().BreakerRecoveries.Load(); got != 0 {
		t.Fatalf("BreakerRecoveries = %d before any successful probe", got)
	}

	// Quarantine unscheduled the boundary cadence: between the failed
	// probe and the next one (27+14 = 41), the t=40 boundary that the
	// healthy schedule would have hit runs nothing.
	before := env.Stats().ComputeCalls.Load()
	vc.Advance(8) // t = 40
	env.Quiesce()
	if got := env.Stats().ComputeCalls.Load(); got != before {
		t.Fatalf("quarantined handler still computing: %d calls during quarantine", got-before)
	}

	// Heal the compute; probe 2 at t = 41 succeeds.
	hanging.Store(false)
	vc.Advance(1) // t = 41
	env.Quiesce()
	if hs, _ := r.Health("rate"); hs.State != Healthy {
		t.Fatalf("health after successful probe = %+v, want healthy", hs)
	}
	v, err = r.Peek("rate")
	if err != nil {
		t.Fatalf("recovered Peek = %v, %v", v, err)
	}
	recovered := v.(float64)
	if recovered <= 0 {
		t.Fatalf("recovered value = %v, want positive cumulative window", v)
	}
	// Recovery propagated to the dependent.
	if dv, err := sub.Value(); err != nil || dv.(float64) != recovered*2 {
		t.Fatalf("dependent after recovery = %v, %v; want %v", dv, err, recovered*2)
	}

	// The boundary cadence resumed on a fresh task.
	beforeUpdates := env.Stats().PeriodicUpdates.Load()
	vc.Advance(20)
	env.Quiesce()
	if got := env.Stats().PeriodicUpdates.Load(); got <= beforeUpdates {
		t.Fatalf("no periodic updates after recovery (%d -> %d)", beforeUpdates, got)
	}

	// Release the abandoned computes: their late results are fenced off
	// and counted, never published.
	cur, _ := r.Peek("rate")
	release <- struct{}{}
	release <- struct{}{}
	release <- struct{}{}
	waitStat(t, &env.Stats().LateResults, 3)
	if after, _ := r.Peek("rate"); after != cur {
		t.Fatalf("late result clobbered publication: %v -> %v", cur, after)
	}

	st := env.Stats()
	if st.Timeouts.Load() != 3 {
		t.Errorf("Timeouts = %d, want 3 (two ticks + one probe)", st.Timeouts.Load())
	}
	if st.BreakerTrips.Load() != 1 {
		t.Errorf("BreakerTrips = %d, want 1", st.BreakerTrips.Load())
	}
	if st.BreakerRecoveries.Load() != 1 {
		t.Errorf("BreakerRecoveries = %d, want 1", st.BreakerRecoveries.Load())
	}
}

// TestDeadlineGenerationFence: a timed-out compute that eventually
// finishes must never overwrite the newer publication that happened
// while it was hung.
func TestDeadlineGenerationFence(t *testing.T) {
	vc := clock.NewVirtual()
	u := NewPoolUpdater(2)
	defer u.Stop()
	env := NewEnv(vc, WithUpdater(u), WithComputeDeadline(5))
	r := env.NewRegistry("op")

	var hangFirst atomic.Bool
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	r.MustDefine(&Definition{
		Kind: "sel",
		Build: func(*BuildContext) (Handler, error) {
			return NewPeriodic(10, func(start, end clock.Time) (Value, error) {
				if hangFirst.CompareAndSwap(true, false) {
					entered <- struct{}{}
					<-release
					return -1.0, nil // stale result from the stuck window
				}
				return float64(end), nil
			}), nil
		},
	})
	sub, err := r.Subscribe("sel")
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	defer sub.Unsubscribe()

	hangFirst.Store(true)
	vc.Advance(10)
	<-entered
	vc.Advance(5) // deadline at 15: timeout published
	env.Quiesce()
	if _, err := sub.Value(); !errors.Is(err, ErrComputeTimeout) {
		t.Fatalf("value after deadline = %v, want ErrComputeTimeout", err)
	}
	if got := env.Stats().Timeouts.Load(); got != 1 {
		t.Fatalf("Timeouts = %d, want 1", got)
	}

	// The next boundary publishes a fresh healthy value.
	vc.Advance(5)
	env.Quiesce()
	v, err := sub.Value()
	if err != nil || v.(float64) != 20 {
		t.Fatalf("post-recovery value = %v, %v; want 20", v, err)
	}

	// Now the hung compute returns; the generation fence must discard
	// its result (-1) instead of clobbering the newer publication.
	close(release)
	waitStat(t, &env.Stats().LateResults, 1)
	if v, err := sub.Value(); err != nil || v.(float64) != 20 {
		t.Fatalf("late result clobbered newer publication: %v, %v", v, err)
	}
}

// TestDeadlineInlineEnvInert: deadlines require an asynchronous
// updater; on an inline env the option is accepted but computations run
// unbounded (a deadline wait on the clock goroutine could never fire).
func TestDeadlineInlineEnvInert(t *testing.T) {
	env := NewEnv(clock.NewVirtual(), WithComputeDeadline(5))
	r := env.NewRegistry("op")
	r.MustDefine(&Definition{
		Kind: "x",
		Build: func(*BuildContext) (Handler, error) {
			return NewOnDemand(func(now clock.Time) (Value, error) { return 1.0, nil }), nil
		},
	})
	sub, err := r.Subscribe("x")
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	defer sub.Unsubscribe()
	if v, err := sub.Value(); err != nil || v.(float64) != 1.0 {
		t.Fatalf("Value = %v, %v", v, err)
	}
	if got := env.deadlineFor(nil); got != 0 {
		t.Fatalf("inline env deadlineFor = %d, want 0", got)
	}
}

// TestQuarantineOnDemandPanics: the breaker also contains repeatedly
// panicking on-demand items, without deadlines and on an inline env —
// Value() serves the last good result tagged stale and a probe closes
// the breaker.
func TestQuarantineOnDemandPanics(t *testing.T) {
	vc := clock.NewVirtual()
	env := NewEnv(vc, WithBreaker(BreakerPolicy{
		FailureThreshold: 3,
		FailureWindow:    100,
		ProbeBackoff:     10,
		MaxProbeBackoff:  40,
	}))
	r := env.NewRegistry("op")
	var broken atomic.Bool
	r.MustDefine(&Definition{
		Kind: "mem",
		Build: func(*BuildContext) (Handler, error) {
			return NewOnDemand(func(now clock.Time) (Value, error) {
				if broken.Load() {
					panic("estimator corrupted")
				}
				return 42.0, nil
			}), nil
		},
	})
	sub, err := r.Subscribe("mem")
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	defer sub.Unsubscribe()

	if v, err := sub.Value(); err != nil || v.(float64) != 42.0 {
		t.Fatalf("healthy Value = %v, %v", v, err)
	}

	broken.Store(true)
	for i := 0; i < 3; i++ {
		if _, err := sub.Value(); !errors.Is(err, ErrComputePanic) && !errors.Is(err, ErrStale) {
			t.Fatalf("failure %d: err = %v", i, err)
		}
	}
	if hs, _ := r.Health("mem"); hs.State != Quarantined {
		t.Fatalf("health = %+v, want quarantined after 3 panics", hs)
	}
	// Quarantined reads serve the last good value, stale-tagged, and do
	// not invoke the panicking compute.
	before := env.Stats().ComputeCalls.Load()
	v, err := sub.Value()
	if !errors.Is(err, ErrStale) || !errors.Is(err, ErrComputePanic) {
		t.Fatalf("quarantined err = %v, want ErrStale wrapping ErrComputePanic", err)
	}
	if v.(float64) != 42.0 {
		t.Fatalf("quarantined value = %v, want last-good 42", v)
	}
	if got := env.Stats().ComputeCalls.Load(); got != before {
		t.Fatalf("quarantined on-demand read still computed (%d calls)", got-before)
	}

	// Heal and let the probe close the breaker.
	broken.Store(false)
	vc.Advance(10)
	if hs, _ := r.Health("mem"); hs.State != Healthy {
		t.Fatalf("health after probe = %+v, want healthy", hs)
	}
	if v, err := sub.Value(); err != nil || v.(float64) != 42.0 {
		t.Fatalf("recovered Value = %v, %v", v, err)
	}
	if got := env.Stats().BreakerRecoveries.Load(); got != 1 {
		t.Fatalf("BreakerRecoveries = %d, want 1", got)
	}
}

// TestBackpressureShedsSupersededBatches: with a bounded queue, a
// periodic scope batch still queued when the same scope's next boundary
// arrives is superseded by it — dropped and counted, never run twice —
// while must-run submissions are never dropped even over capacity.
func TestBackpressureShedsSupersededBatches(t *testing.T) {
	vc := clock.NewVirtual()
	u := NewPoolUpdater(1, WithQueueCapacity(4))
	defer u.Stop()
	env := NewEnv(vc, WithUpdater(u))
	r := env.NewRegistry("op")
	var computes atomic.Int64
	r.MustDefine(&Definition{
		Kind: "rate",
		Build: func(*BuildContext) (Handler, error) {
			return NewPeriodic(10, func(start, end clock.Time) (Value, error) {
				computes.Add(1)
				return float64(end - start), nil
			}), nil
		},
	})
	sub, err := r.Subscribe("rate")
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	defer sub.Unsubscribe()

	// Wedge the single worker so boundary batches pile up in the queue.
	started := make(chan struct{})
	blocker := make(chan struct{})
	u.Submit(func() { close(started); <-blocker })
	<-started

	// Three boundaries while the worker is stuck: the first batch
	// queues, the next two supersede it in place.
	vc.Advance(10)
	vc.Advance(10)
	vc.Advance(10)
	if got := env.Stats().ShedTicks.Load(); got != 2 {
		t.Fatalf("ShedTicks = %d, want 2 superseded batches", got)
	}

	close(blocker)
	env.Quiesce()
	// Exactly one batch ran (the latest boundary), computing the full
	// cumulative window [0, 30]: shedding cost latency, not data.
	if got := computes.Load(); got != 2 { // initial zero-width + one batch
		t.Fatalf("computes = %d, want 2 (initial + one coalesced batch)", got)
	}
	if v, err := sub.Value(); err != nil || v.(float64) != 30 {
		t.Fatalf("value = %v, %v; want full window 30", v, err)
	}
	if hw := env.Stats().QueueHighWater.Load(); hw < 1 {
		t.Fatalf("QueueHighWater = %d, want >= 1", hw)
	}
}

// TestBackpressureMustRunNeverDropped: must-run submissions (the class
// carrying triggered propagations) always enqueue, even when the queue
// is far over its sheddable capacity.
func TestBackpressureMustRunNeverDropped(t *testing.T) {
	u := NewPoolUpdater(1, WithQueueCapacity(2)).(*poolUpdater)
	defer u.Stop()

	started := make(chan struct{})
	blocker := make(chan struct{})
	u.Submit(func() { close(started); <-blocker })
	<-started

	var ran atomic.Int64
	for i := 0; i < 10; i++ {
		u.Submit(func() { ran.Add(1) })
	}
	// With the queue already over capacity, sheddable submissions with
	// distinct keys (no coalescing target) are shed outright.
	var shedRan atomic.Int64
	for i := 0; i < 5; i++ {
		u.SubmitSheddable(i, func() { shedRan.Add(1) })
	}
	close(blocker)
	u.WaitIdle()
	if got := ran.Load(); got != 10 {
		t.Fatalf("must-run tasks executed = %d, want all 10", got)
	}
	if got := shedRan.Load(); got != 0 {
		t.Fatalf("sheddable tasks ran over capacity = %d, want all shed", got)
	}
}

// TestBackpressureCoalesceKeepsNewest: superseding replaces the queued
// function, so the batch that runs is the newest one for the key.
func TestBackpressureCoalesceKeepsNewest(t *testing.T) {
	u := NewPoolUpdater(1, WithQueueCapacity(4)).(*poolUpdater)
	defer u.Stop()

	started := make(chan struct{})
	blocker := make(chan struct{})
	u.Submit(func() { close(started); <-blocker })
	<-started

	var got atomic.Int64
	key := "scope"
	u.SubmitSheddable(key, func() { got.Store(1) })
	u.SubmitSheddable(key, func() { got.Store(2) })
	u.SubmitSheddable(key, func() { got.Store(3) })
	close(blocker)
	u.WaitIdle()
	if got.Load() != 3 {
		t.Fatalf("coalesced run = %d, want newest (3)", got.Load())
	}
}

// TestPoolUpdaterSheddableAfterStopIsNoop: like Submit, SubmitSheddable
// after Stop must neither run nor enqueue into the dead queue.
func TestPoolUpdaterSheddableAfterStopIsNoop(t *testing.T) {
	u := NewPoolUpdater(1, WithQueueCapacity(2)).(*poolUpdater)
	u.Stop()
	ran := false
	u.SubmitSheddable("k", func() { ran = true })
	u.WaitIdle()
	if ran {
		t.Fatal("sheddable task ran after Stop")
	}
	if u.queue.Len() != 0 {
		t.Fatalf("task enqueued into stopped updater (len %d)", u.queue.Len())
	}
}
