package core

import (
	"errors"
	"testing"
)

func TestFloatConversions(t *testing.T) {
	cases := []struct {
		in   Value
		want float64
	}{
		{float64(1.5), 1.5},
		{float32(2), 2},
		{int(3), 3},
		{int8(-8), -8},
		{int16(-300), -300},
		{int32(4), 4},
		{int64(5), 5},
		{uint(6), 6},
		{uint8(200), 200},
		{uint16(60000), 60000},
		{uint32(4000000000), 4000000000},
		{uint64(7), 7},
	}
	for _, c := range cases {
		got, err := Float(c.in)
		if err != nil || got != c.want {
			t.Errorf("Float(%T %v) = %v, %v", c.in, c.in, got, err)
		}
	}
}

func TestFloatErrors(t *testing.T) {
	if _, err := Float(nil); !errors.Is(err, ErrNoValue) {
		t.Fatalf("Float(nil) err = %v, want ErrNoValue", err)
	}
	if _, err := Float("str"); !errors.Is(err, ErrNotNumeric) {
		t.Fatalf("Float(string) err = %v, want ErrNotNumeric", err)
	}
}

func TestMustFloatPanicsOnNonNumeric(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustFloat did not panic")
		}
	}()
	MustFloat("nope")
}

func TestMustFloatOK(t *testing.T) {
	if got := MustFloat(2.5); got != 2.5 {
		t.Fatalf("MustFloat = %v", got)
	}
}

func TestStatsSnapshotSub(t *testing.T) {
	var s Stats
	s.HandlersCreated.Add(5)
	s.PeriodicUpdates.Add(3)
	s.OnDemandComputes.Add(2)
	s.TriggeredUpdates.Add(1)
	s.MemoHits.Add(6)
	s.MemoMisses.Add(2)
	s.CoalescedReads.Add(1)
	a := s.Snapshot()
	s.HandlersCreated.Add(1)
	s.PeriodicUpdates.Add(4)
	s.MemoHits.Add(9)
	s.MemoMisses.Add(1)
	s.CoalescedReads.Add(3)
	b := s.Snapshot()
	d := b.Sub(a)
	if d.HandlersCreated != 1 || d.PeriodicUpdates != 4 {
		t.Fatalf("Sub = %+v", d)
	}
	if d.MemoHits != 9 || d.MemoMisses != 1 || d.CoalescedReads != 3 {
		t.Fatalf("memo counters Sub = hits %d misses %d coalesced %d, want 9/1/3",
			d.MemoHits, d.MemoMisses, d.CoalescedReads)
	}
	if got := b.UpdateWork(); got != 3+4+2+1 {
		t.Fatalf("UpdateWork = %d, want 10", got)
	}
}

func TestMemoHitRate(t *testing.T) {
	if got := (Snapshot{}).MemoHitRate(); got != 0 {
		t.Fatalf("MemoHitRate with no reads = %v, want 0", got)
	}
	s := Snapshot{MemoHits: 3, MemoMisses: 1}
	if got := s.MemoHitRate(); got != 0.75 {
		t.Fatalf("MemoHitRate = %v, want 0.75", got)
	}
}
