package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/clock"
)

// definePeriodicEnd defines kind as a periodic item whose published
// value is the window end — easy to predict after any advance.
func definePeriodicEnd(r *Registry, kind Kind, window clock.Duration) {
	r.MustDefine(&Definition{
		Kind: kind,
		Build: func(*BuildContext) (Handler, error) {
			return NewPeriodic(window, func(start, end clock.Time) (Value, error) {
				return float64(end), nil
			}), nil
		},
	})
}

// countingUpdater wraps an inner updater and counts Submit calls. It
// is deliberately NOT the inlineUpdater type, so the tick dispatch
// takes the Submit path even when the inner updater runs synchronously
// — that is what makes dispatches countable.
type countingUpdater struct {
	inner   Updater
	submits atomic.Int64
}

func (c *countingUpdater) Submit(fn func()) {
	c.submits.Add(1)
	c.inner.Submit(fn)
}
func (c *countingUpdater) WaitIdle() { c.inner.WaitIdle() }
func (c *countingUpdater) Stop()     { c.inner.Stop() }

// TestBatchedTicksSubmitCount pins the dispatch economics of the
// batched pipeline: N same-boundary handlers in one dependency scope
// cost one Updater.Submit per boundary, where the per-handler baseline
// (WithPerHandlerTicks) costs N.
func TestBatchedTicksSubmitCount(t *testing.T) {
	const n = 40
	run := func(opts ...EnvOption) (submits int64, env *Env) {
		vc := clock.NewVirtual()
		cu := &countingUpdater{inner: NewInlineUpdater()}
		env = NewEnv(vc, append(opts, WithUpdater(cu))...)
		r := env.NewRegistry("op")
		var subs []*Subscription
		for i := 0; i < n; i++ {
			kind := Kind(fmt.Sprintf("p%d", i))
			definePeriodicEnd(r, kind, 10)
			s, err := r.Subscribe(kind)
			if err != nil {
				t.Fatal(err)
			}
			subs = append(subs, s)
		}
		cu.submits.Store(0)
		for b := 0; b < 3; b++ {
			vc.Advance(10)
		}
		for _, s := range subs {
			s.Unsubscribe()
		}
		return cu.submits.Load(), env
	}

	batched, env := run()
	if batched != 3 {
		t.Fatalf("batched pipeline: %d submits for 3 boundaries, want 3", batched)
	}
	st := env.Stats().Snapshot()
	if st.ScopeBatches != 3 || st.BatchedTicks != 3*n {
		t.Fatalf("ScopeBatches=%d BatchedTicks=%d, want 3 / %d", st.ScopeBatches, st.BatchedTicks, 3*n)
	}
	if got := st.MeanBatchSize(); got != n {
		t.Fatalf("MeanBatchSize = %v, want %d", got, n)
	}

	perHandler, _ := run(WithPerHandlerTicks())
	if perHandler != 3*n {
		t.Fatalf("per-handler baseline: %d submits for 3 boundaries, want %d", perHandler, 3*n)
	}
	if perHandler < 5*batched {
		t.Fatalf("batching saves only %dx submits, want >= 5x", perHandler/batched)
	}
}

// TestPerHandlerTicksAblation pins the legacy semantics of the
// ablation mode: without coalescing, a triggered dependent of k
// same-boundary publishers refreshes k times per instant.
func TestPerHandlerTicksAblation(t *testing.T) {
	const k = 4
	vc := clock.NewVirtual()
	env := NewEnv(vc, WithPerHandlerTicks())
	r := env.NewRegistry("op")
	deps := make([]DepRef, 0, k)
	for i := 0; i < k; i++ {
		kind := Kind(fmt.Sprintf("p%d", i))
		definePeriodicEnd(r, kind, 10)
		deps = append(deps, Dep(Self(), kind))
	}
	defineDerived(r, "fanin", deps...)
	s, err := r.Subscribe("fanin")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Unsubscribe()

	before := env.Stats().TriggerNotifications.Load()
	vc.Advance(10)
	got := env.Stats().TriggerNotifications.Load() - before
	if got != k {
		t.Fatalf("ablation mode: fan-in refreshed %d times per boundary, want %d (uncoalesced)", got, k)
	}
	if v, err := s.Float(); err != nil || v != 4*10 {
		t.Fatalf("fanin = %v, %v; want 40", v, err)
	}
}

// TestSiblingValueReadMidBatch is the lock-footprint regression for
// the batched tick path: a periodic compute that reads its sibling's
// Value() mid-batch must not deadlock (value reads are lock-free; no
// structural lock is held while a window computes), and — because the
// batch publishes in arm order, dependencies before dependents — it
// reads the sibling's freshly published window.
func TestSiblingValueReadMidBatch(t *testing.T) {
	for _, pool := range []bool{false, true} {
		name := "inline"
		if pool {
			name = "pool"
		}
		t.Run(name, func(t *testing.T) {
			vc := clock.NewVirtual()
			var opts []EnvOption
			if pool {
				u := NewPoolUpdater(2)
				defer u.Stop()
				opts = append(opts, WithUpdater(u))
			}
			env := NewEnv(vc, opts...)
			r := env.NewRegistry("op")
			definePeriodicEnd(r, "a", 10)
			r.MustDefine(&Definition{
				Kind: "b",
				Deps: []DepRef{Dep(Self(), "a")},
				Build: func(ctx *BuildContext) (Handler, error) {
					h := ctx.Dep(0)
					return NewPeriodic(10, func(start, end clock.Time) (Value, error) {
						f, err := h.Float() // sibling read, mid-batch
						if err != nil {
							return nil, err
						}
						return f + 0.5, nil
					}), nil
				},
			})
			// Triggered sibling reading both during propagation, while
			// the scope lock is held.
			defineDerived(r, "t", Dep(Self(), "a"), Dep(Self(), "b"))
			s, err := r.Subscribe("t")
			if err != nil {
				t.Fatal(err)
			}
			defer s.Unsubscribe()

			vc.Advance(10)
			env.Quiesce()
			if v, err := r.Peek("a"); err != nil || v != 10.0 {
				t.Fatalf("a = %v, %v; want 10", v, err)
			}
			// b armed after its dependency a, so its compute saw a's
			// new window.
			if v, err := r.Peek("b"); err != nil || v != 10.5 {
				t.Fatalf("b = %v, %v; want 10.5", v, err)
			}
			if v, err := s.Float(); err != nil || v != 20.5 {
				t.Fatalf("t = %v, %v; want 20.5", v, err)
			}
		})
	}
}

// TestPlanCacheInvalidationChurn interleaves subscribe/unsubscribe/
// redefinition with periodic boundaries and verifies that propagation
// never executes a stale plan: values stay exactly predictable and
// the structural invariants hold after every step.
func TestPlanCacheInvalidationChurn(t *testing.T) {
	const k = 4
	vc := clock.NewVirtual()
	env := NewEnv(vc)
	r := env.NewRegistry("op")
	deps := make([]DepRef, 0, k)
	for i := 0; i < k; i++ {
		kind := Kind(fmt.Sprintf("p%d", i))
		definePeriodicEnd(r, kind, 5)
		deps = append(deps, Dep(Self(), kind))
	}
	defineDerived(r, "fanin", deps...)
	defineDerived(r, "churn", Dep(Self(), "p0"), Dep(Self(), "p1"))
	defineConst(r, "spare", 1.0)

	fanin, err := r.Subscribe("fanin")
	if err != nil {
		t.Fatal(err)
	}
	defer fanin.Unsubscribe()

	var churn *Subscription
	for i := 0; i < 50; i++ {
		vc.Advance(5)
		now := float64(env.Now())
		// fanin must track every boundary despite the churn below: a
		// stale plan would miss it (wrong value) or refresh a removed
		// churn handler (panic / error).
		if v, err := fanin.Float(); err != nil || v != k*now {
			t.Fatalf("round %d: fanin = %v, %v; want %v", i, v, err, k*now)
		}
		switch i % 4 {
		case 0: // add a second dependent mid-stream
			churn, err = r.Subscribe("churn")
			if err != nil {
				t.Fatal(err)
			}
		case 1:
			if v, err := churn.Float(); err != nil || v != 2*now {
				t.Fatalf("round %d: churn = %v, %v; want %v", i, v, err, 2*now)
			}
		case 2: // remove it again
			churn.Unsubscribe()
			churn = nil
		case 3: // redefine an unused item: conservative invalidation
			if err := r.Define(&Definition{
				Kind:  "spare",
				Build: func(*BuildContext) (Handler, error) { return NewStatic(2.0), nil },
			}); err != nil {
				t.Fatal(err)
			}
		}
		if errs := VerifyIntegrity(nil, r); len(errs) > 0 {
			t.Fatalf("round %d: integrity: %v", i, errs)
		}
	}
	st := env.Stats().Snapshot()
	if st.PlanCacheMisses == 0 || st.PlanCacheHits == 0 {
		t.Fatalf("plan cache never exercised: hits=%d misses=%d", st.PlanCacheHits, st.PlanCacheMisses)
	}
	// Churn invalidates every 4 boundaries, so there must be real
	// hits between invalidations AND real misses from invalidation.
	if st.PlanCacheMisses < 10 {
		t.Fatalf("plan cache misses = %d, want >= 10 (invalidation not happening?)", st.PlanCacheMisses)
	}
}

// TestPlanCacheChurnConcurrent runs the same churn against a pool
// updater from several goroutines; under -race this exercises the
// plan cache's single-writer-under-scope-lock discipline.
func TestPlanCacheChurnConcurrent(t *testing.T) {
	const k = 4
	vc := clock.NewVirtual()
	u := NewPoolUpdater(2)
	defer u.Stop()
	env := NewEnv(vc, WithUpdater(u))
	r := env.NewRegistry("op")
	deps := make([]DepRef, 0, k)
	for i := 0; i < k; i++ {
		kind := Kind(fmt.Sprintf("p%d", i))
		definePeriodicEnd(r, kind, 5)
		deps = append(deps, Dep(Self(), kind))
	}
	defineDerived(r, "fanin", deps...)
	defineDerived(r, "churn", Dep(Self(), "p1"), Dep(Self(), "p2"))

	fanin, err := r.Subscribe("fanin")
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // clock driver (advances must not be re-entrant)
		defer wg.Done()
		for i := 0; i < 100; i++ {
			vc.Advance(5)
		}
	}()
	go func() { // subscription churn
		defer wg.Done()
		for i := 0; i < 100; i++ {
			s, err := r.Subscribe("churn")
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := s.Value(); err != nil {
				t.Error(err)
				return
			}
			s.Unsubscribe()
		}
	}()
	wg.Wait()
	env.Quiesce()

	if v, err := fanin.Float(); err != nil || v != k*float64(env.Now()) {
		t.Fatalf("fanin = %v, %v; want %v", v, err, k*float64(env.Now()))
	}
	fanin.Unsubscribe()
	if errs := VerifyIntegrity(map[ItemKey]int{}, r); len(errs) > 0 {
		t.Fatalf("integrity: %v", errs)
	}
	st := env.Stats().Snapshot()
	if st.HandlersCreated != st.HandlersRemoved {
		t.Fatalf("handler leak: %d created, %d removed", st.HandlersCreated, st.HandlersRemoved)
	}
}
