package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/clock"
)

func TestOnDemandComputesEveryAccess(t *testing.T) {
	env, vc := testEnv()
	r := env.NewRegistry("n1")
	calls := 0
	r.MustDefine(&Definition{Kind: "x", Build: func(*BuildContext) (Handler, error) {
		return NewOnDemand(func(now clock.Time) (Value, error) {
			calls++
			return float64(now), nil
		}), nil
	}})
	s, _ := r.Subscribe("x")
	defer s.Unsubscribe()
	vc.Advance(5)
	if v, _ := s.Float(); v != 5 {
		t.Fatalf("value = %v, want 5 (exact at access time)", v)
	}
	vc.Advance(5)
	if v, _ := s.Float(); v != 10 {
		t.Fatalf("value = %v, want 10", v)
	}
	if calls != 2 {
		t.Fatalf("compute calls = %d, want 2", calls)
	}
	if got := env.Stats().OnDemandComputes.Load(); got != 2 {
		t.Fatalf("OnDemandComputes = %d, want 2", got)
	}
}

func TestOnDemandErrorPropagates(t *testing.T) {
	env, _ := testEnv()
	r := env.NewRegistry("n1")
	boom := errors.New("boom")
	r.MustDefine(&Definition{Kind: "x", Build: func(*BuildContext) (Handler, error) {
		return NewOnDemand(func(clock.Time) (Value, error) { return nil, boom }), nil
	}})
	s, _ := r.Subscribe("x")
	defer s.Unsubscribe()
	if _, err := s.Value(); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

// TestPeriodicWindowSemantics checks the mechanism of Section 3.2.2: a
// counter probe gathers during each window; at the window boundary the
// rate for the elapsed window is published and served until the next
// boundary.
func TestPeriodicWindowSemantics(t *testing.T) {
	env, vc := testEnv()
	r := env.NewRegistry("n1")
	var count Counter
	r.MustDefine(&Definition{
		Kind:  "inputRate",
		Probe: &count,
		Build: func(*BuildContext) (Handler, error) {
			return NewPeriodic(50, func(start, end clock.Time) (Value, error) {
				w := end.Sub(start)
				if w == 0 {
					return 0.0, nil
				}
				return float64(count.Take()) / float64(w), nil
			}), nil
		},
	})
	s, _ := r.Subscribe("inputRate")
	defer s.Unsubscribe()

	// Initial value (zero-width window) is 0.
	if v, _ := s.Float(); v != 0 {
		t.Fatalf("initial value = %v, want 0", v)
	}

	// One element every 10 units: true rate 0.1 (Figure 4).
	for i := 1; i <= 10; i++ {
		vc.Advance(10)
		count.Inc()
	}
	// The clock passed boundaries at 50 and 100; elements are counted
	// after the advance that crosses the boundary, so window [0,50)
	// saw 4 increments and [50,100) saw 5; we only assert the steady
	// published value below using exact phase control.
	if v, _ := s.Float(); v <= 0 || v > 0.2 {
		t.Fatalf("published rate = %v, want ~0.1", v)
	}
}

// TestPeriodicExactRate drives arrivals as clock events so counting
// happens exactly at arrival times; every published window then holds
// exactly 5 elements and the rate is exactly 0.1.
func TestPeriodicExactRate(t *testing.T) {
	env, vc := testEnv()
	r := env.NewRegistry("n1")
	var count Counter
	r.MustDefine(&Definition{
		Kind:  "inputRate",
		Probe: &count,
		Build: func(*BuildContext) (Handler, error) {
			return NewPeriodic(50, func(start, end clock.Time) (Value, error) {
				w := end.Sub(start)
				if w == 0 {
					return 0.0, nil
				}
				return float64(count.Take()) / float64(w), nil
			}), nil
		},
	})
	s, _ := r.Subscribe("inputRate")
	defer s.Unsubscribe()

	// Arrivals at 5, 15, 25, ... — 5 per 50-unit window, rate 0.1.
	for i := 0; i < 40; i++ {
		vc.Schedule(clock.Time(5+10*i), func(clock.Time) { count.Inc() })
	}
	vc.Advance(100)
	if v, _ := s.Float(); v != 0.1 {
		t.Fatalf("rate after two windows = %v, want exactly 0.1", v)
	}
	// Isolation condition: many consumers read concurrently-ish; all
	// see the same published value, and reading does not disturb the
	// measurement.
	s2, _ := r.Subscribe("inputRate")
	defer s2.Unsubscribe()
	for i := 0; i < 10; i++ {
		v1, _ := s.Float()
		v2, _ := s2.Float()
		if v1 != 0.1 || v2 != 0.1 {
			t.Fatalf("concurrent reads diverged: %v %v", v1, v2)
		}
	}
	vc.Advance(300)
	if v, _ := s.Float(); v != 0.1 {
		t.Fatalf("rate after more windows = %v, want 0.1 (reads must not reset the counter)", v)
	}
	if got := env.Stats().PeriodicUpdates.Load(); got != 8 {
		t.Fatalf("PeriodicUpdates = %d, want 8 (one per 50-unit window over 400 units)", got)
	}
}

func TestPeriodicStopsOnUnsubscribe(t *testing.T) {
	env, vc := testEnv()
	r := env.NewRegistry("n1")
	r.MustDefine(&Definition{Kind: "p", Build: func(*BuildContext) (Handler, error) {
		return NewPeriodic(10, func(a, b clock.Time) (Value, error) { return 1.0, nil }), nil
	}})
	s, _ := r.Subscribe("p")
	vc.Advance(35)
	if got := env.Stats().PeriodicUpdates.Load(); got != 3 {
		t.Fatalf("PeriodicUpdates = %d, want 3", got)
	}
	s.Unsubscribe()
	vc.Advance(100)
	if got := env.Stats().PeriodicUpdates.Load(); got != 3 {
		t.Fatalf("periodic handler kept updating after removal: %d updates", got)
	}
	if got := vc.PendingEvents(); got != 0 {
		t.Fatalf("%d clock events leaked after unsubscribe", got)
	}
}

func TestPeriodicZeroWindowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPeriodic(0) did not panic")
		}
	}()
	NewPeriodic(0, func(a, b clock.Time) (Value, error) { return nil, nil })
}

func TestTriggeredPrecomputedOnSubscription(t *testing.T) {
	env, _ := testEnv()
	r := env.NewRegistry("n1")
	calls := 0
	defineConst(r, "base", 7.0)
	r.MustDefine(&Definition{
		Kind: "t",
		Deps: []DepRef{Dep(Self(), "base")},
		Build: func(ctx *BuildContext) (Handler, error) {
			dep := ctx.Dep(0)
			return NewTriggered(func(clock.Time) (Value, error) {
				calls++
				return dep.Float()
			}), nil
		},
	})
	s, _ := r.Subscribe("t")
	defer s.Unsubscribe()
	if calls != 1 {
		t.Fatalf("compute calls = %d, want 1 (pre-computed at subscription)", calls)
	}
	// Reads serve the cached value without recomputation.
	for i := 0; i < 5; i++ {
		if v, _ := s.Float(); v != 7 {
			t.Fatalf("value = %v, want 7", v)
		}
	}
	if calls != 1 {
		t.Fatalf("reads recomputed a triggered handler (%d calls)", calls)
	}
}

// TestTriggeredRefreshOnPeriodicDependency reproduces the dependency of
// Section 3.2.3: refreshing the measured input rate triggers the update
// of the measured average input rate.
func TestTriggeredRefreshOnPeriodicDependency(t *testing.T) {
	env, vc := testEnv()
	r := env.NewRegistry("n1")
	var count Counter
	r.MustDefine(&Definition{
		Kind:  "inputRate",
		Probe: &count,
		Build: func(*BuildContext) (Handler, error) {
			return NewPeriodic(10, func(start, end clock.Time) (Value, error) {
				w := end.Sub(start)
				if w == 0 {
					return 0.0, nil
				}
				return float64(count.Take()) / float64(w), nil
			}), nil
		},
	})
	r.MustDefine(&Definition{
		Kind: "avgInputRate",
		Deps: []DepRef{Dep(Self(), "inputRate")},
		Build: func(ctx *BuildContext) (Handler, error) {
			dep := ctx.Dep(0)
			n, sum := 0.0, 0.0
			return NewTriggered(func(clock.Time) (Value, error) {
				v, err := dep.Float()
				if err != nil {
					return nil, err
				}
				n++
				sum += v
				return sum / n, nil
			}), nil
		},
	})
	s, _ := r.Subscribe("avgInputRate")
	defer s.Unsubscribe()

	// Windows: [0,10) 2 arrivals -> 0.2; [10,20) 1 -> 0.1; [20,30) 0 -> 0.
	for _, at := range []clock.Time{2, 6, 15} {
		vc.Schedule(at, func(clock.Time) { count.Inc() })
	}
	vc.Advance(30)
	// avg over initial precompute (0) + three published windows:
	// (0 + 0.2 + 0.1 + 0) / 4.
	want := (0.0 + 0.2 + 0.1 + 0.0) / 4
	if v, _ := s.Float(); math.Abs(v-want) > 1e-12 {
		t.Fatalf("avg = %v, want %v (every periodic update must trigger exactly one refresh)", v, want)
	}
	if got := env.Stats().TriggeredUpdates.Load(); got != 3 {
		t.Fatalf("TriggeredUpdates = %d, want 3", got)
	}
}

func TestTriggeredChainPropagatesRecursively(t *testing.T) {
	env, vc := testEnv()
	r := env.NewRegistry("n1")
	r.MustDefine(&Definition{Kind: "p", Build: func(*BuildContext) (Handler, error) {
		return NewPeriodic(10, func(start, end clock.Time) (Value, error) {
			return float64(end), nil
		}), nil
	}})
	defineDerived(r, "t1", Dep(Self(), "p"))
	defineDerived(r, "t2", Dep(Self(), "t1"))
	defineDerived(r, "t3", Dep(Self(), "t2"))
	s, _ := r.Subscribe("t3")
	defer s.Unsubscribe()
	vc.Advance(10)
	if v, _ := s.Float(); v != 10 {
		t.Fatalf("t3 = %v, want 10 (update must propagate through the whole chain)", v)
	}
	vc.Advance(10)
	if v, _ := s.Float(); v != 20 {
		t.Fatalf("t3 = %v, want 20", v)
	}
}

// TestDiamondPropagationOrder checks the update-order requirement of
// Section 3.3: in a diamond p -> (a, b) -> c, c must refresh exactly
// once per propagation wave and only after both a and b refreshed.
func TestDiamondPropagationOrder(t *testing.T) {
	env, vc := testEnv()
	r := env.NewRegistry("n1")
	r.MustDefine(&Definition{Kind: "p", Build: func(*BuildContext) (Handler, error) {
		return NewPeriodic(10, func(start, end clock.Time) (Value, error) {
			return float64(end), nil
		}), nil
	}})
	defineDerived(r, "a", Dep(Self(), "p"))
	defineDerived(r, "b", Dep(Self(), "p"))
	var refreshes []string
	r.MustDefine(&Definition{
		Kind: "c",
		Deps: []DepRef{Dep(Self(), "a"), Dep(Self(), "b")},
		Build: func(ctx *BuildContext) (Handler, error) {
			da, db := ctx.Dep(0), ctx.Dep(1)
			return NewTriggered(func(clock.Time) (Value, error) {
				refreshes = append(refreshes, "c")
				va, _ := da.Float()
				vb, _ := db.Float()
				return va + vb, nil
			}), nil
		},
	})
	s, _ := r.Subscribe("c")
	defer s.Unsubscribe()
	refreshes = nil
	vc.Advance(10)
	if len(refreshes) != 1 {
		t.Fatalf("c refreshed %d times in one wave, want 1 (topological order)", len(refreshes))
	}
	if v, _ := s.Float(); v != 20 {
		t.Fatalf("c = %v, want 20 (both branches must be fresh when c computes)", v)
	}
}

func TestFireEventRefreshesRegisteredHandlers(t *testing.T) {
	env, _ := testEnv()
	r := env.NewRegistry("n1")
	size := 100.0
	r.MustDefine(&Definition{
		Kind:   "windowSize",
		Events: []string{"windowSizeChanged"},
		Build: func(*BuildContext) (Handler, error) {
			return NewTriggered(func(clock.Time) (Value, error) { return size, nil }), nil
		},
	})
	defineDerived(r, "estValidity", Dep(Self(), "windowSize"))
	s, _ := r.Subscribe("estValidity")
	defer s.Unsubscribe()
	if v, _ := s.Float(); v != 100 {
		t.Fatalf("initial estValidity = %v, want 100", v)
	}
	size = 50
	r.FireEvent("windowSizeChanged")
	if v, _ := s.Float(); v != 50 {
		t.Fatalf("estValidity after event = %v, want 50", v)
	}
	if got := env.Stats().EventsFired.Load(); got != 1 {
		t.Fatalf("EventsFired = %d, want 1", got)
	}
}

func TestFireEventWithoutSubscribersIsNoop(t *testing.T) {
	env, _ := testEnv()
	r := env.NewRegistry("n1")
	r.FireEvent("nothing")
	if got := env.Stats().TriggeredUpdates.Load(); got != 0 {
		t.Fatalf("TriggeredUpdates = %d, want 0", got)
	}
}

func TestEventRegistrationRemovedOnUnsubscribe(t *testing.T) {
	env, _ := testEnv()
	r := env.NewRegistry("n1")
	calls := 0
	r.MustDefine(&Definition{
		Kind:   "x",
		Events: []string{"e"},
		Build: func(*BuildContext) (Handler, error) {
			return NewTriggered(func(clock.Time) (Value, error) {
				calls++
				return 1.0, nil
			}), nil
		},
	})
	s, _ := r.Subscribe("x")
	r.FireEvent("e")
	if calls != 2 { // precompute + event
		t.Fatalf("calls = %d, want 2", calls)
	}
	s.Unsubscribe()
	r.FireEvent("e")
	if calls != 2 {
		t.Fatalf("event refreshed a removed handler (calls = %d)", calls)
	}
}

// TestNotifyChanged covers the manual notification for on-demand
// dependencies (Section 3.2.3): a triggered handler depending on an
// on-demand item stays correct if the node fires a notification when
// the underlying state changes.
func TestNotifyChanged(t *testing.T) {
	env, _ := testEnv()
	r := env.NewRegistry("n1")
	state := 1.0
	r.MustDefine(&Definition{Kind: "memUsage", Build: func(*BuildContext) (Handler, error) {
		return NewOnDemand(func(clock.Time) (Value, error) { return state, nil }), nil
	}})
	defineDerived(r, "estCost", Dep(Self(), "memUsage"))
	s, _ := r.Subscribe("estCost")
	defer s.Unsubscribe()
	if v, _ := s.Float(); v != 1 {
		t.Fatalf("estCost = %v, want 1", v)
	}
	state = 5
	// Without notification the triggered handler still serves the old
	// pre-computed value.
	if v, _ := s.Float(); v != 1 {
		t.Fatalf("estCost = %v, want stale 1 before notification", v)
	}
	r.NotifyChanged("memUsage")
	if v, _ := s.Float(); v != 5 {
		t.Fatalf("estCost = %v, want 5 after NotifyChanged", v)
	}
}

func TestNotifyChangedOnAbsentItemIsNoop(t *testing.T) {
	env, _ := testEnv()
	r := env.NewRegistry("n1")
	defineConst(r, "x", 1.0)
	r.NotifyChanged("x") // not included: must not panic
}

func TestStaticHandlerLifecycle(t *testing.T) {
	h := NewStatic("schema")
	if v, err := h.Value(); err != nil || v != "schema" {
		t.Fatalf("Value = %v, %v", v, err)
	}
	if h.Mechanism() != StaticMechanism {
		t.Fatal("wrong mechanism")
	}
}

func TestValueAfterHandlerRemoval(t *testing.T) {
	env, _ := testEnv()
	r := env.NewRegistry("n1")
	r.MustDefine(&Definition{Kind: "od", Build: func(*BuildContext) (Handler, error) {
		return NewOnDemand(func(clock.Time) (Value, error) { return 1.0, nil }), nil
	}})
	r.MustDefine(&Definition{Kind: "p", Build: func(*BuildContext) (Handler, error) {
		return NewPeriodic(10, func(a, b clock.Time) (Value, error) { return 1.0, nil }), nil
	}})
	r.MustDefine(&Definition{Kind: "t", Build: func(*BuildContext) (Handler, error) {
		return NewTriggered(func(clock.Time) (Value, error) { return 1.0, nil }), nil
	}})
	for _, k := range []Kind{"od", "p", "t"} {
		s, _ := r.Subscribe(Kind(k))
		h := s.Handle()
		s.Unsubscribe()
		if _, err := h.Value(); !errors.Is(err, ErrUnsubscribed) {
			t.Fatalf("%s: read after removal: err = %v, want ErrUnsubscribed", k, err)
		}
	}
}
