package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/clock"
)

// wire connects registries: node's inputs/outputs resolvers return the
// given registries.
func wire(node *Registry, inputs, outputs []*Registry) {
	node.SetNeighbors(
		func() []*Registry { return inputs },
		func() []*Registry { return outputs },
	)
}

func TestInterNodeDependencyUpstream(t *testing.T) {
	env, _ := testEnv()
	src := env.NewRegistry("src")
	op := env.NewRegistry("op")
	wire(op, []*Registry{src}, nil)
	defineConst(src, "outputRate", 0.5)
	defineDerived(op, "estRate", Dep(Input(0), "outputRate"))
	s, err := op.Subscribe("estRate")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Unsubscribe()
	if !src.IsIncluded("outputRate") {
		t.Fatal("upstream dependency not included at the source node")
	}
	if v, _ := s.Float(); v != 0.5 {
		t.Fatalf("estRate = %v, want 0.5", v)
	}
}

func TestInterNodeDependencyDownstream(t *testing.T) {
	env, _ := testEnv()
	op := env.NewRegistry("op")
	sink := env.NewRegistry("sink")
	wire(op, nil, []*Registry{sink})
	defineConst(sink, "qosLatency", 100.0)
	defineDerived(op, "budget", Dep(Output(0), "qosLatency"))
	s, err := op.Subscribe("budget")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Unsubscribe()
	if v, _ := s.Float(); v != 100 {
		t.Fatalf("budget = %v, want 100 (QoS from the sink downstream)", v)
	}
}

func TestEachInputGroupsAllInputs(t *testing.T) {
	env, _ := testEnv()
	a := env.NewRegistry("a")
	b := env.NewRegistry("b")
	join := env.NewRegistry("join")
	wire(join, []*Registry{a, b}, nil)
	defineConst(a, "outputRate", 0.2)
	defineConst(b, "outputRate", 0.3)
	join.MustDefine(&Definition{
		Kind: "totalInputRate",
		Deps: []DepRef{Dep(EachInput(), "outputRate")},
		Build: func(ctx *BuildContext) (Handler, error) {
			handles := ctx.DepGroup(0)
			if len(handles) != 2 {
				t.Fatalf("DepGroup has %d handles, want 2", len(handles))
			}
			return NewTriggered(func(clock.Time) (Value, error) {
				sum := 0.0
				for _, h := range handles {
					f, err := h.Float()
					if err != nil {
						return nil, err
					}
					sum += f
				}
				return sum, nil
			}), nil
		},
	})
	s, err := join.Subscribe("totalInputRate")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Unsubscribe()
	if v, _ := s.Float(); v != 0.5 {
		t.Fatalf("totalInputRate = %v, want 0.5", v)
	}
}

func TestInputIndexOutOfRange(t *testing.T) {
	env, _ := testEnv()
	op := env.NewRegistry("op")
	wire(op, []*Registry{env.NewRegistry("a")}, nil)
	defineDerived(op, "x", Dep(Input(3), "y"))
	if _, err := op.Subscribe("x"); !errors.Is(err, ErrBadSelector) {
		t.Fatalf("err = %v, want ErrBadSelector", err)
	}
}

func TestOptionalDependencyMayBeEmpty(t *testing.T) {
	env, _ := testEnv()
	op := env.NewRegistry("op") // no inputs wired
	op.MustDefine(&Definition{
		Kind: "x",
		Deps: []DepRef{OptionalDep(EachInput(), "rate")},
		Build: func(ctx *BuildContext) (Handler, error) {
			if n := len(ctx.DepGroup(0)); n != 0 {
				t.Fatalf("optional group has %d handles, want 0", n)
			}
			return NewStatic(1.0), nil
		},
	})
	s, err := op.Subscribe("x")
	if err != nil {
		t.Fatal(err)
	}
	s.Unsubscribe()
}

// TestCrossNodeTriggerPropagation reproduces the recursive inter-node
// propagation of Section 2.5: the window's estimated output rate
// depends on its input's estimated output rate, and the join depends
// on both windows. A change at one source must ripple to the join.
func TestCrossNodeTriggerPropagation(t *testing.T) {
	env, _ := testEnv()
	src1 := env.NewRegistry("src1")
	src2 := env.NewRegistry("src2")
	w1 := env.NewRegistry("w1")
	w2 := env.NewRegistry("w2")
	join := env.NewRegistry("join")
	wire(w1, []*Registry{src1}, []*Registry{join})
	wire(w2, []*Registry{src2}, []*Registry{join})
	wire(join, []*Registry{w1, w2}, nil)

	rate1 := 0.1
	src1.MustDefine(&Definition{
		Kind:   "estOutputRate",
		Events: []string{"rateChanged"},
		Build: func(*BuildContext) (Handler, error) {
			return NewTriggered(func(clock.Time) (Value, error) { return rate1, nil }), nil
		},
	})
	defineConst(src2, "estOutputRate", 0.2)
	// Windows pass the estimate through.
	defineDerived(w1, "estOutputRate", Dep(Input(0), "estOutputRate"))
	defineDerived(w2, "estOutputRate", Dep(Input(0), "estOutputRate"))
	// The join sums its inputs' estimates.
	defineDerived(join, "estInputRate", Dep(Input(0), "estOutputRate"), Dep(Input(1), "estOutputRate"))

	s, err := join.Subscribe("estInputRate")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Unsubscribe()
	if v, _ := s.Float(); math.Abs(v-0.3) > 1e-12 {
		t.Fatalf("estInputRate = %v, want 0.3", v)
	}

	rate1 = 0.4
	src1.FireEvent("rateChanged")
	if v, _ := s.Float(); math.Abs(v-0.6) > 1e-12 {
		t.Fatalf("estInputRate = %v, want 0.6 (update must propagate across three nodes)", v)
	}
	// Unsubscribing the join must exclude everything upstream.
	s.Unsubscribe()
	for _, r := range []*Registry{src1, src2, w1, w2, join} {
		if n := len(r.Included()); n != 0 {
			t.Fatalf("%s still has %d included items after unsubscription", r.ID(), n)
		}
	}
}

// TestDuplicateNotificationsAvoided checks Section 3.2.3: when a node
// depends on the same upstream item twice, the dependent is refreshed
// once per wave, not once per edge.
func TestDuplicateNotificationsAvoided(t *testing.T) {
	env, _ := testEnv()
	src := env.NewRegistry("src")
	op := env.NewRegistry("op")
	wire(op, []*Registry{src}, nil)
	v := 1.0
	src.MustDefine(&Definition{
		Kind:   "rate",
		Events: []string{"changed"},
		Build: func(*BuildContext) (Handler, error) {
			return NewTriggered(func(clock.Time) (Value, error) { return v, nil }), nil
		},
	})
	refreshes := 0
	op.MustDefine(&Definition{
		Kind: "double",
		Deps: []DepRef{Dep(Input(0), "rate"), Dep(Input(0), "rate")},
		Build: func(ctx *BuildContext) (Handler, error) {
			a, b := ctx.Dep(0), ctx.Dep(1)
			return NewTriggered(func(clock.Time) (Value, error) {
				refreshes++
				va, _ := a.Float()
				vb, _ := b.Float()
				return va + vb, nil
			}), nil
		},
	})
	s, _ := op.Subscribe("double")
	defer s.Unsubscribe()
	if got := src.Refs("rate"); got != 2 {
		t.Fatalf("Refs(rate) = %d, want 2 (two declared edges)", got)
	}
	refreshes = 0
	v = 3
	src.FireEvent("changed")
	if refreshes != 1 {
		t.Fatalf("dependent refreshed %d times for one change, want 1", refreshes)
	}
	if got, _ := s.Float(); got != 6 {
		t.Fatalf("double = %v, want 6", got)
	}
}

func TestModuleMetadata(t *testing.T) {
	env, _ := testEnv()
	op := env.NewRegistry("join")
	left := env.NewRegistry("join.left")
	right := env.NewRegistry("join.right")
	op.AttachModule("left", left)
	op.AttachModule("right", right)
	defineConst(left, "memUsage", 100.0)
	defineConst(right, "memUsage", 50.0)
	defineDerived(op, "memUsage", Dep(Module("left"), "memUsage"), Dep(Module("right"), "memUsage"))
	s, err := op.Subscribe("memUsage")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Float(); v != 150 {
		t.Fatalf("memUsage = %v, want 150 (sum of module usages, Section 4.5)", v)
	}
	s.Unsubscribe()
	if left.IsIncluded("memUsage") || right.IsIncluded("memUsage") {
		t.Fatal("module items not excluded")
	}
}

func TestNestedModuleMetadataRecursion(t *testing.T) {
	env, _ := testEnv()
	op := env.NewRegistry("op")
	outer := env.NewRegistry("op.m")
	inner := env.NewRegistry("op.m.inner")
	op.AttachModule("m", outer)
	outer.AttachModule("inner", inner)
	defineConst(inner, "size", 8.0)
	defineDerived(outer, "size", Dep(Module("inner"), "size"))
	defineDerived(op, "size", Dep(Module("m"), "size"))
	s, err := op.Subscribe("size")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Unsubscribe()
	if v, _ := s.Float(); v != 8 {
		t.Fatalf("size = %v, want 8 (metadata framework applied recursively to nested modules)", v)
	}
}

func TestParentSelector(t *testing.T) {
	env, _ := testEnv()
	op := env.NewRegistry("op")
	mod := env.NewRegistry("op.m")
	op.AttachModule("m", mod)
	defineConst(op, "elementSize", 32.0)
	defineDerived(mod, "memUsage", Dep(Parent(), "elementSize"))
	s, err := mod.Subscribe("memUsage")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Unsubscribe()
	if v, _ := s.Float(); v != 32 {
		t.Fatalf("module memUsage = %v, want 32 (via parent)", v)
	}
}

func TestDetachModuleInUseFails(t *testing.T) {
	env, _ := testEnv()
	op := env.NewRegistry("op")
	mod := env.NewRegistry("op.m")
	op.AttachModule("m", mod)
	defineConst(mod, "x", 1.0)
	s, _ := mod.Subscribe("x")
	if err := op.DetachModule("m"); !errors.Is(err, ErrItemInUse) {
		t.Fatalf("DetachModule err = %v, want ErrItemInUse", err)
	}
	s.Unsubscribe()
	if err := op.DetachModule("m"); err != nil {
		t.Fatalf("DetachModule after release: %v", err)
	}
	if op.ModuleRegistry("m") != nil {
		t.Fatal("module still attached")
	}
	if err := op.DetachModule("m"); err != nil {
		t.Fatalf("detaching absent module should be a no-op, got %v", err)
	}
}

// TestDynamicDependencyResolution reproduces Section 4.4.3: item A is
// computable from B or C; when C is already included the resolver picks
// C, avoiding the inclusion cost of B.
func TestDynamicDependencyResolution(t *testing.T) {
	env, _ := testEnv()
	r := env.NewRegistry("n1")
	defineConst(r, "B", 10.0)
	defineConst(r, "C", 20.0)
	r.MustDefine(&Definition{
		Kind: "A",
		Deps: []DepRef{Dep(Self(), "B")}, // static default
		Resolve: func(rc *ResolveContext) []DepRef {
			if rc.IsIncluded(Self(), "C") {
				return []DepRef{Dep(Self(), "C")}
			}
			return []DepRef{Dep(Self(), "B")}
		},
		Build: func(ctx *BuildContext) (Handler, error) {
			dep := ctx.Dep(0)
			return NewTriggered(func(clock.Time) (Value, error) { return dep.Float() }), nil
		},
	})

	// Case 1: nothing included -> resolver picks B.
	s1, _ := r.Subscribe("A")
	if v, _ := s1.Float(); v != 10 {
		t.Fatalf("A = %v, want 10 via B", v)
	}
	if !r.IsIncluded("B") || r.IsIncluded("C") {
		t.Fatal("static default not used when nothing is included")
	}
	s1.Unsubscribe()

	// Case 2: C already included -> resolver redirects to C and B's
	// unnecessary inclusion is prevented.
	sc, _ := r.Subscribe("C")
	s2, _ := r.Subscribe("A")
	if v, _ := s2.Float(); v != 20 {
		t.Fatalf("A = %v, want 20 via C", v)
	}
	if r.IsIncluded("B") {
		t.Fatal("B included although C was available (dynamic resolution failed)")
	}
	s2.Unsubscribe()
	sc.Unsubscribe()
}

// TestInheritanceOverride reproduces Section 4.4.2: a specialized
// operator overrides the memory-usage item inherited from its super
// class to account for an additional data structure.
func TestInheritanceOverride(t *testing.T) {
	env, _ := testEnv()
	r := env.NewRegistry("op")
	// "Super class" definition.
	defineConst(r, "baseMem", 100.0)
	defineDerived(r, "memUsage", Dep(Self(), "baseMem"))
	// "Subclass" overrides memUsage to add its auxiliary index.
	defineConst(r, "indexMem", 40.0)
	defineDerived(r, "memUsage", Dep(Self(), "baseMem"), Dep(Self(), "indexMem"))

	s, err := r.Subscribe("memUsage")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Unsubscribe()
	if v, _ := s.Float(); v != 140 {
		t.Fatalf("memUsage = %v, want 140 (overridden definition must win)", v)
	}
}

func TestSelectorStrings(t *testing.T) {
	cases := map[string]Selector{
		"self":       Self(),
		"input(1)":   Input(1),
		"eachInput":  EachInput(),
		"output(0)":  Output(0),
		"eachOutput": EachOutput(),
		"module(m)":  Module("m"),
		"parent":     Parent(),
	}
	for want, sel := range cases {
		if got := sel.String(); got != want {
			t.Errorf("String = %q, want %q", got, want)
		}
	}
}
