package core

import (
	"fmt"
)

// Structural self-checking for the model-based correctness harness
// (internal/modelcheck) and for debugging. These checks have access to
// the framework's internals — entry reference counts, dependency
// multiplicities, the union-find scope forest — and verify the
// invariants the paper's semantics rely on:
//
//  1. handler lifecycle: every included item has a live handler, a
//     published snapshot pointer, and a positive reference count; no
//     handler exists for an item with zero references (removed entries
//     are unreachable).
//  2. refcount conservation: an item's reference count equals the
//     number of live external subscriptions plus the dependency-edge
//     multiplicities of its included dependents.
//  3. inclusion closure: every dependency handle of an included item
//     points at an entry that is itself included (present in its
//     registry's entry table), with symmetric dependent bookkeeping.
//  4. union-find scope consistency: registries connected by a live
//     dependency edge share a component root.
//  5. event-registration consistency: the per-registry event tables
//     and the entries' event lists mirror each other.

// ItemKey identifies one metadata item across registries, for the
// external-subscription counts passed to VerifyIntegrity.
type ItemKey struct {
	Registry string
	Kind     Kind
}

// ScopesUnlocked verifies that no component lock covering the given
// registries (or their attached modules, recursively) is currently
// held. It must only be called at a quiescent point — no structural
// operation in flight — where a held lock means a wedged scope. The
// probe uses TryLock, so a false positive is impossible: an error
// really means some goroutine still owns the lock.
func ScopesUnlocked(regs ...*Registry) error {
	var seen []*component
	for _, r := range withModules(regs) {
		root := find(r.comp)
		if rootsContain(seen, root) {
			continue
		}
		seen = append(seen, root)
		if !root.mu.TryLock() {
			return fmt.Errorf("core: scope lock of component %d (registry %s) is held at quiescence", root.id, r.id)
		}
		root.mu.Unlock()
	}
	return nil
}

// VerifyIntegrity checks the structural invariants above over the
// given registries and, recursively, their attached modules. ext maps
// each item to its number of live external subscriptions; pass nil to
// skip refcount conservation (invariant 2). The check locks the
// covering dependency scopes, so it must not be called while the
// caller already holds them. All violations found are returned, one
// error per violation.
func VerifyIntegrity(ext map[ItemKey]int, regs ...*Registry) []error {
	all := withModules(regs)
	if len(all) == 0 {
		return nil
	}
	env := all[0].env
	sc := env.lockScope(all...)
	defer sc.unlock()

	var errs []error
	bad := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf("core: integrity: "+format, args...))
	}
	inSet := make(map[*Registry]bool, len(all))
	for _, r := range all {
		inSet[r] = true
	}

	for _, r := range all {
		for kind, e := range r.entries {
			if e.kind != kind || e.reg != r {
				bad("%s/%s: entry filed under wrong key (%s/%s)", r.id, kind, e.reg.id, e.kind)
			}
			// Invariant 1: handler lifecycle.
			if e.refs < 1 {
				bad("%s/%s: included with refs=%d", r.id, kind, e.refs)
			}
			if e.handler == nil {
				bad("%s/%s: included without handler", r.id, kind)
			}
			if p := e.pub.Load(); p == nil {
				bad("%s/%s: included without published handler", r.id, kind)
			} else if *p != e.handler {
				bad("%s/%s: published handler does not match structural handler", r.id, kind)
			}
			if e.def == nil {
				bad("%s/%s: included without definition", r.id, kind)
			}

			// Invariant 3 + 4: dependency handles point at included
			// entries, with symmetric multiplicities, inside the same
			// dependency-scope component.
			mult := make(map[*entry]int)
			for _, g := range e.depGroups {
				for _, de := range g {
					mult[de]++
				}
			}
			for de, m := range mult {
				if de.reg.entries[de.kind] != de {
					bad("%s/%s: depends on %s/%s which is not included", r.id, kind, de.reg.id, de.kind)
					continue
				}
				if got := de.dependents[e]; got != m {
					bad("%s/%s: dependency %s/%s records multiplicity %d, handles say %d",
						r.id, kind, de.reg.id, de.kind, got, m)
				}
				if find(e.reg.comp) != find(de.reg.comp) {
					bad("%s/%s and dependency %s/%s are in different scope components",
						r.id, kind, de.reg.id, de.kind)
				}
				if !inSet[de.reg] {
					bad("%s/%s: dependency registry %s not covered by the check", r.id, kind, de.reg.id)
				}
			}
			for d, m := range e.dependents {
				if m < 1 {
					bad("%s/%s: dependent %s/%s with multiplicity %d", r.id, kind, d.reg.id, d.kind, m)
				}
				if d.reg.entries[d.kind] != d {
					bad("%s/%s: dependent %s/%s is not included", r.id, kind, d.reg.id, d.kind)
				}
			}
			if got := int(e.ndeps.Load()); got != len(e.dependents) {
				bad("%s/%s: ndeps mirror %d, dependents %d", r.id, kind, got, len(e.dependents))
			}

			// Invariant 2: refcount conservation.
			if ext != nil {
				want := ext[ItemKey{Registry: r.id, Kind: kind}]
				for _, m := range e.dependents {
					want += m
				}
				if e.refs != want {
					bad("%s/%s: refs=%d, want %d (external + dependent edges)", r.id, kind, e.refs, want)
				}
			}

			// Invariant 5: event registrations, entry side.
			for _, name := range e.events {
				if !r.events[name][e] {
					bad("%s/%s: missing from event table %q", r.id, kind, name)
				}
			}
		}

		// Invariant 5: event registrations, table side.
		for name, set := range r.events {
			if len(set) == 0 {
				bad("%s: empty event table %q not removed", r.id, name)
			}
			for e := range set {
				if e.reg.entries[e.kind] != e {
					bad("%s: event %q registers excluded item %s/%s", r.id, name, e.reg.id, e.kind)
				}
			}
		}
	}
	return errs
}

// withModules returns regs plus every transitively attached module
// registry, deduplicated, preserving discovery order.
func withModules(regs []*Registry) []*Registry {
	var out []*Registry
	seen := make(map[*Registry]bool)
	var add func(r *Registry)
	add = func(r *Registry) {
		if r == nil || seen[r] {
			return
		}
		seen[r] = true
		out = append(out, r)
		r.mu.RLock()
		mods := make([]*Registry, 0, len(r.modules))
		for _, m := range r.modules {
			mods = append(mods, m)
		}
		r.mu.RUnlock()
		for _, m := range mods {
			add(m)
		}
	}
	for _, r := range regs {
		add(r)
	}
	return out
}
