package core

import (
	"errors"
	"testing"

	"repro/internal/clock"
)

// FuzzResolveSelector drives selector resolution and the inclusion
// traversal with arbitrary selector shapes and dependency kinds over a
// small graph with inputs, outputs, and a module. Whatever the input,
// Subscribe must either succeed or fail with a classified error, leave
// no residue on failure, and never wedge a component lock.
func FuzzResolveSelector(f *testing.F) {
	f.Add(uint8(0), 0, "m", "leaf", false)
	f.Add(uint8(1), 0, "", "leaf", false)
	f.Add(uint8(1), 99, "", "leaf", true)
	f.Add(uint8(2), 0, "", "leaf", false)
	f.Add(uint8(3), 0, "", "leaf", false)
	f.Add(uint8(4), -1, "", "leaf", false)
	f.Add(uint8(5), 0, "m", "modItem", false)
	f.Add(uint8(5), 0, "nope", "leaf", true)
	f.Add(uint8(6), 0, "", "leaf", false)
	f.Add(uint8(0), 0, "", "probe", false) // self-cycle
	f.Add(uint8(0), 0, "", "zzz", false)   // unknown kind
	f.Fuzz(func(t *testing.T, selPick uint8, index int, name, depKind string, optional bool) {
		var sel Selector
		switch selPick % 7 {
		case 0:
			sel = Self()
		case 1:
			sel = Input(index)
		case 2:
			sel = EachInput()
		case 3:
			sel = Output(index)
		case 4:
			sel = EachOutput()
		case 5:
			sel = Module(name)
		case 6:
			sel = Parent()
		}

		env := NewEnv(clock.NewVirtual())
		up := env.NewRegistry("up")
		node := env.NewRegistry("node")
		down := env.NewRegistry("down")
		mod := env.NewRegistry("node.m")
		node.SetNeighbors(
			func() []*Registry { return []*Registry{up} },
			func() []*Registry { return []*Registry{down} },
		)
		node.AttachModule("m", mod)
		leaf := &Definition{
			Kind:  "leaf",
			Build: func(*BuildContext) (Handler, error) { return NewStatic(1.0), nil },
		}
		for _, r := range []*Registry{up, node, down, mod} {
			r.MustDefine(leaf)
		}
		mod.MustDefine(&Definition{
			Kind:  "modItem",
			Build: func(*BuildContext) (Handler, error) { return NewStatic(2.0), nil },
		})
		node.MustDefine(&Definition{
			Kind: "probe",
			Resolve: func(*ResolveContext) []DepRef {
				return []DepRef{{Target: sel, Kind: Kind(depKind), Optional: optional}}
			},
			Build: func(ctx *BuildContext) (Handler, error) { return NewStatic(3.0), nil },
		})

		// resolveSelector itself: never panics, never returns nil
		// registries, errors only for selectors not constructible via
		// the public API.
		for _, r := range []*Registry{up, node, down, mod} {
			regs, err := r.resolveSelector(sel)
			if err != nil {
				t.Fatalf("resolveSelector(%v) on %s: %v", sel, r.ID(), err)
			}
			for _, tr := range regs {
				if tr == nil {
					t.Fatalf("resolveSelector(%v) on %s returned a nil registry", sel, r.ID())
				}
			}
		}

		sub, err := node.Subscribe("probe")
		if err != nil {
			known := errors.Is(err, ErrUnknownItem) || errors.Is(err, ErrCycle) ||
				errors.Is(err, ErrBadSelector)
			if !known {
				t.Fatalf("Subscribe error not classified: %v", err)
			}
		} else {
			sub.Unsubscribe()
		}
		// Success or failure, the graph must drain clean with no held
		// locks and no leaked entries.
		regs := []*Registry{up, node, down, mod}
		for _, r := range regs {
			if inc := r.Included(); len(inc) > 0 {
				t.Fatalf("registry %s leaked entries %v", r.ID(), inc)
			}
		}
		if errs := VerifyIntegrity(map[ItemKey]int{}, regs...); len(errs) > 0 {
			t.Fatalf("integrity violations: %v", errs)
		}
		if err := ScopesUnlocked(regs...); err != nil {
			t.Fatal(err)
		}
	})
}
