package core

import "sort"

// ItemRef identifies an included metadata item for introspection: the
// registry it lives in, its kind, and its handler's mechanism.
type ItemRef struct {
	// RegistryID is the owning registry's identifier.
	RegistryID string
	// Kind is the item kind.
	Kind Kind
	// Mechanism is the handler's update mechanism.
	Mechanism Mechanism
}

// Modules returns the names of the attached module registries, sorted.
func (r *Registry) Modules() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.modules))
	for name := range r.modules {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Dependencies returns the items the included item kind currently
// depends on (after dependency resolution), or ok=false if the item is
// not included. The result reflects the live dependency graph — the
// structure a monitoring tool renders as Figure 3.
func (r *Registry) Dependencies(kind Kind) (deps []ItemRef, ok bool) {
	sc := r.env.lockScope(r)
	defer sc.unlock()
	e, exists := r.entries[kind]
	if !exists {
		return nil, false
	}
	for _, g := range e.depGroups {
		for _, de := range g {
			deps = append(deps, itemRefLocked(de))
		}
	}
	return deps, true
}

// Dependents returns the included items that currently depend on the
// item kind, or ok=false if it is not included.
func (r *Registry) Dependents(kind Kind) (deps []ItemRef, ok bool) {
	sc := r.env.lockScope(r)
	defer sc.unlock()
	e, exists := r.entries[kind]
	if !exists {
		return nil, false
	}
	for d := range e.dependents {
		deps = append(deps, itemRefLocked(d))
	}
	sort.Slice(deps, func(i, j int) bool {
		if deps[i].RegistryID != deps[j].RegistryID {
			return deps[i].RegistryID < deps[j].RegistryID
		}
		return deps[i].Kind < deps[j].Kind
	})
	return deps, true
}

// Ref returns the ItemRef of an included item.
func (r *Registry) Ref(kind Kind) (ItemRef, bool) {
	sc := r.env.lockScope(r)
	defer sc.unlock()
	e, exists := r.entries[kind]
	if !exists {
		return ItemRef{}, false
	}
	return itemRefLocked(e), true
}

// itemRefLocked builds an ItemRef; the owning component's lock must be
// held.
func itemRefLocked(e *entry) ItemRef {
	mech := StaticMechanism
	if e.handler != nil {
		mech = e.handler.Mechanism()
	}
	return ItemRef{RegistryID: e.reg.id, Kind: e.kind, Mechanism: mech}
}
