package core

import (
	"errors"
	"testing"

	"repro/internal/clock"
)

// Regression tests for the fault-degradation contract exercised by the
// model-based harness (internal/modelcheck): user-code panics surface
// as ErrComputePanic on Subscribe/Value without leaking references,
// wedging scope locks, or corrupting published snapshots.

// TestSubscribePanickingBuildLeavesNoResidue covers the seed-derived
// failure where a panicking Build unwound through Subscribe with the
// component lock still held, wedging the whole dependency scope.
func TestSubscribePanickingBuildLeavesNoResidue(t *testing.T) {
	env := NewEnv(clock.NewVirtual())
	r := env.NewRegistry("n")
	r.MustDefine(&Definition{
		Kind:  "dep",
		Build: func(*BuildContext) (Handler, error) { return NewStatic(1.0), nil },
	})
	r.MustDefine(&Definition{
		Kind: "top",
		Deps: []DepRef{Dep(Self(), "dep")},
		Build: func(*BuildContext) (Handler, error) {
			panic("boom at build time")
		},
	})

	_, err := r.Subscribe("top")
	if !errors.Is(err, ErrComputePanic) {
		t.Fatalf("Subscribe error = %v, want ErrComputePanic", err)
	}
	// The dependency included for the failed subscription must be
	// rolled back, and the scope lock released.
	if r.IsIncluded("dep") {
		t.Errorf("dep still included after failed subscription (ref leak)")
	}
	if err := ScopesUnlocked(r); err != nil {
		t.Fatalf("scope wedged after panicking Build: %v", err)
	}
	if errs := VerifyIntegrity(map[ItemKey]int{}, r); len(errs) > 0 {
		t.Fatalf("integrity violations: %v", errs)
	}
	// The registry must remain fully operational.
	sub, err := r.Subscribe("dep")
	if err != nil {
		t.Fatalf("Subscribe(dep) after failure: %v", err)
	}
	sub.Unsubscribe()
}

// TestPanickingResolveFailsSubscription: a panicking dynamic Resolve
// hook degrades to a failed subscription, not a wedged lock.
func TestPanickingResolveFailsSubscription(t *testing.T) {
	env := NewEnv(clock.NewVirtual())
	r := env.NewRegistry("n")
	r.MustDefine(&Definition{
		Kind:    "item",
		Resolve: func(*ResolveContext) []DepRef { panic("resolver bug") },
		Build:   func(*BuildContext) (Handler, error) { return NewStatic(1.0), nil },
	})
	_, err := r.Subscribe("item")
	if !errors.Is(err, ErrComputePanic) {
		t.Fatalf("Subscribe error = %v, want ErrComputePanic", err)
	}
	if err := ScopesUnlocked(r); err != nil {
		t.Fatalf("scope wedged after panicking Resolve: %v", err)
	}
}

// TestPanickingOnDemandComputeSurfacesOnValue: the panic converts to an
// error on each access; the handler and its locks stay usable.
func TestPanickingOnDemandComputeSurfacesOnValue(t *testing.T) {
	env := NewEnv(clock.NewVirtual())
	r := env.NewRegistry("n")
	calls := 0
	r.MustDefine(&Definition{
		Kind: "od",
		Build: func(*BuildContext) (Handler, error) {
			return NewOnDemand(func(clock.Time) (Value, error) {
				calls++
				if calls%2 == 1 {
					panic("intermittent")
				}
				return 42.0, nil
			}), nil
		},
	})
	sub, err := r.Subscribe("od")
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	defer sub.Unsubscribe()
	if _, err := sub.Value(); !errors.Is(err, ErrComputePanic) {
		t.Fatalf("first Value error = %v, want ErrComputePanic", err)
	}
	v, err := sub.Value()
	if err != nil || v != 42.0 {
		t.Fatalf("second Value = %v, %v, want 42", v, err)
	}
}

// TestPanickingPeriodicTickPublishesError: a panic during a window
// computation on the pool updater must not kill the worker or wedge
// the handler; the error is published and the next window recovers.
func TestPanickingPeriodicTickPublishesError(t *testing.T) {
	vc := clock.NewVirtual()
	u := NewPoolUpdater(2)
	defer u.Stop()
	env := NewEnv(vc, WithUpdater(u))
	r := env.NewRegistry("n")
	r.MustDefine(&Definition{
		Kind: "p",
		Build: func(*BuildContext) (Handler, error) {
			return NewPeriodic(5, func(start, end clock.Time) (Value, error) {
				if start > 0 && start < 10 {
					panic("tick bug")
				}
				return float64(end), nil
			}), nil
		},
	})
	sub, err := r.Subscribe("p")
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	defer sub.Unsubscribe()

	vc.Advance(5) // window [0,5) computes fine
	env.Quiesce()
	vc.Advance(5) // window [5,10) panics
	env.Quiesce()
	if _, err := sub.Value(); !errors.Is(err, ErrComputePanic) {
		t.Fatalf("Value after panicking tick = %v, want ErrComputePanic", err)
	}
	vc.Advance(5) // window [10,15) recovers
	env.Quiesce()
	v, err := sub.Value()
	if err != nil || v != 15.0 {
		t.Fatalf("Value after recovery = %v, %v, want 15", v, err)
	}
	if err := ScopesUnlocked(r); err != nil {
		t.Fatalf("scope wedged: %v", err)
	}
}

// TestPanickingTriggeredRefreshDoesNotStopPropagation: one faulty
// triggered handler must not prevent its siblings from refreshing.
func TestPanickingTriggeredRefreshDoesNotStopPropagation(t *testing.T) {
	env := NewEnv(clock.NewVirtual())
	r := env.NewRegistry("n")
	r.MustDefine(&Definition{
		Kind:   "bad",
		Events: []string{"ev"},
		Build: func(*BuildContext) (Handler, error) {
			first := true
			return NewTriggered(func(clock.Time) (Value, error) {
				if first { // initial pre-compute succeeds
					first = false
					return 0.0, nil
				}
				panic("refresh bug")
			}), nil
		},
	})
	good := 0
	r.MustDefine(&Definition{
		Kind:   "good",
		Events: []string{"ev"},
		Build: func(*BuildContext) (Handler, error) {
			return NewTriggered(func(clock.Time) (Value, error) {
				good++
				return float64(good), nil
			}), nil
		},
	})
	sb, err := r.Subscribe("bad")
	if err != nil {
		t.Fatalf("Subscribe(bad): %v", err)
	}
	defer sb.Unsubscribe()
	sg, err := r.Subscribe("good")
	if err != nil {
		t.Fatalf("Subscribe(good): %v", err)
	}
	defer sg.Unsubscribe()

	r.FireEvent("ev")
	if _, err := sb.Value(); !errors.Is(err, ErrComputePanic) {
		t.Fatalf("bad Value = %v, want ErrComputePanic", err)
	}
	if v, err := sg.Value(); err != nil || v != 2.0 {
		t.Fatalf("good Value = %v, %v, want 2 (initial + one refresh)", v, err)
	}
	if err := ScopesUnlocked(r); err != nil {
		t.Fatalf("scope wedged: %v", err)
	}
}

// TestVerifyIntegrityCleanGraph sanity-checks the checker itself on a
// healthy cross-registry graph with shared dependencies.
func TestVerifyIntegrityCleanGraph(t *testing.T) {
	env := NewEnv(clock.NewVirtual())
	up := env.NewRegistry("up")
	down := env.NewRegistry("down")
	down.SetNeighbors(func() []*Registry { return []*Registry{up} }, nil)
	up.MustDefine(&Definition{
		Kind:  "rate",
		Build: func(*BuildContext) (Handler, error) { return NewStatic(0.1), nil },
	})
	down.MustDefine(&Definition{
		Kind: "cost",
		Deps: []DepRef{Dep(Input(0), "rate")},
		Build: func(ctx *BuildContext) (Handler, error) {
			dep := ctx.Dep(0)
			return NewOnDemand(func(clock.Time) (Value, error) { return dep.Value() }), nil
		},
	})
	s1, err := down.Subscribe("cost")
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	s2, err := up.Subscribe("rate")
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	ext := map[ItemKey]int{
		{Registry: "down", Kind: "cost"}: 1,
		{Registry: "up", Kind: "rate"}:   1,
	}
	if errs := VerifyIntegrity(ext, up, down); len(errs) > 0 {
		t.Fatalf("integrity violations on clean graph: %v", errs)
	}
	s1.Unsubscribe()
	s2.Unsubscribe()
	if errs := VerifyIntegrity(map[ItemKey]int{}, up, down); len(errs) > 0 {
		t.Fatalf("integrity violations after release: %v", errs)
	}
	if up.IsIncluded("rate") || down.IsIncluded("cost") {
		t.Fatal("items still included after all unsubscriptions")
	}
}
