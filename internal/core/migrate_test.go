package core

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/clock"
)

// defineAdaptive defines kind as a migratable sum-of-deps-plus-offset
// item whose three maintenance forms compute the identical value, so
// tests can migrate it freely and assert exact values throughout.
func defineAdaptive(r *Registry, kind Kind, start Mechanism, window clock.Duration, offset float64, deps ...DepRef) {
	mk := func(ctx *BuildContext) func() (Value, error) {
		var handles []*Handle
		for i := 0; i < ctx.NumDeps(); i++ {
			handles = append(handles, ctx.DepGroup(i)...)
		}
		return func() (Value, error) {
			sum := offset
			for _, h := range handles {
				f, err := h.Float()
				if err != nil {
					return nil, err
				}
				sum += f
			}
			return sum, nil
		}
	}
	od := func(ctx *BuildContext) ComputeFunc {
		f := mk(ctx)
		return func(clock.Time) (Value, error) { return f() }
	}
	per := func(ctx *BuildContext) WindowComputeFunc {
		f := mk(ctx)
		return func(clock.Time, clock.Time) (Value, error) { return f() }
	}
	r.MustDefine(&Definition{
		Kind: kind,
		Deps: deps,
		Pure: true,
		Adapt: &AdaptSpec{
			OnDemand:  od,
			Triggered: od,
			Periodic:  per,
			Window:    window,
			Pure:      true,
		},
		Build: func(ctx *BuildContext) (Handler, error) {
			switch start {
			case PeriodicMechanism:
				return NewPeriodic(window, per(ctx)), nil
			case TriggeredMechanism:
				return NewTriggered(od(ctx)), nil
			default:
				return NewOnDemand(od(ctx)), nil
			}
		},
	})
}

// TestMigrateTransitionMatrix walks all six transitions between the
// three dynamic mechanisms on a live subscription, checking after each
// that the mechanism switched, the value is preserved exactly, the
// subscription still works, and the structural invariants hold.
func TestMigrateTransitionMatrix(t *testing.T) {
	env, _ := testEnv()
	r := env.NewRegistry("n")
	defineConst(r, "base", 7.0)
	defineAdaptive(r, "x", OnDemandMechanism, 10, 0, Dep(Self(), "base"))

	s, err := r.Subscribe("x")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Unsubscribe()

	steps := []Mechanism{
		TriggeredMechanism, PeriodicMechanism, OnDemandMechanism, // od->trig, trig->per, per->od
		PeriodicMechanism, TriggeredMechanism, OnDemandMechanism, // od->per, per->trig, trig->od
	}
	for i, to := range steps {
		if err := r.Migrate("x", to, 0); err != nil {
			t.Fatalf("step %d: Migrate to %v: %v", i, to, err)
		}
		if m, _ := r.Mechanism("x"); m != to {
			t.Fatalf("step %d: mechanism = %v, want %v", i, m, to)
		}
		if v, err := s.Float(); err != nil || v != 7 {
			t.Fatalf("step %d: value = %v, %v, want 7", i, v, err)
		}
		ext := map[ItemKey]int{{Registry: "n", Kind: "x"}: 1}
		if errs := VerifyIntegrity(ext, r); len(errs) != 0 {
			t.Fatalf("step %d: integrity: %v", i, errs)
		}
	}
	if got := env.Stats().Migrations.Load(); got != int64(len(steps)) {
		t.Fatalf("Migrations = %d, want %d", got, len(steps))
	}
	if c, rm := env.Stats().HandlersCreated.Load(), env.Stats().HandlersRemoved.Load(); c-rm != 2 {
		t.Fatalf("created %d - removed %d != 2 live handlers", c, rm)
	}
}

// TestMigrateWindowResize checks periodic -> periodic migrations: a new
// window counts as a migration and re-times the boundary cadence, while
// an identical window is a no-op that counts nothing.
func TestMigrateWindowResize(t *testing.T) {
	env, vc := testEnv()
	r := env.NewRegistry("n")
	defineConst(r, "base", 1.0)
	defineAdaptive(r, "x", PeriodicMechanism, 10, 0, Dep(Self(), "base"))
	s, _ := r.Subscribe("x")
	defer s.Unsubscribe()

	if w, ok := r.Window("x"); !ok || w != 10 {
		t.Fatalf("Window = %v, %v, want 10, true", w, ok)
	}
	if err := r.Migrate("x", PeriodicMechanism, 40); err != nil {
		t.Fatal(err)
	}
	if w, _ := r.Window("x"); w != 40 {
		t.Fatalf("Window = %v, want 40 after resize", w)
	}
	// Identity: same mechanism, same window.
	if err := r.Migrate("x", PeriodicMechanism, 40); err != nil {
		t.Fatal(err)
	}
	if got := env.Stats().Migrations.Load(); got != 1 {
		t.Fatalf("Migrations = %d, want 1 (identity no-op excluded)", got)
	}
	// The resized cadence is live: boundaries land at 40-unit marks.
	before := env.Stats().PeriodicUpdates.Load()
	vc.Advance(120)
	if got := env.Stats().PeriodicUpdates.Load() - before; got != 3 {
		t.Fatalf("PeriodicUpdates = %d over 120 units, want 3 at window 40", got)
	}
}

// TestMigrateErrors pins the error classes of Migrate.
func TestMigrateErrors(t *testing.T) {
	env, _ := testEnv()
	r := env.NewRegistry("n")
	defineConst(r, "plain", 1.0)
	defineAdaptive(r, "x", OnDemandMechanism, 10, 0)
	// An adaptable definition whose spec lacks the periodic form.
	r.MustDefine(&Definition{
		Kind: "notrig",
		Adapt: &AdaptSpec{
			OnDemand: func(*BuildContext) ComputeFunc {
				return func(clock.Time) (Value, error) { return 1.0, nil }
			},
		},
		Build: func(*BuildContext) (Handler, error) {
			return NewOnDemand(func(clock.Time) (Value, error) { return 1.0, nil }), nil
		},
	})
	// A static item with a (meaningless) AdaptSpec.
	r.MustDefine(&Definition{
		Kind: "stat",
		Adapt: &AdaptSpec{
			OnDemand: func(*BuildContext) ComputeFunc {
				return func(clock.Time) (Value, error) { return 1.0, nil }
			},
		},
		Build: func(*BuildContext) (Handler, error) { return NewStatic(1.0), nil },
	})
	// A delta aggregate over x.
	r.MustDefine(&Definition{
		Kind:  "agg",
		Deps:  []DepRef{Dep(Self(), "plain")},
		Delta: DeltaSum(),
		Adapt: &AdaptSpec{
			OnDemand: func(*BuildContext) ComputeFunc {
				return func(clock.Time) (Value, error) { return 1.0, nil }
			},
		},
		Build: NewDeltaAggregate,
	})

	if err := r.Migrate("x", TriggeredMechanism, 0); !errors.Is(err, ErrUnsubscribed) {
		t.Fatalf("not included: err = %v, want ErrUnsubscribed", err)
	}
	subs := make([]*Subscription, 0, 4)
	for _, k := range []Kind{"x", "plain", "notrig", "stat", "agg"} {
		s, err := r.Subscribe(k)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, s)
	}
	defer func() {
		for _, s := range subs {
			s.Unsubscribe()
		}
	}()

	cases := []struct {
		name string
		kind Kind
		to   Mechanism
	}{
		{"no AdaptSpec", "plain", OnDemandMechanism},
		{"missing target form", "notrig", TriggeredMechanism},
		{"missing periodic form", "notrig", PeriodicMechanism},
		{"static source", "stat", OnDemandMechanism},
		{"delta aggregate", "agg", OnDemandMechanism},
		{"static target", "x", StaticMechanism},
	}
	for _, tc := range cases {
		if err := r.Migrate(tc.kind, tc.to, 0); !errors.Is(err, ErrNotMigratable) {
			t.Errorf("%s: err = %v, want ErrNotMigratable", tc.name, err)
		}
	}
	// Periodic target with no window anywhere.
	if err := r.Migrate("notrig", PeriodicMechanism, 0); !errors.Is(err, ErrNotMigratable) {
		t.Errorf("periodic without window: err = %v, want ErrNotMigratable", err)
	}
	if got := env.Stats().Migrations.Load(); got != 0 {
		t.Fatalf("Migrations = %d after failed calls, want 0", got)
	}
}

// TestMigrateTransplantsQuarantine checks that a quarantined item
// migrates quarantined — same stale last-good value, same breaker — and
// that its armed recovery probe lands on the new mechanism.
func TestMigrateTransplantsQuarantine(t *testing.T) {
	vc := clock.NewVirtual()
	env := NewEnv(vc, WithBreaker(BreakerPolicy{
		FailureThreshold: 3, FailureWindow: 1000,
		ProbeBackoff: 50, MaxProbeBackoff: 400,
	}))
	r := env.NewRegistry("n")
	var failing atomic.Bool
	r.MustDefine(&Definition{
		Kind: "f",
		Adapt: &AdaptSpec{
			Triggered: func(*BuildContext) ComputeFunc {
				return func(clock.Time) (Value, error) { return 7.0, nil }
			},
		},
		Build: func(*BuildContext) (Handler, error) {
			return NewOnDemand(func(clock.Time) (Value, error) {
				if failing.Load() {
					panic("flap")
				}
				return 42.0, nil
			}), nil
		},
	})
	s, err := r.Subscribe("f")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Unsubscribe()

	if v, _ := s.Float(); v != 42 {
		t.Fatalf("healthy value = %v, want 42", v)
	}
	failing.Store(true)
	for i := 0; i < 3; i++ {
		vc.Advance(1)
		s.Value()
	}
	if hs, _ := r.Health("f"); hs.State != Quarantined {
		t.Fatalf("state = %v after 3 panics, want Quarantined", hs.State)
	}
	if v, err := s.Float(); !errors.Is(err, ErrStale) || v != 42 {
		t.Fatalf("quarantined read = %v, %v, want 42 + ErrStale", v, err)
	}

	if err := r.Migrate("f", TriggeredMechanism, 0); err != nil {
		t.Fatal(err)
	}
	// Quarantine carried over: still serving the same stale value under
	// the new mechanism, no recompute happened.
	if m, _ := r.Mechanism("f"); m != TriggeredMechanism {
		t.Fatalf("mechanism = %v, want triggered", m)
	}
	if hs, _ := r.Health("f"); hs.State != Quarantined {
		t.Fatalf("state = %v after migration, want Quarantined", hs.State)
	}
	if v, err := s.Float(); !errors.Is(err, ErrStale) || v != 42 {
		t.Fatalf("post-migration read = %v, %v, want 42 + ErrStale", v, err)
	}

	// The probe armed before the migration fires into the NEW handler
	// and recovers it with the triggered form's value.
	vc.Advance(50)
	if hs, _ := r.Health("f"); hs.State != Healthy {
		t.Fatalf("state = %v after probe, want Healthy", hs.State)
	}
	if v, err := s.Float(); err != nil || v != 7 {
		t.Fatalf("recovered value = %v, %v, want 7 (triggered form)", v, err)
	}
	if got := env.Stats().BreakerRecoveries.Load(); got != 1 {
		t.Fatalf("BreakerRecoveries = %d, want 1", got)
	}
}

// TestMigrateReanchorsDeltaAggregates checks the delta channel across a
// dependency's migration: an on-demand dependency forces the aggregate
// onto the exact fold path, and migrating back re-anchors the pair
// stream so the O(1) path resumes — exact values throughout.
func TestMigrateReanchorsDeltaAggregates(t *testing.T) {
	env, vc := testEnv()
	r := env.NewRegistry("n")
	// x and y both track the clock; the aggregate sums them. x is
	// adaptable: its on-demand form reads the clock at access time, so
	// the sum stays exact in every configuration.
	clockCompute := func(ctx *BuildContext) ComputeFunc {
		c := ctx.Clock()
		return func(clock.Time) (Value, error) { return float64(c.Now()), nil }
	}
	r.MustDefine(&Definition{
		Kind: "x",
		Adapt: &AdaptSpec{
			OnDemand: clockCompute,
			Periodic: func(ctx *BuildContext) WindowComputeFunc {
				return func(_, end clock.Time) (Value, error) { return float64(end), nil }
			},
			Window: 10,
		},
		Build: func(*BuildContext) (Handler, error) {
			return NewPeriodic(10, func(_, end clock.Time) (Value, error) {
				return float64(end), nil
			}), nil
		},
	})
	r.MustDefine(&Definition{
		Kind: "y",
		Build: func(*BuildContext) (Handler, error) {
			return NewPeriodic(10, func(_, end clock.Time) (Value, error) {
				return float64(end), nil
			}), nil
		},
	})
	r.MustDefine(&Definition{
		Kind:  "agg",
		Deps:  []DepRef{Dep(Self(), "x"), Dep(Self(), "y")},
		Delta: DeltaSum(),
		Build: NewDeltaAggregate,
	})
	s, err := r.Subscribe("agg")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Unsubscribe()

	vc.Advance(10)
	if v, _ := s.Float(); v != 20 {
		t.Fatalf("agg = %v at t=10, want 20", v)
	}
	fires0 := env.Stats().DeltaFires.Load()
	if fires0 == 0 {
		t.Fatalf("delta path not exercised before migration")
	}

	// x -> on-demand: the aggregate must fall back to exact folds.
	if err := r.Migrate("x", OnDemandMechanism, 0); err != nil {
		t.Fatal(err)
	}
	fallbacks0 := env.Stats().DeltaFallbacks.Load()
	vc.Advance(10) // y publishes 20; x reads 20 live
	if v, _ := s.Float(); v != 40 {
		t.Fatalf("agg = %v at t=20 with on-demand x, want 40", v)
	}
	if got := env.Stats().DeltaFallbacks.Load(); got <= fallbacks0 {
		t.Fatalf("DeltaFallbacks = %d, want > %d (aggregate ineligible)", got, fallbacks0)
	}

	// x back to periodic: the pair stream re-anchors at the republished
	// value and the O(1) path resumes.
	if err := r.Migrate("x", PeriodicMechanism, 10); err != nil {
		t.Fatal(err)
	}
	fires1 := env.Stats().DeltaFires.Load()
	vc.Advance(10) // both publish 30
	if v, _ := s.Float(); v != 60 {
		t.Fatalf("agg = %v at t=30 after re-migration, want 60", v)
	}
	if got := env.Stats().DeltaFires.Load(); got <= fires1 {
		t.Fatalf("DeltaFires = %d, want > %d (delta path resumed)", got, fires1)
	}
}

// TestMigrateReengagesDependentMemos checks memo engagement of a pure
// on-demand dependent across its dependency's migrations: a volatile
// on-demand dependency blocks memoization, a periodic one enables it,
// and migrating back disengages it again.
func TestMigrateReengagesDependentMemos(t *testing.T) {
	vc := clock.NewVirtual()
	env := NewEnv(vc, WithMemoizedOnDemand())
	r := env.NewRegistry("n")
	dv := 7.0
	r.MustDefine(&Definition{
		Kind: "d",
		Adapt: &AdaptSpec{
			OnDemand: func(*BuildContext) ComputeFunc {
				return func(clock.Time) (Value, error) { return dv, nil }
			},
			Periodic: func(*BuildContext) WindowComputeFunc {
				return func(_, _ clock.Time) (Value, error) { return dv, nil }
			},
			Window: 10,
			// Not Pure: the on-demand form stays volatile.
		},
		Build: func(*BuildContext) (Handler, error) {
			return NewOnDemand(func(clock.Time) (Value, error) { return dv, nil }), nil
		},
	})
	var computes atomic.Int64
	r.MustDefine(&Definition{
		Kind: "p",
		Deps: []DepRef{Dep(Self(), "d")},
		Pure: true,
		Build: func(ctx *BuildContext) (Handler, error) {
			h := ctx.Dep(0)
			return NewOnDemand(func(clock.Time) (Value, error) {
				computes.Add(1)
				f, err := h.Float()
				if err != nil {
					return nil, err
				}
				return f + 1, nil
			}), nil
		},
	})
	s, err := r.Subscribe("p")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Unsubscribe()

	// Volatile dependency: every read recomputes.
	for i := 0; i < 2; i++ {
		if v, _ := s.Float(); v != 8 {
			t.Fatalf("p = %v, want 8", v)
		}
	}
	if got := computes.Load(); got != 2 {
		t.Fatalf("computes = %d with volatile dependency, want 2", got)
	}

	// Periodic dependency: the dependent's memo engages; repeat reads
	// are hits.
	if err := r.Migrate("d", PeriodicMechanism, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if v, _ := s.Float(); v != 8 {
			t.Fatalf("p = %v after migration, want 8", v)
		}
	}
	if got := computes.Load(); got != 3 {
		t.Fatalf("computes = %d with periodic dependency, want 3 (one miss, then hits)", got)
	}
	if env.Stats().MemoHits.Load() == 0 {
		t.Fatalf("no memo hits after dependency became stampable")
	}

	// Back to volatile: disengaged again, every read recomputes.
	if err := r.Migrate("d", OnDemandMechanism, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if v, _ := s.Float(); v != 8 {
			t.Fatalf("p = %v after back-migration, want 8", v)
		}
	}
	if got := computes.Load(); got != 5 {
		t.Fatalf("computes = %d with volatile dependency again, want 5", got)
	}
}

// TestMigrateStormProperty is the migrate-storm property test: random
// migrations across all transitions run concurrently with lock-free
// readers, clock advancement (periodic boundaries, breaker probes),
// quarantine flapping, and subscription churn. Run with -race.
//
// Invariants checked throughout: the adaptable item's value is exactly
// 42 in every mechanism, the delta aggregate over it is exactly 44, and
// the flapping item serves its exact last-good value whenever it
// serves a value at all. At quiescence: migration count, refcounts,
// structural integrity, and unlocked scopes.
func TestMigrateStormProperty(t *testing.T) {
	vc := clock.NewVirtual()
	env := NewEnv(vc, WithBreaker(BreakerPolicy{
		FailureThreshold: 3, FailureWindow: 200,
		ProbeBackoff: 10, MaxProbeBackoff: 80,
	}))
	r := env.NewRegistry("n")
	defineConst(r, "base", 2.0)
	defineAdaptive(r, "x", OnDemandMechanism, 10, 40, Dep(Self(), "base"))
	var flap atomic.Bool
	flapCompute := func(*BuildContext) ComputeFunc {
		return func(clock.Time) (Value, error) {
			if flap.Load() {
				panic("flap")
			}
			return 1.0, nil
		}
	}
	r.MustDefine(&Definition{
		Kind: "flappy",
		Adapt: &AdaptSpec{
			OnDemand:  flapCompute,
			Triggered: flapCompute,
			Periodic: func(*BuildContext) WindowComputeFunc {
				return func(_, _ clock.Time) (Value, error) {
					if flap.Load() {
						panic("flap")
					}
					return 1.0, nil
				}
			},
			Window: 7,
		},
		Build: func(ctx *BuildContext) (Handler, error) {
			return NewOnDemand(flapCompute(ctx)), nil
		},
	})
	r.MustDefine(&Definition{
		Kind:  "agg",
		Deps:  []DepRef{Dep(Self(), "x"), Dep(Self(), "base")},
		Delta: DeltaSum(),
		Build: NewDeltaAggregate,
	})

	sx, _ := r.Subscribe("x")
	sa, _ := r.Subscribe("agg")
	sf, _ := r.Subscribe("flappy")

	const iters = 400
	stop := make(chan struct{})
	var wg, readers sync.WaitGroup

	// Readers: exact-value invariants on the lock-free read path. They
	// run until the mutating goroutines (tracked by wg) are done.
	for g := 0; g < 3; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if v, err := sx.Float(); err != nil || v != 42 {
					t.Errorf("x = %v, %v, want exactly 42", v, err)
					return
				}
				if v, err := sa.Float(); err != nil || v != 44 {
					t.Errorf("agg = %v, %v, want exactly 44", v, err)
					return
				}
				if v, err := sf.Value(); err == nil && v != 1.0 {
					t.Errorf("flappy = %v without error, want 1", v)
					return
				}
			}
		}()
	}

	var migrated int64 // expected Migrations count, maintained by the migrator alone
	wg.Add(4)
	// Migrator: random transitions over both adaptable items; the
	// expected migration count is deterministic because only this
	// goroutine migrates.
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		cur := map[Kind]Mechanism{"x": OnDemandMechanism, "flappy": OnDemandMechanism}
		win := map[Kind]clock.Duration{"x": 0, "flappy": 0}
		mechs := []Mechanism{OnDemandMechanism, PeriodicMechanism, TriggeredMechanism}
		for i := 0; i < iters; i++ {
			kind := Kind("x")
			if rng.Intn(2) == 0 {
				kind = "flappy"
			}
			to := mechs[rng.Intn(3)]
			var w clock.Duration
			if to == PeriodicMechanism {
				w = clock.Duration(5 + rng.Intn(16))
			}
			if err := r.Migrate(kind, to, w); err != nil {
				t.Errorf("Migrate(%s, %v, %d): %v", kind, to, w, err)
				return
			}
			if cur[kind] != to || (to == PeriodicMechanism && win[kind] != w) {
				migrated++
			}
			cur[kind] = to
			if to == PeriodicMechanism {
				win[kind] = w
			} else {
				win[kind] = 0
			}
		}
	}()
	// Advancer: drives periodic boundaries and breaker probes.
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			vc.Advance(1)
		}
	}()
	// Flapper: quarantine churn on the flapping item.
	go func() {
		defer wg.Done()
		for i := 0; i < iters/10; i++ {
			flap.Store(true)
			for j := 0; j < 5; j++ {
				sf.Value()
			}
			flap.Store(false)
			for j := 0; j < 5; j++ {
				sf.Value()
			}
		}
	}()
	// Churn: structural operations racing the migrations.
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			s, err := r.Subscribe("agg")
			if err != nil {
				t.Errorf("churn subscribe: %v", err)
				return
			}
			s.Unsubscribe()
		}
	}()
	wg.Wait()
	close(stop)
	readers.Wait()
	env.Quiesce()

	if v, err := sx.Float(); err != nil || v != 42 {
		t.Fatalf("final x = %v, %v, want 42", v, err)
	}
	if v, err := sa.Float(); err != nil || v != 44 {
		t.Fatalf("final agg = %v, %v, want 44", v, err)
	}
	if got := env.Stats().Migrations.Load(); got != migrated {
		t.Fatalf("Migrations = %d, want %d", got, migrated)
	}
	ext := map[ItemKey]int{
		{Registry: "n", Kind: "x"}:      1,
		{Registry: "n", Kind: "agg"}:    1,
		{Registry: "n", Kind: "flappy"}: 1,
	}
	if errs := VerifyIntegrity(ext, r); len(errs) != 0 {
		t.Fatalf("integrity: %v", errs)
	}
	if err := ScopesUnlocked(r); err != nil {
		t.Fatal(err)
	}
	live := int64(len(r.Included()))
	if c, rm := env.Stats().HandlersCreated.Load(), env.Stats().HandlersRemoved.Load(); c-rm != live {
		t.Fatalf("created %d - removed %d != %d live handlers", c, rm, live)
	}
	sf.Unsubscribe()
	sa.Unsubscribe()
	sx.Unsubscribe()
	if got := len(r.Included()); got != 0 {
		t.Fatalf("%d items left included", got)
	}
}
