package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/clock"
)

// triggeredHandler serves a pre-computed value that is refreshed only
// when an underlying metadata item publishes a new value or a
// registered event fires (Section 3.2.3). The value is pre-computed at
// the first subscription; refreshes propagate recursively along the
// inverted dependency graph in topological order, so a handler is
// refreshed only after all of its updated dependencies.
//
// Like the periodic handler, the current value is published through an
// atomic snapshot pointer, so Value() is lock-free.
type triggeredHandler struct {
	compute ComputeFunc

	// cur is the published value snapshot; nil before start and after
	// stop.
	cur atomic.Pointer[valueSnapshot]

	mu    sync.Mutex
	e     *entry
	snaps snapAlloc

	// deadline bounds each compute (0 = unbounded), resolved from the
	// definition/env at start.
	deadline clock.Duration
	// health is the item's circuit breaker, nil unless the env enables
	// WithBreaker.
	health *itemHealth
	// lastGood is the latest successfully published snapshot, served
	// tagged *StaleError while quarantined.
	lastGood *valueSnapshot

	// ds is the delta-aggregate state for handlers built by
	// NewDeltaAggregate, nil for plain triggered handlers. Its mutable
	// fields are guarded by the dependency-scope lock, which every
	// refresh caller and every pair push already holds (see delta.go).
	ds *deltaState
}

// NewTriggered returns a handler recomputed on dependency updates and
// on the events listed in the item's Definition. compute typically
// reads the item's dependency handles.
func NewTriggered(compute ComputeFunc) Handler {
	return &triggeredHandler{compute: compute}
}

func (h *triggeredHandler) Value() (Value, error) {
	s := h.cur.Load()
	if s == nil {
		return nil, ErrUnsubscribed
	}
	return s.val, s.err
}

func (h *triggeredHandler) Mechanism() Mechanism { return TriggeredMechanism }

func (h *triggeredHandler) start(e *entry) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.e = e
	h.deadline = e.reg.env.deadlineFor(e.def)
	h.health = newItemHealth(e.reg.env, h)
	if h.ds != nil {
		// Fix delta eligibility and register on the dependencies' delta
		// channels before the initial fold, so the fold reads the same
		// deltaLast values the accumulator will be patched from. start
		// runs under the dependency-scope lock (includeLocked).
		h.ds.startLocked(e)
	}
	if e.reg.env.restorePendingFor(e.reg, e.kind) {
		// Recovery replay: skip the pre-compute — RestoreStale will
		// re-publish the checkpointed last-good value before the plane is
		// exposed. Delta aggregates stay registered on their dependency
		// channels (startLocked above) with the accumulator invalid; the
		// first post-recovery refresh re-folds.
		h.cur.Store(h.snaps.put(nil, ErrNoValue))
		e.bumpVersion()
		return nil
	}
	// Pre-compute the initial value (Section 3.2.3: "values of
	// metadata items with triggered handlers are pre-computed on the
	// first subscription"). Dependencies are already included at this
	// point, so compute may read them. Like the periodic initial
	// compute, this runs on the subscriber's goroutine and is therefore
	// never deadline-bounded.
	epoch := e.reg.env.writeEpoch.Load()
	e.reg.env.Stats().ComputeCalls.Add(1)
	v, err := safeCompute(h.compute, e.reg.env.Now())
	var snap *valueSnapshot
	if h.ds != nil {
		snap = h.publishFoldLocked(v, err, epoch)
	} else {
		snap = h.snaps.put(v, err)
		h.cur.Store(snap)
	}
	e.bumpVersion()
	if snap.err == nil {
		h.lastGood = snap
	}
	return nil
}

// publishFoldLocked publishes the result of a delta aggregate's full
// fold: a successful fold seeds the accumulator (stamped with the
// epoch captured before the fold read its inputs) and publishes the
// finished float; an error invalidates it and publishes the error. The
// scope lock and h.mu must be held.
func (h *triggeredHandler) publishFoldLocked(v Value, err error, epoch uint64) *valueSnapshot {
	ds := h.ds
	var snap *valueSnapshot
	if err == nil {
		if acc, ok := v.(DeltaAcc); ok {
			ds.acc = acc
			ds.valid = true
			ds.applied = 0
			ds.epoch = epoch
			snap = h.snaps.putFloat(ds.spec.finishAcc(acc))
			h.cur.Store(snap)
			return snap
		}
		err = fmt.Errorf("%w: delta aggregate fold returned %T, want DeltaAcc", ErrNotNumeric, v)
		v = nil
	}
	ds.valid = false
	snap = h.snaps.put(v, err)
	h.cur.Store(snap)
	return snap
}

// refresh implements triggerable.
//
// h.mu is deliberately held across the user compute: it serializes
// recompute+publish against start/stop so a stopped handler can never
// publish. This is safe because readers never take it — the compute
// reaches sibling and dependency values through the lock-free snapshot
// path — and no caller holds one handler's mutex while refreshing
// another (propagation refreshes handlers strictly one at a time under
// the scope lock).
func (h *triggeredHandler) refresh(now clock.Time) error {
	if h.ds != nil {
		return h.refreshDelta(now)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.e == nil {
		return ErrUnsubscribed
	}
	if h.health.isQuarantined() {
		// The stale publication stands; recovery goes through the
		// probe, not through trigger propagation (a quarantined compute
		// re-run on every upstream update would defeat the quarantine).
		return ErrStale
	}
	env := h.e.reg.env
	stats := env.Stats()
	stats.ComputeCalls.Add(1)
	stats.TriggeredUpdates.Add(1)
	var v Value
	var err error
	if h.deadline > 0 {
		v, err = boundedCompute(env.clk, h.deadline, stats, h.compute, now)
	} else {
		v, err = safeCompute(h.compute, now)
	}
	if err == nil || !breakerEligible(err) {
		h.health.onSuccess()
		snap := h.snaps.put(v, err)
		h.cur.Store(snap)
		h.e.bumpVersion()
		if err == nil && h.health != nil {
			// lastGood is only ever served while quarantined, so the
			// breaker-less hot path skips the pointer store (and its
			// write barrier).
			h.lastGood = snap
		}
		return err
	}
	if h.health.onFailure(now, err) {
		// Tripped: republish the last-good value tagged stale. The
		// propagation that invoked this refresh carries the degraded
		// view onward to deeper dependents; the armed probe owns
		// recovery.
		var lastVal Value
		if h.lastGood != nil {
			lastVal = h.lastGood.val
		}
		h.cur.Store(h.snaps.put(lastVal, h.health.staleError()))
		h.e.bumpVersion()
		return err
	}
	h.cur.Store(h.snaps.put(v, err))
	h.e.bumpVersion()
	return err
}

// refreshDelta is refresh for delta aggregates (see delta.go): consume
// the pending (old, new) pairs and apply them to the accumulator in
// O(1) each when the channel is provably exact, else fall back to the
// byte-identical full fold. The caller holds the dependency-scope lock
// (every refresh caller does), which guards the delta state.
func (h *triggeredHandler) refreshDelta(now clock.Time) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.e == nil {
		return ErrUnsubscribed
	}
	ds := h.ds
	// Consume the delta input first — pairs and poison marks must not
	// leak into a later refresh — even when this refresh cannot use
	// them (quarantine below drops them and invalidates instead).
	pairs := ds.pending
	poisoned := ds.poisoned
	ds.pending = ds.pending[:0]
	ds.poisoned = false
	if h.health.isQuarantined() {
		// The stale publication stands (see refresh); the accumulator
		// no longer reflects the consumed pair stream.
		ds.valid = false
		return ErrStale
	}
	env := h.e.reg.env
	stats := env.Stats()
	stats.TriggeredUpdates.Add(1)
	// eligible is false on delta-off envs (startLocked), so one flag
	// covers both the ablation and the structural conditions.
	if ds.eligible && ds.valid && !poisoned &&
		ds.epoch == env.writeEpoch.Load() &&
		(len(pairs) == 0 || ds.spec.Retract != nil) {
		if ds.rebase > 0 && ds.applied >= ds.rebase {
			// Drift bound: re-fold from scratch on schedule.
			stats.DeltaRebases.Add(1)
			return h.foldRefreshLocked(now)
		}
		if acc, ok := ds.applyPairs(ds.acc, pairs); ok {
			stats.DeltaFires.Add(1)
			ds.acc = acc
			ds.applied++
			// Publish through the normal version-bump path: snapshot
			// first, then the version, so PR 5 memo stamps over this
			// item stay exact.
			snap := h.snaps.putFloat(ds.spec.finishAcc(acc))
			h.cur.Store(snap)
			h.e.bumpVersion()
			if h.health != nil {
				h.lastGood = snap
			}
			return nil
		}
		// Retract refused (or a spec callback panicked) mid-apply: the
		// accumulator is unusable.
		ds.valid = false
	}
	stats.DeltaFallbacks.Add(1)
	return h.foldRefreshLocked(now)
}

// foldRefreshLocked is the aggregate's full-recompute refresh, the
// exact-fallback half of the delta contract. It mirrors the plain
// refresh publish paths, routed through publishFoldLocked so a
// successful fold re-seeds the accumulator. h.mu and the scope lock
// must be held.
func (h *triggeredHandler) foldRefreshLocked(now clock.Time) error {
	e := h.e
	env := e.reg.env
	stats := env.Stats()
	// Capture the epoch before the fold reads its inputs: a structural
	// change racing the fold then invalidates the accumulator at the
	// next refresh instead of being half-visible in it.
	epoch := env.writeEpoch.Load()
	stats.ComputeCalls.Add(1)
	var v Value
	var err error
	if h.deadline > 0 {
		v, err = boundedCompute(env.clk, h.deadline, stats, h.compute, now)
	} else {
		v, err = safeCompute(h.compute, now)
	}
	if err == nil || !breakerEligible(err) {
		h.health.onSuccess()
		snap := h.publishFoldLocked(v, err, epoch)
		e.bumpVersion()
		if snap.err == nil && h.health != nil {
			h.lastGood = snap
		}
		return snap.err
	}
	h.ds.valid = false
	if h.health.onFailure(now, err) {
		var lastVal Value
		if h.lastGood != nil {
			lastVal = h.lastGood.val
		}
		h.cur.Store(h.snaps.put(lastVal, h.health.staleError()))
		e.bumpVersion()
		return err
	}
	h.cur.Store(h.snaps.put(v, err))
	e.bumpVersion()
	return err
}

// runProbe implements quarantineOwner: recompute once on the updater
// with no locks held; success republishes, closes the breaker, and
// propagates the recovery so dependents drop their degraded view.
func (h *triggeredHandler) runProbe(now clock.Time) {
	h.mu.Lock()
	if h.e == nil {
		// Stopped or migrated away. Report a no-op failure so the probe
		// re-arms: after a real stop the health state is stopped and the
		// report is inert, while after a migration the re-armed probe
		// reaches the replacement handler (the transplanted owner).
		h.mu.Unlock()
		h.health.probeFailed(now, nil)
		return
	}
	env := h.e.reg.env
	stats := env.Stats()
	stats.ComputeCalls.Add(1)
	compute := h.compute
	if h.ds != nil {
		// The probe runs without the scope lock, so it must not touch
		// the scope-guarded delta state: fold the live snapshots (the
		// accumulator stays invalid; the next locked refresh re-folds
		// and re-validates) and publish the finished float.
		ds := h.ds
		compute = func(clock.Time) (Value, error) {
			acc, err := ds.foldFrom(false)
			if err != nil {
				return nil, err
			}
			return ds.spec.finishAcc(acc), nil
		}
	}
	v, err := boundedCompute(env.clk, h.deadline, stats, compute, now)
	if err != nil && breakerEligible(err) {
		h.mu.Unlock()
		h.health.probeFailed(now, err)
		return
	}
	stats.TriggeredUpdates.Add(1)
	snap := h.snaps.put(v, err)
	h.cur.Store(snap)
	h.e.bumpVersion()
	if err == nil {
		h.lastGood = snap
	}
	h.health.closeBreaker()
	e := h.e
	h.mu.Unlock()
	if e.ndeps.Load() > 0 {
		sc := env.lockScope(e.reg)
		if e.deltaDeps > 0 {
			notifyDeltaLocked(e)
		}
		e.reg.propagateLocked(e, now)
		sc.unlock()
	}
}

// healthSnapshot implements healthCarrier.
func (h *triggeredHandler) healthSnapshot() HealthSnapshot { return h.health.snapshot() }

func (h *triggeredHandler) stop() {
	h.mu.Lock()
	h.e = nil
	h.cur.Store(nil)
	h.mu.Unlock()
	h.health.stop()
}
