package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/clock"
)

// triggeredHandler serves a pre-computed value that is refreshed only
// when an underlying metadata item publishes a new value or a
// registered event fires (Section 3.2.3). The value is pre-computed at
// the first subscription; refreshes propagate recursively along the
// inverted dependency graph in topological order, so a handler is
// refreshed only after all of its updated dependencies.
//
// Like the periodic handler, the current value is published through an
// atomic snapshot pointer, so Value() is lock-free.
type triggeredHandler struct {
	compute ComputeFunc

	// cur is the published value snapshot; nil before start and after
	// stop.
	cur atomic.Pointer[valueSnapshot]

	mu    sync.Mutex
	e     *entry
	snaps snapAlloc

	// deadline bounds each compute (0 = unbounded), resolved from the
	// definition/env at start.
	deadline clock.Duration
	// health is the item's circuit breaker, nil unless the env enables
	// WithBreaker.
	health *itemHealth
	// lastGood is the latest successfully published snapshot, served
	// tagged *StaleError while quarantined.
	lastGood *valueSnapshot
}

// NewTriggered returns a handler recomputed on dependency updates and
// on the events listed in the item's Definition. compute typically
// reads the item's dependency handles.
func NewTriggered(compute ComputeFunc) Handler {
	return &triggeredHandler{compute: compute}
}

func (h *triggeredHandler) Value() (Value, error) {
	s := h.cur.Load()
	if s == nil {
		return nil, ErrUnsubscribed
	}
	return s.val, s.err
}

func (h *triggeredHandler) Mechanism() Mechanism { return TriggeredMechanism }

func (h *triggeredHandler) start(e *entry) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.e = e
	h.deadline = e.reg.env.deadlineFor(e.def)
	h.health = newItemHealth(e.reg.env, h)
	// Pre-compute the initial value (Section 3.2.3: "values of
	// metadata items with triggered handlers are pre-computed on the
	// first subscription"). Dependencies are already included at this
	// point, so compute may read them. Like the periodic initial
	// compute, this runs on the subscriber's goroutine and is therefore
	// never deadline-bounded.
	e.reg.env.Stats().ComputeCalls.Add(1)
	v, err := safeCompute(h.compute, e.reg.env.Now())
	snap := h.snaps.put(v, err)
	h.cur.Store(snap)
	e.version.Add(1)
	if err == nil {
		h.lastGood = snap
	}
	return nil
}

// refresh implements triggerable.
//
// h.mu is deliberately held across the user compute: it serializes
// recompute+publish against start/stop so a stopped handler can never
// publish. This is safe because readers never take it — the compute
// reaches sibling and dependency values through the lock-free snapshot
// path — and no caller holds one handler's mutex while refreshing
// another (propagation refreshes handlers strictly one at a time under
// the scope lock).
func (h *triggeredHandler) refresh(now clock.Time) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.e == nil {
		return ErrUnsubscribed
	}
	if h.health.isQuarantined() {
		// The stale publication stands; recovery goes through the
		// probe, not through trigger propagation (a quarantined compute
		// re-run on every upstream update would defeat the quarantine).
		return ErrStale
	}
	env := h.e.reg.env
	stats := env.Stats()
	stats.ComputeCalls.Add(1)
	stats.TriggeredUpdates.Add(1)
	var v Value
	var err error
	if h.deadline > 0 {
		v, err = boundedCompute(env.clk, h.deadline, stats, h.compute, now)
	} else {
		v, err = safeCompute(h.compute, now)
	}
	if err == nil || !breakerEligible(err) {
		h.health.onSuccess()
		snap := h.snaps.put(v, err)
		h.cur.Store(snap)
		h.e.version.Add(1)
		if err == nil && h.health != nil {
			// lastGood is only ever served while quarantined, so the
			// breaker-less hot path skips the pointer store (and its
			// write barrier).
			h.lastGood = snap
		}
		return err
	}
	if h.health.onFailure(now, err) {
		// Tripped: republish the last-good value tagged stale. The
		// propagation that invoked this refresh carries the degraded
		// view onward to deeper dependents; the armed probe owns
		// recovery.
		var lastVal Value
		if h.lastGood != nil {
			lastVal = h.lastGood.val
		}
		h.cur.Store(h.snaps.put(lastVal, h.health.staleError()))
		h.e.version.Add(1)
		return err
	}
	h.cur.Store(h.snaps.put(v, err))
	h.e.version.Add(1)
	return err
}

// runProbe implements quarantineOwner: recompute once on the updater
// with no locks held; success republishes, closes the breaker, and
// propagates the recovery so dependents drop their degraded view.
func (h *triggeredHandler) runProbe(now clock.Time) {
	h.mu.Lock()
	if h.e == nil {
		h.mu.Unlock()
		return
	}
	env := h.e.reg.env
	stats := env.Stats()
	stats.ComputeCalls.Add(1)
	v, err := boundedCompute(env.clk, h.deadline, stats, h.compute, now)
	if err != nil && breakerEligible(err) {
		h.mu.Unlock()
		h.health.probeFailed(now, err)
		return
	}
	stats.TriggeredUpdates.Add(1)
	snap := h.snaps.put(v, err)
	h.cur.Store(snap)
	h.e.version.Add(1)
	if err == nil {
		h.lastGood = snap
	}
	h.health.closeBreaker()
	e := h.e
	h.mu.Unlock()
	if e.ndeps.Load() > 0 {
		sc := env.lockScope(e.reg)
		e.reg.propagateLocked(e, now)
		sc.unlock()
	}
}

// healthSnapshot implements healthCarrier.
func (h *triggeredHandler) healthSnapshot() HealthSnapshot { return h.health.snapshot() }

func (h *triggeredHandler) stop() {
	h.mu.Lock()
	h.e = nil
	h.cur.Store(nil)
	h.mu.Unlock()
	h.health.stop()
}
