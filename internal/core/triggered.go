package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/clock"
)

// triggeredHandler serves a pre-computed value that is refreshed only
// when an underlying metadata item publishes a new value or a
// registered event fires (Section 3.2.3). The value is pre-computed at
// the first subscription; refreshes propagate recursively along the
// inverted dependency graph in topological order, so a handler is
// refreshed only after all of its updated dependencies.
//
// Like the periodic handler, the current value is published through an
// atomic snapshot pointer, so Value() is lock-free.
type triggeredHandler struct {
	compute ComputeFunc

	// cur is the published value snapshot; nil before start and after
	// stop.
	cur atomic.Pointer[valueSnapshot]

	mu    sync.Mutex
	e     *entry
	snaps snapAlloc
}

// NewTriggered returns a handler recomputed on dependency updates and
// on the events listed in the item's Definition. compute typically
// reads the item's dependency handles.
func NewTriggered(compute ComputeFunc) Handler {
	return &triggeredHandler{compute: compute}
}

func (h *triggeredHandler) Value() (Value, error) {
	s := h.cur.Load()
	if s == nil {
		return nil, ErrUnsubscribed
	}
	return s.val, s.err
}

func (h *triggeredHandler) Mechanism() Mechanism { return TriggeredMechanism }

func (h *triggeredHandler) start(e *entry) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.e = e
	// Pre-compute the initial value (Section 3.2.3: "values of
	// metadata items with triggered handlers are pre-computed on the
	// first subscription"). Dependencies are already included at this
	// point, so compute may read them.
	e.reg.env.Stats().ComputeCalls.Add(1)
	v, err := safeCompute(h.compute, e.reg.env.Now())
	h.cur.Store(h.snaps.put(v, err))
	return nil
}

// refresh implements triggerable.
//
// h.mu is deliberately held across the user compute: it serializes
// recompute+publish against start/stop so a stopped handler can never
// publish. This is safe because readers never take it — the compute
// reaches sibling and dependency values through the lock-free snapshot
// path — and no caller holds one handler's mutex while refreshing
// another (propagation refreshes handlers strictly one at a time under
// the scope lock).
func (h *triggeredHandler) refresh(now clock.Time) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.e == nil {
		return ErrUnsubscribed
	}
	stats := h.e.reg.env.Stats()
	stats.ComputeCalls.Add(1)
	stats.TriggeredUpdates.Add(1)
	v, err := safeCompute(h.compute, now)
	h.cur.Store(h.snaps.put(v, err))
	return err
}

func (h *triggeredHandler) stop() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.e = nil
	h.cur.Store(nil)
}
