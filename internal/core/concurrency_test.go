package core

import (
	"sync"
	"testing"

	"repro/internal/clock"
)

// TestConcurrentSubscribeUnsubscribe hammers the structural path from
// many goroutines. Run with -race.
func TestConcurrentSubscribeUnsubscribe(t *testing.T) {
	env, _ := testEnv()
	r := env.NewRegistry("n")
	defineConst(r, "a", 1.0)
	defineDerived(r, "b", Dep(Self(), "a"))
	defineDerived(r, "c", Dep(Self(), "b"))

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			kinds := []Kind{"a", "b", "c"}
			for i := 0; i < 200; i++ {
				s, err := r.Subscribe(kinds[(g+i)%3])
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Float(); err != nil {
					t.Error(err)
					return
				}
				s.Unsubscribe()
			}
		}(g)
	}
	wg.Wait()
	if got := len(r.Included()); got != 0 {
		t.Fatalf("%d items left included", got)
	}
	if c, rm := env.Stats().HandlersCreated.Load(), env.Stats().HandlersRemoved.Load(); c != rm {
		t.Fatalf("created %d != removed %d", c, rm)
	}
}

// TestConcurrentReadsDuringPeriodicUpdates checks the isolation
// condition under real concurrency: readers never observe a torn or
// reset measurement while the periodic handler publishes.
func TestConcurrentReadsDuringPeriodicUpdates(t *testing.T) {
	env, vc := testEnv()
	r := env.NewRegistry("n")
	var count Counter
	r.MustDefine(&Definition{
		Kind:  "rate",
		Probe: &count,
		Build: func(*BuildContext) (Handler, error) {
			return NewPeriodic(10, func(start, end clock.Time) (Value, error) {
				w := end.Sub(start)
				if w == 0 {
					return 0.0, nil
				}
				return float64(count.Take()) / float64(w), nil
			}), nil
		},
	})
	s, _ := r.Subscribe("rate")
	defer s.Unsubscribe()

	// Arrivals: 1 per unit.
	for i := 1; i <= 1000; i++ {
		vc.Schedule(clock.Time(i), func(clock.Time) { count.Inc() })
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v, err := s.Float()
				if err != nil {
					t.Errorf("read error: %v", err)
					return
				}
				// Published values are either the initial 0 or the
				// exact rate 1.0; any other value means a reader
				// interfered with the measurement.
				if v != 0 && v != 1 {
					t.Errorf("torn rate value %v", v)
					return
				}
			}
		}()
	}
	vc.Advance(1000)
	close(stop)
	wg.Wait()
}

// TestConcurrentEventsAndSubscriptions exercises trigger propagation
// racing with structural changes.
func TestConcurrentEventsAndSubscriptions(t *testing.T) {
	env, _ := testEnv()
	r := env.NewRegistry("n")
	val := 1.0
	r.MustDefine(&Definition{
		Kind:   "base",
		Events: []string{"changed"},
		Build: func(*BuildContext) (Handler, error) {
			return NewTriggered(func(clock.Time) (Value, error) { return val, nil }), nil
		},
	})
	defineDerived(r, "d1", Dep(Self(), "base"))
	defineDerived(r, "d2", Dep(Self(), "d1"))

	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			r.FireEvent("changed")
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			s, err := r.Subscribe("d2")
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := s.Float(); err != nil {
				t.Error(err)
				return
			}
			s.Unsubscribe()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			s, err := r.Subscribe("d1")
			if err != nil {
				t.Error(err)
				return
			}
			s.Unsubscribe()
		}
	}()
	wg.Wait()
	if got := len(r.Included()); got != 0 {
		t.Fatalf("%d items left included", got)
	}
}

// TestPoolUpdaterRunsPeriodicUpdates exercises the worker-pool path of
// Section 4.3 end to end.
func TestPoolUpdaterRunsPeriodicUpdates(t *testing.T) {
	vc := clock.NewVirtual()
	pool := NewPoolUpdater(4)
	defer pool.Stop()
	env := NewEnv(vc, WithUpdater(pool))
	r := env.NewRegistry("n")
	for i := 0; i < 8; i++ {
		kind := Kind(rune('a' + i))
		r.MustDefine(&Definition{
			Kind: kind,
			Build: func(*BuildContext) (Handler, error) {
				return NewPeriodic(10, func(start, end clock.Time) (Value, error) {
					return float64(end), nil
				}), nil
			},
		})
	}
	var subs []*Subscription
	for i := 0; i < 8; i++ {
		s, err := r.Subscribe(Kind(rune('a' + i)))
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, s)
	}
	vc.Advance(100)
	pool.WaitIdle()
	// Workers may execute tick tasks out of order; stale ticks are
	// skipped, so the update count is bounded by 8 handlers x 10
	// windows but every handler ends on the newest window.
	if got := env.Stats().PeriodicUpdates.Load(); got == 0 || got > 80 {
		t.Fatalf("PeriodicUpdates = %d, want in (0, 80]", got)
	}
	for _, s := range subs {
		v, err := s.Float()
		if err != nil {
			t.Fatal(err)
		}
		if v != 100 {
			t.Fatalf("value = %v, want 100", v)
		}
		s.Unsubscribe()
	}
}
