package core

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/clock"
)

// testEnv returns a virtual-clock environment.
func testEnv() (*Env, *clock.Virtual) {
	vc := clock.NewVirtual()
	return NewEnv(vc), vc
}

// defineConst defines kind as a static item with value v.
func defineConst(r *Registry, kind Kind, v Value) {
	r.MustDefine(&Definition{
		Kind:  kind,
		Build: func(*BuildContext) (Handler, error) { return NewStatic(v), nil },
	})
}

// defineDerived defines kind as a triggered sum of its dependencies.
func defineDerived(r *Registry, kind Kind, deps ...DepRef) {
	r.MustDefine(&Definition{
		Kind: kind,
		Deps: deps,
		Build: func(ctx *BuildContext) (Handler, error) {
			handles := make([]*Handle, 0)
			for i := 0; i < ctx.NumDeps(); i++ {
				handles = append(handles, ctx.DepGroup(i)...)
			}
			return NewTriggered(func(clock.Time) (Value, error) {
				sum := 0.0
				for _, h := range handles {
					f, err := h.Float()
					if err != nil {
						return nil, err
					}
					sum += f
				}
				return sum, nil
			}), nil
		},
	})
}

func TestSubscribeUnknownItem(t *testing.T) {
	env, _ := testEnv()
	r := env.NewRegistry("n1")
	_, err := r.Subscribe("nope")
	if !errors.Is(err, ErrUnknownItem) {
		t.Fatalf("err = %v, want ErrUnknownItem", err)
	}
}

func TestSubscribeStatic(t *testing.T) {
	env, _ := testEnv()
	r := env.NewRegistry("n1")
	defineConst(r, "elementSize", int64(32))
	sub, err := r.Subscribe("elementSize")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Unsubscribe()
	v, err := sub.Value()
	if err != nil || v.(int64) != 32 {
		t.Fatalf("Value = %v, %v; want 32", v, err)
	}
	if sub.Mechanism() != StaticMechanism {
		t.Fatalf("Mechanism = %v, want static", sub.Mechanism())
	}
}

func TestHandlerCreatedOncePerItem(t *testing.T) {
	env, _ := testEnv()
	r := env.NewRegistry("n1")
	builds := 0
	r.MustDefine(&Definition{
		Kind: "x",
		Build: func(*BuildContext) (Handler, error) {
			builds++
			return NewStatic(1.0), nil
		},
	})
	s1, _ := r.Subscribe("x")
	s2, _ := r.Subscribe("x")
	s3, _ := r.Subscribe("x")
	if builds != 1 {
		t.Fatalf("handler built %d times, want 1 (1-to-1 item/handler)", builds)
	}
	if got := r.Refs("x"); got != 3 {
		t.Fatalf("Refs = %d, want 3", got)
	}
	if got := env.Stats().SharedSubscriptions.Load(); got != 2 {
		t.Fatalf("SharedSubscriptions = %d, want 2", got)
	}
	s1.Unsubscribe()
	s2.Unsubscribe()
	if !r.IsIncluded("x") {
		t.Fatal("item removed while a subscription remains")
	}
	s3.Unsubscribe()
	if r.IsIncluded("x") {
		t.Fatal("item still included after last unsubscription")
	}
	if got := env.Stats().HandlersRemoved.Load(); got != 1 {
		t.Fatalf("HandlersRemoved = %d, want 1", got)
	}
}

func TestUnsubscribeIdempotent(t *testing.T) {
	env, _ := testEnv()
	r := env.NewRegistry("n1")
	defineConst(r, "x", 1.0)
	s1, _ := r.Subscribe("x")
	s2, _ := r.Subscribe("x")
	s1.Unsubscribe()
	s1.Unsubscribe() // double release must not steal s2's reference
	if !r.IsIncluded("x") {
		t.Fatal("double Unsubscribe released another consumer's reference")
	}
	if _, err := s1.Value(); !errors.Is(err, ErrUnsubscribed) {
		t.Fatalf("read after Unsubscribe: err = %v, want ErrUnsubscribed", err)
	}
	s2.Unsubscribe()
}

func TestReSubscribeAfterRemovalRebuilds(t *testing.T) {
	env, _ := testEnv()
	r := env.NewRegistry("n1")
	builds := 0
	r.MustDefine(&Definition{
		Kind: "x",
		Build: func(*BuildContext) (Handler, error) {
			builds++
			return NewStatic(1.0), nil
		},
	})
	s, _ := r.Subscribe("x")
	s.Unsubscribe()
	s2, _ := r.Subscribe("x")
	defer s2.Unsubscribe()
	if builds != 2 {
		t.Fatalf("builds = %d, want 2 (handler rebuilt after removal)", builds)
	}
}

func TestDependencyAutoInclusionAndExclusion(t *testing.T) {
	env, _ := testEnv()
	r := env.NewRegistry("n1")
	defineConst(r, "a", 2.0)
	defineConst(r, "b", 3.0)
	defineDerived(r, "sum", Dep(Self(), "a"), Dep(Self(), "b"))

	sub, err := r.Subscribe("sum")
	if err != nil {
		t.Fatal(err)
	}
	if !r.IsIncluded("a") || !r.IsIncluded("b") {
		t.Fatal("dependencies not auto-included")
	}
	v, _ := sub.Float()
	if v != 5 {
		t.Fatalf("sum = %v, want 5", v)
	}
	sub.Unsubscribe()
	if r.IsIncluded("a") || r.IsIncluded("b") || r.IsIncluded("sum") {
		t.Fatal("dependencies not auto-excluded on unsubscription")
	}
}

func TestTraversalStopsAtProvidedItems(t *testing.T) {
	env, _ := testEnv()
	r := env.NewRegistry("n1")
	defineConst(r, "a", 1.0)
	defineDerived(r, "b", Dep(Self(), "a"))
	defineDerived(r, "c", Dep(Self(), "b"))

	sa, _ := r.Subscribe("a")
	before := env.Stats().IncludeTraversals.Load()
	sc, _ := r.Subscribe("c")
	steps := env.Stats().IncludeTraversals.Load() - before
	// c and b are new traversal steps; a is already provided and only
	// its refcount is bumped.
	if steps != 2 {
		t.Fatalf("traversal steps = %d, want 2 (stop at provided items)", steps)
	}
	if got := r.Refs("a"); got != 2 {
		t.Fatalf("Refs(a) = %d, want 2 (direct + via b)", got)
	}
	sc.Unsubscribe()
	if !r.IsIncluded("a") {
		t.Fatal("a excluded although directly subscribed")
	}
	if r.IsIncluded("b") || r.IsIncluded("c") {
		t.Fatal("b/c not excluded")
	}
	sa.Unsubscribe()
	if r.IsIncluded("a") {
		t.Fatal("a not excluded after its direct unsubscription")
	}
}

func TestDeepChainInclusion(t *testing.T) {
	env, _ := testEnv()
	r := env.NewRegistry("n1")
	defineConst(r, "k0", 1.0)
	const depth = 50
	for i := 1; i <= depth; i++ {
		defineDerived(r, Kind(fmt.Sprintf("k%d", i)), Dep(Self(), Kind(fmt.Sprintf("k%d", i-1))))
	}
	sub, err := r.Subscribe(Kind(fmt.Sprintf("k%d", depth)))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(r.Included()); got != depth+1 {
		t.Fatalf("included %d items, want %d", got, depth+1)
	}
	v, _ := sub.Float()
	if v != 1 {
		t.Fatalf("chained value = %v, want 1", v)
	}
	sub.Unsubscribe()
	if got := len(r.Included()); got != 0 {
		t.Fatalf("%d items left after unsubscription", got)
	}
}

func TestCycleDetection(t *testing.T) {
	env, _ := testEnv()
	r := env.NewRegistry("n1")
	defineDerived(r, "a", Dep(Self(), "b"))
	defineDerived(r, "b", Dep(Self(), "a"))
	_, err := r.Subscribe("a")
	if !errors.Is(err, ErrCycle) {
		t.Fatalf("err = %v, want ErrCycle", err)
	}
	if len(r.Included()) != 0 {
		t.Fatal("failed subscription left included items behind")
	}
}

func TestSelfCycleDetection(t *testing.T) {
	env, _ := testEnv()
	r := env.NewRegistry("n1")
	defineDerived(r, "a", Dep(Self(), "a"))
	if _, err := r.Subscribe("a"); !errors.Is(err, ErrCycle) {
		t.Fatalf("err = %v, want ErrCycle", err)
	}
}

func TestRollbackOnMissingDependency(t *testing.T) {
	env, _ := testEnv()
	r := env.NewRegistry("n1")
	defineConst(r, "a", 1.0)
	defineDerived(r, "bad", Dep(Self(), "a"), Dep(Self(), "missing"))
	_, err := r.Subscribe("bad")
	if !errors.Is(err, ErrUnknownItem) {
		t.Fatalf("err = %v, want ErrUnknownItem", err)
	}
	if r.IsIncluded("a") {
		t.Fatal("partially included dependency not rolled back")
	}
	if got := env.Stats().HandlersCreated.Load() - env.Stats().HandlersRemoved.Load(); got != 0 {
		t.Fatalf("net handlers = %d after failed subscription, want 0", got)
	}
}

func TestRollbackOnBuildError(t *testing.T) {
	env, _ := testEnv()
	r := env.NewRegistry("n1")
	defineConst(r, "a", 1.0)
	r.MustDefine(&Definition{
		Kind: "bad",
		Deps: []DepRef{Dep(Self(), "a")},
		Build: func(*BuildContext) (Handler, error) {
			return nil, errors.New("boom")
		},
	})
	if _, err := r.Subscribe("bad"); err == nil {
		t.Fatal("expected build error")
	}
	if r.IsIncluded("a") {
		t.Fatal("dependency not rolled back after build error")
	}
}

func TestRedefineWhileInUseFails(t *testing.T) {
	env, _ := testEnv()
	r := env.NewRegistry("n1")
	defineConst(r, "x", 1.0)
	s, _ := r.Subscribe("x")
	err := r.Define(&Definition{
		Kind:  "x",
		Build: func(*BuildContext) (Handler, error) { return NewStatic(2.0), nil },
	})
	if !errors.Is(err, ErrItemInUse) {
		t.Fatalf("err = %v, want ErrItemInUse", err)
	}
	s.Unsubscribe()
	if err := r.Define(&Definition{
		Kind:  "x",
		Build: func(*BuildContext) (Handler, error) { return NewStatic(2.0), nil },
	}); err != nil {
		t.Fatalf("redefine after release failed: %v", err)
	}
	s2, _ := r.Subscribe("x")
	defer s2.Unsubscribe()
	if v, _ := s2.Float(); v != 2 {
		t.Fatalf("redefined value = %v, want 2", v)
	}
}

func TestDefineValidation(t *testing.T) {
	env, _ := testEnv()
	r := env.NewRegistry("n1")
	if err := r.Define(&Definition{Kind: "", Build: func(*BuildContext) (Handler, error) { return NewStatic(1), nil }}); err == nil {
		t.Fatal("empty kind accepted")
	}
	if err := r.Define(&Definition{Kind: "x"}); err == nil {
		t.Fatal("nil Build accepted")
	}
}

func TestAvailableAndIncludedSorted(t *testing.T) {
	env, _ := testEnv()
	r := env.NewRegistry("n1")
	defineConst(r, "zeta", 1.0)
	defineConst(r, "alpha", 1.0)
	defineConst(r, "mid", 1.0)
	av := r.Available()
	if len(av) != 3 || av[0] != "alpha" || av[1] != "mid" || av[2] != "zeta" {
		t.Fatalf("Available = %v", av)
	}
	s, _ := r.Subscribe("zeta")
	defer s.Unsubscribe()
	inc := r.Included()
	if len(inc) != 1 || inc[0] != "zeta" {
		t.Fatalf("Included = %v", inc)
	}
	if !r.IsDefined("alpha") || r.IsDefined("nope") {
		t.Fatal("IsDefined misbehaves")
	}
}

func TestProbeActivationLifecycle(t *testing.T) {
	env, _ := testEnv()
	r := env.NewRegistry("n1")
	var c Counter
	r.MustDefine(&Definition{
		Kind:  "counted",
		Probe: &c,
		Build: func(*BuildContext) (Handler, error) {
			return NewOnDemand(func(clock.Time) (Value, error) { return float64(c.Read()), nil }), nil
		},
	})
	c.Inc() // inactive: ignored
	if c.Read() != 0 {
		t.Fatal("inactive probe counted")
	}
	s1, _ := r.Subscribe("counted")
	s2, _ := r.Subscribe("counted")
	c.Inc()
	c.Inc()
	if v, _ := s1.Float(); v != 2 {
		t.Fatalf("probe value = %v, want 2", v)
	}
	s1.Unsubscribe()
	c.Inc() // still one subscription: active
	if !c.Active() {
		t.Fatal("probe deactivated while handler exists")
	}
	s2.Unsubscribe()
	if c.Active() {
		t.Fatal("probe still active after handler removal")
	}
	c.Inc()
	if c.Read() != 0 {
		t.Fatal("deactivated probe counted or kept stale count")
	}
}

func TestMechanismReporting(t *testing.T) {
	env, _ := testEnv()
	r := env.NewRegistry("n1")
	defineConst(r, "s", 1.0)
	r.MustDefine(&Definition{Kind: "od", Build: func(*BuildContext) (Handler, error) {
		return NewOnDemand(func(clock.Time) (Value, error) { return 1.0, nil }), nil
	}})
	r.MustDefine(&Definition{Kind: "p", Build: func(*BuildContext) (Handler, error) {
		return NewPeriodic(10, func(a, b clock.Time) (Value, error) { return 1.0, nil }), nil
	}})
	r.MustDefine(&Definition{Kind: "t", Build: func(*BuildContext) (Handler, error) {
		return NewTriggered(func(clock.Time) (Value, error) { return 1.0, nil }), nil
	}})
	subs := map[Kind]Mechanism{
		"s": StaticMechanism, "od": OnDemandMechanism,
		"p": PeriodicMechanism, "t": TriggeredMechanism,
	}
	for k, want := range subs {
		s, err := r.Subscribe(k)
		if err != nil {
			t.Fatal(err)
		}
		if got, ok := r.Mechanism(k); !ok || got != want {
			t.Fatalf("Mechanism(%s) = %v, want %v", k, got, want)
		}
		s.Unsubscribe()
	}
	if _, ok := r.Mechanism("s"); ok {
		t.Fatal("Mechanism reported for excluded item")
	}
}

func TestMechanismString(t *testing.T) {
	cases := map[Mechanism]string{
		StaticMechanism:    "static",
		OnDemandMechanism:  "on-demand",
		PeriodicMechanism:  "periodic",
		TriggeredMechanism: "triggered",
		Mechanism(99):      "mechanism(99)",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(m), got, want)
		}
	}
}
