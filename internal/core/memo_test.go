package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/clock"
)

// Versioned read path tests: dependency-stamped memoization, write-epoch
// and version invalidation, singleflight coalescing, and the interplay
// with the circuit breaker. All run on the virtual clock with the
// inline updater and are deterministic.

// memoEnv returns a virtual-clock environment with the versioned read
// path enabled.
func memoEnv() (*Env, *clock.Virtual) {
	vc := clock.NewVirtual()
	return NewEnv(vc, WithMemoizedOnDemand()), vc
}

// definePureSum defines kind as a Pure on-demand sum of its
// dependencies plus base, counting computes into calls.
func definePureSum(r *Registry, kind Kind, base float64, calls *atomic.Int64, deps ...DepRef) {
	r.MustDefine(&Definition{
		Kind: kind,
		Deps: deps,
		Pure: true,
		Build: func(ctx *BuildContext) (Handler, error) {
			handles := make([]*Handle, 0)
			for i := 0; i < ctx.NumDeps(); i++ {
				handles = append(handles, ctx.DepGroup(i)...)
			}
			return NewOnDemand(func(clock.Time) (Value, error) {
				calls.Add(1)
				sum := base
				for _, h := range handles {
					f, err := h.Float()
					if err != nil {
						return nil, err
					}
					sum += f
				}
				return sum, nil
			}), nil
		},
	})
}

func TestMemoHitServesCachedValue(t *testing.T) {
	env, _ := memoEnv()
	r := env.NewRegistry("n1")
	defineConst(r, "size", 7.0)
	var calls atomic.Int64
	definePureSum(r, "derived", 100, &calls, Dep(Self(), "size"))

	sub, err := r.Subscribe("derived")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Unsubscribe()

	before := env.Stats().Snapshot()
	for i := 0; i < 5; i++ {
		v, err := sub.Value()
		if err != nil || v.(float64) != 107 {
			t.Fatalf("read %d: Value = %v, %v; want 107", i, v, err)
		}
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("computes = %d, want 1 (memo must absorb repeat reads)", got)
	}
	d := env.Stats().Snapshot().Sub(before)
	if d.MemoMisses != 1 || d.MemoHits != 4 {
		t.Fatalf("misses=%d hits=%d, want 1 miss + 4 hits", d.MemoMisses, d.MemoHits)
	}
	if d.OnDemandComputes != 1 {
		t.Fatalf("OnDemandComputes = %d, want 1", d.OnDemandComputes)
	}
}

// TestMemoDisabledIdenticalComputeCounts pins the bit-identical-when-
// disabled contract: without WithMemoizedOnDemand, a Pure definition
// recomputes on every access exactly as before the versioned read path
// existed, and no memo counters move.
func TestMemoDisabledIdenticalComputeCounts(t *testing.T) {
	env, _ := testEnv()
	r := env.NewRegistry("n1")
	defineConst(r, "size", 7.0)
	var calls atomic.Int64
	definePureSum(r, "derived", 100, &calls, Dep(Self(), "size"))

	sub, err := r.Subscribe("derived")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Unsubscribe()

	for i := 0; i < 5; i++ {
		if v, err := sub.Value(); err != nil || v.(float64) != 107 {
			t.Fatalf("read %d: Value = %v, %v", i, v, err)
		}
	}
	if got := calls.Load(); got != 5 {
		t.Fatalf("computes = %d, want 5 (recompute per access)", got)
	}
	st := env.Stats().Snapshot()
	if st.MemoHits != 0 || st.MemoMisses != 0 || st.CoalescedReads != 0 {
		t.Fatalf("memo counters moved on a memo-disabled env: %+v", st)
	}
}

// TestMemoRequiresPure: a non-Pure on-demand item recomputes per access
// even on a memo-enabled env.
func TestMemoRequiresPure(t *testing.T) {
	env, _ := memoEnv()
	r := env.NewRegistry("n1")
	var calls atomic.Int64
	r.MustDefine(&Definition{
		Kind: "volatile",
		Build: func(*BuildContext) (Handler, error) {
			return NewOnDemand(func(now clock.Time) (Value, error) {
				calls.Add(1)
				return float64(now), nil
			}), nil
		},
	})
	sub, err := r.Subscribe("volatile")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Unsubscribe()
	for i := 0; i < 3; i++ {
		if _, err := sub.Value(); err != nil {
			t.Fatal(err)
		}
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("computes = %d, want 3", got)
	}
}

// TestMemoBlockedByVolatileDep: a Pure item over a volatile on-demand
// dependency is not stampable and must keep recomputing — a memo over
// an unstamped dependency could serve stale values.
func TestMemoBlockedByVolatileDep(t *testing.T) {
	env, vc := memoEnv()
	r := env.NewRegistry("n1")
	r.MustDefine(&Definition{
		Kind: "clockval",
		Build: func(*BuildContext) (Handler, error) {
			return NewOnDemand(func(now clock.Time) (Value, error) {
				return float64(now), nil
			}), nil
		},
	})
	var calls atomic.Int64
	definePureSum(r, "derived", 0, &calls, Dep(Self(), "clockval"))

	sub, err := r.Subscribe("derived")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Unsubscribe()

	if v, _ := sub.Value(); v.(float64) != 0 {
		t.Fatalf("Value = %v, want 0", v)
	}
	vc.Advance(5)
	if v, _ := sub.Value(); v.(float64) != 5 {
		t.Fatalf("after advance Value = %v, want 5 (volatile dep must stay live)", v)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("computes = %d, want 2 (memo must not engage over a volatile dep)", got)
	}
}

// TestMemoInvalidatedByDepPublish: a periodic dependency publishing a
// new window bumps its version and must invalidate the dependent memo.
func TestMemoInvalidatedByDepPublish(t *testing.T) {
	env, vc := memoEnv()
	r := env.NewRegistry("n1")
	r.MustDefine(&Definition{
		Kind: "win",
		Build: func(*BuildContext) (Handler, error) {
			return NewPeriodic(10, func(start, end clock.Time) (Value, error) {
				return float64(end), nil
			}), nil
		},
	})
	var calls atomic.Int64
	definePureSum(r, "derived", 0, &calls, Dep(Self(), "win"))

	sub, err := r.Subscribe("derived")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Unsubscribe()

	if v, _ := sub.Value(); v.(float64) != 0 {
		t.Fatalf("initial Value = %v, want 0", v)
	}
	sub.Value() // hit
	if got := calls.Load(); got != 1 {
		t.Fatalf("computes = %d before dep publish, want 1", got)
	}
	vc.Advance(10) // window boundary: dep publishes end=10, version bumps
	v, err := sub.Value()
	if err != nil || v.(float64) != 10 {
		t.Fatalf("after dep publish Value = %v, %v; want 10", v, err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("computes = %d after dep publish, want 2 (memo must miss)", got)
	}
	sub.Value() // re-memoized: hit again
	if got := calls.Load(); got != 2 {
		t.Fatalf("computes = %d after re-memoization, want 2", got)
	}
}

// TestMemoInvalidatedByNotifyChanged: NotifyChanged is the purity
// escape hatch — it bumps the item's version so memos stamped over it
// revalidate and miss.
func TestMemoInvalidatedByNotifyChanged(t *testing.T) {
	env, _ := memoEnv()
	r := env.NewRegistry("n1")
	cur := 7.0
	var mu sync.Mutex
	r.MustDefine(&Definition{
		Kind: "size",
		Build: func(*BuildContext) (Handler, error) {
			return NewOnDemand(func(clock.Time) (Value, error) {
				mu.Lock()
				defer mu.Unlock()
				return cur, nil
			}), nil
		},
		Pure: true, // a lie, announced via NotifyChanged below
	})
	var calls atomic.Int64
	definePureSum(r, "derived", 100, &calls, Dep(Self(), "size"))

	sub, err := r.Subscribe("derived")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Unsubscribe()

	if v, _ := sub.Value(); v.(float64) != 107 {
		t.Fatalf("Value = %v, want 107", v)
	}
	mu.Lock()
	cur = 9
	mu.Unlock()
	r.NotifyChanged("size")
	v, err := sub.Value()
	if err != nil || v.(float64) != 109 {
		t.Fatalf("after NotifyChanged Value = %v, %v; want 109", v, err)
	}
}

// TestMemoInvalidatedByStructuralChange: any subscribe/unsubscribe bumps
// the env write epoch, conservatively invalidating every memo.
func TestMemoInvalidatedByStructuralChange(t *testing.T) {
	env, _ := memoEnv()
	r := env.NewRegistry("n1")
	defineConst(r, "size", 7.0)
	defineConst(r, "other", 1.0)
	var calls atomic.Int64
	definePureSum(r, "derived", 100, &calls, Dep(Self(), "size"))

	sub, err := r.Subscribe("derived")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Unsubscribe()

	sub.Value()
	sub.Value()
	if got := calls.Load(); got != 1 {
		t.Fatalf("computes = %d, want 1", got)
	}
	other, err := r.Subscribe("other") // structural change: epoch bump
	if err != nil {
		t.Fatal(err)
	}
	before := env.Stats().Snapshot()
	if v, _ := sub.Value(); v.(float64) != 107 {
		t.Fatalf("Value after structural change = %v, want 107", v)
	}
	if d := env.Stats().Snapshot().Sub(before); d.MemoMisses != 1 {
		t.Fatalf("misses after structural change = %d, want 1 (epoch must invalidate)", d.MemoMisses)
	}
	sub.Value() // re-stamped at the new epoch: hit
	if got := calls.Load(); got != 2 {
		t.Fatalf("computes = %d, want 2 (miss re-memoizes)", got)
	}
	other.Unsubscribe()
}

// TestMemoChainedThroughMemoizedDep: a Pure item over a memoized Pure
// on-demand dependency is stampable; invalidation of the dependency's
// own memo (via the purity escape hatch on a leaf) must cascade to the
// parent even though the middle item's version has not moved yet.
func TestMemoChainedThroughMemoizedDep(t *testing.T) {
	env, _ := memoEnv()
	r := env.NewRegistry("n1")
	cur := 1.0
	var mu sync.Mutex
	r.MustDefine(&Definition{
		Kind: "leaf",
		Pure: true, // announced via NotifyChanged
		Build: func(*BuildContext) (Handler, error) {
			return NewOnDemand(func(clock.Time) (Value, error) {
				mu.Lock()
				defer mu.Unlock()
				return cur, nil
			}), nil
		},
	})
	var midCalls, topCalls atomic.Int64
	definePureSum(r, "mid", 10, &midCalls, Dep(Self(), "leaf"))
	definePureSum(r, "top", 100, &topCalls, Dep(Self(), "mid"))

	sub, err := r.Subscribe("top")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Unsubscribe()

	if v, _ := sub.Value(); v.(float64) != 111 {
		t.Fatalf("Value = %v, want 111", v)
	}
	sub.Value()
	if topCalls.Load() != 1 || midCalls.Load() != 1 {
		t.Fatalf("computes top=%d mid=%d, want 1 each", topCalls.Load(), midCalls.Load())
	}
	mu.Lock()
	cur = 2
	mu.Unlock()
	r.NotifyChanged("leaf")
	v, err := sub.Value()
	if err != nil || v.(float64) != 112 {
		t.Fatalf("after leaf change Value = %v, %v; want 112", v, err)
	}
	// Converged again: both memos re-stamped.
	sub.Value()
	if topCalls.Load() != 2 || midCalls.Load() != 2 {
		t.Fatalf("computes top=%d mid=%d after change, want 2 each", topCalls.Load(), midCalls.Load())
	}
}

// TestMemoErrorMemoized: a plain (non-breaker-eligible) error from a
// pure compute is memoized like a value — recomputing would fail
// identically, so repeat reads serve the cached error without compute.
func TestMemoErrorMemoized(t *testing.T) {
	env, _ := memoEnv()
	r := env.NewRegistry("n1")
	var calls atomic.Int64
	boom := errors.New("bad input")
	r.MustDefine(&Definition{
		Kind: "failing",
		Pure: true,
		Build: func(*BuildContext) (Handler, error) {
			return NewOnDemand(func(clock.Time) (Value, error) {
				calls.Add(1)
				return nil, boom
			}), nil
		},
	})
	sub, err := r.Subscribe("failing")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Unsubscribe()
	for i := 0; i < 3; i++ {
		if _, err := sub.Value(); !errors.Is(err, boom) {
			t.Fatalf("read %d: err = %v, want memoized error", i, err)
		}
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("computes = %d, want 1 (error memoized)", got)
	}
}

// TestMemoCoalescesConcurrentReaders pins the singleflight contract: N
// concurrent readers of one cold memoized item cost exactly one
// compute; the other N-1 wait on the leader's flight and are counted as
// CoalescedReads.
func TestMemoCoalescesConcurrentReaders(t *testing.T) {
	env, _ := memoEnv()
	r := env.NewRegistry("n1")
	const readers = 8
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	r.MustDefine(&Definition{
		Kind: "slow",
		Pure: true,
		Build: func(*BuildContext) (Handler, error) {
			return NewOnDemand(func(clock.Time) (Value, error) {
				once.Do(func() { close(entered) })
				<-release
				return 42.0, nil
			}), nil
		},
	})
	sub, err := r.Subscribe("slow")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Unsubscribe()

	before := env.Stats().Snapshot()
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if v, err := sub.Value(); err != nil || v.(float64) != 42 {
				t.Errorf("Value = %v, %v; want 42", v, err)
			}
		}()
	}
	// One reader is inside the compute; wait until the other N-1 have
	// registered as coalesced waiters, then release the leader.
	<-entered
	waitStat(t, &env.Stats().CoalescedReads, before.CoalescedReads+readers-1)
	close(release)
	wg.Wait()

	d := env.Stats().Snapshot().Sub(before)
	if d.OnDemandComputes != 1 {
		t.Fatalf("OnDemandComputes = %d, want 1 (singleflight)", d.OnDemandComputes)
	}
	if d.CoalescedReads != readers-1 {
		t.Fatalf("CoalescedReads = %d, want %d", d.CoalescedReads, readers-1)
	}
	if d.MemoMisses != 1 {
		t.Fatalf("MemoMisses = %d, want 1 (waiters are not misses)", d.MemoMisses)
	}
	// The published memo serves everyone from here.
	if v, _ := sub.Value(); v.(float64) != 42 {
		t.Fatal("memo not published after coalesced compute")
	}
	if d2 := env.Stats().Snapshot().Sub(before); d2.OnDemandComputes != 1 {
		t.Fatalf("OnDemandComputes = %d after hit, want 1", d2.OnDemandComputes)
	}
}

// TestMemoQuarantineInterplay: breaker-eligible failures are never
// memoized; the trip drops the memo and quarantined reads serve
// last-good tagged ErrStale; probe recovery restores fresh memoized
// reads.
func TestMemoQuarantineInterplay(t *testing.T) {
	vc := clock.NewVirtual()
	env := NewEnv(vc,
		WithMemoizedOnDemand(),
		WithBreaker(BreakerPolicy{
			FailureThreshold: 2,
			FailureWindow:    100,
			ProbeBackoff:     7,
			MaxProbeBackoff:  28,
		}))
	r := env.NewRegistry("n1")
	var failing atomic.Bool
	var calls atomic.Int64
	r.MustDefine(&Definition{
		Kind: "flaky",
		Pure: true,
		Build: func(*BuildContext) (Handler, error) {
			return NewOnDemand(func(clock.Time) (Value, error) {
				calls.Add(1)
				if failing.Load() {
					panic("injected")
				}
				return 42.0, nil
			}), nil
		},
	})
	sub, err := r.Subscribe("flaky")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Unsubscribe()

	if v, _ := sub.Value(); v.(float64) != 42 {
		t.Fatal("healthy read failed")
	}
	sub.Value() // memo hit
	if got := calls.Load(); got != 1 {
		t.Fatalf("computes = %d, want 1", got)
	}

	// Panics invalidate nothing by themselves — the memo still stamps
	// valid — so force misses through the purity escape hatch, then fail.
	failing.Store(true)
	r.NotifyChanged("flaky")
	if _, err := sub.Value(); !errors.Is(err, ErrComputePanic) || errors.Is(err, ErrStale) {
		t.Fatalf("failure 1 err = %v, want bare ErrComputePanic", err)
	}
	if _, err := sub.Value(); !errors.Is(err, ErrStale) {
		t.Fatalf("failure 2 err = %v, want quarantined ErrStale", err)
	}
	// Quarantined: served from last-good, no compute, no memoization.
	n := calls.Load()
	v, err := sub.Value()
	if !errors.Is(err, ErrStale) || v.(float64) != 42 {
		t.Fatalf("quarantined read = %v, %v; want 42 + ErrStale", v, err)
	}
	if calls.Load() != n {
		t.Fatal("quarantined read recomputed")
	}

	// Heal and run the probe (armed at +7 on the inline updater).
	failing.Store(false)
	vc.Advance(7)
	env.Quiesce()
	v, err = sub.Value()
	if err != nil || v.(float64) != 42 {
		t.Fatalf("recovered read = %v, %v; want fresh 42", v, err)
	}
	if hs, _ := r.Health("flaky"); hs.State != Healthy {
		t.Fatalf("health after probe = %+v, want healthy", hs)
	}
	// Memoization re-engages after recovery.
	n = calls.Load()
	sub.Value()
	if calls.Load() != n {
		t.Fatal("post-recovery read did not hit the re-stamped memo")
	}
}

// TestQueueDepthDeltaGauge is the regression test for the QueueDepth
// gauge race: with Store-based tracking, an enqueue's depth n could be
// overwritten by a racing dequeue's older n-1, leaving the gauge
// permanently skewed. The delta-based gauge must read exactly zero
// after balanced enqueue/dequeue traffic from many goroutines.
func TestQueueDepthDeltaGauge(t *testing.T) {
	var s Stats
	const workers, rounds = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				s.noteQueueDelta(1)
				s.noteQueueDelta(-1)
			}
		}()
	}
	wg.Wait()
	if got := s.QueueDepth.Load(); got != 0 {
		t.Fatalf("QueueDepth = %d after balanced traffic, want 0", got)
	}
	hw := s.QueueHighWater.Load()
	if hw < 1 || hw > workers {
		t.Fatalf("QueueHighWater = %d, want in [1, %d]", hw, workers)
	}
}

// TestShardedCounter checks that concurrent striped adds sum exactly.
func TestShardedCounter(t *testing.T) {
	var c ShardedCounter
	const workers, rounds = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != workers*rounds {
		t.Fatalf("Load = %d, want %d", got, workers*rounds)
	}
	c.Add(-5)
	if got := c.Load(); got != workers*rounds-5 {
		t.Fatalf("Load after negative add = %d", got)
	}
}
