package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/clock"
)

// Env is the graph-wide context shared by all registries of one query
// graph: the clock, the periodic updater, and the framework
// self-metrics.
//
// Locking follows the three-level scheme of Section 4.2 adapted to Go,
// with the graph level sharded by dependency scope (see scope.go):
// each connected component of the dependency relation over registries
// carries its own structural lock, and a structural operation —
// subscription, unsubscription, definition, event firing, trigger
// propagation, introspection — locks only the component(s) covering
// the registries it touches, in ascending component-id order when it
// spans several. Each Registry additionally carries a node-level
// RWMutex guarding its maps, and each handler guards its state with a
// metadata-level mutex while publishing its value through an atomic
// snapshot for lock-free reads. Go deliberately has no reentrant
// locks, so instead of reentrancy the framework enforces a strict lock
// order (component -> node -> item) and never calls back into
// structural operations while holding a node- or item-level lock.
type Env struct {
	clk     clock.Clock
	updater Updater
	stats   Stats

	// seq numbers entries in creation order for deterministic
	// propagation.
	seq atomic.Int64

	// writeEpoch counts structural mutations env-wide: every
	// subscribe/unsubscribe/redefine (any bumpStruct) advances it.
	// Memoized on-demand reads stamp the epoch at compute time and treat
	// any advance as an invalidation — a cheap, conservative guard that
	// lets the lock-free read path notice structural change without
	// touching component locks (see handler.go).
	writeEpoch atomic.Uint64

	// memoOnDemand enables dependency-stamped memoization for on-demand
	// handlers whose Definition declares Pure. Off by default: the
	// paper's on-demand contract is recompute-per-access.
	memoOnDemand bool

	// compSeq numbers dependency-scope components; ids define the
	// cross-component lock-acquisition order.
	compSeq atomic.Int64

	// naivePropagation enables the ablation propagation mode.
	naivePropagation bool

	// deltaOff disables the delta channel: aggregates built with
	// NewDeltaAggregate refresh by full fold only (see delta.go). Set
	// by WithoutDeltaPropagation and by the WithNaivePropagation
	// ablation.
	deltaOff bool

	// perHandlerTicks enables the legacy per-handler tick dispatch
	// (one Submit and one propagation per periodic handler per
	// boundary) instead of scope-batched ticks. Ablation only.
	perHandlerTicks bool

	// async reports that the updater runs tasks off the submitting
	// goroutine (pool updater). Compute deadlines require it: with the
	// inline updater the compute runs on the clock-advancing goroutine,
	// so a deadline wait could never fire (the clock cannot advance
	// while its own callback blocks).
	async bool

	// deadline is the graph-wide per-compute deadline (0 = none); a
	// definition's ComputeDeadline overrides it per item.
	deadline clock.Duration

	// breaker, when non-nil, enables circuit-breaker quarantine for
	// handlers that repeatedly panic or time out.
	breaker *BreakerPolicy

	// sched is the lazily created bucketed deadline scheduler shared
	// by every periodic handler of the graph: all handlers due at one
	// instant cost a single clock event and arrive as one batch (see
	// batch.go).
	schedOnce sync.Once
	sched     *clock.Scheduler

	// tickMu guards the dispatch-side grouping scratch in batch.go.
	tickMu     sync.Mutex
	tickGroups []tickGroup

	// journal, when non-nil, receives every structural mutation in
	// commit order (see journal.go). The pointer-to-interface cell keeps
	// the no-journal hot path at one atomic load.
	journal atomic.Pointer[Journal]

	// restorePending, when non-nil, is the recovery-time predicate
	// consulted by handler start paths: items it claims skip their
	// initial compute and publish ErrNoValue, pending a RestoreStale
	// that re-publishes the checkpointed last-good value (see
	// restore.go). Installed only for the duration of a recovery replay.
	restorePending atomic.Pointer[func(*Registry, Kind) bool]
}

// EnvOption configures an Env.
type EnvOption func(*Env)

// WithUpdater selects the periodic-update executor (default: inline).
func WithUpdater(u Updater) EnvOption {
	return func(e *Env) { e.updater = u }
}

// WithNaivePropagation switches trigger propagation from topological
// order to naive depth-first recursion. FOR ABLATION EXPERIMENTS ONLY:
// naive propagation refreshes diamond-shaped dependents once per
// incoming edge — exponentially often in layered DAGs — and may
// compute them from half-updated inputs, which is exactly the
// update-order problem Section 3.3 warns about. The option also forces
// the delta channel off (every aggregate refresh is a full fold), so
// the flag means "paper-faithful baseline" on every propagation axis:
// no plan cache is consulted in naive mode, and no O(1) delta
// shortcut hides the per-edge recompute cost being measured.
func WithNaivePropagation() EnvOption {
	return func(e *Env) {
		e.naivePropagation = true
		e.deltaOff = true
	}
}

// WithoutDeltaPropagation disables the delta channel on an otherwise
// unchanged pipeline: publishers stop recording (old, new) transitions
// and every NewDeltaAggregate refresh runs the full fold, exactly the
// paper's triggered recompute. FOR ABLATION AND BASELINE MEASUREMENTS
// (benchmark E21) and for the delta-off half of the model-based
// equivalence harness; the delta path is a pure optimization, so
// values are byte-identical with the option on or off.
func WithoutDeltaPropagation() EnvOption {
	return func(e *Env) { e.deltaOff = true }
}

// WithPerHandlerTicks disables tick batching: every periodic handler
// is dispatched individually at its boundary and propagates its own
// update, as if it still owned a private ticker. FOR ABLATION AND
// BASELINE MEASUREMENTS ONLY (benchmark E19): same-instant publishes
// then no longer coalesce their trigger propagation, so a triggered
// item depending on k same-boundary periodic items refreshes k times
// per instant instead of once.
func WithPerHandlerTicks() EnvOption {
	return func(e *Env) { e.perHandlerTicks = true }
}

// WithMemoizedOnDemand enables the versioned read path for on-demand
// items declared Pure: such an item caches its latest (value, error)
// together with the publication versions of its dependencies and the
// env write epoch, and a read that finds every stamp unchanged returns
// the cached pair with no mutex and no compute — exactly the value a
// recompute would produce, because a pure compute is a function of its
// dependencies alone. Reads that find a stamp changed recompute, and
// concurrent readers of the same miss coalesce behind a single compute
// (singleflight). Items not declared Pure — and every item when this
// option is off — keep the paper's recompute-per-access behaviour
// bit-for-bit.
func WithMemoizedOnDemand() EnvOption {
	return func(e *Env) { e.memoOnDemand = true }
}

// WithComputeDeadline bounds every metadata computation of the graph
// to d abstract time units: a compute still running at its deadline is
// abandoned (its eventual result fenced off by a generation counter)
// and the item publishes ErrComputeTimeout. A definition's
// ComputeDeadline overrides d per item; 0 keeps computations unbounded.
//
// Deadlines require an asynchronous updater (NewPoolUpdater): with the
// inline updater computations run on the clock-advancing goroutine,
// where a deadline could never fire. On inline envs the option is
// accepted but inert.
func WithComputeDeadline(d clock.Duration) EnvOption {
	return func(e *Env) { e.deadline = d }
}

// WithBreaker enables circuit-breaker quarantine: a handler whose
// computes fail (panic or deadline timeout) p.FailureThreshold times
// within p.FailureWindow trips to quarantine — it is unscheduled,
// serves its last-good value tagged with *StaleError, and is re-probed
// on exponential backoff until a success closes the breaker. Passing
// the zero BreakerPolicy selects DefaultBreakerPolicy.
func WithBreaker(p BreakerPolicy) EnvOption {
	return func(e *Env) {
		if p.FailureThreshold <= 0 {
			p = DefaultBreakerPolicy
		}
		e.breaker = &p
	}
}

// NewEnv returns an Env on the given clock.
func NewEnv(clk clock.Clock, opts ...EnvOption) *Env {
	e := &Env{clk: clk, updater: NewInlineUpdater()}
	for _, o := range opts {
		o(e)
	}
	if _, inline := e.updater.(inlineUpdater); !inline {
		e.async = true
	}
	if b, ok := e.updater.(statsBinder); ok {
		b.bindStats(&e.stats)
	}
	return e
}

// Clock returns the environment's clock.
func (e *Env) Clock() clock.Clock { return e.clk }

// Updater returns the periodic-update executor.
func (e *Env) Updater() Updater { return e.updater }

// Stats returns the framework self-metrics.
func (e *Env) Stats() *Stats { return &e.stats }

// Now returns the current time.
func (e *Env) Now() clock.Time { return e.clk.Now() }

// Quiesce blocks until every asynchronous metadata maintenance task
// submitted so far (periodic ticks and their trigger propagation on a
// pool updater) has completed. With the inline updater it returns
// immediately. It is the quiescence barrier used by the model-based
// correctness harness: after Quiesce — and with no concurrent
// structural operations — the metadata state is stable and can be
// compared against a reference model.
func (e *Env) Quiesce() { e.updater.WaitIdle() }

// HasBreaker reports whether circuit-breaker quarantine is enabled
// (WithBreaker). Recovery uses it to decide whether restored items can
// be parked in the quarantine-backed stale-serving state.
func (e *Env) HasBreaker() bool { return e.breaker != nil }

// nextSeq returns the next entry creation sequence number.
func (e *Env) nextSeq() int64 { return e.seq.Add(1) }

// deadlineFor returns the compute deadline for def: the definition's
// override when set, else the graph-wide default. Always 0 (unbounded)
// on inline-updater envs, where a deadline wait would deadlock the
// clock.
func (e *Env) deadlineFor(def *Definition) clock.Duration {
	if !e.async {
		return 0
	}
	if def != nil && def.ComputeDeadline > 0 {
		return def.ComputeDeadline
	}
	return e.deadline
}

// scheduler returns the env's bucketed tick scheduler, creating it on
// first use so envs without periodic metadata never pay for one.
func (e *Env) scheduler() *clock.Scheduler {
	e.schedOnce.Do(func() {
		e.sched = clock.NewScheduler(e.clk, e.dispatchTicks)
	})
	return e.sched
}
