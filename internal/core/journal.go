package core

import "repro/internal/clock"

// Structural journal: the core-side half of the durability plane
// (internal/persist). Every structural mutation that already bumps the
// structural version — external subscribe/unsubscribe, persistable
// definition registration, live mechanism migration — is also reported
// to the installed Journal, in commit order, while the mutating
// operation still holds the dependency-scope component lock. WAL order
// therefore equals commit order per component, which is what makes
// replay reproduce the pre-crash topology exactly.
//
// Only *external* subscriptions are journaled: the transitive includes
// a subscription performs are derived state, reproduced by replaying
// the external op. Only definitions that declare a persistence codec
// (Definition.Persist) are journaled: a Build closure cannot be
// serialized, so non-persistable definitions are expected to be
// re-registered by application code before recovery replays the log.

// JournalOpKind identifies one structural operation class.
type JournalOpKind uint8

const (
	// JournalDefine records Registry.Define of a definition that
	// declares a persistence codec.
	JournalDefine JournalOpKind = iota + 1
	// JournalSubscribe records a successful external Registry.Subscribe.
	JournalSubscribe
	// JournalUnsubscribe records Subscription.Unsubscribe.
	JournalUnsubscribe
	// JournalMigrate records a successful, non-no-op Registry.Migrate.
	JournalMigrate
)

// JournalOp is one recorded structural mutation.
type JournalOp struct {
	Op       JournalOpKind
	Registry string
	Kind     Kind
	// To and Window carry the target mechanism (and resolved periodic
	// window) of a JournalMigrate; zero otherwise.
	To     Mechanism
	Window clock.Duration
	// Codec and CodecArgs carry Definition.Persist/PersistArgs of a
	// JournalDefine; empty otherwise.
	Codec     string
	CodecArgs string
}

// Journal receives structural ops as they commit. Record is invoked
// with the mutating operation's dependency-scope lock held, so
// implementations must not call back into structural operations
// (Subscribe, Define, Migrate, lockScope takers) — node-level read
// primitives (Peek, ItemVersion, Health, Included) are safe.
type Journal interface {
	Record(op JournalOp)
}

// SetJournal installs (or, with nil, removes) the env's structural
// journal. The usual installer is internal/persist, which attaches the
// journal after recovery has replayed the previous log — recovery's own
// replayed operations are therefore never re-journaled.
func (e *Env) SetJournal(j Journal) {
	if j == nil {
		e.journal.Store(nil)
		return
	}
	cell := new(Journal)
	*cell = j
	e.journal.Store(cell)
}

// journalRecord hands op to the installed journal; with none installed
// it costs one atomic load and a predicted-false branch.
func (e *Env) journalRecord(op JournalOp) {
	if cell := e.journal.Load(); cell != nil {
		(*cell).Record(op)
	}
}
