package core

import "fmt"

// Crash recovery into degraded mode (internal/persist).
//
// A recovered plane must serve reads immediately without re-running
// every compute: cold-starting N items costs N computes before the
// first read, while the checkpoint already holds a last-good value for
// each of them. Recovery therefore runs in two phases:
//
//  1. While the restore-pending predicate is installed
//     (SetRestorePending), replayed subscriptions skip their initial
//     compute and publish ErrNoValue — a placeholder no reader should
//     ever see, because phase 2 follows before recovery returns.
//  2. RestoreStale re-publishes each checkpointed (value, version)
//     pair with the item parked in quarantine: reads serve the
//     last-good value tagged *StaleError (exactly PR 4's degraded
//     mode), and the armed recovery probe warms the item back to
//     healthy through the existing probe/republish machinery.
//
// The persisted publication version is restored before the stale
// publication bumps it, so a watcher resuming with since=v from before
// a graceful restart receives exactly one event (the stale republish at
// v+1) instead of a replayed history or a dead stream.

// SetRestorePending installs (or, with nil, clears) the recovery-time
// skip-compute predicate. While installed, a periodic or triggered
// handler whose (registry, kind) the predicate claims publishes
// ErrNoValue at start instead of running its initial compute; the
// caller is expected to RestoreStale the item before exposing the
// plane. Only internal/persist should install this.
func (e *Env) SetRestorePending(pred func(reg *Registry, kind Kind) bool) {
	if pred == nil {
		e.restorePending.Store(nil)
		return
	}
	e.restorePending.Store(&pred)
}

// restorePendingFor reports whether a recovery replay claims the item.
func (e *Env) restorePendingFor(reg *Registry, kind Kind) bool {
	p := e.restorePending.Load()
	return p != nil && (*p)(reg, kind)
}

// RestoreStale re-publishes a checkpointed last-good value on an
// included item and parks the item in quarantine serving it: reads
// return (v, *StaleError) with cause as the quarantine cause
// (ErrRestored when nil), and a recovery probe is armed on the breaker
// policy's backoff — its success recomputes, republishes fresh, and
// closes the breaker, exactly as if the item had tripped at runtime.
//
// version is the item's pre-crash publication version; the entry's
// version counter is raised to it (never lowered) before the stale
// publication bumps it, so since-based watch resumption survives the
// restart. It returns ErrUnsubscribed if the item is not included and
// ErrNotRestorable for static handlers or envs without WithBreaker
// (there is no quarantine machinery to serve the stale value through).
func (r *Registry) RestoreStale(kind Kind, v Value, version uint64, cause error) error {
	sc := r.env.lockScope(r)
	defer sc.unlock()
	e, ok := r.entries[kind]
	if !ok {
		return fmt.Errorf("%w: %s/%s", ErrUnsubscribed, r.id, kind)
	}
	if cause == nil {
		cause = ErrRestored
	}
	now := r.env.Now()
	switch h := e.handler.(type) {
	case *onDemandHandler:
		h.mu.Lock()
		if h.health == nil {
			h.mu.Unlock()
			return fmt.Errorf("%w: %s/%s has no breaker (env without WithBreaker)",
				ErrNotRestorable, r.id, kind)
		}
		h.lastGood = v
		h.memo.Store(nil)
		h.health.forceQuarantine(now, cause)
		h.mu.Unlock()
	case *periodicHandler:
		h.mu.Lock()
		if h.health == nil {
			h.mu.Unlock()
			return fmt.Errorf("%w: %s/%s has no breaker (env without WithBreaker)",
				ErrNotRestorable, r.id, kind)
		}
		h.lastGood = h.snaps.put(v, nil)
		h.health.forceQuarantine(now, cause)
		// Unschedule the boundary cadence like a runtime trip; the probe
		// recomputes the cumulative window and re-arms it on success.
		if t := h.task; t != nil {
			h.task = nil
			r.env.scheduler().Cancel(t)
		}
		h.cur.Store(h.snaps.put(v, h.health.staleError()))
		h.mu.Unlock()
	case *triggeredHandler:
		h.mu.Lock()
		if h.health == nil {
			h.mu.Unlock()
			return fmt.Errorf("%w: %s/%s has no breaker (env without WithBreaker)",
				ErrNotRestorable, r.id, kind)
		}
		h.lastGood = h.snaps.put(v, nil)
		if h.ds != nil {
			// The restored accumulator is unknown; the next locked
			// refresh (or the probe) re-folds and re-validates.
			h.ds.valid = false
		}
		h.health.forceQuarantine(now, cause)
		h.cur.Store(h.snaps.put(v, h.health.staleError()))
		h.mu.Unlock()
	default:
		return fmt.Errorf("%w: %s/%s handler is %T", ErrNotRestorable, r.id, kind, e.handler)
	}
	// Restore the publication version stream: raise to the persisted
	// version (CAS loop: a concurrent publication may race the restore),
	// then bump for the stale publication itself.
	for {
		cur := e.version.Load()
		if cur >= version || e.version.CompareAndSwap(cur, version) {
			break
		}
	}
	e.bumpVersion()
	// Propagate like any publication: dependents that were NOT restored
	// (items subscribed in the WAL tail after the checkpoint) refresh
	// from the restored value instead of staying on their placeholder;
	// restored dependents are quarantined and their refresh is a no-op.
	if e.ndeps.Load() > 0 {
		if e.deltaDeps > 0 {
			notifyDeltaLocked(e)
		}
		r.propagateLocked(e, now)
	}
	r.env.stats.RestoredStale.Add(1)
	return nil
}
