package core

import (
	"sync"

	"repro/internal/ring"
)

// Updater executes the periodic update tasks of the metadata framework
// (Section 4.3). The inline updater runs tasks synchronously on the
// clock goroutine, which keeps virtual-clock experiments fully
// deterministic and "is sufficient for small query graphs". The pool
// updater distributes tasks over a small pool of worker goroutines for
// large graphs.
type Updater interface {
	// Submit schedules fn for execution.
	Submit(fn func())
	// WaitIdle blocks until every submitted task has completed.
	WaitIdle()
	// Stop shuts the updater down after draining pending tasks.
	// Submitting after Stop is a no-op.
	Stop()
}

// inlineUpdater runs tasks synchronously.
type inlineUpdater struct{}

// NewInlineUpdater returns an Updater executing each task immediately
// on the submitting goroutine.
func NewInlineUpdater() Updater { return inlineUpdater{} }

func (inlineUpdater) Submit(fn func()) { fn() }
func (inlineUpdater) WaitIdle()        {}
func (inlineUpdater) Stop()            {}

// poolUpdater distributes tasks over worker goroutines. The task queue
// is unbounded: Submit never blocks, so a task running on a pool
// worker can safely submit follow-up work. (A bounded channel here can
// wedge the whole pool: every worker blocks in Submit on the full
// channel, and no worker is left to drain it.)
type poolUpdater struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   ring.Buffer[func()]
	pending sync.WaitGroup
	workers sync.WaitGroup
	stopped bool // no new submissions accepted
	closed  bool // queue drained; workers exit
}

// NewPoolUpdater returns an Updater backed by k worker goroutines.
func NewPoolUpdater(k int) Updater {
	if k <= 0 {
		panic("core: pool updater needs at least one worker")
	}
	u := &poolUpdater{}
	u.cond = sync.NewCond(&u.mu)
	u.workers.Add(k)
	for i := 0; i < k; i++ {
		go u.work()
	}
	return u
}

func (u *poolUpdater) work() {
	defer u.workers.Done()
	for {
		u.mu.Lock()
		for u.queue.Len() == 0 && !u.closed {
			u.cond.Wait()
		}
		if u.queue.Len() == 0 {
			u.mu.Unlock()
			return
		}
		fn := u.queue.Pop()
		u.mu.Unlock()
		fn()
		u.pending.Done()
	}
}

// Submit implements Updater. It never blocks.
func (u *poolUpdater) Submit(fn func()) {
	u.mu.Lock()
	if u.stopped {
		u.mu.Unlock()
		return
	}
	u.pending.Add(1)
	u.queue.Push(fn)
	u.mu.Unlock()
	u.cond.Signal()
}

// WaitIdle implements Updater.
func (u *poolUpdater) WaitIdle() { u.pending.Wait() }

// Stop implements Updater.
func (u *poolUpdater) Stop() {
	u.mu.Lock()
	if u.stopped {
		u.mu.Unlock()
		return
	}
	u.stopped = true
	u.mu.Unlock()
	u.pending.Wait()
	u.mu.Lock()
	u.closed = true
	u.mu.Unlock()
	u.cond.Broadcast()
	u.workers.Wait()
}
