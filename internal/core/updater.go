package core

import (
	"sync"

	"repro/internal/ring"
)

// Updater executes the periodic update tasks of the metadata framework
// (Section 4.3). The inline updater runs tasks synchronously on the
// clock goroutine, which keeps virtual-clock experiments fully
// deterministic and "is sufficient for small query graphs". The pool
// updater distributes tasks over a small pool of worker goroutines for
// large graphs.
type Updater interface {
	// Submit schedules fn for execution.
	Submit(fn func())
	// WaitIdle blocks until every submitted task has completed.
	WaitIdle()
	// Stop shuts the updater down after draining pending tasks.
	// Submitting after Stop is a no-op.
	Stop()
}

// sheddableUpdater is implemented by updaters with a backpressure
// policy for loss-tolerant work. SubmitSheddable schedules fn like
// Submit, but marks it as superseded-by-key: a later sheddable
// submission with the same key replaces a still-queued earlier one
// (the earlier fn is dropped and counted in Stats.ShedTicks), and when
// the queue is over capacity a keyless-coalesce submission may be shed
// outright. Periodic scope batches are sheddable — a batch superseded
// by a newer boundary of the same scope recomputes the same cumulative
// windows at a later instant, so shedding costs latency, never data —
// while triggered propagations and recovery probes are always
// submitted through plain Submit and are never dropped.
type sheddableUpdater interface {
	SubmitSheddable(key any, fn func())
}

// statsBinder is implemented by updaters that report queue depth into
// the env's Stats. NewEnv binds the env's counters at construction.
type statsBinder interface {
	bindStats(s *Stats)
}

// inlineUpdater runs tasks synchronously.
type inlineUpdater struct{}

// NewInlineUpdater returns an Updater executing each task immediately
// on the submitting goroutine.
func NewInlineUpdater() Updater { return inlineUpdater{} }

func (inlineUpdater) Submit(fn func()) { fn() }
func (inlineUpdater) WaitIdle()        {}
func (inlineUpdater) Stop()            {}

// poolTask is one queued unit of work. Sheddable tasks keep their
// coalescing key while queued so a newer submission can supersede them
// in place.
type poolTask struct {
	fn  func()
	key any // non-nil while the task is superseded-by-key eligible
}

// poolUpdater distributes tasks over worker goroutines. Submit never
// blocks — a task running on a pool worker can safely submit follow-up
// work; a bounded blocking channel here could wedge the whole pool,
// with every worker stuck in Submit on the full channel and no worker
// left to drain it. Backpressure is therefore applied by class instead
// of by blocking: must-run tasks (Submit) always enqueue, while
// sheddable tasks (SubmitSheddable) coalesce per key and are shed when
// the queue exceeds its capacity (see sheddableUpdater).
type poolUpdater struct {
	capacity int    // sheddable-class queue bound; 0 = unbounded, no shedding
	stats    *Stats // bound by NewEnv; nil until then

	mu        sync.Mutex
	cond      *sync.Cond
	queue     ring.Buffer[*poolTask]
	sheddable map[any]*poolTask // queued sheddable tasks by key
	pending   sync.WaitGroup
	workers   sync.WaitGroup
	stopped   bool // no new submissions accepted
	closed    bool // queue drained; workers exit
}

// PoolOption configures NewPoolUpdater.
type PoolOption func(*poolUpdater)

// WithQueueCapacity bounds the updater's queue at n tasks and enables
// the sheddable backpressure class: periodic scope batches coalesce per
// dependency scope, and when the queue holds n or more tasks a
// sheddable submission with no coalescing target is dropped (counted
// in Stats.ShedTicks). Must-run submissions are never dropped; the
// queue may exceed n with must-run work, which Stats.QueueHighWater
// makes visible. n <= 0 leaves the queue unbounded.
func WithQueueCapacity(n int) PoolOption {
	return func(u *poolUpdater) { u.capacity = n }
}

// NewPoolUpdater returns an Updater backed by k worker goroutines.
func NewPoolUpdater(k int, opts ...PoolOption) Updater {
	if k <= 0 {
		panic("core: pool updater needs at least one worker")
	}
	u := &poolUpdater{}
	for _, o := range opts {
		o(u)
	}
	if u.capacity > 0 {
		u.sheddable = make(map[any]*poolTask)
	}
	u.cond = sync.NewCond(&u.mu)
	u.workers.Add(k)
	for i := 0; i < k; i++ {
		go u.work()
	}
	return u
}

func (u *poolUpdater) bindStats(s *Stats) {
	u.mu.Lock()
	u.stats = s
	u.mu.Unlock()
}

func (u *poolUpdater) work() {
	defer u.workers.Done()
	for {
		u.mu.Lock()
		for u.queue.Len() == 0 && !u.closed {
			u.cond.Wait()
		}
		if u.queue.Len() == 0 {
			u.mu.Unlock()
			return
		}
		t := u.queue.Pop()
		if t.key != nil {
			// Once popped the task is committed to run; it can no
			// longer be superseded.
			if u.sheddable[t.key] == t {
				delete(u.sheddable, t.key)
			}
			t.key = nil
		}
		if u.stats != nil {
			u.stats.noteQueueDelta(-1)
		}
		u.mu.Unlock()
		t.fn()
		u.pending.Done()
	}
}

// Submit implements Updater: must-run class, never blocks, never
// drops.
func (u *poolUpdater) Submit(fn func()) {
	u.mu.Lock()
	if u.stopped {
		u.mu.Unlock()
		return
	}
	u.enqueueLocked(&poolTask{fn: fn})
	u.mu.Unlock()
	u.cond.Signal()
}

// SubmitSheddable implements sheddableUpdater. With no capacity
// configured it behaves exactly like Submit.
func (u *poolUpdater) SubmitSheddable(key any, fn func()) {
	u.mu.Lock()
	if u.stopped {
		u.mu.Unlock()
		return
	}
	if u.capacity <= 0 {
		u.enqueueLocked(&poolTask{fn: fn})
		u.mu.Unlock()
		u.cond.Signal()
		return
	}
	if prev, ok := u.sheddable[key]; ok {
		// Coalesce: the newer batch supersedes the queued one in
		// place. The queue slot, and the pending count it carries, are
		// reused, so WaitIdle accounting stays balanced.
		prev.fn = fn
		if u.stats != nil {
			u.stats.ShedTicks.Add(1)
		}
		u.mu.Unlock()
		return
	}
	if u.queue.Len() >= u.capacity {
		// Over capacity with nothing to coalesce into: shed. The
		// handlers of a shed scope batch stay armed for their next
		// boundary, where the cumulative window covers this one.
		if u.stats != nil {
			u.stats.ShedTicks.Add(1)
		}
		u.mu.Unlock()
		return
	}
	t := &poolTask{fn: fn, key: key}
	u.sheddable[key] = t
	u.enqueueLocked(t)
	u.mu.Unlock()
	u.cond.Signal()
}

// enqueueLocked pushes t and maintains depth accounting. u.mu held.
func (u *poolUpdater) enqueueLocked(t *poolTask) {
	u.pending.Add(1)
	u.queue.Push(t)
	if u.stats != nil {
		u.stats.noteQueueDelta(1)
	}
}

// WaitIdle implements Updater.
func (u *poolUpdater) WaitIdle() { u.pending.Wait() }

// Stop implements Updater. It drains pending tasks, then shuts the
// workers down; Submit and SubmitSheddable after Stop are no-ops (the
// task is neither run nor counted), so late boundary fires against a
// stopped updater cannot enqueue into a dead queue.
func (u *poolUpdater) Stop() {
	u.mu.Lock()
	if u.stopped {
		u.mu.Unlock()
		return
	}
	u.stopped = true
	u.mu.Unlock()
	u.pending.Wait()
	u.mu.Lock()
	u.closed = true
	u.mu.Unlock()
	u.cond.Broadcast()
	u.workers.Wait()
}
