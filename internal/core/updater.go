package core

import "sync"

// Updater executes the periodic update tasks of the metadata framework
// (Section 4.3). The inline updater runs tasks synchronously on the
// clock goroutine, which keeps virtual-clock experiments fully
// deterministic and "is sufficient for small query graphs". The pool
// updater distributes tasks over a small pool of worker goroutines for
// large graphs.
type Updater interface {
	// Submit schedules fn for execution.
	Submit(fn func())
	// WaitIdle blocks until every submitted task has completed.
	WaitIdle()
	// Stop shuts the updater down after draining pending tasks.
	// Submitting after Stop is a no-op.
	Stop()
}

// inlineUpdater runs tasks synchronously.
type inlineUpdater struct{}

// NewInlineUpdater returns an Updater executing each task immediately
// on the submitting goroutine.
func NewInlineUpdater() Updater { return inlineUpdater{} }

func (inlineUpdater) Submit(fn func()) { fn() }
func (inlineUpdater) WaitIdle()        {}
func (inlineUpdater) Stop()            {}

// poolUpdater distributes tasks over worker goroutines.
type poolUpdater struct {
	tasks   chan func()
	pending sync.WaitGroup
	workers sync.WaitGroup
	mu      sync.Mutex
	stopped bool
}

// NewPoolUpdater returns an Updater backed by k worker goroutines.
func NewPoolUpdater(k int) Updater {
	if k <= 0 {
		panic("core: pool updater needs at least one worker")
	}
	u := &poolUpdater{tasks: make(chan func(), 4*k)}
	u.workers.Add(k)
	for i := 0; i < k; i++ {
		go func() {
			defer u.workers.Done()
			for fn := range u.tasks {
				fn()
				u.pending.Done()
			}
		}()
	}
	return u
}

// Submit implements Updater.
func (u *poolUpdater) Submit(fn func()) {
	u.mu.Lock()
	if u.stopped {
		u.mu.Unlock()
		return
	}
	u.pending.Add(1)
	u.mu.Unlock()
	u.tasks <- fn
}

// WaitIdle implements Updater.
func (u *poolUpdater) WaitIdle() { u.pending.Wait() }

// Stop implements Updater.
func (u *poolUpdater) Stop() {
	u.mu.Lock()
	if u.stopped {
		u.mu.Unlock()
		return
	}
	u.stopped = true
	u.mu.Unlock()
	u.pending.Wait()
	close(u.tasks)
	u.workers.Wait()
}
