package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/clock"
)

// buildRandomDAG defines nItems items "i0".."iN" on a single registry
// where item ik depends on a random subset of items with smaller index
// (guaranteeing acyclicity). Returns the item kinds.
func buildRandomDAG(r *Registry, nItems int, rng *rand.Rand) []Kind {
	kinds := make([]Kind, nItems)
	for i := 0; i < nItems; i++ {
		kinds[i] = Kind(fmt.Sprintf("i%d", i))
		var deps []DepRef
		for j := 0; j < i; j++ {
			if rng.Intn(3) == 0 {
				deps = append(deps, Dep(Self(), kinds[j]))
			}
		}
		if len(deps) == 0 {
			defineConst(r, kinds[i], float64(i))
		} else {
			defineDerived(r, kinds[i], deps...)
		}
	}
	return kinds
}

// closure computes the transitive dependency closure of a set of
// subscribed kinds from the definitions.
func closure(r *Registry, subscribed map[Kind]int) map[Kind]bool {
	out := make(map[Kind]bool)
	var visit func(k Kind)
	visit = func(k Kind) {
		if out[k] {
			return
		}
		out[k] = true
		r.mu.RLock()
		def := r.defs[k]
		r.mu.RUnlock()
		if def == nil {
			return
		}
		for _, d := range def.Deps {
			visit(d.Kind)
		}
	}
	for k, n := range subscribed {
		if n > 0 {
			visit(k)
		}
	}
	return out
}

// TestPropertyIncludedSetIsClosure: after any sequence of subscribe and
// unsubscribe operations, the set of included items equals exactly the
// dependency closure of the currently subscribed items, and no
// reference count is ever negative.
func TestPropertyIncludedSetIsClosure(t *testing.T) {
	f := func(seed int64, opsRaw []uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		env, _ := testEnv()
		r := env.NewRegistry("n")
		kinds := buildRandomDAG(r, 12, rng)

		subscribed := make(map[Kind]int)
		var live []*Subscription
		liveKind := make(map[*Subscription]Kind)

		for _, op := range opsRaw {
			if op%2 == 0 || len(live) == 0 {
				k := kinds[int(op/2)%len(kinds)]
				s, err := r.Subscribe(k)
				if err != nil {
					return false
				}
				live = append(live, s)
				liveKind[s] = k
				subscribed[k]++
			} else {
				i := int(op/2) % len(live)
				s := live[i]
				live = append(live[:i], live[i+1:]...)
				subscribed[liveKind[s]]--
				s.Unsubscribe()
			}
			// Invariant: included set == closure of subscribed set.
			want := closure(r, subscribed)
			got := r.Included()
			if len(got) != len(want) {
				return false
			}
			for _, k := range got {
				if !want[k] {
					return false
				}
			}
			// Invariant: every included item has positive refs.
			for _, k := range got {
				if r.Refs(k) <= 0 {
					return false
				}
			}
		}
		// Drain: after releasing everything, nothing stays included.
		for _, s := range live {
			s.Unsubscribe()
		}
		return len(r.Included()) == 0 &&
			env.Stats().HandlersCreated.Load() == env.Stats().HandlersRemoved.Load()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyValuesMatchDefinition: derived (triggered) items always
// equal the sum over their dependency closure of the constant leaves,
// no matter the subscription order, because propagation keeps them
// fresh.
func TestPropertyDerivedValuesCorrect(t *testing.T) {
	f := func(seed int64, order []uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		env, _ := testEnv()
		r := env.NewRegistry("n")
		kinds := buildRandomDAG(r, 10, rng)

		// Reference evaluation from the definitions.
		var eval func(k Kind) float64
		eval = func(k Kind) float64 {
			r.mu.RLock()
			def := r.defs[k]
			r.mu.RUnlock()
			if len(def.Deps) == 0 {
				// constant leaf: value is its index
				var idx int
				fmt.Sscanf(string(k), "i%d", &idx)
				return float64(idx)
			}
			sum := 0.0
			for _, d := range def.Deps {
				sum += eval(d.Kind)
			}
			return sum
		}

		var subs []*Subscription
		for _, o := range order {
			k := kinds[int(o)%len(kinds)]
			s, err := r.Subscribe(k)
			if err != nil {
				return false
			}
			subs = append(subs, s)
			v, err := s.Float()
			if err != nil || v != eval(k) {
				return false
			}
		}
		// All earlier subscriptions must still read correct values.
		for _, s := range subs {
			v, err := s.Float()
			if err != nil || v != eval(s.Kind()) {
				return false
			}
			s.Unsubscribe()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyPropagationReachesClosure: firing a change event on a
// random leaf refreshes exactly the triggered items whose dependency
// closure contains that leaf.
func TestPropertyPropagationReachesClosure(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		env, _ := testEnv()
		r := env.NewRegistry("n")

		// Leaf with an event, plus a random DAG above it.
		leafVal := 1.0
		r.MustDefine(&Definition{
			Kind:   "leaf",
			Events: []string{"changed"},
			Build: func(*BuildContext) (Handler, error) {
				return NewTriggered(func(clock.Time) (Value, error) { return leafVal, nil }), nil
			},
		})
		kinds := []Kind{"leaf"}
		dependsOnLeaf := map[Kind]bool{"leaf": true}
		for i := 1; i < 10; i++ {
			k := Kind(fmt.Sprintf("i%d", i))
			var deps []DepRef
			viaLeaf := false
			for _, prev := range kinds {
				if rng.Intn(3) == 0 {
					deps = append(deps, Dep(Self(), prev))
					if dependsOnLeaf[prev] {
						viaLeaf = true
					}
				}
			}
			if len(deps) == 0 {
				defineConst(r, k, float64(i))
			} else {
				defineDerived(r, k, deps...)
				dependsOnLeaf[k] = viaLeaf
			}
			kinds = append(kinds, k)
		}

		top := kinds[len(kinds)-1]
		s, err := r.Subscribe(top)
		if err != nil {
			return false
		}
		defer s.Unsubscribe()

		before := env.Stats().TriggeredUpdates.Load()
		leafVal = 2
		r.FireEvent("changed")
		refreshed := env.Stats().TriggeredUpdates.Load() - before

		// Count included triggered items depending on leaf (incl. leaf
		// itself if included).
		want := int64(0)
		for _, k := range r.Included() {
			if dependsOnLeaf[k] {
				want++
			}
		}
		if !r.IsIncluded("leaf") {
			// Leaf not in the closure of top: no refresh may happen.
			return refreshed == 0
		}
		return refreshed == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
