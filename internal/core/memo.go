package core

// Versioned read path for on-demand metadata (WithMemoizedOnDemand).
//
// The paper's on-demand mechanism recomputes on every access — exact,
// but a popular item is recomputed redundantly by every reader, and the
// handler mutex serializes them. For items whose compute is a pure
// function of their declared dependencies (Definition.Pure), the exact
// value can be served without recomputing as long as no dependency has
// republished: the handler caches (value, err) together with a stamp —
// the env write epoch plus the publication version of every dependency,
// captured BEFORE the compute ran — and a read that finds every stamp
// component unchanged returns the cache with zero mutexes and zero
// compute.
//
// Exactness argument. Versions are bumped after the new snapshot is
// stored, and stamps are captured before the compute reads its inputs.
// So if a dependency's version still equals the stamp at read time, the
// dependency has not republished since before the compute started,
// which means the compute read exactly the values a recompute would
// read now — and a pure compute of equal inputs gives an equal result.
// If a dependency republished between stamp capture and the compute's
// input reads, the stamp is already stale and the memo simply never
// revalidates (versions are monotonic and never reused); the next read
// recomputes with fresh stamps. The memo can serve stale hits never,
// spurious misses at worst.
//
// Stampability. A dependency is stampable when its served value cannot
// change without a version bump: static (never changes), periodic and
// triggered (every publish bumps), and memoized on-demand handlers
// (every recompute bumps; their own memo validity is checked
// recursively, because their version only moves when they actually
// recompute). A volatile — or pure but unmemoized — on-demand
// dependency is NOT stampable: it recomputes on access without any
// publication, so a stamp over it proves nothing. An item with such a
// dependency (or any unknown handler type) keeps recompute-per-access
// even when declared Pure.
//
// Misses coalesce (singleflight): the first reader through the handler
// mutex becomes the leader and computes outside the mutex; concurrent
// readers find the in-flight marker and wait on its done channel, so N
// readers of one miss cost one compute (OnDemandComputes +1,
// CoalescedReads +N-1). The leader composes with the PR 4 containment
// layer unchanged — boundedCompute's generation fence, breaker
// bookkeeping, quarantined items serving last-good + ErrStale — and a
// coalesced error is delivered to every waiter but counted once.

// memoSnapshot is one memoized (value, error) with the stamp it was
// computed under. Immutable once published.
type memoSnapshot struct {
	val Value
	err error
	// epoch is the env write epoch at stamp capture; any structural
	// change (subscribe/unsubscribe/redefine) invalidates the memo.
	epoch uint64
	// depVers are the dependencies' publication versions at stamp
	// capture, in memoState.deps order.
	depVers []uint64
}

// memoState is the immutable read-path state of a memoized on-demand
// handler, published through an atomic pointer at start so the
// lock-free fast path can reach env, deps, and breaker without touching
// the handler mutex. nil while memoization is not engaged.
type memoState struct {
	env    *Env
	health *itemHealth
	// deps is the flattened declared dependency list (every entry of
	// every dep group, inclusion order). Dependencies outlive the
	// handler's inclusion — each holds a reference taken at include
	// time — so the entry pointers stay valid for the handler's life.
	deps []*entry
	// depMemo is parallel to deps: non-nil where the dependency is
	// itself a memoized on-demand handler, whose memo validity must be
	// checked recursively on revalidation.
	depMemo []*onDemandHandler
}

// newMemoState decides memo engagement for a starting handler and
// builds its read-path state, or returns nil to keep
// recompute-per-access. Called under the component lock (depGroups are
// stable) and after every dependency's handler has started (depth-first
// inclusion), so dependency engagement is already decided. Migration
// re-runs this for the new handler — and for the direct dependents of a
// migrated item, whose stampability premises may have changed — passing
// the purity of the form currently installed (Definition.Pure for built
// handlers, AdaptSpec.Pure after a migration to on-demand).
func newMemoState(e *entry, health *itemHealth, pure bool) *memoState {
	env := e.reg.env
	if !env.memoOnDemand || e.def == nil || !pure {
		return nil
	}
	ms := &memoState{env: env, health: health}
	for _, g := range e.depGroups {
		for _, de := range g {
			switch dep := de.getHandler().(type) {
			case *staticHandler, *periodicHandler, *triggeredHandler:
				ms.depMemo = append(ms.depMemo, nil)
			case *onDemandHandler:
				if dep.mstate.Load() == nil {
					return nil
				}
				ms.depMemo = append(ms.depMemo, dep)
			default:
				return nil
			}
			ms.deps = append(ms.deps, de)
		}
	}
	return ms
}

// memoValid reports whether m may be served. Lock-free; called on every
// read of a memoized item.
func (ms *memoState) memoValid(m *memoSnapshot) bool {
	if ms.health.isQuarantined() {
		return false
	}
	if m.epoch != ms.env.writeEpoch.Load() {
		return false
	}
	for i, de := range ms.deps {
		if de.version.Load() != m.depVers[i] {
			return false
		}
		if od := ms.depMemo[i]; od != nil && !od.memoCurrent() {
			return false
		}
	}
	return true
}

// memoCurrent reports whether h currently holds a servable memo; used
// for the recursive dependency check. A memoized dependency whose memo
// is invalid may serve a different value on its next read without
// bumping its version first, so a parent stamp over it only holds
// while the dependency's own memo holds.
func (h *onDemandHandler) memoCurrent() bool {
	ms := h.mstate.Load()
	if ms == nil {
		return false
	}
	m := h.memo.Load()
	return m != nil && ms.memoValid(m)
}

// captureStamps reads the write epoch and every dependency version.
// Must be called before the compute runs (see the exactness argument
// above).
func (ms *memoState) captureStamps() (epoch uint64, depVers []uint64) {
	epoch = ms.env.writeEpoch.Load()
	if len(ms.deps) > 0 {
		depVers = make([]uint64, len(ms.deps))
		for i, de := range ms.deps {
			depVers[i] = de.version.Load()
		}
	}
	return epoch, depVers
}

// memoFlight is one in-flight coalesced compute: the leader publishes
// the result into val/err and closes done; waiters block on done and
// read the result (the channel close orders the writes before the
// reads).
type memoFlight struct {
	done chan struct{}
	val  Value
	err  error
}

// deliver publishes the result to every waiter.
func (f *memoFlight) deliver(v Value, err error) {
	f.val, f.err = v, err
	close(f.done)
}
