package core

import "sync/atomic"

// Probe is monitoring code a metadata item needs inside the node's
// processing path (Section 4.4.1): for example, the input-rate item
// needs the node to count incoming elements. Probes are activated when
// the item's handler is created by addMetadata and deactivated when the
// handler is removed, so inactive items impose (almost) no cost on the
// element path.
type Probe interface {
	// Activate enables the probe. Activations nest: a probe shared by
	// several items stays active until every activation is released.
	Activate()
	// Deactivate releases one activation.
	Deactivate()
}

// Probes combines several probes into one.
type Probes []Probe

// Activate implements Probe.
func (p Probes) Activate() {
	for _, q := range p {
		q.Activate()
	}
}

// Deactivate implements Probe.
func (p Probes) Deactivate() {
	for _, q := range p {
		q.Deactivate()
	}
}

// Counter is an activation-gated event counter. The hot path calls Inc
// (or Add); the metadata handler calls Take at each window boundary to
// read and reset the count. All methods are safe for concurrent use.
type Counter struct {
	active atomic.Int32
	n      atomic.Int64
}

// Activate implements Probe.
func (c *Counter) Activate() { c.active.Add(1) }

// Deactivate implements Probe. Deactivating resets the count once the
// last activation is released so a later re-activation starts fresh.
func (c *Counter) Deactivate() {
	if c.active.Add(-1) == 0 {
		c.n.Store(0)
	}
}

// Active reports whether at least one activation is held.
func (c *Counter) Active() bool { return c.active.Load() > 0 }

// Inc counts one event if the probe is active.
func (c *Counter) Inc() {
	if c.Active() {
		c.n.Add(1)
	}
}

// Add counts delta events if the probe is active.
func (c *Counter) Add(delta int64) {
	if c.Active() {
		c.n.Add(delta)
	}
}

// Read returns the current count without resetting it.
func (c *Counter) Read() int64 { return c.n.Load() }

// Take returns the current count and resets it to zero.
func (c *Counter) Take() int64 { return c.n.Swap(0) }

// Gauge is an activation-gated instantaneous value (e.g. accumulated
// simulated CPU cost). Unlike Counter it is set, not accumulated.
type Gauge struct {
	active atomic.Int32
	v      atomic.Int64
}

// Activate implements Probe.
func (g *Gauge) Activate() { g.active.Add(1) }

// Deactivate implements Probe.
func (g *Gauge) Deactivate() {
	if g.active.Add(-1) == 0 {
		g.v.Store(0)
	}
}

// Active reports whether at least one activation is held.
func (g *Gauge) Active() bool { return g.active.Load() > 0 }

// Set stores v if the probe is active.
func (g *Gauge) Set(v int64) {
	if g.Active() {
		g.v.Store(v)
	}
}

// Add accumulates delta if the probe is active.
func (g *Gauge) Add(delta int64) {
	if g.Active() {
		g.v.Add(delta)
	}
}

// Read returns the current value.
func (g *Gauge) Read() int64 { return g.v.Load() }

// Take returns the current value and resets it to zero.
func (g *Gauge) Take() int64 { return g.v.Swap(0) }

// FuncProbe adapts a pair of functions to the Probe interface.
type FuncProbe struct {
	// OnActivate runs when the first activation is acquired.
	OnActivate func()
	// OnDeactivate runs when the last activation is released.
	OnDeactivate func()

	active atomic.Int32
}

// Activate implements Probe.
func (p *FuncProbe) Activate() {
	if p.active.Add(1) == 1 && p.OnActivate != nil {
		p.OnActivate()
	}
}

// Deactivate implements Probe.
func (p *FuncProbe) Deactivate() {
	if p.active.Add(-1) == 0 && p.OnDeactivate != nil {
		p.OnDeactivate()
	}
}
