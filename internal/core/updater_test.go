package core

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestInlineUpdaterRunsSynchronously(t *testing.T) {
	u := NewInlineUpdater()
	ran := false
	u.Submit(func() { ran = true })
	if !ran {
		t.Fatal("inline task did not run synchronously")
	}
	u.WaitIdle()
	u.Stop()
}

func TestPoolUpdaterRunsAllTasks(t *testing.T) {
	u := NewPoolUpdater(4)
	var n atomic.Int64
	for i := 0; i < 100; i++ {
		u.Submit(func() { n.Add(1) })
	}
	u.WaitIdle()
	if n.Load() != 100 {
		t.Fatalf("ran %d tasks, want 100", n.Load())
	}
	u.Stop()
}

func TestPoolUpdaterParallelism(t *testing.T) {
	u := NewPoolUpdater(4)
	defer u.Stop()
	arrived := make(chan struct{}, 4)
	block := make(chan struct{})
	for i := 0; i < 4; i++ {
		u.Submit(func() {
			arrived <- struct{}{}
			<-block
		})
	}
	// Two tasks being inside their bodies at once proves >= 2 workers.
	timeout := time.After(5 * time.Second)
	for i := 0; i < 2; i++ {
		select {
		case <-arrived:
		case <-timeout:
			t.Fatal("pool did not run two tasks concurrently")
		}
	}
	close(block)
	u.WaitIdle()
}

func TestPoolUpdaterSubmitAfterStopIsNoop(t *testing.T) {
	u := NewPoolUpdater(2)
	u.Stop()
	u.Submit(func() { t.Error("task ran after Stop") })
	u.Stop() // idempotent
}

// TestPoolUpdaterSubmitFromTask is the regression test for the bounded
// task-channel deadlock: a task running on the last free worker that
// re-submits follow-up work (e.g. a periodic tick spawning more work)
// used to block on the full channel forever, wedging the pool. With
// the unbounded internal queue, Submit never blocks.
func TestPoolUpdaterSubmitFromTask(t *testing.T) {
	u := NewPoolUpdater(1)
	defer u.Stop()
	var n atomic.Int64
	// Pre-fill the queue well past the old channel capacity (4*k) so a
	// bounded implementation would be full when the inner Submit runs.
	block := make(chan struct{})
	u.Submit(func() { <-block })
	for i := 0; i < 64; i++ {
		u.Submit(func() { n.Add(1) })
	}
	u.Submit(func() {
		// Re-submission from inside a task with a loaded queue: this
		// is the call that deadlocked the bounded pool.
		for i := 0; i < 64; i++ {
			u.Submit(func() { n.Add(1) })
		}
		n.Add(1)
	})
	close(block)

	done := make(chan struct{})
	go func() {
		u.WaitIdle()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("pool wedged: Submit from inside a task deadlocked")
	}
	if got := n.Load(); got != 129 {
		t.Fatalf("ran %d tasks, want 129", got)
	}
}

func TestPoolUpdaterZeroWorkersPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPoolUpdater(0) did not panic")
		}
	}()
	NewPoolUpdater(0)
}
