package core

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestInlineUpdaterRunsSynchronously(t *testing.T) {
	u := NewInlineUpdater()
	ran := false
	u.Submit(func() { ran = true })
	if !ran {
		t.Fatal("inline task did not run synchronously")
	}
	u.WaitIdle()
	u.Stop()
}

func TestPoolUpdaterRunsAllTasks(t *testing.T) {
	u := NewPoolUpdater(4)
	var n atomic.Int64
	for i := 0; i < 100; i++ {
		u.Submit(func() { n.Add(1) })
	}
	u.WaitIdle()
	if n.Load() != 100 {
		t.Fatalf("ran %d tasks, want 100", n.Load())
	}
	u.Stop()
}

func TestPoolUpdaterParallelism(t *testing.T) {
	u := NewPoolUpdater(4)
	defer u.Stop()
	arrived := make(chan struct{}, 4)
	block := make(chan struct{})
	for i := 0; i < 4; i++ {
		u.Submit(func() {
			arrived <- struct{}{}
			<-block
		})
	}
	// Two tasks being inside their bodies at once proves >= 2 workers.
	timeout := time.After(5 * time.Second)
	for i := 0; i < 2; i++ {
		select {
		case <-arrived:
		case <-timeout:
			t.Fatal("pool did not run two tasks concurrently")
		}
	}
	close(block)
	u.WaitIdle()
}

func TestPoolUpdaterSubmitAfterStopIsNoop(t *testing.T) {
	u := NewPoolUpdater(2)
	u.Stop()
	u.Submit(func() { t.Error("task ran after Stop") })
	u.Stop() // idempotent
}

func TestPoolUpdaterZeroWorkersPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPoolUpdater(0) did not panic")
		}
	}()
	NewPoolUpdater(0)
}
