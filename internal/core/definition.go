package core

import (
	"errors"
	"fmt"

	"repro/internal/clock"
)

// Definition declares a metadata item a node can provide: its
// dependencies, the events that trigger it, the monitoring code it
// needs, and how to build its handler. Definitions are registered via
// Registry.Define, typically in the node's constructor (the paper's
// addMetadata method); a subclass may re-Define an item to override an
// inherited definition (Section 4.4.2).
type Definition struct {
	// Kind names the item within its registry.
	Kind Kind

	// Deps declares the item's static dependencies in the order the
	// BuildContext exposes them.
	Deps []DepRef

	// Resolve, if set, overrides static dependency resolution
	// (Section 4.4.3). It runs at inclusion time and returns the
	// dependencies to use; it may consult the ResolveContext to
	// prefer alternatives that are already included.
	Resolve func(rc *ResolveContext) []DepRef

	// Events lists registry-local event names (fired via
	// Registry.FireEvent) that refresh the item's handler if it is
	// triggerable.
	Events []string

	// Probe is the monitoring code the item requires in the node's
	// processing path. It is activated when the handler is created
	// and deactivated when the handler is removed.
	Probe Probe

	// Build constructs the handler. The BuildContext carries handles
	// to the resolved dependencies in Deps order.
	Build func(ctx *BuildContext) (Handler, error)

	// ComputeDeadline bounds this item's computations, overriding the
	// graph-wide WithComputeDeadline default. 0 inherits the default;
	// it requires an asynchronous updater to take effect (see
	// WithComputeDeadline).
	ComputeDeadline clock.Duration

	// Delta declares the item's delta form for NewDeltaAggregate: an
	// invertible (Combine/Retract) fold over the fan-in values that
	// lets dependency publications be applied as O(1) (old, new) pairs
	// instead of re-running the full compute, with an exact fold
	// fallback (see delta.go). Ignored by handlers other than
	// NewDeltaAggregate.
	Delta *DeltaSpec

	// Pure declares that the item's compute is a function of its
	// declared dependencies alone: it reads no clock, no captured
	// mutable state, and no external inputs, so recomputing it against
	// unchanged dependency values always yields the same result. On
	// envs with WithMemoizedOnDemand, a pure on-demand item serves
	// repeat reads from a dependency-stamped memo instead of
	// recomputing (see the option's doc for the exactness argument).
	// Without the option — or for items that do consult now/external
	// state and must leave this false — behaviour is unchanged:
	// recompute per access. A value change that happens despite the
	// declaration (i.e. a purity violation) can still be announced with
	// Registry.NotifyChanged, which invalidates dependent memos.
	Pure bool

	// Persist names the registered persistence codec able to rebuild
	// this definition at recovery time (internal/persist.RegisterCodec).
	// Go functions do not serialize, so a definition is durable only by
	// naming a codec that reconstructs it from PersistArgs. Empty — the
	// default — means the definition is not journaled: it is expected to
	// be re-registered by application code (node constructors) before
	// recovery replays the structural log.
	Persist string

	// PersistArgs is an opaque argument string handed to the Persist
	// codec at recovery time.
	PersistArgs string

	// Adapt declares the item's alternative maintenance forms, enabling
	// live mechanism migration via Registry.Migrate: the same metadata
	// quantity expressed as an on-demand compute, a triggered compute,
	// and/or a periodic window compute, constructed over the same
	// resolved dependency handles the original Build saw. nil means the
	// item is pinned to the mechanism Build chose (Migrate returns
	// ErrNotMigratable). See migrate.go.
	Adapt *AdaptSpec
}

// ResolveContext lets a dynamic Resolve hook inspect the inclusion
// state around the defining registry.
type ResolveContext struct {
	reg *Registry
}

// Registry returns the registry defining the item being resolved.
func (rc *ResolveContext) Registry() *Registry { return rc.reg }

// IsIncluded reports whether the item kind at the registries matched
// by target currently has a handler (i.e. is already provided). With a
// multi-registry selector it reports whether all matches are included.
func (rc *ResolveContext) IsIncluded(target Selector, kind Kind) bool {
	regs, err := rc.reg.resolveSelector(target)
	if err != nil || len(regs) == 0 {
		return false
	}
	for _, r := range regs {
		r.mu.RLock()
		_, ok := r.entries[kind]
		r.mu.RUnlock()
		if !ok {
			return false
		}
	}
	return true
}

// BuildContext carries the resolved dependencies into Definition.Build.
type BuildContext struct {
	e      *entry
	groups [][]*Handle
	deps   []DepRef
}

// Kind returns the kind of the item being built.
func (ctx *BuildContext) Kind() Kind { return ctx.e.kind }

// Registry returns the registry owning the item.
func (ctx *BuildContext) Registry() *Registry { return ctx.e.reg }

// Clock returns the environment clock.
func (ctx *BuildContext) Clock() clock.Clock { return ctx.e.reg.env.Clock() }

// NumDeps returns the number of dependency groups (one per DepRef).
func (ctx *BuildContext) NumDeps() int { return len(ctx.groups) }

// Dep returns the single handle of dependency group i. It panics if
// the group does not hold exactly one handle; use DepGroup for
// EachInput-style selectors.
func (ctx *BuildContext) Dep(i int) *Handle {
	g := ctx.groups[i]
	if len(g) != 1 {
		panic(fmt.Sprintf("core: dependency %d (%s %s) has %d handles, want 1",
			i, ctx.deps[i].Target, ctx.deps[i].Kind, len(g)))
	}
	return g[0]
}

// DepGroup returns all handles of dependency group i (possibly empty
// for optional dependencies).
func (ctx *BuildContext) DepGroup(i int) []*Handle { return ctx.groups[i] }

// Handle is the read proxy for an included metadata item. Handles are
// used both by consumers (wrapped in a Subscription) and by compute
// closures reading their dependencies.
type Handle struct {
	e *entry
}

// Value returns the item's current value under its handler's update
// discipline.
func (h *Handle) Value() (Value, error) {
	hd := h.e.getHandler()
	if hd == nil {
		return nil, ErrUnsubscribed
	}
	if t := h.e.track.Load(); t != nil {
		t.Add(1)
	}
	return hd.Value()
}

// Float returns the item's current value as float64. A stale-tagged
// read (errors.Is(err, ErrStale)) still carries the last-good value so
// degrade-aware consumers can keep operating on it; every other error
// zeroes the value.
func (h *Handle) Float() (float64, error) {
	v, err := h.Value()
	if err != nil {
		if errors.Is(err, ErrStale) {
			if f, ferr := Float(v); ferr == nil {
				return f, err
			}
		}
		return 0, err
	}
	return Float(v)
}

// Kind returns the item's kind.
func (h *Handle) Kind() Kind { return h.e.kind }

// Registry returns the registry providing the item.
func (h *Handle) Registry() *Registry { return h.e.reg }

// Mechanism returns the update mechanism of the item's handler.
func (h *Handle) Mechanism() Mechanism {
	hd := h.e.getHandler()
	if hd == nil {
		return StaticMechanism
	}
	return hd.Mechanism()
}

// Subscription is a consumer's claim on a metadata item, returned by
// Registry.Subscribe. Releasing it (Unsubscribe) decrements the item's
// reference count and removes the handler — and recursively every
// dependency included solely for it — when the count reaches zero.
type Subscription struct {
	h        *Handle
	released bool
}

// Value returns the current metadata value.
func (s *Subscription) Value() (Value, error) {
	if s.released {
		return nil, ErrUnsubscribed
	}
	return s.h.Value()
}

// Float returns the current metadata value as float64.
func (s *Subscription) Float() (float64, error) {
	if s.released {
		return 0, ErrUnsubscribed
	}
	return s.h.Float()
}

// Handle exposes the underlying handle for compute closures.
func (s *Subscription) Handle() *Handle {
	return s.h
}

// Kind returns the subscribed item's kind.
func (s *Subscription) Kind() Kind { return s.h.Kind() }

// Mechanism returns the update mechanism of the item's handler.
func (s *Subscription) Mechanism() Mechanism { return s.h.Mechanism() }

// Unsubscribe releases the claim. It is idempotent.
func (s *Subscription) Unsubscribe() {
	if s.released {
		return
	}
	s.released = true
	s.h.e.reg.unsubscribe(s.h.e)
}
